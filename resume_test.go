package chameleon

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
	"chameleon/internal/testenv"
)

// TestKillAndResumeAcrossWorkers is the end-to-end crash-safety contract on
// top of the determinism contract: a multi-seed grid whose every cell is
// killed mid-stream and resumed from its checkpoint files must produce
// results bit-identical to the uninterrupted grid, at any worker count. The
// learner uses SGD momentum so the test fails if checkpoints ever drop
// optimizer state.
func TestKillAndResumeAcrossWorkers(t *testing.T) {
	set := testenv.Env(t, "core50")
	seeds := []int64{1, 2, 3}
	opts := data.StreamOptions{BatchSize: 10}
	mk := func(seed int64) cl.Learner {
		return core.New(cl.NewHead(set.Backbone, cl.HeadConfig{
			LR: testenv.Scale().HeadLR, Momentum: 0.5, Seed: seed,
		}), core.Config{
			STCap: 10, LTCap: 40, AccessRate: 2, PromoteEvery: 1,
			Window: 100, Seed: seed,
		})
	}

	ref := cl.MultiSeed(set, opts, mk, seeds)

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			parallel.SetWorkers(workers)
			defer parallel.SetWorkers(0)

			dir := t.TempDir()
			// Phase 1: every seed's run crashes at batch 4 with state on disk.
			for _, seed := range seeds {
				path := filepath.Join(dir, fmt.Sprintf("grid-seed%d.ckpt", seed))
				_, err := cl.RunOnlineCheckpointed(mk(seed), set.Stream(seed, opts), set.Test,
					cl.CheckpointPlan{Path: path, Every: 1, StopAfter: 4})
				if err != cl.ErrStopped {
					t.Fatalf("seed %d: expected ErrStopped, got %v", seed, err)
				}
			}
			// Phase 2: the grid restarts and resumes each cell from its file.
			got, err := cl.MultiSeedCheckpointed(set, opts, mk, seeds,
				cl.GridCheckpoint{Dir: dir, Every: 1, Label: "grid", Resume: true})
			if err != nil {
				t.Fatal(err)
			}
			if got.MeanAcc != ref.MeanAcc || got.StdAcc != ref.StdAcc {
				t.Fatalf("resumed grid %v ± %v != uninterrupted %v ± %v",
					got.MeanAcc, got.StdAcc, ref.MeanAcc, ref.StdAcc)
			}
			for i := range ref.Runs {
				if got.Runs[i].AccAll != ref.Runs[i].AccAll ||
					got.Runs[i].SamplesSeen != ref.Runs[i].SamplesSeen ||
					!reflect.DeepEqual(got.Runs[i].PerClass, ref.Runs[i].PerClass) {
					t.Fatalf("seed %d: resumed run diverged:\n%+v\nvs\n%+v", seeds[i], got.Runs[i], ref.Runs[i])
				}
			}
		})
	}
}
