#!/bin/sh
# check.sh — the repo's full verification gate: static checks, build, and the
# whole test suite with the race detector on (the parallel compute layer is
# exercised at forced worker counts even on single-core machines).
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
# The allocation-regression gate runs in a separate non-race pass: the strict
# AllocsPerRun == 0 pins skip under -race because the instrumentation itself
# allocates (see internal/race).
echo '>> go test -run TestAllocs -count=1 ./... (allocation gate, no race)'
go test -run TestAllocs -count=1 ./...
echo 'check.sh: all green'
