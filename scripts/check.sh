#!/bin/sh
# check.sh — the repo's full verification gate: static checks, build, and the
# whole test suite with the race detector on (the parallel compute layer is
# exercised at forced worker counts even on single-core machines).
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
# Concurrent-scrape gate: every metrics export surface is read while an
# 8-worker training run mutates the registry (redundant with the full -race
# pass above, but named here so a failure points straight at the metrics
# layer).
echo '>> go test -race -run "TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence" -count=1 ./internal/core/ (scrape-under-race gate)'
go test -race -run 'TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence' -count=1 ./internal/core/
# The allocation-regression gate runs in a separate non-race pass: the strict
# AllocsPerRun == 0 pins skip under -race because the race instrumentation
# itself allocates (see internal/race). TestAllocsTrainStep covers the
# *instrumented* trainer step — the per-stage timers and counters added by
# internal/obs must not cost a single allocation.
echo '>> go test -run TestAllocs -count=1 ./... (allocation gate, no race)'
go test -run TestAllocs -count=1 ./...
# Serving smoke gate: the real chameleon-serve binary (synthetic backbone)
# answers the load generator end to end, then drains cleanly on SIGTERM and
# leaves a resumable checkpoint behind.
echo '>> serve smoke: chameleon-serve + chameleon-loadgen end to end'
smokedir=$(mktemp -d)
trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$smokedir"' EXIT
go build -o "$smokedir/chameleon-serve" ./cmd/chameleon-serve
go build -o "$smokedir/chameleon-loadgen" ./cmd/chameleon-loadgen
"$smokedir/chameleon-serve" -dataset synthetic -method chameleon \
	-addr 127.0.0.1:18423 -checkpoint "$smokedir/serve.ckpt" \
	>"$smokedir/serve.log" 2>&1 &
serve_pid=$!
for i in $(seq 1 100); do
	if curl -fsS http://127.0.0.1:18423/healthz >/dev/null 2>&1; then break; fi
	if ! kill -0 "$serve_pid" 2>/dev/null; then
		echo 'serve smoke: server died during startup' >&2
		cat "$smokedir/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done
"$smokedir/chameleon-loadgen" -url http://127.0.0.1:18423 \
	-clients 8 -duration 1s -observe 5 -observe-batch 4
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo 'serve smoke: non-zero exit on SIGTERM' >&2; cat "$smokedir/serve.log" >&2; exit 1; }
[ -f "$smokedir/serve.ckpt" ] || { echo 'serve smoke: drain wrote no checkpoint' >&2; exit 1; }
echo 'check.sh: all green'
