#!/bin/sh
# check.sh — the repo's full verification gate: static checks, build, and the
# whole test suite with the race detector on (the parallel compute layer is
# exercised at forced worker counts even on single-core machines).
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
# Concurrent-scrape gate: every metrics export surface is read while an
# 8-worker training run mutates the registry (redundant with the full -race
# pass above, but named here so a failure points straight at the metrics
# layer).
echo '>> go test -race -run "TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence" -count=1 ./internal/core/ (scrape-under-race gate)'
go test -race -run 'TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence' -count=1 ./internal/core/
# The allocation-regression gate runs in a separate non-race pass: the strict
# AllocsPerRun == 0 pins skip under -race because the race instrumentation
# itself allocates (see internal/race). TestAllocsTrainStep covers the
# *instrumented* trainer step — the per-stage timers and counters added by
# internal/obs must not cost a single allocation.
echo '>> go test -run TestAllocs -count=1 ./... (allocation gate, no race)'
go test -run TestAllocs -count=1 ./...
echo 'check.sh: all green'
