#!/bin/sh
# check.sh — the repo's full verification gate: static checks, build, and the
# whole test suite with the race detector on (the parallel compute layer is
# exercised at forced worker counts even on single-core machines).
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
# Concurrent-scrape gate: every metrics export surface is read while an
# 8-worker training run mutates the registry (redundant with the full -race
# pass above, but named here so a failure points straight at the metrics
# layer).
echo '>> go test -race -run "TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence" -count=1 ./internal/core/ (scrape-under-race gate)'
go test -race -run 'TestMetricsScrapeDuringTraining|TestInstrumentationEquivalence' -count=1 ./internal/core/
# The allocation-regression gate runs in a separate non-race pass: the strict
# AllocsPerRun == 0 pins skip under -race because the race instrumentation
# itself allocates (see internal/race). TestAllocsTrainStep covers the
# *instrumented* trainer step — the per-stage timers and counters added by
# internal/obs must not cost a single allocation.
echo '>> go test -run TestAllocs -count=1 ./... (allocation gate, no race)'
go test -run TestAllocs -count=1 ./...
# Precision-tier gate: one named pass over the fp32/fp64 contract — the
# float64 kernel suite behind the Ref64 measuring stick, bit-identity of the
# fused fold at both element widths, the dtype-tagged checkpoint wire format,
# and the fp32-vs-fp64 finetune accuracy parity (full streams).
echo '>> go test -run "Test.*64|TestGobDtype|TestFusedStepBitIdentity|TestPrecisionParity" -count=1 ./internal/tensor/ ./internal/nn/ ./internal/exp/ (precision-tier gate)'
go test -run 'Test.*64|TestGobDtype|TestFusedStepBitIdentity|TestPrecisionParity' -count=1 \
	./internal/tensor/ ./internal/nn/ ./internal/exp/
# Quantized-replay gate: one named pass over the int8 store contract — the
# symmetric quantizer round-trips, quantize-on-insert/dequantize-on-rehearsal
# in every store (core + baselines), bit-exact dtype-tagged checkpoints with
# cross-dtype restore rejection, the int8 wire encoding on both server
# surfaces, and the 0 allocs/op pin on the quantized train step.
echo '>> go test -run "TestQuantized|TestAllocsQuantized|TestInt8|TestDequantize" -count=1 ./internal/quant/ ./internal/replay/ ./internal/core/ ./internal/baselines/ ./internal/serve/ ./internal/exp/ (quantized-replay gate)'
go test -run 'TestQuantized|TestAllocsQuantized|TestInt8|TestDequantize' -count=1 -short \
	./internal/quant/ ./internal/replay/ ./internal/core/ ./internal/baselines/ ./internal/serve/ ./internal/exp/
# ns/op regression gate: the fp32 fused train step must hold its lead over
# the fp64 reference step (≥1.5×), stay within 5% of the split step, and run
# allocation-free. Ratios are within-run (interleaved min-of-N), so the gate
# is machine-independent; the JSON lands in a scratch dir — the published
# BENCH_pr9.json comes from `make bench-json`, not from here.
gatedir=$(mktemp -d)
trap 'rm -rf "$gatedir"' EXIT
echo '>> go run ./cmd/benchjson -quick -check (ns/op regression gate)'
# (the serve smoke below replaces this trap; it removes $gatedir too)
go run ./cmd/benchjson -quick -check -out "$gatedir/bench-gate.json"
# Cross-PR perf drift (informational): diff the two published bench exhibits
# series by series. Absolute ns/op in checked-in files comes from different
# runs on possibly different machines, so this warns instead of failing —
# `make bench-diff` is the hard-mode variant for same-machine comparisons.
if [ -f BENCH_pr9.json ] && [ -f BENCH_pr10.json ]; then
	echo '>> go run ./cmd/benchdiff BENCH_pr9.json BENCH_pr10.json (cross-PR drift, informational)'
	go run ./cmd/benchdiff -warn-only BENCH_pr9.json BENCH_pr10.json
fi
# Serving smoke gate: the real chameleon-serve binary (synthetic backbone,
# int8 replay stores) answers the load generator end to end — one fp32-wire
# exchange and one quantized-wire (-int8) exchange — then drains cleanly on
# SIGTERM and leaves a resumable checkpoint behind.
echo '>> serve smoke: chameleon-serve -replay-int8 + chameleon-loadgen (fp32 + int8 wire) end to end'
smokedir=$(mktemp -d)
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$smokedir" "$gatedir"' EXIT
go build -o "$smokedir/chameleon-serve" ./cmd/chameleon-serve
go build -o "$smokedir/chameleon-loadgen" ./cmd/chameleon-loadgen
"$smokedir/chameleon-serve" -dataset synthetic -method chameleon -replay-int8 \
	-addr 127.0.0.1:18423 -checkpoint "$smokedir/serve.ckpt" \
	>"$smokedir/serve.log" 2>&1 &
serve_pid=$!
for i in $(seq 1 100); do
	if curl -fsS http://127.0.0.1:18423/healthz >/dev/null 2>&1; then break; fi
	if ! kill -0 "$serve_pid" 2>/dev/null; then
		echo 'serve smoke: server died during startup' >&2
		cat "$smokedir/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done
"$smokedir/chameleon-loadgen" -url http://127.0.0.1:18423 \
	-clients 8 -duration 1s -observe 5 -observe-batch 4
"$smokedir/chameleon-loadgen" -url http://127.0.0.1:18423 -int8 \
	-clients 8 -duration 1s -observe 5 -observe-batch 4
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo 'serve smoke: non-zero exit on SIGTERM' >&2; cat "$smokedir/serve.log" >&2; exit 1; }
[ -f "$smokedir/serve.ckpt" ] || { echo 'serve smoke: drain wrote no checkpoint' >&2; exit 1; }
# Fleet smoke gate: the multi-tenant path end to end. A Zipf user burst over
# a hot-set far smaller than the user population must force real evictions
# and fault-ins, serve every request without errors, and a SIGTERM drain must
# leave every resident learner as a checkpoint file in the fleet directory.
echo '>> fleet smoke: chameleon-serve -fleet-* + Zipf loadgen end to end'
"$smokedir/chameleon-serve" -dataset synthetic -method chameleon \
	-addr 127.0.0.1:18424 \
	-fleet-users 64 -fleet-hot 8 -fleet-shards 2 -fleet-dir "$smokedir/fleet" \
	>"$smokedir/fleet.log" 2>&1 &
fleet_pid=$!
trap 'kill "$serve_pid" "$fleet_pid" 2>/dev/null || true; rm -rf "$smokedir" "$gatedir"' EXIT
for i in $(seq 1 100); do
	if curl -fsS http://127.0.0.1:18424/healthz >/dev/null 2>&1; then break; fi
	if ! kill -0 "$fleet_pid" 2>/dev/null; then
		echo 'fleet smoke: server died during startup' >&2
		cat "$smokedir/fleet.log" >&2
		exit 1
	fi
	sleep 0.1
done
"$smokedir/chameleon-loadgen" -url http://127.0.0.1:18424 \
	-clients 8 -duration 1s -observe 8 -observe-batch 4 -users 64 -json \
	>"$smokedir/fleet-load.json"
grep -q '"errors": 0' "$smokedir/fleet-load.json" || {
	echo 'fleet smoke: load run reported request errors' >&2
	cat "$smokedir/fleet-load.json" >&2
	exit 1
}
metrics=$(curl -fsS http://127.0.0.1:18424/metrics)
echo "$metrics" | grep -q '^fleet_evictions_total [1-9]' || {
	echo 'fleet smoke: no evictions — the hot-set never overflowed' >&2
	echo "$metrics" | grep '^fleet_' >&2
	exit 1
}
echo "$metrics" | grep -q '^fleet_fault_ins_total [1-9]' || {
	echo 'fleet smoke: no fault-ins — evicted users never came back' >&2
	echo "$metrics" | grep '^fleet_' >&2
	exit 1
}
kill -TERM "$fleet_pid"
wait "$fleet_pid" || { echo 'fleet smoke: non-zero exit on SIGTERM' >&2; cat "$smokedir/fleet.log" >&2; exit 1; }
drained=$(ls "$smokedir/fleet"/*.ckpt 2>/dev/null | wc -l)
if [ "$drained" -lt 1 ]; then
	echo 'fleet smoke: drain left no user checkpoints' >&2
	cat "$smokedir/fleet.log" >&2
	exit 1
fi
echo "fleet smoke: drained $drained user checkpoint(s)"
# Failover smoke gate: warm-standby replication end to end with real binaries
# (DESIGN.md §18). A primary logs every observe to its WAL; a standby
# bootstraps from its snapshot and tails the log; the load generator drives
# traffic with -failover while the primary is SIGKILLed mid-run. The gate:
# the run finishes with zero failed requests and at least one failover, the
# standby promotes itself to primary, and the survivor's (snapshot, log)
# reconstruction is bit-identical to its live learner
# (/v1/replication/verify).
echo '>> failover smoke: primary + warm standby under load, SIGKILL the primary, zero failed requests'
"$smokedir/chameleon-serve" -dataset synthetic -method chameleon \
	-addr 127.0.0.1:18425 -wal-dir "$smokedir/wal-primary" \
	>"$smokedir/primary.log" 2>&1 &
primary_pid=$!
trap 'kill "$serve_pid" "$fleet_pid" "$primary_pid" "$standby_pid" 2>/dev/null || true; rm -rf "$smokedir" "$gatedir"' EXIT
for i in $(seq 1 100); do
	if curl -fsS http://127.0.0.1:18425/healthz >/dev/null 2>&1; then break; fi
	if ! kill -0 "$primary_pid" 2>/dev/null; then
		echo 'failover smoke: primary died during startup' >&2
		cat "$smokedir/primary.log" >&2
		exit 1
	fi
	sleep 0.1
done
"$smokedir/chameleon-serve" -dataset synthetic -method chameleon \
	-addr 127.0.0.1:18426 -wal-dir "$smokedir/wal-standby" \
	-standby http://127.0.0.1:18425 -primary-wal "$smokedir/wal-primary" \
	-failover-after 3 -replication-poll 20ms \
	>"$smokedir/standby.log" 2>&1 &
standby_pid=$!
for i in $(seq 1 100); do
	if curl -fsS http://127.0.0.1:18426/healthz >/dev/null 2>&1; then break; fi
	if ! kill -0 "$standby_pid" 2>/dev/null; then
		echo 'failover smoke: standby died during startup' >&2
		cat "$smokedir/standby.log" >&2
		exit 1
	fi
	sleep 0.1
done
"$smokedir/chameleon-loadgen" -url http://127.0.0.1:18425 \
	-failover http://127.0.0.1:18426 \
	-clients 8 -duration 4s -observe 20 -observe-batch 4 -json \
	>"$smokedir/failover-load.json" &
load_pid=$!
sleep 1.5
kill -KILL "$primary_pid"
wait "$load_pid" || {
	echo 'failover smoke: loadgen exited non-zero' >&2
	cat "$smokedir/failover-load.json" >&2
	exit 1
}
grep -q '"errors": 0' "$smokedir/failover-load.json" || {
	echo 'failover smoke: requests failed across the SIGKILL (the zero-failed-requests contract)' >&2
	cat "$smokedir/failover-load.json" >&2
	exit 1
}
grep -q '"failovers": [1-9]' "$smokedir/failover-load.json" || {
	echo 'failover smoke: the load generator never flipped to the standby' >&2
	cat "$smokedir/failover-load.json" >&2
	exit 1
}
curl -fsS http://127.0.0.1:18426/v1/stats | grep -q '"role":"primary"' || {
	echo 'failover smoke: the standby never promoted itself' >&2
	cat "$smokedir/standby.log" >&2
	exit 1
}
curl -fsS http://127.0.0.1:18426/v1/replication/verify | grep -q '"equal":true' || {
	echo 'failover smoke: the survivor failed snapshot+log reconstruction (SnapshotsEqual)' >&2
	curl -fsS http://127.0.0.1:18426/v1/replication/verify >&2 || true
	exit 1
}
kill -TERM "$standby_pid"
wait "$standby_pid" || { echo 'failover smoke: survivor non-zero exit on SIGTERM' >&2; cat "$smokedir/standby.log" >&2; exit 1; }
echo 'failover smoke: zero failed requests across a SIGKILL, survivor verified bit-identical'
echo 'check.sh: all green'
