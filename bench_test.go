// Package chameleon's top-level benchmark suite regenerates every table and
// figure of the paper (one benchmark per exhibit) plus the ablations called
// out in DESIGN.md and micro-benchmarks of the core kernels.
//
//	go test -bench=. -benchmem
//
// Accuracy benchmarks run the full online experiment per iteration on the
// cached test-scale pipeline (built on first use, ~30 s) and report the
// measured accuracy as the custom metric "acc%"; hardware benchmarks run the
// analytic platform models and report latency metrics.
package chameleon

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"chameleon/internal/baselines"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
	"chameleon/internal/exp"
	"chameleon/internal/hw"
	"chameleon/internal/mobilenet"
	"chameleon/internal/nn"
	"chameleon/internal/parallel"
	"chameleon/internal/quant"
	"chameleon/internal/tensor"
	"chameleon/internal/testenv"
)

// benchScale returns the scale tier the accuracy benches run at, with one
// seed per iteration to keep bench iterations meaningful.
func benchScale() exp.Scale {
	sc := exp.TestScale()
	sc.Seeds = []int64{1}
	return sc
}

// BenchmarkTable1Core50 regenerates the CORe50 column of Table I.
func BenchmarkTable1Core50(b *testing.B) {
	benchTable1(b, "core50")
}

// BenchmarkTable1OpenLORIS regenerates the OpenLORIS column of Table I.
func BenchmarkTable1OpenLORIS(b *testing.B) {
	benchTable1(b, "openloris")
}

func benchTable1(b *testing.B, dataset string) {
	set := testenv.Env(b, dataset)
	sc := benchScale()
	b.ResetTimer()
	var chamAcc, jointAcc float64
	for i := 0; i < b.N; i++ {
		sets := map[string]*cl.LatentSet{dataset: set}
		res, err := exp.RunTable1(sets, sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Spec.Label() {
			case "joint":
				jointAcc = row.Acc[dataset].MeanAcc
			case "chameleon-10+40":
				chamAcc = row.Acc[dataset].MeanAcc
			}
		}
	}
	b.ReportMetric(100*chamAcc, "chameleon-acc%")
	b.ReportMetric(100*jointAcc, "joint-acc%")
}

// BenchmarkFig2 regenerates the Fig. 2 accuracy-vs-memory sweep on CORe50.
func BenchmarkFig2(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2(set, sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		pts := res.Points["chameleon"]
		last = pts[len(pts)-1].MeanAcc
	}
	b.ReportMetric(100*last, "chameleon-max-acc%")
}

// BenchmarkTable2 regenerates the Table II latency/energy matrix.
func BenchmarkTable2(b *testing.B) {
	var res *exp.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range res.Entries {
		if e.Method == "chameleon" && e.Platform == "zcu102" {
			b.ReportMetric(e.Cost.LatencySec*1e3, "fpga-chameleon-ms")
		}
		if e.Method == "latent" && e.Platform == "zcu102" {
			b.ReportMetric(e.Cost.LatencySec*1e3, "fpga-latent-ms")
		}
	}
}

// BenchmarkTable3 regenerates the Table III FPGA resource report.
func BenchmarkTable3(b *testing.B) {
	var r hw.ResourceReport
	for i := 0; i < b.N; i++ {
		r = exp.RunTable3().Report
	}
	b.ReportMetric(hw.Percent(r.DSPUsed, r.DSPAvail), "dsp%")
	b.ReportMetric(hw.Percent(r.BRAMUsed, r.BRAMAvail), "bram%")
}

// BenchmarkAblationDualVsSingle compares the dual-store design against one
// unified buffer of equal capacity (DESIGN.md §6).
func BenchmarkAblationDualVsSingle(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		res = exp.RunAblationDualVsSingle(set, sc)
	}
	b.ReportMetric(100*res[0].MeanAcc, "dual-acc%")
	b.ReportMetric(100*res[1].MeanAcc, "single-acc%")
}

// BenchmarkAblationSTPolicy compares Eq. 4 against degenerate insertion
// policies.
func BenchmarkAblationSTPolicy(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		res = exp.RunAblationSTPolicy(set, sc)
	}
	b.ReportMetric(100*res[0].MeanAcc, "eq4-acc%")
	b.ReportMetric(100*res[2].MeanAcc, "random-acc%")
}

// BenchmarkAblationLTPolicy compares Eq. 6 promotion against random.
func BenchmarkAblationLTPolicy(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		res = exp.RunAblationLTPolicy(set, sc)
	}
	b.ReportMetric(100*res[0].MeanAcc, "protoKL-acc%")
	b.ReportMetric(100*res[1].MeanAcc, "random-acc%")
}

// BenchmarkAblationAccessRate sweeps the long-term access period h.
func BenchmarkAblationAccessRate(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		res = exp.RunAblationAccessRate(set, sc, []int{1, 5, 10, 20})
	}
	b.ReportMetric(100*res[0].MeanAcc, "h1-acc%")
	b.ReportMetric(100*res[len(res)-1].MeanAcc, "h20-acc%")
}

// BenchmarkAblationRho sweeps the allocation exponent on a user-centric
// stream.
func BenchmarkAblationRho(b *testing.B) {
	set := testenv.Env(b, "core50")
	sc := benchScale()
	b.ResetTimer()
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		res = exp.RunAblationRho(set, sc, []float64{0.2, 0.6, 1.0})
	}
	b.ReportMetric(100*res[1].MeanAcc, "rho0.6-acc%")
}

// --- Micro-benchmarks of the numeric substrate -----------------------------

// BenchmarkMatMul128 measures the GEMM kernel at the latent-layer scale.
func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 1, 128, 128)
	y := tensor.RandNormal(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkFeatureExtraction measures one frozen forward pass of the
// test-scale backbone.
func BenchmarkFeatureExtraction(b *testing.B) {
	m, err := mobilenet.New(mobilenet.DefaultConfig(10, 1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandNormal(rng, 1, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExtractLatent(x)
	}
}

// benchWorkerCounts returns the worker sweeps for the parallel benchmarks:
// serial plus GOMAXPROCS (deduplicated on single-core machines).
func benchWorkerCounts() []int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// BenchmarkMatMulParallel measures the row-sharded GEMM at serial and full
// worker counts; the workers=N/workers=1 ratio is the kernel-level speedup.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandNormal(rng, 1, 256, 256)
	y := tensor.RandNormal(rng, 1, 256, 256)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			defer parallel.SetWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		})
	}
}

// BenchmarkLatentExtractParallel measures batched frozen-backbone extraction
// (the dominant pipeline-build cost) at serial and full worker counts.
func BenchmarkLatentExtractParallel(b *testing.B) {
	m, err := mobilenet.New(mobilenet.DefaultConfig(10, 1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	imgs := make([]*tensor.Tensor, 16)
	for i := range imgs {
		imgs[i] = tensor.RandNormal(rng, 1, 3, 32, 32)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			defer parallel.SetWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ExtractLatents(imgs)
			}
		})
	}
}

// BenchmarkChameleonObserve measures one online step (batch 10 + ST sweep).
func BenchmarkChameleonObserve(b *testing.B) {
	set := testenv.Env(b, "core50")
	ch := core.New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 1}),
		core.Config{STCap: 10, LTCap: 40, AccessRate: 5, PromoteEvery: 1, Window: 200, Seed: 1})
	st := set.Stream(1, data.StreamOptions{BatchSize: 10})
	var batches []cl.LatentBatch
	for {
		bt, ok := st.Next()
		if !ok {
			break
		}
		batches = append(batches, bt)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Observe(batches[i%len(batches)])
	}
}

// BenchmarkSLDAInversion measures the O(d³) kernel Table II punishes.
func BenchmarkSLDAInversion(b *testing.B) {
	set := testenv.Env(b, "core50")
	dim := set.Backbone.LatentShape[0]
	s := baselines.NewSLDA(dim, 10, baselines.Config{})
	st := set.Stream(1, data.StreamOptions{BatchSize: 10})
	bt, _ := st.Next()
	s.Observe(bt)
	z := set.Test[0].Z
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(cl.LatentBatch{Samples: bt.Samples[:1]}) // marks precision stale
		s.Predict(z)                                       // forces an inversion
	}
}

// BenchmarkGEMMCycleModel measures the systolic tiling model itself.
func BenchmarkGEMMCycleModel(b *testing.B) {
	tpu := hw.EdgeTPU()
	for i := 0; i < b.N; i++ {
		tpu.NetworkCycles()
	}
}

// BenchmarkConv2DForward measures the im2col convolution kernel at a
// mid-network shape.
func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D("conv", 32, 64, 3, 1, 1, rng)
	x := tensor.RandNormal(rng, 1, 32, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

// BenchmarkGroupNormForward measures the backbone's normalisation layer.
func BenchmarkGroupNormForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	gn := nn.NewGroupNorm2D("gn", 64, 8)
	x := tensor.RandNormal(rng, 1, 64, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gn.Forward(x, false)
	}
}

// BenchmarkBFPRoundTrip measures the EdgeTPU datatype encoder on one
// paper-scale latent.
func BenchmarkBFPRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	z := tensor.RandNormal(rng, 1, 8192)
	cfg := quant.DefaultBFP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfg.RoundTripBFP(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadTrainStep measures one head SGD step on a latent.
func BenchmarkHeadTrainStep(b *testing.B) {
	set := testenv.Env(b, "core50")
	h := cl.NewHead(set.Backbone, cl.HeadConfig{LR: 0.05, Seed: 1})
	s := set.Train[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.TrainCEOn([]cl.LatentSample{s})
	}
}
