// Command chameleon-hw drives the hardware simulators directly: it prints
// per-method step profiles (MACs, replay traffic, serial ops) and the
// latency/energy breakdown on each platform, plus the FPGA resource report.
//
//	chameleon-hw                         # all methods × all platforms
//	chameleon-hw -method chameleon       # one method
//	chameleon-hw -replay 20 -h 5         # vary the training regime
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"chameleon/internal/cli"
	"chameleon/internal/hw"
	"chameleon/internal/mobilenet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-hw: ")
	var perf cli.Perf
	perf.Bind(flag.CommandLine)
	var (
		method     = flag.String("method", "", "restrict to one method (chameleon|latent|slda|er|der|finetune)")
		replay     = flag.Int("replay", 10, "replay elements per incoming sample (R)")
		accessRate = flag.Int("h", 10, "chameleon long-term access period")
		resolution = flag.Int("res", 128, "input resolution of the costed backbone")
		layers     = flag.Bool("layers", false, "print the per-layer systolic-array cycle breakdown")
	)
	flag.Parse()
	if err := perf.Validate(); err != nil {
		log.Fatal(err)
	}
	if perf.Precision == cli.PrecisionFP64 {
		log.Fatal("-precision fp64 is supported by chameleon-train only; hardware costing is precision-independent")
	}
	stop, err := perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	cfg := mobilenet.PaperConfig(50)
	cfg.Resolution = *resolution
	profiler := hw.NewProfiler(cfg, hw.ProfileParams{
		Replay: *replay, AccessRate: *accessRate, BytesPerScalar: 2,
	})
	platforms := []hw.Platform{hw.JetsonNano(), hw.ZCU102(), hw.EdgeTPU()}

	methods := []string{"finetune", "er", "der", "latent", "slda", "chameleon"}
	if *method != "" {
		methods = []string{*method}
	}
	for _, m := range methods {
		p, err := profiler.Profile(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n%s\n", strings.ToUpper(m), strings.Repeat("=", len(m)))
		fmt.Printf("  fwd MACs %.1fM  bwd MACs %.1fM  on-chip %.1f KiB  off-chip %.1f KiB  serial %.1fM ops\n",
			float64(p.FwdMACs)/1e6, float64(p.BwdMACs)/1e6,
			float64(p.OnChipBytes)/1024, float64(p.OffChipBytes)/1024,
			float64(p.SerialOps)/1e6)
		for _, plat := range platforms {
			c := plat.Step(p)
			fmt.Printf("  %-12s latency %8.1f ms  energy %6.2f J  (compute %2.0f%% / data %2.0f%% / serial %2.0f%%)\n",
				plat.Name(), c.LatencySec*1e3, c.EnergyJ,
				100*c.ComputeFrac, 100*c.DataFrac, 100*c.SerialFrac)
		}
		fmt.Println()
	}
	fmt.Println("ZCU102 resource utilization (Table III):")
	fmt.Println("  " + hw.ZCU102().Resources().String())

	latent := int64(64 * 1024) // 512×8×8 fp16 at 128×128 input
	fmt.Println("\nOn-chip placement (ZCU102 BRAM):")
	fmt.Println("  Ms (10 latents):  " + hw.ZCU102Fit(10*latent).String())
	fmt.Println("  unified (100):    " + hw.ZCU102Fit(100*latent).String())

	if *layers {
		fmt.Println("\nPer-layer EdgeTPU cycle breakdown (64x64 weight-stationary array):")
		tpu := hw.EdgeTPU()
		fmt.Printf("%-8s %-6s %10s %12s %14s %10s\n", "layer", "kind", "MACs(K)", "cycles(K)", "cycles/MAC", "frozen")
		for _, li := range mobilenet.Inventory(cfg) {
			c := tpu.LayerCycles(li)
			fmt.Printf("%-8s %-6s %10.0f %12.1f %14.2f %10v\n",
				li.Name, li.Kind, float64(li.MACs)/1e3, float64(c)/1e3, float64(c)/float64(li.MACs), li.Frozen)
		}
	}
}
