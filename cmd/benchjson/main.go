// Command benchjson measures the steady-state performance envelope of the
// online-learning hot path and writes it as machine-readable JSON (the PR
// regression artefact, BENCH_pr5.json by default):
//
//   - train_step: one TrainCEOn SGD step over a replay-sized batch
//     (ns/op, B/op, allocs/op — allocs must be 0 after warm-up),
//   - eval_batch: one cl.Evaluate pass over the full test pool,
//   - serial vs batched full-pool classification and their speedup
//     (the batched path must win by ≥2× and agree bit-for-bit),
//   - accuracy of the trained head on the synthetic pool (sanity: the
//     measured configuration actually learns),
//   - checkpoint: save/restore latency and frame size of a mid-stream
//     Chameleon snapshot, taken from the checkpoint package's own metrics,
//   - serve: a closed-loop load run (32 concurrent predict clients plus a
//     live observe stream) against an in-process serving instance, with
//     sustained throughput and p50/p95/p99 latency,
//   - metrics: the full end-of-run observability report (every counter,
//     gauge and histogram the instrumented run produced).
//
// The data is synthetic — per-class Gaussian prototypes in latent space — so
// the tool is self-contained and runs in seconds without the dataset
// pipeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"testing"
	"time"

	"chameleon/internal/baselines"
	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/core"
	"chameleon/internal/mobilenet"
	"chameleon/internal/nn"
	"chameleon/internal/obs"
	"chameleon/internal/parallel"
	"chameleon/internal/serve"
	"chameleon/internal/tensor"
)

// metric is one testing.Benchmark measurement.
type metric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func measure(f func()) metric {
	// Warm the workspace pools first so steady state is what gets measured.
	f()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return metric{NsPerOp: r.NsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// report is the BENCH_pr3.json schema. SerialEval is the pre-workspace serial
// Predict loop (a head without a workspace — the eval path as it existed
// before pooling, one allocation-fresh Forward per sample); PooledSerialEval
// is the same loop over the pooled head; BatchedEval is the PredictInto path.
// EvalSpeedup is SerialEval/BatchedEval — the full win of this change over
// the prior evaluation loop; PooledSpeedup isolates batching alone.
type report struct {
	GeneratedUnix    int64   `json:"generated_unix"`
	Workers          int     `json:"workers"`
	Classes          int     `json:"classes"`
	PoolSize         int     `json:"pool_size"`
	BatchSize        int     `json:"batch_size"`
	TrainStep        metric  `json:"train_step"`
	EvalBatch        metric  `json:"eval_batch"`
	SerialEval       metric  `json:"serial_eval"`
	PooledSerialEval metric  `json:"pooled_serial_eval"`
	BatchedEval      metric  `json:"batched_eval"`
	EvalSpeedup      float64 `json:"eval_speedup"`
	PooledSpeedup    float64 `json:"pooled_speedup"`
	PredictionsMatch bool    `json:"predictions_match"`
	AccuracyPct      float64 `json:"accuracy_pct"`
	// Checkpoint durability cost of a mid-stream Chameleon snapshot, averaged
	// over checkpointRounds save/load round-trips; the numbers come from the
	// checkpoint package's own save/restore instrumentation, so this also
	// exercises the metrics plumbing end to end.
	CheckpointSaveMs    float64 `json:"checkpoint_save_ms"`
	CheckpointRestoreMs float64 `json:"checkpoint_restore_ms"`
	CheckpointSaves     int64   `json:"checkpoint_saves"`
	CheckpointRestores  int64   `json:"checkpoint_restores"`
	CheckpointFrameKB   float64 `json:"checkpoint_frame_kb"`
	// Serve is the closed-loop load run against an in-process serving
	// instance: 32 concurrent predict clients plus one live observe stream,
	// reported as sustained throughput and p50/p95/p99 latency.
	Serve serve.LoadReport `json:"serve"`
	// Metrics is the structured end-of-run report of the default registry.
	Metrics obs.Report `json:"metrics"`
}

// checkpointRounds is how many save/load round-trips feed the checkpoint
// latency averages.
const checkpointRounds = 20

// benchCheckpoint drives a Chameleon learner over a short synthetic stream,
// then round-trips its snapshot through checkpoint.Save/Load; the registry's
// checkpoint_* metrics pick up the latency and frame size.
func benchCheckpoint(rep *report, model *mobilenet.Model, train []cl.LatentSample, batch int, seed int64) {
	head := cl.NewHead(model, cl.HeadConfig{Seed: seed + 1})
	learner := core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: seed})
	for start := 0; start+batch <= len(train) && start < 20*batch; start += batch {
		learner.Observe(cl.LatentBatch{Samples: train[start : start+batch]})
	}
	snap, err := learner.Snapshot()
	if err != nil {
		log.Fatalf("checkpoint bench: snapshot: %v", err)
	}
	dir, err := os.MkdirTemp("", "benchjson-ckpt")
	if err != nil {
		log.Fatalf("checkpoint bench: %v", err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/bench.ckpt"
	before := obs.Default().Report()
	for i := 0; i < checkpointRounds; i++ {
		if err := checkpoint.Save(path, "bench.chameleon", snap); err != nil {
			log.Fatalf("checkpoint bench: save: %v", err)
		}
		var restored []byte
		if err := checkpoint.Load(path, "bench.chameleon", &restored); err != nil {
			log.Fatalf("checkpoint bench: load: %v", err)
		}
	}
	after := obs.Default().Report()
	saveH, loadH := after.Histograms["checkpoint_save_seconds"], after.Histograms["checkpoint_restore_seconds"]
	saveB, loadB := before.Histograms["checkpoint_save_seconds"], before.Histograms["checkpoint_restore_seconds"]
	rep.CheckpointSaves = saveH.Count - saveB.Count
	rep.CheckpointRestores = loadH.Count - loadB.Count
	if rep.CheckpointSaves > 0 {
		rep.CheckpointSaveMs = 1e3 * (saveH.Sum - saveB.Sum) / float64(rep.CheckpointSaves)
	}
	if rep.CheckpointRestores > 0 {
		rep.CheckpointRestoreMs = 1e3 * (loadH.Sum - loadB.Sum) / float64(rep.CheckpointRestores)
	}
	bytes := after.Counters["checkpoint_save_bytes_total"] - before.Counters["checkpoint_save_bytes_total"]
	if rep.CheckpointSaves > 0 {
		rep.CheckpointFrameKB = float64(bytes) / float64(rep.CheckpointSaves) / 1024
	}
}

// benchServe stands up a full serving instance around a fresh Chameleon
// learner and drives it with the load generator: 32 concurrent closed-loop
// predict clients (the PR's acceptance floor) plus a live observe stream.
func benchServe(model *mobilenet.Model, classes int, seed int64) serve.LoadReport {
	head := cl.NewHead(model, cl.HeadConfig{Seed: seed + 2})
	learner := core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: seed})
	srv, err := serve.New(learner, serve.Config{LatentShape: model.LatentShape, Classes: classes})
	if err != nil {
		log.Fatalf("serve bench: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatalf("serve bench: %v", err)
	}
	rep, err := serve.RunLoad("http://"+srv.Addr(), serve.LoadOptions{
		Clients:        32,
		Duration:       2 * time.Second,
		ObserveBatches: 20,
		Seed:           seed,
	})
	if err != nil {
		log.Fatalf("serve bench: load: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("serve bench: shutdown: %v", err)
	}
	return rep
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var perf cli.Perf
	perf.Bind(flag.CommandLine)
	var (
		out     = flag.String("out", "BENCH_pr5.json", "output JSON path")
		classes = flag.Int("classes", 10, "synthetic class count")
		pool    = flag.Int("pool", 400, "test-pool size")
		batch   = flag.Int("batch", 11, "train-step batch size (incoming + replay)")
		seed    = flag.Int64("seed", 7, "data and head seed")
	)
	flag.Parse()
	stop, err := perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	model, err := mobilenet.New(mobilenet.DefaultConfig(*classes, *seed))
	if err != nil {
		log.Fatalf("backbone: %v", err)
	}
	head := cl.NewHead(model, cl.HeadConfig{Seed: *seed})
	learner := baselines.NewFinetune(head)

	// Synthetic latents: one Gaussian prototype per class plus sample noise,
	// shaped like the backbone's latent activations.
	rng := rand.New(rand.NewSource(*seed))
	protos := make([]*tensor.Tensor, *classes)
	for c := range protos {
		protos[c] = tensor.RandNormal(rng, 1.0, model.LatentShape...)
	}
	sample := func(c int) cl.LatentSample {
		z := tensor.RandNormal(rng, 0.3, model.LatentShape...)
		z.AddInPlace(protos[c])
		return cl.LatentSample{Z: z, Label: c}
	}
	train := make([]cl.LatentSample, 4**pool)
	for i := range train {
		train[i] = sample(i % *classes)
	}
	test := make([]cl.LatentSample, *pool)
	for i := range test {
		test[i] = sample(i % *classes)
	}

	// Train to a plausible operating point before timing anything, so the
	// measured steady state is the one real runs live in.
	for start := 0; start < len(train); start += *batch {
		end := start + *batch
		if end > len(train) {
			end = len(train)
		}
		head.TrainCEOn(train[start:end])
	}
	acc := cl.Evaluate(learner, test)

	stepBatch := train[:*batch]
	zs := make([]*tensor.Tensor, len(test))
	for i, s := range test {
		zs[i] = s.Z
	}
	serialPreds := make([]int, len(test))
	pooledPreds := make([]int, len(test))
	batchedPreds := make([]int, len(test))

	// The pre-PR baseline: a hand-built head with no workspace, evaluating
	// through the allocation-fresh serial path, with the trained weights
	// copied in so all three paths classify the same function.
	unpooled := &cl.Head{Net: model.Head, Opt: nn.NewSGD(0.01), Classes: *classes}
	unpooled.Restore(head.Snapshot())

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		Workers:       parallel.Workers(),
		Classes:       *classes,
		PoolSize:      *pool,
		BatchSize:     *batch,
		AccuracyPct:   100 * acc.AccAll,
	}
	rep.TrainStep = measure(func() { head.TrainCEOn(stepBatch) })
	rep.EvalBatch = measure(func() { cl.Evaluate(learner, test) })
	rep.SerialEval = measure(func() {
		for i, z := range zs {
			serialPreds[i] = unpooled.Predict(z)
		}
	})
	rep.PooledSerialEval = measure(func() {
		for i, z := range zs {
			pooledPreds[i] = learner.Predict(z)
		}
	})
	rep.BatchedEval = measure(func() {
		if err := cl.PredictInto(learner, zs, batchedPreds); err != nil {
			log.Fatalf("batched eval: %v", err)
		}
	})
	rep.EvalSpeedup = float64(rep.SerialEval.NsPerOp) / float64(rep.BatchedEval.NsPerOp)
	rep.PooledSpeedup = float64(rep.PooledSerialEval.NsPerOp) / float64(rep.BatchedEval.NsPerOp)
	rep.PredictionsMatch = true
	for i := range serialPreds {
		if serialPreds[i] != batchedPreds[i] || pooledPreds[i] != batchedPreds[i] {
			rep.PredictionsMatch = false
			break
		}
	}
	benchCheckpoint(&rep, model, train, *batch, *seed)
	benchServe(model, *classes, *seed) // warm-up run: JIT-free, but settles pools/conn reuse
	rep.Serve = benchServe(model, *classes, *seed)
	// Snapshot last so the report carries everything the run produced: trainer
	// phase histograms, replay-store counters, pool utilisation, head timings,
	// and the serving layer's queue/batch/shed instrumentation.
	rep.Metrics = obs.Default().Report()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create %s: %v", *out, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}

	fmt.Printf("train_step: %d ns/op, %d allocs/op\n", rep.TrainStep.NsPerOp, rep.TrainStep.AllocsPerOp)
	fmt.Printf("eval_batch (pool=%d): %d ns/op, %d allocs/op\n", rep.PoolSize, rep.EvalBatch.NsPerOp, rep.EvalBatch.AllocsPerOp)
	fmt.Printf("serial Predict loop: %d ns/op, %d allocs/op\n", rep.SerialEval.NsPerOp, rep.SerialEval.AllocsPerOp)
	fmt.Printf("eval speedup (batched vs serial Predict loop): %.2fx (vs pooled serial: %.2fx), predictions match: %v\n",
		rep.EvalSpeedup, rep.PooledSpeedup, rep.PredictionsMatch)
	fmt.Printf("checkpoint: save %.2f ms, restore %.2f ms, frame %.0f KB (%d round-trips)\n",
		rep.CheckpointSaveMs, rep.CheckpointRestoreMs, rep.CheckpointFrameKB, rep.CheckpointSaves)
	fmt.Printf("serve (%d clients): %.0f req/s, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, shed %d\n",
		rep.Serve.Clients, rep.Serve.ThroughputRPS, rep.Serve.P50Ms, rep.Serve.P95Ms, rep.Serve.P99Ms, rep.Serve.Shed)
	fmt.Printf("accuracy: %.1f%%  →  %s\n", rep.AccuracyPct, *out)
}
