// Command benchjson measures the steady-state performance envelope of the
// online-learning hot path and writes it as machine-readable JSON (the PR
// regression artefact, BENCH_pr10.json by default):
//
//   - train_step: one TrainCEOn SGD step over a replay-sized batch
//     (ns/op, B/op, allocs/op — allocs must be 0 after warm-up),
//   - train_batched: the batch-first training path against the per-sample
//     reference path at B=32 — one GEMM per Dense over the whole batch
//     versus N GEMV round-trips. With -check the batched arm must hold a
//     ≥1.5× lead and stay at 0 allocs/op,
//   - precision: the kernel-tier comparison — the fp32 fused train step
//     against the split-update fp32 step and the float64 reference tier,
//     plus raw MatMul/MatVec ns/op at both precisions. With -check the
//     ratios become regression gates: the fused step must not regress
//     against split (≤1.05×), the fp32 tier must hold a ≥1.5× lead over
//     the fp64 reference, and the fused step must stay 0 allocs/op. Gates
//     are within-run ratios, not absolute ns/op, so they hold on any
//     machine,
//   - eval_batch: one cl.Evaluate pass over the full test pool,
//   - serial vs batched full-pool classification and their speedup
//     (the batched path must win by ≥2× and agree bit-for-bit),
//   - accuracy of the trained head on the synthetic pool (sanity: the
//     measured configuration actually learns),
//   - checkpoint: save/restore latency and frame size of a mid-stream
//     Chameleon snapshot, taken from the checkpoint package's own metrics,
//   - serve: a closed-loop load run (32 concurrent predict clients plus a
//     live observe stream) against an in-process serving instance, with
//     sustained throughput and p50/p95/p99 latency,
//   - fleet: a Zipf-user load run against an in-process multi-tenant fleet
//     server (10k-user id space, bounded hot-set), with sustained
//     throughput, eviction/fault-in counts, fault-in p50/p99 latency and
//     resident heap per 10k known users,
//   - replication: the warm-standby envelope — the serve load repeated
//     against a primary whose observe path appends to the durable log while
//     a standby tails it (added p99 vs the plain serve section), then a
//     rolling restart under load with client failover. With -check the
//     restart must lose zero requests and the survivor must pass the
//     (snapshot, log) bit-identity verification,
//   - frontier: the fp32-vs-int8 equal-bytes memory–accuracy frontier —
//     latent and Chameleon stores at the same byte budget, int8 arms holding
//     ~4–5× the samples, run over both Domain-IL streams at test scale. With
//     -check the Chameleon pairs must hold a ≥4× sample ratio and the int8
//     arm must stay within 1.0 accuracy point of fp32 on every dataset,
//   - metrics: the full end-of-run observability report (every counter,
//     gauge and histogram the instrumented run produced).
//
// The perf sections use synthetic data — per-class Gaussian prototypes in
// latent space — so the gate-only -quick run is self-contained and finishes
// in seconds. The frontier section (full runs only) builds the real dataset
// pipeline at test scale; latents are cached, so only the first run per
// machine pays the extraction cost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/baselines"
	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/core"
	"chameleon/internal/exp"
	"chameleon/internal/fleet"
	"chameleon/internal/mobilenet"
	"chameleon/internal/nn"
	"chameleon/internal/obs"
	"chameleon/internal/parallel"
	"chameleon/internal/replication"
	"chameleon/internal/serve"
	"chameleon/internal/tensor"
)

// metric is one testing.Benchmark measurement.
type metric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func measure(f func()) metric {
	// Warm the workspace pools first so steady state is what gets measured.
	f()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return metric{NsPerOp: r.NsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// measureInterleaved benchmarks every arm round-robin `rounds` times and keeps
// each arm's fastest round. On a shared (often single-vCPU) runner one
// testing.Benchmark window can absorb a noisy-neighbour period wholesale,
// which would skew any single-shot comparison between arms; interleaving
// spreads such periods across all arms, and the per-arm minimum is the robust
// estimator for compute-bound kernels because interference only ever adds
// time. Allocation counts are deterministic, so they ride along with whichever
// round was fastest.
func measureInterleaved(rounds int, arms ...func()) []metric {
	out := make([]metric, len(arms))
	for r := 0; r < rounds; r++ {
		for i, f := range arms {
			m := measure(f)
			if r == 0 || m.NsPerOp < out[i].NsPerOp {
				out[i] = m
			}
		}
	}
	return out
}

// report is the BENCH_pr3.json schema. SerialEval is the pre-workspace serial
// Predict loop (a head without a workspace — the eval path as it existed
// before pooling, one allocation-fresh Forward per sample); PooledSerialEval
// is the same loop over the pooled head; BatchedEval is the PredictInto path.
// EvalSpeedup is SerialEval/BatchedEval — the full win of this change over
// the prior evaluation loop; PooledSpeedup isolates batching alone.
type report struct {
	GeneratedUnix int64 `json:"generated_unix"`
	Workers       int   `json:"workers"`
	Classes       int   `json:"classes"`
	PoolSize      int   `json:"pool_size"`
	BatchSize     int   `json:"batch_size"`
	// Quick marks a gate-only run (-quick): the serve and checkpoint
	// sections are skipped and zeroed.
	Quick            bool               `json:"quick"`
	TrainStep        metric             `json:"train_step"`
	TrainBatched     trainBatchedReport `json:"train_batched"`
	Precision        precisionReport    `json:"precision"`
	EvalBatch        metric             `json:"eval_batch"`
	SerialEval       metric             `json:"serial_eval"`
	PooledSerialEval metric             `json:"pooled_serial_eval"`
	BatchedEval      metric             `json:"batched_eval"`
	EvalSpeedup      float64            `json:"eval_speedup"`
	PooledSpeedup    float64            `json:"pooled_speedup"`
	PredictionsMatch bool               `json:"predictions_match"`
	AccuracyPct      float64            `json:"accuracy_pct"`
	// Checkpoint durability cost of a mid-stream Chameleon snapshot, averaged
	// over checkpointRounds save/load round-trips; the numbers come from the
	// checkpoint package's own save/restore instrumentation, so this also
	// exercises the metrics plumbing end to end.
	CheckpointSaveMs    float64 `json:"checkpoint_save_ms"`
	CheckpointRestoreMs float64 `json:"checkpoint_restore_ms"`
	CheckpointSaves     int64   `json:"checkpoint_saves"`
	CheckpointRestores  int64   `json:"checkpoint_restores"`
	CheckpointFrameKB   float64 `json:"checkpoint_frame_kb"`
	// Serve is the closed-loop load run against an in-process serving
	// instance: 32 concurrent predict clients plus one live observe stream,
	// reported as sustained throughput and p50/p95/p99 latency.
	Serve serve.LoadReport `json:"serve"`
	// Fleet is the multi-tenant serving run: Zipf-popular users against an
	// in-process fleet server with a bounded hot-set, so the numbers cover
	// the eviction/fault-in path, not just steady-state residents.
	Fleet fleetReport `json:"fleet"`
	// Replication is the warm-standby section (full runs only; nil under
	// -quick): the serving tax of the durable observe log with a live
	// standby tailing it, and a rolling restart under load — handoff time
	// and zero failed requests are the headline numbers.
	Replication *replicationReport `json:"replication,omitempty"`
	// Frontier is the equal-bytes fp32-vs-int8 store comparison (full runs
	// only; nil under -quick).
	Frontier *exp.FrontierResult `json:"frontier,omitempty"`
	// Metrics is the structured end-of-run report of the default registry.
	Metrics obs.Report `json:"metrics"`
}

// precisionReport is the kernel-tier section: one replay-sized train step
// through the fp32 fused path, the fp32 split path and the fp64 reference
// tier, plus raw GEMM/GEMV kernels at both precisions. The ratios are the
// regression gates (see -check).
type precisionReport struct {
	TrainStepFP32Fused metric `json:"train_step_fp32_fused"`
	TrainStepFP32Split metric `json:"train_step_fp32_split"`
	TrainStepFP64Ref   metric `json:"train_step_fp64_ref"`
	MatMulFP32         metric `json:"matmul_fp32"`
	MatMulFP64         metric `json:"matmul_fp64"`
	MatVecFP32         metric `json:"matvec_fp32"`
	MatVecFP64         metric `json:"matvec_fp64"`
	// FP64OverFP32Fused is ref-tier ns / fast-tier ns for the train step
	// (gate: ≥ 1.5 — the fast tier must actually be fast).
	FP64OverFP32Fused float64 `json:"fp64_over_fp32_fused"`
	// FusedOverSplit is fused ns / split ns (gate: ≤ 1.05 — fusing must not
	// regress the step).
	FusedOverSplit float64 `json:"fused_over_split"`
}

// precisionRounds is how many interleaved testing.Benchmark rounds feed each
// gated precision measurement (the per-arm minimum is reported).
const precisionRounds = 5

// trainBatchedReport is the batch-first training section: one TrainCEOn step
// over a replay-batch-sized sample set through the batched path (pack → one
// GEMM per Dense → row-wise CE → batched fused backward) and through the
// per-sample reference loop. Both heads start from the same seed and train on
// the same batch, so the arms differ only in kernel dispatch.
type trainBatchedReport struct {
	// BatchSize is B for this section (32 — the gate's operating point, wider
	// than the online replay batch so the GEMM has real work to amortise).
	BatchSize int    `json:"batch_size"`
	Batched   metric `json:"batched"`
	PerSample metric `json:"per_sample"`
	// Speedup is per-sample ns / batched ns (gate: ≥ 1.5 at B=32).
	Speedup float64 `json:"speedup"`
}

// trainBatchedB is the batch size the train_batched gate is measured at.
const trainBatchedB = 32

// benchTrainBatched measures the batch-first section.
func benchTrainBatched(model *mobilenet.Model, train []cl.LatentSample, seed int64) trainBatchedReport {
	headCfg := cl.HeadConfig{LR: 0.1, Momentum: 0.5, Seed: seed}
	batchedHead := cl.NewHead(model, headCfg)
	perSampleHead := cl.NewHead(model, headCfg)
	batchedHead.BatchTrain, perSampleHead.BatchTrain = true, false
	stepBatch := train[:trainBatchedB]
	arms := measureInterleaved(precisionRounds,
		func() { batchedHead.TrainCEOn(stepBatch) },
		func() { perSampleHead.TrainCEOn(stepBatch) },
	)
	rep := trainBatchedReport{BatchSize: trainBatchedB, Batched: arms[0], PerSample: arms[1]}
	rep.Speedup = float64(rep.PerSample.NsPerOp) / float64(rep.Batched.NsPerOp)
	return rep
}

// benchPrecision measures the kernel-tier section. Every path trains a
// freshly initialised head over the same batch, so the three train-step
// numbers differ only in kernel tier, not in work.
func benchPrecision(model *mobilenet.Model, stepBatch []cl.LatentSample, seed int64) precisionReport {
	var p precisionReport

	// The heads train under the Table-I online regime (exp.Scale's LR 0.1,
	// momentum 0.5) so the measured step exercises the velocity stream the
	// real runs pay for.
	headCfg := cl.HeadConfig{LR: 0.1, Momentum: 0.5, Seed: seed}
	fusedHead := cl.NewHead(model, headCfg)
	splitHead := cl.NewHead(model, headCfg)
	splitHead.Opt.Fused = false
	ref, err := cl.NewRef64(cl.NewHead(model, headCfg))
	if err != nil {
		log.Fatalf("precision bench: widen head: %v", err)
	}
	refBatch := cl.LatentBatch{Samples: stepBatch}
	steps := measureInterleaved(precisionRounds,
		func() { fusedHead.TrainCEOn(stepBatch) },
		func() { splitHead.TrainCEOn(stepBatch) },
		func() { ref.Observe(refBatch) },
	)
	p.TrainStepFP32Fused, p.TrainStepFP32Split, p.TrainStepFP64Ref = steps[0], steps[1], steps[2]

	// Raw kernels, sized like the head's fc1 GEMM (latent width × hidden).
	const m, k, n = 64, 256, 128
	rng := rand.New(rand.NewSource(seed))
	a32, b32 := tensor.RandNormal(rng, 1, m, k), tensor.RandNormal(rng, 1, k, n)
	c32, v32, y32 := tensor.New(m, n), tensor.RandNormal(rng, 1, k), tensor.New(m)
	a64, b64, v64 := tensor.Widen(a32), tensor.Widen(b32), tensor.Widen(v32)
	c64, y64 := tensor.NewOf[float64](m, n), tensor.NewOf[float64](m)
	kernels := measureInterleaved(precisionRounds,
		func() { tensor.MatMulInto(c32, a32, b32) },
		func() { tensor.MatMulInto(c64, a64, b64) },
		func() { tensor.MatVecInto(y32, a32, v32) },
		func() { tensor.MatVecInto(y64, a64, v64) },
	)
	p.MatMulFP32, p.MatMulFP64, p.MatVecFP32, p.MatVecFP64 = kernels[0], kernels[1], kernels[2], kernels[3]

	p.FP64OverFP32Fused = float64(p.TrainStepFP64Ref.NsPerOp) / float64(p.TrainStepFP32Fused.NsPerOp)
	p.FusedOverSplit = float64(p.TrainStepFP32Fused.NsPerOp) / float64(p.TrainStepFP32Split.NsPerOp)
	return p
}

// checkGates applies the within-run regression gates and returns the
// violations (empty = pass).
func checkGates(rep *report) []string {
	var fails []string
	if rep.TrainStep.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("train_step allocs/op = %d, want 0", rep.TrainStep.AllocsPerOp))
	}
	if rep.Precision.TrainStepFP32Fused.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("fp32 fused train step allocs/op = %d, want 0", rep.Precision.TrainStepFP32Fused.AllocsPerOp))
	}
	if rep.Precision.FP64OverFP32Fused < 1.5 {
		fails = append(fails, fmt.Sprintf("fp64/fp32-fused train-step ratio = %.2f, want >= 1.5 (fast tier lost its lead)", rep.Precision.FP64OverFP32Fused))
	}
	if rep.Precision.FusedOverSplit > 1.05 {
		fails = append(fails, fmt.Sprintf("fused/split train-step ratio = %.2f, want <= 1.05 (fused kernel regressed)", rep.Precision.FusedOverSplit))
	}
	if !rep.PredictionsMatch {
		fails = append(fails, "serial, pooled and batched eval predictions diverge")
	}
	if rep.TrainBatched.Batched.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("batched train step allocs/op = %d, want 0", rep.TrainBatched.Batched.AllocsPerOp))
	}
	if rep.TrainBatched.Speedup < 1.5 {
		fails = append(fails, fmt.Sprintf("batched/per-sample train-step speedup = %.2f at B=%d, want >= 1.5 (batch-first path lost its lead)",
			rep.TrainBatched.Speedup, rep.TrainBatched.BatchSize))
	}
	// Replication gates (full runs only): the rolling restart must lose no
	// requests, and the survivor must pass (snapshot, log) bit-identity.
	if rep.Replication != nil {
		if rep.Replication.Failover.Errors != 0 {
			fails = append(fails, fmt.Sprintf("replication failover run lost %d request(s), want 0 (zero-downtime handoff broken)", rep.Replication.Failover.Errors))
		}
		if !rep.Replication.VerifyEqual {
			fails = append(fails, "replication survivor failed (snapshot, log) bit-identity verification")
		}
	}
	// Equal-bytes frontier gates (full runs only): the int8 Chameleon store
	// must actually convert its byte budget into ≥4× the samples, and those
	// samples must not cost accuracy — within 1.0 point of fp32 everywhere.
	if rep.Frontier != nil {
		for _, p := range rep.Frontier.Pairs {
			if p.Method != "chameleon" {
				continue
			}
			if p.SampleRatio < 4 {
				fails = append(fails, fmt.Sprintf("frontier chameleon-%d: int8/fp32 sample ratio = %.2f, want >= 4", p.Budget, p.SampleRatio))
			}
			for _, ds := range rep.Frontier.Datasets {
				if p.DeltaPts[ds] < -1.0 {
					fails = append(fails, fmt.Sprintf("frontier chameleon-%d on %s: int8 arm %.2f pts below fp32, want >= -1.0", p.Budget, ds, p.DeltaPts[ds]))
				}
			}
		}
	}
	return fails
}

// benchFrontier builds both Domain-IL latent sets at test scale (cached
// after the first run per machine) and runs the equal-bytes fp32-vs-int8
// frontier. Budgets sit below the Fig. 2 grid deliberately: the test-scale
// stream promotes at most ~64 samples into the long-term store, so both
// arms' capacities must stay inside what the stream can fill — a store
// bigger than the promotion count retains stale early-domain samples that
// class-balanced eviction would have flushed, which degrades *both* dtypes
// equally (measured: fp32 and int8 drop in lockstep at cap 109+) and would
// measure a stream-length artefact instead of the representation. At
// budgets 4 and 8 the int8 arms (45/61 and 15/31 samples) are exercised in
// full, which is also the edge-memory regime the frontier is about.
func benchFrontier() *exp.FrontierResult {
	sc := exp.TestScale()
	sets := map[string]*cl.LatentSet{}
	for _, name := range []string{"core50", "openloris"} {
		set, err := exp.BuildLatentSet(name, sc, exp.DefaultCacheDir(), log.Printf)
		if err != nil {
			log.Fatalf("frontier: build %s: %v", name, err)
		}
		sets[name] = set
	}
	res, err := exp.RunFrontier(sets, sc, []int{4, 8}, log.Printf)
	if err != nil {
		log.Fatalf("frontier: %v", err)
	}
	return res
}

// checkpointRounds is how many save/load round-trips feed the checkpoint
// latency averages.
const checkpointRounds = 20

// benchCheckpoint drives a Chameleon learner over a short synthetic stream,
// then round-trips its snapshot through checkpoint.Save/Load; the registry's
// checkpoint_* metrics pick up the latency and frame size.
func benchCheckpoint(rep *report, model *mobilenet.Model, train []cl.LatentSample, batch int, seed int64) {
	head := cl.NewHead(model, cl.HeadConfig{Seed: seed + 1})
	learner := core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: seed})
	for start := 0; start+batch <= len(train) && start < 20*batch; start += batch {
		learner.Observe(cl.LatentBatch{Samples: train[start : start+batch]})
	}
	snap, err := learner.Snapshot()
	if err != nil {
		log.Fatalf("checkpoint bench: snapshot: %v", err)
	}
	dir, err := os.MkdirTemp("", "benchjson-ckpt")
	if err != nil {
		log.Fatalf("checkpoint bench: %v", err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/bench.ckpt"
	before := obs.Default().Report()
	for i := 0; i < checkpointRounds; i++ {
		if err := checkpoint.Save(path, "bench.chameleon", snap); err != nil {
			log.Fatalf("checkpoint bench: save: %v", err)
		}
		var restored []byte
		if err := checkpoint.Load(path, "bench.chameleon", &restored); err != nil {
			log.Fatalf("checkpoint bench: load: %v", err)
		}
	}
	after := obs.Default().Report()
	saveH, loadH := after.Histograms["checkpoint_save_seconds"], after.Histograms["checkpoint_restore_seconds"]
	saveB, loadB := before.Histograms["checkpoint_save_seconds"], before.Histograms["checkpoint_restore_seconds"]
	rep.CheckpointSaves = saveH.Count - saveB.Count
	rep.CheckpointRestores = loadH.Count - loadB.Count
	if rep.CheckpointSaves > 0 {
		rep.CheckpointSaveMs = 1e3 * (saveH.Sum - saveB.Sum) / float64(rep.CheckpointSaves)
	}
	if rep.CheckpointRestores > 0 {
		rep.CheckpointRestoreMs = 1e3 * (loadH.Sum - loadB.Sum) / float64(rep.CheckpointRestores)
	}
	bytes := after.Counters["checkpoint_save_bytes_total"] - before.Counters["checkpoint_save_bytes_total"]
	if rep.CheckpointSaves > 0 {
		rep.CheckpointFrameKB = float64(bytes) / float64(rep.CheckpointSaves) / 1024
	}
}

// benchServe stands up a full serving instance around a fresh Chameleon
// learner and drives it with the load generator: 32 concurrent closed-loop
// predict clients (the PR's acceptance floor) plus a live observe stream.
func benchServe(model *mobilenet.Model, classes int, seed int64) serve.LoadReport {
	head := cl.NewHead(model, cl.HeadConfig{Seed: seed + 2})
	learner := core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: seed})
	srv, err := serve.New(learner, serve.Config{LatentShape: model.LatentShape, Classes: classes})
	if err != nil {
		log.Fatalf("serve bench: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatalf("serve bench: %v", err)
	}
	rep, err := serve.RunLoad("http://"+srv.Addr(), serve.LoadOptions{
		Clients:        32,
		Duration:       2 * time.Second,
		ObserveBatches: 20,
		Seed:           seed,
	})
	if err != nil {
		log.Fatalf("serve bench: load: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("serve bench: shutdown: %v", err)
	}
	return rep
}

// replicationReport is the warm-standby section of the PR artefact: the same
// closed-loop load the serve section runs, but against a primary that appends
// every observe to its durable log while a warm standby tails it, then a
// rolling restart of the primary under load with the client's -failover
// retry path engaged.
type replicationReport struct {
	// Replicated is the load run against the primary with the WAL on and the
	// standby streaming — same shape as the serve section, so the p99 delta
	// against it is the client-visible cost of replication.
	Replicated serve.LoadReport `json:"replicated"`
	// AddedP99Ms is Replicated p99 minus the plain (no-WAL, no-standby)
	// serve section's p99, in milliseconds. Noise can drive it slightly
	// negative on quiet machines; it is reported, not gated.
	AddedP99Ms float64 `json:"added_p99_ms"`
	// Failover is the rolling-restart run: the primary shuts down mid-load
	// while clients retry onto the standby. Errors is gated to 0 — the
	// zero-downtime handoff contract.
	Failover serve.LoadReport `json:"failover"`
	// HandoffMs is the wall time from initiating the primary's shutdown to
	// the standby answering as primary (drain + final log page + promote).
	HandoffMs float64 `json:"handoff_ms"`
	// VerifyEqual is the survivor's /v1/replication/verify verdict: a fresh
	// learner rebuilt from (snapshot, log suffix) is bit-identical to the
	// live one. Gated.
	VerifyEqual bool `json:"verify_equal"`
}

// benchReplication stands up a primary (observe log on) plus a warm standby
// tailing it, measures the replicated serving envelope, then rolls the
// primary over under load and times the handoff.
func benchReplication(model *mobilenet.Model, classes int, seed int64, plainP99Ms float64) *replicationReport {
	newLearner := func() (cl.Learner, error) {
		head := cl.NewHead(model, cl.HeadConfig{Seed: seed + 4})
		return core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: seed + 4}), nil
	}
	openLog := func(dir string) *replication.Log {
		wlog, err := replication.Open(dir, replication.Options{Registry: obs.NewRegistry()})
		if err != nil {
			log.Fatalf("replication bench: open log: %v", err)
		}
		return wlog
	}
	pdir, err := os.MkdirTemp("", "benchjson-repl")
	if err != nil {
		log.Fatalf("replication bench: %v", err)
	}
	defer os.RemoveAll(pdir)
	plog, slog := openLog(pdir+"/primary"), openLog(pdir+"/standby")
	defer plog.Close()
	defer slog.Close()

	newServer := func(wlog *replication.Log, standby bool) *serve.Server {
		l, err := newLearner()
		if err != nil {
			log.Fatalf("replication bench: learner: %v", err)
		}
		srv, err := serve.New(l, serve.Config{
			LatentShape:     model.LatentShape,
			Classes:         classes,
			WAL:             wlog,
			Standby:         standby,
			NewLearner:      newLearner,
			SnapshotsEqual:  core.SnapshotsEqual,
			CheckpointEvery: 8,
		})
		if err != nil {
			log.Fatalf("replication bench: serve: %v", err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			log.Fatalf("replication bench: start: %v", err)
		}
		return srv
	}
	primary := newServer(plog, false)
	standby := newServer(slog, true)
	primaryURL := "http://" + primary.Addr()
	standbyURL := "http://" + standby.Addr()

	fol, err := replication.NewFollower(replication.FollowerConfig{
		PrimaryURL:    primaryURL,
		Target:        standby,
		PollInterval:  5 * time.Millisecond,
		FailoverAfter: -1, // promotion only via the primary's graceful handoff
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		log.Fatalf("replication bench: follower: %v", err)
	}
	folCtx, folCancel := context.WithCancel(context.Background())
	folDone := make(chan error, 1)
	go func() { folDone <- fol.Run(folCtx) }()

	rep := &replicationReport{}

	// Phase 1: steady-state replicated serving — WAL appends on the observe
	// path, the standby pulling log pages the whole time.
	rep.Replicated, err = serve.RunLoad(primaryURL, serve.LoadOptions{
		Clients:        32,
		Duration:       2 * time.Second,
		ObserveBatches: 20,
		Seed:           seed,
	})
	if err != nil {
		log.Fatalf("replication bench: replicated load: %v", err)
	}
	rep.AddedP99Ms = rep.Replicated.P99Ms - plainP99Ms

	// Phase 2: rolling restart under load. Clients target the primary with
	// the standby as the failover pool; the primary shuts down mid-run.
	loadDone := make(chan struct{})
	var failoverRep serve.LoadReport
	var loadErr error
	go func() {
		defer close(loadDone)
		failoverRep, loadErr = serve.RunLoad(primaryURL, serve.LoadOptions{
			Clients:        32,
			Duration:       2 * time.Second,
			ObserveBatches: 20,
			Seed:           seed + 1,
			Failover:       standbyURL,
		})
	}()
	time.Sleep(500 * time.Millisecond)
	t0 := time.Now()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := primary.Shutdown(shutCtx); err != nil {
		log.Fatalf("replication bench: primary shutdown: %v", err)
	}
	shutCancel()
	for !standby.Ready() {
		time.Sleep(time.Millisecond)
	}
	rep.HandoffMs = 1e3 * time.Since(t0).Seconds()
	<-loadDone
	if loadErr != nil {
		log.Fatalf("replication bench: failover load: %v", loadErr)
	}
	rep.Failover = failoverRep
	folCancel()
	<-folDone

	// The survivor proves the log: rebuild from (snapshot, log suffix) and
	// compare bit-for-bit against the live learner.
	resp, err := http.Get(standbyURL + "/v1/replication/verify")
	if err != nil {
		log.Fatalf("replication bench: verify: %v", err)
	}
	var vr api.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		log.Fatalf("replication bench: verify decode: %v", err)
	}
	resp.Body.Close()
	rep.VerifyEqual = vr.Equal

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := standby.Shutdown(ctx); err != nil {
		log.Fatalf("replication bench: survivor shutdown: %v", err)
	}
	return rep
}

// fleetReport is the multi-tenant section of the PR artefact: one Zipf-user
// load run against an in-process fleet server whose hot-set is far smaller
// than the user population, so a meaningful fraction of requests pays the
// evict/fault-in path and the latency histogram actually covers it.
type fleetReport struct {
	Users  int `json:"users"`
	HotSet int `json:"hot_set"`
	Shards int `json:"shards"`
	// Load is the same closed-loop load report the single-learner serve
	// section uses, here with per-request user ids drawn Zipf(s=1.2).
	Load serve.LoadReport `json:"load"`
	// UsersKnown / Resident / Evictions / FaultIns come from fleet.Stats()
	// at the end of the run (before drain).
	UsersKnown int64 `json:"users_known"`
	Resident   int64 `json:"resident_learners"`
	Evictions  int64 `json:"evictions_total"`
	FaultIns   int64 `json:"fault_ins_total"`
	// Fault-in latency quantiles from the fleet_fault_in_seconds histogram
	// (bucket-interpolated, so coarse but machine-independent in shape).
	FaultInP50Ms float64 `json:"fault_in_p50_ms"`
	FaultInP99Ms float64 `json:"fault_in_p99_ms"`
	// HeapMB is the live-heap growth attributable to the fleet run (GC'd
	// before/after measurement); HeapMBPer10kUsers normalises it to the
	// paper-scale question "what does 10k known users cost resident?" —
	// with a bounded hot-set the answer must stay near the hot-set cost,
	// not scale with the user count.
	HeapMB            float64 `json:"heap_mb"`
	HeapMBPer10kUsers float64 `json:"heap_mb_per_10k_users"`
}

// benchFleet stands up a fleet server (10k-user id space, 32-slot hot-set,
// 4 shards) around per-user Chameleon learners and drives it with the Zipf
// load generator.
func benchFleet(model *mobilenet.Model, classes int, seed int64) fleetReport {
	const users, hotSet, shards = 10000, 32, 4

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	dir, err := os.MkdirTemp("", "benchjson-fleet")
	if err != nil {
		log.Fatalf("fleet bench: %v", err)
	}
	defer os.RemoveAll(dir)
	fl, err := fleet.New(fleet.Config{
		New: func(user string) (cl.Learner, error) {
			s := fleet.UserSeed(seed+3, user)
			head := cl.NewHead(model, cl.HeadConfig{Seed: s})
			return core.New(head, core.Config{STCap: 10, LTCap: 100, AccessRate: 5, Seed: s}), nil
		},
		Dir:        dir,
		MaxUsers:   users,
		HotSet:     hotSet,
		Shards:     shards,
		QueueDepth: 256,
	})
	if err != nil {
		log.Fatalf("fleet bench: %v", err)
	}
	srv, err := serve.New(nil, serve.Config{LatentShape: model.LatentShape, Classes: classes, Fleet: fl})
	if err != nil {
		log.Fatalf("fleet bench: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatalf("fleet bench: %v", err)
	}
	before := obs.Default().Report()
	load, err := serve.RunLoad("http://"+srv.Addr(), serve.LoadOptions{
		Clients:        16,
		Duration:       2 * time.Second,
		ObserveBatches: 40,
		Users:          users,
		Seed:           seed,
	})
	if err != nil {
		log.Fatalf("fleet bench: load: %v", err)
	}
	st := fl.Stats()

	// Resident cost: measure while the hot-set is still populated, before the
	// drain evicts everything back to disk.
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("fleet bench: shutdown: %v", err)
	}

	rep := fleetReport{
		Users:      users,
		HotSet:     hotSet,
		Shards:     shards,
		Load:       load,
		UsersKnown: st.UsersKnown,
		Resident:   st.Resident,
		Evictions:  st.Evictions,
		FaultIns:   st.FaultIns,
	}
	if h, ok := obs.Default().Report().Histograms["fleet_fault_in_seconds"]; ok && h.Count > before.Histograms["fleet_fault_in_seconds"].Count {
		rep.FaultInP50Ms = 1e3 * h.Quantile(0.50)
		rep.FaultInP99Ms = 1e3 * h.Quantile(0.99)
	}
	if m1.HeapAlloc > m0.HeapAlloc {
		rep.HeapMB = float64(m1.HeapAlloc-m0.HeapAlloc) / (1 << 20)
	}
	if st.UsersKnown > 0 {
		rep.HeapMBPer10kUsers = rep.HeapMB * 1e4 / float64(st.UsersKnown)
	}
	return rep
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var perf cli.Perf
	perf.Bind(flag.CommandLine)
	var (
		out     = flag.String("out", "BENCH_pr10.json", "output JSON path")
		classes = flag.Int("classes", 10, "synthetic class count")
		pool    = flag.Int("pool", 400, "test-pool size")
		batch   = flag.Int("batch", 11, "train-step batch size (incoming + replay)")
		seed    = flag.Int64("seed", 7, "data and head seed")
		quick   = flag.Bool("quick", false, "gate-only run: skip the serve and checkpoint sections")
		check   = flag.Bool("check", false, "apply the regression gates and exit non-zero on violation")
	)
	flag.Parse()
	if err := perf.Validate(); err != nil {
		log.Fatal(err)
	}
	stop, err := perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	model, err := mobilenet.New(mobilenet.DefaultConfig(*classes, *seed))
	if err != nil {
		log.Fatalf("backbone: %v", err)
	}
	head := cl.NewHead(model, cl.HeadConfig{Seed: *seed})
	learner := baselines.NewFinetune(head)

	// Synthetic latents: one Gaussian prototype per class plus sample noise,
	// shaped like the backbone's latent activations.
	rng := rand.New(rand.NewSource(*seed))
	protos := make([]*tensor.Tensor, *classes)
	for c := range protos {
		protos[c] = tensor.RandNormal(rng, 1.0, model.LatentShape...)
	}
	sample := func(c int) cl.LatentSample {
		z := tensor.RandNormal(rng, 0.3, model.LatentShape...)
		z.AddInPlace(protos[c])
		return cl.LatentSample{Z: z, Label: c}
	}
	train := make([]cl.LatentSample, 4**pool)
	for i := range train {
		train[i] = sample(i % *classes)
	}
	test := make([]cl.LatentSample, *pool)
	for i := range test {
		test[i] = sample(i % *classes)
	}

	// Train to a plausible operating point before timing anything, so the
	// measured steady state is the one real runs live in.
	for start := 0; start < len(train); start += *batch {
		end := start + *batch
		if end > len(train) {
			end = len(train)
		}
		head.TrainCEOn(train[start:end])
	}
	acc := cl.Evaluate(learner, test)

	stepBatch := train[:*batch]
	zs := make([]*tensor.Tensor, len(test))
	for i, s := range test {
		zs[i] = s.Z
	}
	serialPreds := make([]int, len(test))
	pooledPreds := make([]int, len(test))
	batchedPreds := make([]int, len(test))

	// The pre-PR baseline: a hand-built head with no workspace, evaluating
	// through the allocation-fresh serial path, with the trained weights
	// copied in so all three paths classify the same function.
	unpooled := &cl.Head{Net: model.Head, Opt: nn.NewSGD(0.01), Classes: *classes}
	unpooled.Restore(head.Snapshot())

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		Workers:       parallel.Workers(),
		Classes:       *classes,
		PoolSize:      *pool,
		BatchSize:     *batch,
		AccuracyPct:   100 * acc.AccAll,
	}
	rep.TrainStep = measure(func() { head.TrainCEOn(stepBatch) })
	rep.EvalBatch = measure(func() { cl.Evaluate(learner, test) })
	rep.SerialEval = measure(func() {
		for i, z := range zs {
			serialPreds[i] = unpooled.Predict(z)
		}
	})
	rep.PooledSerialEval = measure(func() {
		for i, z := range zs {
			pooledPreds[i] = learner.Predict(z)
		}
	})
	rep.BatchedEval = measure(func() {
		if err := cl.PredictInto(learner, zs, batchedPreds); err != nil {
			log.Fatalf("batched eval: %v", err)
		}
	})
	rep.EvalSpeedup = float64(rep.SerialEval.NsPerOp) / float64(rep.BatchedEval.NsPerOp)
	rep.PooledSpeedup = float64(rep.PooledSerialEval.NsPerOp) / float64(rep.BatchedEval.NsPerOp)
	rep.PredictionsMatch = true
	for i := range serialPreds {
		if serialPreds[i] != batchedPreds[i] || pooledPreds[i] != batchedPreds[i] {
			rep.PredictionsMatch = false
			break
		}
	}
	rep.TrainBatched = benchTrainBatched(model, train, *seed)
	rep.Precision = benchPrecision(model, stepBatch, *seed)
	rep.Quick = *quick
	if !*quick {
		benchCheckpoint(&rep, model, train, *batch, *seed)
		benchServe(model, *classes, *seed) // warm-up run: JIT-free, but settles pools/conn reuse
		rep.Serve = benchServe(model, *classes, *seed)
		rep.Fleet = benchFleet(model, *classes, *seed)
		rep.Replication = benchReplication(model, *classes, *seed, rep.Serve.P99Ms)
		rep.Frontier = benchFrontier()
	}
	// Snapshot last so the report carries everything the run produced: trainer
	// phase histograms, replay-store counters, pool utilisation, head timings,
	// and the serving layer's queue/batch/shed instrumentation.
	rep.Metrics = obs.Default().Report()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create %s: %v", *out, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}

	fmt.Printf("train_step: %d ns/op, %d allocs/op\n", rep.TrainStep.NsPerOp, rep.TrainStep.AllocsPerOp)
	fmt.Printf("eval_batch (pool=%d): %d ns/op, %d allocs/op\n", rep.PoolSize, rep.EvalBatch.NsPerOp, rep.EvalBatch.AllocsPerOp)
	fmt.Printf("serial Predict loop: %d ns/op, %d allocs/op\n", rep.SerialEval.NsPerOp, rep.SerialEval.AllocsPerOp)
	fmt.Printf("eval speedup (batched vs serial Predict loop): %.2fx (vs pooled serial: %.2fx), predictions match: %v\n",
		rep.EvalSpeedup, rep.PooledSpeedup, rep.PredictionsMatch)
	fmt.Printf("train_batched (B=%d): batched %d ns/op (%d allocs), per-sample %d ns/op, speedup %.2fx (gate >= 1.5)\n",
		rep.TrainBatched.BatchSize, rep.TrainBatched.Batched.NsPerOp, rep.TrainBatched.Batched.AllocsPerOp,
		rep.TrainBatched.PerSample.NsPerOp, rep.TrainBatched.Speedup)
	fmt.Printf("precision: fused %d ns/op (%d allocs), split %d ns/op, fp64 ref %d ns/op\n",
		rep.Precision.TrainStepFP32Fused.NsPerOp, rep.Precision.TrainStepFP32Fused.AllocsPerOp,
		rep.Precision.TrainStepFP32Split.NsPerOp, rep.Precision.TrainStepFP64Ref.NsPerOp)
	fmt.Printf("precision ratios: fp64/fp32-fused %.2fx (gate >= 1.5), fused/split %.2fx (gate <= 1.05)\n",
		rep.Precision.FP64OverFP32Fused, rep.Precision.FusedOverSplit)
	if !*quick {
		fmt.Printf("checkpoint: save %.2f ms, restore %.2f ms, frame %.0f KB (%d round-trips)\n",
			rep.CheckpointSaveMs, rep.CheckpointRestoreMs, rep.CheckpointFrameKB, rep.CheckpointSaves)
		fmt.Printf("serve (%d clients): %.0f req/s, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, shed %d\n",
			rep.Serve.Clients, rep.Serve.ThroughputRPS, rep.Serve.P50Ms, rep.Serve.P95Ms, rep.Serve.P99Ms, rep.Serve.Shed)
		fmt.Printf("fleet (%d users zipf, hot %d): %.0f req/s, users_known %d, evictions %d, fault-ins %d, fault-in p99 %.2f ms, heap %.1f MB/10k users\n",
			rep.Fleet.Users, rep.Fleet.HotSet, rep.Fleet.Load.ThroughputRPS,
			rep.Fleet.UsersKnown, rep.Fleet.Evictions, rep.Fleet.FaultIns,
			rep.Fleet.FaultInP99Ms, rep.Fleet.HeapMBPer10kUsers)
		fmt.Printf("replication: %.0f req/s replicated (p99 %.2f ms, +%.2f ms over plain), rolling restart: %d errors, %d failovers, handoff %.0f ms, verify equal %v\n",
			rep.Replication.Replicated.ThroughputRPS, rep.Replication.Replicated.P99Ms, rep.Replication.AddedP99Ms,
			rep.Replication.Failover.Errors, rep.Replication.Failover.Failovers, rep.Replication.HandoffMs, rep.Replication.VerifyEqual)
		rep.Frontier.Render(os.Stdout)
	}
	fmt.Printf("accuracy: %.1f%%  →  %s\n", rep.AccuracyPct, *out)
	if *check {
		if fails := checkGates(&rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAIL: %s", f)
			}
			log.Fatalf("%d regression gate(s) failed", len(fails))
		}
		fmt.Println("regression gates: all passed")
	}
}
