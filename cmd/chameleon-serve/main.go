// Command chameleon-serve exposes one continual learner over HTTP: predict
// requests are micro-batched through the learner's batched eval path, observe
// requests train it online in arrival order, and SIGTERM drains in-flight
// work and writes a checkpoint the next start can resume bit-identically.
//
//	chameleon-serve -dataset synthetic -method chameleon        # no pipeline build, starts in seconds
//	chameleon-serve -dataset core50 -method chameleon -scale test
//	chameleon-serve -dataset synthetic -checkpoint serve.ckpt -resume
//	chameleon-serve -dataset synthetic -fleet-users 10000 -fleet-hot 256 -fleet-dir fleet/
//	chameleon-serve -dataset synthetic -wal-dir wal/                       # durable observe log
//	chameleon-serve -dataset synthetic -wal-dir wal2/ -standby http://127.0.0.1:8080 \
//	    -primary-wal wal/ -addr 127.0.0.1:8081                             # warm standby
//
// With -fleet-users the server hosts a multi-tenant fleet instead of one
// learner: every request carries a "user" field, users are consistent-hashed
// onto single-writer shards, and only -fleet-hot learners stay resident —
// colder users are LRU-evicted to per-user checkpoints under -fleet-dir and
// faulted back bit-identically on their next request (internal/fleet).
//
// With -wal-dir every accepted observe batch is appended to a durable,
// CRC-framed observe log before the learner applies it, so any state is
// reconstructible from (checkpoint, log suffix): a crashed server replays
// the log tail its checkpoint missed, and a warm standby (-standby) streams
// snapshot + log over HTTP, stays bit-identical, and takes over — on the
// primary's graceful drain or on probe failure — with zero failed requests
// under a retrying client (internal/replication, DESIGN.md §18).
//
// Endpoints: POST /v1/predict, POST /v1/observe, GET /v1/stats, GET
// /v1/replication/{snapshot,log,verify}, GET /metrics, GET /healthz — see
// API.md; cmd/chameleon-loadgen drives it under load (and through failovers
// with -failover).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/core"
	"chameleon/internal/exp"
	"chameleon/internal/fleet"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/replication"
	"chameleon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-serve: ")
	var cfg cli.RunConfig
	cfg.Stream.ExtraDatasets = []string{"synthetic"}
	cfg.Bind(flag.CommandLine)
	var fleetCfg cli.Fleet
	fleetCfg.Bind(flag.CommandLine)
	var repl cli.Replication
	repl.Bind(flag.CommandLine)
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		classes      = flag.Int("classes", 10, "label-space width for -dataset synthetic")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "predict micro-batch coalescing window")
		maxBatch     = flag.Int("max-batch", 64, "max predict requests answered by one PredictBatch call")
		queueDepth   = flag.Int("queue", 256, "bounded depth of the predict and observe queues (full queues shed with 429)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "max time a request may wait for the engine before 504")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight work on shutdown")
	)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := fleetCfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := repl.Validate(); err != nil {
		log.Fatal(err)
	}
	if cfg.Precision == cli.PrecisionFP64 {
		log.Fatal("-precision fp64 is a training reference tier; the serving path runs the fast fp32 tier only")
	}
	if fleetCfg.Enabled() && cfg.Checkpoint.Path != "" {
		log.Fatal("-checkpoint is the single-learner drain target; fleet mode persists per user under -fleet-dir instead")
	}
	if fleetCfg.Enabled() && repl.Standby != "" {
		log.Fatal("-standby replicates a single learner; it is incompatible with fleet mode")
	}
	stop, err := cfg.Perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	sc, err := cfg.Scale()
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the learner: a synthetic backbone (self-contained, starts in
	// seconds) or the full cached benchmark pipeline.
	var backbone *mobilenet.Model
	nClasses := *classes
	if cfg.Dataset == "synthetic" {
		backbone, err = mobilenet.New(mobilenet.DefaultConfig(nClasses, cfg.Seed))
		if err != nil {
			log.Fatalf("backbone: %v", err)
		}
	} else {
		set, err := exp.BuildLatentSetOpts(cfg.Dataset, sc, cfg.CacheDir, func(f string, a ...any) { log.Printf(f, a...) }, cfg.Options())
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		backbone = set.Backbone
		nClasses = set.Dataset.Cfg.NumClasses
	}
	meter := &cl.TrafficMeter{}
	meter.Bind(obs.Default())

	srvCfg := serve.Config{
		LatentShape:    backbone.LatentShape,
		Classes:        nClasses,
		Backbone:       backbone,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		HandoffTimeout: repl.HandoffTimeout,
	}

	// Single-learner mode hosts one learner behind the engine goroutine;
	// fleet mode hosts up to -fleet-users learners behind sharded engines,
	// each user isolated under its own deterministic seed, with cold users
	// LRU-evicted to per-user checkpoints in -fleet-dir and faulted back
	// bit-identically on their next request.
	var learner cl.Learner
	var wlog *replication.Log
	serving := ""
	if fleetCfg.Enabled() {
		flCfg := fleet.Config{
			New: func(user string) (cl.Learner, error) {
				return exp.NewLearnerOn(cfg.Spec(), backbone, nClasses, sc, fleet.UserSeed(cfg.Seed, user), meter)
			},
			Dir:        fleetCfg.Dir,
			MaxUsers:   fleetCfg.Users,
			HotSet:     fleetCfg.Hot,
			Shards:     fleetCfg.Shards,
			QueueDepth: fleetCfg.QueueDepth,
		}
		if repl.Enabled() {
			// The fleet's recovery story: user-tagged records in one shared
			// log repair corrupt eviction checkpoints and crashed-before-
			// eviction users (fresh construction + per-user replay).
			wlog, err = replication.Open(repl.WALDir, replication.Options{
				SegmentBytes: int64(repl.SegmentMB) << 20,
				SyncEvery:    repl.SyncEvery,
			})
			if err != nil {
				log.Fatalf("observe log: %v", err)
			}
			flCfg.WAL = wlog
			flCfg.LatentShape = backbone.LatentShape
			srvCfg.WAL = wlog
		}
		fl, err := fleet.New(flCfg)
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		srvCfg.Fleet = fl
		st := fl.Stats()
		serving = fmt.Sprintf("fleet of %s learners (max %d users, hot-set %d across %d shards → %s)",
			cfg.Method.Name, fleetCfg.Users, st.HotSet, st.Shards, fleetCfg.Dir)
	} else {
		newLearner := func() (cl.Learner, error) {
			return exp.NewLearnerOn(cfg.Spec(), backbone, nClasses, sc, cfg.Seed, meter)
		}
		learner, err = newLearner()
		if err != nil {
			log.Fatal(err)
		}
		srvCfg.CheckpointPath = cfg.Checkpoint.Path
		srvCfg.CheckpointEvery = cfg.Checkpoint.Every
		if cfg.Checkpoint.Resume && cfg.Checkpoint.Path != "" && repl.Standby == "" {
			if _, err := os.Stat(cfg.Checkpoint.Path); err == nil {
				st, err := serve.Resume(cfg.Checkpoint.Path, learner)
				if err != nil {
					log.Fatalf("resume: %v", err)
				}
				srvCfg.StartBatches, srvCfg.StartSamples = st.Batches, st.Samples
				log.Printf("resumed %s from %s (batch %d, %d samples)", learner.Name(), cfg.Checkpoint.Path, st.Batches, st.Samples)
			}
		}
		if repl.Enabled() {
			wlog, err = replication.Open(repl.WALDir, replication.Options{
				SegmentBytes: int64(repl.SegmentMB) << 20,
				SyncEvery:    repl.SyncEvery,
				StartSeq:     uint64(srvCfg.StartBatches),
			})
			if err != nil {
				log.Fatalf("observe log: %v", err)
			}
			srvCfg.WAL = wlog
			srvCfg.Standby = repl.Standby != ""
			srvCfg.NewLearner = newLearner
			if cfg.Method.Name == "chameleon" {
				srvCfg.SnapshotsEqual = core.SnapshotsEqual
			}
			if !srvCfg.Standby {
				// Crash recovery: a log that ends past the checkpoint holds
				// acknowledged observes the checkpoint missed — replay them
				// before serving. A log that ends short of the checkpoint (a
				// fresh log directory next to an old checkpoint) restarts at
				// the checkpoint's position.
				switch end := wlog.End(); {
				case end > uint64(srvCfg.StartBatches):
					nb, ns, err := serve.ReplayLog(learner, wlog, uint64(srvCfg.StartBatches), 0, backbone.LatentShape)
					if err != nil {
						log.Fatalf("observe log replay: %v", err)
					}
					srvCfg.StartBatches += nb
					srvCfg.StartSamples += ns
					log.Printf("replayed %d logged batches (%d samples) past the checkpoint (crash recovery)", nb, ns)
				case end < uint64(srvCfg.StartBatches):
					if err := wlog.Reset(uint64(srvCfg.StartBatches)); err != nil {
						log.Fatalf("observe log reset: %v", err)
					}
				}
			}
		}
		serving = learner.Name()
	}

	srv, err := serve.New(learner, srvCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(*addr); err != nil {
		log.Fatal(err)
	}
	role := "serving"
	if srvCfg.Standby {
		role = "warm standby (503 not_ready until promoted) for"
	}
	log.Printf("%s %s on http://%s (latent %v, %d classes; POST /v1/predict, /v1/observe, GET /v1/stats, /metrics)",
		role, serving, srv.Addr(), backbone.LatentShape, nClasses)

	// Standby: tail the primary until it drains (graceful handoff) or stops
	// answering (probe failover), then promote and keep serving.
	folCtx, folCancel := context.WithCancel(context.Background())
	defer folCancel()
	folDone := make(chan struct{})
	close(folDone)
	if srvCfg.Standby {
		fol, err := replication.NewFollower(replication.FollowerConfig{
			PrimaryURL:    repl.Standby,
			Target:        srv,
			PollInterval:  repl.Poll,
			FailoverAfter: repl.FailoverAfter,
			PrimaryWALDir: repl.PrimaryWAL,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("replication: %v", err)
		}
		folDone = make(chan struct{})
		go func() {
			defer close(folDone)
			err := fol.Run(folCtx)
			switch {
			case err == nil:
				log.Printf("promoted: now serving as primary on http://%s", srv.Addr())
			case errors.Is(err, context.Canceled):
			default:
				log.Printf("replication: follower stopped: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	<-ctx.Done()
	folCancel()
	<-folDone
	log.Printf("shutting down: draining in-flight work (up to %s)...", *drainTimeout)
	t0 := time.Now()
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer drainCancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if wlog != nil {
		if err := wlog.Close(); err != nil {
			log.Printf("observe log close: %v", err)
		}
	}
	log.Printf("drained in %s: %d batches / %d samples observed", time.Since(t0).Round(time.Millisecond), srv.Batches(), srv.Samples())
	if cfg.Checkpoint.Path != "" {
		log.Printf("checkpoint written: %s (restart with -resume to continue bit-identically)", cfg.Checkpoint.Path)
	}
	if repl.Enabled() {
		log.Printf("observe log synced: %s (any learner state is reconstructible from snapshot + log)", repl.WALDir)
	}
	if fleetCfg.Enabled() {
		log.Printf("fleet drained: every resident learner checkpointed under %s (restart continues each user bit-identically)", fleetCfg.Dir)
	}
}
