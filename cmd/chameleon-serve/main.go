// Command chameleon-serve exposes one continual learner over HTTP: predict
// requests are micro-batched through the learner's batched eval path, observe
// requests train it online in arrival order, and SIGTERM drains in-flight
// work and writes a checkpoint the next start can resume bit-identically.
//
//	chameleon-serve -dataset synthetic -method chameleon        # no pipeline build, starts in seconds
//	chameleon-serve -dataset core50 -method chameleon -scale test
//	chameleon-serve -dataset synthetic -checkpoint serve.ckpt -resume
//	chameleon-serve -dataset synthetic -fleet-users 10000 -fleet-hot 256 -fleet-dir fleet/
//
// With -fleet-users the server hosts a multi-tenant fleet instead of one
// learner: every request carries a "user" field, users are consistent-hashed
// onto single-writer shards, and only -fleet-hot learners stay resident —
// colder users are LRU-evicted to per-user checkpoints under -fleet-dir and
// faulted back bit-identically on their next request (internal/fleet).
//
// Endpoints: POST /v1/predict, POST /v1/observe, GET /v1/stats, GET /metrics
// (the full internal/obs registry), GET /healthz. See DESIGN.md §13 and the
// README "Serving" section; cmd/chameleon-loadgen drives it under load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/exp"
	"chameleon/internal/fleet"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-serve: ")
	var cfg cli.RunConfig
	cfg.Stream.ExtraDatasets = []string{"synthetic"}
	cfg.Bind(flag.CommandLine)
	var fleetCfg cli.Fleet
	fleetCfg.Bind(flag.CommandLine)
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		classes      = flag.Int("classes", 10, "label-space width for -dataset synthetic")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "predict micro-batch coalescing window")
		maxBatch     = flag.Int("max-batch", 64, "max predict requests answered by one PredictBatch call")
		queueDepth   = flag.Int("queue", 256, "bounded depth of the predict and observe queues (full queues shed with 429)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "max time a request may wait for the engine before 504")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight work on shutdown")
	)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := fleetCfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if cfg.Precision == cli.PrecisionFP64 {
		log.Fatal("-precision fp64 is a training reference tier; the serving path runs the fast fp32 tier only")
	}
	if fleetCfg.Enabled() && cfg.Checkpoint.Path != "" {
		log.Fatal("-checkpoint is the single-learner drain target; fleet mode persists per user under -fleet-dir instead")
	}
	stop, err := cfg.Perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	sc, err := cfg.Scale()
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the learner: a synthetic backbone (self-contained, starts in
	// seconds) or the full cached benchmark pipeline.
	var backbone *mobilenet.Model
	nClasses := *classes
	if cfg.Dataset == "synthetic" {
		backbone, err = mobilenet.New(mobilenet.DefaultConfig(nClasses, cfg.Seed))
		if err != nil {
			log.Fatalf("backbone: %v", err)
		}
	} else {
		set, err := exp.BuildLatentSetOpts(cfg.Dataset, sc, cfg.CacheDir, func(f string, a ...any) { log.Printf(f, a...) }, cfg.Options())
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		backbone = set.Backbone
		nClasses = set.Dataset.Cfg.NumClasses
	}
	meter := &cl.TrafficMeter{}
	meter.Bind(obs.Default())

	srvCfg := serve.Config{
		LatentShape:    backbone.LatentShape,
		Classes:        nClasses,
		Backbone:       backbone,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
	}

	// Single-learner mode hosts one learner behind the engine goroutine;
	// fleet mode hosts up to -fleet-users learners behind sharded engines,
	// each user isolated under its own deterministic seed, with cold users
	// LRU-evicted to per-user checkpoints in -fleet-dir and faulted back
	// bit-identically on their next request.
	var learner cl.Learner
	serving := ""
	if fleetCfg.Enabled() {
		fl, err := fleet.New(fleet.Config{
			New: func(user string) (cl.Learner, error) {
				return exp.NewLearnerOn(cfg.Spec(), backbone, nClasses, sc, fleet.UserSeed(cfg.Seed, user), meter)
			},
			Dir:        fleetCfg.Dir,
			MaxUsers:   fleetCfg.Users,
			HotSet:     fleetCfg.Hot,
			Shards:     fleetCfg.Shards,
			QueueDepth: fleetCfg.QueueDepth,
		})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		srvCfg.Fleet = fl
		st := fl.Stats()
		serving = fmt.Sprintf("fleet of %s learners (max %d users, hot-set %d across %d shards → %s)",
			cfg.Method.Name, fleetCfg.Users, st.HotSet, st.Shards, fleetCfg.Dir)
	} else {
		learner, err = exp.NewLearnerOn(cfg.Spec(), backbone, nClasses, sc, cfg.Seed, meter)
		if err != nil {
			log.Fatal(err)
		}
		srvCfg.CheckpointPath = cfg.Checkpoint.Path
		srvCfg.CheckpointEvery = cfg.Checkpoint.Every
		if cfg.Checkpoint.Resume && cfg.Checkpoint.Path != "" {
			if _, err := os.Stat(cfg.Checkpoint.Path); err == nil {
				st, err := serve.Resume(cfg.Checkpoint.Path, learner)
				if err != nil {
					log.Fatalf("resume: %v", err)
				}
				srvCfg.StartBatches, srvCfg.StartSamples = st.Batches, st.Samples
				log.Printf("resumed %s from %s (batch %d, %d samples)", learner.Name(), cfg.Checkpoint.Path, st.Batches, st.Samples)
			}
		}
		serving = learner.Name()
	}

	srv, err := serve.New(learner, srvCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s on http://%s (latent %v, %d classes; POST /v1/predict, /v1/observe, GET /v1/stats, /metrics)",
		serving, srv.Addr(), backbone.LatentShape, nClasses)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	<-ctx.Done()
	log.Printf("shutting down: draining in-flight work (up to %s)...", *drainTimeout)
	t0 := time.Now()
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer drainCancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained in %s: %d batches / %d samples observed", time.Since(t0).Round(time.Millisecond), srv.Batches(), srv.Samples())
	if cfg.Checkpoint.Path != "" {
		log.Printf("checkpoint written: %s (restart with -resume to continue bit-identically)", cfg.Checkpoint.Path)
	}
	if fleetCfg.Enabled() {
		log.Printf("fleet drained: every resident learner checkpointed under %s (restart continues each user bit-identically)", fleetCfg.Dir)
	}
}
