// Command benchdiff compares two benchjson reports (BENCH_pr*.json) and turns
// the perf trajectory between PRs into a machine-checked diff instead of an
// eyeballed one. It flattens both files into dotted series names, compares
// every ns_per_op series present in both, and flags a regression when the new
// value is slower than the old by more than -threshold percent, or when any
// allocs_per_op series grew at all (allocation counts are machine-independent,
// so there is no noise budget for them).
//
//	benchdiff BENCH_pr6.json BENCH_pr8.json
//	benchdiff -threshold 15 -warn-only old.json new.json
//
// Exit status is 1 when regressions were found and -warn-only is not set.
// Absolute ns/op across two checked-in files reflects two different runs —
// possibly on different machines — so check.sh wires this in with -warn-only:
// the hard within-run gates live in benchjson -check, and benchdiff reports
// the cross-PR drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	series := map[string]float64{}
	flatten("", doc, series)
	return series, nil
}

// flatten walks nested JSON objects and records every numeric leaf under its
// dotted path ("precision.train_step_fp32_fused.ns_per_op").
func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case float64:
		out[prefix] = t
	}
}

func main() {
	threshold := flag.Float64("threshold", 25, "regression threshold in percent for ns_per_op series")
	warnOnly := flag.Bool("warn-only", false, "report regressions but always exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldS, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newS, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var names []string
	for name := range oldS {
		if strings.HasSuffix(name, ".ns_per_op") || strings.HasSuffix(name, ".allocs_per_op") {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "series\t%s\t%s\tdelta\t\n", flag.Arg(0), flag.Arg(1))
	regressions := 0
	var onlyOld, onlyNew []string
	for _, name := range names {
		ov := oldS[name]
		nv, ok := newS[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		switch {
		case strings.HasSuffix(name, ".ns_per_op"):
			pct := 0.0
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			mark := ""
			if pct > *threshold {
				mark = fmt.Sprintf("  REGRESSION (> %.0f%%)", *threshold)
				regressions++
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%%s\t\n", name, ov, nv, pct, mark)
		case strings.HasSuffix(name, ".allocs_per_op"):
			if nv > ov {
				fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t+%.0f allocs  REGRESSION\t\n", name, ov, nv, nv-ov)
				regressions++
			}
		}
	}
	for name := range newS {
		if !strings.HasSuffix(name, ".ns_per_op") {
			continue
		}
		if _, ok := oldS[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	tw.Flush()
	sort.Strings(onlyNew)
	if len(onlyOld) > 0 {
		fmt.Printf("series only in %s: %s\n", flag.Arg(0), strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Printf("series only in %s: %s\n", flag.Arg(1), strings.Join(onlyNew, ", "))
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%%\n", regressions, *threshold)
		if !*warnOnly {
			os.Exit(1)
		}
		fmt.Println("benchdiff: -warn-only set, exiting 0")
		return
	}
	fmt.Println("benchdiff: no regressions")
}
