// Command chameleon-bench regenerates every table and figure of the paper's
// evaluation section:
//
//	chameleon-bench -exp table1            # accuracy vs memory (Table I)
//	chameleon-bench -exp table2            # latency/energy on edge devices (Table II)
//	chameleon-bench -exp table3            # FPGA resource utilization (Table III)
//	chameleon-bench -exp fig2              # accuracy vs memory budget (Fig. 2)
//	chameleon-bench -exp all -scale small  # everything at the default scale
//
// Accuracy experiments build (and cache) the synthetic-benchmark + pretrained
// backbone pipeline first; the first run at a scale takes a few minutes,
// subsequent runs reuse the cached latents.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"chameleon/internal/cl"
	"chameleon/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-bench: ")
	var (
		expName  = flag.String("exp", "all", "experiment: table1|table2|table3|fig2|ablations|tradeoff|all")
		scale    = flag.String("scale", "small", "scale tier: test|small")
		cacheDir = flag.String("cache", exp.DefaultCacheDir(), "latent cache directory ('' disables)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	sc, err := scaleByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	progress := func(f string, a ...any) { log.Printf(f, a...) }
	if *quiet {
		progress = func(string, ...any) {}
	}

	needAccuracy := *expName == "table1" || *expName == "fig2" || *expName == "ablations" || *expName == "tradeoff" || *expName == "all"
	var sets map[string]*cl.LatentSet
	if needAccuracy {
		sets = map[string]*cl.LatentSet{}
		for _, ds := range []string{"core50", "openloris"} {
			set, err := exp.BuildLatentSet(ds, sc, *cacheDir, progress)
			if err != nil {
				log.Fatalf("build %s pipeline: %v", ds, err)
			}
			sets[ds] = set
		}
	}

	switch *expName {
	case "table1":
		runTable1(sets, sc, progress)
	case "fig2":
		runFig2(sets["core50"], sc, progress)
	case "table2":
		runTable2()
	case "table3":
		runTable3()
	case "ablations":
		runAblations(sets["core50"], sc)
	case "tradeoff":
		runTradeoff(sets["core50"], sc)
	case "all":
		runTable1(sets, sc, progress)
		fmt.Println()
		runFig2(sets["core50"], sc, progress)
		fmt.Println()
		runTable2()
		fmt.Println()
		runTable3()
		fmt.Println()
		runAblations(sets["core50"], sc)
		fmt.Println()
		runTradeoff(sets["core50"], sc)
	default:
		log.Fatalf("unknown experiment %q", *expName)
	}
}

func scaleByName(name string) (exp.Scale, error) {
	switch name {
	case "test":
		return exp.TestScale(), nil
	case "small":
		return exp.SmallScale(), nil
	default:
		return exp.Scale{}, fmt.Errorf("unknown scale %q (want test or small)", name)
	}
}

func runTable1(sets map[string]*cl.LatentSet, sc exp.Scale, progress func(string, ...any)) {
	res, err := exp.RunTable1(sets, sc, progress)
	if err != nil {
		log.Fatalf("table1: %v", err)
	}
	res.Render(os.Stdout)
}

func runFig2(set *cl.LatentSet, sc exp.Scale, progress func(string, ...any)) {
	res, err := exp.RunFig2(set, sc, progress)
	if err != nil {
		log.Fatalf("fig2: %v", err)
	}
	res.Render(os.Stdout)
}

func runTable2() {
	res, err := exp.RunTable2()
	if err != nil {
		log.Fatalf("table2: %v", err)
	}
	res.Render(os.Stdout)
}

func runTable3() {
	exp.RunTable3().Render(os.Stdout)
}

func runTradeoff(set *cl.LatentSet, sc exp.Scale) {
	pts, err := exp.RunTradeoff(set, sc, []int{1, 2, 5, 10, 20})
	if err != nil {
		log.Fatalf("tradeoff: %v", err)
	}
	exp.RenderTradeoff(os.Stdout, pts)
}

func runAblations(set *cl.LatentSet, sc exp.Scale) {
	fmt.Println("Ablations (CORe50, mean ± std over seeds) — DESIGN.md §6")
	emit := func(title string, rows []exp.AblationResult) {
		fmt.Printf("\n%s\n", title)
		for _, r := range rows {
			fmt.Printf("  %-46s %6.2f%% ± %.2f\n", r.Variant, 100*r.MeanAcc, 100*r.StdAcc)
		}
	}
	emit("Dual store vs single unified buffer", exp.RunAblationDualVsSingle(set, sc))
	emit("Short-term insertion policy (Eq. 4)", exp.RunAblationSTPolicy(set, sc))
	emit("Long-term promotion policy (Eq. 6)", exp.RunAblationLTPolicy(set, sc))
	emit("Long-term access period h", exp.RunAblationAccessRate(set, sc, []int{1, 5, 10, 20}))
	emit("Allocation exponent rho (user-centric stream)", exp.RunAblationRho(set, sc, []float64{0.2, 0.6, 1.0}))
}
