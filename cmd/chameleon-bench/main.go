// Command chameleon-bench regenerates every table and figure of the paper's
// evaluation section:
//
//	chameleon-bench -exp table1            # accuracy vs memory (Table I)
//	chameleon-bench -exp table2            # latency/energy on edge devices (Table II)
//	chameleon-bench -exp table3            # FPGA resource utilization (Table III)
//	chameleon-bench -exp fig2              # accuracy vs memory budget (Fig. 2)
//	chameleon-bench -exp all -scale small  # everything at the default scale
//
// Accuracy experiments build (and cache) the synthetic-benchmark + pretrained
// backbone pipeline first; the first run at a scale takes a few minutes,
// subsequent runs reuse the cached latents.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/exp"
	"chameleon/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-bench: ")
	var (
		perf     cli.Perf
		pipeline cli.Pipeline
		ckpt     cli.Checkpoint
	)
	perf.Bind(flag.CommandLine)
	pipeline.Bind(flag.CommandLine, "small")
	ckpt.Bind(flag.CommandLine, "checkpoint directory for crash-safe table1/fig2 grids ('' disables)")
	var (
		expName = flag.String("exp", "all", "experiment: table1|table2|table3|fig2|ablations|tradeoff|perf|all")
		quiet   = flag.Bool("q", false, "suppress progress output")
		jsonOut = flag.Bool("json", false, "emit results as JSON instead of rendered tables")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	for _, err := range []error{perf.Validate(), pipeline.Validate(), ckpt.Validate()} {
		if err != nil {
			log.Fatal(err)
		}
	}
	if perf.Precision == cli.PrecisionFP64 {
		log.Fatal("-precision fp64 is supported by chameleon-train only; the benchmark grids run the fast fp32 tier")
	}
	stop, err := perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	sc, err := pipeline.Scale()
	if err != nil {
		log.Fatal(err)
	}
	progress := func(f string, a ...any) { log.Printf(f, a...) }
	if *quiet {
		progress = func(string, ...any) {}
	}

	needAccuracy := *expName == "table1" || *expName == "fig2" || *expName == "ablations" || *expName == "tradeoff" || *expName == "perf" || *expName == "all"
	var sets map[string]*cl.LatentSet
	if needAccuracy {
		sets = map[string]*cl.LatentSet{}
		for _, ds := range cli.Datasets() {
			set, err := exp.BuildLatentSetOpts(ds, sc, pipeline.CacheDir, progress, pipeline.Options())
			if err != nil {
				log.Fatalf("build %s pipeline: %v", ds, err)
			}
			sets[ds] = set
		}
	}

	ck, err := ckpt.Grid()
	if err != nil {
		log.Fatal(err)
	}

	switch *expName {
	case "table1":
		runTable1(sets, sc, ck, progress, *jsonOut)
	case "fig2":
		runFig2(sets["core50"], sc, ck, progress, *jsonOut)
	case "table2":
		runTable2(*jsonOut)
	case "table3":
		runTable3(*jsonOut)
	case "ablations":
		runAblations(sets["core50"], sc)
	case "tradeoff":
		runTradeoff(sets["core50"], sc)
	case "perf":
		runPerf(sets, sc, perf.Workers, *jsonOut)
	case "all":
		runTable1(sets, sc, ck, progress, *jsonOut)
		fmt.Println()
		runFig2(sets["core50"], sc, ck, progress, *jsonOut)
		fmt.Println()
		runTable2(*jsonOut)
		fmt.Println()
		runTable3(*jsonOut)
		fmt.Println()
		runAblations(sets["core50"], sc)
		fmt.Println()
		runTradeoff(sets["core50"], sc)
	default:
		log.Fatalf("unknown experiment %q", *expName)
	}
}

// emit renders res as indented JSON when jsonOut is set, else calls render.
func emit(res any, jsonOut bool, render func()) {
	if !jsonOut {
		render()
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatalf("json: %v", err)
	}
}

func runTable1(sets map[string]*cl.LatentSet, sc exp.Scale, ck exp.Checkpointing, progress func(string, ...any), jsonOut bool) {
	res, err := exp.RunTable1Checkpointed(sets, sc, ck, progress)
	if err != nil {
		log.Fatalf("table1: %v", err)
	}
	emit(res, jsonOut, func() { res.Render(os.Stdout) })
}

func runFig2(set *cl.LatentSet, sc exp.Scale, ck exp.Checkpointing, progress func(string, ...any), jsonOut bool) {
	res, err := exp.RunFig2Checkpointed(set, sc, ck, progress)
	if err != nil {
		log.Fatalf("fig2: %v", err)
	}
	emit(res, jsonOut, func() { res.Render(os.Stdout) })
}

func runTable2(jsonOut bool) {
	res, err := exp.RunTable2()
	if err != nil {
		log.Fatalf("table2: %v", err)
	}
	emit(res, jsonOut, func() { res.Render(os.Stdout) })
}

func runTable3(jsonOut bool) {
	res := exp.RunTable3()
	emit(res, jsonOut, func() { res.Render(os.Stdout) })
}

// perfResult is the -exp perf report: wall-clock of the Table I pipeline at
// workers=1 vs the configured worker count, and whether the two rendered
// tables came out byte-identical (the determinism contract).
type perfResult struct {
	Scale         string  `json:"scale"`
	Workers       int     `json:"workers"`
	SerialSec     float64 `json:"serial_sec"`
	ParallelSec   float64 `json:"parallel_sec"`
	Speedup       float64 `json:"speedup"`
	Deterministic bool    `json:"deterministic"`
}

// runPerf times the full Table I grid serially and with the worker pool.
// Latent sets are prebuilt, so the measurement isolates the experiment plane
// (concurrent multi-seed runs) plus the parallel kernels beneath it.
func runPerf(sets map[string]*cl.LatentSet, sc exp.Scale, workersFlag int, jsonOut bool) {
	parallel.SetWorkers(workersFlag)
	target := parallel.Workers()
	run := func(w int) (string, time.Duration) {
		parallel.SetWorkers(w)
		start := time.Now()
		res, err := exp.RunTable1(sets, sc, nil)
		if err != nil {
			log.Fatalf("perf: %v", err)
		}
		elapsed := time.Since(start)
		var buf strings.Builder
		res.Render(&buf)
		return buf.String(), elapsed
	}
	serialTab, serialT := run(1)
	parTab, parT := run(target)
	parallel.SetWorkers(workersFlag)
	pr := perfResult{
		Scale:         sc.Name,
		Workers:       target,
		SerialSec:     serialT.Seconds(),
		ParallelSec:   parT.Seconds(),
		Speedup:       serialT.Seconds() / parT.Seconds(),
		Deterministic: serialTab == parTab,
	}
	emit(pr, jsonOut, func() {
		fmt.Printf("Table I pipeline wall-clock (%s scale, prebuilt latents)\n", pr.Scale)
		fmt.Printf("  workers=1    %8.2fs\n", pr.SerialSec)
		fmt.Printf("  workers=%-4d %8.2fs\n", pr.Workers, pr.ParallelSec)
		fmt.Printf("  speedup      %8.2fx\n", pr.Speedup)
		fmt.Printf("  deterministic: %v (rendered tables byte-identical across worker counts)\n", pr.Deterministic)
	})
}

func runTradeoff(set *cl.LatentSet, sc exp.Scale) {
	pts, err := exp.RunTradeoff(set, sc, []int{1, 2, 5, 10, 20})
	if err != nil {
		log.Fatalf("tradeoff: %v", err)
	}
	exp.RenderTradeoff(os.Stdout, pts)
}

func runAblations(set *cl.LatentSet, sc exp.Scale) {
	fmt.Println("Ablations (CORe50, mean ± std over seeds) — DESIGN.md §6")
	emit := func(title string, rows []exp.AblationResult) {
		fmt.Printf("\n%s\n", title)
		for _, r := range rows {
			fmt.Printf("  %-46s %6.2f%% ± %.2f\n", r.Variant, 100*r.MeanAcc, 100*r.StdAcc)
		}
	}
	emit("Dual store vs single unified buffer", exp.RunAblationDualVsSingle(set, sc))
	emit("Short-term insertion policy (Eq. 4)", exp.RunAblationSTPolicy(set, sc))
	emit("Long-term promotion policy (Eq. 6)", exp.RunAblationLTPolicy(set, sc))
	emit("Long-term access period h", exp.RunAblationAccessRate(set, sc, []int{1, 5, 10, 20}))
	emit("Allocation exponent rho (user-centric stream)", exp.RunAblationRho(set, sc, []float64{0, 0.2, 0.6, 1.0}))
}
