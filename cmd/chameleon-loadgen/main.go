// Command chameleon-loadgen is the closed-loop load generator for
// chameleon-serve: N concurrent clients issue predict requests back-to-back
// (optionally alongside one sequential observe stream) and the tool reports
// sustained throughput with p50/p95/p99 latency, shed (429) counts and
// errors. It self-configures from the server's /v1/stats, so the only
// required argument is the address:
//
//	chameleon-loadgen -url http://127.0.0.1:8080
//	chameleon-loadgen -clients 32 -duration 10s -observe 50
//	chameleon-loadgen -clients 32 -n 200 -json
//	chameleon-loadgen -duration 10s -failover http://127.0.0.1:8081
//
// With -failover the generator treats a warm standby as part of the service:
// transport failures and retryable error codes (queue_full, draining,
// not_ready, timeout) are retried — flipping between the two servers — and
// only requests that exhaust their retry budget count as errors. A rolling
// restart of the primary under load must therefore report errors 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"chameleon/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-loadgen: ")
	var (
		url          = flag.String("url", "http://127.0.0.1:8080", "base URL of a running chameleon-serve")
		clients      = flag.Int("clients", 32, "concurrent closed-loop predict clients")
		perClient    = flag.Int("n", 0, "requests per client (0 = run for -duration)")
		duration     = flag.Duration("duration", 5*time.Second, "run length when -n is 0")
		observe      = flag.Int("observe", 0, "labelled batches the sequential observer feeds during the run (0 disables)")
		observeBatch = flag.Int("observe-batch", 10, "samples per observe batch")
		users        = flag.Int("users", 0, "distinct Zipf-popular user ids to tag requests with (0 auto-selects 256 against a fleet server)")
		zipfS        = flag.Float64("zipf-s", 1.2, "Zipf exponent for user popularity (must be > 1)")
		seed         = flag.Int64("seed", 1, "payload seed")
		int8Wire     = flag.Bool("int8", false, "send latents in the quantized wire encoding (latent_int8 + scale, ~4x smaller bodies)")
		failover     = flag.String("failover", "", "base URL of a warm standby: retry transport failures and retryable error codes there instead of counting errors (rolling restarts must finish with errors 0)")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	rep, err := serve.RunLoad(*url, serve.LoadOptions{
		Clients:           *clients,
		RequestsPerClient: *perClient,
		Duration:          *duration,
		ObserveBatches:    *observe,
		ObserveBatchSize:  *observeBatch,
		Users:             *users,
		ZipfS:             *zipfS,
		Seed:              *seed,
		Int8:              *int8Wire,
		Failover:          *failover,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("json: %v", err)
		}
		return
	}
	fmt.Println(rep)
}
