// Command chameleon-train runs a single continual-learning method over one
// synthetic benchmark stream and reports its final accuracy, per-class
// accuracy and paper-scale memory overhead:
//
//	chameleon-train -method chameleon -dataset core50 -buffer 100
//	chameleon-train -method er -dataset openloris -buffer 500 -seed 3
//	chameleon-train -method chameleon -user-centric   # personalization stream
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"chameleon/internal/cl"
	"chameleon/internal/cli"
	"chameleon/internal/data"
	"chameleon/internal/exp"
	"chameleon/internal/hw"
	"chameleon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chameleon-train: ")
	var cfg cli.RunConfig
	cfg.Bind(flag.CommandLine)
	var (
		userCentric = flag.Bool("user-centric", false, "use a preference-skewed (personalized) stream")
		prefSkew    = flag.Float64("pref-skew", 1.2, "Zipf exponent of the user preference (with -user-centric)")
		classIL     = flag.Bool("class-incremental", false, "stream classes incrementally (Class-IL) instead of domains (Domain-IL)")
	)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	stop, err := cfg.Perf.Start(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	sc, err := cfg.Scale()
	if err != nil {
		log.Fatal(err)
	}
	set, err := exp.BuildLatentSetOpts(cfg.Dataset, sc, cfg.CacheDir, func(f string, a ...any) { log.Printf(f, a...) }, cfg.Options())
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	spec := cfg.Spec()
	meter := &cl.TrafficMeter{}
	meter.Bind(obs.Default())
	var learner cl.Learner
	if cfg.Precision == cli.PrecisionFP64 {
		learner, err = exp.NewRef64Learner(spec, set, sc, cfg.Seed)
	} else {
		learner, err = exp.NewLearnerMetered(spec, set, sc, cfg.Seed, meter)
	}
	if err != nil {
		log.Fatal(err)
	}
	opts := data.StreamOptions{BatchSize: 10}
	if *classIL {
		opts.ClassIncremental = true
	}
	if *userCentric {
		opts.UserCentric = true
		opts.PrefSkew = *prefSkew
		opts.DriftEveryBatches = 0
	}
	stream := set.Stream(cfg.Seed, opts)
	log.Printf("running %s on %s (%d samples, seed %d)...", spec.Label(), cfg.Dataset, stream.Total(), cfg.Seed)
	res, err := cl.RunOnlineCheckpointed(learner, stream, set.Test, cfg.Checkpoint.Plan(meter))
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("method:        %s\n", spec.Label())
	fmt.Printf("dataset:       %s (%d train / %d test)\n", cfg.Dataset, set.Dataset.NumTrain(), set.Dataset.NumTest())
	fmt.Printf("Acc_all:       %.2f%%\n", 100*res.AccAll)
	if !math.IsNaN(res.PreferredAcc) {
		fmt.Printf("preferred-acc: %.2f%% (classes %v)\n", 100*res.PreferredAcc, stream.PreferredClasses())
	}
	if mb, err := exp.MemoryMB(spec); err == nil {
		fmt.Printf("memory (paper-scale): %.1f MB\n", mb)
	}
	if meter.OnChipItems()+meter.OffChipItems() > 0 {
		// Convert measured buffer traffic to paper-scale bytes and DRAM/SRAM
		// energy (32 KiB fp32 latents, Horowitz 45nm table).
		const latentBytes = 32 * 1024
		on, off := meter.Bytes(latentBytes)
		energy := float64(on)*hw.Horowitz45nm.SRAMPerByte + float64(off)*hw.Horowitz45nm.DRAMPerByte
		fmt.Printf("replay traffic (measured): %s\n", meter)
		fmt.Printf("  at paper scale: %.1f MB on-chip, %.1f MB off-chip -> %.3f J memory energy\n",
			float64(on)/(1<<20), float64(off)/(1<<20), energy)
	}
	fmt.Printf("per-class accuracy:\n")
	for c, acc := range res.PerClass {
		if !math.IsNaN(acc) {
			fmt.Printf("  class %2d: %5.1f%%\n", c, 100*acc)
		}
	}
}
