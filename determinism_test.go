package chameleon

import (
	"strings"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/exp"
	"chameleon/internal/parallel"
	"chameleon/internal/testenv"
)

// TestTable1DeterministicAcrossWorkers is the end-to-end determinism contract
// of the parallel compute layer: the full Table I grid — every method
// (including Chameleon's seeded dual-store replay) × multi-seed runs — must
// render byte-identically on repeated runs and at any worker count. This is
// also the regression test for the class-balanced buffer's map-iteration
// nondeterminism (replay.ClassBalanced.Sample must draw from a sorted pool).
func TestTable1DeterministicAcrossWorkers(t *testing.T) {
	set := testenv.Env(t, "core50")
	sc := exp.TestScale()
	run := func(workers int) string {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		res, err := exp.RunTable1(map[string]*cl.LatentSet{"core50": set}, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		res.Render(&b)
		return b.String()
	}
	serial := run(1)
	if again := run(1); again != serial {
		t.Fatalf("serial Table1 not repeatable:\n--- run1\n%s\n--- run2\n%s", serial, again)
	}
	if par := run(8); par != serial {
		t.Fatalf("Table1 differs at workers=8:\n--- serial\n%s\n--- parallel\n%s", serial, par)
	}
}
