# Developer entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check test build vet bench bench-parallel bench-json bench-diff

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark suite (regenerates every exhibit; slow).
bench:
	$(GO) test -bench=. -benchmem .

# Just the parallel-kernel benchmarks: serial vs GOMAXPROCS workers.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkMatMulParallel|BenchmarkLatentExtractParallel' .

# Steady-state hot-path envelope as machine-readable JSON (BENCH_pr10.json):
# the precision-tier section (fp32 fused vs split vs fp64 reference train
# step, raw GEMM/GEMV at both widths, interleaved min-of-N) with its
# regression gates applied, plus train-step and eval-batch ns/op + allocs/op,
# the batched-vs-per-sample training comparison at B=32 (train_batched, with
# its >=1.5x speedup and 0 allocs/op gates), serial vs batched eval speedup,
# checkpoint save/restore latency, the
# serving layer under 32-client closed-loop load (throughput + p50/p95/p99),
# the multi-tenant fleet under 10k-user Zipf load (throughput, eviction and
# fault-in counts, fault-in p50/p99, resident heap per 10k users), the
# warm-standby replication envelope (added p99 with the observe log on and a
# standby tailing, rolling-restart handoff time, with its zero-lost-requests
# and survivor bit-identity gates), the fp32-vs-int8 equal-bytes
# memory-accuracy frontier (with its >=4x sample ratio and -1.0 pt accuracy
# gates), and the full end-of-run metrics report.
bench-json:
	$(GO) run ./cmd/benchjson -check -out BENCH_pr10.json

# Cross-PR perf drift: compare the previous published exhibit against the
# current one, failing on >25% ns/op regressions or any allocs/op growth.
bench-diff:
	$(GO) run ./cmd/benchdiff BENCH_pr9.json BENCH_pr10.json
