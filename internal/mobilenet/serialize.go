package mobilenet

import (
	"encoding/gob"
	"fmt"
	"os"

	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// modelDisk is the on-disk form of a model: its config plus every parameter
// tensor (frozen layers included) and the BN running statistics.
type modelDisk struct {
	Version string
	Cfg     Config
	Params  []*tensor.Tensor
	BNMean  []*tensor.Tensor
	BNVar   []*tensor.Tensor
}

const modelVersion = "chameleon-model-v1"

// allLayers walks features then head.
func (m *Model) allLayers() []nn.Layer {
	return append(append([]nn.Layer{}, m.Features.Layers...), m.Head.Layers...)
}

// Save writes the model's weights (and BN statistics, if any) to path. The
// architecture itself is reconstructed from the saved Config on load.
func (m *Model) Save(path string) error {
	disk := modelDisk{Version: modelVersion, Cfg: m.Cfg}
	for _, l := range m.allLayers() {
		for _, p := range unwrapParams(l) {
			disk.Params = append(disk.Params, p.Data)
		}
		if bn := asBatchNorm(l); bn != nil {
			mean, vari := bn.Stats()
			disk.BNMean = append(disk.BNMean, mean)
			disk.BNVar = append(disk.BNVar, vari)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mobilenet: save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&disk); err != nil {
		return fmt.Errorf("mobilenet: save: %w", err)
	}
	return f.Sync()
}

// Load reconstructs a model saved with Save: it rebuilds the architecture
// from the stored config and installs the stored weights and statistics.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mobilenet: load: %w", err)
	}
	defer f.Close()
	var disk modelDisk
	if err := gob.NewDecoder(f).Decode(&disk); err != nil {
		return nil, fmt.Errorf("mobilenet: load: %w", err)
	}
	if disk.Version != modelVersion {
		return nil, fmt.Errorf("mobilenet: load: version %q, want %q", disk.Version, modelVersion)
	}
	m, err := New(disk.Cfg)
	if err != nil {
		return nil, fmt.Errorf("mobilenet: load: rebuild: %w", err)
	}
	pi, bi := 0, 0
	for _, l := range m.allLayers() {
		for _, p := range unwrapParams(l) {
			if pi >= len(disk.Params) {
				return nil, fmt.Errorf("mobilenet: load: parameter stream too short")
			}
			if p.Data.Len() != disk.Params[pi].Len() {
				return nil, fmt.Errorf("mobilenet: load: parameter %q size mismatch", p.Name)
			}
			p.Data.CopyFrom(disk.Params[pi])
			pi++
		}
		if bn := asBatchNorm(l); bn != nil {
			if bi >= len(disk.BNMean) {
				return nil, fmt.Errorf("mobilenet: load: BN stream too short")
			}
			bn.SetStats(disk.BNMean[bi], disk.BNVar[bi])
			bi++
		}
	}
	if pi != len(disk.Params) {
		return nil, fmt.Errorf("mobilenet: load: %d unused parameters", len(disk.Params)-pi)
	}
	return m, nil
}
