package mobilenet

import (
	"math/rand"
	"path/filepath"
	"testing"

	"chameleon/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig(6, 42)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must be functionally identical.
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 1, 3, 32, 32)
	za, zb := m.ExtractLatent(x), back.ExtractLatent(x.Clone())
	for i := range za.Data() {
		if za.Data()[i] != zb.Data()[i] {
			t.Fatal("features differ after round trip")
		}
	}
	la, lb := m.Logits(za), back.Logits(zb)
	for i := range la.Data() {
		if la.Data()[i] != lb.Data()[i] {
			t.Fatal("logits differ after round trip")
		}
	}
	if back.Cfg != cfg {
		t.Fatalf("config changed: %+v", back.Cfg)
	}
}

func TestSaveLoadWithBatchNormStats(t *testing.T) {
	cfg := DefaultConfig(4, 7)
	cfg.Norm = NormBatch
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Install non-trivial calibrated statistics, then round-trip.
	rng := rand.New(rand.NewSource(2))
	imgs := []*tensor.Tensor{
		tensor.RandNormal(rng, 1, 3, 32, 32),
		tensor.RandNormal(rng, 1, 3, 32, 32),
	}
	if err := m.CalibrateBN(imgs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bn.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	za, zb := m.ExtractLatent(imgs[0]), back.ExtractLatent(imgs[0].Clone())
	for i := range za.Data() {
		if za.Data()[i] != zb.Data()[i] {
			t.Fatal("BN statistics not preserved")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadedModelIsTrainable(t *testing.T) {
	m, _ := New(DefaultConfig(4, 9))
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	z := tensor.RandNormal(rng, 1, back.LatentShape...)
	before := back.Head.Forward(z, false).Clone()
	loss := back.TrainStep(z, 1)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	// Gradients accumulated; apply a manual step and check logits move.
	for _, p := range back.Head.Params() {
		p.Data.AddScaled(-0.1, p.Grad)
	}
	after := back.Head.Forward(z, false)
	moved := false
	for i := range after.Data() {
		if after.Data()[i] != before.Data()[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("loaded model not trainable")
	}
}
