package mobilenet

import "fmt"

// LayerKind distinguishes the conv layer types for cost modelling.
type LayerKind int

const (
	// KindConv is a standard k×k convolution.
	KindConv LayerKind = iota
	// KindDepthwise is a depthwise k×k convolution.
	KindDepthwise
	// KindPointwise is a 1×1 convolution.
	KindPointwise
	// KindDense is the final classifier (after global average pooling).
	KindDense
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindDepthwise:
		return "dw"
	case KindPointwise:
		return "pw"
	case KindDense:
		return "fc"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerInfo records the analytically computed geometry and cost of one conv
// layer of a MobileNetV1 instance. It is the shared vocabulary between the
// replay-memory accounting (internal/memcost) and the hardware latency/energy
// models (internal/hw).
type LayerInfo struct {
	// Index is the 1-based conv-layer index (1..27), or 28 for the classifier.
	Index int
	Kind  LayerKind
	Name  string
	// Geometry.
	InC, OutC  int
	InH, InW   int
	OutH, OutW int
	Kernel     int
	Stride     int
	// MACs is the multiply-accumulate count of a forward pass.
	MACs int64
	// Weights is the parameter count (incl. bias).
	Weights int64
	// InActs / OutActs are activation scalar counts.
	InActs, OutActs int64
	// Frozen reports whether the layer belongs to f(·) under the config's
	// latent split.
	Frozen bool
}

// FLOPs returns 2·MACs, the conventional FLOP count.
func (l LayerInfo) FLOPs() int64 { return 2 * l.MACs }

// Inventory computes the per-layer geometry/cost table of cfg analytically
// (no tensors are allocated). The final entry is the classifier Dense layer.
func Inventory(cfg Config) []LayerInfo {
	var out []LayerInfo
	h := cfg.Resolution
	inC := 3
	push := func(idx int, kind LayerKind, name string, outC, kernel, stride int) {
		var oh int
		if kernel == 1 {
			oh = (h-1)/stride + 1 // pointwise, no padding
		} else {
			oh = (h+2-kernel)/stride + 1 // 3x3 with pad 1
		}
		info := LayerInfo{
			Index: idx, Kind: kind, Name: name,
			InC: inC, OutC: outC, InH: h, InW: h, OutH: oh, OutW: oh,
			Kernel: kernel, Stride: stride,
			Frozen: idx <= cfg.LatentLayer,
		}
		spatial := int64(oh) * int64(oh)
		switch kind {
		case KindDepthwise:
			info.MACs = spatial * int64(inC) * int64(kernel*kernel)
			info.Weights = int64(inC)*int64(kernel*kernel) + int64(inC)
		default:
			info.MACs = spatial * int64(outC) * int64(inC) * int64(kernel*kernel)
			info.Weights = int64(outC)*int64(inC)*int64(kernel*kernel) + int64(outC)
		}
		info.InActs = int64(inC) * int64(h) * int64(h)
		info.OutActs = int64(outC) * spatial
		out = append(out, info)
		h = oh
		inC = outC
	}

	stemC := scaleC(32, cfg.Width)
	push(1, KindConv, "conv1", stemC, 3, 2)
	idx := 1
	for b, spec := range v1Blocks {
		outC := scaleC(spec.outC, cfg.Width)
		idx++
		push(idx, KindDepthwise, fmt.Sprintf("dw%d", b+1), inC, 3, spec.stride)
		idx++
		push(idx, KindPointwise, fmt.Sprintf("pw%d", b+1), outC, 1, 1)
	}
	// Classifier after global average pooling.
	fc := LayerInfo{
		Index: NumConvLayers + 1, Kind: KindDense, Name: "fc",
		InC: inC, OutC: cfg.NumClasses, InH: 1, InW: 1, OutH: 1, OutW: 1,
		Kernel: 1, Stride: 1,
		MACs:    int64(inC) * int64(cfg.NumClasses),
		Weights: int64(inC)*int64(cfg.NumClasses) + int64(cfg.NumClasses),
		InActs:  int64(inC), OutActs: int64(cfg.NumClasses),
		Frozen: false,
	}
	out = append(out, fc)
	return out
}

// InventorySummary aggregates an inventory into frozen/trainable totals.
type InventorySummary struct {
	FrozenMACs, TrainMACs       int64
	FrozenWeights, TrainWeights int64
	// LatentScalars is the scalar count of the activation emitted by the
	// latent layer — the per-sample payload of a latent replay buffer.
	LatentScalars int64
	// InputScalars is the scalar count of one input image.
	InputScalars int64
	// NumClasses echoes the config for logit sizing.
	NumClasses int
}

// Summarize reduces an inventory under the given config.
func Summarize(cfg Config, inv []LayerInfo) InventorySummary {
	s := InventorySummary{
		InputScalars: 3 * int64(cfg.Resolution) * int64(cfg.Resolution),
		NumClasses:   cfg.NumClasses,
	}
	for _, l := range inv {
		if l.Frozen {
			s.FrozenMACs += l.MACs
			s.FrozenWeights += l.Weights
			if l.Index == cfg.LatentLayer {
				s.LatentScalars = l.OutActs
			}
		} else {
			s.TrainMACs += l.MACs
			s.TrainWeights += l.Weights
		}
	}
	return s
}
