package mobilenet

import (
	"fmt"

	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// CalibrateBN sets every BatchNorm layer's running statistics to the actual
// per-channel mean/variance of its input over the given calibration images,
// processing the network layer by layer.
//
// A real pretrained MobileNetV1 ships BN statistics matched to its weights;
// with deterministic He-init weights and arbitrary BN statistics the signal
// collapses within a few blocks (activations die through the 13 ReLU6
// blocks). Calibration restores the property that matters: every layer's
// output stays well-scaled, so the frozen random features preserve class
// geometry. The images should be a small sample of the pre-deployment
// distribution (the paper's ImageNet pretraining step; here a slice of the
// synthetic pool).
func (m *Model) CalibrateBN(images []*tensor.Tensor) error {
	if len(images) == 0 {
		return fmt.Errorf("mobilenet: CalibrateBN needs at least one image")
	}
	acts := make([]*tensor.Tensor, len(images))
	for i, img := range images {
		if img.NDim() != 3 || img.Dim(0) != 3 || img.Dim(1) != m.Cfg.Resolution {
			return fmt.Errorf("mobilenet: calibration image %d has shape %v, want [3,%d,%d]",
				i, img.Shape(), m.Cfg.Resolution, m.Cfg.Resolution)
		}
		acts[i] = img
	}
	calibrateChain(m.Features.Layers, acts)
	// The head may also contain BN stages (HeadConvTail); calibrate them with
	// the latents just produced.
	calibrateChain(m.Head.Layers, acts)
	return nil
}

// calibrateChain walks a layer chain, setting BN stats from the incoming
// activations before forwarding through each layer.
func calibrateChain(layers []nn.Layer, acts []*tensor.Tensor) {
	for _, l := range layers {
		if bn := asBatchNorm(l); bn != nil {
			setStatsFrom(bn, acts)
		}
		for i := range acts {
			acts[i] = l.Forward(acts[i], false)
		}
	}
}

// asBatchNorm unwraps Frozen and returns the BatchNorm2D inside, if any.
func asBatchNorm(l nn.Layer) *nn.BatchNorm2D {
	switch v := l.(type) {
	case *nn.BatchNorm2D:
		return v
	case *nn.Frozen:
		if bn, ok := v.Inner.(*nn.BatchNorm2D); ok {
			return bn
		}
	}
	return nil
}

// setStatsFrom computes per-channel mean and variance over all activations
// (channels × spatial) and installs them in the BN layer.
func setStatsFrom(bn *nn.BatchNorm2D, acts []*tensor.Tensor) {
	c := acts[0].Dim(0)
	mean := tensor.New(c)
	vari := tensor.New(c)
	sum := make([]float64, c)
	sumSq := make([]float64, c)
	var n float64
	for _, a := range acts {
		h, w := a.Dim(1), a.Dim(2)
		plane := h * w
		for ci := 0; ci < c; ci++ {
			for _, v := range a.Data()[ci*plane : (ci+1)*plane] {
				sum[ci] += float64(v)
				sumSq[ci] += float64(v) * float64(v)
			}
		}
		n += float64(plane)
	}
	for ci := 0; ci < c; ci++ {
		mu := sum[ci] / n
		v := sumSq[ci]/n - mu*mu
		if v < 1e-4 {
			v = 1e-4 // dead channel: avoid amplifying noise
		}
		mean.Data()[ci] = float32(mu)
		vari.Data()[ci] = float32(v)
	}
	bn.SetStats(mean, vari)
}
