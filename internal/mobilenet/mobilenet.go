// Package mobilenet builds the MobileNetV1 backbone the paper trains on and
// splits it at a latent layer into a frozen feature extractor f(·) and a
// trainable head g(·), following the Latent Replay / Chameleon setup.
//
// MobileNetV1 has 27 convolutional layers: one standard 3×3 stem plus 13
// depthwise-separable blocks (a depthwise 3×3 and a pointwise 1×1 each).
// The paper freezes layers 1..21 — conv layer 21 is the pointwise layer of
// block 10, whose output (512·α channels at stride 16) is the "latent"
// activation stored in the replay buffers — and trains the rest.
//
// Pretrained ImageNet weights are substituted by a deterministic He-normal
// initialisation (see DESIGN.md): with the synthetic class-prototype data in
// internal/data, frozen random convolutional features act as a structured
// random projection that preserves class geometry, which is all the online
// learner relies on.
package mobilenet

import (
	"fmt"
	"math"
	"math/rand"

	"chameleon/internal/nn"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// HeadKind selects the architecture of the trainable head g(·).
type HeadKind int

const (
	// HeadConvTail is the faithful MobileNetV1 tail: the remaining
	// depthwise-separable blocks after the latent layer, global average
	// pooling and the classifier. This is what the paper trains and what the
	// hardware models cost out.
	HeadConvTail HeadKind = iota
	// HeadMLP is a lighter head (global average pool, one hidden dense layer,
	// classifier) used to keep laptop-scale accuracy experiments fast. It
	// preserves the structure that matters for continual learning — all
	// trainable capacity sits above the frozen latent layer.
	HeadMLP
)

// String implements fmt.Stringer.
func (k HeadKind) String() string {
	switch k {
	case HeadConvTail:
		return "convtail"
	case HeadMLP:
		return "mlp"
	default:
		return fmt.Sprintf("HeadKind(%d)", int(k))
	}
}

// NormKind selects the backbone's normalisation layer.
type NormKind int

const (
	// NormGroup uses GroupNorm (default). It has no batch or dataset
	// dependence, so it both trains the deep backbone from scratch during the
	// pretraining phase and behaves identically in single-sample online
	// training — the regime edge devices actually run. This is a documented
	// substitution for the paper's BatchNorm (see DESIGN.md).
	NormGroup NormKind = iota
	// NormBatch uses frozen-statistics BatchNorm, the inference-time
	// behaviour of the paper's pretrained backbone. Statistics are installed
	// via CalibrateBN. Deep from-scratch pretraining does not converge under
	// frozen statistics; use NormGroup for that.
	NormBatch
)

// String implements fmt.Stringer.
func (n NormKind) String() string {
	switch n {
	case NormGroup:
		return "groupnorm"
	case NormBatch:
		return "batchnorm"
	default:
		return fmt.Sprintf("NormKind(%d)", int(n))
	}
}

// Config describes a MobileNetV1 instance.
type Config struct {
	// Width is the width multiplier α (paper uses 1.0; experiments here
	// default to 0.25 for speed).
	Width float64
	// Resolution is the square input size.
	Resolution int
	// NumClasses is the classifier width.
	NumClasses int
	// LatentLayer is the conv-layer index (1..27) after which activations are
	// treated as latents. The paper uses 21.
	LatentLayer int
	// Head selects the trainable head architecture.
	Head HeadKind
	// Norm selects the normalisation layer (default NormGroup).
	Norm NormKind
	// HiddenDim is the hidden width for HeadMLP (default 64).
	HiddenDim int
	// Seed drives the deterministic pseudo-pretrained initialisation.
	Seed int64
}

// DefaultConfig returns the laptop-scale configuration used by the
// experiment harness: MobileNetV1-0.25 at 32×32 with the paper's latent
// layer 21 and an MLP head.
func DefaultConfig(numClasses int, seed int64) Config {
	return Config{
		Width:       0.25,
		Resolution:  32,
		NumClasses:  numClasses,
		LatentLayer: 21,
		Head:        HeadMLP,
		HiddenDim:   64,
		Seed:        seed,
	}
}

// PaperConfig returns the paper-scale configuration (MobileNetV1-1.0, 64×64
// inputs — the resolution at which the latent layer's 512×4×4 fp32 activation
// matches the paper's reported 32 KB per replay sample), with the faithful
// convolutional tail head. Used for memory accounting and hardware modelling.
func PaperConfig(numClasses int) Config {
	return Config{
		Width:       1.0,
		Resolution:  64,
		NumClasses:  numClasses,
		LatentLayer: 21,
		Head:        HeadConvTail,
	}
}

// blockSpec is one depthwise-separable block: output channels (pre-width
// scaling) and the stride of its depthwise conv.
type blockSpec struct {
	outC   int
	stride int
}

// v1Blocks is the canonical MobileNetV1 block table.
var v1Blocks = []blockSpec{
	{64, 1},
	{128, 2},
	{128, 1},
	{256, 2},
	{256, 1},
	{512, 2},
	{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
	{1024, 2},
	{1024, 1},
}

// NumConvLayers is the number of convolutional layers in MobileNetV1.
const NumConvLayers = 1 + 2*13

// normGroups picks the largest group count in {8,4,2,1} dividing c.
func normGroups(c int) int {
	for _, g := range []int{8, 4, 2} {
		if c%g == 0 {
			return g
		}
	}
	return 1
}

// scaleC applies the width multiplier, keeping at least 4 channels.
func scaleC(c int, width float64) int {
	s := int(math.Round(float64(c) * width))
	if s < 4 {
		s = 4
	}
	return s
}

// Model is a split MobileNetV1: frozen Features (f) and trainable Head (g).
type Model struct {
	Cfg Config
	// Features is the frozen extractor: conv layers 1..LatentLayer with their
	// BN and activations, wrapped so they expose no trainable parameters.
	Features *nn.Sequential
	// Head is the trainable g(·): it consumes a latent tensor and produces
	// class logits.
	Head *nn.Sequential
	// LatentShape is the [C,H,W] shape of f's output.
	LatentShape []int
}

// New builds the model described by cfg. It returns an error for invalid
// configurations (bad latent layer, non-positive sizes).
func New(cfg Config) (*Model, error) {
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("mobilenet: width %v must be positive", cfg.Width)
	}
	if cfg.Resolution < 16 {
		return nil, fmt.Errorf("mobilenet: resolution %d too small (min 16)", cfg.Resolution)
	}
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("mobilenet: need at least 2 classes, got %d", cfg.NumClasses)
	}
	if cfg.LatentLayer < 1 || cfg.LatentLayer >= NumConvLayers {
		return nil, fmt.Errorf("mobilenet: latent layer %d out of range [1,%d)", cfg.LatentLayer, NumConvLayers)
	}
	if cfg.HiddenDim <= 0 {
		cfg.HiddenDim = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	feat := nn.NewSequential("features")
	head := nn.NewSequential("head")
	// appendConv adds a conv (+BN+ReLU6) stage to features or head depending
	// on whether its conv-layer index is within the frozen range.
	convIdx := 0
	addStage := func(conv nn.Layer, c int) {
		convIdx++
		var norm nn.Layer
		switch cfg.Norm {
		case NormBatch:
			bn := nn.NewBatchNorm2D(fmt.Sprintf("bn%d", convIdx), c)
			// Pseudo-pretrained statistics: mild per-channel offsets/scales;
			// CalibrateBN replaces them with measured values.
			bn.SetStats(tensor.RandNormal(rng, 0.1, c), tensor.RandUniform(rng, 0.8, 1.2, c))
			norm = bn
		default:
			norm = nn.NewGroupNorm2D(fmt.Sprintf("gn%d", convIdx), c, normGroups(c))
		}
		if convIdx <= cfg.LatentLayer {
			feat.Append(&nn.Frozen{Inner: conv}, &nn.Frozen{Inner: norm}, nn.NewReLU6())
		} else {
			head.Append(conv, norm, nn.NewReLU6())
		}
	}

	inC := 3
	stemC := scaleC(32, cfg.Width)
	addStage(nn.NewConv2D("conv1", inC, stemC, 3, 2, 1, rng), stemC)
	inC = stemC
	for b, spec := range v1Blocks {
		outC := scaleC(spec.outC, cfg.Width)
		addStage(nn.NewDepthwiseConv2D(fmt.Sprintf("dw%d", b+1), inC, 3, spec.stride, 1, rng), inC)
		addStage(nn.NewConv2D(fmt.Sprintf("pw%d", b+1), inC, outC, 1, 1, 0, rng), outC)
		inC = outC
	}

	m := &Model{Cfg: cfg, Features: feat}
	m.LatentShape = feat.OutShape([]int{3, cfg.Resolution, cfg.Resolution})
	latC := m.LatentShape[0]

	switch cfg.Head {
	case HeadConvTail:
		head.Append(nn.NewGlobalAvgPool2D(), nn.NewDense("fc", inC, cfg.NumClasses, rng))
		m.Head = head
	case HeadMLP:
		m.Head = nn.NewSequential("head",
			nn.NewGlobalAvgPool2D(),
			nn.NewDense("fc1", latC, cfg.HiddenDim, rng),
			nn.NewReLU(),
			nn.NewDense("fc2", cfg.HiddenDim, cfg.NumClasses, rng),
		)
	default:
		return nil, fmt.Errorf("mobilenet: unknown head kind %v", cfg.Head)
	}
	return m, nil
}

// ExtractLatent runs the frozen feature extractor on a [3,R,R] image.
//
// Eval-mode Forward is mutation-free across every layer this backbone is
// built from (conv, norm, activation layers cache intermediates only when
// train=true), so ExtractLatent is safe to call concurrently on one shared
// model — the property the parallel extraction data plane relies on.
func (m *Model) ExtractLatent(x *tensor.Tensor) *tensor.Tensor {
	return m.Features.Forward(x, false)
}

// ExtractLatents runs the frozen extractor over a batch of images, sharding
// samples across the worker pool. Each output index is computed by an
// independent eval-mode forward pass, so results are bit-identical to calling
// ExtractLatent in a loop regardless of worker count.
func (m *Model) ExtractLatents(imgs []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(imgs))
	parallel.For(len(imgs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.Features.Forward(imgs[i], false)
		}
	})
	return out
}

// Int8Extractor is the frozen feature extractor with its im2col convolutions
// (the stem and every pointwise conv — the bulk of the backbone's MACs)
// quantised to int8. Depthwise convolutions, normalisation and activations
// stay in float32, the usual mixed-precision deployment split: they are a
// thin slice of the arithmetic and the per-channel stencils gain little from
// integer math. Like the fp32 extractor it is mutation-free, so one instance
// serves concurrent extraction workers.
type Int8Extractor struct {
	steps       []int8Step
	LatentShape []int
}

// int8Step is one extractor stage: a quantised conv or a passthrough fp32
// layer.
type int8Step struct {
	conv  *nn.Int8Conv2D
	layer nn.Layer
}

// NewInt8Extractor quantises the model's frozen features. The model is read
// at construction; later weight changes (there are none — the extractor is
// frozen) would not be reflected.
func (m *Model) NewInt8Extractor() *Int8Extractor {
	e := &Int8Extractor{LatentShape: m.LatentShape}
	for _, l := range m.Features.Layers {
		inner := l
		if f, ok := l.(*nn.Frozen); ok {
			inner = f.Inner
		}
		if c, ok := inner.(*nn.Conv2D); ok {
			e.steps = append(e.steps, int8Step{conv: nn.NewInt8Conv2D(c)})
			continue
		}
		e.steps = append(e.steps, int8Step{layer: l})
	}
	return e
}

// ExtractLatent runs the integer extractor on a [3,R,R] image.
func (e *Int8Extractor) ExtractLatent(x *tensor.Tensor) *tensor.Tensor {
	for _, s := range e.steps {
		if s.conv != nil {
			x = s.conv.Forward(x)
		} else {
			x = s.layer.Forward(x, false)
		}
	}
	return x
}

// Logits runs the trainable head on a latent tensor in eval mode.
func (m *Model) Logits(latent *tensor.Tensor) *tensor.Tensor {
	return m.Head.Forward(latent, false)
}

// TrainStep performs one forward/backward pass of the head on a latent and
// accumulates gradients (no optimizer step; callers batch several of these
// before stepping). It returns the loss.
func (m *Model) TrainStep(latent *tensor.Tensor, label int) float64 {
	logits := m.Head.Forward(latent, true)
	loss, g := nn.CrossEntropy(logits, label)
	m.Head.Backward(g)
	return loss
}

// LatentLen returns the flattened latent size in scalars.
func (m *Model) LatentLen() int {
	n := 1
	for _, d := range m.LatentShape {
		n *= d
	}
	return n
}
