package mobilenet

import (
	"math"
	"math/rand"
	"testing"

	"chameleon/internal/tensor"
)

// TestInt8ExtractorCloseToFP32 bounds the integer extraction path's error:
// over a batch of random images the int8 latents must stay within a few
// percent relative L2 of the fp32 latents — per-channel weight scales and
// per-tensor activation scales keep the layerwise quantisation error from
// compounding into something that would move downstream head accuracy.
func TestInt8ExtractorCloseToFP32(t *testing.T) {
	m, err := New(DefaultConfig(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	e := m.NewInt8Extractor()
	rng := rand.New(rand.NewSource(11))
	var worst float64
	for s := 0; s < 4; s++ {
		img := tensor.RandUniform(rng, 0, 1, 3, m.Cfg.Resolution, m.Cfg.Resolution)
		zf := m.ExtractLatent(img)
		zq := e.ExtractLatent(img)
		if zq.Len() != zf.Len() {
			t.Fatalf("int8 latent length %d, want %d", zq.Len(), zf.Len())
		}
		var num, den float64
		for i, v := range zf.Data() {
			d := float64(zq.Data()[i]) - float64(v)
			num += d * d
			den += float64(v) * float64(v)
		}
		rel := math.Sqrt(num / (den + 1e-12))
		if rel > worst {
			worst = rel
		}
	}
	t.Logf("worst relative L2 error over 4 images: %.4f", worst)
	if worst > 0.10 {
		t.Fatalf("int8 latents diverge from fp32 by %.1f%% relative L2 (> 10%%)", 100*worst)
	}
}

// TestInt8ExtractorDeterministic pins that repeated integer extraction of
// the same image is bit-identical (the quantised weights are fixed at
// construction and activations quantise deterministically), which the latent
// cache depends on.
func TestInt8ExtractorDeterministic(t *testing.T) {
	m, err := New(DefaultConfig(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	e := m.NewInt8Extractor()
	rng := rand.New(rand.NewSource(13))
	img := tensor.RandUniform(rng, 0, 1, 3, m.Cfg.Resolution, m.Cfg.Resolution)
	a, b := e.ExtractLatent(img), e.ExtractLatent(img)
	for i, v := range a.Data() {
		if b.Data()[i] != v {
			t.Fatalf("element %d differs across identical extractions: %g vs %g", i, v, b.Data()[i])
		}
	}
}
