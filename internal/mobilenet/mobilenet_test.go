package mobilenet

import (
	"math/rand"
	"testing"

	"chameleon/internal/nn"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Width: 0, Resolution: 32, NumClasses: 10, LatentLayer: 21},
		{Width: 1, Resolution: 8, NumClasses: 10, LatentLayer: 21},
		{Width: 1, Resolution: 32, NumClasses: 1, LatentLayer: 21},
		{Width: 1, Resolution: 32, NumClasses: 10, LatentLayer: 0},
		{Width: 1, Resolution: 32, NumClasses: 10, LatentLayer: 27},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestLatentShapeAtPaperSplit(t *testing.T) {
	// Paper scale: MobileNetV1-1.0 @ 64, latent layer 21 -> 512 ch @ stride 16.
	m, err := New(PaperConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{512, 4, 4}
	for i, d := range want {
		if m.LatentShape[i] != d {
			t.Fatalf("latent shape %v, want %v", m.LatentShape, want)
		}
	}
	// 512*4*4 fp32 = 32 KiB, the paper's per-sample latent payload.
	if m.LatentLen()*4 != 32*1024 {
		t.Fatalf("latent bytes = %d, want 32768", m.LatentLen()*4)
	}
}

func TestFrozenFeaturesHaveNoParams(t *testing.T) {
	m, err := New(DefaultConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.Features.Params()); n != 0 {
		t.Fatalf("frozen extractor exposes %d params", n)
	}
	if nn.NumParams(m.Head) == 0 {
		t.Fatal("head has no trainable params")
	}
}

func TestForwardShapesSmall(t *testing.T) {
	m, err := New(DefaultConfig(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandNormal(rng, 1, 3, 32, 32)
	z := m.ExtractLatent(x)
	for i, d := range m.LatentShape {
		if z.Dim(i) != d {
			t.Fatalf("latent %v, declared %v", z.Shape(), m.LatentShape)
		}
	}
	logits := m.Logits(z)
	if logits.NDim() != 1 || logits.Len() != 10 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New(DefaultConfig(10, 7))
	b, _ := New(DefaultConfig(10, 7))
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 1, 3, 32, 32)
	za, zb := a.ExtractLatent(x), b.ExtractLatent(x.Clone())
	for i := range za.Data() {
		if za.Data()[i] != zb.Data()[i] {
			t.Fatal("same seed must give identical features")
		}
	}
	c, _ := New(DefaultConfig(10, 8))
	zc := c.ExtractLatent(x.Clone())
	same := true
	for i := range za.Data() {
		if za.Data()[i] != zc.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different features")
	}
}

func TestConvTailHead(t *testing.T) {
	cfg := DefaultConfig(5, 9)
	cfg.Head = HeadConvTail
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandNormal(rng, 1, 3, 32, 32)
	z := m.ExtractLatent(x)
	logits := m.Head.Forward(z, true)
	if logits.Len() != 5 {
		t.Fatalf("logits %v", logits.Shape())
	}
	_, g := nn.CrossEntropy(logits, 2)
	gin := m.Head.Backward(g)
	for i, d := range m.LatentShape {
		if gin.Dim(i) != d {
			t.Fatalf("head backward shape %v, want latent %v", gin.Shape(), m.LatentShape)
		}
	}
}

func TestTrainStepReducesLossOnRepeatedSample(t *testing.T) {
	m, err := New(DefaultConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	z := tensor.RandNormal(rng, 1, m.LatentShape...)
	opt := nn.NewSGD(0.05)
	first := 0.0
	var last float64
	for i := 0; i < 30; i++ {
		nn.ZeroGrads(m.Head)
		loss := m.TrainStep(z, 1)
		opt.Step(m.Head)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestInventoryPaperScale(t *testing.T) {
	cfg := PaperConfig(50)
	inv := Inventory(cfg)
	if len(inv) != NumConvLayers+1 {
		t.Fatalf("inventory has %d entries, want %d", len(inv), NumConvLayers+1)
	}
	// Layer 21 must be the pointwise conv of block 10 with 512 outputs at 4x4.
	l21 := inv[20]
	if l21.Index != 21 || l21.Kind != KindPointwise || l21.OutC != 512 || l21.OutH != 4 {
		t.Fatalf("layer 21 = %+v", l21)
	}
	if !l21.Frozen || inv[21].Frozen {
		t.Fatal("frozen split at latent layer 21 wrong")
	}
	s := Summarize(cfg, inv)
	if s.LatentScalars != 512*4*4 {
		t.Fatalf("latent scalars = %d", s.LatentScalars)
	}
	if s.TrainWeights == 0 || s.FrozenWeights == 0 {
		t.Fatal("summary has zero weights on one side")
	}
	// MobileNetV1-1.0 has ~4.2M params total; our 64x64 variant keeps the
	// same weight count (weights don't depend on resolution).
	total := s.TrainWeights + s.FrozenWeights
	if total < 3_000_000 || total > 5_000_000 {
		t.Fatalf("total weights = %d, outside MobileNetV1 range", total)
	}
}

func TestInventoryMatchesBuiltModelShapes(t *testing.T) {
	cfg := DefaultConfig(10, 11)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inv := Inventory(cfg)
	var latent LayerInfo
	for _, l := range inv {
		if l.Index == cfg.LatentLayer {
			latent = l
		}
	}
	if latent.OutC != m.LatentShape[0] || latent.OutH != m.LatentShape[1] || latent.OutW != m.LatentShape[2] {
		t.Fatalf("inventory latent %dx%dx%d vs model %v", latent.OutC, latent.OutH, latent.OutW, m.LatentShape)
	}
}

func TestInventoryMACsPositiveAndStridesReduce(t *testing.T) {
	inv := Inventory(PaperConfig(50))
	for _, l := range inv {
		if l.MACs <= 0 || l.Weights <= 0 {
			t.Fatalf("layer %s has non-positive cost: %+v", l.Name, l)
		}
		if l.Stride == 2 && l.OutH*2 != l.InH && l.OutH*2 != l.InH+1 {
			t.Fatalf("stride-2 layer %s: %d -> %d", l.Name, l.InH, l.OutH)
		}
	}
}

// TestExtractLatentsParallelEquivalence asserts the batched extractor is
// bit-identical to a serial ExtractLatent loop at any worker count, over one
// shared model (the eval-mode Forward mutation-freedom contract; run with
// -race to verify the absence of writes).
func TestExtractLatentsParallelEquivalence(t *testing.T) {
	m, err := New(Config{Width: 0.25, Resolution: 16, NumClasses: 4, LatentLayer: 5, Head: HeadMLP, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	imgs := make([]*tensor.Tensor, 24)
	for i := range imgs {
		imgs[i] = tensor.RandNormal(rng, 1, 3, 16, 16)
	}
	var want []*tensor.Tensor
	for _, x := range imgs {
		want = append(want, m.ExtractLatent(x))
	}
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	got := m.ExtractLatents(imgs)
	for i := range imgs {
		for j, v := range want[i].Data() {
			if got[i].Data()[j] != v {
				t.Fatalf("latent %d differs at %d: %v vs %v", i, j, got[i].Data()[j], v)
			}
		}
	}
}
