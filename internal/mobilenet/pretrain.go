package mobilenet

import (
	"fmt"
	"math/rand"

	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// PretrainConfig controls the offline pretraining phase that substitutes the
// paper's ImageNet-pretrained backbone. The network is trained end to end
// (features included) on a *disjoint* synthetic class set drawn from the same
// generative family as the deployment data, then frozen.
type PretrainConfig struct {
	// Epochs is the number of passes over the pretraining pool.
	Epochs int
	// LR and Momentum parameterise the SGD optimizer.
	LR       float64
	Momentum float64
	// BatchSize is the gradient-accumulation size.
	BatchSize int
	// GradClip caps each parameter's gradient L2 norm per step (default 5);
	// deep plain CNNs occasionally spike early in training and collapse to
	// the trivial constant-logit optimum without it.
	GradClip float64
	// RecalibrateEachEpoch refreshes BN statistics at epoch boundaries so
	// normalisation tracks the evolving weights.
	RecalibrateEachEpoch bool
	// CalibrationSize caps how many pool images feed each BN calibration.
	CalibrationSize int
	// Seed drives shuffling.
	Seed int64
}

// DefaultPretrain returns a configuration adequate for the laptop-scale
// backbones used in the experiments.
func DefaultPretrain(seed int64) PretrainConfig {
	return PretrainConfig{
		Epochs: 4, LR: 0.05, Momentum: 0.9, BatchSize: 8,
		RecalibrateEachEpoch: true, CalibrationSize: 64, Seed: seed,
	}
}

// allParams returns the model's trainable AND frozen parameters (unwrapping
// Frozen), for the pretraining phase only.
func (m *Model) allParams() []*nn.Param {
	var out []*nn.Param
	for _, l := range m.Features.Layers {
		if f, ok := l.(*nn.Frozen); ok {
			out = append(out, f.Inner.Params()...)
		} else {
			out = append(out, l.Params()...)
		}
	}
	out = append(out, m.Head.Params()...)
	return out
}

// Pretrain trains the full network (features unfrozen for the duration) on
// the given images/labels with cross-entropy, then leaves the features
// frozen again (they were only ever exposed through allParams). It returns
// the final-epoch mean loss.
func (m *Model) Pretrain(images []*tensor.Tensor, labels []int, cfg PretrainConfig) (float64, error) {
	if len(images) == 0 || len(images) != len(labels) {
		return 0, fmt.Errorf("mobilenet: pretrain needs aligned images/labels, got %d/%d", len(images), len(labels))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	for i, y := range labels {
		if y < 0 || y >= m.Cfg.NumClasses {
			return 0, fmt.Errorf("mobilenet: pretrain label %d out of range at %d", y, i)
		}
	}
	if cfg.GradClip <= 0 {
		cfg.GradClip = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.allParams()
	opt := nn.NewSGD(cfg.LR)
	opt.Momentum = cfg.Momentum
	opt.GradClip = cfg.GradClip

	calibrate := func() error {
		n := cfg.CalibrationSize
		if n <= 0 || n > len(images) {
			n = len(images)
		}
		sub := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			sub[i] = images[rng.Intn(len(images))]
		}
		return m.CalibrateBN(sub)
	}
	if err := calibrate(); err != nil {
		return 0, err
	}

	order := rng.Perm(len(images))
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		// Step decay: halve the learning rate for the final third of training.
		if cfg.Epochs >= 6 && ep == cfg.Epochs*2/3 {
			opt.LR *= 0.5
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		steps := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, p := range params {
				p.ZeroGrad()
			}
			var batchLoss float64
			for _, idx := range order[start:end] {
				z := m.Features.Forward(images[idx], true)
				logits := m.Head.Forward(z, true)
				loss, g := nn.CrossEntropy(logits, labels[idx])
				gz := m.Head.Backward(g)
				m.Features.Backward(gz)
				batchLoss += loss
			}
			inv := float32(1 / float64(end-start))
			for _, p := range params {
				p.Grad.Scale(inv)
				opt.StepParam(p)
			}
			epochLoss += batchLoss / float64(end-start)
			steps++
		}
		lastLoss = epochLoss / float64(steps)
		if cfg.RecalibrateEachEpoch {
			if err := calibrate(); err != nil {
				return 0, err
			}
		}
	}
	return lastLoss, nil
}

// CopyFeaturesFrom transfers the frozen extractor's weights and BN running
// statistics from src into m. Both models must share the structural config
// (width, latent layer); class counts may differ — only features move.
func (m *Model) CopyFeaturesFrom(src *Model) error {
	if len(m.Features.Layers) != len(src.Features.Layers) {
		return fmt.Errorf("mobilenet: feature depth mismatch %d vs %d", len(m.Features.Layers), len(src.Features.Layers))
	}
	for i, dl := range m.Features.Layers {
		sl := src.Features.Layers[i]
		dp, sp := unwrapParams(dl), unwrapParams(sl)
		if len(dp) != len(sp) {
			return fmt.Errorf("mobilenet: layer %d param count mismatch", i)
		}
		for j := range dp {
			if dp[j].Data.Len() != sp[j].Data.Len() {
				return fmt.Errorf("mobilenet: layer %d param %q size mismatch", i, dp[j].Name)
			}
			dp[j].Data.CopyFrom(sp[j].Data)
		}
		if dbn, sbn := asBatchNorm(dl), asBatchNorm(sl); dbn != nil && sbn != nil {
			mean, vari := sbn.Stats()
			dbn.SetStats(mean, vari)
		}
	}
	return nil
}

func unwrapParams(l nn.Layer) []*nn.Param {
	if f, ok := l.(*nn.Frozen); ok {
		return f.Inner.Params()
	}
	return l.Params()
}
