// Package api is the wire surface of the /v1 HTTP API: every request,
// response and error-envelope type exchanged between chameleon-serve, the
// load generator and the replication client lives here, declared exactly
// once. Before this package existed the serving layer owned the types and
// every client re-imported (or re-invented) them; now internal/serve,
// cmd/chameleon-loadgen and internal/replication all resolve the same
// declarations, so a wire-format change is a one-file diff.
//
// The package is deliberately a leaf: plain structs with JSON tags, the
// stable machine-readable error codes, and nothing else — no HTTP handlers,
// no learner types, no imports beyond the standard library.
// See API.md at the repository root for the full endpoint documentation.
package api

import "fmt"

// Machine-readable error codes carried by every error envelope. Clients
// switch on these — never on status-code guessing or message prefixes — to
// decide whether to retry, back off, or fail. The set is append-only: codes
// are a wire contract.
const (
	// CodeBadRequest: the request was malformed (unknown fields, wrong latent
	// length, label out of range, missing user id, ...). Retrying the same
	// payload will fail the same way.
	CodeBadRequest = "bad_request"
	// CodeQueueFull: a bounded queue shed the request (HTTP 429). Retry after
	// the Retry-After delay.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down (HTTP 503). Retry against the
	// standby, or the same address after the restart.
	CodeDraining = "draining"
	// CodeTooManyUsers: the fleet's user-capacity cap rejected a new user id
	// (HTTP 429). Retrying helps only if capacity is freed.
	CodeTooManyUsers = "too_many_users"
	// CodeTimeout: the request waited longer than the server's request
	// timeout (HTTP 504). The queued work may still complete server-side.
	CodeTimeout = "timeout"
	// CodeNotReady: a warm standby that has not been promoted yet refuses
	// reads and writes with this code (HTTP 503). Retry against the primary,
	// or the same address after failover promotes it.
	CodeNotReady = "not_ready"
	// CodeInternal: a learner panic or other server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// Error is the JSON error envelope every non-2xx /v1 response carries. Code
// is the stable machine-readable discriminator; Message is human-readable
// and free to change between versions.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"error"`
}

// Error implements the error interface so a decoded envelope can flow
// through client code as a plain Go error.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// Retryable reports whether the condition the code names can clear on its
// own — the client should retry (after Retry-After) rather than give up.
func Retryable(code string) bool {
	switch code {
	case CodeQueueFull, CodeDraining, CodeTimeout, CodeNotReady:
		return true
	}
	return false
}

// PredictRequest is the wire form of POST /v1/predict. Exactly one of Latent
// (a flattened tensor matching the server's latent shape), LatentInt8 (the
// same tensor quantized to int8 — base64 on the wire — dequantized
// server-side as float32(q)*Scale) or Image (a flattened [3,R,R] frame; only
// with a configured backbone) must be set. User selects the per-user learner
// on a fleet server (required there, rejected on a single-learner server).
type PredictRequest struct {
	User       string    `json:"user,omitempty"`
	Latent     []float32 `json:"latent,omitempty"`
	LatentInt8 []byte    `json:"latent_int8,omitempty"`
	Scale      float32   `json:"scale,omitempty"`
	Image      []float32 `json:"image,omitempty"`
}

// PredictResponse is the wire form of a classified request.
type PredictResponse struct {
	// Class is the predicted class index.
	Class int `json:"class"`
}

// ObserveSample is one labelled latent (or image) inside an observe batch.
// LatentInt8 carries the latent quantized to int8 (base64 on the wire) with
// its symmetric per-tensor Scale; exactly one of the three payloads is set.
type ObserveSample struct {
	Latent     []float32 `json:"latent,omitempty"`
	LatentInt8 []byte    `json:"latent_int8,omitempty"`
	Scale      float32   `json:"scale,omitempty"`
	Image      []float32 `json:"image,omitempty"`
	Label      int       `json:"label"`
}

// ObserveRequest is the wire form of POST /v1/observe: one stream mini-batch.
type ObserveRequest struct {
	// User selects the per-user learner on a fleet server (required there,
	// rejected on a single-learner server). Each user's observe stream is
	// numbered independently.
	User    string          `json:"user,omitempty"`
	Samples []ObserveSample `json:"samples"`
	// Domain tags the batch's acquisition condition (optional).
	Domain int `json:"domain,omitempty"`
}

// ObserveResponse acknowledges an applied batch.
type ObserveResponse struct {
	// Batch is the stream index the server assigned — the client's position
	// in the total observe order, usable to resume after a drain.
	Batch int `json:"batch"`
	// SamplesTotal is the cumulative sample count after this batch.
	SamplesTotal int `json:"samples_total"`
}

// Server roles reported in Stats.Role.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// ReplicationStats is the replication section of /v1/stats, present whenever
// the server keeps a durable observe log. On a standby, Cursor is the log
// position it has applied and LagBatches is how far behind the primary it
// was at the last sync; on a primary, Cursor is the log end and LagBatches
// is how far behind the most recent follower pull is.
type ReplicationStats struct {
	// Cursor is the next log sequence number this server would write (the
	// exclusive end of its durable observe log).
	Cursor uint64 `json:"cursor"`
	// LagBatches is the replication lag in observe batches (0 = in sync).
	LagBatches int64 `json:"lag_batches"`
	// LastSyncUnix is the Unix time (seconds) of the last successful sync —
	// the standby's last applied pull, or the primary's last served pull.
	// 0 means no sync has happened yet.
	LastSyncUnix float64 `json:"last_sync_unix"`
}

// Stats is the wire form of GET /v1/stats. LatentShape and Classes let load
// generators self-configure without out-of-band knowledge; Role and
// Replication let a failover client assert the server's state without any.
type Stats struct {
	Method          string  `json:"method"`
	LatentShape     []int   `json:"latent_shape"`
	Classes         int     `json:"classes"`
	AcceptsImages   bool    `json:"accepts_images"`
	Batches         int     `json:"batches_observed"`
	Samples         int     `json:"samples_observed"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	PredictRequests int64   `json:"predict_requests"`
	ObserveRequests int64   `json:"observe_requests"`
	PredictShed     int64   `json:"predict_shed"`
	ObserveShed     int64   `json:"observe_shed"`
	QueuePredict    int     `json:"queue_predict"`
	QueueObserve    int     `json:"queue_observe"`
	Draining        bool    `json:"draining"`
	// Role is "primary" for a serving instance and "standby" for a warm
	// standby that has not been promoted yet.
	Role string `json:"role"`
	// Replication carries the observe-log/replication counters when the
	// server keeps a durable observe log (nil otherwise).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Fleet carries the multi-tenant counters when the server fronts a
	// learner fleet (nil on single-learner servers). Load generators use it
	// to decide whether to tag requests with user ids.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// FleetStats is the multi-tenant section of /v1/stats (internal/fleet's
// Stats type is an alias of this, so the engine and the wire agree by
// construction).
type FleetStats struct {
	Shards     int   `json:"shards"`
	HotSet     int   `json:"hot_set"`
	UsersKnown int64 `json:"users_known"`
	Resident   int64 `json:"resident_learners"`
	Evictions  int64 `json:"evictions_total"`
	FaultIns   int64 `json:"fault_ins_total"`
	Batches    int64 `json:"batches_observed"`
	Samples    int64 `json:"samples_observed"`
}
