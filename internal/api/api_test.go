package api

import (
	"encoding/json"
	"testing"
)

// TestErrorEnvelopeWireShape pins the JSON error contract clients parse:
// {"error": <human message>, "code": <machine code>}.
func TestErrorEnvelopeWireShape(t *testing.T) {
	b, err := json.Marshal(&Error{Code: CodeQueueFull, Message: "observe queue full"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["code"] != "queue_full" || m["error"] != "observe queue full" {
		t.Fatalf("envelope = %s", b)
	}
	var e Error
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeQueueFull || e.Error() != "observe queue full (queue_full)" {
		t.Fatalf("round trip: %+v", e)
	}
}

// TestRetryable pins which codes a well-behaved client retries: transient
// server conditions yes, caller bugs and hard faults no.
func TestRetryable(t *testing.T) {
	retry := []string{CodeQueueFull, CodeDraining, CodeTimeout, CodeNotReady}
	for _, c := range retry {
		if !Retryable(c) {
			t.Errorf("Retryable(%q) = false, want true", c)
		}
	}
	terminal := []string{CodeBadRequest, CodeTooManyUsers, CodeInternal, "", "unknown_code"}
	for _, c := range terminal {
		if Retryable(c) {
			t.Errorf("Retryable(%q) = true, want false", c)
		}
	}
}

// TestStatsOmitsEmptySections keeps /v1/stats quiet in the common case: no
// fleet, no replication, no role noise unless the server sets them.
func TestStatsOmitsEmptySections(t *testing.T) {
	b, err := json.Marshal(Stats{Method: "chameleon", Classes: 10, Role: RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"fleet", "replication"} {
		if _, ok := m[absent]; ok {
			t.Errorf("empty Stats marshals %q section: %s", absent, b)
		}
	}
	if m["role"] != "primary" {
		t.Errorf("role = %v", m["role"])
	}
}

// TestLogRecordWireShape pins the replication wire names the follower and the
// failover smoke's curl checks rely on.
func TestLogRecordWireShape(t *testing.T) {
	rec := LogRecord{Seq: 7, Batch: 7, Samples: []LogSample{{Latent: []float32{1, 2}, Label: 3}}}
	b, err := json.Marshal(LogResponse{Records: []LogRecord{rec}, Next: 8, End: 9, Final: true})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"records", "next", "end", "final"} {
		if _, ok := m[key]; !ok {
			t.Errorf("LogResponse lacks %q: %s", key, b)
		}
	}
}
