package api

// Replication protocol types: the wire forms of GET /v1/replication/snapshot,
// GET /v1/replication/log and GET /v1/replication/verify. A warm standby
// bootstraps from one SnapshotResponse and then tails the primary's observe
// log with cursor-based LogResponse pulls; the pair (snapshot, log suffix)
// reconstructs the primary's learner state exactly (DESIGN.md §18).

// SnapshotResponse is one consistent learner snapshot anchored to a log
// position: restoring Learner and then replaying every log record with
// sequence number >= Cursor reproduces the primary's live state.
type SnapshotResponse struct {
	// Method names the learner family; a standby refuses a snapshot from a
	// different method.
	Method string `json:"method"`
	// Batches and Samples are the stream position the snapshot captures.
	Batches int `json:"batches"`
	Samples int `json:"samples"`
	// Cursor is the log sequence number the snapshot is consistent with:
	// the first record NOT reflected in Learner.
	Cursor uint64 `json:"cursor"`
	// Learner is the method's opaque cl.Snapshotter payload (base64 on the
	// wire).
	Learner []byte `json:"learner"`
}

// LogSample is one labelled latent inside a replicated observe batch. The
// log always stores fp32: quantized wire payloads are dequantized at the
// handler boundary, before the record is written.
type LogSample struct {
	Latent []float32 `json:"latent"`
	Label  int       `json:"label"`
}

// LogRecord is one durably logged observe batch. Seq is the global append
// order; Batch is the per-learner (per-user, on a fleet) stream index the
// engine assigned.
type LogRecord struct {
	Seq     uint64      `json:"seq"`
	User    string      `json:"user,omitempty"`
	Batch   int         `json:"batch"`
	Domain  int         `json:"domain,omitempty"`
	Samples []LogSample `json:"samples"`
}

// LogResponse is one cursor-based page of the observe log. The client passes
// Next as the after-cursor of its next pull; when Records is empty Next
// equals the requested cursor and End tells the client how far behind it is.
type LogResponse struct {
	Records []LogRecord `json:"records"`
	// Next is the cursor to resume from (sequence number after the last
	// returned record).
	Next uint64 `json:"next"`
	// End is the log's current exclusive end (the next sequence number the
	// primary will write).
	End uint64 `json:"end"`
	// Final reports that the primary has drained: End is the log's final
	// extent and no further records will ever be written. A caught-up
	// standby may promote itself.
	Final bool `json:"final"`
}

// VerifyResponse is the wire form of GET /v1/replication/verify: the server
// reconstructed a fresh learner from its base snapshot plus its own durable
// log and compared it against the live learner.
type VerifyResponse struct {
	// Equal reports whether the reconstruction matches the live state.
	Equal bool `json:"equal"`
	// Batches is the live stream position at comparison time.
	Batches int `json:"batches"`
	// Cursor is the log end the comparison covered.
	Cursor uint64 `json:"cursor"`
	// Replayed is how many log records the reconstruction applied.
	Replayed int `json:"replayed"`
}
