package hw_test

import (
	"fmt"

	"chameleon/internal/hw"
)

// The FPGA resource model derives the paper's Table III from the accelerator
// configuration.
func ExampleFPGA_Resources() {
	r := hw.ZCU102().Resources()
	fmt.Printf("DSP  %d/%d (%.2f%%)\n", r.DSPUsed, r.DSPAvail, hw.Percent(r.DSPUsed, r.DSPAvail))
	fmt.Printf("BRAM %d/%d (%.2f%%)\n", r.BRAMUsed, r.BRAMAvail, hw.Percent(r.BRAMUsed, r.BRAMAvail))
	fmt.Printf("LUT  %d/%d (%.2f%%)\n", r.LUTUsed, r.LUTAvail, hw.Percent(r.LUTUsed, r.LUTAvail))
	// Output:
	// DSP  1164/2520 (46.19%)
	// BRAM 632/656 (96.34%)
	// LUT  169428/233707 (72.50%)
}

// Profiles summarise one online training step; platforms price them.
func ExampleProfiler() {
	profiler := hw.PaperProfiler()
	p, _ := profiler.Profile("chameleon")
	fmt.Printf("on-chip replay: %d KiB/step\n", p.OnChipBytes/1024)
	fmt.Printf("off-chip replay: %d KiB/step (amortised by h)\n", p.OffChipBytes/1024)
	// Output:
	// on-chip replay: 160 KiB/step
	// off-chip replay: 17 KiB/step (amortised by h)
}
