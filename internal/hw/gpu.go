package hw

// GPU is a roofline model of an embedded GPU (Jetson Nano class): latency is
// the max of compute time at an effective training throughput and memory
// time at an effective bandwidth, plus a fixed per-image kernel-launch
// overhead; poorly-parallel serial ops (SLDA's pseudo-inverse) run at their
// own much lower rate. Energy is average board power × latency, which is how
// the paper measures it.
type GPU struct {
	// EffMACsPerSec is the achieved training throughput for small-batch
	// MobileNet kernels. Jetson Nano peaks at 236 GMAC/s fp16; small-batch
	// online training achieves a fraction of it.
	EffMACsPerSec float64
	// MemBytesPerSec is effective DRAM bandwidth for replay traffic.
	MemBytesPerSec float64
	// SerialOpsPerSec is the throughput of dependency-bound scalar work.
	SerialOpsPerSec float64
	// OverheadSec is fixed per-image launch/sync overhead.
	OverheadSec float64
	// AvgPowerW is the measured average board power under load.
	AvgPowerW float64
}

// JetsonNano returns the calibrated Jetson Nano model (10 W mode).
func JetsonNano() *GPU {
	return &GPU{
		EffMACsPerSec:   59e9,
		MemBytesPerSec:  4e9,
		SerialOpsPerSec: 2.2e9,
		OverheadSec:     5e-3,
		AvgPowerW:       9.5,
	}
}

// Name implements Platform.
func (g *GPU) Name() string { return "jetson-nano" }

// Step implements Platform.
func (g *GPU) Step(p StepProfile) Cost {
	compute := float64(p.TotalMACs()) / g.EffMACsPerSec
	data := float64(p.OffChipBytes+p.WeightBytes) / g.MemBytesPerSec
	serial := float64(p.SerialOps) / g.SerialOpsPerSec
	// Compute and data overlap on the GPU (unified memory prefetch); serial
	// work does not.
	lat := maxF(compute, data) + serial + g.OverheadSec
	total := compute + data + serial
	if total <= 0 {
		total = 1
	}
	return Cost{
		LatencySec:  lat,
		EnergyJ:     lat * g.AvgPowerW,
		ComputeFrac: compute / total,
		DataFrac:    data / total,
		SerialFrac:  serial / total,
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
