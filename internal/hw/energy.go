// Package hw models the three deployment targets of the paper's Table II —
// NVIDIA Jetson Nano (GPU roofline), a ZCU102 FPGA training accelerator
// (DSP-array + AXI DRAM path, Table III resources), and an EdgeTPU-class
// systolic array (uSystolic-style cycle model) — and prices one online
// training step of each continual-learning method on each platform.
//
// The models are analytic: a method is summarised as a StepProfile (MACs,
// on-/off-chip replay traffic, serial ops), and each platform converts a
// profile into latency and energy. Absolute numbers are calibrated against
// the paper's reported magnitudes; the *mechanisms* — Latent Replay paying
// DRAM round-trips for every replay latent, SLDA paying an O(d³) inversion
// per image, Chameleon keeping its short-term store on-chip — are structural.
package hw

// EnergyTable holds per-operation energy costs in joules, following the
// 45 nm process table of Horowitz (ISSCC 2014) that the paper cites.
type EnergyTable struct {
	// MACfp16 and MACfp32 are multiply-accumulate energies.
	MACfp16, MACfp32 float64
	// SRAMPerByte is the on-chip SRAM/BRAM access energy per byte
	// (≈10 pJ per 32-bit word for a 32 KB array).
	SRAMPerByte float64
	// DRAMPerByte is the off-chip LPDDR access energy per byte
	// (≈1.3–2.6 nJ per 32-bit word; 0.5 nJ/B is the mid-point).
	DRAMPerByte float64
}

// Horowitz45nm is the canonical energy table.
var Horowitz45nm = EnergyTable{
	MACfp16:     1.5e-12, // 1.1 pJ mult + 0.4 pJ add
	MACfp32:     4.6e-12, // 3.7 pJ mult + 0.9 pJ add
	SRAMPerByte: 2.5e-12,
	DRAMPerByte: 5.0e-10,
}

// StepProfile summarises the per-image cost of one online training step of a
// continual-learning method, counted at paper scale by internal/hw/profiles.
type StepProfile struct {
	// Method is the profile's method name.
	Method string
	// FwdMACs covers all inference-direction MACs of the step: the incoming
	// sample's full forward pass plus forward passes over replayed samples
	// through the trainable section.
	FwdMACs int64
	// BwdMACs covers gradient computation (≈2× the trainable forward MACs:
	// input gradients + weight gradients).
	BwdMACs int64
	// OnChipBytes is replay/working traffic served by SRAM/BRAM.
	OnChipBytes int64
	// OffChipBytes is replay traffic that must cross to DRAM (loads+stores).
	OffChipBytes int64
	// SerialOps counts poorly-parallelisable scalar operations (SLDA's
	// Gauss-Jordan pseudo-inverse), which no PE array accelerates.
	SerialOps int64
	// WeightBytes is streaming weight traffic per step for platforms that
	// cannot hold all weights on chip.
	WeightBytes int64
	// FrozenPasses and TrainPasses record how many forward passes the step
	// makes through the frozen extractor and how many forward-equivalent
	// passes (forward + 2× for backward) through the trainable section.
	// Cycle-accurate platforms (the systolic model) price passes directly;
	// roofline platforms use the MAC counts.
	FrozenPasses, TrainPasses float64
}

// TotalMACs returns forward plus backward MACs.
func (p StepProfile) TotalMACs() int64 { return p.FwdMACs + p.BwdMACs }

// Cost is a platform's verdict on one step.
type Cost struct {
	// LatencySec is the per-image step latency in seconds.
	LatencySec float64
	// EnergyJ is the per-image energy in joules.
	EnergyJ float64
	// Breakdown attributes latency to compute / data movement / serial parts
	// (fractions summing to ~1).
	ComputeFrac, DataFrac, SerialFrac float64
}

// Platform prices a step profile.
type Platform interface {
	// Name identifies the platform ("jetson-nano", "zcu102", "edgetpu").
	Name() string
	// Step prices one online training step.
	Step(p StepProfile) Cost
}
