package hw

import "fmt"

// FPGA models the paper's ZCU102 training accelerator: a DSP-based fp16 MAC
// array at 150 MHz fed by BRAM, with replay traffic crossing a narrow AXI
// path to DRAM. The replay path's effective throughput is deliberately low —
// the paper's own measurements (Latent Replay spending >40% of a 2.8 s step
// moving ten latents) imply single-beat, handshake-dominated AXI transfers,
// which is typical of unoptimised HLS designs; see EXPERIMENTS.md for the
// back-calculation.
type FPGA struct {
	// ClockHz is the achieved clock (paper: 150 MHz).
	ClockHz float64
	// MACsPerCycle is the effective sustained MAC rate of the array,
	// including stalls for weight fetch (paper's design is memory bound).
	MACsPerCycle float64
	// ReplayBytesPerSec is the effective DRAM replay-path throughput.
	ReplayBytesPerSec float64
	// SerialOpsPerSec prices scalar ops on the embedded ARM core.
	SerialOpsPerSec float64
	// StaticPowerW is the board power draw; energy ≈ power × latency plus
	// the switched energy of MACs and memory traffic.
	StaticPowerW float64
	// Energy is the per-op energy table.
	Energy EnergyTable

	// Resource model inputs (Table III): the PE array geometry and buffer
	// allocation the utilization report derives from.
	PERows, PECols int
	BufferKB       int
}

// ZCU102 returns the calibrated ZCU102 accelerator model.
func ZCU102() *FPGA {
	return &FPGA{
		ClockHz:           150e6,
		MACsPerCycle:      65,
		ReplayBytesPerSec: 0.30e6,
		SerialOpsPerSec:   0.5e9,
		StaticPowerW:      3.0,
		Energy:            Horowitz45nm,
		PERows:            24, PECols: 24,
		BufferKB: 2844, // 632 BRAM36 ≈ 2.78 MiB
	}
}

// Name implements Platform.
func (f *FPGA) Name() string { return "zcu102" }

// Step implements Platform.
func (f *FPGA) Step(p StepProfile) Cost {
	compute := float64(p.TotalMACs()) / (f.MACsPerCycle * f.ClockHz)
	data := float64(p.OffChipBytes) / f.ReplayBytesPerSec
	serial := float64(p.SerialOps) / f.SerialOpsPerSec
	// The HLS pipeline serialises replay DMA and compute phases.
	lat := compute + data + serial
	energy := lat*f.StaticPowerW +
		float64(p.TotalMACs())*f.Energy.MACfp16 +
		float64(p.OnChipBytes)*f.Energy.SRAMPerByte +
		float64(p.OffChipBytes)*f.Energy.DRAMPerByte
	total := compute + data + serial
	if total <= 0 {
		total = 1
	}
	return Cost{
		LatencySec:  lat,
		EnergyJ:     energy,
		ComputeFrac: compute / total,
		DataFrac:    data / total,
		SerialFrac:  serial / total,
	}
}

// ResourceReport is the Table III utilization summary.
type ResourceReport struct {
	DSPUsed, DSPAvail   int
	BRAMUsed, BRAMAvail int
	LUTUsed, LUTAvail   int
}

// ZCU102 available resources (XCZU9EG as reported in the paper).
const (
	zcu102DSP  = 2520
	zcu102BRAM = 656
	zcu102LUT  = 233707
)

// Resources derives the accelerator's resource utilization from its
// configuration, reproducing Table III:
//
//   - each fp16 MAC PE consumes 2 DSP48E2 slices (multiplier + accumulate),
//     plus a DSP-based post-processing column (scaling/rounding);
//   - BRAM covers the on-chip buffers (36 Kb blocks);
//   - LUTs cover per-PE operand routing/control plus the AXI/DMA and
//     scheduling fabric.
func (f *FPGA) Resources() ResourceReport {
	pes := f.PERows * f.PECols
	dsp := 2*pes + f.PECols/2 // 24×24 array ⇒ 1164
	bram := (f.BufferKB*1024*8 + 36*1024 - 1) / (36 * 1024)
	lut := pes*250 + 25428 // datapath + control/DMA fabric ⇒ 169,428
	return ResourceReport{
		DSPUsed: dsp, DSPAvail: zcu102DSP,
		BRAMUsed: int(bram), BRAMAvail: zcu102BRAM,
		LUTUsed: lut, LUTAvail: zcu102LUT,
	}
}

// Percent returns used/avail as a percentage.
func Percent(used, avail int) float64 { return 100 * float64(used) / float64(avail) }

// String renders the report.
func (r ResourceReport) String() string {
	return fmt.Sprintf("DSP %d/%d (%.2f%%)  BRAM %d/%d (%.2f%%)  LUT %d/%d (%.2f%%)",
		r.DSPUsed, r.DSPAvail, Percent(r.DSPUsed, r.DSPAvail),
		r.BRAMUsed, r.BRAMAvail, Percent(r.BRAMUsed, r.BRAMAvail),
		r.LUTUsed, r.LUTAvail, Percent(r.LUTUsed, r.LUTAvail))
}
