package hw

import (
	"fmt"

	"chameleon/internal/mobilenet"
)

// FitReport answers the question the paper's dual-buffer design hinges on:
// given an accelerator's on-chip memory, the streaming working set, and a
// replay buffer, does the buffer fit on-chip? On the ZCU102, Chameleon's
// 10-latent short-term store fits in the BRAM left over after the tiled
// weight/activation buffers; a unified replay buffer at useful sizes (100+
// latents) does not and must live in DRAM (paper §IV-C).
type FitReport struct {
	// CapacityBytes is the accelerator's on-chip memory.
	CapacityBytes int64
	// WeightBytes is the resident weight working set: a double-buffered
	// PE-array tile (the paper's accelerator streams weights from DRAM for
	// both methods, so full weights are never resident).
	WeightBytes int64
	// ActivationBytes is the activation working set: double-buffered row
	// tiles of the widest layer (input + output rows).
	ActivationBytes int64
	// BufferBytes is the replay buffer being placed.
	BufferBytes int64
	// FreeBytes is what remains for the buffer after weights + activations.
	FreeBytes int64
	// Fits reports whether the buffer fits in FreeBytes.
	Fits bool
}

// String renders the verdict.
func (r FitReport) String() string {
	verdict := "FITS on-chip"
	if !r.Fits {
		verdict = "does NOT fit on-chip"
	}
	return fmt.Sprintf("capacity %.2f MiB − weights %.2f MiB − activations %.2f MiB = %.2f MiB free; buffer %.2f MiB %s",
		mib(r.CapacityBytes), mib(r.WeightBytes), mib(r.ActivationBytes), mib(r.FreeBytes), mib(r.BufferBytes), verdict)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

// OnChipFit places a replay buffer of bufferBytes on an accelerator with
// onChipBytes of memory, next to the streaming working set (double-buffered
// weight tiles and activation row tiles) at the given datatype width. The
// paper's accelerator streams weights and activations for both methods
// ("the cost of compute and data movement for weights remains the same"), so
// only the tiles are resident — the free space is what a replay buffer can
// claim.
func OnChipFit(cfg mobilenet.Config, onChipBytes, bufferBytes, bytesPerScalar int64) FitReport {
	if bytesPerScalar <= 0 {
		bytesPerScalar = 2
	}
	inv := mobilenet.Inventory(cfg)
	// Weight tile: the largest single layer's weights, split into PE-array
	// column tiles and double buffered; bounded below by one full tile row.
	var maxLayerWeights, peakRowActs int64
	for _, l := range inv {
		if l.Weights > maxLayerWeights {
			maxLayerWeights = l.Weights
		}
		rows := int64(l.InC)*int64(l.InW) + int64(l.OutC)*int64(l.OutW)
		if rows > peakRowActs {
			peakRowActs = rows
		}
	}
	const colTiles = 16 // weight matrix split into 16 streamed column tiles
	r := FitReport{
		CapacityBytes:   onChipBytes,
		WeightBytes:     2 * maxLayerWeights / colTiles * bytesPerScalar,
		ActivationBytes: 2 * peakRowActs * bytesPerScalar,
		BufferBytes:     bufferBytes,
	}
	r.FreeBytes = r.CapacityBytes - r.WeightBytes - r.ActivationBytes
	if r.FreeBytes < 0 {
		r.FreeBytes = 0
	}
	r.Fits = r.BufferBytes <= r.FreeBytes
	return r
}

// ZCU102Fit evaluates buffer placement on the paper's FPGA accelerator
// (632 BRAM36 of on-chip buffering, fp16 datapath, 128×128 backbone).
func ZCU102Fit(bufferBytes int64) FitReport {
	cfg := paperHWConfig()
	f := ZCU102()
	onChip := int64(f.BufferKB) * 1024
	return OnChipFit(cfg, onChip, bufferBytes, 2)
}
