package hw

import (
	"fmt"

	"chameleon/internal/mobilenet"
)

// ProfileParams describe the training regime the paper deploys: batch size
// one with R replay elements per incoming input, long-term access period h.
type ProfileParams struct {
	// Replay is R, the replay elements trained per incoming sample (10).
	Replay int
	// AccessRate is Chameleon's h (10): the long-term store is read and
	// written every h inputs, so its DRAM traffic amortises by 1/h.
	AccessRate int
	// BytesPerScalar is the deployment datatype width (2 for fp16).
	BytesPerScalar int64
}

// DefaultProfileParams matches the paper's FPGA experiment (batch 1, ten
// replay elements, h = 10, fp16).
func DefaultProfileParams() ProfileParams {
	return ProfileParams{Replay: 10, AccessRate: 10, BytesPerScalar: 2}
}

// Profiler derives per-method step profiles from a backbone inventory.
type Profiler struct {
	cfg    mobilenet.Config
	sum    mobilenet.InventorySummary
	params ProfileParams
}

// NewProfiler builds a profiler for the given backbone at the given regime.
func NewProfiler(cfg mobilenet.Config, params ProfileParams) *Profiler {
	if params.Replay <= 0 {
		params.Replay = 10
	}
	if params.AccessRate <= 0 {
		params.AccessRate = 10
	}
	if params.BytesPerScalar <= 0 {
		params.BytesPerScalar = 2
	}
	inv := mobilenet.Inventory(cfg)
	return &Profiler{cfg: cfg, sum: mobilenet.Summarize(cfg, inv), params: params}
}

// PaperProfiler prices the paper-scale backbone (MobileNetV1-1.0, latent
// layer 21, 50 classes) under the paper's training regime.
func PaperProfiler() *Profiler {
	return NewProfiler(mobilenet.PaperConfig(50), DefaultProfileParams())
}

// LatentBytes is the per-sample latent payload at the deployment datatype.
func (pr *Profiler) LatentBytes() int64 {
	return pr.sum.LatentScalars * pr.params.BytesPerScalar
}

// trainStepMACs returns the MACs of one forward (and optionally backward)
// pass through the trainable section for n samples.
func (pr *Profiler) trainMACs(n int64) (fwd, bwd int64) {
	fwd = n * pr.sum.TrainMACs
	// Backward ≈ 2× forward (activation gradients + weight gradients).
	bwd = 2 * fwd
	return fwd, bwd
}

// Profile derives a method's step profile. Supported methods: "chameleon",
// "latent", "slda", "er", "der", "finetune".
func (pr *Profiler) Profile(method string) (StepProfile, error) {
	R := int64(pr.params.Replay)
	h := int64(pr.params.AccessRate)
	latent := pr.LatentBytes()
	p := StepProfile{Method: method}
	// Every method runs the incoming sample through the frozen extractor
	// once and through the trainable section once.
	p.FwdMACs = pr.sum.FrozenMACs + pr.sum.TrainMACs

	p.FrozenPasses = 1
	switch method {
	case "finetune":
		_, bwd := pr.trainMACs(1)
		p.BwdMACs = bwd
		p.TrainPasses = 3 // fwd + 2×bwd on the incoming sample

	case "chameleon":
		// Trains on the incoming sample + R short-term latents every step,
		// plus R long-term latents every h steps (amortised).
		fwd, bwd := pr.trainMACs(R)
		fwdLT, bwdLT := pr.trainMACs(R)
		p.FwdMACs += fwd + fwdLT/h
		_, bwdSelf := pr.trainMACs(1)
		p.BwdMACs = bwdSelf + bwd + bwdLT/h
		// Short-term store is swept from on-chip SRAM; long-term reads and
		// the one promoted write amortise over h steps.
		p.OnChipBytes = R * latent
		p.OffChipBytes = (R*latent + latent) / h
		p.TrainPasses = 3 * (1 + float64(R) + float64(R)/float64(h))

	case "latent":
		// Same training compute as Chameleon's steady state, but every
		// replay latent is loaded from the off-chip unified buffer and the
		// newly admitted latent is stored back.
		fwd, bwd := pr.trainMACs(R)
		p.FwdMACs += fwd
		_, bwdSelf := pr.trainMACs(1)
		p.BwdMACs = bwdSelf + bwd
		p.OffChipBytes = R*latent + latent
		p.TrainPasses = 3 * (1 + float64(R))

	case "er", "der":
		// Raw-image replay: each replayed sample must additionally re-run
		// the frozen extractor, and raw frames stream from DRAM.
		fwd, bwd := pr.trainMACs(R)
		p.FwdMACs += fwd + R*pr.sum.FrozenMACs
		_, bwdSelf := pr.trainMACs(1)
		p.BwdMACs = bwdSelf + bwd
		p.FrozenPasses = 1 + float64(R)
		p.TrainPasses = 3 * (1 + float64(R))
		raw := int64(128*128*3) * 1 // stored uint8 frames
		p.OffChipBytes = R*raw + raw
		if method == "der" {
			p.OffChipBytes += (R + 1) * int64(pr.cfg.NumClasses) * pr.params.BytesPerScalar
		}

	case "slda":
		// No replay, no backward: the frozen network runs forward, then the
		// streaming covariance update (d² MACs) and the pseudo-inverse
		// (≈d³ serial scalar ops, the Table II bottleneck) run per image.
		d := pr.pooledDim()
		p.FwdMACs = pr.sum.FrozenMACs + pr.sum.TrainMACs
		p.BwdMACs = 0
		p.FwdMACs += d * d // covariance rank-1 update
		p.SerialOps = d * d * d
		p.TrainPasses = 1                                     // forward only through the trainable section
		p.OffChipBytes = d * d * pr.params.BytesPerScalar / 4 // covariance working-set spill

	default:
		return StepProfile{}, fmt.Errorf("hw: no profile for method %q", method)
	}
	return p, nil
}

// pooledDim is SLDA's feature dimension: the channel width at the latent
// layer after global average pooling.
func (pr *Profiler) pooledDim() int64 {
	inv := mobilenet.Inventory(pr.cfg)
	for _, l := range inv {
		if l.Index == pr.cfg.LatentLayer {
			return int64(l.OutC)
		}
	}
	return int64(pr.sum.LatentScalars)
}
