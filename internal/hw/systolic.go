package hw

import (
	"chameleon/internal/mobilenet"
)

// Systolic is a uSystolic-style cycle model of an EdgeTPU-class accelerator:
// a weight-stationary PE array whose GEMM latency is computed by tiling, with
// block-floating-point operands. Depthwise layers map poorly onto the array
// (one output channel per GEMM), which the tiling model captures naturally.
type Systolic struct {
	// Rows, Cols is the PE array geometry (paper: 64×64).
	Rows, Cols int
	// ClockHz is the array clock (paper: 400 MHz).
	ClockHz float64
	// OnChipBytes is the unified buffer (paper: 8 MB).
	OnChipBytes int64
	// DRAMBytesPerSec is off-chip bandwidth for spills and replay traffic.
	DRAMBytesPerSec float64
	// SerialOpsPerSec prices scalar work the array cannot map (SLDA's
	// pseudo-inverse runs on the host core).
	SerialOpsPerSec float64
	// AvgPowerW approximates board power for the energy estimate.
	AvgPowerW float64

	cfg mobilenet.Config
}

// EdgeTPU returns the calibrated 64×64 @ 400 MHz configuration used in the
// paper's Table II, costing the paper-scale backbone.
func EdgeTPU() *Systolic {
	return &Systolic{
		Rows: 64, Cols: 64,
		ClockHz:         400e6,
		OnChipBytes:     8 << 20,
		DRAMBytesPerSec: 4e9,
		SerialOpsPerSec: 0.25e9,
		AvgPowerW:       2.0,
		cfg:             paperHWConfig(),
	}
}

// paperHWConfig is the backbone the hardware tables cost: MobileNetV1-1.0 at
// the datasets' native 128×128 camera resolution.
func paperHWConfig() mobilenet.Config {
	cfg := mobilenet.PaperConfig(50)
	cfg.Resolution = 128
	return cfg
}

// Name implements Platform.
func (s *Systolic) Name() string { return "edgetpu" }

// GEMMCycles returns the weight-stationary cycle count of an M×K×N GEMM:
// the array holds a K×N weight tile (loaded column-wise), streams M rows
// through, and pays fill+drain each tile.
func (s *Systolic) GEMMCycles(m, k, n int64) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	tilesK := (k + int64(s.Rows) - 1) / int64(s.Rows)
	tilesN := (n + int64(s.Cols) - 1) / int64(s.Cols)
	perTile := int64(s.Rows) /*weight load*/ + m + int64(s.Rows+s.Cols) /*fill+drain*/
	return tilesK * tilesN * perTile
}

// LayerCycles maps one conv layer onto the array.
func (s *Systolic) LayerCycles(l mobilenet.LayerInfo) int64 {
	m := int64(l.OutH) * int64(l.OutW)
	switch l.Kind {
	case mobilenet.KindDepthwise:
		// One tiny GEMM per channel: M=OH·OW, K=k², N=1.
		return int64(l.InC) * s.GEMMCycles(m, int64(l.Kernel*l.Kernel), 1)
	case mobilenet.KindDense:
		return s.GEMMCycles(1, int64(l.InC), int64(l.OutC))
	default:
		return s.GEMMCycles(m, int64(l.InC)*int64(l.Kernel*l.Kernel), int64(l.OutC))
	}
}

// NetworkCycles returns forward cycles through the frozen and trainable
// sections separately.
func (s *Systolic) NetworkCycles() (frozen, trainable int64) {
	for _, l := range mobilenet.Inventory(s.cfg) {
		c := s.LayerCycles(l)
		if l.Frozen {
			frozen += c
		} else {
			trainable += c
		}
	}
	return frozen, trainable
}

// Step implements Platform: the profile's pass counts drive the per-layer
// tiling cycle model.
func (s *Systolic) Step(p StepProfile) Cost {
	frozen, trainable := s.NetworkCycles()
	frozenPasses := p.FrozenPasses
	if frozenPasses < 1 {
		frozenPasses = 1
	}
	cycles := float64(frozen)*frozenPasses + float64(trainable)*p.TrainPasses
	compute := cycles / s.ClockHz
	data := float64(p.OffChipBytes) / s.DRAMBytesPerSec
	serial := float64(p.SerialOps) / s.SerialOpsPerSec
	lat := compute + data + serial
	total := compute + data + serial
	if total <= 0 {
		total = 1
	}
	return Cost{
		LatencySec:  lat,
		EnergyJ:     lat * s.AvgPowerW,
		ComputeFrac: compute / total,
		DataFrac:    data / total,
		SerialFrac:  serial / total,
	}
}
