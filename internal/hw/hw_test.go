package hw

import (
	"math"
	"testing"

	"chameleon/internal/mobilenet"
)

func paperCfg() mobilenet.Config {
	cfg := mobilenet.PaperConfig(50)
	cfg.Resolution = 128
	return cfg
}

func profileFor(t *testing.T, method string, replay int) StepProfile {
	t.Helper()
	pr := NewProfiler(paperCfg(), ProfileParams{Replay: replay, AccessRate: 10, BytesPerScalar: 2})
	p, err := pr.Profile(method)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*want
}

func TestProfileUnknownMethod(t *testing.T) {
	pr := PaperProfiler()
	if _, err := pr.Profile("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestProfileStructure(t *testing.T) {
	cham := profileFor(t, "chameleon", 10)
	lat := profileFor(t, "latent", 10)
	slda := profileFor(t, "slda", 10)
	ft := profileFor(t, "finetune", 10)
	er := profileFor(t, "er", 10)

	// Chameleon's off-chip replay traffic must be ~1/h of Latent Replay's.
	if cham.OffChipBytes*12 < lat.OffChipBytes || cham.OffChipBytes*8 > lat.OffChipBytes {
		t.Fatalf("offchip: chameleon=%d latent=%d, want ≈10× gap", cham.OffChipBytes, lat.OffChipBytes)
	}
	if cham.OnChipBytes == 0 || lat.OnChipBytes != 0 {
		t.Fatal("only chameleon keeps replay traffic on-chip")
	}
	// Training compute of the two latent-replay methods is nearly equal.
	if !within(float64(cham.TotalMACs()), float64(lat.TotalMACs()), 0.15) {
		t.Fatalf("MACs: chameleon=%d latent=%d", cham.TotalMACs(), lat.TotalMACs())
	}
	// SLDA has no backward pass but a big serial term.
	if slda.BwdMACs != 0 || slda.SerialOps == 0 {
		t.Fatalf("slda profile: %+v", slda)
	}
	// SLDA serial term is the d³ inverse with d=512.
	if slda.SerialOps != 512*512*512 {
		t.Fatalf("slda serial ops = %d", slda.SerialOps)
	}
	// Finetune is the cheapest.
	if ft.TotalMACs() >= cham.TotalMACs() {
		t.Fatal("finetune should be cheaper than chameleon")
	}
	// ER re-runs the frozen extractor per replayed frame.
	if er.FrozenPasses != 11 || er.FwdMACs <= lat.FwdMACs {
		t.Fatalf("er frozen passes = %v", er.FrozenPasses)
	}
}

func TestLatentBytesAtPaperScale(t *testing.T) {
	pr := NewProfiler(paperCfg(), DefaultProfileParams())
	// 512×8×8 fp16 = 64 KiB at 128×128 input.
	if pr.LatentBytes() != 64*1024 {
		t.Fatalf("latent bytes = %d", pr.LatentBytes())
	}
}

// TestTableIIJetson checks the calibrated Jetson Nano model against the
// paper's measurements (33/69/115 ms and 0.31/0.68/1.14 J).
func TestTableIIJetson(t *testing.T) {
	gpu := JetsonNano()
	cases := []struct {
		method string
		replay int
		wantMS float64
		wantJ  float64
	}{
		{"chameleon", 10, 33, 0.31},
		{"slda", 10, 69, 0.68},
		{"latent", 50, 115, 1.14}, // reference Latent Replay minibatch
	}
	for _, c := range cases {
		cost := gpu.Step(profileFor(t, c.method, c.replay))
		if !within(cost.LatencySec*1e3, c.wantMS, 0.20) {
			t.Errorf("jetson %s latency = %.1f ms, paper %.0f", c.method, cost.LatencySec*1e3, c.wantMS)
		}
		if !within(cost.EnergyJ, c.wantJ, 0.20) {
			t.Errorf("jetson %s energy = %.2f J, paper %.2f", c.method, cost.EnergyJ, c.wantJ)
		}
	}
}

// TestTableIIFPGA checks the ZCU102 model (413 ms/1.22 J vs 2788 ms/8.62 J;
// the paper's headline is the ~6.75× latency and ~7× energy gap).
func TestTableIIFPGA(t *testing.T) {
	fpga := ZCU102()
	cham := fpga.Step(profileFor(t, "chameleon", 10))
	lat := fpga.Step(profileFor(t, "latent", 10))
	if !within(cham.LatencySec*1e3, 413, 0.20) {
		t.Errorf("fpga chameleon latency = %.0f ms, paper 413", cham.LatencySec*1e3)
	}
	if !within(cham.EnergyJ, 1.22, 0.20) {
		t.Errorf("fpga chameleon energy = %.2f J, paper 1.22", cham.EnergyJ)
	}
	ratio := lat.LatencySec / cham.LatencySec
	if ratio < 4.5 || ratio > 9 {
		t.Errorf("fpga latency ratio = %.2f, paper 6.75", ratio)
	}
	eratio := lat.EnergyJ / cham.EnergyJ
	if eratio < 4.5 || eratio > 9 {
		t.Errorf("fpga energy ratio = %.2f, paper ~7", eratio)
	}
	// Latent Replay must be data-movement dominated.
	if lat.DataFrac < 0.4 {
		t.Errorf("fpga latent data fraction = %.2f, want replay-traffic bound", lat.DataFrac)
	}
}

// TestTableIIEdgeTPU checks the systolic model (47 ms vs 554 ms, ~11.7×).
func TestTableIIEdgeTPU(t *testing.T) {
	tpu := EdgeTPU()
	cham := tpu.Step(profileFor(t, "chameleon", 10))
	slda := tpu.Step(profileFor(t, "slda", 10))
	if !within(cham.LatencySec*1e3, 47, 0.25) {
		t.Errorf("edgetpu chameleon latency = %.1f ms, paper 47", cham.LatencySec*1e3)
	}
	if !within(slda.LatencySec*1e3, 554, 0.25) {
		t.Errorf("edgetpu slda latency = %.1f ms, paper 554", slda.LatencySec*1e3)
	}
	ratio := slda.LatencySec / cham.LatencySec
	if ratio < 8 || ratio > 15 {
		t.Errorf("edgetpu ratio = %.2f, paper 11.7", ratio)
	}
	if slda.SerialFrac < 0.8 {
		t.Errorf("slda on edgetpu should be inversion-bound, serial frac = %.2f", slda.SerialFrac)
	}
}

// TestTableIIIResources checks the FPGA resource report against Table III.
func TestTableIIIResources(t *testing.T) {
	r := ZCU102().Resources()
	if r.DSPUsed != 1164 || r.DSPAvail != 2520 {
		t.Errorf("DSP %d/%d, paper 1164/2520", r.DSPUsed, r.DSPAvail)
	}
	if r.BRAMUsed != 632 || r.BRAMAvail != 656 {
		t.Errorf("BRAM %d/%d, paper 632/656", r.BRAMUsed, r.BRAMAvail)
	}
	if r.LUTUsed != 169428 || r.LUTAvail != 233707 {
		t.Errorf("LUT %d/%d, paper 169428/233707", r.LUTUsed, r.LUTAvail)
	}
	if !within(Percent(r.DSPUsed, r.DSPAvail), 46.19, 0.01) ||
		!within(Percent(r.BRAMUsed, r.BRAMAvail), 96.34, 0.01) ||
		!within(Percent(r.LUTUsed, r.LUTAvail), 72.50, 0.01) {
		t.Errorf("percentages drifted: %s", r)
	}
}

func TestGEMMCycles(t *testing.T) {
	s := EdgeTPU()
	if s.GEMMCycles(0, 1, 1) != 0 {
		t.Fatal("degenerate GEMM should cost 0")
	}
	// One tile: 64 load + M + 128 fill/drain.
	if got := s.GEMMCycles(100, 64, 64); got != 64+100+128 {
		t.Fatalf("single-tile cycles = %d", got)
	}
	// Doubling K doubles the tile count.
	if s.GEMMCycles(100, 128, 64) != 2*s.GEMMCycles(100, 64, 64) {
		t.Fatal("tiling not linear in K tiles")
	}
}

func TestDepthwiseMapsPoorly(t *testing.T) {
	// Depthwise layers must cost far more cycles per MAC than pointwise
	// layers on the systolic array — the uSystolic observation.
	s := EdgeTPU()
	var dwCyclesPerMAC, pwCyclesPerMAC float64
	for _, l := range mobilenet.Inventory(paperCfg()) {
		switch {
		case l.Kind == mobilenet.KindDepthwise && l.Name == "dw6":
			dwCyclesPerMAC = float64(s.LayerCycles(l)) / float64(l.MACs)
		case l.Kind == mobilenet.KindPointwise && l.Name == "pw6":
			pwCyclesPerMAC = float64(s.LayerCycles(l)) / float64(l.MACs)
		}
	}
	if dwCyclesPerMAC <= 5*pwCyclesPerMAC {
		t.Fatalf("dw %.4f vs pw %.4f cycles/MAC; dw should map much worse", dwCyclesPerMAC, pwCyclesPerMAC)
	}
}

func TestCostFractionsSumToOne(t *testing.T) {
	for _, plat := range []Platform{JetsonNano(), ZCU102(), EdgeTPU()} {
		for _, m := range []string{"chameleon", "latent", "slda", "er", "finetune"} {
			c := plat.Step(profileFor(t, m, 10))
			sum := c.ComputeFrac + c.DataFrac + c.SerialFrac
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%s/%s fractions sum to %v", plat.Name(), m, sum)
			}
			if c.LatencySec <= 0 || c.EnergyJ <= 0 {
				t.Errorf("%s/%s non-positive cost", plat.Name(), m)
			}
		}
	}
}

func TestOnChipFitChameleonVsUnified(t *testing.T) {
	// The paper's §IV-C claim: Chameleon's 10-latent short-term store fits in
	// the ZCU102's BRAM next to the training working set; a unified latent
	// buffer at useful sizes (100+ samples) does not.
	latent := int64(64 * 1024) // 512×8×8 fp16 at 128×128 input
	ms := ZCU102Fit(10 * latent)
	if !ms.Fits {
		t.Fatalf("short-term store should fit on-chip: %s", ms)
	}
	unified := ZCU102Fit(100 * latent)
	if unified.Fits {
		t.Fatalf("unified 100-latent buffer should NOT fit on-chip: %s", unified)
	}
	if ms.FreeBytes <= 0 || ms.WeightBytes <= 0 || ms.ActivationBytes <= 0 {
		t.Fatalf("degenerate report: %+v", ms)
	}
}

func TestOnChipFitMonotone(t *testing.T) {
	small := ZCU102Fit(1024)
	big := ZCU102Fit(1 << 30)
	if !small.Fits || big.Fits {
		t.Fatalf("fit not monotone: small=%v big=%v", small.Fits, big.Fits)
	}
	if small.FreeBytes != big.FreeBytes {
		t.Fatal("free bytes should not depend on the buffer")
	}
}
