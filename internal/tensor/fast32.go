package tensor

// Fast-tier float32 kernels. The generic GEMM/GEMV loops accumulate through a
// single serial chain in ascending index order — auditable, and what the
// float64 reference tier runs — but on a scalar core that chain is bound by
// FP-add latency (~4 cycles per element), not by arithmetic throughput or
// memory bandwidth. The float32 tier is the product's hot path, so it trades
// the strict serial order for speed: four independent accumulators retire one
// multiply-add per cycle, and the generic kernel's per-element zero-skip
// branch is dropped (dense weight matrices never take it) or coarsened to a
// per-group skip in the GEMM kernels (ReLU-sparse batched activations still
// benefit without paying a branch per element).
//
// The reassociated sum (s0+s1)+(s2+s3) differs from the serial chain by
// rounding only. This is the fast tier's documented accumulation-order
// caveat (DESIGN.md "Precision tiers"): fp32 results are deterministic
// run-to-run — the unroll pattern is fixed — but are not bit-comparable to a
// strictly-serial evaluation of the same dot product. The float64 reference
// tier keeps the serial kernels precisely so there is an auditable baseline
// to bound the fast tier against.

// dot32 returns the dot product of a and x[:len(a)] with four-way unrolled
// accumulation.
func dot32(a, x []float32) float32 {
	n := len(a)
	x = x[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * x[i]
		s1 += a[i+1] * x[i+1]
		s2 += a[i+2] * x[i+2]
		s3 += a[i+3] * x[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// matvec32 is the fast-tier GEMV row kernel: one unrolled dot product per
// output row.
func matvec32(dst, a, x []float32, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = dot32(a[i*k:(i+1)*k], x)
	}
}

// FusedDenseRow32 is the fast-tier row kernel of the fused dense
// backward+SGD fold: for one output row with gradient g it accumulates the
// input gradient gx[i] += g*w[i] (against the pre-update weights), folds the
// last sample's outer-product term into the accumulated weight gradient,
// applies inverse-batch scaling, weight decay and momentum, steps the weights
// and re-zeroes the gradient — one pass over five streams. The loop-invariant
// conditions (momentum on/off, invScale, weight decay) are hoisted into
// specialised loops; each variant executes exactly the per-element operation
// sequence of the generic fold in internal/nn, so the fast tier stays
// bit-identical to it (amd64 does not contract a*b+c into FMA, so regrouped
// expressions are bitwise safe). v may be nil (no momentum).
func FusedDenseRow32(gx, w, gw, v, x []float32, g, invScale, wdec, m, lrNeg float32) {
	n := len(x)
	gx, w, gw = gx[:n], w[:n], gw[:n]
	if wdec == 0 && v == nil {
		if invScale != 1 {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := (gw[i] + g*xv) * invScale
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		} else {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := gw[i] + g*xv
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		}
		return
	}
	if wdec == 0 && v != nil {
		v = v[:n]
		if invScale != 1 {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := (gw[i] + g*xv) * invScale
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		} else {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := gw[i] + g*xv
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		}
		return
	}
	// Weight decay configured: rare for the online head, keep one general
	// loop with the same expression sequence as the generic fold.
	for i, xv := range x {
		wv := w[i]
		gx[i] += g * wv
		ge := gw[i] + g*xv
		if invScale != 1 {
			ge *= invScale
		}
		ge += wdec * wv
		if v != nil {
			vv := v[i]*m + ge
			v[i] = vv
			ge = vv
		}
		w[i] = wv + lrNeg*ge
		gw[i] = 0
	}
}

// FusedUpdateRow32 is FusedDenseRow32 for a row whose output gradient is
// zero: the outer-product and input-gradient terms vanish, but the
// accumulated gradient still steps the weights (earlier samples contributed
// to it) and momentum still decays.
func FusedUpdateRow32(w, gw, v []float32, invScale, wdec, m, lrNeg float32) {
	n := len(w)
	gw = gw[:n]
	if wdec == 0 && v == nil {
		if invScale != 1 {
			for i, wv := range w {
				ge := gw[i] * invScale
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		} else {
			for i, wv := range w {
				w[i] = wv + lrNeg*gw[i]
				gw[i] = 0
			}
		}
		return
	}
	if wdec == 0 && v != nil {
		v = v[:n]
		if invScale != 1 {
			for i, wv := range w {
				ge := gw[i] * invScale
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		} else {
			for i, wv := range w {
				vv := v[i]*m + gw[i]
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		}
		return
	}
	for i, wv := range w {
		ge := gw[i]
		if invScale != 1 {
			ge *= invScale
		}
		ge += wdec * wv
		if v != nil {
			vv := v[i]*m + ge
			v[i] = vv
			ge = vv
		}
		w[i] = wv + lrNeg*ge
		gw[i] = 0
	}
}

// matmul32 is the fast-tier GEMM kernel behind matmulInto: the same k-blocked
// ikj traversal, with the p-loop grouped four rows of b at a time so each dst
// element is read and written once per group instead of once per p, and the
// i-loop paired two dst rows at a time. Pairing changes nothing about any
// element's arithmetic — the two rows' chains are fully independent — but it
// halves the b-panel loads and, more importantly, doubles the independent
// FP-add chains in flight: one row's chain is bound by add latency, two
// interleaved chains keep the adder busy. The per-element chain
// s = ((((d + a0·b0) + a1·b1) + a2·b2) + a3·b3) is exactly the ascending-p
// serial order of the generic loop, and the skipped-vs-added zero products
// cannot differ either: dst starts from +0 and a round-to-nearest sum that
// never sees two -0 addends can never become -0, so adding a zero product is
// an exact no-op. The group skip fires only when every a value feeding the
// group is zero (ReLU-sparse batched activations), which keeps the generic
// kernel's sparsity win without a branch per p.
func matmul32(dst, a, b []float32, m, k, n int) {
	kb := panelRows[float32](n)
	for p0 := 0; p0 < k; p0 += kb {
		p1 := p0 + kb
		if p1 > k {
			p1 = k
		}
		i := 0
		for ; i+2 <= m; i += 2 {
			ai := a[i*k : (i+1)*k]
			ci := a[(i+1)*k : (i+2)*k]
			// The [:n] reslices below give every row a length the compiler can
			// prove equal to len(di), so the inner loops run bounds-check-free.
			di := dst[i*n:]
			di = di[:n]
			ei := dst[(i+1)*n:]
			ei = ei[:n]
			p := p0
			for ; p+4 <= p1; p += 4 {
				a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
				c0, c1, c2, c3 := ci[p], ci[p+1], ci[p+2], ci[p+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 &&
					c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0 {
					continue
				}
				b0 := b[p*n:]
				b0 = b0[:n]
				b1 := b[(p+1)*n:]
				b1 = b1[:n]
				b2 := b[(p+2)*n:]
				b2 = b2[:n]
				b3 := b[(p+3)*n:]
				b3 = b3[:n]
				for j := range di {
					bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
					s := di[j] + a0*bv0
					t := ei[j] + c0*bv0
					s += a1 * bv1
					t += c1 * bv1
					s += a2 * bv2
					t += c2 * bv2
					s += a3 * bv3
					t += c3 * bv3
					di[j] = s
					ei[j] = t
				}
			}
			for ; p < p1; p++ {
				av, cv := ai[p], ci[p]
				if av == 0 && cv == 0 {
					continue
				}
				bp := b[p*n:]
				bp = bp[:n]
				for j, bv := range bp {
					di[j] += av * bv
					ei[j] += cv * bv
				}
			}
		}
		if i < m {
			ai := a[i*k : (i+1)*k]
			di := dst[i*n : (i+1)*n]
			p := p0
			for ; p+4 <= p1; p += 4 {
				a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b[p*n : (p+1)*n]
				b1 := b[(p+1)*n : (p+2)*n]
				b2 := b[(p+2)*n : (p+3)*n]
				b3 := b[(p+3)*n : (p+4)*n]
				for j := range di {
					s := di[j] + a0*b0[j]
					s += a1 * b1[j]
					s += a2 * b2[j]
					s += a3 * b3[j]
					di[j] = s
				}
			}
			for ; p < p1; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	}
}

// matmulT132 is matmul32 for the transposed-first-operand accumulate kernel
// (dW += Gᵀ·X in the batched dense backward): a is read column-wise with
// stride m, four p-rows per group, two dst rows per pass (adjacent columns of
// a — one cache line feeds both chains), same left-associated ascending-p
// chain per element as matmulT1Range and therefore bit-identical to it by the
// matmul32 argument.
func matmulT132(dst, a, b []float32, m, k, n, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		di := dst[i*n:]
		di = di[:n]
		ei := dst[(i+1)*n:]
		ei = ei[:n]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, c0 := a[p*m+i], a[p*m+i+1]
			a1, c1 := a[(p+1)*m+i], a[(p+1)*m+i+1]
			a2, c2 := a[(p+2)*m+i], a[(p+2)*m+i+1]
			a3, c3 := a[(p+3)*m+i], a[(p+3)*m+i+1]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 &&
				c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0 {
				continue
			}
			b0 := b[p*n:]
			b0 = b0[:n]
			b1 := b[(p+1)*n:]
			b1 = b1[:n]
			b2 := b[(p+2)*n:]
			b2 = b2[:n]
			b3 := b[(p+3)*n:]
			b3 = b3[:n]
			for j := range di {
				bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
				s := di[j] + a0*bv0
				t := ei[j] + c0*bv0
				s += a1 * bv1
				t += c1 * bv1
				s += a2 * bv2
				t += c2 * bv2
				s += a3 * bv3
				t += c3 * bv3
				di[j] = s
				ei[j] = t
			}
		}
		for ; p < k; p++ {
			av, cv := a[p*m+i], a[p*m+i+1]
			if av == 0 && cv == 0 {
				continue
			}
			bp := b[p*n:]
			bp = bp[:n]
			for j, bv := range bp {
				di[j] += av * bv
				ei[j] += cv * bv
			}
		}
	}
	if i < hi {
		di := dst[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0 := a[p*m+i]
			a1 := a[(p+1)*m+i]
			a2 := a[(p+2)*m+i]
			a3 := a[(p+3)*m+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b[p*n : (p+1)*n]
			b1 := b[(p+1)*n : (p+2)*n]
			b2 := b[(p+2)*n : (p+3)*n]
			b3 := b[(p+3)*n : (p+4)*n]
			for j := range di {
				s := di[j] + a0*b0[j]
				s += a1 * b1[j]
				s += a2 * b2[j]
				s += a3 * b3[j]
				di[j] = s
			}
		}
		for ; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// DenseBackwardRow32 is the fast-tier dense-layer backward row kernel:
// gw[i] += g*x[i] and gx[i] += g*w[i] in one pass. Unlike dot32 every output
// element is independent — there is no accumulation chain to reassociate —
// so the unrolled loop is bit-identical to the naive one; it exists only to
// amortise loop control across four elements. Exported for internal/nn's
// dense backward and fused-step kernels, which must stay bit-identical to
// each other.
func DenseBackwardRow32(gw, gx, w, x []float32, g float32) {
	n := len(x)
	gw, gx, w = gw[:n], gx[:n], w[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		gw[i] += g * x[i]
		gx[i] += g * w[i]
		gw[i+1] += g * x[i+1]
		gx[i+1] += g * w[i+1]
		gw[i+2] += g * x[i+2]
		gx[i+2] += g * w[i+2]
		gw[i+3] += g * x[i+3]
		gx[i+3] += g * w[i+3]
	}
	for ; i < n; i++ {
		gw[i] += g * x[i]
		gx[i] += g * w[i]
	}
}
