package tensor

// Fast-tier float32 kernels. The generic GEMM/GEMV loops accumulate through a
// single serial chain in ascending index order — auditable, and what the
// float64 reference tier runs — but on a scalar core that chain is bound by
// FP-add latency (~4 cycles per element), not by arithmetic throughput or
// memory bandwidth. The float32 tier is the product's hot path, so it trades
// the strict serial order for speed: four independent accumulators retire one
// multiply-add per cycle, and the generic kernel's zero-skip branch is
// dropped (dense weight matrices never take it; it only pays on ReLU-sparse
// operands, which stay on the generic path).
//
// The reassociated sum (s0+s1)+(s2+s3) differs from the serial chain by
// rounding only. This is the fast tier's documented accumulation-order
// caveat (DESIGN.md "Precision tiers"): fp32 results are deterministic
// run-to-run — the unroll pattern is fixed — but are not bit-comparable to a
// strictly-serial evaluation of the same dot product. The float64 reference
// tier keeps the serial kernels precisely so there is an auditable baseline
// to bound the fast tier against.

// dot32 returns the dot product of a and x[:len(a)] with four-way unrolled
// accumulation.
func dot32(a, x []float32) float32 {
	n := len(a)
	x = x[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * x[i]
		s1 += a[i+1] * x[i+1]
		s2 += a[i+2] * x[i+2]
		s3 += a[i+3] * x[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// matvec32 is the fast-tier GEMV row kernel: one unrolled dot product per
// output row.
func matvec32(dst, a, x []float32, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = dot32(a[i*k:(i+1)*k], x)
	}
}

// FusedDenseRow32 is the fast-tier row kernel of the fused dense
// backward+SGD fold: for one output row with gradient g it accumulates the
// input gradient gx[i] += g*w[i] (against the pre-update weights), folds the
// last sample's outer-product term into the accumulated weight gradient,
// applies inverse-batch scaling, weight decay and momentum, steps the weights
// and re-zeroes the gradient — one pass over five streams. The loop-invariant
// conditions (momentum on/off, invScale, weight decay) are hoisted into
// specialised loops; each variant executes exactly the per-element operation
// sequence of the generic fold in internal/nn, so the fast tier stays
// bit-identical to it (amd64 does not contract a*b+c into FMA, so regrouped
// expressions are bitwise safe). v may be nil (no momentum).
func FusedDenseRow32(gx, w, gw, v, x []float32, g, invScale, wdec, m, lrNeg float32) {
	n := len(x)
	gx, w, gw = gx[:n], w[:n], gw[:n]
	if wdec == 0 && v == nil {
		if invScale != 1 {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := (gw[i] + g*xv) * invScale
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		} else {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := gw[i] + g*xv
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		}
		return
	}
	if wdec == 0 && v != nil {
		v = v[:n]
		if invScale != 1 {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := (gw[i] + g*xv) * invScale
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		} else {
			for i, xv := range x {
				wv := w[i]
				gx[i] += g * wv
				ge := gw[i] + g*xv
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		}
		return
	}
	// Weight decay configured: rare for the online head, keep one general
	// loop with the same expression sequence as the generic fold.
	for i, xv := range x {
		wv := w[i]
		gx[i] += g * wv
		ge := gw[i] + g*xv
		if invScale != 1 {
			ge *= invScale
		}
		ge += wdec * wv
		if v != nil {
			vv := v[i]*m + ge
			v[i] = vv
			ge = vv
		}
		w[i] = wv + lrNeg*ge
		gw[i] = 0
	}
}

// FusedUpdateRow32 is FusedDenseRow32 for a row whose output gradient is
// zero: the outer-product and input-gradient terms vanish, but the
// accumulated gradient still steps the weights (earlier samples contributed
// to it) and momentum still decays.
func FusedUpdateRow32(w, gw, v []float32, invScale, wdec, m, lrNeg float32) {
	n := len(w)
	gw = gw[:n]
	if wdec == 0 && v == nil {
		if invScale != 1 {
			for i, wv := range w {
				ge := gw[i] * invScale
				w[i] = wv + lrNeg*ge
				gw[i] = 0
			}
		} else {
			for i, wv := range w {
				w[i] = wv + lrNeg*gw[i]
				gw[i] = 0
			}
		}
		return
	}
	if wdec == 0 && v != nil {
		v = v[:n]
		if invScale != 1 {
			for i, wv := range w {
				ge := gw[i] * invScale
				vv := v[i]*m + ge
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		} else {
			for i, wv := range w {
				vv := v[i]*m + gw[i]
				v[i] = vv
				w[i] = wv + lrNeg*vv
				gw[i] = 0
			}
		}
		return
	}
	for i, wv := range w {
		ge := gw[i]
		if invScale != 1 {
			ge *= invScale
		}
		ge += wdec * wv
		if v != nil {
			vv := v[i]*m + ge
			v[i] = vv
			ge = vv
		}
		w[i] = wv + lrNeg*ge
		gw[i] = 0
	}
}

// DenseBackwardRow32 is the fast-tier dense-layer backward row kernel:
// gw[i] += g*x[i] and gx[i] += g*w[i] in one pass. Unlike dot32 every output
// element is independent — there is no accumulation chain to reassociate —
// so the unrolled loop is bit-identical to the naive one; it exists only to
// amortise loop control across four elements. Exported for internal/nn's
// dense backward and fused-step kernels, which must stay bit-identical to
// each other.
func DenseBackwardRow32(gw, gx, w, x []float32, g float32) {
	n := len(x)
	gw, gx, w = gw[:n], gx[:n], w[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		gw[i] += g * x[i]
		gx[i] += g * w[i]
		gw[i+1] += g * x[i+1]
		gx[i+1] += g * w[i+1]
		gw[i+2] += g * x[i+2]
		gx[i+2] += g * w[i+2]
		gw[i+3] += g * x[i+3]
		gx[i+3] += g * w[i+3]
	}
	for ; i < n; i++ {
		gw[i] += g * x[i]
		gx[i] += g * w[i]
	}
}
