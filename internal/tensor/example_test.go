package tensor_test

import (
	"fmt"

	"chameleon/internal/tensor"
)

func ExampleMatMul() {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := tensor.MatMul(a, b)
	fmt.Println(c.Data())
	// Output: [19 22 43 50]
}

func ExampleSoftmax() {
	logits := tensor.FromSlice([]float32{0, 0, 0, 0}, 4)
	p := tensor.Softmax(logits)
	fmt.Printf("%.2f\n", p.Data())
	// Output: [0.25 0.25 0.25 0.25]
}

func ExampleInverse() {
	a := tensor.FromSlice([]float32{2, 0, 0, 4}, 2, 2)
	inv, err := tensor.Inverse(a)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", inv.Data())
	// Output: [0.50 0.00 0.00 0.25]
}

func ExampleKLDivergence() {
	p := []float32{0.5, 0.5}
	fmt.Printf("%.3f\n", tensor.KLDivergence(p, p))
	// Output: 0.000
}
