package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The gob wire format is dtype-tagged so a payload written by one precision
// tier cannot be silently reinterpreted by the other:
//
//	uint32 magic (dtype tag), uint32 ndim, uint32 dims..., elements
//
// Elements are little-endian IEEE-754 bit patterns, 4 bytes for the float32
// tier and 8 for the float64 tier. Payloads written before the tag existed
// (PR ≤ 5 checkpoints and latent caches) start directly with ndim; they are
// recognised by the first word being ≤ maxGobDims — far below either magic —
// and decode as float32, the only element type that existed then.
const (
	gobMagicF32 = 0xC4A2F032
	gobMagicF64 = 0xC4A2F064
)

// maxGobDims bounds the rank a decoded tensor may claim. Nothing in the
// repository exceeds 4 dimensions; the slack guards against honest format
// evolution while keeping a corrupt header from driving a huge allocation.
const maxGobDims = 16

// gobMagic returns the dtype tag for the tier's element type.
func gobMagic[T Float]() uint32 {
	if elemSize[T]() == 4 {
		return gobMagicF32
	}
	return gobMagicF64
}

func dtypeName(magic uint32) string {
	switch magic {
	case gobMagicF32:
		return "float32"
	case gobMagicF64:
		return "float64"
	}
	return fmt.Sprintf("unknown(%#x)", magic)
}

// GobEncode implements gob.GobEncoder with the tagged little-endian layout
// described above.
func (t *Of[T]) GobEncode() ([]byte, error) {
	es := elemSize[T]()
	buf := make([]byte, 8+4*len(t.shape)+es*len(t.data))
	binary.LittleEndian.PutUint32(buf, gobMagic[T]())
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(t.shape)))
	off := 8
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	if es == 4 {
		for _, v := range t.data {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
			off += 4
		}
	} else {
		for _, v := range t.data {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(float64(v)))
			off += 8
		}
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder. The payload is untrusted (checkpoint
// files cross process boundaries), so the claimed rank and shape are bounds-
// checked against the bytes actually present before anything is allocated:
// the element count can never exceed the payload length, and the product
// accumulation cannot overflow. A payload tagged with the other tier's dtype
// is rejected with a clear error rather than reinterpreted.
func (t *Of[T]) GobDecode(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("tensor: gob payload too short (%d bytes)", len(buf))
	}
	head := binary.LittleEndian.Uint32(buf)
	want := gobMagic[T]()
	var (
		off      int
		nd       int
		srcMagic uint32
	)
	switch {
	case head == gobMagicF32 || head == gobMagicF64:
		srcMagic = head
		if len(buf) < 8 {
			return fmt.Errorf("tensor: gob payload truncated after dtype tag")
		}
		nd = int(binary.LittleEndian.Uint32(buf[4:]))
		off = 8
	case head <= maxGobDims:
		// Legacy untagged payload: always float32 (the only tier that existed
		// before the dtype tag).
		srcMagic = gobMagicF32
		nd = int(head)
		off = 4
	default:
		return fmt.Errorf("tensor: gob payload claims %d dims, max %d", head, maxGobDims)
	}
	if srcMagic != want {
		return fmt.Errorf("tensor: gob payload holds %s elements, cannot restore into %s tensor (precision tiers are not interchangeable)",
			dtypeName(srcMagic), dtypeName(want))
	}
	if nd > maxGobDims {
		return fmt.Errorf("tensor: gob payload claims %d dims, max %d", nd, maxGobDims)
	}
	if len(buf) < off+4*nd {
		return fmt.Errorf("tensor: gob payload truncated in shape")
	}
	es := elemSize[T]()
	// The data section can hold at most this many elements; any shape whose
	// product exceeds it is inconsistent with the payload.
	maxElems := (len(buf) - off - 4*nd) / es
	shape := make([]int, nd)
	n := 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if d == 0 {
			n = 0
			shape[i] = d
			continue
		}
		if n > maxElems/d {
			return fmt.Errorf("tensor: gob payload shape %v... exceeds %d-byte data section", shape[:i+1], es*maxElems)
		}
		n *= d
		shape[i] = d
	}
	if len(buf) != off+es*n {
		return fmt.Errorf("tensor: gob payload has %d bytes, want %d for shape %v", len(buf), off+es*n, shape)
	}
	data := make([]T, n)
	if es == 4 {
		for i := range data {
			data[i] = T(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
		}
	} else {
		for i := range data {
			data[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		}
	}
	t.shape, t.data = shape, data
	return nil
}
