package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// GobEncode implements gob.GobEncoder with a compact little-endian layout:
// uint32 ndim, uint32 dims..., float32 data.
func (t *Tensor) GobEncode() ([]byte, error) {
	buf := make([]byte, 4+4*len(t.shape)+4*len(t.data))
	binary.LittleEndian.PutUint32(buf, uint32(len(t.shape)))
	off := 4
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	for _, v := range t.data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf, nil
}

// maxGobDims bounds the rank a decoded tensor may claim. Nothing in the
// repository exceeds 4 dimensions; the slack guards against honest format
// evolution while keeping a corrupt header from driving a huge allocation.
const maxGobDims = 16

// GobDecode implements gob.GobDecoder. The payload is untrusted (checkpoint
// files cross process boundaries), so the claimed rank and shape are bounds-
// checked against the bytes actually present before anything is allocated:
// the element count can never exceed the payload length, and the product
// accumulation cannot overflow.
func (t *Tensor) GobDecode(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("tensor: gob payload too short (%d bytes)", len(buf))
	}
	nd := int(binary.LittleEndian.Uint32(buf))
	if nd > maxGobDims {
		return fmt.Errorf("tensor: gob payload claims %d dims, max %d", nd, maxGobDims)
	}
	off := 4
	if len(buf) < off+4*nd {
		return fmt.Errorf("tensor: gob payload truncated in shape")
	}
	// The data section can hold at most this many float32 elements; any shape
	// whose product exceeds it is inconsistent with the payload.
	maxElems := (len(buf) - off - 4*nd) / 4
	shape := make([]int, nd)
	n := 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if d == 0 {
			n = 0
			shape[i] = d
			continue
		}
		if n > maxElems/d {
			return fmt.Errorf("tensor: gob payload shape %v... exceeds %d-byte data section", shape[:i+1], 4*maxElems)
		}
		n *= d
		shape[i] = d
	}
	if len(buf) != off+4*n {
		return fmt.Errorf("tensor: gob payload has %d bytes, want %d for shape %v", len(buf), off+4*n, shape)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	t.shape, t.data = shape, data
	return nil
}
