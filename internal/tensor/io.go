package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// GobEncode implements gob.GobEncoder with a compact little-endian layout:
// uint32 ndim, uint32 dims..., float32 data.
func (t *Tensor) GobEncode() ([]byte, error) {
	buf := make([]byte, 4+4*len(t.shape)+4*len(t.data))
	binary.LittleEndian.PutUint32(buf, uint32(len(t.shape)))
	off := 4
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	for _, v := range t.data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("tensor: gob payload too short (%d bytes)", len(buf))
	}
	nd := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if len(buf) < off+4*nd {
		return fmt.Errorf("tensor: gob payload truncated in shape")
	}
	shape := make([]int, nd)
	n := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(buf[off:]))
		n *= shape[i]
		off += 4
	}
	if len(buf) != off+4*n {
		return fmt.Errorf("tensor: gob payload has %d bytes, want %d for shape %v", len(buf), off+4*n, shape)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	t.shape, t.data = shape, data
	return nil
}
