package tensor

import "fmt"

// MatMul returns a @ b for a [M,K] and b [K,N].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul on shapes %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// matmulInto computes dst[m,n] += a[m,k] @ b[k,n] with an ikj loop order so
// the inner loop streams contiguously over b and dst. dst must be zeroed by
// the caller if accumulation is not wanted.
func matmulInto(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT1 returns aᵀ @ b for a [K,M] and b [K,N], yielding [M,N].
func MatMulT1(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT1 on shapes %v @ %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dim mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := out.data[i*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT2 returns a @ bᵀ for a [M,K] and b [N,K], yielding [M,N].
func MatMulT2(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT2 on shapes %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dim mismatch %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
	return out
}

// MatVec returns a @ x for a [M,K] and x [K], yielding [M].
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 || len(x.shape) != 1 || a.shape[1] != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec on shapes %v @ %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		var s float32
		for p, av := range ai {
			s += av * x.data[p]
		}
		out.data[i] = s
	}
	return out
}

// Inverse returns the inverse of a square matrix via Gauss–Jordan elimination
// with partial pivoting, or an error if the matrix is singular. This is the
// O(N³) kernel SLDA's streaming classifier depends on; its cost is what the
// paper's EdgeTPU comparison (Table II) hinges on.
func Inverse(a *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || a.shape[0] != a.shape[1] {
		return nil, fmt.Errorf("tensor: Inverse of non-square shape %v", a.shape)
	}
	n := a.shape[0]
	// Augmented working copy in float64 for stability.
	w := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i*2*n+j] = float64(a.data[i*n+j])
		}
		w[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pv := col, abs64(w[col*2*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs64(w[r*2*n+col]); v > pv {
				piv, pv = r, v
			}
		}
		if pv < 1e-12 {
			return nil, fmt.Errorf("tensor: Inverse of singular matrix (pivot %g at column %d)", pv, col)
		}
		if piv != col {
			ra, rb := w[col*2*n:(col+1)*2*n], w[piv*2*n:(piv+1)*2*n]
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
		}
		inv := 1 / w[col*2*n+col]
		row := w[col*2*n : (col+1)*2*n]
		for j := range row {
			row[j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w[r*2*n+col]
			if f == 0 {
				continue
			}
			rr := w[r*2*n : (r+1)*2*n]
			for j := range rr {
				rr[j] -= f * row[j]
			}
		}
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] = float32(w[i*2*n+n+j])
		}
	}
	return out, nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
