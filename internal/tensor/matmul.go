package tensor

import (
	"fmt"

	"chameleon/internal/parallel"
)

// minParallelMACs is the kernel-size threshold below which the GEMM/GEMV
// kernels stay on the serial fast path: sharding a head-scale op (a few
// thousand MACs) across goroutines costs more than the op itself. Sharding
// never changes results — each output row is computed by the identical serial
// loop — so the threshold is purely a performance knob.
const minParallelMACs = 1 << 16

// rowGrain returns the minimum number of output rows per parallel chunk so
// each chunk carries at least minParallelMACs of work.
func rowGrain(macsPerRow int) int {
	if macsPerRow <= 0 {
		return 1
	}
	g := minParallelMACs / macsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// elemSize returns the byte width of the tier's element type (4 for the fast
// float32 tier, 8 for the float64 reference tier).
func elemSize[T Float]() int {
	var z T
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}

// MatMul returns a @ b for a [M,K] and b [K,N].
func MatMul[T Float](a, b *Of[T]) *Of[T] {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul on shapes %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v @ %v", a.shape, b.shape))
	}
	out := NewOf[T](m, n)
	matmulSharded(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulInto computes dst = a @ b, overwriting dst's contents. dst must be a
// [M,N] tensor; reusing one across calls avoids the per-call allocation of
// MatMul (SLDA's precision refresh and the conv backward pass lean on this).
func MatMulInto[T Float](dst, a, b *Of[T]) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto on shapes %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulInto inner dim mismatch %v @ %v", a.shape, b.shape))
	}
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulSharded(dst.data, a.data, b.data, m, k, n)
}

// matmulSharded accumulates a[m,k] @ b[k,n] into dst, sharding rows of a
// across the worker pool for large problems. Each row is computed by the same
// serial kernel regardless of worker count, so results are bit-identical to
// the serial path.
func matmulSharded[T Float](dst, a, b []T, m, k, n int) {
	if m*k*n < minParallelMACs || parallel.Workers() <= 1 {
		matmulInto(dst, a, b, m, k, n)
		return
	}
	parallel.For(m, rowGrain(k*n), func(lo, hi int) {
		matmulInto(dst[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n)
	})
}

// matmulInto computes dst[m,n] += a[m,k] @ b[k,n]. The loop is k-blocked ikj:
// a panel of b rows stays cache-resident across all rows of a, while the
// inner loop streams contiguously over b and dst. Per output element the
// accumulation order is ascending p exactly as in the unblocked loop, so
// blocking does not perturb float results. dst must be zeroed by the caller
// if accumulation is not wanted.
func matmulInto[T Float](dst, a, b []T, m, k, n int) {
	// Fast-tier dispatch (resolved at instantiation time): float32 goes
	// through the four-row grouped saxpy kernel, which accumulates each output
	// element through the identical ascending-p chain and is therefore
	// bit-identical to the generic loop below (see fast32.go).
	if d32, ok := any(dst).([]float32); ok {
		matmul32(d32, any(a).([]float32), any(b).([]float32), m, k, n)
		return
	}
	kb := panelRows[T](n)
	for p0 := 0; p0 < k; p0 += kb {
		p1 := p0 + kb
		if p1 > k {
			p1 = k
		}
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			di := dst[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					di[j] += av * bv
				}
			}
		}
	}
}

// panelRows sizes the k-blocking so one panel of b (rows × n elements) fits
// in a 32 KiB L1 slice, with a floor of 8 rows. Blocking only affects the
// traversal order across output elements, never the per-element accumulation
// order, so the tier-dependent panel height cannot perturb results.
func panelRows[T Float](n int) int {
	l1Elems := (32 << 10) / elemSize[T]()
	if n <= 0 {
		return 8
	}
	r := l1Elems / n
	if r < 8 {
		r = 8
	}
	return r
}

// MatMulT1 returns aᵀ @ b for a [K,M] and b [K,N], yielding [M,N].
func MatMulT1[T Float](a, b *Of[T]) *Of[T] {
	k, m := checkT1("MatMulT1", a, b)
	out := NewOf[T](m, b.shape[1])
	matmulT1Sharded(out.data, a.data, b.data, m, k, b.shape[1])
	return out
}

// MatMulT1Into computes dst = aᵀ @ b, overwriting dst ([M,N]).
func MatMulT1Into[T Float](dst, a, b *Of[T]) {
	k, m := checkT1("MatMulT1Into", a, b)
	n := b.shape[1]
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT1Into dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulT1Sharded(dst.data, a.data, b.data, m, k, n)
}

// MatMulT1AccInto accumulates dst += aᵀ @ b without zeroing dst first. This
// is the batched dense backward's weight-gradient kernel (dW += Gᵀ·X): the
// parameter gradient may already hold contributions from earlier accumulate
// calls in the same optimizer step, exactly like the per-sample
// Backward/BackwardInto path. Per output element the p-loop ascends over
// samples in stream order, so the accumulation chain matches the per-sample
// loop's bit for bit.
func MatMulT1AccInto[T Float](dst, a, b *Of[T]) {
	k, m := checkT1("MatMulT1AccInto", a, b)
	n := b.shape[1]
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT1AccInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matmulT1Sharded(dst.data, a.data, b.data, m, k, n)
}

func checkT1[T Float](op string, a, b *Of[T]) (k, m int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s on shapes %v @ %v", op, a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: %s inner dim mismatch %v @ %v", op, a.shape, b.shape))
	}
	return a.shape[0], a.shape[1]
}

// matmulT1Sharded accumulates aᵀ @ b into dst, sharding output rows. Per
// output element the p-loop ascends exactly as in the serial kernel. The
// shard body is a named function so the small-kernel fast path never
// materialises a closure (a per-call heap allocation the steady-state
// training loop must not pay).
func matmulT1Sharded[T Float](dst, a, b []T, m, k, n int) {
	if m*k*n < minParallelMACs || parallel.Workers() <= 1 {
		matmulT1Range(dst, a, b, m, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(lo, hi int) {
		matmulT1Range(dst, a, b, m, k, n, lo, hi)
	})
}

func matmulT1Range[T Float](dst, a, b []T, m, k, n, lo, hi int) {
	// Fast-tier dispatch: float32 goes through the grouped-saxpy kernel in
	// fast32.go, bit-identical to the generic loop below (same ascending-p
	// chain; zero products are exact no-ops).
	if d32, ok := any(dst).([]float32); ok {
		matmulT132(d32, any(a).([]float32), any(b).([]float32), m, k, n, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		di := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT2 returns a @ bᵀ for a [M,K] and b [N,K], yielding [M,N].
func MatMulT2[T Float](a, b *Of[T]) *Of[T] {
	m, k, n := checkT2("MatMulT2", a, b)
	out := NewOf[T](m, n)
	matmulT2Sharded(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulT2Into computes dst = a @ bᵀ, overwriting dst ([M,N]).
func MatMulT2Into[T Float](dst, a, b *Of[T]) {
	m, k, n := checkT2("MatMulT2Into", a, b)
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT2Into dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matmulT2Sharded(dst.data, a.data, b.data, m, k, n)
}

func checkT2[T Float](op string, a, b *Of[T]) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s on shapes %v @ %v", op, a.shape, b.shape))
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: %s inner dim mismatch %v @ %v", op, a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[0]
}

// matmulT2Sharded assigns a @ bᵀ into dst, sharding output rows. The dot
// products skip zero elements of a — the same sparsity fast path as
// matmulInto, which the ReLU-heavy activations this kernel sees (conv weight
// gradients: g @ colᵀ) make worthwhile.
func matmulT2Sharded[T Float](dst, a, b []T, m, k, n int) {
	if m*k*n < minParallelMACs || parallel.Workers() <= 1 {
		matmulT2Range(dst, a, b, k, n, 0, m)
		return
	}
	parallel.For(m, rowGrain(k*n), func(lo, hi int) {
		matmulT2Range(dst, a, b, k, n, lo, hi)
	})
}

func matmulT2Range[T Float](dst, a, b []T, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s T
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s += av * bj[p]
			}
			di[j] = s
		}
	}
}

// MatVec returns a @ x for a [M,K] and x [K], yielding [M].
func MatVec[T Float](a, x *Of[T]) *Of[T] {
	if len(a.shape) != 2 || len(x.shape) != 1 || a.shape[1] != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec on shapes %v @ %v", a.shape, x.shape))
	}
	out := NewOf[T](a.shape[0])
	matvecSharded(out.data, a.data, x.data, a.shape[0], a.shape[1])
	return out
}

// MatVecInto computes dst = a @ x, overwriting dst ([M]). SLDA's per-class
// scoring reuses one output vector through this.
func MatVecInto[T Float](dst, a, x *Of[T]) {
	if len(a.shape) != 2 || len(x.shape) != 1 || a.shape[1] != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVecInto on shapes %v @ %v", a.shape, x.shape))
	}
	if len(dst.shape) != 1 || dst.shape[0] != a.shape[0] {
		panic(fmt.Sprintf("tensor: MatVecInto dst shape %v, want [%d]", dst.shape, a.shape[0]))
	}
	matvecSharded(dst.data, a.data, x.data, a.shape[0], a.shape[1])
}

// matvecSharded assigns a @ x into dst, sharding rows and skipping zero
// matrix entries (the same zero fast path as matmulInto).
func matvecSharded[T Float](dst, a, x []T, m, k int) {
	if m*k < minParallelMACs || parallel.Workers() <= 1 {
		matvecRange(dst, a, x, k, 0, m)
		return
	}
	parallel.For(m, rowGrain(k), func(lo, hi int) {
		matvecRange(dst, a, x, k, lo, hi)
	})
}

func matvecRange[T Float](dst, a, x []T, k, lo, hi int) {
	// Fast-tier dispatch: float32 rows go through the unrolled branch-free
	// dot kernel (see fast32.go). The type switch resolves at instantiation
	// time — float32 and float64 compile to separate bodies — so the generic
	// (reference-tier) loop below carries no dispatch cost.
	if d32, ok := any(dst).([]float32); ok {
		matvec32(d32, any(a).([]float32), any(x).([]float32), k, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		var s T
		for p, av := range ai {
			if av == 0 {
				continue
			}
			s += av * x[p]
		}
		dst[i] = s
	}
}

// Inverse returns the inverse of a square matrix via Gauss–Jordan elimination
// with partial pivoting, or an error if the matrix is singular. This is the
// O(N³) kernel SLDA's streaming classifier depends on; its cost is what the
// paper's EdgeTPU comparison (Table II) hinges on. Elimination runs in
// float64 regardless of tier, so both tiers see the same pivoting decisions.
func Inverse[T Float](a *Of[T]) (*Of[T], error) {
	if len(a.shape) != 2 || a.shape[0] != a.shape[1] {
		return nil, fmt.Errorf("tensor: Inverse of non-square shape %v", a.shape)
	}
	n := a.shape[0]
	// Augmented working copy in float64 for stability.
	w := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i*2*n+j] = float64(a.data[i*n+j])
		}
		w[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pv := col, abs64(w[col*2*n+col])
		for r := col + 1; r < n; r++ {
			if v := abs64(w[r*2*n+col]); v > pv {
				piv, pv = r, v
			}
		}
		if pv < 1e-12 {
			return nil, fmt.Errorf("tensor: Inverse of singular matrix (pivot %g at column %d)", pv, col)
		}
		if piv != col {
			ra, rb := w[col*2*n:(col+1)*2*n], w[piv*2*n:(piv+1)*2*n]
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
		}
		inv := 1 / w[col*2*n+col]
		row := w[col*2*n : (col+1)*2*n]
		for j := range row {
			row[j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w[r*2*n+col]
			if f == 0 {
				continue
			}
			rr := w[r*2*n : (r+1)*2*n]
			for j := range rr {
				rr[j] -= f * row[j]
			}
		}
	}
	out := NewOf[T](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] = T(w[i*2*n+n+j])
		}
	}
	return out, nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
