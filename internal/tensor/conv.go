package tensor

import (
	"fmt"

	"chameleon/internal/parallel"
)

// ConvOut returns the output spatial size of a convolution with the given
// input size, kernel, stride and symmetric padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// channelGrain returns the minimum channels per parallel chunk so each chunk
// carries at least minParallelMACs of work; the conv kernels shard over
// channels because every channel writes a disjoint region, keeping parallel
// results bit-identical to the serial loop.
func channelGrain(perChannel int) int {
	if perChannel <= 0 {
		return 1
	}
	g := minParallelMACs / perChannel
	if g < 1 {
		g = 1
	}
	return g
}

// Im2Col lowers a single-image [C,H,W] tensor into a [C*KH*KW, OH*OW] matrix
// so a convolution becomes a GEMM with the [OC, C*KH*KW] weight matrix.
func Im2Col[T Float](x *Of[T], kh, kw, stride, pad int) *Of[T] {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col on shape %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := NewOf[T](c*kh*kw, oh*ow)
	im2colSharded(out.data, x.data, c, h, w, kh, kw, oh, ow, stride, pad)
	return out
}

// Im2ColInto is Im2Col writing into a caller-owned [C*KH*KW, OH*OW] matrix
// (overwritten, including the zero padding border), so convolution layers can
// reuse one lowering buffer across steps.
func Im2ColInto[T Float](dst, x *Of[T], kh, kw, stride, pad int) {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2ColInto on shape %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if len(dst.shape) != 2 || dst.shape[0] != c*kh*kw || dst.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", dst.shape, c*kh*kw, oh*ow))
	}
	// The lowering kernel skips out-of-bounds taps ("leave zeros"), so the
	// padding border must be re-zeroed when the buffer is reused.
	dst.Zero()
	im2colSharded(dst.data, x.data, c, h, w, kh, kw, oh, ow, stride, pad)
}

func im2colSharded[T Float](col, data []T, c, h, w, kh, kw, oh, ow, stride, pad int) {
	// Small lowerings skip parallel.For entirely: even constructing the
	// escaping closure costs a heap allocation the steady-state loops avoid.
	if c*kh*kw*oh*ow < minParallelMACs || parallel.Workers() <= 1 {
		im2colChannels(col, data, 0, c, h, w, kh, kw, oh, ow, stride, pad)
		return
	}
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		im2colChannels(col, data, lo, hi, h, w, kh, kw, oh, ow, stride, pad)
	})
}

// im2colChannels lowers channels [lo,hi): each channel owns rows
// [ci*kh*kw, (ci+1)*kh*kw) of the column matrix, so shards are disjoint.
func im2colChannels[T Float](col, data []T, lo, hi, h, w, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		plane := data[ci*h*w : (ci+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ci*kh+ki)*kw + kj) * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue // leave zeros
					}
					src := plane[iy*w:]
					dst := col[rowBase+oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kj
						if ix >= 0 && ix < w {
							dst[ox] = src[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a [C*KH*KW, OH*OW] column
// matrix back into a [C,H,W] image, accumulating overlapping contributions.
// It is the building block of convolution input gradients.
func Col2Im[T Float](col *Of[T], c, h, w, kh, kw, stride, pad int) *Of[T] {
	out := NewOf[T](c, h, w)
	Col2ImInto(out, col, kh, kw, stride, pad)
	return out
}

// Col2ImInto is Col2Im scattering into a caller-owned [C,H,W] tensor. dst is
// zeroed first (the scatter accumulates), so one gradient buffer can be
// reused across backward passes.
func Col2ImInto[T Float](dst, col *Of[T], kh, kw, stride, pad int) {
	if len(dst.shape) != 3 {
		panic(fmt.Sprintf("tensor: Col2ImInto dst shape %v", dst.shape))
	}
	c, h, w := dst.shape[0], dst.shape[1], dst.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if len(col.shape) != 2 || col.shape[0] != c*kh*kw || col.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2ImInto shape %v does not match c=%d h=%d w=%d k=%dx%d s=%d p=%d",
			col.shape, c, h, w, kh, kw, stride, pad))
	}
	dst.Zero()
	// Each channel scatters only into its own [h,w] plane, so channel shards
	// are disjoint and the accumulation order within a plane is the serial
	// loop's order at any worker count.
	if c*kh*kw*oh*ow < minParallelMACs || parallel.Workers() <= 1 {
		col2imChannels(dst.data, col.data, 0, c, h, w, kh, kw, oh, ow, stride, pad)
		return
	}
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		col2imChannels(dst.data, col.data, lo, hi, h, w, kh, kw, oh, ow, stride, pad)
	})
}

// col2imChannels scatters channels [lo,hi) back into the image planes.
func col2imChannels[T Float](out, col []T, lo, hi, h, w, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		plane := out[ci*h*w : (ci+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ci*kh+ki)*kw + kj) * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					src := col[rowBase+oy*ow:]
					dst := plane[iy*w:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kj
						if ix >= 0 && ix < w {
							dst[ix] += src[ox]
						}
					}
				}
			}
		}
	}
}

// DepthwiseConv applies a per-channel [C,KH,KW] filter bank to a [C,H,W]
// input with the given stride/padding, returning [C,OH,OW]. bias may be nil
// or a [C] tensor.
func DepthwiseConv[T Float](x, w, bias *Of[T], stride, pad int) *Of[T] {
	if len(x.shape) != 3 || len(w.shape) != 3 || x.shape[0] != w.shape[0] {
		panic(fmt.Sprintf("tensor: DepthwiseConv shapes x=%v w=%v", x.shape, w.shape))
	}
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	out := NewOf[T](c, oh, ow)
	DepthwiseConvInto(out, x, w, bias, stride, pad)
	return out
}

// DepthwiseConvInto is DepthwiseConv writing into a caller-owned [C,OH,OW]
// tensor (every element assigned, no zeroing needed).
func DepthwiseConvInto[T Float](dst, x, w, bias *Of[T], stride, pad int) {
	if len(x.shape) != 3 || len(w.shape) != 3 || x.shape[0] != w.shape[0] {
		panic(fmt.Sprintf("tensor: DepthwiseConvInto shapes x=%v w=%v", x.shape, w.shape))
	}
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	if len(dst.shape) != 3 || dst.shape[0] != c || dst.shape[1] != oh || dst.shape[2] != ow {
		panic(fmt.Sprintf("tensor: DepthwiseConvInto dst shape %v, want [%d %d %d]", dst.shape, c, oh, ow))
	}
	if c*kh*kw*oh*ow < minParallelMACs || parallel.Workers() <= 1 {
		depthwiseChannels(dst, x, w, bias, 0, c, h, wd, kh, kw, oh, ow, stride, pad)
		return
	}
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		depthwiseChannels(dst, x, w, bias, lo, hi, h, wd, kh, kw, oh, ow, stride, pad)
	})
}

// depthwiseChannels convolves channels [lo,hi); each channel reads and writes
// only its own planes, so shards are disjoint.
func depthwiseChannels[T Float](out, x, w, bias *Of[T], lo, hi, h, wd, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		in := x.data[ci*h*wd : (ci+1)*h*wd]
		ker := w.data[ci*kh*kw : (ci+1)*kh*kw]
		dst := out.data[ci*oh*ow : (ci+1)*oh*ow]
		var b T
		if bias != nil {
			b = bias.data[ci]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := b
				for ki := 0; ki < kh; ki++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					for kj := 0; kj < kw; kj++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= wd {
							continue
						}
						s += in[iy*wd+ix] * ker[ki*kw+kj]
					}
				}
				dst[oy*ow+ox] = s
			}
		}
	}
}

// DepthwiseConvGrads computes the input and weight gradients of DepthwiseConv
// given the upstream gradient gy [C,OH,OW]. Returned gradients match the
// shapes of x and w. The bias gradient (per-channel sum of gy) is returned
// last.
func DepthwiseConvGrads[T Float](x, w, gy *Of[T], stride, pad int) (gx, gw, gb *Of[T]) {
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	gx = NewOf[T](c, h, wd)
	gw = NewOf[T](c, kh, kw)
	gb = NewOf[T](c)
	DepthwiseConvGradsInto(gx, gw, gb, x, w, gy, stride, pad)
	return gx, gw, gb
}

// DepthwiseConvGradsInto is DepthwiseConvGrads accumulating into caller-owned
// gradient tensors. gx and gw are zeroed first (the kernel accumulates into
// them); gb is fully assigned. Shapes must match x, w and [C].
func DepthwiseConvGradsInto[T Float](gx, gw, gb, x, w, gy *Of[T], stride, pad int) {
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	oh, ow := gy.shape[1], gy.shape[2]
	if !gx.SameShape(x) || !gw.SameShape(w) || gb.Len() != c {
		panic(fmt.Sprintf("tensor: DepthwiseConvGradsInto gradient shapes gx=%v gw=%v gb=%v", gx.shape, gw.shape, gb.shape))
	}
	gx.Zero()
	gw.Zero()
	// All three gradients are per-channel, so channel shards write disjoint
	// regions of gx, gw and gb.
	if 2*c*kh*kw*oh*ow < minParallelMACs || parallel.Workers() <= 1 {
		depthwiseGradChannels(gx, gw, gb, x, w, gy, 0, c, h, wd, kh, kw, oh, ow, stride, pad)
		return
	}
	parallel.For(c, channelGrain(2*kh*kw*oh*ow), func(lo, hi int) {
		depthwiseGradChannels(gx, gw, gb, x, w, gy, lo, hi, h, wd, kh, kw, oh, ow, stride, pad)
	})
}

// depthwiseGradChannels computes the depthwise gradients for channels [lo,hi).
func depthwiseGradChannels[T Float](gx, gw, gb, x, w, gy *Of[T], lo, hi, h, wd, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		in := x.data[ci*h*wd : (ci+1)*h*wd]
		ker := w.data[ci*kh*kw : (ci+1)*kh*kw]
		g := gy.data[ci*oh*ow : (ci+1)*oh*ow]
		gin := gx.data[ci*h*wd : (ci+1)*h*wd]
		gker := gw.data[ci*kh*kw : (ci+1)*kh*kw]
		var bsum T
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gv := g[oy*ow+ox]
				bsum += gv
				if gv == 0 {
					continue
				}
				for ki := 0; ki < kh; ki++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					for kj := 0; kj < kw; kj++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= wd {
							continue
						}
						gin[iy*wd+ix] += gv * ker[ki*kw+kj]
						gker[ki*kw+kj] += gv * in[iy*wd+ix]
					}
				}
			}
		}
		gb.data[ci] = bsum
	}
}

// AvgPool performs average pooling over non-overlapping k×k windows of a
// [C,H,W] tensor (stride = k). H and W must be divisible by k.
func AvgPool[T Float](x *Of[T], k int) *Of[T] {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("tensor: AvgPool %v not divisible by %d", x.shape, k))
	}
	oh, ow := h/k, w/k
	out := NewOf[T](c, oh, ow)
	inv := 1 / T(k*k)
	for ci := 0; ci < c; ci++ {
		in := x.data[ci*h*w:]
		dst := out.data[ci*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s T
				for ky := 0; ky < k; ky++ {
					row := in[(oy*k+ky)*w+ox*k:]
					for kx := 0; kx < k; kx++ {
						s += row[kx]
					}
				}
				dst[oy*ow+ox] = s * inv
			}
		}
	}
	return out
}

// GlobalAvgPool averages each channel plane of a [C,H,W] tensor to a [C]
// vector.
func GlobalAvgPool[T Float](x *Of[T]) *Of[T] {
	out := NewOf[T](x.shape[0])
	GlobalAvgPoolInto(out, x)
	return out
}

// GlobalAvgPoolInto is GlobalAvgPool writing into a caller-owned [C] vector.
func GlobalAvgPoolInto[T Float](dst, x *Of[T]) {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	if dst.Len() != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPoolInto dst shape %v, want [%d]", dst.shape, c))
	}
	inv := 1 / T(h*w)
	for ci := 0; ci < c; ci++ {
		var s T
		for _, v := range x.data[ci*h*w : (ci+1)*h*w] {
			s += v
		}
		dst.data[ci] = s * inv
	}
}

// GlobalAvgPoolRowsInto pools each [C,H,W] tensor of xs into the matching row
// of dst ([len(xs), C]), sharding samples across the worker pool. Every
// sample writes only its own row with the exact serial-pool loop, so results
// are bit-identical to per-sample GlobalAvgPool at any worker count. It is
// the batched-evaluation entry point of the MLP head.
func GlobalAvgPoolRowsInto[T Float](dst *Of[T], xs []*Of[T]) {
	if len(dst.shape) != 2 || dst.shape[0] != len(xs) {
		panic(fmt.Sprintf("tensor: GlobalAvgPoolRowsInto dst shape %v for %d samples", dst.shape, len(xs)))
	}
	if len(xs) == 0 {
		return
	}
	c := dst.shape[1]
	per := xs[0].Len()
	if len(xs)*per < minParallelMACs || parallel.Workers() <= 1 {
		gapRows(dst, xs, c, 0, len(xs))
		return
	}
	parallel.For(len(xs), rowGrain(per), func(lo, hi int) {
		gapRows(dst, xs, c, lo, hi)
	})
}

// gapRows pools samples [lo,hi) into their rows of dst.
func gapRows[T Float](dst *Of[T], xs []*Of[T], c, lo, hi int) {
	for i := lo; i < hi; i++ {
		x := xs[i]
		if len(x.shape) != 3 || x.shape[0] != c {
			panic(fmt.Sprintf("tensor: GlobalAvgPoolRowsInto sample %d shape %v, want [%d,H,W]", i, x.shape, c))
		}
		h, w := x.shape[1], x.shape[2]
		inv := 1 / T(h*w)
		row := dst.data[i*c : (i+1)*c]
		for ci := 0; ci < c; ci++ {
			var s T
			for _, v := range x.data[ci*h*w : (ci+1)*h*w] {
				s += v
			}
			row[ci] = s * inv
		}
	}
}
