package tensor

import (
	"fmt"

	"chameleon/internal/parallel"
)

// ConvOut returns the output spatial size of a convolution with the given
// input size, kernel, stride and symmetric padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// channelGrain returns the minimum channels per parallel chunk so each chunk
// carries at least minParallelMACs of work; the conv kernels shard over
// channels because every channel writes a disjoint region, keeping parallel
// results bit-identical to the serial loop.
func channelGrain(perChannel int) int {
	if perChannel <= 0 {
		return 1
	}
	g := minParallelMACs / perChannel
	if g < 1 {
		g = 1
	}
	return g
}

// Im2Col lowers a single-image [C,H,W] tensor into a [C*KH*KW, OH*OW] matrix
// so a convolution becomes a GEMM with the [OC, C*KH*KW] weight matrix.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col on shape %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(c*kh*kw, oh*ow)
	col := out.data
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		im2colChannels(col, x.data, lo, hi, h, w, kh, kw, oh, ow, stride, pad)
	})
	return out
}

// im2colChannels lowers channels [lo,hi): each channel owns rows
// [ci*kh*kw, (ci+1)*kh*kw) of the column matrix, so shards are disjoint.
func im2colChannels(col, data []float32, lo, hi, h, w, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		plane := data[ci*h*w : (ci+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				rowBase := ((ci*kh+ki)*kw + kj) * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue // leave zeros
					}
					src := plane[iy*w:]
					dst := col[rowBase+oy*ow:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kj
						if ix >= 0 && ix < w {
							dst[ox] = src[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a [C*KH*KW, OH*OW] column
// matrix back into a [C,H,W] image, accumulating overlapping contributions.
// It is the building block of convolution input gradients.
func Col2Im(col *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if len(col.shape) != 2 || col.shape[0] != c*kh*kw || col.shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match c=%d h=%d w=%d k=%dx%d s=%d p=%d",
			col.shape, c, h, w, kh, kw, stride, pad))
	}
	out := New(c, h, w)
	// Each channel scatters only into its own [h,w] plane, so channel shards
	// are disjoint and the accumulation order within a plane is the serial
	// loop's order at any worker count.
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			plane := out.data[ci*h*w : (ci+1)*h*w]
			for ki := 0; ki < kh; ki++ {
				for kj := 0; kj < kw; kj++ {
					rowBase := ((ci*kh+ki)*kw + kj) * oh * ow
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride - pad + ki
						if iy < 0 || iy >= h {
							continue
						}
						src := col.data[rowBase+oy*ow:]
						dst := plane[iy*w:]
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride - pad + kj
							if ix >= 0 && ix < w {
								dst[ix] += src[ox]
							}
						}
					}
				}
			}
		}
	})
	return out
}

// DepthwiseConv applies a per-channel [C,KH,KW] filter bank to a [C,H,W]
// input with the given stride/padding, returning [C,OH,OW]. bias may be nil
// or a [C] tensor.
func DepthwiseConv(x, w, bias *Tensor, stride, pad int) *Tensor {
	if len(x.shape) != 3 || len(w.shape) != 3 || x.shape[0] != w.shape[0] {
		panic(fmt.Sprintf("tensor: DepthwiseConv shapes x=%v w=%v", x.shape, w.shape))
	}
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	out := New(c, oh, ow)
	parallel.For(c, channelGrain(kh*kw*oh*ow), func(lo, hi int) {
		depthwiseChannels(out, x, w, bias, lo, hi, h, wd, kh, kw, oh, ow, stride, pad)
	})
	return out
}

// depthwiseChannels convolves channels [lo,hi); each channel reads and writes
// only its own planes, so shards are disjoint.
func depthwiseChannels(out, x, w, bias *Tensor, lo, hi, h, wd, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		in := x.data[ci*h*wd : (ci+1)*h*wd]
		ker := w.data[ci*kh*kw : (ci+1)*kh*kw]
		dst := out.data[ci*oh*ow : (ci+1)*oh*ow]
		var b float32
		if bias != nil {
			b = bias.data[ci]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := b
				for ki := 0; ki < kh; ki++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					for kj := 0; kj < kw; kj++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= wd {
							continue
						}
						s += in[iy*wd+ix] * ker[ki*kw+kj]
					}
				}
				dst[oy*ow+ox] = s
			}
		}
	}
}

// DepthwiseConvGrads computes the input and weight gradients of DepthwiseConv
// given the upstream gradient gy [C,OH,OW]. Returned gradients match the
// shapes of x and w. The bias gradient (per-channel sum of gy) is returned
// last.
func DepthwiseConvGrads(x, w, gy *Tensor, stride, pad int) (gx, gw, gb *Tensor) {
	c, h, wd := x.shape[0], x.shape[1], x.shape[2]
	kh, kw := w.shape[1], w.shape[2]
	oh, ow := gy.shape[1], gy.shape[2]
	gx = New(c, h, wd)
	gw = New(c, kh, kw)
	gb = New(c)
	// All three gradients are per-channel, so channel shards write disjoint
	// regions of gx, gw and gb.
	parallel.For(c, channelGrain(2*kh*kw*oh*ow), func(lo, hi int) {
		depthwiseGradChannels(gx, gw, gb, x, w, gy, lo, hi, h, wd, kh, kw, oh, ow, stride, pad)
	})
	return gx, gw, gb
}

// depthwiseGradChannels computes the depthwise gradients for channels [lo,hi).
func depthwiseGradChannels(gx, gw, gb, x, w, gy *Tensor, lo, hi, h, wd, kh, kw, oh, ow, stride, pad int) {
	for ci := lo; ci < hi; ci++ {
		in := x.data[ci*h*wd : (ci+1)*h*wd]
		ker := w.data[ci*kh*kw : (ci+1)*kh*kw]
		g := gy.data[ci*oh*ow : (ci+1)*oh*ow]
		gin := gx.data[ci*h*wd : (ci+1)*h*wd]
		gker := gw.data[ci*kh*kw : (ci+1)*kh*kw]
		var bsum float32
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gv := g[oy*ow+ox]
				bsum += gv
				if gv == 0 {
					continue
				}
				for ki := 0; ki < kh; ki++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					for kj := 0; kj < kw; kj++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= wd {
							continue
						}
						gin[iy*wd+ix] += gv * ker[ki*kw+kj]
						gker[ki*kw+kj] += gv * in[iy*wd+ix]
					}
				}
			}
		}
		gb.data[ci] = bsum
	}
}

// AvgPool performs average pooling over non-overlapping k×k windows of a
// [C,H,W] tensor (stride = k). H and W must be divisible by k.
func AvgPool(x *Tensor, k int) *Tensor {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("tensor: AvgPool %v not divisible by %d", x.shape, k))
	}
	oh, ow := h/k, w/k
	out := New(c, oh, ow)
	inv := 1 / float32(k*k)
	for ci := 0; ci < c; ci++ {
		in := x.data[ci*h*w:]
		dst := out.data[ci*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < k; ky++ {
					row := in[(oy*k+ky)*w+ox*k:]
					for kx := 0; kx < k; kx++ {
						s += row[kx]
					}
				}
				dst[oy*ow+ox] = s * inv
			}
		}
	}
	return out
}

// GlobalAvgPool averages each channel plane of a [C,H,W] tensor to a [C]
// vector.
func GlobalAvgPool(x *Tensor) *Tensor {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	out := New(c)
	inv := 1 / float32(h*w)
	for ci := 0; ci < c; ci++ {
		var s float32
		for _, v := range x.data[ci*h*w : (ci+1)*h*w] {
			s += v
		}
		out.data[ci] = s * inv
	}
	return out
}
