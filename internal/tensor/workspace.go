package tensor

// WorkspaceOf recycles tensors through size-bucketed free lists so
// steady-state training and evaluation loops stop allocating. Buckets are
// keyed by element count: a returned tensor can be handed back out under any
// shape with the same number of elements, which is exactly what the layer
// scratch buffers need (an [N,C] eval matrix one call, an [N*C] flat buffer
// the next).
//
// A workspace is deliberately unsynchronised. It is owned by exactly one
// learner (one goroutine) — the single-owner rule of DESIGN.md §11 — so the
// hot path pays no atomic operations. Do not share one workspace across
// goroutines; give each worker its own.
//
// The nil workspace is valid and means "no pooling": Get falls back to a
// fresh allocation and Put is a no-op, so layers can thread an optional
// workspace without branching at every call site.
type WorkspaceOf[T Float] struct {
	free map[int][]*Of[T]
}

// Workspace is the fast-tier (float32) workspace every hot path uses.
type Workspace = WorkspaceOf[float32]

// NewWorkspace returns an empty fast-tier workspace.
func NewWorkspace() *Workspace { return NewWorkspaceOf[float32]() }

// NewWorkspaceOf returns an empty workspace for the given tier.
func NewWorkspaceOf[T Float]() *WorkspaceOf[T] {
	return &WorkspaceOf[T]{free: map[int][]*Of[T]{}}
}

// Get returns a tensor of the given shape, reusing a pooled tensor of the
// same element count when one is available. The contents are unspecified —
// callers that need zeros must call Zero (or GetZeroed). After warm-up a
// Get/Put cycle performs no heap allocations.
func (w *WorkspaceOf[T]) Get(shape ...int) *Of[T] {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Workspace.Get")
		}
		n *= d
	}
	var t *Of[T]
	if w != nil {
		if list := w.free[n]; len(list) > 0 {
			t = list[len(list)-1]
			list[len(list)-1] = nil
			w.free[n] = list[:len(list)-1]
		}
	}
	if t == nil {
		// Deliberately not NewOf(shape...): referencing the variadic slice from
		// an escaping call would force every Get to heap-allocate its argument.
		t = &Of[T]{shape: make([]int, 0, len(shape)), data: make([]T, n)}
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// GetZeroed is Get followed by Zero.
func (w *WorkspaceOf[T]) GetZeroed(shape ...int) *Of[T] {
	t := w.Get(shape...)
	t.Zero()
	return t
}

// Put returns t to the pool for reuse by a later Get of the same element
// count. The caller must not use t (or any view sharing its storage) after
// Put — the single-owner rule. Putting nil, or putting into a nil workspace,
// is a no-op.
func (w *WorkspaceOf[T]) Put(t *Of[T]) {
	if w == nil || t == nil {
		return
	}
	w.free[len(t.data)] = append(w.free[len(t.data)], t)
}
