package tensor

import (
	"math/rand"
	"testing"

	"chameleon/internal/parallel"
)

// withWorkers runs fn under a fixed worker budget, restoring the default.
func withWorkers(n int, fn func()) {
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

// bitEqual reports whether two tensors are bit-identical (NaN-safe: compares
// float32 values with ==, which the deterministic kernels must satisfy; the
// random inputs here contain no NaNs).
func bitEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			return false
		}
	}
	return true
}

// sparsify zeroes a fraction of elements so the zero-skip fast paths are
// exercised on both the serial and parallel sides.
func sparsify(rng *rand.Rand, t *Tensor, frac float64) {
	for i := range t.Data() {
		if rng.Float64() < frac {
			t.Data()[i] = 0
		}
	}
}

// TestMatMulParallelEquivalence asserts every GEMM/GEMV variant is
// bit-identical at workers=1 vs workers=8 across a sweep of shapes spanning
// both sides of the parallel threshold.
func TestMatMulParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {64, 48, 80}, {128, 128, 128}, {200, 64, 150}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := RandNormal(rng, 1, m, k)
		b := RandNormal(rng, 1, k, n)
		at := RandNormal(rng, 1, k, m)
		bt := RandNormal(rng, 1, n, k)
		x := RandNormal(rng, 1, k)
		sparsify(rng, a, 0.3)
		sparsify(rng, at, 0.3)

		var s1, s2, t1a, t1b, t2a, t2b, v1, v2 *Tensor
		withWorkers(1, func() {
			s1 = MatMul(a, b)
			t1a = MatMulT1(at, b)
			t2a = MatMulT2(a, bt)
			v1 = MatVec(a, x)
		})
		withWorkers(8, func() {
			s2 = MatMul(a, b)
			t1b = MatMulT1(at, b)
			t2b = MatMulT2(a, bt)
			v2 = MatVec(a, x)
		})
		if !bitEqual(s1, s2) {
			t.Errorf("MatMul %v not bit-identical across worker counts", sh)
		}
		if !bitEqual(t1a, t1b) {
			t.Errorf("MatMulT1 %v not bit-identical across worker counts", sh)
		}
		if !bitEqual(t2a, t2b) {
			t.Errorf("MatMulT2 %v not bit-identical across worker counts", sh)
		}
		if !bitEqual(v1, v2) {
			t.Errorf("MatVec %v not bit-identical across worker counts", sh)
		}
	}
}

// TestMatMulIntoMatchesMatMul asserts the buffer-reusing variants equal their
// allocating counterparts, including when dst holds stale garbage.
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 33, 21, 17
	a := RandNormal(rng, 1, m, k)
	b := RandNormal(rng, 1, k, n)
	at := RandNormal(rng, 1, k, m)
	bt := RandNormal(rng, 1, n, k)
	x := RandNormal(rng, 1, k)

	dst := Full(99, m, n)
	MatMulInto(dst, a, b)
	if !bitEqual(dst, MatMul(a, b)) {
		t.Error("MatMulInto != MatMul")
	}
	dst.Fill(-5)
	MatMulT1Into(dst, at, b)
	if !bitEqual(dst, MatMulT1(at, b)) {
		t.Error("MatMulT1Into != MatMulT1")
	}
	dst.Fill(3)
	MatMulT2Into(dst, a, bt)
	if !bitEqual(dst, MatMulT2(a, bt)) {
		t.Error("MatMulT2Into != MatMulT2")
	}
	v := Full(1, m)
	MatVecInto(v, a, x)
	if !bitEqual(v, MatVec(a, x)) {
		t.Error("MatVecInto != MatVec")
	}
}

// TestMatMulT2ZeroSkip asserts the sparsity fast path does not change dense
// semantics: a row of exact zeros contributes exactly zero.
func TestMatMulT2ZeroSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandNormal(rng, 1, 4, 6)
	bt := RandNormal(rng, 1, 5, 6)
	for i := 0; i < 6; i++ {
		a.Set(0, 2, i) // zero out row 2
	}
	out := MatMulT2(a, bt)
	for j := 0; j < 5; j++ {
		if out.At(2, j) != 0 {
			t.Fatalf("zero row produced %v at col %d", out.At(2, j), j)
		}
	}
}

// TestConvParallelEquivalence asserts the conv kernels are bit-identical at
// workers=1 vs workers=8.
func TestConvParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []int{1, 3, 16, 64} {
		x := RandNormal(rng, 1, c, 13, 13)
		w := RandNormal(rng, 1, c, 3, 3)
		bias := RandNormal(rng, 1, c)
		col := Im2Col(x, 3, 3, 2, 1)
		gy := RandNormal(rng, 1, c, ConvOut(13, 3, 2, 1), ConvOut(13, 3, 2, 1))

		type outs struct{ col, im, dw, gx, gw, gb *Tensor }
		run := func() outs {
			var o outs
			o.col = Im2Col(x, 3, 3, 2, 1)
			o.im = Col2Im(col, c, 13, 13, 3, 3, 2, 1)
			o.dw = DepthwiseConv(x, w, bias, 2, 1)
			o.gx, o.gw, o.gb = DepthwiseConvGrads(x, w, gy, 2, 1)
			return o
		}
		var serial, par outs
		withWorkers(1, func() { serial = run() })
		withWorkers(8, func() { par = run() })
		for name, pair := range map[string][2]*Tensor{
			"Im2Col":             {serial.col, par.col},
			"Col2Im":             {serial.im, par.im},
			"DepthwiseConv":      {serial.dw, par.dw},
			"DepthwiseConvGx":    {serial.gx, par.gx},
			"DepthwiseConvGw":    {serial.gw, par.gw},
			"DepthwiseConvGbias": {serial.gb, par.gb},
		} {
			if !bitEqual(pair[0], pair[1]) {
				t.Errorf("%s c=%d not bit-identical across worker counts", name, c)
			}
		}
	}
}
