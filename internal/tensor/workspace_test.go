package tensor

import (
	"math/rand"
	"testing"

	"chameleon/internal/parallel"
	"chameleon/internal/race"
)

func TestWorkspaceRecyclesByElementCount(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(2, 3)
	ad := a.Data()
	for i := range ad {
		ad[i] = float32(i + 1)
	}
	ws.Put(a)
	// Same element count, different shape: must reuse the same storage.
	b := ws.Get(6)
	if &b.Data()[0] != &ad[0] {
		t.Fatal("Get after Put did not recycle the buffer")
	}
	if b.NDim() != 1 || b.Dim(0) != 6 {
		t.Fatalf("recycled tensor shape = %v, want [6]", b.Shape())
	}
	// Contents are unspecified after Get — GetZeroed must clear them.
	ws.Put(b)
	c := ws.GetZeroed(3, 2)
	for _, v := range c.Data() {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}
}

func TestWorkspaceDistinctSizesDoNotAlias(t *testing.T) {
	ws := NewWorkspace()
	a, b := ws.Get(4), ws.Get(8)
	ws.Put(a)
	ws.Put(b)
	if got := ws.Get(8); &got.Data()[0] != &b.Data()[0] {
		t.Fatal("size-8 Get should come from the size-8 bucket")
	}
}

func TestWorkspaceNilIsNoPooling(t *testing.T) {
	var ws *Workspace
	a := ws.Get(3)
	if a.Len() != 3 {
		t.Fatalf("nil-workspace Get gave %v", a.Shape())
	}
	ws.Put(a) // must not panic
	b := ws.Get(3)
	if &b.Data()[0] == &a.Data()[0] {
		t.Fatal("nil workspace must not pool")
	}
}

func TestAllocsWorkspaceGetPut(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	ws := NewWorkspace()
	ws.Put(ws.Get(16, 4)) // warm the bucket
	got := testing.AllocsPerRun(100, func() {
		x := ws.Get(4, 16)
		ws.Put(x)
	})
	if got != 0 {
		t.Fatalf("Get/Put cycle allocates %.0f times, want 0", got)
	}
}

func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandNormal(rng, 2, 17)
	want := Softmax(x)
	dst := New(17)
	dst.Data()[3] = 42 // dirty, must be overwritten
	SoftmaxInto(dst, x)
	for i, v := range dst.Data() {
		if v != want.Data()[i] {
			t.Fatalf("SoftmaxInto[%d] = %v, want %v", i, v, want.Data()[i])
		}
	}
	lw := LogSoftmax(x)
	ldst := New(17)
	LogSoftmaxInto(ldst, x)
	for i, v := range ldst.Data() {
		if v != lw.Data()[i] {
			t.Fatalf("LogSoftmaxInto[%d] = %v, want %v", i, v, lw.Data()[i])
		}
	}
}

// TestIm2ColCol2ImScratchReuseFuzz drives the lowering kernels through a
// workspace-recycled (dirty) destination across randomized shapes, strides,
// pads and worker counts, asserting bit-identity with the allocation-fresh
// forms. This is the contract that lets conv layers keep one scratch buffer
// alive across training steps.
func TestIm2ColCol2ImScratchReuseFuzz(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(23))
	ws := NewWorkspace()
	for iter := 0; iter < 60; iter++ {
		kh := 1 + rng.Intn(3)
		kw := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(3)
		c := 1 + rng.Intn(4)
		h := kh + rng.Intn(7)
		w := kw + rng.Intn(7)
		parallel.SetWorkers(1 + rng.Intn(4))

		x := RandNormal(rng, 1, c, h, w)
		fresh := Im2Col(x, kh, kw, stride, pad)
		dst := ws.Get(fresh.Dim(0), fresh.Dim(1))
		for i := range dst.Data() {
			dst.Data()[i] = -999 // poison: Into must fully overwrite, pad included
		}
		Im2ColInto(dst, x, kh, kw, stride, pad)
		for i, v := range dst.Data() {
			if v != fresh.Data()[i] {
				t.Fatalf("iter %d (c=%d h=%d w=%d k=%dx%d s=%d p=%d): Im2ColInto[%d] = %v, want %v",
					iter, c, h, w, kh, kw, stride, pad, i, v, fresh.Data()[i])
			}
		}

		col := RandNormal(rng, 1, fresh.Dim(0), fresh.Dim(1))
		freshIm := Col2Im(col, c, h, w, kh, kw, stride, pad)
		dim := ws.Get(c, h, w)
		for i := range dim.Data() {
			dim.Data()[i] = 999
		}
		Col2ImInto(dim, col, kh, kw, stride, pad)
		for i, v := range dim.Data() {
			if v != freshIm.Data()[i] {
				t.Fatalf("iter %d (c=%d h=%d w=%d k=%dx%d s=%d p=%d): Col2ImInto[%d] = %v, want %v",
					iter, c, h, w, kh, kw, stride, pad, i, v, freshIm.Data()[i])
			}
		}
		ws.Put(dst)
		ws.Put(dim)
	}
}
