package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o elementwise as a new tensor.
func Add[T Float](t, o *Of[T]) *Of[T] {
	checkSame("Add", t, o)
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] += v
	}
	return out
}

// Sub returns t - o elementwise as a new tensor.
func Sub[T Float](t, o *Of[T]) *Of[T] {
	checkSame("Sub", t, o)
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns t * o elementwise as a new tensor.
func Mul[T Float](t, o *Of[T]) *Of[T] {
	checkSame("Mul", t, o)
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] *= v
	}
	return out
}

// AddInPlace adds o into t elementwise.
func (t *Of[T]) AddInPlace(o *Of[T]) {
	checkSame("AddInPlace", t, o)
	for i, v := range o.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts o from t elementwise.
func (t *Of[T]) SubInPlace(o *Of[T]) {
	checkSame("SubInPlace", t, o)
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element by s in place.
func (t *Of[T]) Scale(s T) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled performs t += s*o (axpy).
func (t *Of[T]) AddScaled(s T, o *Of[T]) {
	checkSame("AddScaled", t, o)
	for i, v := range o.data {
		t.data[i] += s * v
	}
}

// Dot returns the inner product of two tensors of equal element count.
func Dot[T Float](a, b *Of[T]) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	var s float64
	for i, v := range a.data {
		s += float64(v) * float64(b.data[i])
	}
	return s
}

// Norm2 returns the L2 norm of the tensor.
func (t *Of[T]) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements in float64 precision.
func (t *Of[T]) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the mean of all elements, or 0 for an empty tensor.
func (t *Of[T]) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// ArgMax returns the index of the maximum element of a 1-D tensor (or the
// flattened tensor). Ties resolve to the lowest index.
func (t *Of[T]) ArgMax() int {
	best, bi := T(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgMaxRows returns, for a [N, C] tensor, the argmax of each row.
func (t *Of[T]) ArgMaxRows() []int {
	out := make([]int, t.shape[0])
	t.ArgMaxRowsInto(out)
	return out
}

// ArgMaxRowsInto writes the per-row argmax of a [N, C] tensor into out, which
// must have exactly N elements. It is the allocation-free sibling of
// ArgMaxRows for batched prediction loops.
func (t *Of[T]) ArgMaxRowsInto(out []int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRowsInto on shape %v", t.shape))
	}
	n, c := t.shape[0], t.shape[1]
	if len(out) != n {
		panic(fmt.Sprintf("tensor: ArgMaxRowsInto out length %d, want %d", len(out), n))
	}
	for i := 0; i < n; i++ {
		row := t.data[i*c : (i+1)*c]
		best, bi := T(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
}

// Softmax returns softmax over the last dimension of a 1-D or 2-D tensor.
func Softmax[T Float](t *Of[T]) *Of[T] {
	out := NewOf[T](t.shape...)
	SoftmaxInto(out, t)
	return out
}

// SoftmaxInto computes softmax over the last dimension of a 1-D or 2-D tensor
// into dst, which must have t's element count. dst == t is allowed (in-place).
func SoftmaxInto[T Float](dst, t *Of[T]) {
	if len(dst.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: SoftmaxInto dst size %v, want %v", dst.shape, t.shape))
	}
	switch len(t.shape) {
	case 1:
		softmaxRow(dst.data, t.data)
	case 2:
		c := t.shape[1]
		for i := 0; i < t.shape[0]; i++ {
			softmaxRow(dst.data[i*c:(i+1)*c], t.data[i*c:(i+1)*c])
		}
	default:
		panic(fmt.Sprintf("tensor: SoftmaxInto on shape %v", t.shape))
	}
}

func softmaxRow[T Float](dst, src []T) {
	mx := T(math.Inf(-1))
	for _, v := range src {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range src {
		e := T(math.Exp(float64(v - mx)))
		dst[i] = e
		sum += float64(e)
	}
	inv := T(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSoftmax returns log-softmax over the last dimension of a 1-D or 2-D
// tensor, computed stably.
func LogSoftmax[T Float](t *Of[T]) *Of[T] {
	out := NewOf[T](t.shape...)
	LogSoftmaxInto(out, t)
	return out
}

// LogSoftmaxInto computes log-softmax over the last dimension of a 1-D or 2-D
// tensor into dst, which must have t's element count. dst == t is allowed:
// both row kernels read src element-wise before the matching write.
func LogSoftmaxInto[T Float](dst, t *Of[T]) {
	if len(dst.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: LogSoftmaxInto dst size %v, want %v", dst.shape, t.shape))
	}
	switch len(t.shape) {
	case 1:
		logSoftmaxRow(dst.data, t.data)
	case 2:
		c := t.shape[1]
		for i := 0; i < t.shape[0]; i++ {
			logSoftmaxRow(dst.data[i*c:(i+1)*c], t.data[i*c:(i+1)*c])
		}
	default:
		panic(fmt.Sprintf("tensor: LogSoftmaxInto on shape %v", t.shape))
	}
}

func logSoftmaxRow[T Float](dst, src []T) {
	mx := T(math.Inf(-1))
	for _, v := range src {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for _, v := range src {
		sum += math.Exp(float64(v - mx))
	}
	lse := mx + T(math.Log(sum))
	for i, v := range src {
		dst[i] = v - lse
	}
}

// KLDivergence returns KL(p || q) for two probability vectors of equal
// length. Probabilities below eps are clamped to keep the result finite.
func KLDivergence[T Float](p, q []T) float64 {
	if len(p) != len(q) {
		panic("tensor: KLDivergence length mismatch")
	}
	const eps = 1e-8
	var kl float64
	for i := range p {
		pi := math.Max(float64(p[i]), eps)
		qi := math.Max(float64(q[i]), eps)
		kl += pi * math.Log(pi/qi)
	}
	if kl < 0 {
		kl = 0 // numerical floor: KL is non-negative
	}
	return kl
}

// Concat stacks tensors along a new leading dimension. All inputs must share
// a shape; the result has shape [len(ts), inputShape...].
func Concat[T Float](ts []*Of[T]) *Of[T] {
	if len(ts) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	first := ts[0]
	out := NewOf[T](append([]int{len(ts)}, first.shape...)...)
	sub := first.Len()
	for i, t := range ts {
		if !t.SameShape(first) {
			panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v", t.shape, first.shape))
		}
		copy(out.data[i*sub:(i+1)*sub], t.data)
	}
	return out
}

func checkSame[T Float](op string, a, b *Of[T]) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
