package tensor

// Float is the element-type constraint for the generic tensor core. The set
// is deliberately exact (no ~approximation): the gob codec and the dtype tags
// in checkpoint headers identify elements by concrete type, so named types
// with a float underlying type are excluded on purpose.
//
// float32 is the fast tier — the training hot path's default, half the memory
// bandwidth of float64 on every kernel. float64 is the reference tier used to
// cross-check the fast tier's numerics (see DESIGN.md "Precision tiers").
type Float interface {
	float32 | float64
}
