// Package tensor implements dense float tensors and the numeric kernels
// (matrix multiplication, im2col convolution, pooling, softmax) that the
// neural-network layers in internal/nn are built from.
//
// The core type Of[T] is generic over the Float constraint (float32 |
// float64). Tensor (= Of[float32]) is the fast tier every hot path uses;
// Tensor64 (= Of[float64]) is the reference tier kept for numeric
// cross-checks. Kernels are generic too, so both tiers run the exact same
// loop bodies — only the element width differs.
//
// Tensors are row-major. Convolutional data uses the NCHW layout:
// [batch, channels, height, width]. Large kernels shard their output across
// the worker pool in internal/parallel (rows for GEMM, channels for conv);
// each shard runs the identical serial loop over a disjoint output region, so
// results are bit-identical at every worker count, and ops below the
// size threshold stay on a goroutine-free serial fast path.
package tensor

import (
	"fmt"
	"math"
)

// Of is a dense, row-major tensor with elements of type T. The zero value is
// an empty tensor; use New/New64/NewOf or the construction helpers for
// anything useful.
type Of[T Float] struct {
	shape []int
	data  []T
}

// Tensor is the fast-tier tensor (float32 elements). All training and serving
// hot paths use this instantiation.
type Tensor = Of[float32]

// Tensor64 is the reference-tier tensor (float64 elements), used by the
// precision-parity tests and the fp64 shadow nets.
type Tensor64 = Of[float64]

// NewOf returns a zero-filled tensor of element type T with the given shape.
// It panics if any dimension is negative; a zero-dimensional call returns a
// scalar tensor with one element.
func NewOf[T Float](shape ...int) *Of[T] {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Of[T]{shape: append([]int(nil), shape...), data: make([]T, n)}
}

// New returns a zero-filled fast-tier (float32) tensor with the given shape.
func New(shape ...int) *Tensor { return NewOf[float32](shape...) }

// New64 returns a zero-filled reference-tier (float64) tensor.
func New64(shape ...int) *Tensor64 { return NewOf[float64](shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the shape
// implies.
func FromSlice[T Float](data []T, shape ...int) *Of[T] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Of[T]{shape: append([]int(nil), shape...), data: data}
}

// Full returns a fast-tier tensor of the given shape with every element set
// to v. (Kept concrete so untyped constant arguments stay float32; use FullOf
// for an explicit tier.)
func Full(v float32, shape ...int) *Tensor { return FullOf(v, shape...) }

// FullOf returns a tensor of the given shape with every element set to v.
func FullOf[T Float](v T, shape ...int) *Of[T] {
	t := NewOf[T](shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Of[T]) Shape() []int { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Of[T]) Data() []T { return t.data }

// Len returns the total number of elements.
func (t *Of[T]) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Of[T]) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Of[T]) NDim() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Of[T]) Clone() *Of[T] {
	c := &Of[T]{shape: append([]int(nil), t.shape...), data: make([]T, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same data with a new shape. The element
// count must match. One dimension may be -1, in which case it is inferred.
func (t *Of[T]) Reshape(shape ...int) *Of[T] {
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one -1 dimension in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Of[T]{shape: out, data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Of[T]) At(idx ...int) T { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Of[T]) Set(v T, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Of[T]) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Of[T]) SameShape(o *Of[T]) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to 0 in place.
func (t *Of[T]) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Of[T]) Fill(v T) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies o's data into t. Shapes must have equal element counts.
func (t *Of[T]) CopyFrom(o *Of[T]) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor.
func (t *Of[T]) Row(i int) *Of[T] {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-D tensor", len(t.shape)))
	}
	w := t.shape[1]
	return &Of[T]{shape: []int{w}, data: t.data[i*w : (i+1)*w]}
}

// Slice returns a view of sub-tensor i along the first dimension: for a
// [N, ...] tensor it yields the i-th [...] tensor sharing storage.
func (t *Of[T]) Slice(i int) *Of[T] {
	if len(t.shape) == 0 {
		panic("tensor: Slice on scalar")
	}
	n := t.shape[0]
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tensor: Slice index %d out of range %d", i, n))
	}
	sub := len(t.data) / n
	return &Of[T]{shape: append([]int(nil), t.shape[1:]...), data: t.data[i*sub : (i+1)*sub]}
}

// String implements fmt.Stringer with a compact shape/summary form.
func (t *Of[T]) String() string {
	mn, mx := T(math.Inf(1)), T(math.Inf(-1))
	var sum float64
	for _, v := range t.data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += float64(v)
	}
	mean := 0.0
	if len(t.data) > 0 {
		mean = sum / float64(len(t.data))
	}
	return fmt.Sprintf("Tensor%v[min=%.4g max=%.4g mean=%.4g]", t.shape, mn, mx, mean)
}

// Widen returns a reference-tier (float64) copy of a fast-tier tensor.
func Widen(t *Tensor) *Tensor64 {
	out := &Tensor64{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	for i, v := range t.data {
		out.data[i] = float64(v)
	}
	return out
}

// Narrow returns a fast-tier (float32) copy of a reference-tier tensor. Each
// element is rounded to nearest-even float32.
func Narrow(t *Tensor64) *Tensor {
	out := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	for i, v := range t.data {
		out.data[i] = float32(v)
	}
	return out
}
