// Package tensor implements dense float32 tensors and the numeric kernels
// (matrix multiplication, im2col convolution, pooling, softmax) that the
// neural-network layers in internal/nn are built from.
//
// Tensors are row-major. Convolutional data uses the NCHW layout:
// [batch, channels, height, width]. Large kernels shard their output across
// the worker pool in internal/parallel (rows for GEMM, channels for conv);
// each shard runs the identical serial loop over a disjoint output region, so
// results are bit-identical at every worker count, and ops below the
// size threshold stay on a goroutine-free serial fast path.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or the construction helpers for anything useful.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a zero-dimensional call returns a scalar tensor with
// one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the shape
// implies.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same data with a new shape. The element
// count must match. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one -1 dimension in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: out, data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies o's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-D tensor", len(t.shape)))
	}
	w := t.shape[1]
	return &Tensor{shape: []int{w}, data: t.data[i*w : (i+1)*w]}
}

// Slice returns a view of sub-tensor i along the first dimension: for a
// [N, ...] tensor it yields the i-th [...] tensor sharing storage.
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice on scalar")
	}
	n := t.shape[0]
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tensor: Slice index %d out of range %d", i, n))
	}
	sub := len(t.data) / n
	return &Tensor{shape: append([]int(nil), t.shape[1:]...), data: t.data[i*sub : (i+1)*sub]}
}

// String implements fmt.Stringer with a compact shape/summary form.
func (t *Tensor) String() string {
	mn, mx := float32(math.Inf(1)), float32(math.Inf(-1))
	var sum float64
	for _, v := range t.data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += float64(v)
	}
	mean := 0.0
	if len(t.data) > 0 {
		mean = sum / float64(len(t.data))
	}
	return fmt.Sprintf("Tensor%v[min=%.4g max=%.4g mean=%.4g]", t.shape, mn, mx, mean)
}
