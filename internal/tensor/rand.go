package tensor

import (
	"math"
	"math/rand"
)

// RandNormal fills a new tensor of the given shape with N(0, std²) samples
// drawn from rng.
func RandNormal(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor of the given shape with U(lo, hi) samples.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// HeNormal initialises a tensor with the He/Kaiming normal scheme,
// std = sqrt(2/fanIn), the standard initialisation for ReLU networks.
func HeNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	if fanIn <= 0 {
		fanIn = 1
	}
	return RandNormal(rng, math.Sqrt(2/float64(fanIn)), shape...)
}

// XavierUniform initialises a tensor with the Glorot uniform scheme,
// limit = sqrt(6/(fanIn+fanOut)).
func XavierUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	lim := math.Sqrt(6 / float64(fanIn+fanOut))
	return RandUniform(rng, -lim, lim, shape...)
}
