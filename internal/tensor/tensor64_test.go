package tensor

import (
	"math/rand"
	"testing"
)

// The reference-tier kernel suite: the same GEMM/GEMV/reduction kernels the
// fp32 tests cover, instantiated at float64 and checked against naive
// references at double-precision tolerance. The fp64 tier is the measuring
// stick for the fast tier (see internal/cl.Ref64), so its kernels get direct
// coverage rather than riding on the fp32 instantiation — the generic body is
// shared, but the fp64 gcshape skips every fast32 dispatch and must be
// correct on its own. check.sh names this file's tests in the precision gate.

func randOf64(rng *rand.Rand, shape ...int) *Tensor64 {
	t := NewOf[float64](shape...)
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64()
	}
	return t
}

func TestMatMul64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const m, k, n = 9, 31, 13
	a, b := randOf64(rng, m, k), randOf64(rng, k, n)
	got := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for p := 0; p < k; p++ {
				want += a.At(i, p) * b.At(p, j)
			}
			if d := got.At(i, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("[%d,%d] = %g, want %g", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMatMulT64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const m, k, n = 7, 19, 11
	a, b := randOf64(rng, m, k), randOf64(rng, k, n)
	at, bt := randOf64(rng, k, m), randOf64(rng, n, k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at.Set(a.At(j, i), i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt.Set(b.At(j, i), i, j)
		}
	}
	ref := MatMul(a, b)
	t1 := MatMulT1(at, b)
	t2 := MatMulT2(a, bt)
	for i := range ref.Data() {
		if d := t1.Data()[i] - ref.Data()[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("T1 element %d: %g vs %g", i, t1.Data()[i], ref.Data()[i])
		}
		if d := t2.Data()[i] - ref.Data()[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("T2 element %d: %g vs %g", i, t2.Data()[i], ref.Data()[i])
		}
	}
}

func TestMatVec64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m, k = 17, 29
	a, x := randOf64(rng, m, k), randOf64(rng, k)
	got := MatVec(a, x)
	for i := 0; i < m; i++ {
		var want float64
		for p := 0; p < k; p++ {
			want += a.At(i, p) * x.At(p)
		}
		if d := got.At(i) - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("[%d] = %g, want %g", i, got.At(i), want)
		}
	}
}

func TestReductions64(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, b := randOf64(rng, 40), randOf64(rng, 40)
	var dot, sum, sq float64
	for i, v := range a.Data() {
		dot += v * b.Data()[i]
		sum += v
		sq += v * v
	}
	if d := Dot(a, b) - dot; d > 1e-12 || d < -1e-12 {
		t.Fatalf("Dot = %g, want %g", Dot(a, b), dot)
	}
	if d := a.Sum() - sum; d > 1e-12 || d < -1e-12 {
		t.Fatalf("Sum = %g, want %g", a.Sum(), sum)
	}
	if got := a.Norm2() * a.Norm2(); got-sq > 1e-10 || got-sq < -1e-10 {
		t.Fatalf("Norm2² = %g, want %g", got, sq)
	}
}

func TestSoftmax64RowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := Softmax(randOf64(rng, 6, 10))
	for r := 0; r < 6; r++ {
		var sum float64
		for j := 0; j < 10; j++ {
			sum += s.At(r, j)
		}
		if sum-1 > 1e-12 || sum-1 < -1e-12 {
			t.Fatalf("row %d sums to %g", r, sum)
		}
	}
}

func TestInverse64(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	const n = 6
	a := randOf64(rng, n, n)
	for i := 0; i < n; i++ { // diagonal dominance keeps it well-conditioned
		a.Set(a.At(i, i)+float64(n), i, i)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := prod.At(i, j) - want; d > 1e-9 || d < -1e-9 {
				t.Fatalf("A·A⁻¹[%d,%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
}
