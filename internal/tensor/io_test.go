package tensor

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := RandNormal(rng, 2, 3, 4, 5)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(orig) {
		t.Fatalf("shape changed: %v vs %v", back.Shape(), orig.Shape())
	}
	for i, v := range orig.Data() {
		if back.Data()[i] != v {
			t.Fatal("data corrupted")
		}
	}
}

func TestGobRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		orig := FromSlice(vals, len(vals))
		raw, err := orig.GobEncode()
		if err != nil {
			return false
		}
		var back Tensor
		if back.GobDecode(raw) != nil {
			return false
		}
		for i, v := range vals {
			got := back.Data()[i]
			// NaN compares unequal to itself; accept bit-identical NaN.
			if got != v && !(got != got && v != v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGobDecodeRejectsGarbage(t *testing.T) {
	var tt Tensor
	if err := tt.GobDecode([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	// Claims 1 dim of size 10 but carries no data.
	if err := tt.GobDecode([]byte{1, 0, 0, 0, 10, 0, 0, 0}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
