package tensor

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := RandNormal(rng, 2, 3, 4, 5)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(orig) {
		t.Fatalf("shape changed: %v vs %v", back.Shape(), orig.Shape())
	}
	for i, v := range orig.Data() {
		if back.Data()[i] != v {
			t.Fatal("data corrupted")
		}
	}
}

func TestGobRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		orig := FromSlice(vals, len(vals))
		raw, err := orig.GobEncode()
		if err != nil {
			return false
		}
		var back Tensor
		if back.GobDecode(raw) != nil {
			return false
		}
		for i, v := range vals {
			got := back.Data()[i]
			// NaN compares unequal to itself; accept bit-identical NaN.
			if got != v && !(got != got && v != v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGobDtypeTagging pins the precision-tier wire contract: each tier
// round-trips under its own tag, and a payload written by one tier is
// rejected — not silently reinterpreted — by the other.
func TestGobDtypeTagging(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	t32 := RandNormal(rng, 3, 4)
	raw32, err := t32.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	t64 := FromSlice([]float64{1.5, -2.25, 1e-300}, 3)
	raw64, err := t64.GobEncode()
	if err != nil {
		t.Fatal(err)
	}

	var back64 Tensor64
	if err := back64.GobDecode(raw64); err != nil {
		t.Fatalf("fp64 round trip: %v", err)
	}
	for i, v := range t64.Data() {
		if back64.Data()[i] != v {
			t.Fatalf("fp64 element %d corrupted: %g vs %g", i, back64.Data()[i], v)
		}
	}

	var wrong32 Tensor
	err = wrong32.GobDecode(raw64)
	if err == nil {
		t.Fatal("fp64 payload accepted by fp32 decode")
	}
	if !strings.Contains(err.Error(), "float64") || !strings.Contains(err.Error(), "not interchangeable") {
		t.Fatalf("cross-tier error does not name the dtypes: %v", err)
	}
	var wrong64 Tensor64
	if err := wrong64.GobDecode(raw32); err == nil {
		t.Fatal("fp32 payload accepted by fp64 decode")
	}
}

// TestGobDecodeLegacyUntagged pins backward compatibility: payloads written
// before the dtype tag existed (PR ≤ 5 checkpoints and latent caches) start
// directly with ndim and must decode as float32 — and only float32.
func TestGobDecodeLegacyUntagged(t *testing.T) {
	le := binary.LittleEndian
	vals := []float32{0.5, -3, 42}
	legacy := make([]byte, 4+4+4*len(vals))
	le.PutUint32(legacy, 1) // ndim, no magic
	le.PutUint32(legacy[4:], uint32(len(vals)))
	for i, v := range vals {
		le.PutUint32(legacy[8+4*i:], math.Float32bits(v))
	}
	var back Tensor
	if err := back.GobDecode(legacy); err != nil {
		t.Fatalf("legacy fp32 payload rejected: %v", err)
	}
	for i, v := range vals {
		if back.Data()[i] != v {
			t.Fatalf("legacy element %d: %g, want %g", i, back.Data()[i], v)
		}
	}
	var t64 Tensor64
	if err := t64.GobDecode(legacy); err == nil {
		t.Fatal("legacy fp32 payload accepted by fp64 decode")
	}
}

func TestGobDecodeRejectsGarbage(t *testing.T) {
	var tt Tensor
	if err := tt.GobDecode([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	// Claims 1 dim of size 10 but carries no data.
	if err := tt.GobDecode([]byte{1, 0, 0, 0, 10, 0, 0, 0}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestGobDecodeRejectsHostileHeaders covers the corrupt-checkpoint attack
// surface: headers whose claimed rank or shape would overflow the element
// product or demand a huge allocation must fail cleanly — before allocating.
func TestGobDecodeRejectsHostileHeaders(t *testing.T) {
	le := binary.LittleEndian
	put := func(vals ...uint32) []byte {
		out := make([]byte, 4*len(vals))
		for i, v := range vals {
			le.PutUint32(out[4*i:], v)
		}
		return out
	}
	cases := map[string][]byte{
		// Rank far beyond anything representable.
		"huge ndim": put(1 << 30),
		// One giant dim (≈4 GiB requested) with a 4-byte data section.
		"huge dim": append(put(1, 0xFFFFFFFF), put(0)...),
		// Two dims whose product overflows int64 if multiplied naively.
		"overflow product": append(put(2, 0xFFFFFFFF, 0xFFFFFFFF), put(0)...),
		// Shape consistent with itself but not with the data section.
		"shape vs data mismatch": append(put(2, 3, 4), put(0, 0)...),
		// Zero dim followed by a huge dim: product is zero, but the trailing
		// bytes disagree with the zero-element claim.
		"zero then huge": append(put(2, 0, 0xFFFFFFFF), put(0, 0, 0)...),
	}
	for name, buf := range cases {
		var tt Tensor
		if err := tt.GobDecode(buf); err == nil {
			t.Errorf("%s: hostile header accepted", name)
		}
	}
}

func TestGobDecodeAcceptsZeroElementTensor(t *testing.T) {
	orig := New(0)
	raw, err := orig.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := back.GobDecode(raw); err != nil {
		t.Fatalf("legit zero-element tensor rejected: %v", err)
	}
	if back.Len() != 0 {
		t.Fatalf("len = %d", back.Len())
	}
}

// TestGobDecodeCorruptionFuzz flips bytes and truncates real encodings; no
// mutation may panic, and any accepted decode must be internally consistent.
func TestGobDecodeCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := RandNormal(rng, 1, 2, 3, 4)
	raw, err := orig.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), raw...)
		switch trial % 3 {
		case 0:
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		case 1:
			mut = mut[:rng.Intn(len(mut))]
		default:
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			mut = mut[:1+rng.Intn(len(mut)-1)]
		}
		var tt Tensor
		if err := tt.GobDecode(mut); err == nil {
			// A flip in the data section decodes fine — that is what the
			// checkpoint CRC layer is for — but shape and data must agree.
			n := 1
			for _, d := range tt.Shape() {
				n *= d
			}
			if n != tt.Len() {
				t.Fatalf("trial %d: inconsistent decode: shape %v, %d elems", trial, tt.Shape(), tt.Len())
			}
		}
	}
}
