package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.NDim() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(1, 2) != 6 {
		t.Fatalf("At wrong: %v", x.Data())
	}
	x.Set(9, 1, 1)
	if x.At(1, 1) != 9 {
		t.Fatal("Set did not stick")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(7, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeViewAndInfer(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, -1)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("inferred shape %v", y.Shape())
	}
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must be a view")
	}
}

func TestReshapePanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestRowAndSliceViews(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if r.At(0) != 4 || r.At(2) != 6 {
		t.Fatalf("Row wrong: %v", r.Data())
	}
	s := x.Slice(0)
	s.Set(-1, 1)
	if x.At(0, 1) != -1 {
		t.Fatal("Slice must be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 10 {
		t.Fatalf("Mul wrong: %v", got)
	}
	c := a.Clone()
	c.AddScaled(2, b)
	if c.At(0) != 9 {
		t.Fatalf("AddScaled wrong: %v", c.Data())
	}
	c.Scale(0.5)
	if c.At(0) != 4.5 {
		t.Fatalf("Scale wrong: %v", c.Data())
	}
	if !almostEq(Dot(a, b), 32, 1e-9) {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestSumMeanNorm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if !almostEq(x.Sum(), 7, 1e-9) || !almostEq(x.Mean(), 3.5, 1e-9) {
		t.Fatalf("Sum/Mean wrong")
	}
	if !almostEq(x.Norm2(), 5, 1e-6) {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestArgMax(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 5}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax ties must pick lowest index, got %d", x.ArgMax())
	}
	m := FromSlice([]float32{0, 1, 9, 3, 2, 1}, 2, 3)
	rows := m.ArgMaxRows()
	if rows[0] != 2 || rows[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", rows)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := Softmax(x)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := float64(s.At(i, j))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Shift invariance: both rows have identical relative logits.
	for j := 0; j < 3; j++ {
		if !almostEq(float64(s.At(0, j)), float64(s.At(1, j)), 1e-5) {
			t.Fatal("softmax not shift invariant / unstable for large logits")
		}
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 3, 4, 7)
	ls := LogSoftmax(x)
	s := Softmax(x)
	for i, v := range s.Data() {
		if !almostEq(float64(ls.Data()[i]), math.Log(float64(v)), 1e-4) {
			t.Fatalf("logsoftmax mismatch at %d: %v vs log(%v)", i, ls.Data()[i], v)
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float32{0.5, 0.5}
	if kl := KLDivergence(p, p); !almostEq(kl, 0, 1e-9) {
		t.Fatalf("KL(p||p) = %v", kl)
	}
	q := []float32{0.9, 0.1}
	if kl := KLDivergence(p, q); kl <= 0 {
		t.Fatalf("KL(p||q) = %v, want > 0", kl)
	}
}

func TestKLDivergenceNonNegativeProperty(t *testing.T) {
	f := func(a, b [5]uint8) bool {
		p := normalize(a[:])
		q := normalize(b[:])
		return KLDivergence(p, q) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func normalize(raw []uint8) []float32 {
	out := make([]float32, len(raw))
	var sum float32
	for i, v := range raw {
		out[i] = float32(v) + 1
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	c := Concat([]*Tensor{a, b})
	if c.Dim(0) != 2 || c.Dim(1) != 2 || c.At(1, 0) != 3 {
		t.Fatalf("Concat wrong: %v %v", c.Shape(), c.Data())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 1, 4, 5)
	b := RandNormal(rng, 1, 5, 3)
	ref := MatMul(a, b)
	// MatMulT1: pass aᵀ explicitly.
	at := transpose(a)
	got1 := MatMulT1(at, b)
	// MatMulT2: pass bᵀ explicitly.
	bt := transpose(b)
	got2 := MatMulT2(a, bt)
	for i := range ref.Data() {
		if !almostEq(float64(ref.Data()[i]), float64(got1.Data()[i]), 1e-4) {
			t.Fatal("MatMulT1 disagrees with MatMul")
		}
		if !almostEq(float64(ref.Data()[i]), float64(got2.Data()[i]), 1e-4) {
			t.Fatal("MatMulT2 disagrees with MatMul")
		}
	}
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(a.At(i, j), j, i)
		}
	}
	return out
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{1, 1}, 2)
	y := MatVec(a, x)
	if y.At(0) != 3 || y.At(1) != 7 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	// Diagonally dominant => invertible.
	a := RandNormal(rng, 0.3, n, n)
	for i := 0; i < n; i++ {
		a.Set(a.At(i, i)+3, i, i)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(float64(prod.At(i, j)), want, 1e-3) {
				t.Fatalf("A·A⁻¹[%d,%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	if _, err := Inverse(a); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := Inverse(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestConvOut(t *testing.T) {
	if ConvOut(32, 3, 1, 1) != 32 {
		t.Fatal("same-pad 3x3 s1 should preserve size")
	}
	if ConvOut(32, 3, 2, 1) != 16 {
		t.Fatal("3x3 s2 p1 on 32 should give 16")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// With a 1x1 kernel, im2col is just a reshape.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	col := Im2Col(x, 1, 1, 1, 0)
	if col.Dim(0) != 1 || col.Dim(1) != 4 {
		t.Fatalf("col shape %v", col.Shape())
	}
	for i, v := range col.Data() {
		if v != x.Data()[i] {
			t.Fatalf("1x1 im2col changed data: %v", col.Data())
		}
	}
}

func TestConvViaIm2ColMatchesDirect(t *testing.T) {
	// Reference: direct convolution of a 1-channel image with one 3x3 kernel.
	rng := rand.New(rand.NewSource(4))
	x := RandNormal(rng, 1, 1, 5, 5)
	w := RandNormal(rng, 1, 1, 3, 3)
	col := Im2Col(x, 3, 3, 1, 1)
	wm := w.Reshape(1, 9)
	y := MatMul(wm, col).Reshape(1, 5, 5)
	for oy := 0; oy < 5; oy++ {
		for ox := 0; ox < 5; ox++ {
			var want float32
			for ki := 0; ki < 3; ki++ {
				for kj := 0; kj < 3; kj++ {
					iy, ix := oy-1+ki, ox-1+kj
					if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
						continue
					}
					want += x.At(0, iy, ix) * w.At(0, ki, kj)
				}
			}
			if !almostEq(float64(y.At(0, oy, ox)), float64(want), 1e-4) {
				t.Fatalf("conv mismatch at (%d,%d): %v vs %v", oy, ox, y.At(0, oy, ox), want)
			}
		}
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <Im2Col(x), g> == <x, Col2Im(g)> for all x, g (adjoint identity).
	rng := rand.New(rand.NewSource(5))
	x := RandNormal(rng, 1, 2, 6, 6)
	g := RandNormal(rng, 1, 2*3*3, 3*3) // stride 2, pad 1 => 3x3 out
	lhs := Dot(Im2Col(x, 3, 3, 2, 1), g)
	rhs := Dot(x, Col2Im(g, 2, 6, 6, 3, 3, 2, 1))
	if !almostEq(lhs, rhs, 1e-3) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestDepthwiseConvMatchesManual(t *testing.T) {
	x := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	w := FromSlice([]float32{
		0, 0, 0,
		0, 1, 0,
		0, 0, 0,
	}, 1, 3, 3) // identity kernel
	y := DepthwiseConv(x, w, nil, 1, 1)
	for i, v := range y.Data() {
		if v != x.Data()[i] {
			t.Fatalf("identity dwconv changed data: %v", y.Data())
		}
	}
	b := FromSlice([]float32{10}, 1)
	y2 := DepthwiseConv(x, w, b, 1, 1)
	if y2.At(0, 0, 0) != 11 {
		t.Fatalf("bias not applied: %v", y2.Data())
	}
}

func TestDepthwiseConvGradsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := RandNormal(rng, 1, 2, 4, 4)
	w := RandNormal(rng, 0.5, 2, 3, 3)
	gy := RandNormal(rng, 1, 2, 2, 2) // stride 2, pad 1 -> 2x2
	gx, gw, gb := DepthwiseConvGrads(x, w, gy, 2, 1)

	loss := func() float64 {
		y := DepthwiseConv(x, w, nil, 2, 1)
		return Dot(y, gy)
	}
	const h = 1e-3
	// Spot-check a few coordinates of each gradient against finite differences.
	for _, idx := range []int{0, 7, 15} {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + h
		up := loss()
		x.Data()[idx] = orig - h
		dn := loss()
		x.Data()[idx] = orig
		num := (up - dn) / (2 * h)
		if !almostEq(num, float64(gx.Data()[idx]), 1e-2) {
			t.Fatalf("gx[%d]: numeric %v vs analytic %v", idx, num, gx.Data()[idx])
		}
	}
	for _, idx := range []int{0, 5, 17} {
		orig := w.Data()[idx]
		w.Data()[idx] = orig + h
		up := loss()
		w.Data()[idx] = orig - h
		dn := loss()
		w.Data()[idx] = orig
		num := (up - dn) / (2 * h)
		if !almostEq(num, float64(gw.Data()[idx]), 1e-2) {
			t.Fatalf("gw[%d]: numeric %v vs analytic %v", idx, num, gw.Data()[idx])
		}
	}
	// Bias gradient is the per-channel sum of gy.
	for c := 0; c < 2; c++ {
		var want float32
		for _, v := range gy.Slice(c).Data() {
			want += v
		}
		if !almostEq(float64(gb.At(c)), float64(want), 1e-4) {
			t.Fatalf("gb[%d] = %v, want %v", c, gb.At(c), want)
		}
	}
}

func TestAvgPool(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	y := AvgPool(x, 2)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("AvgPool = %v, want %v", y.Data(), want)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 2, 2, 2)
	y := GlobalAvgPool(x)
	if y.At(0) != 2.5 || y.At(1) != 10 {
		t.Fatalf("GlobalAvgPool = %v", y.Data())
	}
}

func TestRandInitializersDeterministic(t *testing.T) {
	a := HeNormal(rand.New(rand.NewSource(9)), 64, 3, 3)
	b := HeNormal(rand.New(rand.NewSource(9)), 64, 3, 3)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed must give identical init")
		}
	}
	c := XavierUniform(rand.New(rand.NewSource(9)), 10, 10, 100)
	lim := math.Sqrt(6.0 / 20)
	for _, v := range c.Data() {
		if float64(v) < -lim || float64(v) > lim {
			t.Fatalf("Xavier sample %v outside ±%v", v, lim)
		}
	}
}
