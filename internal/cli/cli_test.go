package cli

import (
	"flag"
	"strings"
	"testing"
)

// parse binds a RunConfig on a throwaway FlagSet and parses args.
func parse(t *testing.T, args ...string) (RunConfig, error) {
	t.Helper()
	var cfg RunConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return cfg, cfg.Validate()
}

func TestRunConfigDefaultsAreValid(t *testing.T) {
	cfg, err := parse(t)
	if err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Method.Name != "chameleon" || cfg.Dataset != "core50" || cfg.ScaleName != "test" {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	spec := cfg.Spec()
	if spec.Name != "chameleon" || spec.Buffer != 100 || spec.ST != 10 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := cfg.Scale(); err != nil {
		t.Fatalf("Scale: %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-method", "sgd"}, "unknown method"},
		{[]string{"-buffer", "-1"}, "-buffer"},
		{[]string{"-st", "-2"}, "-st"},
		{[]string{"-dataset", "imagenet"}, "unknown dataset"},
		{[]string{"-scale", "huge"}, "unknown scale"},
		{[]string{"-checkpoint", "x.ckpt", "-checkpoint-every", "0"}, "-checkpoint-every"},
	}
	for _, tc := range cases {
		if _, err := parse(t, tc.args...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

func TestValidateListsAllowedSpellings(t *testing.T) {
	_, err := parse(t, "-method", "nope")
	if err == nil || !strings.Contains(err.Error(), "chameleon") || !strings.Contains(err.Error(), "slda") {
		t.Fatalf("method error should list the canonical set, got: %v", err)
	}
	_, err = parse(t, "-dataset", "nope")
	if err == nil || !strings.Contains(err.Error(), "openloris") {
		t.Fatalf("dataset error should list the canonical set, got: %v", err)
	}
}

func TestStreamExtraDatasets(t *testing.T) {
	var cfg RunConfig
	cfg.Stream.ExtraDatasets = []string{"synthetic"}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	if err := fs.Parse([]string{"-dataset", "synthetic"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("synthetic rejected despite ExtraDatasets: %v", err)
	}
	// Without the extension the same value must fail.
	var plain RunConfig
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	plain.Bind(fs2)
	if err := fs2.Parse([]string{"-dataset", "synthetic"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := plain.Validate(); err == nil {
		t.Fatal("synthetic accepted without ExtraDatasets")
	}
}

func TestCheckpointPlanAndGrid(t *testing.T) {
	var ck Checkpoint
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ck.Bind(fs, "path")
	dir := t.TempDir() + "/grid"
	if err := fs.Parse([]string{"-checkpoint", dir, "-checkpoint-every", "7", "-resume"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan := ck.Plan(nil)
	if plan.Path != dir || plan.Every != 7 || !plan.Resume {
		t.Fatalf("plan = %+v", plan)
	}
	grid, err := ck.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if grid.Dir != dir || grid.Every != 7 || !grid.Resume {
		t.Fatalf("grid = %+v", grid)
	}
}

// TestFlagSurface pins the shared flag names: every binary binding these
// groups exposes identical spellings.
func TestFlagSurface(t *testing.T) {
	var cfg RunConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	for _, name := range []string{
		"workers", "metrics-addr", "scale", "cache",
		"method", "buffer", "st", "dataset", "seed",
		"checkpoint", "checkpoint-every", "resume",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("RunConfig.Bind did not register -%s", name)
		}
	}
}

// TestPrecisionValidation pins the fail-fast contract: a typo'd -precision
// must be rejected with the valid spellings, never silently treated as fp32.
func TestPrecisionValidation(t *testing.T) {
	for _, ok := range []string{"", PrecisionFP32, PrecisionFP64} {
		p := Perf{Precision: ok}
		if err := p.Validate(); err != nil {
			t.Errorf("precision %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"fp16", "FP32", "float32", "double"} {
		p := Perf{Precision: bad}
		err := p.Validate()
		if err == nil {
			t.Errorf("precision %q accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), PrecisionFP32) || !strings.Contains(err.Error(), PrecisionFP64) {
			t.Errorf("precision error does not name the valid spellings: %v", err)
		}
	}
}

// TestFleetValidation: partial or inconsistent fleet flag combinations must
// fail fast instead of silently falling back to single-learner mode.
func TestFleetValidation(t *testing.T) {
	cases := []struct {
		name string
		f    Fleet
		ok   bool
	}{
		{"zero value is single-learner mode", Fleet{}, true},
		{"full spec", Fleet{Users: 100, Hot: 10, Dir: "d", Shards: 2, QueueDepth: 64}, true},
		{"users + dir only", Fleet{Users: 100, Dir: "d"}, true},
		{"hot without users", Fleet{Hot: 10}, false},
		{"dir without users", Fleet{Dir: "d"}, false},
		{"shards without users", Fleet{Shards: 2}, false},
		{"users without dir", Fleet{Users: 100}, false},
		{"negative hot", Fleet{Users: 100, Dir: "d", Hot: -1}, false},
		{"negative shards", Fleet{Users: 100, Dir: "d", Shards: -1}, false},
		{"negative queue", Fleet{Users: 100, Dir: "d", QueueDepth: -1}, false},
		{"hot exceeds users", Fleet{Users: 4, Dir: "d", Hot: 8}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

// TestFleetFlagSurface pins the fleet flag spellings.
func TestFleetFlagSurface(t *testing.T) {
	var f Fleet
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Bind(fs)
	for _, name := range []string{"fleet-users", "fleet-hot", "fleet-dir", "fleet-shards", "fleet-queue"} {
		if fs.Lookup(name) == nil {
			t.Errorf("Fleet.Bind did not register -%s", name)
		}
	}
}

func parseRepl(t *testing.T, args ...string) (Replication, error) {
	t.Helper()
	var r Replication
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	r.Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return r, r.Validate()
}

func TestReplicationValidation(t *testing.T) {
	if r, err := parseRepl(t); err != nil || r.Enabled() {
		t.Fatalf("defaults: err=%v enabled=%v, want nil, false", err, r.Enabled())
	}
	if r, err := parseRepl(t, "-wal-dir", "wal/"); err != nil || !r.Enabled() {
		t.Fatalf("-wal-dir alone: err=%v enabled=%v, want nil, true", err, r.Enabled())
	}
	bad := [][]string{
		{"-standby", "http://127.0.0.1:8080"},         // standby without a local log
		{"-wal-dir", "wal/", "-primary-wal", "pwal/"}, // primary-wal without standby
		{"-wal-dir", "wal/", "-wal-sync-every", "0"},
		{"-wal-dir", "wal/", "-wal-segment-mb", "-1"},
		{"-wal-dir", "wal/", "-standby", "http://x", "-primary-wal", "wal/"}, // same dir
	}
	for _, args := range bad {
		if _, err := parseRepl(t, args...); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
	if _, err := parseRepl(t, "-wal-dir", "wal2/", "-standby", "http://127.0.0.1:8080", "-primary-wal", "wal/"); err != nil {
		t.Fatalf("full standby config rejected: %v", err)
	}
}
