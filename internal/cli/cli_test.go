package cli

import (
	"flag"
	"strings"
	"testing"
)

// parse binds a RunConfig on a throwaway FlagSet and parses args.
func parse(t *testing.T, args ...string) (RunConfig, error) {
	t.Helper()
	var cfg RunConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return cfg, cfg.Validate()
}

func TestRunConfigDefaultsAreValid(t *testing.T) {
	cfg, err := parse(t)
	if err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Method.Name != "chameleon" || cfg.Dataset != "core50" || cfg.ScaleName != "test" {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	spec := cfg.Spec()
	if spec.Name != "chameleon" || spec.Buffer != 100 || spec.ST != 10 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := cfg.Scale(); err != nil {
		t.Fatalf("Scale: %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-method", "sgd"}, "unknown method"},
		{[]string{"-buffer", "-1"}, "-buffer"},
		{[]string{"-st", "-2"}, "-st"},
		{[]string{"-dataset", "imagenet"}, "unknown dataset"},
		{[]string{"-scale", "huge"}, "unknown scale"},
		{[]string{"-checkpoint", "x.ckpt", "-checkpoint-every", "0"}, "-checkpoint-every"},
	}
	for _, tc := range cases {
		if _, err := parse(t, tc.args...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

func TestValidateListsAllowedSpellings(t *testing.T) {
	_, err := parse(t, "-method", "nope")
	if err == nil || !strings.Contains(err.Error(), "chameleon") || !strings.Contains(err.Error(), "slda") {
		t.Fatalf("method error should list the canonical set, got: %v", err)
	}
	_, err = parse(t, "-dataset", "nope")
	if err == nil || !strings.Contains(err.Error(), "openloris") {
		t.Fatalf("dataset error should list the canonical set, got: %v", err)
	}
}

func TestStreamExtraDatasets(t *testing.T) {
	var cfg RunConfig
	cfg.Stream.ExtraDatasets = []string{"synthetic"}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	if err := fs.Parse([]string{"-dataset", "synthetic"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("synthetic rejected despite ExtraDatasets: %v", err)
	}
	// Without the extension the same value must fail.
	var plain RunConfig
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	plain.Bind(fs2)
	if err := fs2.Parse([]string{"-dataset", "synthetic"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := plain.Validate(); err == nil {
		t.Fatal("synthetic accepted without ExtraDatasets")
	}
}

func TestCheckpointPlanAndGrid(t *testing.T) {
	var ck Checkpoint
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ck.Bind(fs, "path")
	dir := t.TempDir() + "/grid"
	if err := fs.Parse([]string{"-checkpoint", dir, "-checkpoint-every", "7", "-resume"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan := ck.Plan(nil)
	if plan.Path != dir || plan.Every != 7 || !plan.Resume {
		t.Fatalf("plan = %+v", plan)
	}
	grid, err := ck.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if grid.Dir != dir || grid.Every != 7 || !grid.Resume {
		t.Fatalf("grid = %+v", grid)
	}
}

// TestFlagSurface pins the shared flag names: every binary binding these
// groups exposes identical spellings.
func TestFlagSurface(t *testing.T) {
	var cfg RunConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Bind(fs)
	for _, name := range []string{
		"workers", "metrics-addr", "scale", "cache",
		"method", "buffer", "st", "dataset", "seed",
		"checkpoint", "checkpoint-every", "resume",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("RunConfig.Bind did not register -%s", name)
		}
	}
}
