// Package cli is the shared flag/config surface of the cmd binaries. Before
// it existed every main.go re-declared its own -workers, -metrics-addr,
// -checkpoint*, -seed and dataset/method flags, and the spellings (and
// validation gaps) drifted between them; now each flag is declared exactly
// once here, grouped by concern, and every binary binds the groups it needs:
//
//	Perf        -workers, -metrics-addr      worker pool + metrics listener
//	Pipeline    -scale, -cache              latent-set construction tier
//	Method      -method, -buffer, -st       learner selection and sizing
//	Stream      -dataset, -seed             benchmark stream selection
//	Checkpoint  -checkpoint, -checkpoint-every, -resume
//	Fleet       -fleet-users, -fleet-hot, -fleet-dir, -fleet-shards, -fleet-queue
//	Replication -wal-dir, -wal-sync-every, -wal-segment-mb, -standby,
//	            -primary-wal, -replication-poll, -failover-after, -handoff-timeout
//
// RunConfig composes all five into the full "drive one learner over one
// stream" configuration used by chameleon-train and chameleon-serve; the
// narrower binaries (chameleon-bench, chameleon-hw, benchjson) bind subsets.
// Validate must be called after flag.Parse and before any group is used —
// every accepted value is checked against the canonical sets exported by
// internal/exp, so a typo fails fast with the allowed spellings instead of
// deep inside the pipeline.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/exp"
	"chameleon/internal/obs"
	"chameleon/internal/parallel"
)

// Precision tier names accepted by -precision.
const (
	PrecisionFP32 = "fp32"
	PrecisionFP64 = "fp64"
)

// Perf is the performance/observability group shared by every binary.
type Perf struct {
	// Workers sizes the shared worker pool (0 = GOMAXPROCS).
	Workers int
	// MetricsAddr serves live metrics when non-empty.
	MetricsAddr string
	// Precision selects the kernel tier: "fp32" is the fast tier every hot
	// path uses; "fp64" is the reference tier (double-precision training to
	// bound fp32 rounding error; finetune only, see cl.Ref64).
	Precision string
	// BatchTrain selects the batched training path: heads pack each training
	// step into one matrix and run one GEMM per Dense layer instead of a
	// per-sample matvec loop. Off restores the serial per-sample reference
	// path (see cl.SetBatchTrainDefault).
	BatchTrain bool
}

// Bind registers the group's flags on fs.
func (p *Perf) Bind(fs *flag.FlagSet) {
	fs.IntVar(&p.Workers, "workers", 0, "worker-pool size for parallel kernels and experiment fan-out (0 = GOMAXPROCS)")
	fs.StringVar(&p.MetricsAddr, "metrics-addr", "", "serve live metrics on this address: Prometheus text on /metrics, expvar JSON on /vars and /debug/vars ('' disables)")
	fs.StringVar(&p.Precision, "precision", PrecisionFP32, "kernel precision tier: fp32 (fast, default) | fp64 (reference; finetune only)")
	fs.BoolVar(&p.BatchTrain, "batch-train", true, "train heads batched (one GEMM per Dense over the whole step); false restores the per-sample reference path")
}

// Validate checks the precision tier name.
func (p Perf) Validate() error {
	switch p.Precision {
	case "", PrecisionFP32, PrecisionFP64:
		return nil
	}
	return fmt.Errorf("unknown precision %q (want %s or %s)", p.Precision, PrecisionFP32, PrecisionFP64)
}

// Start applies the group: it sizes the worker pool and, when MetricsAddr is
// set, starts the metrics listener (announced via logf when non-nil). The
// returned stop function closes the listener and is always non-nil.
func (p Perf) Start(logf func(string, ...any)) (stop func(), err error) {
	parallel.SetWorkers(p.Workers)
	cl.SetBatchTrainDefault(p.BatchTrain)
	if p.MetricsAddr == "" {
		return func() {}, nil
	}
	srv, err := obs.Default().Serve(p.MetricsAddr)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	if logf != nil {
		logf("metrics: http://%s/metrics (Prometheus), /vars (JSON)", srv.Addr())
	}
	return func() { _ = srv.Close() }, nil
}

// Pipeline selects the latent-set construction tier.
type Pipeline struct {
	// ScaleName is the reproduction tier ("test" or "small").
	ScaleName string
	// CacheDir caches backbones and latents ("" disables).
	CacheDir string
	// BackboneInt8 extracts latents through the integer backbone path
	// (per-channel int8 weights, per-tensor int8 activations, int32 GEMM).
	BackboneInt8 bool
}

// Options returns the exp pipeline options this group selects.
func (p Pipeline) Options() exp.PipelineOptions {
	return exp.PipelineOptions{Int8Backbone: p.BackboneInt8}
}

// Bind registers the group's flags on fs; defScale is the binary's default
// tier ("test" for interactive binaries, "small" for the benchmark suite).
func (p *Pipeline) Bind(fs *flag.FlagSet, defScale string) {
	fs.StringVar(&p.ScaleName, "scale", defScale, "scale tier: test|small")
	fs.StringVar(&p.CacheDir, "cache", exp.DefaultCacheDir(), "latent cache directory ('' disables)")
	fs.BoolVar(&p.BackboneInt8, "backbone-int8", false, "quantise the frozen backbone's im2col convolutions to int8 for latent extraction")
}

// Validate checks the tier name.
func (p Pipeline) Validate() error {
	_, err := exp.ScaleByName(p.ScaleName)
	return err
}

// Scale resolves the tier (call Validate first; unknown names error here
// too).
func (p Pipeline) Scale() (exp.Scale, error) { return exp.ScaleByName(p.ScaleName) }

// Method selects and sizes one continual learner.
type Method struct {
	// Name is the method family.
	Name string
	// Buffer is the replay-buffer size (long-term size for chameleon).
	Buffer int
	// ST is chameleon's short-term size.
	ST int
	// ReplayInt8 stores replay payloads as int8 latents (symmetric
	// per-tensor scale): ~4× the samples per byte at the same budget.
	ReplayInt8 bool
}

// Bind registers the group's flags on fs.
func (m *Method) Bind(fs *flag.FlagSet) {
	fs.StringVar(&m.Name, "method", "chameleon", "method: "+strings.Join(exp.Methods(), "|"))
	fs.IntVar(&m.Buffer, "buffer", 100, "replay buffer size in samples (long-term size for chameleon)")
	fs.IntVar(&m.ST, "st", 10, "chameleon short-term size")
	fs.BoolVar(&m.ReplayInt8, "replay-int8", false, "store replay buffers as int8 latents with per-tensor scales (quantize on insert, dequantize on rehearsal)")
}

// Validate checks the method family and sizing.
func (m Method) Validate() error {
	if !exp.ValidMethod(m.Name) {
		return fmt.Errorf("unknown method %q (want one of %s)", m.Name, strings.Join(exp.Methods(), ", "))
	}
	if m.Buffer < 0 {
		return fmt.Errorf("-buffer must be >= 0, got %d", m.Buffer)
	}
	if m.ST < 0 {
		return fmt.Errorf("-st must be >= 0, got %d", m.ST)
	}
	return nil
}

// Spec converts the group to an experiment method spec.
func (m Method) Spec() exp.MethodSpec {
	return exp.MethodSpec{Name: m.Name, Buffer: m.Buffer, ST: m.ST, ReplayInt8: m.ReplayInt8}
}

// Datasets lists the benchmark streams the pipeline can build.
func Datasets() []string { return []string{"core50", "openloris"} }

// Stream selects the benchmark stream.
type Stream struct {
	// Dataset is the benchmark name.
	Dataset string
	// Seed drives stream order and head initialisation.
	Seed int64
	// ExtraDatasets extends the accepted -dataset values for binaries with
	// additional sources (chameleon-serve's "synthetic"). Set before Validate.
	ExtraDatasets []string
}

// Bind registers the group's flags on fs.
func (s *Stream) Bind(fs *flag.FlagSet) {
	usage := "dataset: " + strings.Join(append(Datasets(), s.ExtraDatasets...), "|")
	fs.StringVar(&s.Dataset, "dataset", "core50", usage)
	fs.Int64Var(&s.Seed, "seed", 1, "run seed (stream order + head init)")
}

// Validate checks the dataset name.
func (s Stream) Validate() error {
	for _, d := range append(Datasets(), s.ExtraDatasets...) {
		if s.Dataset == d {
			return nil
		}
	}
	return fmt.Errorf("unknown dataset %q (want one of %s)",
		s.Dataset, strings.Join(append(Datasets(), s.ExtraDatasets...), ", "))
}

// Checkpoint configures crash-safe persistence.
type Checkpoint struct {
	// Path is the checkpoint file or directory ("" disables).
	Path string
	// Every is the save period in batches.
	Every int
	// Resume restarts from an existing checkpoint.
	Resume bool
}

// Bind registers the group's flags on fs; pathUsage describes what Path means
// for this binary (file for single runs, directory for grids).
func (c *Checkpoint) Bind(fs *flag.FlagSet, pathUsage string) {
	fs.StringVar(&c.Path, "checkpoint", "", pathUsage)
	fs.IntVar(&c.Every, "checkpoint-every", 100, "batches between checkpoint saves (with -checkpoint)")
	fs.BoolVar(&c.Resume, "resume", false, "resume from -checkpoint if it exists")
}

// Validate checks the save period.
func (c Checkpoint) Validate() error {
	if c.Path != "" && c.Every <= 0 {
		return fmt.Errorf("-checkpoint-every must be > 0, got %d", c.Every)
	}
	return nil
}

// Plan converts the group to a single-run checkpoint plan.
func (c Checkpoint) Plan(meter *cl.TrafficMeter) cl.CheckpointPlan {
	return cl.CheckpointPlan{Path: c.Path, Every: c.Every, Resume: c.Resume, Meter: meter}
}

// Grid converts the group to a grid checkpoint config, creating the
// directory when set.
func (c Checkpoint) Grid() (exp.Checkpointing, error) {
	ck := exp.Checkpointing{Dir: c.Path, Every: c.Every, Resume: c.Resume}
	if ck.Dir != "" {
		if err := os.MkdirAll(ck.Dir, 0o755); err != nil {
			return exp.Checkpointing{}, fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	return ck, nil
}

// Fleet configures multi-tenant serving: per-user learners behind one HTTP
// surface, with a bounded hot-set and LRU eviction to per-user checkpoints
// (see internal/fleet). Bound by chameleon-serve only; the zero value means
// single-learner mode.
type Fleet struct {
	// Users caps the distinct user ids admitted (0 = single-learner mode).
	Users int
	// Hot bounds learners resident in memory across all shards (0 = default).
	Hot int
	// Dir is where evicted and drained learners checkpoint to.
	Dir string
	// Shards is the number of single-writer engine goroutines (0 = default).
	Shards int
	// QueueDepth bounds each shard's request queue (0 = default).
	QueueDepth int
}

// Bind registers the group's flags on fs.
func (f *Fleet) Bind(fs *flag.FlagSet) {
	fs.IntVar(&f.Users, "fleet-users", 0, "serve a fleet of per-user learners, admitting up to this many distinct user ids (0 = single-learner mode)")
	fs.IntVar(&f.Hot, "fleet-hot", 0, "max learners resident in memory across the fleet; colder users are LRU-evicted to -fleet-dir (0 = default 256)")
	fs.StringVar(&f.Dir, "fleet-dir", "", "directory for evicted and drained per-user checkpoints (required with -fleet-users)")
	fs.IntVar(&f.Shards, "fleet-shards", 0, "single-writer engine goroutines users are consistent-hashed onto (0 = default 4)")
	fs.IntVar(&f.QueueDepth, "fleet-queue", 0, "bounded per-shard request queue depth; full queues shed with 429 (0 = default 256)")
}

// Enabled reports whether any fleet flag was set.
func (f Fleet) Enabled() bool {
	return f.Users > 0 || f.Hot != 0 || f.Dir != "" || f.Shards != 0 || f.QueueDepth != 0
}

// Validate fails fast on a partial or inconsistent fleet spec, so a typo'd
// or half-configured fleet never silently falls back to single-learner mode.
func (f Fleet) Validate() error {
	if !f.Enabled() {
		return nil
	}
	if f.Users <= 0 {
		return fmt.Errorf("fleet flags set but -fleet-users is %d; fleet mode requires -fleet-users > 0", f.Users)
	}
	if f.Dir == "" {
		return fmt.Errorf("-fleet-users %d requires -fleet-dir (evicted learners checkpoint there)", f.Users)
	}
	if f.Hot < 0 {
		return fmt.Errorf("-fleet-hot must be >= 0, got %d", f.Hot)
	}
	if f.Shards < 0 {
		return fmt.Errorf("-fleet-shards must be >= 0, got %d", f.Shards)
	}
	if f.QueueDepth < 0 {
		return fmt.Errorf("-fleet-queue must be >= 0, got %d", f.QueueDepth)
	}
	if f.Hot > 0 && f.Hot > f.Users {
		return fmt.Errorf("-fleet-hot %d exceeds -fleet-users %d (the hot-set cannot outgrow the fleet)", f.Hot, f.Users)
	}
	return nil
}

// Replication configures the durable observe log and warm-standby
// replication (internal/replication, DESIGN.md §18). Bound by
// chameleon-serve only; the zero value disables both.
type Replication struct {
	// WALDir is the durable observe-log directory ("" disables the log).
	WALDir string
	// SyncEvery batches log fsyncs (records per fsync).
	SyncEvery int
	// SegmentMB rotates log segments at this size.
	SegmentMB int
	// Standby, when non-empty, starts the server as a warm standby of the
	// primary at this base URL: it bootstraps from the primary's snapshot,
	// tails its observe log, and serves 503 not_ready until promoted.
	Standby string
	// PrimaryWAL is the (dead) primary's observe-log directory on shared
	// disk: a probe-failure promotion replays the records the primary logged
	// but never streamed, so even SIGKILL loses no acknowledged observe.
	PrimaryWAL string
	// Poll spaces a caught-up standby's log pulls.
	Poll time.Duration
	// FailoverAfter promotes the standby after this many consecutive failed
	// pulls (<0 disables probe-based failover).
	FailoverAfter int
	// HandoffTimeout bounds how long a draining primary waits for its
	// standby to pull the rest of the log.
	HandoffTimeout time.Duration
}

// Bind registers the group's flags on fs.
func (r *Replication) Bind(fs *flag.FlagSet) {
	fs.StringVar(&r.WALDir, "wal-dir", "", "durable observe-log directory: every accepted observe batch is appended before it is applied ('' disables)")
	fs.IntVar(&r.SyncEvery, "wal-sync-every", 16, "observe-log appends per fsync (1 = fsync every append)")
	fs.IntVar(&r.SegmentMB, "wal-segment-mb", 4, "observe-log segment rotation size in MiB")
	fs.StringVar(&r.Standby, "standby", "", "run as a warm standby of the primary at this base URL (e.g. http://127.0.0.1:8080); requires -wal-dir")
	fs.StringVar(&r.PrimaryWAL, "primary-wal", "", "the primary's -wal-dir on shared disk; a probe-failure promotion recovers its unstreamed log tail from here")
	fs.DurationVar(&r.Poll, "replication-poll", 50*time.Millisecond, "standby log-pull interval when caught up")
	fs.IntVar(&r.FailoverAfter, "failover-after", 5, "consecutive failed pulls before the standby promotes itself (negative disables probe failover)")
	fs.DurationVar(&r.HandoffTimeout, "handoff-timeout", 10*time.Second, "max time a draining primary waits for its standby to finish pulling the log")
}

// Enabled reports whether the observe log is configured.
func (r Replication) Enabled() bool { return r.WALDir != "" }

// Validate fails fast on an inconsistent replication spec.
func (r Replication) Validate() error {
	if r.Standby != "" && r.WALDir == "" {
		return fmt.Errorf("-standby requires -wal-dir (the standby keeps its own durable copy of the observe log)")
	}
	if r.PrimaryWAL != "" && r.Standby == "" {
		return fmt.Errorf("-primary-wal only makes sense with -standby")
	}
	if r.WALDir != "" && r.SyncEvery <= 0 {
		return fmt.Errorf("-wal-sync-every must be > 0, got %d", r.SyncEvery)
	}
	if r.WALDir != "" && r.SegmentMB <= 0 {
		return fmt.Errorf("-wal-segment-mb must be > 0, got %d", r.SegmentMB)
	}
	if r.Standby != "" && r.PrimaryWAL == r.WALDir && r.PrimaryWAL != "" {
		return fmt.Errorf("-wal-dir and -primary-wal must differ (the standby's log would clobber the primary's)")
	}
	return nil
}

// RunConfig is the full "drive one learner over one benchmark stream"
// configuration: chameleon-train and chameleon-serve bind it whole, so the
// two binaries expose one identical flag surface for everything they share.
type RunConfig struct {
	Perf
	Pipeline
	Method
	Stream
	Checkpoint
}

// Bind registers every group's flags on fs.
func (c *RunConfig) Bind(fs *flag.FlagSet) {
	c.Perf.Bind(fs)
	c.Pipeline.Bind(fs, "test")
	c.Method.Bind(fs)
	c.Stream.Bind(fs)
	c.Checkpoint.Bind(fs, "checkpoint file for crash-safe runs ('' disables)")
}

// Validate checks every group, reporting the first problem.
func (c RunConfig) Validate() error {
	for _, err := range []error{
		c.Perf.Validate(), c.Pipeline.Validate(), c.Method.Validate(), c.Stream.Validate(), c.Checkpoint.Validate(),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}
