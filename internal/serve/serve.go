// Package serve is the online serving subsystem: a stdlib-only net/http
// front end that exposes a single cl.Learner to concurrent network clients
// while preserving Algorithm 1's single-pass, single-writer semantics.
//
// Architecture (DESIGN.md §13):
//
//   - One engine goroutine owns the learner. Every Observe and Predict the
//     process performs happens on that goroutine, so the learner never sees
//     concurrent calls and the observe order is a total order — a resumed or
//     replayed run that feeds the same batches in the same order is
//     bit-identical.
//   - Predict requests are micro-batched: the engine coalesces queued
//     requests for up to Config.BatchWindow (or Config.MaxBatch, whichever
//     comes first) and answers them with one PredictBatch call. The batched
//     path is bit-identical to per-sample Predict (the BatchPredictor
//     contract), so coalescing is invisible to clients.
//   - Queues are bounded. A full queue sheds the request with 429 +
//     Retry-After instead of growing without bound; memory stays constant
//     under overload.
//   - Shutdown drains: new requests are refused with 503, everything already
//     queued is processed, and the learner state is written as an
//     internal/checkpoint snapshot so a restarted server resumes
//     bit-identically.
//
// Every stage is instrumented on the internal/obs registry (queue depths,
// batch-size histogram, shed counts, drain latency), so the serving path
// shows up on the same /metrics surface as the training internals.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/fleet"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/replication"
	"chameleon/internal/tensor"
)

// stateKind tags drain checkpoints in the internal/checkpoint file framing.
const stateKind = "serve.state"

// Config sizes the serving subsystem. The zero value of every optional field
// selects a sensible default; LatentShape and Classes are required (they
// bound payload validation before anything touches the learner).
type Config struct {
	// LatentShape is the expected shape of request latents.
	LatentShape []int
	// Classes bounds observe labels: 0 <= label < Classes.
	Classes int
	// Backbone, when non-nil, enables the image form of /v1/predict and
	// /v1/observe: raw [3,R,R] frames are run through the frozen extractor
	// (safe concurrently — eval-mode forwards allocate locally) before they
	// reach the queue.
	Backbone *mobilenet.Model
	// BatchWindow is how long the engine waits to coalesce predict requests
	// into one PredictBatch call (default 2ms; 0 still coalesces whatever is
	// already queued, without waiting).
	BatchWindow time.Duration
	// MaxBatch caps one coalesced predict batch (default 64).
	MaxBatch int
	// QueueDepth bounds the predict and observe queues each (default 256).
	// A full queue sheds with 429.
	QueueDepth int
	// RequestTimeout bounds how long a handler waits for the engine before
	// answering 504 (default 10s). The queued work still completes; only the
	// response is abandoned.
	RequestTimeout time.Duration
	// MaxObserveBatch caps samples per observe request (default 64).
	MaxObserveBatch int
	// CheckpointPath, when set, is where drain (and the periodic saver)
	// writes the learner snapshot. Requires the learner to implement
	// cl.Snapshotter.
	CheckpointPath string
	// CheckpointEvery saves a snapshot every that many observed batches
	// while serving (default 100; only with CheckpointPath). Drain always
	// saves regardless.
	CheckpointEvery int
	// StartBatches/StartSamples seed the stream position counters when the
	// learner was restored from a drain checkpoint (see Resume).
	StartBatches int
	StartSamples int
	// WAL, when non-nil, is the durable observe log: every accepted observe
	// batch is appended (and thus made durable) before the engine applies it,
	// and the /v1/replication endpoints are served from it (DESIGN.md §18).
	// On a single-learner server the log's sequence numbers coincide with the
	// batch stream indices, so New requires WAL.End() == StartBatches — replay
	// the log tail into the learner first (ReplayLog) if a crash left the log
	// ahead of the checkpoint.
	WAL *replication.Log
	// Standby starts the server in 503-read-only mode: /v1/predict and
	// /v1/observe answer not_ready until Promote is called (normally by a
	// replication.Follower that has caught up). Requires WAL; incompatible
	// with Fleet.
	Standby bool
	// NewLearner constructs a fresh learner identical to the one New was
	// given before any observes (same method, same seed). Required by the
	// /v1/replication/verify endpoint, which rebuilds state from (base
	// snapshot, log suffix) and compares it against the live learner.
	NewLearner func() (cl.Learner, error)
	// SnapshotsEqual compares two learner snapshots for state equality
	// (core.SnapshotsEqual for the chameleon method). Required by
	// /v1/replication/verify.
	SnapshotsEqual func(a, b []byte) (bool, error)
	// HandoffTimeout bounds how long Shutdown waits, after draining, for a
	// warm standby to pull the rest of the observe log before the listener
	// closes (default 10s; only with WAL, and only if a follower has ever
	// pulled).
	HandoffTimeout time.Duration
	// Fleet, when non-nil, switches the server into multi-tenant mode: the
	// learner argument to New must be nil, every /v1/predict and /v1/observe
	// must carry a user id, and requests are routed to the fleet's per-user
	// learners instead of the single-learner engine. Fleet checkpointing is
	// the fleet's own eviction/drain machinery, so CheckpointPath must be
	// empty in this mode.
	Fleet *fleet.Fleet
	// Registry receives the serve metrics (nil: the process default).
	Registry *obs.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	} else if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxObserveBatch <= 0 {
		c.MaxObserveBatch = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 100
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// predictReq is one client latent waiting for the engine.
type predictReq struct {
	z    *tensor.Tensor
	ctx  context.Context
	resp chan predictResp // buffered (cap 1): the engine never blocks on it
}

type predictResp struct {
	class int
	err   error
}

// observeReq is one labelled mini-batch waiting for the engine.
type observeReq struct {
	samples []cl.LatentSample
	domain  int
	// rec, when non-nil, marks a replicated record (ApplyRecord): it already
	// carries its primary-assigned sequence number and batch index, which the
	// engine verifies instead of assigning.
	rec  *api.LogRecord
	resp chan observeResp // buffered (cap 1)
}

type observeResp struct {
	batch   int // stream index the engine assigned
	samples int // total samples observed after this batch
	err     error
}

// Server fronts one learner. Construct with New, start with Start (or drive
// Handler directly in tests), and always stop with Shutdown or Close.
type Server struct {
	cfg  Config
	l    cl.Learner
	caps cl.Capabilities
	m    *metrics

	predictQ chan *predictReq
	observeQ chan *observeReq
	// ctrlQ carries control closures (snapshot capture, restore) onto the
	// engine goroutine; unbuffered, so a successful send guarantees the
	// engine runs the closure to completion.
	ctrlQ chan func()
	// postDrainMu serializes control closures once the engine has exited
	// (the handoff window keeps replication endpoints alive after drain).
	postDrainMu sync.Mutex

	// mu guards the draining flag against handler enqueues: handlers hold
	// the read side across the check-then-enqueue window, Shutdown takes the
	// write side before draining, so no request can slip into a queue after
	// the drain loop has emptied it.
	mu       sync.RWMutex
	draining bool

	stopOnce   sync.Once
	stopCh     chan struct{}
	engineDone chan struct{}

	// batches/samples mirror the engine's stream position for /v1/stats.
	batches atomic.Int64
	samples atomic.Int64
	start   time.Time

	// ready gates /v1/predict and /v1/observe: false on a standby until
	// Promote. Servers without Config.Standby start ready.
	ready atomic.Bool

	// replMu guards the replication snapshots. baseSnap anchors the local
	// log: restoring it and replaying records from baseSnap.Cursor rebuilds
	// live state (the verify endpoint's contract). replSnap is the cached
	// snapshot the /v1/replication/snapshot endpoint serves, refreshed every
	// CheckpointEvery batches.
	replMu   sync.Mutex
	baseSnap *api.SnapshotResponse
	replSnap *api.SnapshotResponse

	// Follower-pull bookkeeping on a primary: the cursor and time of the last
	// served /v1/replication/log pull (handoff waits on these), whether a
	// caught-up pull has been answered Final (the follower's promotion
	// trigger — handoff is only complete once one was served), and the
	// standby-side lag published via SetLag.
	replLastPullSeq  atomic.Uint64
	replLastPullNano atomic.Int64
	replFinalServed  atomic.Bool
	replLagBatches   atomic.Int64
	replLastSyncNano atomic.Int64

	mux  *http.ServeMux
	ln   net.Listener
	hsrv *http.Server
}

// New validates the config and starts the engine goroutine. In fleet mode
// (Config.Fleet set) l must be nil — the fleet owns every learner — and no
// single-learner engine is started. The caller must eventually call Shutdown
// (or Close) even if Start is never called.
func New(l cl.Learner, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.LatentShape) == 0 {
		return nil, errors.New("serve: Config.LatentShape is required")
	}
	n := 1
	for _, d := range cfg.LatentShape {
		if d <= 0 {
			return nil, fmt.Errorf("serve: invalid latent shape %v", cfg.LatentShape)
		}
		n *= d
	}
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("serve: Config.Classes must be > 0, got %d", cfg.Classes)
	}
	if cfg.Fleet != nil {
		if l != nil {
			return nil, errors.New("serve: fleet mode takes no single learner (pass nil)")
		}
		if cfg.CheckpointPath != "" {
			return nil, errors.New("serve: fleet mode persists per user via the fleet's eviction dir; CheckpointPath must be empty")
		}
	} else if l == nil {
		return nil, errors.New("serve: a learner is required outside fleet mode")
	}
	if cfg.Standby {
		if cfg.WAL == nil {
			return nil, errors.New("serve: standby mode requires an observe log (Config.WAL)")
		}
		if cfg.Fleet != nil {
			return nil, errors.New("serve: standby mode replicates a single learner; it is incompatible with fleet mode")
		}
	}
	s := &Server{
		cfg:        cfg,
		l:          l,
		m:          newMetrics(cfg.Registry),
		predictQ:   make(chan *predictReq, cfg.QueueDepth),
		observeQ:   make(chan *observeReq, cfg.QueueDepth),
		ctrlQ:      make(chan func()),
		stopCh:     make(chan struct{}),
		engineDone: make(chan struct{}),
		start:      time.Now(),
	}
	if l != nil {
		s.caps = cl.Caps(l)
	}
	if cfg.CheckpointPath != "" && s.caps.Snapshotter == nil {
		return nil, fmt.Errorf("serve: method %q does not support checkpointing", l.Name())
	}
	if cfg.WAL != nil && cfg.Fleet == nil {
		if s.caps.Snapshotter == nil {
			return nil, fmt.Errorf("serve: method %q does not support snapshots; an observe log needs them for replication", l.Name())
		}
		if !cfg.Standby && cfg.WAL.End() != uint64(cfg.StartBatches) {
			return nil, fmt.Errorf("serve: observe log ends at seq %d but the start position is batch %d; replay the log tail (ReplayLog) or reset the log first",
				cfg.WAL.End(), cfg.StartBatches)
		}
	}
	s.ready.Store(!cfg.Standby)
	s.batches.Store(int64(cfg.StartBatches))
	s.samples.Store(int64(cfg.StartSamples))
	if cfg.WAL != nil && cfg.Fleet == nil && !cfg.Standby {
		// Anchor the log: the initial snapshot is what verify (and a
		// bootstrapping standby, until the first periodic refresh) replays
		// forward from. The engine is not running yet, so touching the
		// learner here is safe.
		if err := s.publishSnapshot(); err != nil {
			return nil, fmt.Errorf("serve: initial replication snapshot: %w", err)
		}
	}
	s.m.bindQueues(s)
	s.mux = s.buildMux()
	if cfg.Fleet != nil {
		// The fleet's shard engines replace the single-learner loop; nothing
		// ever reaches this server's queues.
		close(s.engineDone)
	} else {
		go s.engine()
	}
	return s, nil
}

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.hsrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// engine is the single goroutine that owns the learner.
func (s *Server) engine() {
	defer close(s.engineDone)
	for {
		select {
		case <-s.stopCh:
			s.drain()
			return
		case r := <-s.observeQ:
			s.doObserve(r)
		case r := <-s.predictQ:
			s.doPredictBatch(r, true)
		case fn := <-s.ctrlQ:
			fn()
		}
	}
}

// onEngine runs fn on the engine goroutine (single-writer discipline: fn may
// touch the learner). Once the engine has drained and exited, fn runs on the
// caller under postDrainMu instead — nothing else touches the learner then,
// and the handoff window still needs snapshot capture.
func (s *Server) onEngine(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	select {
	case s.ctrlQ <- func() { fn(); close(done) }:
		<-done
		return nil
	case <-s.engineDone:
		s.postDrainMu.Lock()
		defer s.postDrainMu.Unlock()
		fn()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doPredictBatch answers one coalesced micro-batch. With wait set it
// collects more requests for up to BatchWindow; during drain it only takes
// what is already queued.
func (s *Server) doPredictBatch(first *predictReq, wait bool) {
	reqs := make([]*predictReq, 1, s.cfg.MaxBatch)
	reqs[0] = first
	if wait && s.cfg.BatchWindow > 0 && s.cfg.MaxBatch > 1 {
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(reqs) < s.cfg.MaxBatch {
			select {
			case r := <-s.predictQ:
				reqs = append(reqs, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
	} else {
	drainQ:
		for len(reqs) < s.cfg.MaxBatch {
			select {
			case r := <-s.predictQ:
				reqs = append(reqs, r)
			default:
				break drainQ
			}
		}
	}
	s.m.batchSize.Observe(float64(len(reqs)))

	zs := make([]*tensor.Tensor, len(reqs))
	for i, r := range reqs {
		zs[i] = r.z
	}
	out := make([]int, len(reqs))
	err := s.safePredict(zs, out)
	for i, r := range reqs {
		r.resp <- predictResp{class: out[i], err: err}
	}
}

// safePredict converts a learner panic into an error so the engine survives
// hostile or buggy inputs.
func (s *Server) safePredict(zs []*tensor.Tensor, out []int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Inc()
			err = fmt.Errorf("serve: predict panicked: %v", p)
		}
	}()
	return cl.PredictInto(s.l, zs, out)
}

// doObserve feeds one batch to the learner, assigning the next stream index.
// With an observe log the record is appended — made durable — before the
// learner applies it (DESIGN.md §18); on the replica path (r.rec set) the
// primary-assigned sequence and batch index are verified instead of assigned.
func (s *Server) doObserve(r *observeReq) {
	idx := int(s.batches.Load())
	if r.rec != nil && r.rec.Batch != idx {
		r.resp <- observeResp{err: fmt.Errorf("serve: replicated record is batch %d, engine is at %d", r.rec.Batch, idx)}
		return
	}
	if s.cfg.WAL != nil {
		rec := r.rec
		if rec == nil {
			rec = logRecordFrom(r.samples, idx, r.domain)
		} else if want := s.cfg.WAL.End(); rec.Seq != want {
			r.resp <- observeResp{err: fmt.Errorf("serve: replicated record has seq %d, local log expects %d", rec.Seq, want)}
			return
		}
		if _, err := s.cfg.WAL.Append(rec); err != nil {
			r.resp <- observeResp{err: fmt.Errorf("serve: observe log append: %w", err)}
			return
		}
	}
	err := s.safeObserve(cl.LatentBatch{Samples: r.samples, Index: idx, Domain: r.domain})
	if err != nil {
		// With a WAL the record is already durable but was never applied: the
		// log is now one record ahead of live state. Learner panics are the
		// only path here; count the orphan so operators can see the skew
		// (replay treats the log as truth — DESIGN.md §18).
		if s.cfg.WAL != nil {
			s.m.walOrphans.Inc()
		}
		r.resp <- observeResp{err: err}
		return
	}
	b := s.batches.Add(1)
	n := s.samples.Add(int64(len(r.samples)))
	if b%int64(s.cfg.CheckpointEvery) == 0 {
		if s.cfg.CheckpointPath != "" {
			// Periodic crash protection; drain still writes the authoritative
			// final snapshot. Failures surface in the error counter, not to
			// the client whose observe already succeeded.
			if err := s.saveState(); err != nil {
				s.m.checkpointErrors.Inc()
			}
		}
		if s.cfg.WAL != nil && s.cfg.Fleet == nil {
			// Refresh the snapshot the replication endpoint serves, so a
			// bootstrapping standby replays at most CheckpointEvery batches.
			if err := s.publishSnapshot(); err != nil {
				s.m.checkpointErrors.Inc()
			}
		}
	}
	r.resp <- observeResp{batch: idx, samples: int(n)}
}

// logRecordFrom builds the durable log form of one observe batch. Latents are
// always logged fp32 — quantized wire payloads were dequantized at the
// handler boundary — so replay feeds the learner byte-identical inputs.
func logRecordFrom(samples []cl.LatentSample, idx, domain int) *api.LogRecord {
	rec := &api.LogRecord{Batch: idx, Domain: domain, Samples: make([]api.LogSample, len(samples))}
	for i, sm := range samples {
		rec.Samples[i] = api.LogSample{Latent: sm.Z.Data(), Label: sm.Label}
	}
	return rec
}

// safeObserve converts a learner panic into an error.
func (s *Server) safeObserve(b cl.LatentBatch) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Inc()
			err = fmt.Errorf("serve: observe panicked: %v", p)
		}
	}()
	t0 := time.Now()
	s.l.Observe(b)
	s.m.observeApply.ObserveSince(t0)
	return nil
}

// drain empties both queues (no handler can enqueue anymore: Shutdown flips
// the draining flag under the write lock first), then persists the learner.
func (s *Server) drain() {
	t0 := time.Now()
	for {
		select {
		case r := <-s.observeQ:
			s.doObserve(r)
			continue
		default:
		}
		select {
		case r := <-s.predictQ:
			s.doPredictBatch(r, false)
			continue
		default:
		}
		break
	}
	if s.cfg.CheckpointPath != "" {
		if err := s.saveState(); err != nil {
			s.m.checkpointErrors.Inc()
		}
	}
	s.m.drainSeconds.ObserveSince(t0)
}

// State is the drain-checkpoint payload: the learner's opaque snapshot plus
// the stream position the server had assigned. A restarted server restores
// the learner and continues numbering batches from Batches, so the combined
// observe sequence across restarts is one uninterrupted stream.
type State struct {
	// Method guards against restoring a snapshot into a different learner.
	Method string
	// Batches and Samples are the stream position at save time.
	Batches int
	Samples int
	// Cursor is the observe-log position the snapshot is consistent with (the
	// next sequence number at save time; equal to Batches on single-learner
	// servers). Zero-valued in checkpoints written before the log existed.
	Cursor uint64
	// Learner is the method's cl.Snapshotter payload.
	Learner []byte
}

// saveState snapshots the learner and writes the drain checkpoint. Engine
// goroutine only.
func (s *Server) saveState() error {
	state, err := s.caps.Snapshotter.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: snapshot %s: %w", s.l.Name(), err)
	}
	st := State{
		Method:  s.l.Name(),
		Batches: int(s.batches.Load()),
		Samples: int(s.samples.Load()),
		Learner: state,
	}
	st.Cursor = uint64(st.Batches)
	if s.cfg.WAL != nil {
		st.Cursor = s.cfg.WAL.End()
	}
	return checkpoint.Save(s.cfg.CheckpointPath, stateKind, st)
}

// LoadState reads a drain checkpoint without touching any learner.
func LoadState(path string) (State, error) {
	var st State
	if err := checkpoint.Load(path, stateKind, &st); err != nil {
		return State{}, err
	}
	return st, nil
}

// Resume restores a drain checkpoint into a freshly constructed learner of
// the same method and returns the saved stream position (wire it into
// Config.StartBatches/StartSamples). The learner must implement
// cl.Snapshotter.
func Resume(path string, l cl.Learner) (State, error) {
	st, err := LoadState(path)
	if err != nil {
		return State{}, err
	}
	if st.Method != l.Name() {
		return State{}, fmt.Errorf("serve: checkpoint %s holds method %q, learner is %q", path, st.Method, l.Name())
	}
	snap := cl.Caps(l).Snapshotter
	if snap == nil {
		return State{}, fmt.Errorf("serve: method %q does not support checkpointing", l.Name())
	}
	if err := snap.Restore(st.Learner); err != nil {
		return State{}, fmt.Errorf("serve: restore %s from %s: %w", l.Name(), path, err)
	}
	return st, nil
}

// Shutdown gracefully stops the server: it refuses new work (503), lets the
// engine drain everything already queued, writes the drain checkpoint, and
// then closes the HTTP listener, waiting up to ctx for the pieces. It is
// idempotent; only the first call drains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })

	select {
	case <-s.engineDone:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	if s.cfg.WAL != nil {
		// Flush the log tail so a post-mortem reader (or a failing-over
		// standby on shared disk) sees every drained record.
		if err := s.cfg.WAL.Sync(); err != nil {
			s.m.checkpointErrors.Inc()
		}
		// Graceful handoff: if a standby has been tailing this server, keep
		// the replication endpoints alive until it has pulled the whole log
		// (the log handler now reports Final, telling it to promote).
		s.awaitHandoff(ctx)
	}
	if s.cfg.Fleet != nil {
		// Fleet mode: drain every shard and demote all resident learners to
		// their per-user checkpoint files.
		if err := s.cfg.Fleet.Shutdown(ctx); err != nil {
			return err
		}
	}
	if s.hsrv != nil {
		return s.hsrv.Shutdown(ctx)
	}
	return nil
}

// Close is Shutdown with a short grace period, for defer use in tests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Batches returns the number of observe batches applied so far (fleet mode:
// summed across all users).
func (s *Server) Batches() int {
	if s.cfg.Fleet != nil {
		return int(s.cfg.Fleet.Stats().Batches)
	}
	return int(s.batches.Load())
}

// Samples returns the number of labelled samples applied so far (fleet mode:
// summed across all users).
func (s *Server) Samples() int {
	if s.cfg.Fleet != nil {
		return int(s.cfg.Fleet.Stats().Samples)
	}
	return int(s.samples.Load())
}
