package serve

import (
	"math"
	"net/http"
	"sync"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/fleet"
	"chameleon/internal/quant"
	"chameleon/internal/tensor"
)

// probeLearner records the exact tensors the engine hands it, so wire tests
// can compare what arrived against what the encoding promises.
type probeLearner struct {
	mu        sync.Mutex
	predicted []*tensor.Tensor
	observed  []cl.LatentBatch
}

func (p *probeLearner) Name() string { return "probe" }

func (p *probeLearner) Observe(b cl.LatentBatch) {
	p.mu.Lock()
	p.observed = append(p.observed, b)
	p.mu.Unlock()
}

func (p *probeLearner) Predict(z *tensor.Tensor) int {
	p.mu.Lock()
	p.predicted = append(p.predicted, z.Clone())
	p.mu.Unlock()
	return 0
}

func newProbeServer(t *testing.T) (*Server, *probeLearner) {
	t.Helper()
	l := &probeLearner{}
	s, err := New(l, stubConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, l
}

// wireInt8 quantizes an fp32 latent into the wire's (latent_int8, scale)
// pair using the same symmetric scheme as the stores.
func wireInt8(lat []float32) ([]byte, float32) {
	q := make([]int8, len(lat))
	scale := quant.QuantizeInt8(q, lat)
	b := make([]byte, len(q))
	for i, v := range q {
		b[i] = byte(v)
	}
	return b, scale
}

// TestQuantizedWirePredictDecodesExactly pins the /v1/predict int8 encoding:
// the learner receives exactly float32(q)*scale — the identical values an
// int8 store would rehearse — for the quantized payload.
func TestQuantizedWirePredictDecodesExactly(t *testing.T) {
	s, l := newProbeServer(t)
	lat := []float32{0.5, -1.25, 0.125, 2.0}
	qz, scale := wireInt8(lat)

	w := postJSON(t, s, "/v1/predict", PredictRequest{LatentInt8: qz, Scale: scale})
	if w.Code != http.StatusOK {
		t.Fatalf("int8 predict: HTTP %d: %s", w.Code, w.Body)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.predicted) != 1 {
		t.Fatalf("learner saw %d predicts, want 1", len(l.predicted))
	}
	got := l.predicted[0].Data()
	for i, b := range qz {
		want := float32(int8(b)) * scale
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("element %d: decoded %v != float32(q)*scale %v", i, got[i], want)
		}
	}
}

// TestQuantizedWireObserveDecodesExactly pins the /v1/observe int8 encoding
// end to end through the engine.
func TestQuantizedWireObserveDecodesExactly(t *testing.T) {
	s, l := newProbeServer(t)
	lat := []float32{-3, 1.5, 0, 0.75}
	qz, scale := wireInt8(lat)

	w := postJSON(t, s, "/v1/observe", ObserveRequest{
		Samples: []ObserveSample{{LatentInt8: qz, Scale: scale, Label: 2}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("int8 observe: HTTP %d: %s", w.Code, w.Body)
	}
	if err := s.Close(); err != nil { // drain so the batch lands
		t.Fatalf("close: %v", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.observed) != 1 || len(l.observed[0].Samples) != 1 {
		t.Fatalf("learner observed %+v, want one 1-sample batch", l.observed)
	}
	sm := l.observed[0].Samples[0]
	if sm.Label != 2 {
		t.Fatalf("label %d, want 2", sm.Label)
	}
	got := sm.Z.Data()
	for i, b := range qz {
		want := float32(int8(b)) * scale
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("element %d: decoded %v != float32(q)*scale %v", i, got[i], want)
		}
	}
}

// TestQuantizedWireRejectsBadPayloads pins the int8 wire validation: length,
// scale and exactly-one-payload errors all answer 400 before any learner work.
func TestQuantizedWireRejectsBadPayloads(t *testing.T) {
	s, _ := newProbeServer(t)
	qz, scale := wireInt8([]float32{1, 2, 3, 4})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"short int8 latent", "/v1/predict", PredictRequest{LatentInt8: qz[:3], Scale: scale}},
		{"long int8 latent", "/v1/predict", PredictRequest{LatentInt8: append(append([]byte(nil), qz...), 0), Scale: scale}},
		{"zero scale", "/v1/predict", PredictRequest{LatentInt8: qz, Scale: 0}},
		{"negative scale", "/v1/predict", PredictRequest{LatentInt8: qz, Scale: -1}},
		{"fp32 and int8", "/v1/predict", PredictRequest{Latent: latent(4), LatentInt8: qz, Scale: scale}},
		{"int8 and image", "/v1/predict", PredictRequest{LatentInt8: qz, Scale: scale, Image: latent(12)}},
		{"observe zero scale", "/v1/observe", ObserveRequest{Samples: []ObserveSample{{LatentInt8: qz, Scale: 0, Label: 0}}}},
		{"observe both payloads", "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4), LatentInt8: qz, Scale: scale, Label: 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if w := postJSON(t, s, tc.path, tc.body); w.Code != http.StatusBadRequest {
				t.Fatalf("%s: HTTP %d, want 400: %s", tc.name, w.Code, w.Body)
			}
		})
	}
}

// TestQuantizedWireFleet pins the fleet surface: the same int8 encoding is
// accepted by a fleet server's predict and observe handlers.
func TestQuantizedWireFleet(t *testing.T) {
	s, _ := newFleetServer(t, fleet.Config{})
	qz, scale := wireInt8([]float32{0.5, -0.5, 1, -1})
	w := postJSON(t, s, "/v1/predict", PredictRequest{User: "u1", LatentInt8: qz, Scale: scale})
	if w.Code != http.StatusOK {
		t.Fatalf("fleet int8 predict: HTTP %d: %s", w.Code, w.Body)
	}
	w = postJSON(t, s, "/v1/observe", ObserveRequest{User: "u1",
		Samples: []ObserveSample{{LatentInt8: qz, Scale: scale, Label: 1}}})
	if w.Code != http.StatusOK {
		t.Fatalf("fleet int8 observe: HTTP %d: %s", w.Code, w.Body)
	}
	w = postJSON(t, s, "/v1/predict", PredictRequest{User: "u1", LatentInt8: qz, Scale: 0})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("fleet bad scale: HTTP %d, want 400", w.Code)
	}
}
