package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/cl"
	"chameleon/internal/replication"
	"chameleon/internal/tensor"
)

// This file is the serving side of internal/replication (DESIGN.md §18):
// the /v1/replication endpoints a primary serves, the replication.Target
// surface a standby's Follower drives, and the log-replay helper both sides
// (and crash recovery) share.

// publishSnapshot captures the live learner into the snapshot served by
// /v1/replication/snapshot. Single-writer discipline: call only where the
// learner is quiescent (the engine goroutine, or New before the engine
// starts). The first publication also anchors baseSnap, the reconstruction
// root the verify endpoint replays forward from.
func (s *Server) publishSnapshot() error {
	state, err := s.caps.Snapshotter.Snapshot()
	if err != nil {
		return err
	}
	snap := &api.SnapshotResponse{
		Method:  s.l.Name(),
		Batches: int(s.batches.Load()),
		Samples: int(s.samples.Load()),
		Cursor:  s.cfg.WAL.End(),
		Learner: state,
	}
	s.replMu.Lock()
	s.replSnap = snap
	if s.baseSnap == nil {
		s.baseSnap = snap
	}
	s.replMu.Unlock()
	return nil
}

// awaitHandoff blocks (up to HandoffTimeout) until a caught-up standby pull
// has been answered Final — the follower's promotion trigger. Waiting only
// for "pulled to the end" is not enough: a follower that was already caught
// up before the drain has read everything yet seen no Final, and closing the
// listener then would strand it unpromoted. Skipped entirely when no
// follower ever pulled.
func (s *Server) awaitHandoff(ctx context.Context) {
	if s.replLastPullNano.Load() == 0 {
		return
	}
	t0 := time.Now()
	end := s.cfg.WAL.End()
	deadline := time.NewTimer(s.cfg.HandoffTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for !(s.replFinalServed.Load() && s.replLastPullSeq.Load() >= end) {
		select {
		case <-tick.C:
		case <-deadline.C:
			s.m.handoffSeconds.ObserveSince(t0)
			return
		case <-ctx.Done():
			return
		}
	}
	s.m.handoffSeconds.ObserveSince(t0)
}

// engineDrained reports whether the engine goroutine has exited (the drain
// completed); with the draining flag set this means the log is final.
func (s *Server) engineDrained() bool {
	select {
	case <-s.engineDone:
		return true
	default:
		return false
	}
}

// --- replication.Target (the standby side) ---

// RestoreSnapshot replaces the learner state with a primary snapshot and
// resets the local observe log to the snapshot's cursor. This is the
// standby's bootstrap; it also re-anchors the verify reconstruction root.
func (s *Server) RestoreSnapshot(snap *api.SnapshotResponse) error {
	if s.cfg.Fleet != nil {
		return errors.New("serve: a fleet server cannot restore a single-learner snapshot")
	}
	if s.cfg.WAL == nil {
		return errors.New("serve: restoring a snapshot requires an observe log")
	}
	if snap.Method != s.l.Name() {
		return fmt.Errorf("serve: snapshot holds method %q, learner is %q", snap.Method, s.l.Name())
	}
	var err error
	onErr := s.onEngine(context.Background(), func() {
		if err = s.caps.Snapshotter.Restore(snap.Learner); err != nil {
			return
		}
		if err = s.cfg.WAL.Reset(snap.Cursor); err != nil {
			return
		}
		s.batches.Store(int64(snap.Batches))
		s.samples.Store(int64(snap.Samples))
		s.replMu.Lock()
		s.baseSnap = snap
		s.replSnap = snap
		s.replMu.Unlock()
	})
	if onErr != nil {
		return onErr
	}
	return err
}

// ApplyRecord routes one replicated observe batch through the engine: the
// record is appended to the local log (durably, same as a client observe)
// and applied in the primary's order. Sequence or batch-index misalignment
// is an error — the follower re-bootstraps from a fresh snapshot.
func (s *Server) ApplyRecord(rec *api.LogRecord) error {
	if s.cfg.Fleet != nil || s.cfg.WAL == nil {
		return errors.New("serve: ApplyRecord needs a single-learner server with an observe log")
	}
	if rec.User != "" {
		return fmt.Errorf("serve: record seq %d is user-tagged (%q); single-learner servers replicate untagged streams", rec.Seq, rec.User)
	}
	samples, err := samplesFromRecord(rec, s.cfg.LatentShape)
	if err != nil {
		return err
	}
	or := &observeReq{samples: samples, domain: rec.Domain, rec: rec, resp: make(chan observeResp, 1)}
	if ok, draining := enqueue(s, s.observeQ, or); !ok {
		if draining {
			return errors.New("serve: draining")
		}
		return errors.New("serve: observe queue full")
	}
	resp := <-or.resp
	return resp.err
}

// LogEnd returns the local observe log's exclusive end.
func (s *Server) LogEnd() uint64 { return s.cfg.WAL.End() }

// SetLag publishes the standby's replication position for /v1/stats.
func (s *Server) SetLag(lagBatches int64, lastSync time.Time) {
	s.replLagBatches.Store(lagBatches)
	s.replLastSyncNano.Store(lastSync.UnixNano())
}

// Promote flips a standby into the serving role: /v1/predict and /v1/observe
// stop answering not_ready. Idempotent.
func (s *Server) Promote() error {
	if s.ready.CompareAndSwap(false, true) {
		s.m.promotions.Inc()
	}
	return nil
}

// Ready reports whether the server accepts predict/observe traffic (false
// only on a not-yet-promoted standby).
func (s *Server) Ready() bool { return s.ready.Load() }

// samplesFromRecord materialises a log record's samples for the learner.
func samplesFromRecord(rec *api.LogRecord, shape []int) ([]cl.LatentSample, error) {
	want := 1
	for _, d := range shape {
		want *= d
	}
	samples := make([]cl.LatentSample, len(rec.Samples))
	for i, sm := range rec.Samples {
		if len(sm.Latent) != want {
			return nil, fmt.Errorf("serve: record seq %d sample %d has %d elements, want %d (shape %v)",
				rec.Seq, i, len(sm.Latent), want, shape)
		}
		samples[i] = cl.LatentSample{Z: tensor.FromSlice(sm.Latent, shape...), Label: sm.Label, Domain: rec.Domain}
	}
	return samples, nil
}

// ReplayLog feeds every untagged log record with sequence number in [from,
// to) into l in order (to == 0 means the whole log) and returns how many
// batches and samples it applied. This is the recovery primitive: crash
// recovery replays the tail a checkpoint missed, and the verify endpoint
// rebuilds a learner from (snapshot, log suffix). The caller must own l
// exclusively.
func ReplayLog(l cl.Learner, wlog *replication.Log, from, to uint64, shape []int) (batches, samples int, err error) {
	if to == 0 {
		to = wlog.End()
	}
	var applyErr error
	err = wlog.Scan(from, func(rec *api.LogRecord) bool {
		if rec.Seq >= to {
			return false
		}
		if rec.User != "" {
			applyErr = fmt.Errorf("serve: log record seq %d is user-tagged; single-learner replay cannot apply it", rec.Seq)
			return false
		}
		ss, serr := samplesFromRecord(rec, shape)
		if serr != nil {
			applyErr = serr
			return false
		}
		l.Observe(cl.LatentBatch{Samples: ss, Index: rec.Batch, Domain: rec.Domain})
		batches++
		samples += len(ss)
		return true
	})
	if err == nil {
		err = applyErr
	}
	return batches, samples, err
}

// --- HTTP handlers (the primary side) ---

// handleReplSnapshot serves the cached learner snapshot a standby bootstraps
// from. The cache is refreshed every CheckpointEvery batches; a stale cache
// only means the standby replays a longer log suffix.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "GET only")
		return
	}
	if s.cfg.Fleet != nil || s.cfg.WAL == nil {
		writeError(w, http.StatusNotFound, api.CodeBadRequest, "replication is not enabled on this server")
		return
	}
	s.replMu.Lock()
	snap := s.replSnap
	s.replMu.Unlock()
	if snap == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, api.CodeNotReady, "no snapshot published yet")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleReplLog serves one cursor-based page of the observe log:
// GET /v1/replication/log?after=<seq>&max=<n>.
func (s *Server) handleReplLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "GET only")
		return
	}
	if s.cfg.WAL == nil {
		writeError(w, http.StatusNotFound, api.CodeBadRequest, "replication is not enabled on this server")
		return
	}
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("after"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: after must be a log sequence number")
		return
	}
	max := 256
	if v := q.Get("max"); v != "" {
		max, err = strconv.Atoi(v)
		if err != nil || max <= 0 || max > 4096 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: max must be in 1..4096")
			return
		}
	}
	recs, err := s.cfg.WAL.ReadFrom(after, max)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: "+err.Error())
		return
	}
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	resp := api.LogResponse{
		Records: recs,
		Next:    after,
		End:     s.cfg.WAL.End(),
		Final:   draining && s.engineDrained(),
	}
	if len(recs) > 0 {
		resp.Next = recs[len(recs)-1].Seq + 1
	}
	// Handoff bookkeeping: remember how far the follower has read — and
	// whether it has been told Final while caught up (its promotion trigger)
	// — so a graceful shutdown keeps the endpoint alive exactly long enough.
	s.replLastPullSeq.Store(resp.Next)
	s.replLastPullNano.Store(time.Now().UnixNano())
	if resp.Final && resp.Next >= resp.End {
		s.replFinalServed.Store(true)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplVerify rebuilds a learner from (base snapshot, local log) and
// compares it against the live learner: GET /v1/replication/verify. This is
// the durability proof the failover smoke asserts on the survivor.
func (s *Server) handleReplVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "GET only")
		return
	}
	if s.cfg.Fleet != nil || s.cfg.WAL == nil {
		writeError(w, http.StatusNotFound, api.CodeBadRequest, "replication is not enabled on this server")
		return
	}
	if s.cfg.NewLearner == nil || s.cfg.SnapshotsEqual == nil {
		writeError(w, http.StatusNotFound, api.CodeBadRequest, "verify is not supported for this method (no fresh-learner factory or snapshot comparator)")
		return
	}
	// Capture a consistent (live snapshot, cursor) pair on the engine so no
	// observe lands between the two reads.
	var liveSnap []byte
	var liveBatches int
	var cursor uint64
	var snapErr error
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.onEngine(ctx, func() {
		liveSnap, snapErr = s.caps.Snapshotter.Snapshot()
		liveBatches = int(s.batches.Load())
		cursor = s.cfg.WAL.End()
	}); err != nil {
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "engine busy: "+err.Error())
		return
	}
	if snapErr != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, snapErr.Error())
		return
	}
	s.replMu.Lock()
	base := s.baseSnap
	s.replMu.Unlock()
	if base == nil {
		writeError(w, http.StatusServiceUnavailable, api.CodeNotReady, "no base snapshot yet")
		return
	}
	fresh, err := s.cfg.NewLearner()
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "fresh learner: "+err.Error())
		return
	}
	freshCaps := cl.Caps(fresh)
	if freshCaps.Snapshotter == nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "fresh learner does not snapshot")
		return
	}
	if err := freshCaps.Snapshotter.Restore(base.Learner); err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "restore base snapshot: "+err.Error())
		return
	}
	replayed, _, err := ReplayLog(fresh, s.cfg.WAL, base.Cursor, cursor, s.cfg.LatentShape)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "replay log: "+err.Error())
		return
	}
	reconSnap, err := freshCaps.Snapshotter.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "snapshot reconstruction: "+err.Error())
		return
	}
	eq, err := s.cfg.SnapshotsEqual(liveSnap, reconSnap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "compare snapshots: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, api.VerifyResponse{
		Equal:    eq,
		Batches:  liveBatches,
		Cursor:   cursor,
		Replayed: replayed,
	})
}
