package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/replication"
)

// --- replication test rig ---------------------------------------------------

// chameleonFactory returns a NewLearner closure that builds backbone+learner
// pairs bit-identical to chameleonAt(t, classes, seed) — the factory the
// verify endpoint and the standby rig use.
func chameleonFactory(classes int, seed int64) func() (cl.Learner, error) {
	return func() (cl.Learner, error) {
		model, err := mobilenet.New(mobilenet.DefaultConfig(classes, seed))
		if err != nil {
			return nil, err
		}
		head := cl.NewHead(model, cl.HeadConfig{LR: 0.01, Seed: seed})
		return core.New(head, core.Config{
			STCap: 5, LTCap: 20, AccessRate: 2, PromoteEvery: 2, LTSampleSize: 5, Seed: seed,
		}), nil
	}
}

// replServer builds a server with an observe log in dir. standby==true makes
// it a warm standby (503 not_ready until promoted).
func replServer(t *testing.T, dir string, classes int, seed int64, standby bool) (*Server, cl.Learner, *replication.Log) {
	t.Helper()
	model, l := chameleonAt(t, classes, seed)
	wlog, err := replication.Open(dir, replication.Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	t.Cleanup(func() { _ = wlog.Close() })
	cfg := Config{
		LatentShape:     model.LatentShape,
		Classes:         classes,
		Registry:        obs.NewRegistry(),
		WAL:             wlog,
		Standby:         standby,
		CheckpointEvery: 4, // frequent snapshot refresh: bootstraps replay short suffixes
		NewLearner:      chameleonFactory(classes, seed),
		SnapshotsEqual:  core.SnapshotsEqual,
		HandoffTimeout:  2 * time.Second,
	}
	s, err := New(l, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, l, wlog
}

// engineSnapshot captures the learner through the engine goroutine, so the
// bytes are a consistent observe-stream point.
func engineSnapshot(t *testing.T, s *Server) []byte {
	t.Helper()
	var b []byte
	var serr error
	if err := s.onEngine(context.Background(), func() {
		b, serr = s.caps.Snapshotter.Snapshot()
	}); err != nil {
		t.Fatalf("onEngine: %v", err)
	}
	if serr != nil {
		t.Fatalf("snapshot: %v", serr)
	}
	return b
}

func requireSnapshotsEqual(t *testing.T, a, b []byte, context string) {
	t.Helper()
	eq, err := core.SnapshotsEqual(a, b)
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	if !eq {
		t.Fatalf("%s: learner state diverged", context)
	}
}

// errCode decodes the machine-readable error envelope of a non-200 response.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error envelope: %v (%q)", err, body)
	}
	return e.Code
}

// --- log replay bit-identity ------------------------------------------------

// TestLogReplayBitIdentity is the durability contract: with predict load on
// the wire (1 worker, then 8), the observe log alone must rebuild exactly the
// state a never-crashed serial control reaches, and exactly the state the
// live server holds. Run under -race this also proves the log sits correctly
// inside the single-writer discipline.
func TestLogReplayBitIdentity(t *testing.T) {
	const (
		classes  = 4
		seed     = 21
		nBatches = 16
	)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			s, _, wlog := replServer(t, t.TempDir(), classes, seed, false)
			url := serveURL(t, s)
			client := &http.Client{Timeout: 10 * time.Second}
			latentLen := 1
			for _, d := range s.cfg.LatentShape {
				latentLen *= d
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 100))
					for {
						select {
						case <-stop:
							return
						default:
						}
						body := predictBody(rng, latentLen, "", false)
						_, _, _ = post(client, url+"/v1/predict", body)
					}
				}(w)
			}

			rng := rand.New(rand.NewSource(7))
			batches := makeWireBatches(rng, nBatches, 5, latentLen, classes)
			for i, wb := range batches {
				or, status := httpObserve(t, client, url, wb)
				if status != http.StatusOK {
					t.Fatalf("observe %d: HTTP %d", i, status)
				}
				if or.Batch != i {
					t.Fatalf("observe %d assigned batch %d", i, or.Batch)
				}
			}
			close(stop)
			wg.Wait()

			// Serial control: the same stream applied directly.
			_, control := chameleonAt(t, classes, seed)
			for i, wb := range batches {
				control.Observe(wb.latentBatch(i, s.cfg.LatentShape))
			}

			// Reconstruction: fresh learner + full log replay.
			fresh, err := chameleonFactory(classes, seed)()
			if err != nil {
				t.Fatalf("fresh learner: %v", err)
			}
			nb, ns, err := ReplayLog(fresh, wlog, 0, 0, s.cfg.LatentShape)
			if err != nil {
				t.Fatalf("ReplayLog: %v", err)
			}
			if nb != nBatches || ns != nBatches*5 {
				t.Fatalf("replayed %d batches / %d samples, want %d / %d", nb, ns, nBatches, nBatches*5)
			}
			requireSameState(t, fresh, control, "log replay vs serial control")

			// And the live server agrees with both.
			live := engineSnapshot(t, s)
			requireSnapshotsEqual(t, live, snapshotOf(t, fresh), "live server vs log replay")
		})
	}
}

// TestVerifyEndpoint exercises GET /v1/replication/verify: the server rebuilds
// itself from (base snapshot, log suffix) and must find the reconstruction
// bit-identical to the live learner.
func TestVerifyEndpoint(t *testing.T) {
	const classes = 4
	s, _, _ := replServer(t, t.TempDir(), classes, 23, false)
	latentLen := 1
	for _, d := range s.cfg.LatentShape {
		latentLen *= d
	}
	rng := rand.New(rand.NewSource(3))
	batches := makeWireBatches(rng, 10, 4, latentLen, classes)
	for i, wb := range batches {
		if w := postJSON(t, s, "/v1/observe", wb.observeRequest()); w.Code != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d", i, w.Code)
		}
	}
	w := getPath(t, s, "/v1/replication/verify")
	if w.Code != http.StatusOK {
		t.Fatalf("verify: HTTP %d: %s", w.Code, w.Body.String())
	}
	var vr api.VerifyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &vr); err != nil {
		t.Fatalf("verify decode: %v", err)
	}
	if !vr.Equal {
		t.Fatalf("verify: reconstruction diverged from live state: %+v", vr)
	}
	if vr.Batches != 10 || vr.Cursor != 10 {
		t.Fatalf("verify bookkeeping: %+v", vr)
	}
	// The reconstruction root is the startup snapshot (base anchors the log's
	// start; only replSnap refreshes), so the whole 10-batch log replays.
	if vr.Replayed != 10 {
		t.Fatalf("verify replayed %d batches, want 10 (from the base snapshot)", vr.Replayed)
	}
}

// --- standby gating and error codes ----------------------------------------

func TestStandbyGatesTrafficUntilPromoted(t *testing.T) {
	s, _, _ := replServer(t, t.TempDir(), 4, 25, true)
	latentLen := 1
	for _, d := range s.cfg.LatentShape {
		latentLen *= d
	}

	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(latentLen)})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("standby predict: HTTP %d, want 503", w.Code)
	}
	if c := errCode(t, w.Body.Bytes()); c != api.CodeNotReady {
		t.Fatalf("standby predict code %q, want %q", c, api.CodeNotReady)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("standby 503 carries no Retry-After")
	}
	if w := postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(latentLen)}}}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("standby observe: HTTP %d, want 503", w.Code)
	}

	var st Stats
	if w := getPath(t, s, "/v1/stats"); true {
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("stats: %v", err)
		}
	}
	if st.Role != api.RoleStandby {
		t.Fatalf("stats role %q, want %q", st.Role, api.RoleStandby)
	}

	if err := s.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(latentLen)}); w.Code != http.StatusOK {
		t.Fatalf("promoted predict: HTTP %d: %s", w.Code, w.Body.String())
	}
	if w := getPath(t, s, "/v1/stats"); true {
		var st2 Stats
		_ = json.Unmarshal(w.Body.Bytes(), &st2)
		if st2.Role != api.RolePrimary {
			t.Fatalf("promoted role %q, want %q", st2.Role, api.RolePrimary)
		}
	}
}

// TestErrorCodes pins the machine-readable error contract clients retry on:
// every shed and refusal carries a stable code, and every 429/503 carries
// Retry-After.
func TestErrorCodes(t *testing.T) {
	t.Run("bad_request", func(t *testing.T) {
		s, _ := newStubServer(t, stubConfig())
		w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(1)})
		if w.Code != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", w.Code)
		}
		if c := errCode(t, w.Body.Bytes()); c != api.CodeBadRequest {
			t.Fatalf("code %q, want %q", c, api.CodeBadRequest)
		}
	})
	t.Run("draining", func(t *testing.T) {
		s, _ := newStubServer(t, stubConfig())
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("HTTP %d, want 503", w.Code)
		}
		if c := errCode(t, w.Body.Bytes()); c != api.CodeDraining {
			t.Fatalf("code %q, want %q", c, api.CodeDraining)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("draining 503 carries no Retry-After")
		}
	})
	t.Run("queue_full", func(t *testing.T) {
		cfg := stubConfig()
		cfg.QueueDepth = 1
		cfg.BatchWindow = -1 // no coalescing wait: the engine grabs one and blocks
		l := &stubLearner{gate: make(chan struct{}), predictStarted: make(chan struct{})}
		s, err := New(l, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(func() { _ = s.Close() })
		// One predict occupies the engine (blocked in the stub), one fills the
		// depth-1 queue, the third sheds.
		body, _ := json.Marshal(PredictRequest{Latent: latent(4)})
		for i := 0; i < 2; i++ {
			go func() {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}()
		}
		<-l.predictStarted
		waitFor(t, func() bool { return len(s.predictQ) == 1 })
		w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
		close(l.gate)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("HTTP %d, want 429", w.Code)
		}
		if c := errCode(t, w.Body.Bytes()); c != api.CodeQueueFull {
			t.Fatalf("code %q, want %q", c, api.CodeQueueFull)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("429 carries no Retry-After")
		}
	})
}

// --- warm standby sync, handoff, failover ----------------------------------

// standbyRig wires a primary (listening on a real socket) to a warm standby
// tailing it through a Follower.
type standbyRig struct {
	primary  *Server
	pLog     *replication.Log
	pURL     string
	standby  *Server
	sLog     *replication.Log
	follower *replication.Follower
	folDone  chan error
	cancel   context.CancelFunc
	client   *http.Client
	latLen   int
	batches  []wireBatch
}

func newStandbyRig(t *testing.T, classes int, seed int64, folCfg replication.FollowerConfig) *standbyRig {
	t.Helper()
	r := &standbyRig{client: &http.Client{Timeout: 10 * time.Second}}
	r.primary, _, r.pLog = replServer(t, t.TempDir(), classes, seed, false)
	r.pURL = serveURL(t, r.primary)
	r.standby, _, r.sLog = replServer(t, t.TempDir(), classes, seed, true)

	folCfg.PrimaryURL = r.pURL
	folCfg.Target = r.standby
	folCfg.Registry = obs.NewRegistry()
	if folCfg.PollInterval == 0 {
		folCfg.PollInterval = 5 * time.Millisecond
	}
	fol, err := replication.NewFollower(folCfg)
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	r.follower = fol
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	t.Cleanup(cancel)
	r.folDone = make(chan error, 1)
	go func() { r.folDone <- fol.Run(ctx) }()

	r.latLen = 1
	for _, d := range r.primary.cfg.LatentShape {
		r.latLen *= d
	}
	rng := rand.New(rand.NewSource(seed))
	r.batches = makeWireBatches(rng, 64, 4, r.latLen, classes)
	return r
}

// feedPrimary posts stream batches [from, to) to the primary over HTTP.
func (r *standbyRig) feedPrimary(t *testing.T, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		or, status := httpObserve(t, r.client, r.pURL, r.batches[i])
		if status != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d", i, status)
		}
		if or.Batch != i {
			t.Fatalf("observe %d assigned batch %d", i, or.Batch)
		}
	}
}

// awaitSync blocks until the standby has applied the primary's whole log.
func (r *standbyRig) awaitSync(t *testing.T, end uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.standby.LogEnd() < end {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at seq %d, want %d", r.standby.LogEnd(), end)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// requireBitIdentical compares primary and standby learner state at a sync
// point (both engines quiescent for new observes).
func (r *standbyRig) requireBitIdentical(t *testing.T, context string) {
	t.Helper()
	requireSnapshotsEqual(t, engineSnapshot(t, r.primary), engineSnapshot(t, r.standby), context)
}

// TestStandbySyncsBitIdenticalAndHandsOff is the tentpole path: a standby
// bootstraps from a snapshot, tails the log staying bit-identical at every
// sync point, and on the primary's graceful drain finishes the log, promotes
// and serves — with the observe stream continuing at the exact batch index
// the primary stopped at.
func TestStandbySyncsBitIdenticalAndHandsOff(t *testing.T) {
	const classes = 4
	rig := newStandbyRig(t, classes, 31, replication.FollowerConfig{FailoverAfter: -1})

	rig.feedPrimary(t, 0, 12)
	rig.awaitSync(t, 12)
	rig.requireBitIdentical(t, "sync point at batch 12")

	rig.feedPrimary(t, 12, 20)
	rig.awaitSync(t, 20)
	rig.requireBitIdentical(t, "sync point at batch 20")

	// Graceful handoff: drain the primary; the standby must finish the log,
	// promote and take the stream over with nothing lost.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rig.primary.Shutdown(ctx); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
	select {
	case err := <-rig.folDone:
		if err != nil {
			t.Fatalf("follower: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not promote after primary drain")
	}
	if !rig.standby.Ready() {
		t.Fatal("standby not ready after promotion")
	}
	if got := rig.standby.Batches(); got != 20 {
		t.Fatalf("standby took over at batch %d, want 20 (zero loss)", got)
	}
	// The promoted server continues the stream where the primary stopped.
	w := postJSON(t, rig.standby, "/v1/observe", rig.batches[20].observeRequest())
	if w.Code != http.StatusOK {
		t.Fatalf("post-handoff observe: HTTP %d: %s", w.Code, w.Body.String())
	}
	var or ObserveResponse
	_ = json.Unmarshal(w.Body.Bytes(), &or)
	if or.Batch != 20 {
		t.Fatalf("post-handoff observe assigned batch %d, want 20", or.Batch)
	}
	// And its own (snapshot, log) still reconstructs its state.
	wv := getPath(t, rig.standby, "/v1/replication/verify")
	if wv.Code != http.StatusOK {
		t.Fatalf("survivor verify: HTTP %d: %s", wv.Code, wv.Body.String())
	}
	var vr api.VerifyResponse
	_ = json.Unmarshal(wv.Body.Bytes(), &vr)
	if !vr.Equal {
		t.Fatalf("survivor verify diverged: %+v", vr)
	}
}

// TestStandbyKillAndResumeMidSync kills the standby partway through a sync
// and starts a replacement against the same primary: the new standby must
// re-bootstrap and converge to bit-identical state.
func TestStandbyKillAndResumeMidSync(t *testing.T) {
	const classes = 4
	rig := newStandbyRig(t, classes, 41, replication.FollowerConfig{FailoverAfter: -1})

	rig.feedPrimary(t, 0, 10)
	// Kill mid-sync: stop the follower as soon as it has applied anything.
	waitFor(t, func() bool { return rig.standby.LogEnd() > 0 })
	rig.cancel()
	<-rig.folDone
	if err := rig.standby.Close(); err != nil {
		t.Fatalf("standby close: %v", err)
	}
	if err := rig.sLog.Close(); err != nil {
		t.Fatalf("standby log close: %v", err)
	}

	// Resume: a fresh standby process over the SAME log directory (its stale
	// records are reset by the bootstrap) tails the same primary.
	dir := rig.sLog.Dir()
	wlog2, err := replication.Open(dir, replication.Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("reopen standby log: %v", err)
	}
	t.Cleanup(func() { _ = wlog2.Close() })
	model, l := chameleonAt(t, classes, 41)
	s2, err := New(l, Config{
		LatentShape:     model.LatentShape,
		Classes:         classes,
		Registry:        obs.NewRegistry(),
		WAL:             wlog2,
		Standby:         true,
		CheckpointEvery: 4,
		NewLearner:      chameleonFactory(classes, 41),
		SnapshotsEqual:  core.SnapshotsEqual,
	})
	if err != nil {
		t.Fatalf("standby2: %v", err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	fol2, err := replication.NewFollower(replication.FollowerConfig{
		PrimaryURL:    rig.pURL,
		Target:        s2,
		PollInterval:  5 * time.Millisecond,
		FailoverAfter: -1,
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("follower2: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done2 := make(chan error, 1)
	go func() { done2 <- fol2.Run(ctx) }()

	rig.feedPrimary(t, 10, 16)
	deadline := time.Now().Add(10 * time.Second)
	for s2.LogEnd() < 16 {
		if time.Now().After(deadline) {
			t.Fatalf("resumed standby stuck at seq %d, want 16", s2.LogEnd())
		}
		time.Sleep(2 * time.Millisecond)
	}
	requireSnapshotsEqual(t, engineSnapshot(t, rig.primary), engineSnapshot(t, s2), "resumed standby at batch 16")
}

// TestProbeFailoverRecoversDiskTail hard-kills the primary's HTTP frontend
// (the SIGKILL shape: no drain, no Final) with acknowledged observes the
// standby never streamed. Probe failover must replay those records from the
// dead primary's on-disk log before promoting, so even a SIGKILL loses no
// acknowledged observe.
func TestProbeFailoverRecoversDiskTail(t *testing.T) {
	const classes = 4
	rig := newStandbyRig(t, classes, 51, replication.FollowerConfig{
		FailoverAfter: 2,
	})
	// The follower needs the primary's log directory for tail recovery; the
	// rig built it, so rebuild the follower with the dir wired in.
	rig.cancel()
	<-rig.folDone
	fol, err := replication.NewFollower(replication.FollowerConfig{
		PrimaryURL:    rig.pURL,
		Target:        rig.standby,
		PollInterval:  5 * time.Millisecond,
		FailoverAfter: 2,
		PrimaryWALDir: rig.pLog.Dir(),
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- fol.Run(ctx) }()

	rig.feedPrimary(t, 0, 10)
	rig.awaitSync(t, 10)

	// Hard-kill the primary's HTTP frontend, then land 4 more observes
	// through its still-running engine (driving the handler directly, the
	// way in-flight requests would have landed around a SIGKILL): they are
	// durably logged but never streamed.
	if err := rig.primary.hsrv.Close(); err != nil {
		t.Fatalf("kill primary listener: %v", err)
	}
	for i := 10; i < 14; i++ {
		w := postJSON(t, rig.primary, "/v1/observe", rig.batches[i].observeRequest())
		if w.Code != http.StatusOK {
			t.Fatalf("direct observe %d: HTTP %d", i, w.Code)
		}
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follower: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never failed over")
	}
	if !rig.standby.Ready() {
		t.Fatal("standby not promoted after probe failover")
	}
	if got := rig.standby.Batches(); got != 14 {
		t.Fatalf("standby promoted at batch %d, want 14 (disk tail lost)", got)
	}
	requireSnapshotsEqual(t, engineSnapshot(t, rig.primary), engineSnapshot(t, rig.standby), "survivor vs dead primary at batch 14")
}

// TestRollingRestartZeroFailedRequests is the end-to-end client contract: a
// loadgen run with -failover across a graceful primary restart must finish
// with zero failed requests — retryable refusals and the handoff window are
// absorbed by retries, never surfaced as errors.
func TestRollingRestartZeroFailedRequests(t *testing.T) {
	const classes = 4
	rig := newStandbyRig(t, classes, 61, replication.FollowerConfig{FailoverAfter: -1})
	sURL := serveURL(t, rig.standby)

	repCh := make(chan LoadReport, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := RunLoad(rig.pURL, LoadOptions{
			Clients:        4,
			Duration:       3 * time.Second,
			ObserveBatches: 30,
			Failover:       sURL,
			Seed:           61,
		})
		repCh <- rep
		errCh <- err
	}()

	// Mid-run, gracefully restart the primary out from under the load.
	time.Sleep(500 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := rig.primary.Shutdown(ctx); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}

	rep := <-repCh
	if err := <-errCh; err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("rolling restart failed %d requests:\n%s", rep.Errors, rep)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen completed no requests")
	}
	if rep.Failovers == 0 {
		t.Fatalf("loadgen never flipped to the standby:\n%s", rep)
	}
	waitFor(t, func() bool { return rig.standby.Ready() })
	// The survivor's (snapshot, log) must still reconstruct its live state.
	w := getPath(t, rig.standby, "/v1/replication/verify")
	if w.Code != http.StatusOK {
		t.Fatalf("survivor verify: HTTP %d: %s", w.Code, w.Body.String())
	}
	var vr api.VerifyResponse
	_ = json.Unmarshal(w.Body.Bytes(), &vr)
	if !vr.Equal {
		t.Fatalf("survivor verify diverged: %+v", vr)
	}
}

// TestStatsReplicationSection pins the role/replication surface of /v1/stats.
func TestStatsReplicationSection(t *testing.T) {
	s, _, _ := replServer(t, t.TempDir(), 4, 71, false)
	latentLen := 1
	for _, d := range s.cfg.LatentShape {
		latentLen *= d
	}
	rng := rand.New(rand.NewSource(5))
	for i, wb := range makeWireBatches(rng, 3, 2, latentLen, 4) {
		if w := postJSON(t, s, "/v1/observe", wb.observeRequest()); w.Code != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d", i, w.Code)
		}
	}
	var st Stats
	w := getPath(t, s, "/v1/stats")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Role != api.RolePrimary {
		t.Fatalf("role %q, want primary", st.Role)
	}
	if st.Replication == nil || st.Replication.Cursor != 3 {
		t.Fatalf("replication section: %+v", st.Replication)
	}
}
