package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/quant"
)

// LoadOptions configures one closed-loop load run: Clients goroutines each
// issue predict requests back-to-back (next request only after the previous
// response), while one optional sequential observer feeds labelled batches —
// the live-traffic shape the serving path is built for.
type LoadOptions struct {
	// Clients is the number of concurrent predict clients (default 8).
	Clients int
	// RequestsPerClient stops each client after that many completed
	// requests; 0 means run until Duration elapses.
	RequestsPerClient int
	// Duration bounds the run when RequestsPerClient is 0 (default 2s).
	Duration time.Duration
	// ObserveBatches is how many labelled batches the sequential observer
	// sends during the run (0 disables the observer).
	ObserveBatches int
	// ObserveBatchSize is samples per observe batch (default 10).
	ObserveBatchSize int
	// Seed drives the synthetic latent payloads.
	Seed int64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// Users tags every request with a user id drawn from a Zipf popularity
	// distribution over that many distinct users ("u0" is the most popular).
	// Required shape for exercising a fleet server's hot-set/LRU policy: a
	// few users stay hot, the long tail forces evictions and fault-ins.
	// 0 auto-selects 256 against a fleet server and disables user tagging
	// otherwise.
	Users int
	// ZipfS is the Zipf exponent (must be > 1; default 1.2 — a mild skew
	// that still leaves a heavy tail of cold users).
	ZipfS float64
	// Int8 sends latents in the quantized wire encoding (latent_int8 +
	// scale, ~4× smaller bodies) instead of fp32 JSON number arrays.
	Int8 bool
	// Failover is an optional standby base URL. When set, clients stop
	// counting transport failures and retryable error codes (queue_full,
	// draining, not_ready, timeout) as errors: they retry, flipping between
	// the two servers on connection failure or a draining/not_ready answer.
	// This is the client half of the warm-standby contract — a rolling
	// restart under load must complete with zero failed requests
	// (DESIGN.md §18). Latency percentiles then include retry time, which
	// is exactly the client-visible cost of a handoff.
	Failover string
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.ObserveBatchSize <= 0 {
		o.ObserveBatchSize = 10
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	return o
}

// userPicker draws Zipf-popular user ids; the zero value (disabled) draws "".
type userPicker struct {
	zipf *rand.Zipf
}

func newUserPicker(rng *rand.Rand, users int, s float64) userPicker {
	if users <= 0 {
		return userPicker{}
	}
	return userPicker{zipf: rand.NewZipf(rng, s, 1, uint64(users-1))}
}

func (p userPicker) pick() string {
	if p.zipf == nil {
		return ""
	}
	return fmt.Sprintf("u%d", p.zipf.Uint64())
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Clients        int     `json:"clients"`
	Users          int     `json:"users,omitempty"`
	Requests       int64   `json:"predict_requests"`
	Shed           int64   `json:"predict_shed"`
	Errors         int64   `json:"errors"`
	Retries        int64   `json:"retries,omitempty"`
	Failovers      int64   `json:"failovers,omitempty"`
	ObserveBatches int64   `json:"observe_batches"`
	DurationSec    float64 `json:"duration_sec"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	MeanMs         float64 `json:"latency_mean_ms"`
	P50Ms          float64 `json:"latency_p50_ms"`
	P95Ms          float64 `json:"latency_p95_ms"`
	P99Ms          float64 `json:"latency_p99_ms"`
}

// String renders the report the way cmd/chameleon-loadgen prints it.
func (r LoadReport) String() string {
	s := fmt.Sprintf(
		"clients %d  predicts %d (%.0f req/s)  shed %d  errors %d  observes %d",
		r.Clients, r.Requests, r.ThroughputRPS, r.Shed, r.Errors, r.ObserveBatches)
	if r.Retries > 0 || r.Failovers > 0 {
		s += fmt.Sprintf("  retries %d  failovers %d", r.Retries, r.Failovers)
	}
	return s + fmt.Sprintf(
		"\nlatency: mean %.2f ms  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (%.2fs run)",
		r.MeanMs, r.P50Ms, r.P95Ms, r.P99Ms, r.DurationSec)
}

// pool tracks which server the generator is aimed at. Without -failover it
// holds one URL; with a standby it holds two, and a client that hits a dead
// or draining server flips the pool so every client follows on its next
// request. Flips are counted — the report's "failovers".
type pool struct {
	mu    sync.Mutex
	urls  []string
	cur   int
	flips int64
}

func newPool(primary, failover string) *pool {
	p := &pool{urls: []string{primary}}
	if failover != "" {
		p.urls = append(p.urls, failover)
	}
	return p
}

func (p *pool) current() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.urls[p.cur]
}

// demote flips away from url if it is still the current target. Idempotent
// under racing clients: the first demotion wins, the rest are no-ops.
func (p *pool) demote(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.urls) < 2 || p.urls[p.cur] != url {
		return
	}
	p.cur = (p.cur + 1) % len(p.urls)
	p.flips++
}

func (p *pool) flipCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flips
}

// sendRetry posts body until it gets a definitive answer: transport errors
// and retryable error codes (api.Retryable) are retried against whatever
// server the pool currently points at, flipping targets when the current one
// is unreachable, draining, or a not-yet-promoted standby. A non-retryable
// status (bad_request, …) is returned as-is; exhausting the budget returns
// the last failure as an error.
func sendRetry(client *http.Client, p *pool, path string, body []byte, budget time.Duration) (status int, retries int64, err error) {
	deadline := time.Now().Add(budget)
	for {
		url := p.current()
		var code string
		status, code, err = post(client, url+path, body)
		switch {
		case err != nil:
			// The server is gone (killed primary) or not yet listening:
			// flip to the standby and retry.
			p.demote(url)
		case status == http.StatusOK:
			return status, retries, nil
		case api.Retryable(code):
			if code == api.CodeDraining || code == api.CodeNotReady {
				p.demote(url)
			}
		default:
			return status, retries, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("loadgen: retry budget exhausted (last HTTP %d)", status)
			}
			return status, retries, err
		}
		retries++
		time.Sleep(5 * time.Millisecond)
	}
}

// RunLoad drives a closed-loop load test against a running server at
// baseURL (e.g. "http://127.0.0.1:8080"). It self-configures from
// /v1/stats — latent shape and class count come from the server, so the
// generator needs no out-of-band model knowledge.
func RunLoad(baseURL string, opt LoadOptions) (LoadReport, error) {
	opt = opt.withDefaults()
	client := &http.Client{Timeout: opt.Timeout}

	stats, err := fetchStats(client, baseURL)
	if err != nil && opt.Failover != "" {
		// The primary may already be gone; the standby answers stats too.
		stats, err = fetchStats(client, opt.Failover)
	}
	if err != nil {
		return LoadReport{}, err
	}
	latentLen := 1
	for _, d := range stats.LatentShape {
		latentLen *= d
	}
	// Self-configure the tenancy mode from the server: fleet servers require
	// user ids, single-learner servers reject them.
	if stats.Fleet != nil && opt.Users <= 0 {
		opt.Users = 256
	}
	if stats.Fleet == nil && opt.Users > 0 {
		return LoadReport{}, fmt.Errorf("loadgen: -users %d set, but the server hosts a single learner (no fleet)", opt.Users)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		requests  int64
		shed      int64
		errCount  int64
		retries   int64
		observes  int64
	)
	targets := newPool(baseURL, opt.Failover)
	deadline := time.Now().Add(opt.Duration)
	start := time.Now()

	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed*7919 + int64(c)))
			users := newUserPicker(rng, opt.Users, opt.ZipfS)
			lats := make([]float64, 0, 1024)
			var done, sheds, errs, tries int64
			for {
				if opt.RequestsPerClient > 0 {
					if done >= int64(opt.RequestsPerClient) {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				body := predictBody(rng, latentLen, users.pick(), opt.Int8)
				t0 := time.Now()
				if opt.Failover != "" {
					// Failover mode: retry until the request lands somewhere.
					// Latency then measures what the client actually waited,
					// handoff included.
					status, n, err := sendRetry(client, targets, "/v1/predict", body, opt.Timeout)
					tries += n
					if err != nil || status != http.StatusOK {
						errs++
					} else {
						lats = append(lats, time.Since(t0).Seconds())
						done++
					}
					continue
				}
				status, _, err := post(client, baseURL+"/v1/predict", body)
				switch {
				case err != nil:
					errs++
				case status == http.StatusTooManyRequests:
					sheds++
					// Closed-loop backoff: honour the shed, but cap the
					// pause so the generator keeps pressure on the queue.
					time.Sleep(5 * time.Millisecond)
				case status == http.StatusOK:
					lats = append(lats, time.Since(t0).Seconds())
					done++
				default:
					errs++
				}
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			requests += done
			shed += sheds
			errCount += errs
			retries += tries
			mu.Unlock()
		}(c)
	}

	if opt.ObserveBatches > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed * 104729))
			users := newUserPicker(rng, opt.Users, opt.ZipfS)
			var sent, errs, tries int64
			for i := 0; i < opt.ObserveBatches; i++ {
				body := observeBody(rng, latentLen, stats.Classes, opt.ObserveBatchSize, users.pick(), opt.Int8)
				if opt.Failover != "" {
					status, n, err := sendRetry(client, targets, "/v1/observe", body, opt.Timeout)
					tries += n
					if err != nil || status != http.StatusOK {
						errs++
					} else {
						sent++
					}
					continue
				}
				status, _, err := post(client, baseURL+"/v1/observe", body)
				if err == nil && status == http.StatusOK {
					sent++
				} else if status == http.StatusTooManyRequests {
					time.Sleep(5 * time.Millisecond)
					i-- // the stream must arrive in full; retry the batch
				}
			}
			mu.Lock()
			observes += sent
			errCount += errs
			retries += tries
			mu.Unlock()
		}()
	}

	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := LoadReport{
		Clients:        opt.Clients,
		Users:          opt.Users,
		Requests:       requests,
		Shed:           shed,
		Errors:         errCount,
		Retries:        retries,
		Failovers:      targets.flipCount(),
		ObserveBatches: observes,
		DurationSec:    elapsed,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(requests) / elapsed
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		rep.MeanMs = 1e3 * sum / float64(len(latencies))
		rep.P50Ms = 1e3 * percentile(latencies, 0.50)
		rep.P95Ms = 1e3 * percentile(latencies, 0.95)
		rep.P99Ms = 1e3 * percentile(latencies, 0.99)
	}
	return rep, nil
}

// fetchStats self-configures the generator from the server.
func fetchStats(client *http.Client, baseURL string) (Stats, error) {
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return Stats{}, fmt.Errorf("loadgen: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("loadgen: stats: HTTP %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("loadgen: stats: %w", err)
	}
	if len(st.LatentShape) == 0 || st.Classes <= 0 {
		return Stats{}, fmt.Errorf("loadgen: stats reported no model facts: %+v", st)
	}
	return st, nil
}

// percentile reads the q-quantile of a sorted sample (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// predictBody builds one synthetic predict payload (user "" omits the field).
func predictBody(rng *rand.Rand, latentLen int, user string, int8Wire bool) []byte {
	lat := make([]float32, latentLen)
	for i := range lat {
		lat[i] = float32(rng.NormFloat64())
	}
	req := PredictRequest{User: user}
	if int8Wire {
		req.LatentInt8, req.Scale = quantizeWire(lat)
	} else {
		req.Latent = lat
	}
	b, _ := json.Marshal(req)
	return b
}

// observeBody builds one synthetic labelled batch.
func observeBody(rng *rand.Rand, latentLen, classes, batch int, user string, int8Wire bool) []byte {
	req := ObserveRequest{User: user, Samples: make([]ObserveSample, batch)}
	for i := range req.Samples {
		lat := make([]float32, latentLen)
		for j := range lat {
			lat[j] = float32(rng.NormFloat64())
		}
		sm := ObserveSample{Label: rng.Intn(classes)}
		if int8Wire {
			sm.LatentInt8, sm.Scale = quantizeWire(lat)
		} else {
			sm.Latent = lat
		}
		req.Samples[i] = sm
	}
	b, _ := json.Marshal(req)
	return b
}

// quantizeWire converts an fp32 latent to the wire's (latent_int8, scale)
// encoding — the same symmetric per-tensor scheme the int8 stores use
// (internal/quant), re-expressed over []byte because Go marshals []byte as
// base64, which is the wire format.
func quantizeWire(lat []float32) ([]byte, float32) {
	q := make([]int8, len(lat))
	scale := quant.QuantizeInt8(q, lat)
	out := make([]byte, len(q))
	for i, v := range q {
		out[i] = byte(v)
	}
	return out, scale
}

// post issues one JSON POST and fully drains the response body so the
// connection is reused. On non-200s it decodes the machine-readable error
// code from the api.Error envelope — the retry logic keys on codes, not on
// status numbers.
func post(client *http.Client, url string, body []byte) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, "", nil
	}
	var e api.Error
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, e.Code, nil
}
