package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/fleet"
	"chameleon/internal/obs"
	"chameleon/internal/tensor"
)

// snapLearner is the fleet-test double: deterministic, snapshotable (the
// fleet refuses snapshotless learners), with Predict reporting how many
// labels it has seen so restored state is visible through the HTTP surface.
type snapLearner struct {
	labels []int
}

func (l *snapLearner) Name() string { return "snap" }

func (l *snapLearner) Observe(b cl.LatentBatch) {
	for _, s := range b.Samples {
		l.labels = append(l.labels, s.Label)
	}
}

func (l *snapLearner) Predict(z *tensor.Tensor) int { return len(l.labels) }

func (l *snapLearner) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(l.labels)
	return buf.Bytes(), err
}

func (l *snapLearner) Restore(state []byte) error {
	return gob.NewDecoder(bytes.NewReader(state)).Decode(&l.labels)
}

// newFleetServer stands up a serve.Server fronting a small fleet (2 shards,
// shared registry) on the stub latent shape.
func newFleetServer(t *testing.T, fcfg fleet.Config) (*Server, *fleet.Fleet) {
	t.Helper()
	reg := obs.NewRegistry()
	if fcfg.New == nil {
		fcfg.New = func(string) (cl.Learner, error) { return &snapLearner{}, nil }
	}
	if fcfg.Dir == "" {
		fcfg.Dir = t.TempDir()
	}
	if fcfg.Shards == 0 {
		fcfg.Shards = 2
	}
	fcfg.Registry = reg
	fl, err := fleet.New(fcfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	s, err := New(nil, Config{LatentShape: stubShape, Classes: 3, Registry: reg, Fleet: fl})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, fl
}

func TestFleetModeConfigRules(t *testing.T) {
	reg := obs.NewRegistry()
	fl, err := fleet.New(fleet.Config{
		New:      func(string) (cl.Learner, error) { return &snapLearner{}, nil },
		Dir:      t.TempDir(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Shutdown(context.Background())
	// A fleet server must not also carry a single learner or a drain target.
	if _, err := New(&stubLearner{}, Config{LatentShape: stubShape, Classes: 3, Registry: reg, Fleet: fl}); err == nil {
		t.Fatal("fleet + single learner accepted")
	}
	if _, err := New(nil, Config{LatentShape: stubShape, Classes: 3, Registry: reg, Fleet: fl, CheckpointPath: "x.ckpt"}); err == nil {
		t.Fatal("fleet + checkpoint path accepted")
	}
	// And without a fleet, a learner is required.
	if _, err := New(nil, Config{LatentShape: stubShape, Classes: 3, Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("no learner, no fleet accepted")
	}
}

func TestFleetUserFieldRules(t *testing.T) {
	s, _ := newFleetServer(t, fleet.Config{})
	// Fleet servers require the user field.
	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("userless predict on fleet: HTTP %d", w.Code)
	}
	w = postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4), Label: 1}}})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("userless observe on fleet: HTTP %d", w.Code)
	}

	// Single-learner servers reject it.
	single, _ := newStubServer(t, stubConfig())
	w = postJSON(t, single, "/v1/predict", PredictRequest{User: "u1", Latent: latent(4)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("user field on single-learner predict: HTTP %d", w.Code)
	}
	w = postJSON(t, single, "/v1/observe", ObserveRequest{User: "u1", Samples: []ObserveSample{{Latent: latent(4), Label: 1}}})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("user field on single-learner observe: HTTP %d", w.Code)
	}
}

func TestFleetPredictObserveStats(t *testing.T) {
	s, _ := newFleetServer(t, fleet.Config{})
	observe := func(user string, labels ...int) ObserveResponse {
		t.Helper()
		req := ObserveRequest{User: user}
		for _, lab := range labels {
			req.Samples = append(req.Samples, ObserveSample{Latent: latent(4), Label: lab})
		}
		w := postJSON(t, s, "/v1/observe", req)
		if w.Code != http.StatusOK {
			t.Fatalf("observe(%s): HTTP %d: %s", user, w.Code, w.Body)
		}
		var or ObserveResponse
		if err := json.Unmarshal(w.Body.Bytes(), &or); err != nil {
			t.Fatal(err)
		}
		return or
	}

	if or := observe("u1", 0, 1); or.Batch != 0 || or.SamplesTotal != 2 {
		t.Fatalf("u1 first batch: %+v", or)
	}
	if or := observe("u2", 2); or.Batch != 0 || or.SamplesTotal != 1 {
		t.Fatalf("u2 first batch: %+v (streams must be numbered per user)", or)
	}
	if or := observe("u1", 2); or.Batch != 1 || or.SamplesTotal != 3 {
		t.Fatalf("u1 second batch: %+v", or)
	}

	w := postJSON(t, s, "/v1/predict", PredictRequest{User: "u1", Latent: latent(4)})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: HTTP %d: %s", w.Code, w.Body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Class != 3 {
		t.Fatalf("u1 predict = %d, want 3 (its own labels only)", pr.Class)
	}

	w = getPath(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Method != "fleet" {
		t.Fatalf("stats method = %q", st.Method)
	}
	if st.Fleet == nil {
		t.Fatal("stats missing fleet section")
	}
	if st.Fleet.UsersKnown != 2 || st.Batches != 3 || st.Samples != 4 {
		t.Fatalf("fleet stats: %+v (batches %d samples %d)", st.Fleet, st.Batches, st.Samples)
	}
}

func TestFleetTooManyUsersMapsTo429(t *testing.T) {
	s, _ := newFleetServer(t, fleet.Config{MaxUsers: 1})
	w := postJSON(t, s, "/v1/predict", PredictRequest{User: "u1", Latent: latent(4)})
	if w.Code != http.StatusOK {
		t.Fatalf("u1: HTTP %d: %s", w.Code, w.Body)
	}
	w = postJSON(t, s, "/v1/predict", PredictRequest{User: "u2", Latent: latent(4)})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap user: HTTP %d, want 429", w.Code)
	}
}

func TestFleetShutdownDrainsToDisk(t *testing.T) {
	dir := t.TempDir()
	s, fl := newFleetServer(t, fleet.Config{Dir: dir})
	w := postJSON(t, s, "/v1/observe", ObserveRequest{User: "u1", Samples: []ObserveSample{{Latent: latent(4), Label: 2}}})
	if w.Code != http.StatusOK {
		t.Fatalf("observe: HTTP %d: %s", w.Code, w.Body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := fl.Stats(); st.Resident != 0 || st.Evictions == 0 {
		t.Fatalf("post-drain fleet stats: %+v", st)
	}
	// Requests after the drain are refused, not queued.
	w = postJSON(t, s, "/v1/observe", ObserveRequest{User: "u1", Samples: []ObserveSample{{Latent: latent(4), Label: 2}}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain observe: HTTP %d, want 503", w.Code)
	}
}
