package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/cl"
	"chameleon/internal/fleet"
	"chameleon/internal/obs"
	"chameleon/internal/tensor"
)

// maxBodyBytes bounds request bodies before JSON decoding: the largest legal
// payload is an observe batch of MaxObserveBatch latents, and 16 MiB clears
// that for every supported backbone while keeping hostile bodies cheap.
const maxBodyBytes = 16 << 20

// The /v1 wire types are declared once in internal/api (shared with the load
// generator and the replication client); these aliases keep the historical
// serve.PredictRequest etc. names resolving to the same declarations.
type (
	PredictRequest  = api.PredictRequest
	PredictResponse = api.PredictResponse
	ObserveSample   = api.ObserveSample
	ObserveRequest  = api.ObserveRequest
	ObserveResponse = api.ObserveResponse
	Stats           = api.Stats
)

// Handler returns the server's HTTP surface (documented in API.md):
//
//	POST /v1/predict               latent or image → class (micro-batched)
//	POST /v1/observe               labelled mini-batch → online update (serialized)
//	GET  /v1/stats                 serving counters + model facts + role
//	GET  /v1/replication/snapshot  learner snapshot anchored to a log cursor
//	GET  /v1/replication/log       cursor-based observe-log pages
//	GET  /v1/replication/verify    rebuild from (snapshot, log) and compare
//	GET  /metrics                  the obs registry (Prometheus text)
//	GET  /vars                     the obs registry (expvar JSON)
//	GET  /healthz                  liveness
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.recovered(s.handlePredict))
	mux.HandleFunc("/v1/observe", s.recovered(s.handleObserve))
	mux.HandleFunc("/v1/stats", s.recovered(s.handleStats))
	mux.HandleFunc("/v1/replication/snapshot", s.recovered(s.handleReplSnapshot))
	mux.HandleFunc("/v1/replication/log", s.recovered(s.handleReplLog))
	mux.HandleFunc("/v1/replication/verify", s.recovered(s.handleReplVerify))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	// The process metrics registry rides on the serving mux so one listener
	// covers both the request path and the training internals.
	mux.Handle("/metrics", s.cfg.Registry.Handler())
	mux.Handle("/vars", s.cfg.Registry.Handler())
	return mux
}

// recovered converts handler panics into 500s so one hostile request cannot
// take the listener down.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				writeError(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the error envelope. Every 429 and 503 carries Retry-After
// so clients never have to guess whether waiting helps (API.md).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	writeJSON(w, status, api.Error{Code: code, Message: msg})
}

// decodeBody strictly decodes the JSON body into v (unknown fields and
// trailing garbage are errors — shape problems must fail loudly, not train
// on half-parsed data).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// latentFrom validates and materialises one request latent: a flattened fp32
// latent of exactly the configured shape, the same latent quantized to int8
// with a finite positive per-tensor scale (dequantized here, before the
// learner is involved), or (with a backbone) a raw image run through the
// frozen extractor. Exactly one payload must be set; validation happens
// entirely before the learner is involved.
func (s *Server) latentFrom(latent []float32, qz []byte, scale float32, image []float32) (*tensor.Tensor, error) {
	set := 0
	for _, present := range []bool{len(latent) > 0, len(qz) > 0, len(image) > 0} {
		if present {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("exactly one of latent, latent_int8 or image must be set, got %d", set)
	}
	switch {
	case len(latent) > 0:
		want := 1
		for _, d := range s.cfg.LatentShape {
			want *= d
		}
		if len(latent) != want {
			return nil, fmt.Errorf("latent has %d elements, want %d (shape %v)", len(latent), want, s.cfg.LatentShape)
		}
		return tensor.FromSlice(latent, s.cfg.LatentShape...), nil
	case len(qz) > 0:
		want := 1
		for _, d := range s.cfg.LatentShape {
			want *= d
		}
		if len(qz) != want {
			return nil, fmt.Errorf("latent_int8 has %d elements, want %d (shape %v)", len(qz), want, s.cfg.LatentShape)
		}
		if !(scale > 0) || math.IsInf(float64(scale), 0) {
			return nil, fmt.Errorf("latent_int8 requires a finite positive scale, got %v", scale)
		}
		t := tensor.New(s.cfg.LatentShape...)
		dst := t.Data()
		for i, b := range qz {
			dst[i] = float32(int8(b)) * scale
		}
		return t, nil
	case len(image) > 0:
		if s.cfg.Backbone == nil {
			return nil, fmt.Errorf("this server accepts latents only (no backbone configured)")
		}
		res := s.cfg.Backbone.Cfg.Resolution
		if want := 3 * res * res; len(image) != want {
			return nil, fmt.Errorf("image has %d elements, want %d (shape [3,%d,%d])", len(image), want, res, res)
		}
		// Eval-mode extraction allocates locally and caches nothing, so
		// running it on the handler goroutine is safe and keeps the heavy
		// convolution work off the serialized engine.
		return s.cfg.Backbone.ExtractLatent(tensor.FromSlice(image, 3, res, res)), nil
	default:
		return nil, fmt.Errorf("one of latent, latent_int8 or image must be set")
	}
}

// enqueue reserves a queue slot under the drain guard. It reports
// (accepted, draining); !accepted && !draining means the queue was full.
func enqueue[T any](s *Server, q chan T, v T) (bool, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false, true
	}
	select {
	case q <- v:
		return true, false
	default:
		return false, false
	}
}

// shed answers an over-capacity or draining request.
func (s *Server) shed(w http.ResponseWriter, draining bool) {
	if draining {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
		return
	}
	writeError(w, http.StatusTooManyRequests, api.CodeQueueFull, "queue full, retry later")
}

// checkReady gates the request path on a standby: until a Follower promotes
// the server, predict and observe answer 503 not_ready (reads would serve a
// lagging learner, writes would fork the replicated stream). Reports whether
// the request may proceed.
func (s *Server) checkReady(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return true
	}
	writeError(w, http.StatusServiceUnavailable, api.CodeNotReady, "this server is a warm standby; it is not serving yet")
	return false
}

// checkUserField validates the request's user id against the server's mode:
// fleet servers require it, single-learner servers reject it. Reports
// whether the request may proceed (the 400 is already written otherwise).
func (s *Server) checkUserField(w http.ResponseWriter, user string) bool {
	if s.cfg.Fleet != nil && user == "" {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: this server hosts a learner fleet; a user id is required")
		return false
	}
	if s.cfg.Fleet == nil && user != "" {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: this server hosts a single learner; the user field is not supported")
		return false
	}
	return true
}

// writeFleetError maps the fleet's sentinel errors onto the same statuses the
// single-learner queues use: full queue → 429, draining → 503, context end →
// 504, anything else → 500. shed is the endpoint's shed counter.
func (s *Server) writeFleetError(w http.ResponseWriter, err error, shed *obs.Counter) {
	switch {
	case errors.Is(err, fleet.ErrQueueFull):
		shed.Inc()
		s.shed(w, false)
	case errors.Is(err, fleet.ErrDraining):
		s.shed(w, true)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "request timed out in queue")
	case errors.Is(err, fleet.ErrTooManyUsers):
		s.m.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, api.CodeTooManyUsers, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "POST only")
		return
	}
	if !s.checkReady(w) {
		return
	}
	var req PredictRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: "+err.Error())
		return
	}
	if !s.checkUserField(w, req.User) {
		return
	}
	z, err := s.latentFrom(req.Latent, req.LatentInt8, req.Scale, req.Image)
	if err != nil {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: "+err.Error())
		return
	}
	t0 := time.Now()
	if s.cfg.Fleet != nil {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		class, err := s.cfg.Fleet.Predict(ctx, req.User, z)
		if err != nil {
			s.writeFleetError(w, err, s.m.predictShed)
			return
		}
		s.m.predictRequests.Inc()
		s.m.predictLatency.ObserveSince(t0)
		writeJSON(w, http.StatusOK, PredictResponse{Class: class})
		return
	}
	pr := &predictReq{z: z, ctx: r.Context(), resp: make(chan predictResp, 1)}
	if ok, draining := enqueue(s, s.predictQ, pr); !ok {
		s.m.predictShed.Inc()
		s.shed(w, draining)
		return
	}
	s.m.predictRequests.Inc()
	select {
	case resp := <-pr.resp:
		s.m.predictLatency.ObserveSince(t0)
		if resp.err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, resp.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, PredictResponse{Class: resp.class})
	case <-r.Context().Done():
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "client gave up while queued")
	case <-time.After(s.cfg.RequestTimeout):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "request timed out in queue")
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "POST only")
		return
	}
	if !s.checkReady(w) {
		return
	}
	var req ObserveRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request: "+err.Error())
		return
	}
	if !s.checkUserField(w, req.User) {
		return
	}
	if len(req.Samples) == 0 || len(req.Samples) > s.cfg.MaxObserveBatch {
		s.m.rejected.Inc()
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("bad request: batch must hold 1..%d samples, got %d", s.cfg.MaxObserveBatch, len(req.Samples)))
		return
	}
	samples := make([]cl.LatentSample, len(req.Samples))
	for i, sm := range req.Samples {
		if sm.Label < 0 || sm.Label >= s.cfg.Classes {
			s.m.rejected.Inc()
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("bad request: sample %d label %d out of range [0,%d)", i, sm.Label, s.cfg.Classes))
			return
		}
		z, err := s.latentFrom(sm.Latent, sm.LatentInt8, sm.Scale, sm.Image)
		if err != nil {
			s.m.rejected.Inc()
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("bad request: sample %d: %v", i, err))
			return
		}
		samples[i] = cl.LatentSample{Z: z, Label: sm.Label, Domain: req.Domain}
	}
	t0 := time.Now()
	if s.cfg.Fleet != nil {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		batch, total, err := s.cfg.Fleet.Observe(ctx, req.User, samples, req.Domain)
		if err != nil {
			s.writeFleetError(w, err, s.m.observeShed)
			return
		}
		s.m.observeRequests.Inc()
		s.m.observeLatency.ObserveSince(t0)
		// Batch and SamplesTotal are the *user's* stream position: each
		// fleet user is numbered independently.
		writeJSON(w, http.StatusOK, ObserveResponse{Batch: batch, SamplesTotal: total})
		return
	}
	or := &observeReq{samples: samples, domain: req.Domain, resp: make(chan observeResp, 1)}
	if ok, draining := enqueue(s, s.observeQ, or); !ok {
		s.m.observeShed.Inc()
		s.shed(w, draining)
		return
	}
	s.m.observeRequests.Inc()
	select {
	case resp := <-or.resp:
		s.m.observeLatency.ObserveSince(t0)
		if resp.err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, resp.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, ObserveResponse{Batch: resp.batch, SamplesTotal: resp.samples})
	case <-r.Context().Done():
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "client gave up while queued")
	case <-time.After(s.cfg.RequestTimeout):
		s.m.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout, "request timed out in queue")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "GET only")
		return
	}
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	method := "fleet"
	var fs *fleet.Stats
	if s.cfg.Fleet != nil {
		st := s.cfg.Fleet.Stats()
		fs = &st
	} else {
		method = s.l.Name()
	}
	role := api.RolePrimary
	if !s.ready.Load() {
		role = api.RoleStandby
	}
	var repl *api.ReplicationStats
	if s.cfg.WAL != nil {
		repl = &api.ReplicationStats{Cursor: s.cfg.WAL.End()}
		if role == api.RoleStandby {
			// Standby: position relative to the primary, as of the last pull.
			repl.LagBatches = s.replLagBatches.Load()
			if ns := s.replLastSyncNano.Load(); ns != 0 {
				repl.LastSyncUnix = float64(ns) / 1e9
			}
		} else if ns := s.replLastPullNano.Load(); ns != 0 {
			// Primary: how far behind the most recent follower pull is.
			repl.LagBatches = int64(repl.Cursor) - int64(s.replLastPullSeq.Load())
			repl.LastSyncUnix = float64(ns) / 1e9
		}
	}
	writeJSON(w, http.StatusOK, Stats{
		Method:          method,
		Fleet:           fs,
		LatentShape:     s.cfg.LatentShape,
		Classes:         s.cfg.Classes,
		AcceptsImages:   s.cfg.Backbone != nil,
		Batches:         s.Batches(),
		Samples:         s.Samples(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		PredictRequests: s.m.predictRequests.Value(),
		ObserveRequests: s.m.observeRequests.Value(),
		PredictShed:     s.m.predictShed.Value(),
		ObserveShed:     s.m.observeShed.Value(),
		QueuePredict:    len(s.predictQ),
		QueueObserve:    len(s.observeQ),
		Draining:        draining,
		Role:            role,
		Replication:     repl,
	})
}
