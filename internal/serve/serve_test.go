package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/tensor"
)

// stubLearner is a controllable fake: Predict can be gated (to hold the
// engine mid-batch while tests fill queues) or made to panic; Observe records
// every batch it is fed. The engine calls it from one goroutine only, but
// tests read observed concurrently, hence the mutex.
type stubLearner struct {
	mu             sync.Mutex
	observed       []cl.LatentBatch
	gate           chan struct{} // non-nil: Predict blocks until it closes
	predictStarted chan struct{} // non-nil: signalled once when Predict first blocks
	startedOnce    sync.Once
	panicPredict   atomic.Bool
	panicObserve   atomic.Bool
}

func (s *stubLearner) Name() string { return "stub" }

func (s *stubLearner) Observe(b cl.LatentBatch) {
	if s.panicObserve.Load() {
		panic("stub observe panic")
	}
	s.mu.Lock()
	s.observed = append(s.observed, b)
	s.mu.Unlock()
}

func (s *stubLearner) Predict(z *tensor.Tensor) int {
	if s.panicPredict.Load() {
		panic("stub predict panic")
	}
	if s.gate != nil {
		if s.predictStarted != nil {
			s.startedOnce.Do(func() { close(s.predictStarted) })
		}
		<-s.gate
	}
	return 0
}

func (s *stubLearner) batches() []cl.LatentBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]cl.LatentBatch(nil), s.observed...)
}

// stubShape is the latent shape every stub-learner test serves.
var stubShape = []int{2, 2}

func stubConfig() Config {
	return Config{LatentShape: stubShape, Classes: 3, Registry: obs.NewRegistry()}
}

func newStubServer(t *testing.T, cfg Config) (*Server, *stubLearner) {
	t.Helper()
	l := &stubLearner{}
	s, err := New(l, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, l
}

// postJSON drives the handler directly (no listener) and returns the
// recorded response.
func postJSON(t *testing.T, s *Server, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func latent(n int) []float32 { return make([]float32, n) }

func TestPredictObserveStatsRoundTrip(t *testing.T) {
	s, l := newStubServer(t, stubConfig())

	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: HTTP %d: %s", w.Code, w.Body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatalf("predict response: %v", err)
	}
	if pr.Class != 0 {
		t.Fatalf("predict class = %d, want 0", pr.Class)
	}

	for i := 0; i < 3; i++ {
		w = postJSON(t, s, "/v1/observe", ObserveRequest{
			Samples: []ObserveSample{{Latent: latent(4), Label: 1}, {Latent: latent(4), Label: 2}},
			Domain:  7,
		})
		if w.Code != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d: %s", i, w.Code, w.Body)
		}
		var or ObserveResponse
		if err := json.Unmarshal(w.Body.Bytes(), &or); err != nil {
			t.Fatalf("observe response: %v", err)
		}
		if or.Batch != i {
			t.Fatalf("observe %d assigned batch %d", i, or.Batch)
		}
		if or.SamplesTotal != 2*(i+1) {
			t.Fatalf("observe %d samples_total = %d, want %d", i, or.SamplesTotal, 2*(i+1))
		}
	}
	got := l.batches()
	if len(got) != 3 {
		t.Fatalf("learner observed %d batches, want 3", len(got))
	}
	for i, b := range got {
		if b.Index != i || b.Domain != 7 || len(b.Samples) != 2 {
			t.Fatalf("batch %d = {Index:%d Domain:%d n:%d}", i, b.Index, b.Domain, len(b.Samples))
		}
	}

	w = getPath(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Method != "stub" || st.Classes != 3 || st.Batches != 3 || st.Samples != 6 || st.AcceptsImages {
		t.Fatalf("stats = %+v", st)
	}
	if w := getPath(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", w.Code)
	}
	if w := getPath(t, s, "/metrics"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "serve_queue_depth_predict") {
		t.Fatalf("metrics: HTTP %d, body missing serve gauges", w.Code)
	}
}

func TestRequestValidation(t *testing.T) {
	s, l := newStubServer(t, stubConfig())
	cases := []struct {
		name string
		path string
		body any
	}{
		{"short latent", "/v1/predict", PredictRequest{Latent: latent(3)}},
		{"long latent", "/v1/predict", PredictRequest{Latent: latent(5)}},
		{"empty request", "/v1/predict", PredictRequest{}},
		{"latent and image", "/v1/predict", PredictRequest{Latent: latent(4), Image: latent(12)}},
		{"image without backbone", "/v1/predict", PredictRequest{Image: latent(3 * 32 * 32)}},
		{"unknown field", "/v1/predict", map[string]any{"latemt": latent(4)}},
		{"empty observe", "/v1/observe", ObserveRequest{}},
		{"label too big", "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4), Label: 3}}}},
		{"negative label", "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4), Label: -1}}}},
		{"bad sample latent", "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(9), Label: 0}}}},
	}
	for _, tc := range cases {
		if w := postJSON(t, s, tc.path, tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}
	// An oversized observe batch is rejected before any learner work.
	big := ObserveRequest{Samples: make([]ObserveSample, 65)}
	for i := range big.Samples {
		big.Samples[i] = ObserveSample{Latent: latent(4)}
	}
	if w := postJSON(t, s, "/v1/observe", big); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: HTTP %d, want 400", w.Code)
	}
	if w := getPath(t, s, "/v1/predict"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: HTTP %d, want 405", w.Code)
	}
	if n := len(l.batches()); n != 0 {
		t.Fatalf("invalid requests reached the learner: %d batches", n)
	}
}

// TestBackpressure fills the bounded queues while the engine is pinned inside
// a gated Predict, and checks the overflow request is shed with 429 +
// Retry-After instead of queueing without bound.
func TestBackpressure(t *testing.T) {
	cfg := stubConfig()
	cfg.QueueDepth = 1
	cfg.MaxBatch = 1
	l := &stubLearner{gate: make(chan struct{}), predictStarted: make(chan struct{})}
	s, err := New(l, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		_ = s.Close()
	}()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes <- postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}).Code
	}()
	<-l.predictStarted // the engine is now blocked inside Predict

	// Fill the one predict slot, then overflow it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes <- postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}).Code
	}()
	waitFor(t, func() bool { return len(s.predictQ) == 1 })
	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow predict: HTTP %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Same for the observe queue while the engine is still pinned.
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4)}}})
	}()
	waitFor(t, func() bool { return len(s.observeQ) == 1 })
	w = postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4)}}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow observe: HTTP %d, want 429", w.Code)
	}

	close(l.gate)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("queued request finished with HTTP %d", c)
		}
	}
}

// TestRequestTimeout checks a request stuck behind a wedged engine gets 504
// instead of hanging the client forever.
func TestRequestTimeout(t *testing.T) {
	cfg := stubConfig()
	cfg.RequestTimeout = 30 * time.Millisecond
	cfg.MaxBatch = 1
	l := &stubLearner{gate: make(chan struct{}), predictStarted: make(chan struct{})}
	s, err := New(l, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	done := make(chan int, 1)
	go func() { done <- postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}).Code }()
	<-l.predictStarted
	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("stuck request: HTTP %d, want 504", w.Code)
	}
	close(l.gate)
	// The gated request's handler also timed out (only the response is
	// abandoned; the engine finished the work), and the engine is free again.
	if c := <-done; c != http.StatusGatewayTimeout {
		t.Fatalf("gated request: HTTP %d, want 504", c)
	}
	if w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}); w.Code != http.StatusOK {
		t.Fatalf("predict after engine freed: HTTP %d", w.Code)
	}
	_ = s.Close()
}

// TestPanicRecovery checks a panicking learner yields 500s while the server
// keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	s, l := newStubServer(t, stubConfig())
	l.panicObserve.Store(true)
	w := postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4)}}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking observe: HTTP %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "panicked") {
		t.Fatalf("panicking observe body: %s", w.Body)
	}
	l.panicPredict.Store(true)
	if w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}); w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking predict: HTTP %d, want 500", w.Code)
	}
	// The engine survived both panics; normal service resumes.
	l.panicObserve.Store(false)
	l.panicPredict.Store(false)
	if w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)}); w.Code != http.StatusOK {
		t.Fatalf("predict after panic: HTTP %d", w.Code)
	}
	if w := postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4)}}}); w.Code != http.StatusOK {
		t.Fatalf("observe after panic: HTTP %d", w.Code)
	}
	// A failed observe must not advance the stream position.
	if got := s.Batches(); got != 1 {
		t.Fatalf("batches after one failed + one good observe = %d, want 1", got)
	}
}

// TestShutdownRefusesNewWork checks post-drain requests get 503, not 429.
func TestShutdownRefusesNewWork(t *testing.T) {
	s, _ := newStubServer(t, stubConfig())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w := postJSON(t, s, "/v1/predict", PredictRequest{Latent: latent(4)})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict while draining: HTTP %d, want 503", w.Code)
	}
	w = postJSON(t, s, "/v1/observe", ObserveRequest{Samples: []ObserveSample{{Latent: latent(4)}}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe while draining: HTTP %d, want 503", w.Code)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	l := &stubLearner{}
	if _, err := New(l, Config{Classes: 3, Registry: obs.NewRegistry()}); err == nil {
		t.Error("New accepted a missing latent shape")
	}
	if _, err := New(l, Config{LatentShape: stubShape, Registry: obs.NewRegistry()}); err == nil {
		t.Error("New accepted zero classes")
	}
	// A checkpoint path demands a snapshotting learner.
	cfg := stubConfig()
	cfg.CheckpointPath = t.TempDir() + "/s.ckpt"
	if _, err := New(l, cfg); err == nil {
		t.Error("New accepted a checkpoint path for a non-snapshotting learner")
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}

// --- bit-identity against the real learner ---------------------------------

// chameleonAt builds an independent backbone + Chameleon learner pair from
// one seed; two calls with the same seed are bit-identical by construction.
func chameleonAt(t *testing.T, classes int, seed int64) (*mobilenet.Model, cl.Learner) {
	t.Helper()
	model, err := mobilenet.New(mobilenet.DefaultConfig(classes, seed))
	if err != nil {
		t.Fatalf("backbone: %v", err)
	}
	head := cl.NewHead(model, cl.HeadConfig{LR: 0.01, Seed: seed})
	l := core.New(head, core.Config{
		STCap: 5, LTCap: 20, AccessRate: 2, PromoteEvery: 2, LTSampleSize: 5, Seed: seed,
	})
	return model, l
}

// wireBatches generates the raw float32 stream payloads both the HTTP path
// and the serial reference consume, so any divergence is the server's fault.
type wireBatch struct {
	latents [][]float32
	labels  []int
}

func makeWireBatches(rng *rand.Rand, n, batch, latentLen, classes int) []wireBatch {
	out := make([]wireBatch, n)
	for i := range out {
		wb := wireBatch{latents: make([][]float32, batch), labels: make([]int, batch)}
		for j := range wb.latents {
			z := make([]float32, latentLen)
			for k := range z {
				z[k] = float32(rng.NormFloat64())
			}
			wb.latents[j] = z
			wb.labels[j] = rng.Intn(classes)
		}
		out[i] = wb
	}
	return out
}

func (wb wireBatch) observeRequest() ObserveRequest {
	req := ObserveRequest{Samples: make([]ObserveSample, len(wb.latents))}
	for j, z := range wb.latents {
		req.Samples[j] = ObserveSample{Latent: z, Label: wb.labels[j]}
	}
	return req
}

func (wb wireBatch) latentBatch(index int, shape []int) cl.LatentBatch {
	b := cl.LatentBatch{Samples: make([]cl.LatentSample, len(wb.latents)), Index: index}
	for j, z := range wb.latents {
		b.Samples[j] = cl.LatentSample{Z: tensor.FromSlice(z, shape...), Label: wb.labels[j]}
	}
	return b
}

func snapshotOf(t *testing.T, l cl.Learner) []byte {
	t.Helper()
	snap := cl.Caps(l).Snapshotter
	if snap == nil {
		t.Fatalf("learner %s has no snapshotter", l.Name())
	}
	b, err := snap.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return b
}

// requireSameState compares two learners through decoded snapshots (raw
// snapshot bytes are not comparable: gob randomizes map encoding order).
func requireSameState(t *testing.T, got, want cl.Learner, context string) {
	t.Helper()
	same, err := core.SnapshotsEqual(snapshotOf(t, got), snapshotOf(t, want))
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	if !same {
		t.Fatalf("%s: learner state diverged", context)
	}
}

func serveURL(t *testing.T, s *Server) string {
	t.Helper()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return "http://" + s.Addr()
}

// httpObserve posts one stream batch. A transport error (the listener closed
// mid-shutdown) is reported as status 0 so callers can treat it like a 503.
func httpObserve(t *testing.T, client *http.Client, url string, wb wireBatch) (ObserveResponse, int) {
	t.Helper()
	body, err := json.Marshal(wb.observeRequest())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return ObserveResponse{}, 0
	}
	defer resp.Body.Close()
	var or ObserveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatalf("observe decode: %v", err)
		}
	}
	return or, resp.StatusCode
}

// TestConcurrentLoadMatchesSerialReplay is the core serving contract: a
// sequential observe stream applied through the server — with 8 concurrent
// predict clients hammering the micro-batching path the whole time — must
// leave the learner in exactly the state a plain serial replay of the same
// stream produces. Run under -race this also proves the single-writer design
// keeps the learner data-race-free.
func TestConcurrentLoadMatchesSerialReplay(t *testing.T) {
	const (
		classes  = 4
		seed     = 11
		nBatches = 24
		batch    = 5
		clients  = 8
	)
	model, served := chameleonAt(t, classes, seed)
	_, serial := chameleonAt(t, classes, seed)
	latentLen := 1
	for _, d := range model.LatentShape {
		latentLen *= d
	}
	stream := makeWireBatches(rand.New(rand.NewSource(99)), nBatches, batch, latentLen, classes)

	s, err := New(served, Config{
		LatentShape: model.LatentShape, Classes: classes,
		BatchWindow: time.Millisecond, MaxBatch: 8, QueueDepth: 64,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := serveURL(t, s)
	client := &http.Client{Timeout: 30 * time.Second}

	stopPredict := make(chan struct{})
	var wg sync.WaitGroup
	var predicted atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + int64(c)))
			for {
				select {
				case <-stopPredict:
					return
				default:
				}
				z := make([]float32, latentLen)
				for k := range z {
					z[k] = float32(rng.NormFloat64())
				}
				body, _ := json.Marshal(PredictRequest{Latent: z})
				resp, err := client.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("predict client %d: %v", c, err)
					return
				}
				var pr PredictResponse
				code := resp.StatusCode
				decErr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				switch code {
				case http.StatusOK:
					if decErr != nil {
						t.Errorf("predict client %d: decode: %v", c, decErr)
						return
					}
					if pr.Class < 0 || pr.Class >= classes {
						t.Errorf("predict client %d: class %d out of range", c, pr.Class)
						return
					}
					predicted.Add(1)
				case http.StatusTooManyRequests:
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("predict client %d: HTTP %d", c, code)
					return
				}
			}
		}(c)
	}

	for i, wb := range stream {
		or, code := httpObserve(t, client, url, wb)
		if code != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d", i, code)
		}
		if or.Batch != i {
			t.Fatalf("observe %d assigned stream index %d", i, or.Batch)
		}
	}
	close(stopPredict)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if predicted.Load() == 0 {
		t.Fatal("predict clients completed no requests")
	}

	for i, wb := range stream {
		serial.Observe(wb.latentBatch(i, model.LatentShape))
	}
	requireSameState(t, served, serial, "served learner vs serial replay")
}

// TestShutdownUnderLoadResumesBitIdentical kills the server mid-stream (with
// predict load running), restarts from the drain checkpoint, feeds the
// remainder of the stream, and demands the final state match an uninterrupted
// serial replay bit for bit.
func TestShutdownUnderLoadResumesBitIdentical(t *testing.T) {
	const (
		classes  = 4
		seed     = 23
		nBatches = 20
		batch    = 4
	)
	ckpt := t.TempDir() + "/serve.ckpt"
	model, servedA := chameleonAt(t, classes, seed)
	latentLen := 1
	for _, d := range model.LatentShape {
		latentLen *= d
	}
	stream := makeWireBatches(rand.New(rand.NewSource(77)), nBatches, batch, latentLen, classes)

	s1, err := New(servedA, Config{
		LatentShape: model.LatentShape, Classes: classes,
		CheckpointPath: ckpt, CheckpointEvery: 1000, // drain writes the snapshot
		BatchWindow: time.Millisecond, MaxBatch: 8, QueueDepth: 64,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	url := serveURL(t, s1)
	client := &http.Client{Timeout: 30 * time.Second}

	// Background predict load across the shutdown (responses may be 200, 429
	// or 503 — never a hang or a crash).
	stopPredict := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(2000 + int64(c)))
			for {
				select {
				case <-stopPredict:
					return
				default:
				}
				z := make([]float32, latentLen)
				for k := range z {
					z[k] = float32(rng.NormFloat64())
				}
				body, _ := json.Marshal(PredictRequest{Latent: z})
				resp, err := client.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					return // listener closed during shutdown
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("predict during shutdown: HTTP %d", resp.StatusCode)
				}
			}
		}(c)
	}

	// Sequential observer: after the fifth ack the server is shut down
	// concurrently, so the tail of the stream is refused with 503.
	acked := 0
	shutdownDone := make(chan error, 1)
	for i, wb := range stream {
		or, code := httpObserve(t, client, url, wb)
		switch code {
		case http.StatusOK:
			if or.Batch != i {
				t.Fatalf("observe %d assigned index %d", i, or.Batch)
			}
			acked++
		case http.StatusServiceUnavailable, 0:
			// Draining (or the listener already closed): the stream stops here.
		default:
			t.Fatalf("observe %d: HTTP %d", i, code)
		}
		if acked == 5 && code == http.StatusOK {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				shutdownDone <- s1.Shutdown(ctx)
			}()
			// Predicts stay in flight; once the drain flag is up every further
			// observe is deterministically refused.
			waitFor(t, func() bool {
				s1.mu.RLock()
				defer s1.mu.RUnlock()
				return s1.draining
			})
		}
		if code != http.StatusOK {
			break
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stopPredict)
	wg.Wait()
	if acked < 5 || acked >= nBatches {
		t.Fatalf("shutdown was not mid-stream: %d/%d batches acked", acked, nBatches)
	}

	// The drain checkpoint records exactly the acked prefix.
	st, err := LoadState(ckpt)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if st.Batches != acked || st.Samples != acked*batch || st.Method != "chameleon" {
		t.Fatalf("checkpoint state = {%s %d %d}, want {chameleon %d %d}", st.Method, st.Batches, st.Samples, acked, acked*batch)
	}

	// Restart from the checkpoint and feed the rest of the stream.
	_, servedB := chameleonAt(t, classes, seed)
	st2, err := Resume(ckpt, servedB)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	s2, err := New(servedB, Config{
		LatentShape: model.LatentShape, Classes: classes,
		StartBatches: st2.Batches, StartSamples: st2.Samples,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New (resumed): %v", err)
	}
	url2 := serveURL(t, s2)
	for i := acked; i < nBatches; i++ {
		or, code := httpObserve(t, client, url2, stream[i])
		if code != http.StatusOK {
			t.Fatalf("resumed observe %d: HTTP %d", i, code)
		}
		if or.Batch != i {
			t.Fatalf("resumed observe %d assigned index %d — numbering did not continue", i, or.Batch)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close (resumed): %v", err)
	}

	// Uninterrupted serial replay of the full stream.
	_, serial := chameleonAt(t, classes, seed)
	for i, wb := range stream {
		serial.Observe(wb.latentBatch(i, model.LatentShape))
	}
	requireSameState(t, servedB, serial, "resumed learner vs uninterrupted replay")
}

// TestResumeRejectsMethodMismatch guards the checkpoint against being
// restored into the wrong learner.
func TestResumeRejectsMethodMismatch(t *testing.T) {
	const seed = 31
	ckpt := t.TempDir() + "/serve.ckpt"
	model, l := chameleonAt(t, 4, seed)
	s, err := New(l, Config{
		LatentShape: model.LatentShape, Classes: 4,
		CheckpointPath: ckpt, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Resume(ckpt, &stubLearner{}); err == nil ||
		!strings.Contains(err.Error(), "chameleon") {
		t.Fatalf("Resume into a stub learner: err = %v, want method mismatch", err)
	}
}

// TestRunLoadSmoke drives the load generator against a live server and
// sanity-checks the report: exactly the requested closed-loop work completes
// with percentile ordering intact.
func TestRunLoadSmoke(t *testing.T) {
	s, l := newStubServer(t, stubConfig())
	url := serveURL(t, s)
	rep, err := RunLoad(url, LoadOptions{
		Clients:           4,
		RequestsPerClient: 25,
		ObserveBatches:    3,
		ObserveBatchSize:  2,
		Seed:              1,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests != 100 || rep.Errors != 0 {
		t.Fatalf("report = %+v, want 100 requests / 0 errors", rep)
	}
	if rep.ObserveBatches != 3 || len(l.batches()) != 3 {
		t.Fatalf("observer fed %d batches (server saw %d), want 3", rep.ObserveBatches, len(l.batches()))
	}
	if rep.ThroughputRPS <= 0 || rep.P50Ms <= 0 {
		t.Fatalf("degenerate throughput/latency: %+v", rep)
	}
	if rep.P50Ms > rep.P95Ms+1e-9 || rep.P95Ms > rep.P99Ms+1e-9 {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
	if !strings.Contains(rep.String(), "p95") {
		t.Fatalf("report String() = %q", rep.String())
	}
}

// TestStateRoundTrip covers the checkpoint payload alone.
func TestStateRoundTrip(t *testing.T) {
	path := t.TempDir() + "/state.ckpt"
	model, l := chameleonAt(t, 4, 41)
	s, err := New(l, Config{
		LatentShape: model.LatentShape, Classes: 4,
		CheckpointPath: path, CheckpointEvery: 1,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// One observe through the handler triggers the periodic saver (Every=1).
	wb := makeWireBatches(rand.New(rand.NewSource(5)), 1, 3, latentLenOf(model), 4)[0]
	if w := postJSON(t, s, "/v1/observe", wb.observeRequest()); w.Code != http.StatusOK {
		t.Fatalf("observe: HTTP %d", w.Code)
	}
	st, err := LoadState(path)
	if err != nil {
		t.Fatalf("LoadState after periodic save: %v", err)
	}
	if st.Batches != 1 || st.Samples != 3 {
		t.Fatalf("periodic state = {%d %d}", st.Batches, st.Samples)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func latentLenOf(m *mobilenet.Model) int {
	n := 1
	for _, d := range m.LatentShape {
		n *= d
	}
	return n
}

// TestImagePredict exercises the raw-image form end to end with a backbone.
func TestImagePredict(t *testing.T) {
	model, l := chameleonAt(t, 4, 51)
	cfg := Config{LatentShape: model.LatentShape, Classes: 4, Backbone: model, Registry: obs.NewRegistry()}
	s, err := New(l, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = s.Close() }()
	res := model.Cfg.Resolution
	img := make([]float32, 3*res*res)
	rng := rand.New(rand.NewSource(9))
	for i := range img {
		img[i] = float32(rng.Float64())
	}
	w := postJSON(t, s, "/v1/predict", PredictRequest{Image: img})
	if w.Code != http.StatusOK {
		t.Fatalf("image predict: HTTP %d: %s", w.Code, w.Body)
	}
	// The image path must agree with handing the extracted latent directly.
	z := model.ExtractLatent(tensor.FromSlice(img, 3, res, res))
	var pr PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := l.Predict(z); pr.Class != want {
		t.Fatalf("image predict class %d, want %d", pr.Class, want)
	}
	// Wrong image size is a 400.
	if w := postJSON(t, s, "/v1/predict", PredictRequest{Image: img[:10]}); w.Code != http.StatusBadRequest {
		t.Fatalf("short image: HTTP %d, want 400", w.Code)
	}
}
