package serve

import (
	"chameleon/internal/obs"
)

// batchSizeBuckets are the upper bounds of the predict micro-batch size
// histogram (powers of two up to the default MaxBatch and beyond).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metrics bundles the serving-path handles on one registry. All handles are
// resolved at construction, so the request path only touches atomics
// (DESIGN.md §12 discipline).
type metrics struct {
	predictRequests *obs.Counter // accepted into the queue
	observeRequests *obs.Counter
	predictShed     *obs.Counter // refused with 429
	observeShed     *obs.Counter
	rejected        *obs.Counter // malformed payloads (400s)
	timeouts        *obs.Counter // handler gave up waiting (504)
	panics          *obs.Counter // learner panics converted to 500s

	batchSize      *obs.Histogram // coalesced predict batch sizes
	predictLatency *obs.Histogram // enqueue → response, seconds
	observeLatency *obs.Histogram
	observeApply   *obs.Histogram // learner Observe call alone
	drainSeconds   *obs.Histogram

	checkpointErrors *obs.Counter

	// Replication-path handles (observe log configured).
	walOrphans     *obs.Counter   // durably logged but never applied (learner panic)
	promotions     *obs.Counter   // standby → primary flips
	handoffSeconds *obs.Histogram // drain-to-follower-caught-up wait
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		predictRequests:  r.Counter("serve_predict_requests_total"),
		observeRequests:  r.Counter("serve_observe_requests_total"),
		predictShed:      r.Counter("serve_predict_shed_total"),
		observeShed:      r.Counter("serve_observe_shed_total"),
		rejected:         r.Counter("serve_rejected_total"),
		timeouts:         r.Counter("serve_timeouts_total"),
		panics:           r.Counter("serve_panics_total"),
		batchSize:        r.Histogram("serve_predict_batch_size", batchSizeBuckets...),
		predictLatency:   r.Histogram("serve_predict_latency_seconds"),
		observeLatency:   r.Histogram("serve_observe_latency_seconds"),
		observeApply:     r.Histogram("serve_observe_apply_seconds"),
		drainSeconds:     r.Histogram("serve_drain_seconds"),
		checkpointErrors: r.Counter("serve_checkpoint_errors_total"),
		walOrphans:       r.Counter("serve_wal_orphans_total"),
		promotions:       r.Counter("serve_promotions_total"),
		handoffSeconds:   r.Histogram("serve_handoff_seconds"),
	}
}

// bindQueues publishes the live queue depths as computed gauges. chan len is
// safe from any goroutine, so scrape-time evaluation needs no coordination.
func (m *metrics) bindQueues(s *Server) {
	reg := s.cfg.Registry
	reg.GaugeFunc("serve_queue_depth_predict", func() float64 { return float64(len(s.predictQ)) })
	reg.GaugeFunc("serve_queue_depth_observe", func() float64 { return float64(len(s.observeQ)) })
	reg.GaugeFunc("serve_batches_observed", func() float64 { return float64(s.batches.Load()) })
}
