package exp

import (
	"fmt"
	"io"
	"strings"

	"chameleon/internal/hw"
	"chameleon/internal/memcost"
	"chameleon/internal/mobilenet"
)

// Table2Entry is one method × platform cost cell.
type Table2Entry struct {
	Method   string
	Platform string
	Cost     hw.Cost
}

// Table2Result is the paper's Table II: per-image latency and energy of
// Latent Replay, SLDA and Chameleon on Jetson Nano, ZCU102 and EdgeTPU.
type Table2Result struct {
	Entries []Table2Entry
	// MemoryMB echoes the Table II memory column.
	MemoryMB map[string]float64
}

// hwBackbone is the backbone the hardware tables cost: paper-scale
// MobileNetV1 at the benchmarks' native 128×128 camera resolution.
func hwBackbone() mobilenet.Config {
	cfg := mobilenet.PaperConfig(50)
	cfg.Resolution = 128
	return cfg
}

// RunTable2 regenerates Table II from the analytic platform models.
func RunTable2() (*Table2Result, error) {
	base := hw.NewProfiler(hwBackbone(), hw.DefaultProfileParams())
	// Latent Replay's reference implementation replays a larger minibatch on
	// the GPU; the FPGA experiment pins both methods to ten replay elements
	// (paper §IV-C).
	gpuLatent := hw.NewProfiler(hwBackbone(), hw.ProfileParams{Replay: 50, AccessRate: 10, BytesPerScalar: 2})

	platforms := map[string]hw.Platform{
		"jetson-nano": hw.JetsonNano(),
		"zcu102":      hw.ZCU102(),
		"edgetpu":     hw.EdgeTPU(),
	}
	// The paper evaluates: Latent Replay on Nano+FPGA, SLDA on Nano+EdgeTPU,
	// Chameleon everywhere. The harness prices every pair anyway.
	res := &Table2Result{MemoryMB: map[string]float64{}}
	for _, method := range []string{"latent", "slda", "chameleon"} {
		for _, platName := range []string{"jetson-nano", "zcu102", "edgetpu"} {
			pr := base
			if method == "latent" && platName == "jetson-nano" {
				pr = gpuLatent
			}
			p, err := pr.Profile(method)
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, Table2Entry{
				Method: method, Platform: platName, Cost: platforms[platName].Step(p),
			})
		}
	}
	mm := memcost.PaperModel()
	for method, sizes := range map[string][2]int{
		"latent":    {1500, 0},
		"slda":      {0, 0},
		"chameleon": {100, 10},
	} {
		b, err := mm.Overhead(memcost.Method(method), sizes[0], sizes[1])
		if err != nil {
			return nil, err
		}
		res.MemoryMB[method] = memcost.MB(b)
	}
	return res, nil
}

// Render prints Table II.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table II — per-image training latency and energy on edge devices (analytic models)")
	fmt.Fprintf(w, "%-10s %10s | %-24s | %-24s | %-18s\n", "Method", "Mem(MB)", "Jetson Nano", "ZCU102 FPGA", "EdgeTPU")
	fmt.Fprintf(w, "%-10s %10s | %11s %12s | %11s %12s | %11s\n", "", "", "lat(ms)", "energy(J)", "lat(ms)", "energy(J)", "lat(ms)")
	fmt.Fprintln(w, strings.Repeat("-", 100))
	byKey := map[string]hw.Cost{}
	for _, e := range t.Entries {
		byKey[e.Method+"/"+e.Platform] = e.Cost
	}
	for _, m := range []string{"latent", "slda", "chameleon"} {
		g := byKey[m+"/jetson-nano"]
		f := byKey[m+"/zcu102"]
		e := byKey[m+"/edgetpu"]
		fmt.Fprintf(w, "%-10s %10.1f | %11.0f %12.2f | %11.0f %12.2f | %11.0f\n",
			m, t.MemoryMB[m],
			g.LatencySec*1e3, g.EnergyJ,
			f.LatencySec*1e3, f.EnergyJ,
			e.LatencySec*1e3)
	}
}

// Table3Result wraps the FPGA resource report.
type Table3Result struct {
	Report hw.ResourceReport
}

// RunTable3 regenerates Table III from the FPGA resource model.
func RunTable3() *Table3Result {
	return &Table3Result{Report: hw.ZCU102().Resources()}
}

// Render prints Table III.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table III — ZCU102 resource utilization (derived from the accelerator model)")
	r := t.Report
	fmt.Fprintf(w, "%-12s %10s %10s %12s\n", "", "DSP", "BRAM", "LUTs")
	fmt.Fprintf(w, "%-12s %10d %10d %12d\n", "Available", r.DSPAvail, r.BRAMAvail, r.LUTAvail)
	fmt.Fprintf(w, "%-12s %10d %10d %12d\n", "Utilized", r.DSPUsed, r.BRAMUsed, r.LUTUsed)
	fmt.Fprintf(w, "%-12s %9.2f%% %9.2f%% %11.2f%%\n", "Percentage",
		hw.Percent(r.DSPUsed, r.DSPAvail), hw.Percent(r.BRAMUsed, r.BRAMAvail), hw.Percent(r.LUTUsed, r.LUTAvail))
}
