// Package exp is the experiment harness: it builds the shared data/backbone
// pipeline (synthetic benchmark → pretrained frozen extractor → cached
// latents) and regenerates every table and figure of the paper's evaluation —
// Table I (accuracy/memory), Table II (latency/energy on three platforms),
// Table III (FPGA resources) and Fig. 2 (accuracy vs memory budget) — plus
// the ablations DESIGN.md calls out.
package exp

import (
	"fmt"

	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
)

// Scale bundles the sizing of one reproduction tier. Paper-scale streams
// (165k frames, MobileNetV1-1.0) are far beyond a 1-vCPU pure-Go budget, so
// the harness offers calibrated tiers whose relative structure (classes,
// domain counts, held-out domains, buffer-to-stream ratios) matches the
// paper.
type Scale struct {
	// Name labels the tier ("test", "small").
	Name string
	// Model is the backbone template; NumClasses is overridden per dataset.
	Model mobilenet.Config
	// PretrainClasses etc. size the disjoint pretraining pool that stands in
	// for ImageNet.
	PretrainClasses  int
	PretrainSessions int
	PretrainFrames   int
	PretrainEpochs   int
	PretrainLR       float64
	PretrainMomentum float64
	// Core50 and OpenLORIS are the deployment benchmark configs.
	Core50    data.Config
	OpenLORIS data.Config
	// HeadLR and HeadMomentum configure the online SGD of all gradient
	// methods. Momentum makes the single-pass learner recency-sensitive,
	// which is what surfaces catastrophic forgetting at laptop scale.
	HeadLR       float64
	HeadMomentum float64
	// JointLR and JointEpochs configure the offline upper bound.
	JointLR     float64
	JointEpochs int
	// Seeds are the per-run seeds (paper: ten runs).
	Seeds []int64
	// BufferSizes are the replay sizes swept in Table I / Fig. 2.
	BufferSizes []int
	// ChameleonST/LT size Chameleon's stores; LT sweeps BufferSizes.
	ChameleonST int
	// AccessRate is Chameleon's h (long-term read period, batches).
	AccessRate int
	// PromoteEvery is Chameleon's long-term write period in batches (1 at
	// laptop scales so the fill fraction matches the paper's long streams).
	PromoteEvery int
	// Window is Chameleon's preference learning window in samples.
	Window int
}

// ScaleByName resolves a tier by its flag spelling. It is the single place
// binaries translate -scale values, so the accepted set cannot drift.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "test":
		return TestScale(), nil
	case "small":
		return SmallScale(), nil
	default:
		return Scale{}, fmt.Errorf("exp: unknown scale %q (want test or small)", name)
	}
}

// TestScale is the tier used by unit/integration tests and `go test -bench`:
// small enough to build in ~30 s on one core, cached on disk after that.
func TestScale() Scale {
	model := mobilenet.Config{
		Width: 0.25, Resolution: 32, LatentLayer: 21,
		Head: mobilenet.HeadMLP, HiddenDim: 64,
		NumClasses: 10, Seed: 7,
	}
	return Scale{
		Name:            "test",
		Model:           model,
		PretrainClasses: 16, PretrainSessions: 2, PretrainFrames: 4,
		PretrainEpochs: 18, PretrainLR: 0.01, PretrainMomentum: 0.8,
		Core50: data.Config{
			Name: "core50", NumClasses: 10, NumDomains: 6, TestDomains: []int{2, 5},
			Resolution: 32, SessionsPerClassDomain: 2, FramesPerSession: 8,
			TestFramesPerClassDomain: 5, Severity: 0.9, Seed: 11,
		},
		OpenLORIS: data.Config{
			Name: "openloris", NumClasses: 10, NumDomains: 7, TestDomains: []int{3, 6},
			Resolution: 32, SessionsPerClassDomain: 2, FramesPerSession: 10,
			TestFramesPerClassDomain: 5, Severity: 0.5, Smooth: true, Seed: 12,
		},
		HeadLR: 0.1, HeadMomentum: 0.5, JointLR: 0.1, JointEpochs: 6,
		Seeds:       []int64{1, 2, 3},
		BufferSizes: []int{20, 40, 80, 160},
		ChameleonST: 10, AccessRate: 1, PromoteEvery: 1, Window: 200,
	}
}

// SmallScale is the default tier for cmd/chameleon-bench: the full 50-class
// CORe50 and 40-class OpenLORIS structure at laptop cost (a few minutes to
// build, cached afterwards).
func SmallScale() Scale {
	model := mobilenet.Config{
		Width: 0.25, Resolution: 32, LatentLayer: 21,
		Head: mobilenet.HeadMLP, HiddenDim: 96,
		NumClasses: 50, Seed: 7,
	}
	return Scale{
		Name:            "small",
		Model:           model,
		PretrainClasses: 24, PretrainSessions: 2, PretrainFrames: 5,
		PretrainEpochs: 20, PretrainLR: 0.01, PretrainMomentum: 0.8,
		Core50: data.Config{
			Name: "core50", NumClasses: 50, NumDomains: 11, TestDomains: []int{2, 6, 9},
			Resolution: 32, SessionsPerClassDomain: 1, FramesPerSession: 6,
			TestFramesPerClassDomain: 3, Severity: 0.9, Seed: 11,
		},
		OpenLORIS: data.Config{
			Name: "openloris", NumClasses: 40, NumDomains: 12, TestDomains: []int{3, 7, 11},
			Resolution: 32, SessionsPerClassDomain: 1, FramesPerSession: 9,
			TestFramesPerClassDomain: 4, Severity: 0.5, Smooth: true, Seed: 12,
		},
		HeadLR: 0.1, HeadMomentum: 0.5, JointLR: 0.1, JointEpochs: 6,
		Seeds:       []int64{1, 2, 3, 4, 5},
		BufferSizes: []int{50, 100, 200, 400},
		ChameleonST: 10, AccessRate: 1, PromoteEvery: 1, Window: 500,
	}
}

// DatasetConfig returns the deployment config for name ("core50"|"openloris").
func (s Scale) DatasetConfig(name string) (data.Config, bool) {
	switch name {
	case "core50":
		return s.Core50, true
	case "openloris":
		return s.OpenLORIS, true
	default:
		return data.Config{}, false
	}
}
