package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
)

// Row is one Table I / Fig. 2 entry: a method instance's accuracy (mean ±
// std over seeds) and its paper-scale memory overhead.
type Row struct {
	Spec     MethodSpec
	MemoryMB float64
	// Acc maps dataset name → summary.
	Acc map[string]cl.Summary
}

// Table1Result is the full table.
type Table1Result struct {
	Scale    string
	Datasets []string
	Rows     []Row
}

// Checkpointing configures crash-safe grid execution: every (method, dataset,
// seed) cell saves its learner state under Dir and a killed grid re-executes
// only the unfinished tails on restart. The zero value disables it.
type Checkpointing struct {
	// Dir is the checkpoint directory ("" disables checkpointing).
	Dir string
	// Every is the save period in batches (default 100).
	Every int
	// Resume restarts each cell from its last snapshot where one exists.
	Resume bool
}

// grid derives the per-cell plan, tagging files with the cell label.
func (c Checkpointing) grid(label string) cl.GridCheckpoint {
	if c.Dir == "" {
		return cl.GridCheckpoint{}
	}
	return cl.GridCheckpoint{Dir: c.Dir, Every: c.Every, Label: label, Resume: c.Resume}
}

// RunTable1 regenerates Table I: every method × buffer size × dataset,
// mean ± std over the scale's seeds.
func RunTable1(sets map[string]*cl.LatentSet, sc Scale, progress func(format string, args ...any)) (*Table1Result, error) {
	return RunTable1Checkpointed(sets, sc, Checkpointing{}, progress)
}

// RunTable1Checkpointed is RunTable1 with per-cell crash-safe snapshots.
func RunTable1Checkpointed(sets map[string]*cl.LatentSet, sc Scale, ck Checkpointing, progress func(format string, args ...any)) (*Table1Result, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var datasets []string
	for name := range sets {
		datasets = append(datasets, name)
	}
	sort.Strings(datasets)
	res := &Table1Result{Scale: sc.Name, Datasets: datasets}

	// Method-grid fan-out: every (method, dataset) cell is an independent
	// multi-seed experiment over an immutable latent set, so cells run
	// concurrently on the shared worker pool. Cells land in a pre-sized grid
	// indexed by (spec, dataset), keeping the assembled table byte-identical
	// to the serial loop at any worker count.
	specs := Table1Specs(sc)
	res.Rows = make([]Row, len(specs))
	for si, spec := range specs {
		mb, err := MemoryMB(spec)
		if err != nil {
			return nil, err
		}
		res.Rows[si] = Row{Spec: spec, MemoryMB: mb, Acc: map[string]cl.Summary{}}
	}
	var progressMu sync.Mutex
	cells := make([]cl.Summary, len(specs)*len(datasets))
	cellErrs := make([]error, len(cells))
	parallel.For(len(cells), 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			spec, dsName := specs[ci/len(datasets)], datasets[ci%len(datasets)]
			set := sets[dsName]
			summary, err := cl.MultiSeedCheckpointed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
				l, err := NewLearner(spec, set, sc, seed)
				if err != nil {
					panic("exp: " + err.Error()) // specs come from Table1Specs; cannot miss
				}
				return l
			}, sc.Seeds, ck.grid(fmt.Sprintf("table1-%s-%s", dsName, spec.Label())))
			if err != nil {
				cellErrs[ci] = fmt.Errorf("exp: table1 cell %s/%s: %w", spec.Label(), dsName, err)
				continue
			}
			summary.Method = spec.Label()
			cells[ci] = summary
			progressMu.Lock()
			progress("table1 %-18s %-10s %.2f%% ± %.2f", spec.Label(), dsName, 100*summary.MeanAcc, 100*summary.StdAcc)
			progressMu.Unlock()
		}
	})
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}
	for ci, summary := range cells {
		res.Rows[ci/len(datasets)].Acc[datasets[ci%len(datasets)]] = summary
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table I — Acc_all (mean ± std over %s-scale seeds) and paper-scale memory overhead\n", t.Scale)
	header := fmt.Sprintf("%-18s %12s", "Method", "Memory(MB)")
	for _, ds := range t.Datasets {
		header += fmt.Sprintf(" %20s", ds)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.Rows {
		mem := fmt.Sprintf("%.1f", row.MemoryMB)
		if row.MemoryMB == 0 {
			mem = "-"
		} else if row.Spec.Name == "chameleon" {
			on, _ := MemoryMB(MethodSpec{Name: "latent", Buffer: row.Spec.ST})
			mem = fmt.Sprintf("%.1f+%.1f", on, row.MemoryMB-on)
		}
		line := fmt.Sprintf("%-18s %12s", row.Spec.Label(), mem)
		for _, ds := range t.Datasets {
			s := row.Acc[ds]
			line += fmt.Sprintf("      %6.2f ± %-5.2f", 100*s.MeanAcc, 100*s.StdAcc)
		}
		fmt.Fprintln(w, line)
	}
}

// Fig2Result is the Fig. 2 series set: Acc_all vs memory budget on CORe50.
type Fig2Result struct {
	Scale string
	// Points maps method family → ordered (MB, mean accuracy) points.
	Points map[string][]Fig2Point
}

// Fig2Point is one point of a Fig. 2 series.
type Fig2Point struct {
	Buffer   int
	MemoryMB float64
	MeanAcc  float64
}

// RunFig2 regenerates Fig. 2 on the CORe50 set.
func RunFig2(set *cl.LatentSet, sc Scale, progress func(format string, args ...any)) (*Fig2Result, error) {
	return RunFig2Checkpointed(set, sc, Checkpointing{}, progress)
}

// RunFig2Checkpointed is RunFig2 with per-cell crash-safe snapshots.
func RunFig2Checkpointed(set *cl.LatentSet, sc Scale, ck Checkpointing, progress func(format string, args ...any)) (*Fig2Result, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	res := &Fig2Result{Scale: sc.Name, Points: map[string][]Fig2Point{}}
	specs := Fig2Specs(sc)
	memMB := make([]float64, len(specs))
	for i, spec := range specs {
		mb, err := MemoryMB(spec)
		if err != nil {
			return nil, err
		}
		memMB[i] = mb
	}
	// Same fan-out as RunTable1: independent cells, index-ordered results.
	var progressMu sync.Mutex
	points := make([]Fig2Point, len(specs))
	cellErrs := make([]error, len(specs))
	parallel.For(len(specs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			spec := specs[i]
			summary, err := cl.MultiSeedCheckpointed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
				l, err := NewLearner(spec, set, sc, seed)
				if err != nil {
					panic("exp: " + err.Error())
				}
				return l
			}, sc.Seeds, ck.grid(fmt.Sprintf("fig2-%s", spec.Label())))
			if err != nil {
				cellErrs[i] = fmt.Errorf("exp: fig2 cell %s: %w", spec.Label(), err)
				continue
			}
			points[i] = Fig2Point{Buffer: spec.Buffer, MemoryMB: memMB[i], MeanAcc: summary.MeanAcc}
			progressMu.Lock()
			progress("fig2 %-18s %6.1f MB -> %.2f%%", spec.Label(), memMB[i], 100*summary.MeanAcc)
			progressMu.Unlock()
		}
	})
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}
	for i, spec := range specs {
		res.Points[spec.Name] = append(res.Points[spec.Name], points[i])
	}
	return res, nil
}

// Render prints the Fig. 2 series as aligned columns plus an ASCII chart.
func (f *Fig2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 2 — Acc_all vs replay-memory budget on CORe50 (%s scale)\n", f.Scale)
	var methods []string
	for m := range f.Points {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Fprintf(w, "%-12s %10s %10s %8s\n", "method", "buffer", "MB(paper)", "acc%%")
	for _, m := range methods {
		for _, p := range f.Points[m] {
			fmt.Fprintf(w, "%-12s %10d %10.1f %8.2f\n", m, p.Buffer, p.MemoryMB, 100*p.MeanAcc)
		}
	}
	// Compact ASCII strip chart: accuracy bars by method@budget.
	fmt.Fprintln(w)
	for _, m := range methods {
		for _, p := range f.Points[m] {
			bar := int(math.Round(p.MeanAcc * 50))
			if bar < 0 {
				bar = 0
			}
			fmt.Fprintf(w, "%-20s |%s %.1f%%\n", fmt.Sprintf("%s@%.1fMB", m, p.MemoryMB), strings.Repeat("#", bar), 100*p.MeanAcc)
		}
	}
}
