package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/memcost"
	"chameleon/internal/parallel"
)

// This file implements the memory–accuracy frontier exhibit: Fig. 2 / Table I
// extended to fp32-vs-int8 replay stores compared at equal *bytes*, not equal
// samples. An int8 store's per-sample payload is ~4× smaller (1 byte/element
// plus one fp32 scale), so at a fixed byte budget it holds ~4× the samples;
// the exhibit asks whether those extra samples buy accuracy — i.e. whether
// quantized replay moves the frontier — rather than comparing stores that
// differ in both representation and capacity.

// FrontierPair is one equal-bytes comparison: an fp32 arm at the budget's
// sample count versus an int8 arm holding as many samples as the same bytes
// afford. Accuracies are MultiSeed means per dataset; DeltaPts is the int8
// arm's accuracy minus the fp32 arm's, in percentage points (negative =
// quantization lost accuracy despite the extra samples).
type FrontierPair struct {
	Method      string             `json:"method"`
	Budget      int                `json:"budget_samples_fp32"`
	BudgetBytes int64              `json:"budget_bytes"`
	FP32Samples int                `json:"fp32_samples"`
	Int8Samples int                `json:"int8_samples"`
	SampleRatio float64            `json:"sample_ratio"`
	FP32MB      float64            `json:"fp32_mb"`
	Int8MB      float64            `json:"int8_mb"`
	FP32Acc     map[string]float64 `json:"fp32_acc"`
	Int8Acc     map[string]float64 `json:"int8_acc"`
	DeltaPts    map[string]float64 `json:"delta_pts"`
}

// FrontierResult is the full exhibit.
type FrontierResult struct {
	Scale    string         `json:"scale"`
	Datasets []string       `json:"datasets"`
	Pairs    []FrontierPair `json:"pairs"`
}

// Int8EquivalentSamples returns how many samples an int8 store holds in the
// byte budget of the given fp32 spec at paper scale. Only the latent-storing
// methods are meaningful here: the raw-image methods' accounting (ER, DER,
// GSS) is dominated by image bytes that quantized latents do not change. For
// Chameleon the short-term store rides inside the same budget, so its ST
// samples are subtracted from the long-term capacity the budget affords.
func Int8EquivalentSamples(spec MethodSpec) (int, error) {
	if spec.Name != "latent" && spec.Name != "chameleon" {
		return 0, fmt.Errorf("exp: equal-bytes int8 sizing applies to latent-storing methods, not %q", spec.Name)
	}
	fp32 := spec
	fp32.ReplayInt8 = false
	m := memcost.PaperModel()
	budget, err := m.Overhead(memcost.Method(fp32.Name), fp32.Buffer, fp32.ST)
	if err != nil {
		return 0, err
	}
	q := memcost.PaperModel()
	q.LatentDtype = memcost.DtypeInt8
	n := budget / q.LatentBytes()
	if spec.Name == "chameleon" {
		n -= int64(spec.ST)
	}
	if n < 0 {
		n = 0
	}
	return int(n), nil
}

// RunFrontier runs the equal-bytes frontier over the given fp32 budgets
// (buffer sample counts) for the latent-storing methods on every dataset in
// sets, mean accuracy over the scale's seeds.
func RunFrontier(sets map[string]*cl.LatentSet, sc Scale, budgets []int, progress func(format string, args ...any)) (*FrontierResult, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var datasets []string
	for name := range sets {
		datasets = append(datasets, name)
	}
	sort.Strings(datasets)
	res := &FrontierResult{Scale: sc.Name, Datasets: datasets}

	type arm struct {
		pair int
		int8 bool
		spec MethodSpec
	}
	var arms []arm
	for _, method := range []string{"latent", "chameleon"} {
		for _, n := range budgets {
			fp32 := MethodSpec{Name: method, Buffer: n}
			if method == "chameleon" {
				fp32.ST = sc.ChameleonST
			}
			n8, err := Int8EquivalentSamples(fp32)
			if err != nil {
				return nil, err
			}
			int8Spec := fp32
			int8Spec.Buffer = n8
			int8Spec.ReplayInt8 = true
			m := memcost.PaperModel()
			budgetBytes, err := m.Overhead(memcost.Method(fp32.Name), fp32.Buffer, fp32.ST)
			if err != nil {
				return nil, err
			}
			fp32MB, err := MemoryMB(fp32)
			if err != nil {
				return nil, err
			}
			int8MB, err := MemoryMB(int8Spec)
			if err != nil {
				return nil, err
			}
			pi := len(res.Pairs)
			res.Pairs = append(res.Pairs, FrontierPair{
				Method:      method,
				Budget:      n,
				BudgetBytes: budgetBytes,
				FP32Samples: fp32.Buffer,
				Int8Samples: n8,
				SampleRatio: float64(n8) / float64(fp32.Buffer),
				FP32MB:      fp32MB,
				Int8MB:      int8MB,
				FP32Acc:     map[string]float64{},
				Int8Acc:     map[string]float64{},
				DeltaPts:    map[string]float64{},
			})
			arms = append(arms, arm{pair: pi, int8: false, spec: fp32}, arm{pair: pi, int8: true, spec: int8Spec})
		}
	}

	// Same fan-out as RunTable1: every (arm, dataset) cell is an independent
	// multi-seed run over an immutable latent set.
	var progressMu sync.Mutex
	cells := make([]float64, len(arms)*len(datasets))
	parallel.For(len(cells), 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			a, dsName := arms[ci/len(datasets)], datasets[ci%len(datasets)]
			set := sets[dsName]
			summary := cl.MultiSeed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
				l, err := NewLearner(a.spec, set, sc, seed)
				if err != nil {
					panic("exp: " + err.Error()) // specs are built above; cannot miss
				}
				return l
			}, sc.Seeds)
			cells[ci] = summary.MeanAcc
			progressMu.Lock()
			progress("frontier %-22s %-10s %.2f%%", a.spec.Label(), dsName, 100*summary.MeanAcc)
			progressMu.Unlock()
		}
	})
	for ci, acc := range cells {
		a, dsName := arms[ci/len(datasets)], datasets[ci%len(datasets)]
		if a.int8 {
			res.Pairs[a.pair].Int8Acc[dsName] = acc
		} else {
			res.Pairs[a.pair].FP32Acc[dsName] = acc
		}
	}
	for pi := range res.Pairs {
		p := &res.Pairs[pi]
		for _, ds := range datasets {
			p.DeltaPts[ds] = 100 * (p.Int8Acc[ds] - p.FP32Acc[ds])
		}
	}
	return res, nil
}

// Render prints the frontier as aligned equal-bytes rows.
func (f *FrontierResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Memory–accuracy frontier — fp32 vs int8 stores at equal bytes (%s scale)\n", f.Scale)
	fmt.Fprintf(w, "%-12s %10s %12s %14s", "method", "budget MB", "fp32 samples", "int8 samples")
	for _, ds := range f.Datasets {
		fmt.Fprintf(w, " %22s", ds+" Δpts")
	}
	fmt.Fprintln(w)
	for _, p := range f.Pairs {
		fmt.Fprintf(w, "%-12s %10.1f %12d %14d", p.Method, p.FP32MB, p.FP32Samples, p.Int8Samples)
		for _, ds := range f.Datasets {
			fmt.Fprintf(w, "   %6.2f→%6.2f (%+.2f)", 100*p.FP32Acc[ds], 100*p.Int8Acc[ds], p.DeltaPts[ds])
		}
		fmt.Fprintln(w)
	}
}
