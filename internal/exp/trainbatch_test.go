package exp

import (
	"math"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
)

// TestBatchTrainAccuracyParityAllMethods is the end-to-end acceptance gate for
// the batched training path: every method family — core Chameleon plus the
// nine baselines — must land within ±0.5 accuracy points of its per-sample
// twin on a full Table-I-config stream, at worker counts 1 and 8. The fp32
// batched forward reassociates differently from the per-sample GEMV, so exact
// equality is not expected; decision-level parity is.
func TestBatchTrainAccuracyParityAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("batch-train parity runs full streams per method; run without -short")
	}
	sc := TestScale()
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.SetBatchTrainDefault(true)
	defer parallel.SetWorkers(0)
	opts := data.StreamOptions{BatchSize: 10}
	for _, method := range Methods() {
		spec := MethodSpec{Name: method, Buffer: 40, ST: sc.ChameleonST}
		for _, w := range []int{1, 8} {
			parallel.SetWorkers(w)
			accs := map[bool]float64{}
			for _, batched := range []bool{true, false} {
				cl.SetBatchTrainDefault(batched)
				l, err := NewLearner(spec, set, sc, 1)
				if err != nil {
					t.Fatal(err)
				}
				accs[batched] = cl.RunOnline(l, set.Stream(1, opts), set.Test).AccAll
			}
			diff := math.Abs(accs[true] - accs[false])
			t.Logf("%s workers=%d: batched %.4f, per-sample %.4f (|Δ| %.4f)",
				method, w, accs[true], accs[false], diff)
			if diff > 0.005 {
				t.Errorf("%s workers=%d: batched accuracy %.4f vs per-sample %.4f differ by %.4f (> 0.5 pt)",
					method, w, accs[true], accs[false], diff)
			}
		}
	}
}

// TestRef64BatchedFullStreamBitIdentity is the reference-tier acceptance gate:
// the fp64 batched path must be bit-identical to the fp64 per-sample path over
// a complete Table-I-config stream — same final weights, same accuracy.
func TestRef64BatchedFullStreamBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("fp64 bit-identity runs full streams; run without -short")
	}
	sc := TestScale()
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := MethodSpec{Name: "finetune"}
	opts := data.StreamOptions{BatchSize: 10}
	run := func(batched bool) (*cl.Ref64, float64) {
		l, err := NewRef64Learner(spec, set, sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := l.(*cl.Ref64)
		ref.Batched = batched
		return ref, cl.RunOnline(ref, set.Stream(1, opts), set.Test).AccAll
	}
	serial, accSerial := run(false)
	batched, accBatched := run(true)
	if accSerial != accBatched {
		t.Errorf("fp64 accuracies diverge: per-sample %.6f vs batched %.6f", accSerial, accBatched)
	}
	ps, pb := serial.Net.Params(), batched.Net.Params()
	for i := range ps {
		ds, db := ps[i].Data.Data(), pb[i].Data.Data()
		for j := range ds {
			if ds[j] != db[j] {
				t.Fatalf("fp64 param %q[%d] diverges: %v vs %v", ps[i].Name, j, ds[j], db[j])
			}
		}
	}
}
