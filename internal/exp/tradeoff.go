package exp

import (
	"fmt"
	"io"

	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
	"chameleon/internal/hw"
	"chameleon/internal/mobilenet"
)

// TradeoffPoint is one h setting of the accuracy/energy trade-off: the
// measured accuracy at that long-term access period, the measured replay
// traffic of the run, and the paper-scale per-image step cost on the FPGA.
type TradeoffPoint struct {
	H             int
	MeanAcc       float64
	StdAcc        float64
	Meter         cl.TrafficCounts
	FPGAStep      hw.Cost
	OffChipMBRun  float64
	MemoryEnergyJ float64
}

// RunTradeoff sweeps Chameleon's long-term access period h, running the full
// accuracy experiment per setting (the ablation) while the hardware model
// prices the corresponding step profile — the quantitative form of the
// paper's claim that h=10 buys an order-of-magnitude DRAM saving at no
// accuracy cost.
func RunTradeoff(set *cl.LatentSet, sc Scale, hs []int) ([]TradeoffPoint, error) {
	cfgHW := mobilenet.PaperConfig(50)
	cfgHW.Resolution = 128
	fpga := hw.ZCU102()
	var out []TradeoffPoint
	for _, h := range hs {
		h := h
		meter := &cl.TrafficMeter{}
		summary := cl.MultiSeed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
			return core.New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Momentum: sc.HeadMomentum, Seed: seed}), core.Config{
				STCap: sc.ChameleonST, LTCap: defaultLT(sc),
				AccessRate: h, PromoteEvery: sc.PromoteEvery,
				LTSampleSize: 10, Window: sc.Window, Meter: meter, Seed: seed,
			})
		}, sc.Seeds)

		profiler := hw.NewProfiler(cfgHW, hw.ProfileParams{Replay: 10, AccessRate: h, BytesPerScalar: 2})
		profile, err := profiler.Profile("chameleon")
		if err != nil {
			return nil, err
		}
		// Measured traffic of the whole run at paper-scale latent payloads.
		const latentBytes = 32 * 1024
		on, off := meter.Bytes(latentBytes)
		energy := float64(on)*hw.Horowitz45nm.SRAMPerByte + float64(off)*hw.Horowitz45nm.DRAMPerByte
		out = append(out, TradeoffPoint{
			H: h, MeanAcc: summary.MeanAcc, StdAcc: summary.StdAcc,
			Meter:         meter.Counts(),
			FPGAStep:      fpga.Step(profile),
			OffChipMBRun:  float64(off) / (1 << 20),
			MemoryEnergyJ: energy,
		})
	}
	return out, nil
}

// RenderTradeoff prints the sweep.
func RenderTradeoff(w io.Writer, points []TradeoffPoint) {
	fmt.Fprintln(w, "Accuracy vs off-chip traffic trade-off (Chameleon, long-term access period h)")
	fmt.Fprintf(w, "%4s %14s %18s %16s %18s\n", "h", "Acc_all", "off-chip MB/run", "mem energy J", "FPGA step ms")
	for _, p := range points {
		fmt.Fprintf(w, "%4d %8.2f ± %-4.2f %18.1f %16.3f %18.0f\n",
			p.H, 100*p.MeanAcc, 100*p.StdAcc, p.OffChipMBRun, p.MemoryEnergyJ, p.FPGAStep.LatencySec*1e3)
	}
}
