package exp

import (
	"math"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
)

// TestInt8BackboneAccuracy runs the finetune learner on latents extracted
// through the integer backbone path and pins the deployment cost: accuracy
// on the Table-I test config must stay within 5 points of the fp32
// extraction. It also pins that the two pipelines produce distinct cache
// entries (the "-int8" key suffix) by simply building both in one process.
func TestInt8BackboneAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("int8 backbone parity builds two pipelines; run without -short")
	}
	sc := TestScale()
	fp32Set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	int8Set, err := BuildLatentSetOpts("core50", sc, DefaultCacheDir(), nil, PipelineOptions{Int8Backbone: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := MethodSpec{Name: "finetune"}
	opts := data.StreamOptions{BatchSize: 10}
	var accs [2]float64
	for i, set := range []*cl.LatentSet{fp32Set, int8Set} {
		learner, err := NewLearner(spec, set, sc, 0)
		if err != nil {
			t.Fatal(err)
		}
		accs[i] = cl.RunOnline(learner, set.Stream(0, opts), set.Test).AccAll
	}
	diff := math.Abs(accs[0] - accs[1])
	t.Logf("fp32 %.4f, int8 %.4f (|Δ| %.4f)", accs[0], accs[1], diff)
	if diff > 0.05 {
		t.Errorf("int8 backbone moved finetune accuracy by %.1f points (> 5)", 100*diff)
	}
}
