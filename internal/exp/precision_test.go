package exp

import (
	"math"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
)

// TestPrecisionParityFinetune pins the fast tier to the reference tier: the
// fp32 finetune learner and the widened fp64 Ref64 learner run the same
// Table-I-config streams (seeds 0–2) and must land within ±0.5 accuracy
// points of each other. A wider gap means the fp32 train-step kernels are
// accumulating rounding error that changes decisions, not just ulps.
func TestPrecisionParityFinetune(t *testing.T) {
	if testing.Short() {
		t.Skip("precision parity runs full streams; run without -short")
	}
	sc := TestScale()
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := MethodSpec{Name: "finetune"}
	for _, seed := range []int64{0, 1, 2} {
		fast, err := NewLearner(spec, set, sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewRef64Learner(spec, set, sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		opts := data.StreamOptions{BatchSize: 10}
		fastRes := cl.RunOnline(fast, set.Stream(seed, opts), set.Test)
		refRes := cl.RunOnline(ref, set.Stream(seed, opts), set.Test)
		diff := math.Abs(fastRes.AccAll - refRes.AccAll)
		t.Logf("seed %d: fp32 %.4f, fp64 %.4f (|Δ| %.4f)", seed, fastRes.AccAll, refRes.AccAll, diff)
		if diff > 0.005 {
			t.Errorf("seed %d: fp32 accuracy %.4f vs fp64 %.4f differ by %.4f (> 0.5 pt)",
				seed, fastRes.AccAll, refRes.AccAll, diff)
		}
	}
}

// TestNewRef64LearnerRejectsOtherMethods pins the reference tier's scope.
func TestNewRef64LearnerRejectsOtherMethods(t *testing.T) {
	if _, err := NewRef64Learner(MethodSpec{Name: "chameleon"}, nil, TestScale(), 1); err == nil {
		t.Fatal("expected an error for a non-finetune fp64 method")
	}
}
