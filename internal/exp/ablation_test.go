package exp

import (
	"testing"
)

// TestAblationsRun exercises every ablation runner end to end on the cached
// test-scale pipeline with a single seed. Skipped in -short mode.
func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation integration is slow; run without -short")
	}
	sc := TestScale()
	sc.Seeds = []int64{1}
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, rows []AblationResult, wantRows int) {
		t.Helper()
		if len(rows) != wantRows {
			t.Fatalf("%s: %d rows, want %d", name, len(rows), wantRows)
		}
		for _, r := range rows {
			if r.Variant == "" {
				t.Fatalf("%s: empty variant label", name)
			}
			if r.MeanAcc <= 0 || r.MeanAcc > 1 {
				t.Fatalf("%s/%s: acc %v out of range", name, r.Variant, r.MeanAcc)
			}
		}
	}
	dual := RunAblationDualVsSingle(set, sc)
	check("dual", dual, 2)
	// The headline ablation: the dual store must not be materially worse
	// than the unified buffer of equal capacity.
	if dual[0].MeanAcc < dual[1].MeanAcc-0.10 {
		t.Fatalf("dual store (%v) far below single buffer (%v)", dual[0].MeanAcc, dual[1].MeanAcc)
	}
	check("st", RunAblationSTPolicy(set, sc), 3)
	check("lt", RunAblationLTPolicy(set, sc), 2)
	check("h", RunAblationAccessRate(set, sc, []int{1, 10}), 2)
	// ρ=0 is the indifference ablation the ρ-sentinel fix made expressible;
	// it must run end to end like any other exponent.
	check("rho", RunAblationRho(set, sc, []float64{0, 1.0}), 2)
}

// TestTradeoffRun exercises the h trade-off sweep end to end (one seed).
func TestTradeoffRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tradeoff integration is slow; run without -short")
	}
	sc := TestScale()
	sc.Seeds = []int64{1}
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunTradeoff(set, sc, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger h must reduce both the measured off-chip traffic and the
	// modelled FPGA step latency.
	if pts[1].OffChipMBRun >= pts[0].OffChipMBRun {
		t.Fatalf("off-chip traffic did not drop with h: %v vs %v", pts[1].OffChipMBRun, pts[0].OffChipMBRun)
	}
	if pts[1].FPGAStep.LatencySec >= pts[0].FPGAStep.LatencySec {
		t.Fatalf("FPGA step did not drop with h")
	}
	for _, p := range pts {
		if p.MeanAcc <= 0 || p.MeanAcc > 1 {
			t.Fatalf("acc out of range: %+v", p)
		}
	}
}
