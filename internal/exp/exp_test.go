package exp

import (
	"bytes"
	"strings"
	"testing"

	"chameleon/internal/cl"
)

func TestScaleDatasetConfig(t *testing.T) {
	sc := TestScale()
	if _, ok := sc.DatasetConfig("core50"); !ok {
		t.Fatal("core50 missing")
	}
	if _, ok := sc.DatasetConfig("openloris"); !ok {
		t.Fatal("openloris missing")
	}
	if _, ok := sc.DatasetConfig("mnist"); ok {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMethodSpecLabel(t *testing.T) {
	cases := map[string]MethodSpec{
		"finetune":        {Name: "finetune"},
		"er-200":          {Name: "er", Buffer: 200},
		"chameleon-10+50": {Name: "chameleon", Buffer: 50, ST: 10},
	}
	for want, spec := range cases {
		if got := spec.Label(); got != want {
			t.Errorf("Label() = %q, want %q", got, want)
		}
	}
}

func TestTable1SpecsCoverPaperRows(t *testing.T) {
	sc := TestScale()
	specs := Table1Specs(sc)
	// 5 bufferless/fixed rows + 4 replay families × len(buffers) + chameleon × len(buffers).
	want := 5 + 5*len(sc.BufferSizes)
	if len(specs) != want {
		t.Fatalf("got %d specs, want %d", len(specs), want)
	}
	families := map[string]bool{}
	for _, s := range specs {
		families[s.Name] = true
		if s.Name == "chameleon" && s.ST != sc.ChameleonST {
			t.Fatal("chameleon spec missing ST")
		}
	}
	for _, f := range []string{"joint", "finetune", "ewcpp", "lwf", "slda", "gss", "er", "der", "latent", "chameleon"} {
		if !families[f] {
			t.Fatalf("missing family %q", f)
		}
	}
}

func TestMemoryMBOrdering(t *testing.T) {
	gss, err := MemoryMB(MethodSpec{Name: "gss", Buffer: 100})
	if err != nil {
		t.Fatal(err)
	}
	er, _ := MemoryMB(MethodSpec{Name: "er", Buffer: 100})
	lat, _ := MemoryMB(MethodSpec{Name: "latent", Buffer: 100})
	if !(gss > er && er > lat) {
		t.Fatalf("memory ordering broken: gss=%.1f er=%.1f latent=%.1f", gss, er, lat)
	}
	if _, err := MemoryMB(MethodSpec{Name: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestNewLearnerUnknownMethod(t *testing.T) {
	if _, err := NewLearner(MethodSpec{Name: "nope"}, nil, TestScale(), 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildLatentSetUnknownDataset(t *testing.T) {
	if _, err := BuildLatentSet("imagenet", TestScale(), "", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	a := cacheKey("core50", TestScale())
	b := cacheKey("openloris", TestScale())
	c := cacheKey("core50", SmallScale())
	if a == b || a == c {
		t.Fatalf("cache keys collide: %q %q %q", a, b, c)
	}
	if !strings.HasPrefix(a, "core50-test-") {
		t.Fatalf("cache key format: %q", a)
	}
}

func TestRunTable2MatchesPaperShape(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, e := range res.Entries {
		byKey[e.Method+"/"+e.Platform] = e.Cost.LatencySec
	}
	// Headline ratios: Chameleon fastest everywhere it is compared.
	if byKey["latent/zcu102"]/byKey["chameleon/zcu102"] < 4 {
		t.Fatalf("FPGA speedup too small: %.2f", byKey["latent/zcu102"]/byKey["chameleon/zcu102"])
	}
	if byKey["slda/edgetpu"]/byKey["chameleon/edgetpu"] < 8 {
		t.Fatalf("EdgeTPU speedup too small: %.2f", byKey["slda/edgetpu"]/byKey["chameleon/edgetpu"])
	}
	if byKey["latent/jetson-nano"]/byKey["chameleon/jetson-nano"] < 2.5 {
		t.Fatalf("Nano speedup too small")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Jetson Nano") || !strings.Contains(buf.String(), "chameleon") {
		t.Fatal("render missing content")
	}
}

func TestRunTable3MatchesPaper(t *testing.T) {
	res := RunTable3()
	r := res.Report
	if r.DSPUsed != 1164 || r.BRAMUsed != 632 || r.LUTUsed != 169428 {
		t.Fatalf("resources drifted: %+v", r)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"2520", "656", "233707", "46.19", "96.34", "72.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestPipelineAndTable1Integration exercises the full accuracy pipeline at
// test scale with a single seed. Skipped in -short mode; the first run per
// machine builds the cached latents (~30 s).
func TestPipelineAndTable1Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration is slow; run without -short")
	}
	sc := TestScale()
	sc.Seeds = []int64{1}
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Train) == 0 || len(set.Test) == 0 {
		t.Fatal("empty latent set")
	}

	// A reduced spec sweep: the bounds plus one replay method and chameleon.
	sets := map[string]*cl.LatentSet{"core50": set}
	sc.BufferSizes = []int{40}
	res, err := RunTable1(sets, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := map[string]float64{}
	for _, row := range res.Rows {
		acc[row.Spec.Label()] = row.Acc["core50"].MeanAcc
	}
	if acc["joint"] < 0.6 {
		t.Fatalf("joint = %v, pipeline degraded", acc["joint"])
	}
	if acc["joint"] <= acc["finetune"] {
		t.Fatalf("joint (%v) must beat finetune (%v)", acc["joint"], acc["finetune"])
	}
	if acc["chameleon-10+40"] < acc["finetune"]-0.1 {
		t.Fatalf("chameleon (%v) far below finetune (%v)", acc["chameleon-10+40"], acc["finetune"])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "chameleon-10+40") {
		t.Fatal("render missing chameleon row")
	}
}

// TestFig2Integration checks the Fig. 2 runner end to end with one seed.
func TestFig2Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration is slow; run without -short")
	}
	sc := TestScale()
	sc.Seeds = []int64{1}
	sc.BufferSizes = []int{20, 80}
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig2(set, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points["chameleon"]) != 2 || len(res.Points["finetune"]) != 1 {
		t.Fatalf("series shapes wrong: %+v", res.Points)
	}
	for _, p := range res.Points["er"] {
		if p.MemoryMB <= 0 || p.MeanAcc <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Fatal("render missing header")
	}
}
