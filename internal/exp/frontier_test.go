package exp

import (
	"bytes"
	"strings"
	"testing"

	"chameleon/internal/cl"
)

// TestQuantizedFrontierSizing pins the equal-bytes arithmetic at paper scale:
// a latent is 8192 scalars, so fp32 stores pay 32768 B/sample and int8 stores
// 8196 B/sample (payload + one fp32 scale). Chameleon's ST samples ride
// inside the same budget, which is what pushes its equal-bytes ratio past 4×.
func TestQuantizedFrontierSizing(t *testing.T) {
	cases := []struct {
		spec MethodSpec
		want int
	}{
		// chameleon N=40: (40+10)·32768 B ÷ 8196 B = 199 samples, minus ST 10.
		{MethodSpec{Name: "chameleon", Buffer: 40, ST: 10}, 189},
		// chameleon N=20: 30·32768 ÷ 8196 = 119, minus 10.
		{MethodSpec{Name: "chameleon", Buffer: 20, ST: 10}, 109},
		// plain latent N=40: 40·32768 ÷ 8196 = 159 (always just short of 4×,
		// because the int8 per-sample scale is pure overhead).
		{MethodSpec{Name: "latent", Buffer: 40}, 159},
	}
	for _, tc := range cases {
		got, err := Int8EquivalentSamples(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Label(), err)
		}
		if got != tc.want {
			t.Errorf("%s: int8 samples = %d, want %d", tc.spec.Label(), got, tc.want)
		}
	}
	for _, spec := range []MethodSpec{{Name: "er", Buffer: 40}, {Name: "gss", Buffer: 40}} {
		if _, err := Int8EquivalentSamples(spec); err == nil {
			t.Errorf("%s: raw-image method accepted for equal-bytes sizing", spec.Name)
		}
	}
}

// TestQuantizedFrontierIntegration runs the equal-bytes frontier end to end
// on one dataset, one budget, one seed, and checks the exhibit's invariants:
// the chameleon pair clears the 4× sample ratio, both arms actually learned,
// and the render mentions every pair.
func TestQuantizedFrontierIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier integration is slow; run without -short")
	}
	sc := TestScale()
	sc.Seeds = []int64{1}
	set, err := BuildLatentSet("core50", sc, DefaultCacheDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFrontier(map[string]*cl.LatentSet{"core50": set}, sc, []int{20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("got %d pairs, want 2 (latent, chameleon)", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.Int8Samples <= p.FP32Samples {
			t.Errorf("%s: int8 arm holds %d samples vs fp32 %d — equal bytes must buy capacity",
				p.Method, p.Int8Samples, p.FP32Samples)
		}
		if p.Int8MB > p.FP32MB*1.01 {
			t.Errorf("%s: int8 store charged %.2f MB vs fp32 %.2f MB at equal bytes",
				p.Method, p.Int8MB, p.FP32MB)
		}
		if p.FP32Acc["core50"] <= 0 || p.Int8Acc["core50"] <= 0 {
			t.Errorf("%s: degenerate accuracies %+v / %+v", p.Method, p.FP32Acc, p.Int8Acc)
		}
		if p.Method == "chameleon" && p.SampleRatio < 4 {
			t.Errorf("chameleon sample ratio %.2f < 4", p.SampleRatio)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"chameleon", "latent", "core50", "equal bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
