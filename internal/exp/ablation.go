package exp

import (
	"fmt"

	"chameleon/internal/baselines"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/data"
)

// AblationResult is one ablation variant's outcome.
type AblationResult struct {
	Variant string
	MeanAcc float64
	StdAcc  float64
}

// chameleonSummary runs a Chameleon config over the scale's seeds.
func chameleonSummary(set *cl.LatentSet, sc Scale, mutate func(*core.Config)) cl.Summary {
	return cl.MultiSeed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
		cfg := core.Config{
			STCap: sc.ChameleonST, LTCap: defaultLT(sc),
			AccessRate: sc.AccessRate, PromoteEvery: sc.PromoteEvery,
			LTSampleSize: 10, Window: sc.Window, Seed: seed,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return core.New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}), cfg)
	}, sc.Seeds)
}

func defaultLT(sc Scale) int {
	if len(sc.BufferSizes) >= 3 {
		return sc.BufferSizes[2]
	}
	return 100
}

// RunAblationSTPolicy compares the short-term insertion policy of Eq. 4
// against pure-uncertainty and pure-random variants (DESIGN.md §6).
func RunAblationSTPolicy(set *cl.LatentSet, sc Scale) []AblationResult {
	variants := []struct {
		name        string
		alpha, beta float64
	}{
		{"user-aware+uncertainty (α=1,β=1)", 1, 1},
		{"uncertainty-only (α=0,β=1)", 0, 1},
		{"random (α=0,β=0)", 0, 0},
	}
	var out []AblationResult
	for _, v := range variants {
		v := v
		s := chameleonSummary(set, sc, func(c *core.Config) { c.Alpha, c.Beta = core.Float(v.alpha), core.Float(v.beta) })
		out = append(out, AblationResult{Variant: v.name, MeanAcc: s.MeanAcc, StdAcc: s.StdAcc})
	}
	return out
}

// RunAblationLTPolicy compares prototype-KL promotion (Eq. 6) against random
// promotion.
func RunAblationLTPolicy(set *cl.LatentSet, sc Scale) []AblationResult {
	proto := chameleonSummary(set, sc, nil)
	random := chameleonSummary(set, sc, func(c *core.Config) { c.RandomPromotion = true })
	return []AblationResult{
		{Variant: "prototype-KL promotion (Eq. 6)", MeanAcc: proto.MeanAcc, StdAcc: proto.StdAcc},
		{Variant: "random promotion", MeanAcc: random.MeanAcc, StdAcc: random.StdAcc},
	}
}

// RunAblationAccessRate sweeps the long-term access period h, the paper's
// on-chip/off-chip traffic knob; the DRAM traffic per step scales as 1/h.
func RunAblationAccessRate(set *cl.LatentSet, sc Scale, rates []int) []AblationResult {
	var out []AblationResult
	for _, h := range rates {
		h := h
		s := chameleonSummary(set, sc, func(c *core.Config) { c.AccessRate = h })
		out = append(out, AblationResult{
			Variant: fmt.Sprintf("h=%d (off-chip replay traffic ∝ 1/%d)", h, h),
			MeanAcc: s.MeanAcc, StdAcc: s.StdAcc,
		})
	}
	return out
}

// RunAblationRho sweeps the allocation exponent ρ of Eq. 2 under a
// user-centric stream, where it actually matters.
func RunAblationRho(set *cl.LatentSet, sc Scale, rhos []float64) []AblationResult {
	var out []AblationResult
	for _, rho := range rhos {
		rho := rho
		summary := cl.MultiSeed(set, data.StreamOptions{
			BatchSize: 10, UserCentric: true, PrefSkew: 1.6, PrefTopK: 3,
		}, func(seed int64) cl.Learner {
			return core.New(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}), core.Config{
				STCap: sc.ChameleonST, LTCap: defaultLT(sc),
				AccessRate: sc.AccessRate, PromoteEvery: sc.PromoteEvery,
				LTSampleSize: 10, Window: sc.Window, TopK: 3, Rho: core.Float(rho), Seed: seed,
			})
		}, sc.Seeds)
		out = append(out, AblationResult{
			Variant: fmt.Sprintf("rho=%.2f", rho),
			MeanAcc: summary.MeanAcc, StdAcc: summary.StdAcc,
		})
	}
	return out
}

// RunAblationDualVsSingle compares the dual-store design against a single
// unified latent buffer of the same total capacity (Latent Replay).
func RunAblationDualVsSingle(set *cl.LatentSet, sc Scale) []AblationResult {
	lt := defaultLT(sc)
	dual := chameleonSummary(set, sc, nil)
	single := cl.MultiSeed(set, data.StreamOptions{BatchSize: 10}, func(seed int64) cl.Learner {
		return baselines.NewLatentReplay(cl.NewHead(set.Backbone, cl.HeadConfig{LR: sc.HeadLR, Seed: seed}),
			baselines.Config{BufferSize: lt + sc.ChameleonST, Seed: seed})
	}, sc.Seeds)
	return []AblationResult{
		{Variant: fmt.Sprintf("dual store (%d on-chip + %d off-chip)", sc.ChameleonST, lt), MeanAcc: dual.MeanAcc, StdAcc: dual.StdAcc},
		{Variant: fmt.Sprintf("single unified buffer (%d)", lt+sc.ChameleonST), MeanAcc: single.MeanAcc, StdAcc: single.StdAcc},
	}
}
