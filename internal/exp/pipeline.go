package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
	"chameleon/internal/tensor"
)

// BuildLatentSet runs the full pipeline for one dataset at one scale:
//
//  1. generate a disjoint pretraining pool (the ImageNet stand-in),
//  2. pretrain the backbone end-to-end and freeze it,
//  3. generate the deployment benchmark,
//  4. extract latents for its train and test pools.
//
// The result is cached on disk under cacheDir (keyed by a hash of all
// configs), because every method and seed shares the same frozen features.
// Pass cacheDir = "" to disable caching.
func BuildLatentSet(datasetName string, sc Scale, cacheDir string, verbose func(format string, args ...any)) (*cl.LatentSet, error) {
	return BuildLatentSetOpts(datasetName, sc, cacheDir, verbose, PipelineOptions{})
}

// PipelineOptions selects pipeline variants that change the produced latents
// (and therefore the cache key).
type PipelineOptions struct {
	// Int8Backbone extracts latents through the integer backbone path
	// (mobilenet.Int8Extractor) instead of the fp32 extractor.
	Int8Backbone bool
}

// BuildLatentSetOpts is BuildLatentSet with explicit pipeline options.
func BuildLatentSetOpts(datasetName string, sc Scale, cacheDir string, verbose func(format string, args ...any), opts PipelineOptions) (*cl.LatentSet, error) {
	if verbose == nil {
		verbose = func(string, ...any) {}
	}
	dcfg, ok := sc.DatasetConfig(datasetName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown dataset %q (want core50 or openloris)", datasetName)
	}
	key := cacheKey(datasetName, sc)
	if opts.Int8Backbone {
		// Distinct cache entries: int8 latents are numerically different.
		key += "-int8"
	}
	cachePath := ""
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("exp: cache dir: %w", err)
		}
		cachePath = filepath.Join(cacheDir, key+".latents")
		if set, err := cl.LoadLatentSet(cachePath); err == nil {
			verbose("loaded cached latents: %s", cachePath)
			return set, nil
		}
	}

	// 1–2. Pretrained backbone (cached independently of the dataset: both
	// benchmarks at a scale share one backbone, like sharing one ImageNet
	// checkpoint).
	pm, err := pretrainedBackbone(sc, cacheDir, verbose)
	if err != nil {
		return nil, err
	}

	// 3. Deployment benchmark.
	ds, err := data.Generate(dcfg)
	if err != nil {
		return nil, fmt.Errorf("exp: %s data: %w", datasetName, err)
	}
	mCfg := sc.Model
	mCfg.NumClasses = dcfg.NumClasses
	mCfg.Seed = sc.Model.Seed + 1
	m, err := mobilenet.New(mCfg)
	if err != nil {
		return nil, fmt.Errorf("exp: deployment model: %w", err)
	}
	if err := m.CopyFeaturesFrom(pm); err != nil {
		return nil, fmt.Errorf("exp: transfer features: %w", err)
	}

	// 4. Extraction.
	verbose("extracting latents for %d train + %d test frames...", ds.NumTrain(), ds.NumTest())
	var set *cl.LatentSet
	if opts.Int8Backbone {
		verbose("backbone convolutions quantised to int8 (per-channel weights, per-tensor activations)")
		set, err = cl.NewLatentSetInt8(m, ds)
	} else {
		set, err = cl.NewLatentSet(m, ds)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: extract: %w", err)
	}
	if cachePath != "" {
		if err := cl.SaveLatentSet(cachePath, set); err != nil {
			verbose("warning: could not cache latents: %v", err)
		} else {
			verbose("cached latents: %s", cachePath)
		}
	}
	return set, nil
}

// pretrainedBackbone builds (or loads from cache) the scale's frozen
// backbone: the full synthetic-pretraining phase that substitutes ImageNet.
func pretrainedBackbone(sc Scale, cacheDir string, verbose func(string, ...any)) (*mobilenet.Model, error) {
	cachePath := ""
	if cacheDir != "" {
		cachePath = filepath.Join(cacheDir, backboneKey(sc)+".model")
		if pm, err := mobilenet.Load(cachePath); err == nil {
			verbose("loaded cached backbone: %s", cachePath)
			return pm, nil
		}
	}
	// Pretraining pool: disjoint classes, its own domains.
	pcfg := data.Config{
		Name:       "pretrain",
		NumClasses: sc.PretrainClasses,
		NumDomains: 5, TestDomains: []int{4},
		Resolution:               sc.Model.Resolution,
		SessionsPerClassDomain:   sc.PretrainSessions,
		FramesPerSession:         sc.PretrainFrames,
		TestFramesPerClassDomain: 1,
		Severity:                 1.0,
		Seed:                     999,
	}
	pds, err := data.Generate(pcfg)
	if err != nil {
		return nil, fmt.Errorf("exp: pretrain data: %w", err)
	}
	verbose("pretraining backbone on %d frames (%d classes)...", pds.NumTrain(), sc.PretrainClasses)

	pmCfg := sc.Model
	pmCfg.NumClasses = sc.PretrainClasses
	pm, err := mobilenet.New(pmCfg)
	if err != nil {
		return nil, fmt.Errorf("exp: pretrain model: %w", err)
	}
	imgs := make([]*tensor.Tensor, pds.NumTrain())
	labels := make([]int, pds.NumTrain())
	for _, s := range pds.Train {
		imgs[s.ID] = s.Image
		labels[s.ID] = s.Label
	}
	loss, err := pm.Pretrain(imgs, labels, mobilenet.PretrainConfig{
		Epochs: sc.PretrainEpochs, LR: sc.PretrainLR, Momentum: sc.PretrainMomentum,
		BatchSize: 8, Seed: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: pretrain: %w", err)
	}
	verbose("pretraining done (final loss %.3f)", loss)
	if cachePath != "" {
		if err := pm.Save(cachePath); err != nil {
			verbose("warning: could not cache backbone: %v", err)
		} else {
			verbose("cached backbone: %s", cachePath)
		}
	}
	return pm, nil
}

// backboneKey hashes everything that affects the pretrained backbone.
func backboneKey(sc Scale) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("backbone-v1|%+v|%d|%d|%d|%d|%g|%g",
		sc.Model, sc.PretrainClasses, sc.PretrainSessions, sc.PretrainFrames,
		sc.PretrainEpochs, sc.PretrainLR, sc.PretrainMomentum)))
	return "backbone-" + sc.Name + "-" + hex.EncodeToString(h[:8])
}

// cacheKey hashes everything that affects the latents.
func cacheKey(datasetName string, sc Scale) string {
	dcfg, _ := sc.DatasetConfig(datasetName)
	h := sha256.Sum256([]byte(fmt.Sprintf("v3|%s|%+v|%+v|%d|%d|%d|%d|%g|%g",
		datasetName, sc.Model, dcfg,
		sc.PretrainClasses, sc.PretrainSessions, sc.PretrainFrames,
		sc.PretrainEpochs, sc.PretrainLR, sc.PretrainMomentum)))
	return datasetName + "-" + sc.Name + "-" + hex.EncodeToString(h[:8])
}

// DefaultCacheDir returns a per-user cache location.
func DefaultCacheDir() string {
	return filepath.Join(os.TempDir(), "chameleon-cache")
}
