package exp

import (
	"fmt"

	"chameleon/internal/baselines"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/memcost"
	"chameleon/internal/mobilenet"
)

// MethodSpec names a method instance for a table row: the method family plus
// its buffer sizing.
type MethodSpec struct {
	// Name is the method family ("chameleon", "er", ...), matching
	// memcost.Method identifiers.
	Name string
	// Buffer is the replay-buffer size in samples (long-term size for
	// Chameleon; 0 for bufferless methods).
	Buffer int
	// ST is Chameleon's short-term size (0 elsewhere).
	ST int
	// ReplayInt8 stores the method's replay payloads as int8 latents with a
	// symmetric per-tensor scale. Bufferless methods ignore it.
	ReplayInt8 bool
}

// Label renders "er-200"-style row labels ("er-200-int8" when quantized).
func (m MethodSpec) Label() string {
	suffix := ""
	if m.ReplayInt8 {
		suffix = "-int8"
	}
	if m.Buffer <= 0 {
		return m.Name + suffix
	}
	if m.Name == "chameleon" {
		return fmt.Sprintf("chameleon-%d+%d%s", m.ST, m.Buffer, suffix)
	}
	return fmt.Sprintf("%s-%d%s", m.Name, m.Buffer, suffix)
}

// Methods lists the method families NewLearner accepts, in Table I order. It
// is the canonical spelling set for -method flags (internal/cli validates
// against it), so the flag surface and the constructor switch cannot drift.
func Methods() []string {
	return []string{"joint", "finetune", "ewcpp", "lwf", "slda", "gss", "er", "der", "latent", "chameleon"}
}

// ValidMethod reports whether name is a known method family.
func ValidMethod(name string) bool {
	for _, m := range Methods() {
		if m == name {
			return true
		}
	}
	return false
}

// NewLearner instantiates the method over a fresh head for one run.
func NewLearner(spec MethodSpec, set *cl.LatentSet, sc Scale, seed int64) (cl.Learner, error) {
	return NewLearnerMetered(spec, set, sc, seed, nil)
}

// NewLearnerMetered is NewLearner with an optional traffic meter wired into
// the method's replay buffers (nil disables metering).
func NewLearnerMetered(spec MethodSpec, set *cl.LatentSet, sc Scale, seed int64, meter *cl.TrafficMeter) (cl.Learner, error) {
	if !ValidMethod(spec.Name) {
		return nil, fmt.Errorf("exp: unknown method %q", spec.Name)
	}
	return NewLearnerOn(spec, set.Backbone, set.Dataset.Cfg.NumClasses, sc, seed, meter)
}

// NewLearnerOn instantiates the method over a bare backbone — the variant
// for callers without a benchmark dataset, such as chameleon-serve's
// synthetic mode. classes is the label-space width (SLDA sizes its
// statistics with it; the head's width comes from the backbone config).
func NewLearnerOn(spec MethodSpec, backbone *mobilenet.Model, classes int, sc Scale, seed int64, meter *cl.TrafficMeter) (cl.Learner, error) {
	hc := cl.HeadConfig{LR: sc.HeadLR, Momentum: sc.HeadMomentum, Seed: seed}
	bc := baselines.Config{BufferSize: spec.Buffer, ReplaySize: 10, ReplayInt8: spec.ReplayInt8, Meter: meter, Seed: seed}
	switch spec.Name {
	case "finetune":
		return baselines.NewFinetune(cl.NewHead(backbone, hc)), nil
	case "joint":
		jc := hc
		jc.LR = sc.JointLR
		cfg := bc
		cfg.Epochs = sc.JointEpochs
		return baselines.NewJoint(cl.NewHead(backbone, jc), cfg), nil
	case "ewcpp":
		return baselines.NewEWCPP(cl.NewHead(backbone, hc), bc), nil
	case "lwf":
		return baselines.NewLwF(cl.NewHead(backbone, hc), bc), nil
	case "slda":
		return baselines.NewSLDA(backbone.LatentShape[0], classes, bc), nil
	case "gss":
		return baselines.NewGSS(cl.NewHead(backbone, hc), bc), nil
	case "er":
		return baselines.NewER(cl.NewHead(backbone, hc), bc), nil
	case "der":
		return baselines.NewDER(cl.NewHead(backbone, hc), bc), nil
	case "latent":
		return baselines.NewLatentReplay(cl.NewHead(backbone, hc), bc), nil
	case "chameleon":
		return core.New(cl.NewHead(backbone, hc), core.Config{
			STCap: spec.ST, LTCap: spec.Buffer,
			AccessRate: sc.AccessRate, PromoteEvery: sc.PromoteEvery, LTSampleSize: 10,
			Window: sc.Window, ReplayInt8: spec.ReplayInt8, Meter: meter, Seed: seed,
		}), nil
	default:
		return nil, fmt.Errorf("exp: unknown method %q", spec.Name)
	}
}

// NewRef64Learner instantiates the float64 reference tier: a finetune head
// widened to double precision (cl.Ref64). Only the finetune family is
// supported — the reference tier exists to bound fp32 rounding error in the
// shared train-step kernels, and one method suffices for that.
func NewRef64Learner(spec MethodSpec, set *cl.LatentSet, sc Scale, seed int64) (cl.Learner, error) {
	if spec.Name != "finetune" {
		return nil, fmt.Errorf("exp: precision fp64 supports -method finetune only, got %q", spec.Name)
	}
	hc := cl.HeadConfig{LR: sc.HeadLR, Momentum: sc.HeadMomentum, Seed: seed}
	return cl.NewRef64(cl.NewHead(set.Backbone, hc))
}

// MemoryMB prices a spec's replay overhead at paper scale (the Table I
// convention: the MB column always refers to the paper-scale backbone). The
// latent dtype is derived from the spec that actually constructs the stores —
// a quantized spec prices int8 bytes — rather than from a caller-declared
// dtype that could drift from what the learner persists.
func MemoryMB(spec MethodSpec) (float64, error) {
	m := memcost.PaperModel()
	if spec.ReplayInt8 {
		m.LatentDtype = memcost.DtypeInt8
	}
	b, err := m.Overhead(memcost.Method(spec.Name), spec.Buffer, spec.ST)
	if err != nil {
		return 0, err
	}
	return memcost.MB(b), nil
}

// Table1Specs enumerates Table I's rows for a scale's buffer sweep.
func Table1Specs(sc Scale) []MethodSpec {
	specs := []MethodSpec{
		{Name: "joint"},
		{Name: "finetune"},
		{Name: "ewcpp"},
		{Name: "lwf"},
		{Name: "slda"},
	}
	for _, name := range []string{"gss", "er", "der", "latent"} {
		for _, b := range sc.BufferSizes {
			specs = append(specs, MethodSpec{Name: name, Buffer: b})
		}
	}
	for _, b := range sc.BufferSizes {
		specs = append(specs, MethodSpec{Name: "chameleon", Buffer: b, ST: sc.ChameleonST})
	}
	return specs
}

// Fig2Specs enumerates Fig. 2's series: the replay methods swept over buffer
// sizes plus the finetune floor.
func Fig2Specs(sc Scale) []MethodSpec {
	specs := []MethodSpec{{Name: "finetune"}}
	for _, name := range []string{"gss", "er", "der", "latent"} {
		for _, b := range sc.BufferSizes {
			specs = append(specs, MethodSpec{Name: name, Buffer: b})
		}
	}
	for _, b := range sc.BufferSizes {
		specs = append(specs, MethodSpec{Name: "chameleon", Buffer: b, ST: sc.ChameleonST})
	}
	return specs
}
