// Package quant implements the reduced-precision datatypes the paper deploys
// with: IEEE-754 half precision (the ZCU102 accelerator computes in fp16) and
// block floating point (the EdgeTPU-style accelerator computes forward and
// backward passes in BFP). The encoders are used to quantise replay payloads
// and to measure the numeric error the deployment datatypes introduce, and
// the byte counts feed the memory accounting.
package quant

import (
	"fmt"
	"math"

	"chameleon/internal/tensor"
)

// Float16FromFloat32 converts a float32 to IEEE-754 binary16 (round to
// nearest even), returning the 16-bit pattern.
func Float16FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf / NaN
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp > 15: // overflow -> Inf
		return sign | 0x7C00
	case exp >= -14: // normal
		// Round mantissa from 23 to 10 bits (round half to even).
		m := mant >> 13
		round := mant & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			m++
			if m == 0x400 { // mantissa overflow bumps the exponent
				m = 0
				exp++
				if exp > 15 {
					return sign | 0x7C00
				}
			}
		}
		return sign | uint16(exp+15)<<10 | uint16(m)
	case exp >= -24: // subnormal
		// The 24-bit significand (implicit 1 restored) is shifted until the
		// value is a multiple of 2^-24, the subnormal ulp: −exp−1 bits fall
		// off (14 for the largest subnormals, 23 for the smallest), rounded
		// half to even. A carry out of the top yields m == 0x400, which is
		// exactly the smallest normal's bit pattern — no special case needed.
		shift := uint32(-exp - 1)
		full := mant | 0x800000
		m := full >> shift
		round := full & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if round > half || (round == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	case exp == -25:
		// Halfway below the smallest subnormal: 2^-25 exactly ties to even
		// (zero); anything above it rounds up to the smallest subnormal.
		if mant != 0 {
			return sign | 1
		}
		return sign
	default: // underflow -> zero
		return sign
	}
}

// Float32FromFloat16 converts a binary16 bit pattern back to float32.
func Float32FromFloat16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return float32(math.NaN())
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// RoundTripFP16 quantises a tensor through fp16 and back, in place.
func RoundTripFP16(t *tensor.Tensor) {
	for i, v := range t.Data() {
		t.Data()[i] = Float32FromFloat16(Float16FromFloat32(v))
	}
}

// BFPConfig describes a block-floating-point format: a shared exponent per
// block of BlockSize values with MantissaBits two's-complement mantissa bits
// each (uSystolic's byte-crawling formats are BFP with small mantissas).
type BFPConfig struct {
	BlockSize    int
	MantissaBits int
}

// DefaultBFP is an 8-bit-mantissa, 16-value-block format, the EdgeTPU-class
// configuration the Table II model assumes.
func DefaultBFP() BFPConfig { return BFPConfig{BlockSize: 16, MantissaBits: 8} }

// Validate checks the configuration.
func (c BFPConfig) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("quant: block size %d must be positive", c.BlockSize)
	}
	if c.MantissaBits < 2 || c.MantissaBits > 24 {
		return fmt.Errorf("quant: mantissa bits %d out of [2,24]", c.MantissaBits)
	}
	return nil
}

// BytesFor returns the encoded size of n values: one shared exponent byte
// per block plus MantissaBits per value (rounded up to whole bytes total).
func (c BFPConfig) BytesFor(n int) int64 {
	blocks := (n + c.BlockSize - 1) / c.BlockSize
	bits := int64(n)*int64(c.MantissaBits) + int64(blocks)*8
	return (bits + 7) / 8
}

// RoundTripBFP quantises a tensor through the BFP format and back, in
// place: each block shares the exponent of its largest magnitude, and
// mantissas are rounded to MantissaBits (symmetric, round to nearest).
func (c BFPConfig) RoundTripBFP(t *tensor.Tensor) error {
	if err := c.Validate(); err != nil {
		return err
	}
	data := t.Data()
	// Max representable mantissa magnitude: 2^(bits-1) − 1.
	maxMant := float64(int64(1)<<(c.MantissaBits-1) - 1)
	for start := 0; start < len(data); start += c.BlockSize {
		end := start + c.BlockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[start:end]
		var maxAbs float64
		for _, v := range block {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		// Shared scale: the block's values map into [−maxMant, maxMant].
		_, exp := math.Frexp(maxAbs)
		scale := math.Ldexp(1, exp) / (maxMant + 1)
		for i, v := range block {
			q := math.Round(float64(v) / scale)
			if q > maxMant {
				q = maxMant
			}
			if q < -maxMant {
				q = -maxMant
			}
			block[i] = float32(q * scale)
		}
	}
	return nil
}

// QuantError returns the relative L2 error ‖x−q(x)‖/‖x‖ introduced by a
// quantiser over a copy of t (t is not modified).
func QuantError(t *tensor.Tensor, quantise func(*tensor.Tensor)) float64 {
	q := t.Clone()
	quantise(q)
	diff := tensor.Sub(t, q)
	denom := t.Norm2()
	if denom == 0 {
		return 0
	}
	return diff.Norm2() / denom
}
