package quant

import (
	"math"
	"math/rand"
	"testing"

	"chameleon/internal/tensor"
)

// TestQuantizeInt8RoundTrip pins the symmetric scheme's error bound: each
// element lands within half a quantisation step of the original, zero maps
// to zero exactly, and the extremes use the full int8 range.
func TestQuantizeInt8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	data[7] = 0
	q := make([]int8, len(data))
	s := QuantizeInt8(q, data)
	if q[7] != 0 {
		t.Fatalf("zero quantised to %d, want 0", q[7])
	}
	maxAbs := MaxAbs32(data)
	if want := maxAbs / 127; math.Abs(float64(s-want)) > 1e-12 {
		t.Fatalf("scale %g, want maxAbs/127 = %g", s, want)
	}
	back := make([]float32, len(data))
	DequantizeInt8(back, q, s)
	half := s / 2 * 1.0001 // half a step, with float slack
	for i, v := range data {
		if d := float32(math.Abs(float64(back[i] - v))); d > half {
			t.Fatalf("element %d: |%g - %g| = %g exceeds half-step %g", i, back[i], v, d, half)
		}
	}
}

// TestQuantizeInt8AllZero pins the degenerate case: scale 1, all-zero codes.
func TestQuantizeInt8AllZero(t *testing.T) {
	q := make([]int8, 4)
	if s := QuantizeInt8(q, make([]float32, 4)); s != 1 {
		t.Fatalf("all-zero scale = %g, want 1", s)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatalf("all-zero input produced code %d", v)
		}
	}
}

// TestQuantizeInt8Rows pins per-row independence: scaling one row must not
// change another row's codes.
func TestQuantizeInt8Rows(t *testing.T) {
	const rows, cols = 3, 8
	data := make([]float32, rows*cols)
	rng := rand.New(rand.NewSource(2))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	q := make([]int8, len(data))
	scales := QuantizeInt8Rows(q, data, rows, cols)

	boosted := append([]float32(nil), data...)
	for j := 0; j < cols; j++ {
		boosted[2*cols+j] *= 100 // only row 2 changes
	}
	q2 := make([]int8, len(data))
	scales2 := QuantizeInt8Rows(q2, boosted, rows, cols)
	for r := 0; r < 2; r++ {
		if scales[r] != scales2[r] {
			t.Fatalf("row %d scale changed (%g -> %g) when only row 2 was scaled", r, scales[r], scales2[r])
		}
		for j := 0; j < cols; j++ {
			if q[r*cols+j] != q2[r*cols+j] {
				t.Fatalf("row %d code %d changed when only row 2 was scaled", r, j)
			}
		}
	}
	if want := scales[2] * 100; math.Abs(float64(scales2[2]-want))/float64(want) > 1e-5 {
		t.Fatalf("row 2 scale %g, want ~%g", scales2[2], want)
	}
}

// TestQuantizeUint8Affine pins the affine scheme: non-negative inputs keep
// full 8-bit resolution (error ≤ half a step of range/255), and a constant
// plane round-trips exactly.
func TestQuantizeUint8Affine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float32, 500)
	for i := range data {
		data[i] = float32(rng.Float64()) * 6 // post-ReLU6-like range
	}
	q := make([]uint8, len(data))
	s, z := QuantizeUint8Affine(q, data)
	half := s / 2 * 1.0001
	for i, v := range data {
		back := float32(int32(q[i])-z) * s
		if d := float32(math.Abs(float64(back - v))); d > half {
			t.Fatalf("element %d: |%g - %g| = %g exceeds half-step %g", i, back, v, d, half)
		}
	}

	c := make([]uint8, 3)
	s, z = QuantizeUint8Affine(c, []float32{1.5, 1.5, 1.5})
	for _, qc := range c {
		if got := float32(int32(qc)-z) * s; math.Abs(float64(got-1.5)) > 1e-6 {
			t.Fatalf("constant plane round-trip: %g, want 1.5", got)
		}
	}
}

// TestInt8GEMMZPMatchesReference checks the zero-point GEMM exactly against
// a naive (a-z) integer reference.
func TestInt8GEMMZPMatchesReference(t *testing.T) {
	const m, k, n = 4, 13, 7
	rng := rand.New(rand.NewSource(5))
	w := make([]int8, m*k)
	a := make([]uint8, k*n)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	for i := range a {
		a[i] = uint8(rng.Intn(256))
	}
	w[5] = 0
	const za = 131
	got := make([]int32, m*n)
	Int8GEMMZPInto(got, w, a, Int8RowSums(w, m, k), m, k, n, za)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want int32
			for p := 0; p < k; p++ {
				want += int32(w[i*k+p]) * (int32(a[p*n+j]) - za)
			}
			if got[i*n+j] != want {
				t.Fatalf("gemm[%d,%d] = %d, want %d", i, j, got[i*n+j], want)
			}
		}
	}
}

// TestInt8GEMMMatchesInteger checks the int32-accumulating GEMM exactly
// against a naive integer reference.
func TestInt8GEMMMatchesInteger(t *testing.T) {
	const m, k, n = 5, 17, 9
	rng := rand.New(rand.NewSource(3))
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b {
		b[i] = int8(rng.Intn(255) - 127)
	}
	a[3] = 0 // exercise the zero-skip path
	got := make([]int32, m*n)
	Int8GEMMInto(got, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want int32
			for p := 0; p < k; p++ {
				want += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			if got[i*n+j] != want {
				t.Fatalf("gemm[%d,%d] = %d, want %d", i, j, got[i*n+j], want)
			}
		}
	}
}

// TestRoundTripInt8Tensor pins the in-place measurement hook.
func TestRoundTripInt8Tensor(t *testing.T) {
	z := tensor.Full(1.5, 64)
	RoundTripInt8(z)
	if z.At(0) != 1.5 {
		t.Fatalf("constant tensor round-trip not exact: %g", z.At(0))
	}
}
