package quant

import (
	"math"
	"testing"

	"chameleon/internal/tensor"
)

// TestBFPSymmetricClamp is the regression pin for the asymmetric negative
// clamp: RoundTripBFP documents a symmetric grid (values map into
// [−maxMant, maxMant] steps of the shared scale), but the encoder used to
// clamp negatives to −maxMant−1, letting a block's most-negative value land
// one step outside the advertised range. With MantissaBits=2 (maxMant=1) and
// a block whose magnitude leader is −1.9, the shared scale is exactly 1.0, so
// the old code produced −2.0 where the symmetric grid ends at −1.0.
func TestBFPSymmetricClamp(t *testing.T) {
	cfg := BFPConfig{BlockSize: 16, MantissaBits: 2}
	x := tensor.New(16)
	x.Data()[0] = -1.9
	x.Data()[1] = 1.0
	if err := cfg.RoundTripBFP(x); err != nil {
		t.Fatal(err)
	}
	if got := x.Data()[0]; got != -1.0 {
		t.Errorf("most-negative value quantised to %g, want -1.0 (symmetric clamp)", got)
	}
	if got := x.Data()[1]; got != 1.0 {
		t.Errorf("positive grid point moved: got %g, want 1.0", got)
	}
}

// TestBFPRepresentableRange pins the min/max representable value per block
// for several formats: after a round trip every element must lie inside
// ±maxMant·scale, with scale derived from the block's magnitude leader the
// same way the encoder derives it. The mirrored blocks check the positive
// and negative extremes symmetrically.
func TestBFPRepresentableRange(t *testing.T) {
	for _, bits := range []int{2, 4, 8} {
		cfg := BFPConfig{BlockSize: 8, MantissaBits: bits}
		maxMant := float64(int64(1)<<(bits-1) - 1)
		for _, lead := range []float64{-3.7, 3.7, -0.11, 0.11} {
			x := tensor.New(8)
			for i := range x.Data() {
				x.Data()[i] = float32(lead) * float32(i+1) / 8
			}
			x.Data()[7] = float32(lead) // magnitude leader
			_, exp := math.Frexp(math.Abs(lead))
			scale := math.Ldexp(1, exp) / (maxMant + 1)
			limit := maxMant * scale
			if err := cfg.RoundTripBFP(x); err != nil {
				t.Fatal(err)
			}
			for i, v := range x.Data() {
				if math.Abs(float64(v)) > limit+1e-12 {
					t.Errorf("bits=%d lead=%g: element %d quantised to %g, outside ±%g",
						bits, lead, i, v, limit)
				}
			}
		}
	}
}
