package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chameleon/internal/tensor"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // max normal fp16
		{float32(math.Inf(1)), 0x7C00},  // +Inf
		{float32(math.Inf(-1)), 0xFC00}, // −Inf
		{5.9604645e-8, 0x0001},          // smallest subnormal
		{6.1035156e-5, 0x0400},          // smallest normal
	}
	for _, c := range cases {
		if got := Float16FromFloat32(c.f); got != c.bits {
			t.Errorf("Float16(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		back := Float32FromFloat16(c.bits)
		if back != c.f && !(math.IsInf(float64(c.f), 0) && math.IsInf(float64(back), 0)) {
			t.Errorf("Float32(%#04x) = %v, want %v", c.bits, back, c.f)
		}
	}
}

func TestFloat16OverflowAndNaN(t *testing.T) {
	if got := Float16FromFloat32(1e6); got != 0x7C00 {
		t.Errorf("overflow should give +Inf, got %#04x", got)
	}
	if got := Float16FromFloat32(-1e6); got != 0xFC00 {
		t.Errorf("overflow should give −Inf, got %#04x", got)
	}
	nan := Float16FromFloat32(float32(math.NaN()))
	if nan&0x7C00 != 0x7C00 || nan&0x3FF == 0 {
		t.Errorf("NaN encoding wrong: %#04x", nan)
	}
	if !math.IsNaN(float64(Float32FromFloat16(0x7E00))) {
		t.Error("NaN did not decode to NaN")
	}
	if got := Float16FromFloat32(1e-9); got != 0 {
		t.Errorf("underflow should give 0, got %#04x", got)
	}
}

func TestFloat16RoundTripAccuracyProperty(t *testing.T) {
	// For values in fp16's normal range, one round trip must be within
	// 2^-11 relative error (half-precision unit roundoff).
	f := func(raw uint16) bool {
		v := float32(raw)/256 - 100 // spread across ±[0,156]
		back := Float32FromFloat16(Float16FromFloat32(v))
		if v == 0 {
			return back == 0
		}
		return math.Abs(float64(back-v)) <= math.Abs(float64(v))/2048+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16Idempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 10, 256)
	RoundTripFP16(x)
	y := x.Clone()
	RoundTripFP16(y)
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("fp16 quantisation not idempotent")
		}
	}
}

func TestBFPValidate(t *testing.T) {
	if err := (BFPConfig{BlockSize: 0, MantissaBits: 8}).Validate(); err == nil {
		t.Error("zero block size accepted")
	}
	if err := (BFPConfig{BlockSize: 8, MantissaBits: 1}).Validate(); err == nil {
		t.Error("1-bit mantissa accepted")
	}
	if err := DefaultBFP().Validate(); err != nil {
		t.Error(err)
	}
}

func TestBFPBytesFor(t *testing.T) {
	c := BFPConfig{BlockSize: 16, MantissaBits: 8}
	// 32 values: 32 bytes mantissa + 2 exponent bytes.
	if got := c.BytesFor(32); got != 34 {
		t.Fatalf("BytesFor(32) = %d, want 34", got)
	}
	// BFP8 must be smaller than fp16 for the same payload.
	if c.BytesFor(8192) >= 2*8192 {
		t.Fatal("BFP8 should beat fp16 bytes")
	}
}

func TestBFPRoundTripErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandNormal(rng, 1, 1024)
	cfg := DefaultBFP()
	relErr := QuantError(x, func(q *tensor.Tensor) {
		if err := cfg.RoundTripBFP(q); err != nil {
			t.Fatal(err)
		}
	})
	// 8-bit mantissa with per-16 shared exponent: a few % relative error on
	// Gaussian data.
	if relErr > 0.05 {
		t.Fatalf("BFP8 relative error = %v, too high", relErr)
	}
	if relErr == 0 {
		t.Fatal("BFP quantisation was a no-op")
	}
	// Narrower mantissas must hurt more.
	coarse := BFPConfig{BlockSize: 16, MantissaBits: 4}
	coarseErr := QuantError(x, func(q *tensor.Tensor) { _ = coarse.RoundTripBFP(q) })
	if coarseErr <= relErr {
		t.Fatalf("4-bit error (%v) should exceed 8-bit error (%v)", coarseErr, relErr)
	}
}

func TestBFPZeroBlockStaysZero(t *testing.T) {
	x := tensor.New(32)
	if err := DefaultBFP().RoundTripBFP(x); err != nil {
		t.Fatal(err)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("zero block changed")
		}
	}
}

func TestFP16BeatsBFP4OnAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandNormal(rng, 1, 512)
	fp16Err := QuantError(x, RoundTripFP16)
	bfp4 := BFPConfig{BlockSize: 16, MantissaBits: 4}
	bfpErr := QuantError(x, func(q *tensor.Tensor) { _ = bfp4.RoundTripBFP(q) })
	if fp16Err >= bfpErr {
		t.Fatalf("fp16 err (%v) should be below BFP4 err (%v)", fp16Err, bfpErr)
	}
}
