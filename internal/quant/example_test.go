package quant_test

import (
	"fmt"

	"chameleon/internal/quant"
	"chameleon/internal/tensor"
)

// fp16 is the ZCU102 accelerator's datatype; the encoder round-trips values
// with half-precision accuracy.
func ExampleFloat16FromFloat32() {
	bits := quant.Float16FromFloat32(3.140625) // exactly representable
	fmt.Printf("%#04x -> %v\n", bits, quant.Float32FromFloat16(bits))
	// Output: 0x4248 -> 3.140625
}

// Block floating point (the EdgeTPU-class datatype) shrinks a paper-scale
// latent well below fp16 at bounded error.
func ExampleBFPConfig_BytesFor() {
	cfg := quant.DefaultBFP()
	latentScalars := 512 * 4 * 4
	fmt.Printf("fp32: %d KiB, fp16: %d KiB, BFP8: %d KiB\n",
		latentScalars*4/1024, latentScalars*2/1024, cfg.BytesFor(latentScalars)/1024)
	z := tensor.Full(1.5, latentScalars)
	_ = cfg.RoundTripBFP(z)
	fmt.Printf("round-trip of a constant block is exact: %v\n", z.At(0) == 1.5)
	// Output:
	// fp32: 32 KiB, fp16: 16 KiB, BFP8: 8 KiB
	// round-trip of a constant block is exact: true
}
