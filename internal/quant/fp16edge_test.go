package quant

import (
	"math"
	"testing"
)

// TestFP16ExhaustiveRoundTrip pins encode∘decode as the identity on every
// representable half-precision pattern: for all 65536 bit patterns except
// NaNs (which canonicalise), Float16FromFloat32(Float32FromFloat16(h)) == h.
// This is the exhaustive guarantee the sampled accuracy tests cannot give —
// it is what caught the subnormal encoder discarding ten bits too many
// (encode(2^-15) returned 0x0000 instead of 0x0200).
func TestFP16ExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := uint16(i)
		exp := h >> 10 & 0x1F
		mant := h & 0x3FF
		if exp == 0x1F && mant != 0 {
			continue // NaN: payload is not preserved, only NaN-ness
		}
		f := Float32FromFloat16(h)
		if got := Float16FromFloat32(f); got != h {
			t.Fatalf("round trip 0x%04X -> %g -> 0x%04X", h, f, got)
		}
	}
}

// TestFP16NaNStaysNaN pins the one exception to the identity: every NaN
// pattern must come back as some NaN, never a finite value or an infinity.
func TestFP16NaNStaysNaN(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := uint16(i)
		if h>>10&0x1F != 0x1F || h&0x3FF == 0 {
			continue
		}
		f := Float32FromFloat16(h)
		if !math.IsNaN(float64(f)) {
			t.Fatalf("NaN pattern 0x%04X decoded to non-NaN %g", h, f)
		}
		got := Float16FromFloat32(f)
		if got>>10&0x1F != 0x1F || got&0x3FF == 0 {
			t.Fatalf("NaN pattern 0x%04X re-encoded to non-NaN 0x%04X", h, got)
		}
	}
}

// TestFP16SubnormalBoundaries drives the directed edge cases at the bottom of
// the half-precision range, where the 24-bit float32 significand is rounded
// down to a subnormal and a mantissa carry can spill into the smallest
// normal. Values are constructed with Ldexp so each case states its exponent
// arithmetic explicitly.
func TestFP16SubnormalBoundaries(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want uint16
	}{
		// Exactly representable subnormals encode without rounding.
		{"smallest subnormal", math.Ldexp(1, -24), 0x0001},
		{"largest subnormal", math.Ldexp(1023, -24), 0x03FF},
		{"power-of-two subnormal", math.Ldexp(1, -15), 0x0200},
		// Rounding carry: 1023.75 ulps rounds up to 1024 ulps == 2^-14, the
		// smallest normal. The carry must cross the subnormal/normal boundary.
		{"carry into smallest normal", math.Ldexp(1023.75, -24), 0x0400},
		{"just below carry", math.Ldexp(1023.25, -24), 0x03FF},
		// Ties round to even mantissa.
		{"tie rounds to even (down)", math.Ldexp(2.5, -24), 0x0002},
		{"tie rounds to even (up)", math.Ldexp(3.5, -24), 0x0004},
		// The underflow threshold: 2^-25 is exactly half an ulp and ties to
		// zero; anything strictly above it rounds up to the smallest
		// subnormal, anything at or below 2^-26 flushes to zero.
		{"half ulp ties to zero", math.Ldexp(1, -25), 0x0000},
		{"just above half ulp", math.Ldexp(1.5, -25), 0x0001},
		{"below half ulp", math.Ldexp(1, -26), 0x0000},
	}
	for _, tc := range cases {
		if got := Float16FromFloat32(float32(tc.in)); got != tc.want {
			t.Errorf("%s: Float16FromFloat32(%g) = 0x%04X, want 0x%04X", tc.name, tc.in, got, tc.want)
		}
		neg := tc.want | 0x8000
		if got := Float16FromFloat32(float32(-tc.in)); got != neg {
			t.Errorf("%s (negative): Float16FromFloat32(%g) = 0x%04X, want 0x%04X", tc.name, -tc.in, got, neg)
		}
	}
}
