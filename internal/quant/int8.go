package quant

import "chameleon/internal/tensor"

// Symmetric int8 quantisation and the int32-accumulating GEMM beneath the
// optional integer backbone-extraction path (-backbone-int8). The scheme is
// the standard edge-inference one: weights are quantised per output channel
// (each row of the im2col weight matrix gets its own scale, which costs
// nothing at dequantisation time and roughly halves the error of a single
// per-tensor scale), activations per tensor, and the product is accumulated
// in int32 — 128×128 with a depth in the tens of thousands stays far inside
// int32 range (127·127·k < 2³¹ for k up to ~130k).

// MaxAbs32 returns the largest absolute value in data (0 for empty input).
func MaxAbs32(data []float32) float32 {
	var m float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// QuantizeInt8 quantises data symmetrically into q (which must be the same
// length) and returns the scale s such that float32(q[i])*s ≈ data[i].
// q[i] = round(data[i]/s) with s = maxAbs/127, so the full int8 range is
// used and zero maps to zero exactly (no zero-point). An all-zero input
// returns scale 1.
func QuantizeInt8(q []int8, data []float32) float32 {
	m := MaxAbs32(data)
	if m == 0 {
		for i := range q {
			q[i] = 0
		}
		return 1
	}
	s := m / 127
	inv := 127 / m
	for i, v := range data {
		q[i] = roundInt8(v * inv)
	}
	return s
}

// roundInt8 rounds to nearest (half away from zero) and clamps to int8.
func roundInt8(v float32) int8 {
	if v >= 0 {
		v += 0.5
		if v > 127 {
			return 127
		}
		return int8(v)
	}
	v -= 0.5
	if v < -128 {
		return -128
	}
	return int8(v)
}

// QuantizeInt8Rows quantises each row of a [rows, cols] matrix independently
// (per-output-channel weight quantisation), writing into q and returning one
// scale per row.
func QuantizeInt8Rows(q []int8, data []float32, rows, cols int) []float32 {
	scales := make([]float32, rows)
	for r := 0; r < rows; r++ {
		scales[r] = QuantizeInt8(q[r*cols:(r+1)*cols], data[r*cols:(r+1)*cols])
	}
	return scales
}

// DequantizeInt8 writes float32(q[i])*scale into dst.
func DequantizeInt8(dst []float32, q []int8, scale float32) {
	for i, v := range q {
		dst[i] = float32(v) * scale
	}
}

// QuantizeUint8Affine quantises data with the affine uint8 scheme
// (q = round(v/s) + z), returning the scale s and zero point z such that
// (int32(q[i])-z)·s ≈ data[i]. Activations feeding a conv are typically
// post-ReLU and non-negative, where the affine scheme keeps the full 8-bit
// resolution the symmetric scheme would halve. A constant input round-trips
// exactly.
func QuantizeUint8Affine(q []uint8, data []float32) (scale float32, zero int32) {
	if len(data) == 0 {
		return 1, 0
	}
	min, max := data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	switch {
	case min == max && min == 0:
		for i := range q {
			q[i] = 0
		}
		return 1, 0
	case min == max:
		// Degenerate constant plane: map it to one exact code.
		scale = absf32(min) / 255
		zero = clampU8(int32(roundf32(-min / scale)))
	default:
		scale = (max - min) / 255
		zero = clampU8(int32(roundf32(-min / scale)))
	}
	inv := 1 / scale
	for i, v := range data {
		q[i] = uint8(clampU8(int32(roundf32(v*inv)) + zero))
	}
	return scale, zero
}

func absf32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func roundf32(v float32) float32 {
	if v >= 0 {
		return float32(int32(v + 0.5))
	}
	return float32(int32(v - 0.5))
}

func clampU8(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Int8GEMMZPInto computes dst[m,n] = w[m,k] @ (a[k,n] - za) with int32
// accumulation, where w is symmetric int8 (no zero point) and a is affine
// uint8 with zero point za. The zero-point term factors out of the inner
// loop: Σ_p w·(a-za) = Σ_p w·a − za·Σ_p w, so the caller passes the
// precomputed per-row weight sums and the kernel stays a plain integer GEMM
// with one scalar correction per output.
func Int8GEMMZPInto(dst []int32, w []int8, a []uint8, wRowSum []int32, m, k, n int, za int32) {
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		base := -za * wRowSum[i]
		for j := range di {
			di[j] = base
		}
		wi := w[i*k : (i+1)*k]
		for p, wv := range wi {
			if wv == 0 {
				continue
			}
			w32 := int32(wv)
			ap := a[p*n : (p+1)*n]
			for j, av := range ap {
				di[j] += w32 * int32(av)
			}
		}
	}
}

// Int8RowSums returns the per-row sums of a [rows, cols] int8 matrix (the
// zero-point correction term of Int8GEMMZPInto).
func Int8RowSums(w []int8, rows, cols int) []int32 {
	sums := make([]int32, rows)
	for r := 0; r < rows; r++ {
		var s int32
		for _, v := range w[r*cols : (r+1)*cols] {
			s += int32(v)
		}
		sums[r] = s
	}
	return sums
}

// Int8GEMMInto computes dst[m,n] = a[m,k] @ b[k,n] with int32 accumulation,
// overwriting dst. The loop is the same ikj order as the float GEMM: the
// inner loop streams contiguously over one row of b and one row of dst, so
// the integer path keeps the float path's cache behaviour.
func Int8GEMMInto(dst []int32, a, b []int8, m, k, n int) {
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			a32 := int32(av)
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += a32 * int32(bv)
			}
		}
	}
}

// RoundTripInt8 quantises t symmetrically to int8 and back in place — the
// measurement hook for the error the integer path introduces, mirroring
// RoundTripFP16.
func RoundTripInt8(t *tensor.Tensor) {
	d := t.Data()
	q := make([]int8, len(d))
	s := QuantizeInt8(q, d)
	DequantizeInt8(d, q, s)
}
