package cl

import (
	"math"
	"testing"

	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// batchHeadLearner adapts a bare Head to Learner + BatchPredictor for
// equivalence tests (the baselines package provides the real adapters;
// cl_test.go's headLearner stays batch-free to cover the fallback).
type batchHeadLearner struct{ h *Head }

func (hl batchHeadLearner) Name() string                              { return "head" }
func (hl batchHeadLearner) Observe(LatentBatch)                       {}
func (hl batchHeadLearner) Predict(z *tensor.Tensor) int              { return hl.h.Predict(z) }
func (hl batchHeadLearner) PredictBatch(zs []*tensor.Tensor, o []int) { hl.h.PredictBatch(zs, o) }

// TestPredictIntoMatchesSerialAcrossWorkers is the batched-evaluation
// equivalence contract: PredictInto must agree with a per-sample Predict
// loop, and with itself at every worker count.
func TestPredictIntoMatchesSerialAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{Seed: 9})
	h.TrainCEOn(set.Train[:16])
	zs := make([]*tensor.Tensor, len(set.Test))
	for i, s := range set.Test {
		zs[i] = s.Z
	}
	var ref []int
	for _, w := range []int{1, 8} {
		parallel.SetWorkers(w)
		serial := make([]int, len(zs))
		for i, z := range zs {
			serial[i] = h.Predict(z)
		}
		batched := make([]int, len(zs))
		if err := PredictInto(batchHeadLearner{h}, zs, batched); err != nil {
			t.Fatal(err)
		}
		for i := range zs {
			if serial[i] != batched[i] {
				t.Fatalf("workers=%d: sample %d serial=%d batched=%d", w, i, serial[i], batched[i])
			}
		}
		if ref == nil {
			ref = batched
			continue
		}
		for i := range zs {
			if batched[i] != ref[i] {
				t.Fatalf("sample %d differs across worker counts: %d vs %d", i, batched[i], ref[i])
			}
		}
	}
}

// TestPredictBatchStableAcrossResume checks that batched predictions survive
// a snapshot/restore round trip bit-for-bit even after intervening training —
// the property checkpointed grid runs rely on.
func TestPredictBatchStableAcrossResume(t *testing.T) {
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{Seed: 13})
	h.TrainCEOn(set.Train[:16])
	zs := make([]*tensor.Tensor, len(set.Test))
	for i, s := range set.Test {
		zs[i] = s.Z
	}
	snap := h.Snapshot()
	want := make([]int, len(zs))
	h.PredictBatch(zs, want)

	h.TrainCEOn(set.Train[16:32]) // drift the weights
	h.Restore(snap)
	got := make([]int, len(zs))
	h.PredictBatch(zs, got)
	serial := make([]int, len(zs))
	for i, z := range zs {
		serial[i] = h.Predict(z)
	}
	for i := range zs {
		if got[i] != want[i] || serial[i] != want[i] {
			t.Fatalf("sample %d: pre-resume=%d batched=%d serial=%d", i, want[i], got[i], serial[i])
		}
	}
}

// TestPredictIntoFallback covers the legacy adapter: a learner without
// PredictBatch goes through the serial loop.
func TestPredictIntoFallback(t *testing.T) {
	zs := []*tensor.Tensor{tensor.New(2), tensor.New(2), tensor.New(2)}
	out := make([]int, 3)
	if err := PredictInto(constLearner{class: 2}, zs, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2 {
			t.Fatalf("out[%d] = %d, want 2", i, v)
		}
	}
}

func TestPredictIntoErrorOnShortOut(t *testing.T) {
	if err := PredictInto(constLearner{}, make([]*tensor.Tensor, 2), make([]int, 1)); err == nil {
		t.Fatal("expected error for short out slice")
	}
}

// TestEvaluatePerClassGapNaN pins the one-pass Evaluate's per-class
// semantics: classes below the max label with no test support report NaN,
// supported classes report their hit rate, and PerClass spans 0..maxLabel.
func TestEvaluatePerClassGapNaN(t *testing.T) {
	test := []LatentSample{
		{Z: tensor.New(2), Label: 0},
		{Z: tensor.New(2), Label: 0},
		{Z: tensor.New(2), Label: 2},
	}
	res := Evaluate(constLearner{class: 0}, test)
	if len(res.PerClass) != 3 {
		t.Fatalf("PerClass = %v, want length 3", res.PerClass)
	}
	if res.PerClass[0] != 1 {
		t.Fatalf("PerClass[0] = %v, want 1", res.PerClass[0])
	}
	if !math.IsNaN(res.PerClass[1]) {
		t.Fatalf("PerClass[1] = %v, want NaN (no test support)", res.PerClass[1])
	}
	if res.PerClass[2] != 0 {
		t.Fatalf("PerClass[2] = %v, want 0", res.PerClass[2])
	}
	if math.Abs(res.AccAll-2.0/3.0) > 1e-12 {
		t.Fatalf("AccAll = %v", res.AccAll)
	}
}
