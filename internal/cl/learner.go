// Package cl defines the shared vocabulary of the continual-learning
// experiments: the Learner interface every method implements, latent
// extraction and caching over the frozen backbone, the online single-pass
// trainer, evaluation metrics (Acc_all, per-class and preferred-class
// accuracy), and a multi-seed runner reporting mean ± std as the paper does.
package cl

import (
	"fmt"

	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// LatentSample is one frame after the frozen feature extractor f(·): the
// latent activation plus its label and provenance. All continual learners in
// this repository consume latents — exactly the Latent Replay setting the
// paper builds on (methods that conceptually store raw images, such as ER,
// still learn on latents because f is frozen; only their *memory accounting*
// differs, see internal/memcost).
type LatentSample struct {
	// Z is the latent activation, shape = backbone.LatentShape.
	Z *tensor.Tensor
	// Label is the class index.
	Label int
	// Domain is the acquisition condition of the source frame.
	Domain int
	// ID is the source sample's pool index.
	ID int
}

// LatentBatch is one online step.
type LatentBatch struct {
	Samples []LatentSample
	Index   int
	Domain  int
}

// Learner is an online continual learner. Observe is called once per
// incoming mini-batch in stream order (single pass); Predict classifies a
// latent. Implementations must be deterministic given their construction
// seed.
type Learner interface {
	// Name identifies the method ("chameleon", "er", ...).
	Name() string
	// Observe consumes one incoming mini-batch.
	Observe(b LatentBatch)
	// Predict returns the predicted class index of a latent.
	Predict(z *tensor.Tensor) int
}

// Finisher is an optional Learner extension invoked after the stream ends
// (e.g. the JOINT upper bound runs its offline epochs there).
type Finisher interface {
	Finish()
}

// BatchPredictor is an optional Learner extension: classify a whole slice of
// latents in one call, writing class indices into out[:len(zs)]. The batched
// path must be bit-identical to calling Predict per sample; it exists so
// evaluation can run as a handful of matrix kernels (which shard internally
// over internal/parallel) instead of thousands of tiny forward passes.
type BatchPredictor interface {
	PredictBatch(zs []*tensor.Tensor, out []int)
}

// Capabilities is the one-stop view of a Learner's optional extensions. Each
// field is nil when the learner does not implement the extension, so call
// sites branch on a field instead of repeating interface type asserts. Caps
// is the only sanctioned way to discover optional behaviour; new extensions
// get a field here rather than a fourth scattered assert.
type Capabilities struct {
	// Finisher runs the learner's post-stream hook (nil: nothing to finish).
	Finisher Finisher
	// BatchPredictor classifies latent slices in one call (nil: serial
	// Predict only).
	BatchPredictor BatchPredictor
	// Snapshotter saves/restores complete mutable state for crash-safe and
	// drain-to-checkpoint runs (nil: the learner cannot be checkpointed).
	Snapshotter Snapshotter
}

// Caps reports which optional extensions l implements.
func Caps(l Learner) Capabilities {
	var c Capabilities
	c.Finisher, _ = l.(Finisher)
	c.BatchPredictor, _ = l.(BatchPredictor)
	c.Snapshotter, _ = l.(Snapshotter)
	return c
}

// PredictInto classifies every latent in zs into out[:len(zs)], dispatching
// to the learner's batched implementation when it has one. The serial loop is
// the default adapter for legacy learners (and test doubles), which only need
// to implement Predict. A too-short out is reported as an error (serve-path
// entry points feed client-controlled sizes here, so the length check must
// not panic).
func PredictInto(l Learner, zs []*tensor.Tensor, out []int) error {
	if len(out) < len(zs) {
		return fmt.Errorf("cl: PredictInto out length %d, want at least %d", len(out), len(zs))
	}
	if bp := Caps(l).BatchPredictor; bp != nil {
		bp.PredictBatch(zs, out)
		return nil
	}
	for i, z := range zs {
		out[i] = l.Predict(z)
	}
	return nil
}

// LatentSet caches the frozen-backbone features of a dataset so that every
// method and seed shares one extraction pass (f is identical for all).
type LatentSet struct {
	Backbone *mobilenet.Model
	Dataset  *data.Dataset
	// Train and Test are latents indexed by data.Sample.ID.
	Train []LatentSample
	Test  []LatentSample
}

// NewLatentSet extracts latents for the full train and test pools.
func NewLatentSet(m *mobilenet.Model, ds *data.Dataset) (*LatentSet, error) {
	if m.Cfg.Resolution != ds.Cfg.Resolution {
		return nil, fmt.Errorf("cl: backbone resolution %d != dataset resolution %d", m.Cfg.Resolution, ds.Cfg.Resolution)
	}
	if m.Cfg.NumClasses < ds.Cfg.NumClasses {
		return nil, fmt.Errorf("cl: backbone has %d classes, dataset needs %d", m.Cfg.NumClasses, ds.Cfg.NumClasses)
	}
	ls := &LatentSet{Backbone: m, Dataset: ds}
	ls.Train = extractPool(m, ds.Train)
	ls.Test = extractPool(m, ds.Test)
	return ls, nil
}

// NewLatentSetInt8 is NewLatentSet with the backbone's im2col convolutions
// quantised to int8 (mobilenet.Int8Extractor): the latents carry the integer
// path's quantisation error, while Backbone keeps the full-precision model
// for head construction. Heads train on whatever latents the set holds, so
// downstream accuracy measures the deployment effect of integer extraction.
func NewLatentSetInt8(m *mobilenet.Model, ds *data.Dataset) (*LatentSet, error) {
	if m.Cfg.Resolution != ds.Cfg.Resolution {
		return nil, fmt.Errorf("cl: backbone resolution %d != dataset resolution %d", m.Cfg.Resolution, ds.Cfg.Resolution)
	}
	if m.Cfg.NumClasses < ds.Cfg.NumClasses {
		return nil, fmt.Errorf("cl: backbone has %d classes, dataset needs %d", m.Cfg.NumClasses, ds.Cfg.NumClasses)
	}
	e := m.NewInt8Extractor()
	ls := &LatentSet{Backbone: m, Dataset: ds}
	ls.Train = extractPoolInt8(e, ds.Train)
	ls.Test = extractPoolInt8(e, ds.Test)
	return ls, nil
}

// extractPoolInt8 is extractPool through the integer extractor; the same
// sharding argument applies (mutation-free forward, one output slot per
// sample), so results are worker-count independent.
func extractPoolInt8(e *mobilenet.Int8Extractor, pool []data.Sample) []LatentSample {
	out := make([]LatentSample, len(pool))
	parallel.For(len(pool), 1, func(lo, hi int) {
		for _, sm := range pool[lo:hi] {
			out[sm.ID] = LatentSample{Z: e.ExtractLatent(sm.Image), Label: sm.Label, Domain: sm.Domain, ID: sm.ID}
		}
	})
	return out
}

// extractPool runs the frozen extractor over a sample pool, sharding samples
// across the worker pool. The backbone is shared read-only: eval-mode Forward
// allocates all activations locally and caches nothing (see nn's Layer
// contract and TestConcurrentExtraction), and each sample writes only its own
// output slot, so any worker count produces bit-identical latents.
func extractPool(m *mobilenet.Model, pool []data.Sample) []LatentSample {
	out := make([]LatentSample, len(pool))
	parallel.For(len(pool), 1, func(lo, hi int) {
		for _, sm := range pool[lo:hi] {
			out[sm.ID] = LatentSample{Z: m.ExtractLatent(sm.Image), Label: sm.Label, Domain: sm.Domain, ID: sm.ID}
		}
	})
	return out
}

// LatentStream adapts a data.Stream to emit cached latents.
type LatentStream struct {
	inner *data.Stream
	set   *LatentSet
}

// Stream opens a latent stream over the cached set.
func (ls *LatentSet) Stream(seed int64, opt data.StreamOptions) *LatentStream {
	return &LatentStream{inner: ls.Dataset.Stream(seed, opt), set: ls}
}

// Next returns the next latent batch.
func (s *LatentStream) Next() (LatentBatch, bool) {
	b, ok := s.inner.Next()
	if !ok {
		return LatentBatch{}, false
	}
	out := LatentBatch{Index: b.Index, Domain: b.Domain, Samples: make([]LatentSample, len(b.Samples))}
	for i, sm := range b.Samples {
		out.Samples[i] = s.set.Train[sm.ID]
	}
	return out, true
}

// Total returns the number of samples the stream will emit.
func (s *LatentStream) Total() int { return s.inner.Total() }

// PreferredClasses exposes the underlying stream's current preference set.
func (s *LatentStream) PreferredClasses() []int { return s.inner.PreferredClasses() }
