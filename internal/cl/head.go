package cl

import (
	"fmt"
	"math/rand"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/mobilenet"
	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// Head wraps a freshly initialised trainable head g(·) with its optimizer and
// exposes the gradient-accumulation primitives the continual learners share.
// Every learner owns its own Head; the frozen extractor is shared via
// LatentSet.
type Head struct {
	Net *nn.Sequential
	Opt *nn.SGD
	// Classes is the logit width.
	Classes int
	// gradScratch is the reusable logit-gradient buffer for the batched
	// cross-entropy path; a Head belongs to exactly one learner (one run), so
	// reuse is race-free. softScratch additionally holds the softened teacher
	// distribution for distillation losses.
	gradScratch *tensor.Tensor
	softScratch *tensor.Tensor
	// ws is the head's private tensor pool, threaded through every layer and
	// the optimizer by NewHead. It makes the steady-state train step and eval
	// batch allocation-free; hand-built Heads (struct literals in tests) leave
	// it nil and simply fall back to allocating paths.
	ws *tensor.Workspace
	// params caches Net.Params() — the walk allocates, and ZeroGrad/Step run
	// once per online step.
	params []*nn.Param
	// BatchTrain selects the batched training path in TrainCEOn: samples pack
	// into one [N, D] workspace matrix and each Dense layer runs one GEMM per
	// pass instead of N GEMV round-trips. NewHead sets it from the package
	// default (on; see SetBatchTrainDefault); hand-built heads leave it false
	// and train per sample. Chains the batched protocol cannot express (conv
	// tails, ragged latents) fall back per sample regardless.
	BatchTrain bool
	// labelBuf and zsBuf are reusable packing scratch for the batched path.
	labelBuf []int
	zsBuf    []*tensor.Tensor
}

// HeadConfig controls head construction.
type HeadConfig struct {
	// LR is the SGD learning rate (paper: 0.001 at batch 10; the default here
	// is 0.01, re-tuned for the laptop-scale backbone).
	LR float64
	// Momentum is the SGD momentum (default 0).
	Momentum float64
	// WeightDecay is the L2 coefficient (default 0).
	WeightDecay float64
	// Seed drives head initialisation; different seeds = different runs.
	Seed int64
}

// NewHead builds a fresh head matching the backbone's architecture choice.
func NewHead(backbone *mobilenet.Model, cfg HeadConfig) *Head {
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	cfgM := backbone.Cfg
	cfgM.Seed = cfg.Seed
	// Rebuild the full model with the head seed, but keep only its head: this
	// reuses the builder's architecture logic while giving each run an
	// independent initialisation.
	fresh, err := mobilenet.New(cfgM)
	if err != nil {
		// The backbone config was already validated at construction; a
		// failure here is a programming error.
		panic("cl: rebuilding head from validated config failed: " + err.Error())
	}
	opt := nn.NewSGD(cfg.LR)
	opt.Momentum = cfg.Momentum
	opt.WeightDecay = cfg.WeightDecay
	h := &Head{Net: fresh.Head, Opt: opt, Classes: cfgM.NumClasses, ws: tensor.NewWorkspace(), BatchTrain: BatchTrainDefault()}
	nn.AttachWorkspace(h.Net, h.ws)
	opt.SetWorkspace(h.ws)
	h.params = h.Net.Params()
	return h
}

// Workspace exposes the head's tensor pool (nil for hand-built heads). It is
// single-owner: only the goroutine driving this head may touch it.
func (h *Head) Workspace() *tensor.Workspace { return h.ws }

// cachedParams returns the parameter list, walking the layer tree only once.
func (h *Head) cachedParams() []*nn.Param {
	if h.params == nil {
		h.params = h.Net.Params()
	}
	return h.params
}

// Logits runs the head in eval mode.
func (h *Head) Logits(z *tensor.Tensor) *tensor.Tensor { return h.Net.Forward(z, false) }

// Predict returns the argmax class.
func (h *Head) Predict(z *tensor.Tensor) int { return h.Logits(z).ArgMax() }

// Probs returns softmax probabilities.
func (h *Head) Probs(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(h.Logits(z)) }

// LogitsBatch runs the head in eval mode over a slice of latents at once,
// returning an [N, Classes] logit matrix borrowed from the head's workspace
// (PredictBatch puts it back; other callers should too). When every layer
// supports the batched protocol the whole pool flows through one GEMM per
// Dense layer; mixed chains (conv tails) fall back to per-sample Forwards
// into the same matrix. Either way each row is bit-identical to Logits on
// that sample: the batched kernels preserve the per-sample accumulation
// order exactly.
func (h *Head) LogitsBatch(zs []*tensor.Tensor) *tensor.Tensor {
	n := len(zs)
	layers := h.Net.Layers
	var x *tensor.Tensor
	start := 0
	if len(layers) > 0 && n > 0 {
		if _, ok := layers[0].(*nn.GlobalAvgPool2D); ok && zs[0].NDim() == 3 {
			x = h.ws.Get(n, zs[0].Dim(0))
			tensor.GlobalAvgPoolRowsInto(x, zs)
			start = 1
		}
	}
	if x == nil {
		if n == 0 || zs[0].NDim() != 1 {
			return h.logitsBatchFallback(zs)
		}
		d := zs[0].Len()
		x = h.ws.Get(n, d)
		xd := x.Data()
		for i, z := range zs {
			copy(xd[i*d:(i+1)*d], z.Data())
		}
	}
	for _, l := range layers[start:] {
		bl, ok := l.(nn.BatchLayer)
		if !ok {
			h.ws.Put(x)
			return h.logitsBatchFallback(zs)
		}
		if y := bl.ForwardBatch(x, h.ws); y != x {
			h.ws.Put(x)
			x = y
		}
	}
	return x
}

// logitsBatchFallback evaluates sample by sample into one output matrix.
func (h *Head) logitsBatchFallback(zs []*tensor.Tensor) *tensor.Tensor {
	out := h.ws.Get(len(zs), h.Classes)
	od := out.Data()
	for i, z := range zs {
		copy(od[i*h.Classes:(i+1)*h.Classes], h.Logits(z).Data())
	}
	return out
}

// PredictBatch classifies zs into out[:len(zs)] via the batched eval path.
func (h *Head) PredictBatch(zs []*tensor.Tensor, out []int) {
	if len(zs) == 0 {
		return
	}
	defer headPredictBatch.ObserveSince(time.Now())
	logits := h.LogitsBatch(zs)
	logits.ArgMaxRowsInto(out[:len(zs)])
	h.ws.Put(logits)
}

// ZeroGrad clears accumulated gradients.
func (h *Head) ZeroGrad() {
	for _, p := range h.cachedParams() {
		p.ZeroGrad()
	}
}

// ensureGrad returns the shared logit-gradient scratch, sized to n.
func (h *Head) ensureGrad(n int) *tensor.Tensor {
	if h.gradScratch == nil || h.gradScratch.Len() != n {
		h.gradScratch = tensor.New(n)
	}
	return h.gradScratch
}

// AccumulateCE adds the cross-entropy gradient of one (latent, label) pair,
// scaled by weight, and returns the loss.
func (h *Head) AccumulateCE(z *tensor.Tensor, label int, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	g := h.ensureGrad(logits.Len())
	loss := nn.CrossEntropyInto(logits, label, g)
	if weight != 1 {
		g.Scale(float32(weight))
	}
	h.Net.Backward(g)
	return loss * weight
}

// AccumulateSoft adds the distillation gradient against teacher logits at the
// given temperature, scaled by weight·T² (Hinton scaling), and returns the
// scaled loss.
func (h *Head) AccumulateSoft(z, teacher *tensor.Tensor, temperature, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	g := h.ensureGrad(logits.Len())
	if h.softScratch == nil || h.softScratch.Len() != logits.Len() {
		h.softScratch = tensor.New(logits.Len())
	}
	loss := nn.SoftCrossEntropyInto(logits, teacher, temperature, g, h.softScratch)
	s := weight * temperature * temperature
	g.Scale(float32(s))
	h.Net.Backward(g)
	return loss * s
}

// AccumulateMSE adds the DER logit-consistency gradient, scaled by weight.
func (h *Head) AccumulateMSE(z, targetLogits *tensor.Tensor, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	g := h.ensureGrad(logits.Len())
	loss := nn.MSELogitsInto(logits, targetLogits, g)
	if weight != 1 {
		g.Scale(float32(weight))
	}
	h.Net.Backward(g)
	return loss * weight
}

// Step applies the optimizer with gradients scaled by 1/denom (denom ≤ 0 is
// treated as 1), then clears them. With a fused-capable optimizer (NewSGD
// default, no grad clipping) the scale/update/zero triple runs as one sweep
// per parameter; results are bit-identical to the split sequence.
func (h *Head) Step(denom float64) {
	ps := h.cachedParams()
	if h.Opt.Fused && h.Opt.GradClip == 0 {
		inv := float32(1)
		if denom > 0 && denom != 1 {
			inv = float32(1 / denom)
		}
		for _, p := range ps {
			h.Opt.FusedStepParam(p, inv)
		}
		return
	}
	if denom > 0 && denom != 1 {
		inv := float32(1 / denom)
		for _, p := range ps {
			p.Grad.Scale(inv)
		}
	}
	for _, p := range ps {
		h.Opt.StepParam(p)
	}
	h.ZeroGrad()
}

// TrainCEOn performs one complete SGD step of averaged cross-entropy over the
// given samples. It is the common "interleave incoming and replay" update.
// The whole batch shares one scratch logit-gradient tensor, so the hot online
// loop allocates nothing per sample beyond the forward activations.
func (h *Head) TrainCEOn(samples []LatentSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	defer observeTrainStep(time.Now(), len(samples))
	h.ZeroGrad()
	if h.BatchTrain && len(samples) > 1 {
		if loss, ok := h.trainCEBatched(samples); ok {
			trainStepBatched.Add(1)
			return loss
		}
	}
	var loss float64
	n := len(samples)
	fused := h.Opt.Fused && h.Opt.GradClip == 0
	if fused {
		trainStepFused.Add(1)
	} else {
		trainStepSplit.Add(1)
	}
	for i, s := range samples {
		logits := h.Net.Forward(s.Z, true)
		g := h.ensureGrad(logits.Len())
		loss += nn.CrossEntropyInto(logits, s.Label, g)
		if fused && i == n-1 {
			// The last sample's backward carries the optimizer update with
			// it: earlier samples accumulated into the grads as usual, the
			// final contribution flows straight through the fused kernels.
			inv := float32(1)
			if n > 1 {
				inv = float32(1 / float64(n))
			}
			h.Net.BackwardSGD(g, h.Opt, inv)
		} else {
			h.Net.Backward(g)
		}
	}
	if !fused {
		h.Step(float64(n))
	}
	return loss / float64(n)
}

// Params returns the head's trainable parameters.
func (h *Head) Params() []*nn.Param { return h.cachedParams() }

// Snapshot deep-copies the current parameter values (for LwF teachers, EWC
// anchors, ...). The returned tensors are ordered like Params.
func (h *Head) Snapshot() []*tensor.Tensor {
	ps := h.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Data.Clone()
	}
	return out
}

// Restore loads parameter values captured by Snapshot.
func (h *Head) Restore(snap []*tensor.Tensor) {
	ps := h.Params()
	for i, p := range ps {
		p.Data.CopyFrom(snap[i])
	}
}

// HeadState is the complete trainable state of a Head: parameter values plus
// the optimizer's momentum buffers (Velocity is nil when no momentum state
// has accumulated). Both slices are ordered like Params, so the state is
// positional and survives serialization.
type HeadState struct {
	Params   []*tensor.Tensor
	Velocity []*tensor.Tensor
}

// State deep-copies the head's full trainable state for checkpointing.
// Unlike Snapshot it includes the optimizer's momentum, which changes the
// next update — resuming without it would diverge from the uninterrupted run.
func (h *Head) State() HeadState {
	return HeadState{Params: h.Snapshot(), Velocity: h.Opt.VelocitySnapshot(h.Net)}
}

// SetState restores state captured by State against an identically shaped
// head. All shapes are validated before any parameter is touched.
func (h *Head) SetState(st HeadState) error {
	ps := h.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("cl: head state has %d param tensors, head has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		if st.Params[i] == nil || !st.Params[i].SameShape(p.Data) {
			return fmt.Errorf("cl: head state param %d does not match shape %v", i, p.Data.Shape())
		}
	}
	if err := h.Opt.SetVelocitySnapshot(h.Net, st.Velocity); err != nil {
		return err
	}
	for i, p := range ps {
		p.Data.CopyFrom(st.Params[i])
	}
	return nil
}

// RNG derives a deterministic RNG stream for learner-internal randomness.
func RNG(seed int64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + salt))
}

// RNGSource is RNG with a checkpointable source: the returned rand.Rand draws
// from the counting Source, whose position can be saved and fast-forwarded on
// resume. The seed derivation (and therefore the bit stream) is identical to
// RNG's.
func RNGSource(seed int64, salt int64) (*rand.Rand, *checkpoint.Source) {
	src := checkpoint.NewSource(seed*1_000_003 + salt)
	return rand.New(src), src
}
