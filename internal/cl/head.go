package cl

import (
	"fmt"
	"math/rand"

	"chameleon/internal/checkpoint"
	"chameleon/internal/mobilenet"
	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// Head wraps a freshly initialised trainable head g(·) with its optimizer and
// exposes the gradient-accumulation primitives the continual learners share.
// Every learner owns its own Head; the frozen extractor is shared via
// LatentSet.
type Head struct {
	Net *nn.Sequential
	Opt *nn.SGD
	// Classes is the logit width.
	Classes int
	// gradScratch is the reusable logit-gradient buffer for the batched
	// cross-entropy path; a Head belongs to exactly one learner (one run), so
	// reuse is race-free.
	gradScratch *tensor.Tensor
}

// HeadConfig controls head construction.
type HeadConfig struct {
	// LR is the SGD learning rate (paper: 0.001 at batch 10; the default here
	// is 0.01, re-tuned for the laptop-scale backbone).
	LR float64
	// Momentum is the SGD momentum (default 0).
	Momentum float64
	// WeightDecay is the L2 coefficient (default 0).
	WeightDecay float64
	// Seed drives head initialisation; different seeds = different runs.
	Seed int64
}

// NewHead builds a fresh head matching the backbone's architecture choice.
func NewHead(backbone *mobilenet.Model, cfg HeadConfig) *Head {
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	cfgM := backbone.Cfg
	cfgM.Seed = cfg.Seed
	// Rebuild the full model with the head seed, but keep only its head: this
	// reuses the builder's architecture logic while giving each run an
	// independent initialisation.
	fresh, err := mobilenet.New(cfgM)
	if err != nil {
		// The backbone config was already validated at construction; a
		// failure here is a programming error.
		panic("cl: rebuilding head from validated config failed: " + err.Error())
	}
	opt := nn.NewSGD(cfg.LR)
	opt.Momentum = cfg.Momentum
	opt.WeightDecay = cfg.WeightDecay
	return &Head{Net: fresh.Head, Opt: opt, Classes: cfgM.NumClasses}
}

// Logits runs the head in eval mode.
func (h *Head) Logits(z *tensor.Tensor) *tensor.Tensor { return h.Net.Forward(z, false) }

// Predict returns the argmax class.
func (h *Head) Predict(z *tensor.Tensor) int { return h.Logits(z).ArgMax() }

// Probs returns softmax probabilities.
func (h *Head) Probs(z *tensor.Tensor) *tensor.Tensor { return tensor.Softmax(h.Logits(z)) }

// ZeroGrad clears accumulated gradients.
func (h *Head) ZeroGrad() { nn.ZeroGrads(h.Net) }

// AccumulateCE adds the cross-entropy gradient of one (latent, label) pair,
// scaled by weight, and returns the loss.
func (h *Head) AccumulateCE(z *tensor.Tensor, label int, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	loss, g := nn.CrossEntropy(logits, label)
	if weight != 1 {
		g.Scale(float32(weight))
	}
	h.Net.Backward(g)
	return loss * weight
}

// AccumulateSoft adds the distillation gradient against teacher logits at the
// given temperature, scaled by weight·T² (Hinton scaling), and returns the
// scaled loss.
func (h *Head) AccumulateSoft(z, teacher *tensor.Tensor, temperature, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	loss, g := nn.SoftCrossEntropy(logits, teacher, temperature)
	s := weight * temperature * temperature
	g.Scale(float32(s))
	h.Net.Backward(g)
	return loss * s
}

// AccumulateMSE adds the DER logit-consistency gradient, scaled by weight.
func (h *Head) AccumulateMSE(z, targetLogits *tensor.Tensor, weight float64) float64 {
	logits := h.Net.Forward(z, true)
	loss, g := nn.MSELogits(logits, targetLogits)
	if weight != 1 {
		g.Scale(float32(weight))
	}
	h.Net.Backward(g)
	return loss * weight
}

// Step applies the optimizer with gradients scaled by 1/denom (denom ≤ 0 is
// treated as 1), then clears them.
func (h *Head) Step(denom float64) {
	if denom > 0 && denom != 1 {
		inv := float32(1 / denom)
		for _, p := range h.Net.Params() {
			p.Grad.Scale(inv)
		}
	}
	h.Opt.Step(h.Net)
	h.ZeroGrad()
}

// TrainCEOn performs one complete SGD step of averaged cross-entropy over the
// given samples. It is the common "interleave incoming and replay" update.
// The whole batch shares one scratch logit-gradient tensor, so the hot online
// loop allocates nothing per sample beyond the forward activations.
func (h *Head) TrainCEOn(samples []LatentSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	h.ZeroGrad()
	var loss float64
	for _, s := range samples {
		logits := h.Net.Forward(s.Z, true)
		if h.gradScratch == nil || h.gradScratch.Len() != logits.Len() {
			h.gradScratch = tensor.New(logits.Len())
		}
		loss += nn.CrossEntropyInto(logits, s.Label, h.gradScratch)
		h.Net.Backward(h.gradScratch)
	}
	h.Step(float64(len(samples)))
	return loss / float64(len(samples))
}

// Params returns the head's trainable parameters.
func (h *Head) Params() []*nn.Param { return h.Net.Params() }

// Snapshot deep-copies the current parameter values (for LwF teachers, EWC
// anchors, ...). The returned tensors are ordered like Params.
func (h *Head) Snapshot() []*tensor.Tensor {
	ps := h.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Data.Clone()
	}
	return out
}

// Restore loads parameter values captured by Snapshot.
func (h *Head) Restore(snap []*tensor.Tensor) {
	ps := h.Params()
	for i, p := range ps {
		p.Data.CopyFrom(snap[i])
	}
}

// HeadState is the complete trainable state of a Head: parameter values plus
// the optimizer's momentum buffers (Velocity is nil when no momentum state
// has accumulated). Both slices are ordered like Params, so the state is
// positional and survives serialization.
type HeadState struct {
	Params   []*tensor.Tensor
	Velocity []*tensor.Tensor
}

// State deep-copies the head's full trainable state for checkpointing.
// Unlike Snapshot it includes the optimizer's momentum, which changes the
// next update — resuming without it would diverge from the uninterrupted run.
func (h *Head) State() HeadState {
	return HeadState{Params: h.Snapshot(), Velocity: h.Opt.VelocitySnapshot(h.Net)}
}

// SetState restores state captured by State against an identically shaped
// head. All shapes are validated before any parameter is touched.
func (h *Head) SetState(st HeadState) error {
	ps := h.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("cl: head state has %d param tensors, head has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		if st.Params[i] == nil || !st.Params[i].SameShape(p.Data) {
			return fmt.Errorf("cl: head state param %d does not match shape %v", i, p.Data.Shape())
		}
	}
	if err := h.Opt.SetVelocitySnapshot(h.Net, st.Velocity); err != nil {
		return err
	}
	for i, p := range ps {
		p.Data.CopyFrom(st.Params[i])
	}
	return nil
}

// RNG derives a deterministic RNG stream for learner-internal randomness.
func RNG(seed int64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + salt))
}

// RNGSource is RNG with a checkpointable source: the returned rand.Rand draws
// from the counting Source, whose position can be saved and fast-forwarded on
// resume. The seed derivation (and therefore the bit stream) is identical to
// RNG's.
func RNGSource(seed int64, salt int64) (*rand.Rand, *checkpoint.Source) {
	src := checkpoint.NewSource(seed*1_000_003 + salt)
	return rand.New(src), src
}
