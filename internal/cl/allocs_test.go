package cl

import (
	"testing"

	"chameleon/internal/parallel"
	"chameleon/internal/race"
	"chameleon/internal/tensor"
)

// allocEnv builds a trained head plus a latent batch and test pool, with the
// worker pool pinned to 1 (the steady-state pin is a single-goroutine
// property; the sharded kernels' parallel branch necessarily allocates its
// closure and is gated off at workers <= 1).
func allocEnv(t *testing.T) (*Head, []LatentSample, []*tensor.Tensor) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(0) })
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{Seed: 5})
	batch := set.Train[:8]
	zs := make([]*tensor.Tensor, len(set.Test))
	for i, s := range set.Test {
		zs[i] = s.Z
	}
	// Warm-up: first pass populates every workspace bucket and layer scratch.
	h.TrainCEOn(batch)
	out := make([]int, len(zs))
	h.PredictBatch(zs, out)
	h.Predict(zs[0])
	return h, batch, zs
}

// TestAllocsTrainStep pins the tentpole guarantee: one online SGD step over a
// replay-sized batch performs zero heap allocations after warm-up.
func TestAllocsTrainStep(t *testing.T) {
	h, batch, _ := allocEnv(t)
	got := testing.AllocsPerRun(50, func() { h.TrainCEOn(batch) })
	if got != 0 {
		t.Fatalf("TrainCEOn allocates %.0f times/op, want 0", got)
	}
}

// TestAllocsTrainBatched pins the batched training path explicitly: with
// BatchTrain forced on, the steady-state step — GAP pack, one GEMM per Dense
// forward, row-wise cross-entropy, batched backward with the fused update —
// performs zero heap allocations, and the step really does take the batched
// path (the counter advances).
func TestAllocsTrainBatched(t *testing.T) {
	h, batch, _ := allocEnv(t)
	h.BatchTrain = true
	h.TrainCEOn(batch) // warm the batched-path scratch (label/zs buffers, batch matrix)
	before := trainStepBatched.Value()
	got := testing.AllocsPerRun(50, func() { h.TrainCEOn(batch) })
	if trainStepBatched.Value() == before {
		t.Fatal("batched path never engaged")
	}
	if got != 0 {
		t.Fatalf("batched TrainCEOn allocates %.0f times/op, want 0", got)
	}
}

// TestAllocsTrainPerSample pins the per-sample reference path at the same
// standard: the fallback must stay allocation-free too.
func TestAllocsTrainPerSample(t *testing.T) {
	h, batch, _ := allocEnv(t)
	h.BatchTrain = false
	h.TrainCEOn(batch)
	got := testing.AllocsPerRun(50, func() { h.TrainCEOn(batch) })
	if got != 0 {
		t.Fatalf("per-sample TrainCEOn allocates %.0f times/op, want 0", got)
	}
}

// TestAllocsEvalBatch pins the batched-evaluation half: classifying the whole
// test pool through PredictBatch allocates nothing after warm-up.
func TestAllocsEvalBatch(t *testing.T) {
	h, _, zs := allocEnv(t)
	out := make([]int, len(zs))
	got := testing.AllocsPerRun(50, func() { h.PredictBatch(zs, out) })
	if got != 0 {
		t.Fatalf("PredictBatch allocates %.0f times/op, want 0", got)
	}
}

// TestAllocsPredict pins the single-sample path a pooled head uses inside
// Observe-time scoring.
func TestAllocsPredict(t *testing.T) {
	h, _, zs := allocEnv(t)
	got := testing.AllocsPerRun(100, func() { h.Predict(zs[0]) })
	if got != 0 {
		t.Fatalf("Predict allocates %.0f times/op, want 0", got)
	}
}
