package cl

import "fmt"

// TrafficMeter counts replay-buffer item movements during a simulated run,
// split by the memory level the buffer is mapped to. Learners increment it
// as they read and write their stores; multiplying by a per-item payload
// size (e.g. the paper-scale 32 KiB latent) turns the counts into the DRAM/
// SRAM traffic the hardware energy models price.
//
// This is the dynamic counterpart of internal/hw's static step profiles: the
// profiles predict traffic analytically, the meter measures it from the
// actual execution, buffer fills and access schedules included.
type TrafficMeter struct {
	// OnChipReads/Writes count items moved to/from the on-chip store
	// (Chameleon's short-term memory).
	OnChipReads, OnChipWrites int64
	// OffChipReads/Writes count items moved to/from off-chip buffers
	// (long-term stores, unified replay buffers).
	OffChipReads, OffChipWrites int64
}

// AddOnChip records on-chip item movements.
func (m *TrafficMeter) AddOnChip(reads, writes int64) {
	if m == nil {
		return
	}
	m.OnChipReads += reads
	m.OnChipWrites += writes
}

// AddOffChip records off-chip item movements.
func (m *TrafficMeter) AddOffChip(reads, writes int64) {
	if m == nil {
		return
	}
	m.OffChipReads += reads
	m.OffChipWrites += writes
}

// OnChipItems returns total on-chip movements.
func (m *TrafficMeter) OnChipItems() int64 { return m.OnChipReads + m.OnChipWrites }

// OffChipItems returns total off-chip movements.
func (m *TrafficMeter) OffChipItems() int64 { return m.OffChipReads + m.OffChipWrites }

// Bytes converts the counts to bytes given a per-item payload size.
func (m *TrafficMeter) Bytes(perItem int64) (onChip, offChip int64) {
	return m.OnChipItems() * perItem, m.OffChipItems() * perItem
}

// String summarises the meter.
func (m *TrafficMeter) String() string {
	return fmt.Sprintf("on-chip %d reads / %d writes, off-chip %d reads / %d writes",
		m.OnChipReads, m.OnChipWrites, m.OffChipReads, m.OffChipWrites)
}
