package cl

import (
	"fmt"
	"sync/atomic"

	"chameleon/internal/obs"
)

// TrafficMeter counts replay-buffer item movements during a simulated run,
// split by the memory level the buffer is mapped to. Learners increment it
// as they read and write their stores; multiplying by a per-item payload
// size (e.g. the paper-scale 32 KiB latent) turns the counts into the DRAM/
// SRAM traffic the hardware energy models price.
//
// This is the dynamic counterpart of internal/hw's static step profiles: the
// profiles predict traffic analytically, the meter measures it from the
// actual execution, buffer fills and access schedules included.
//
// The counters are atomic, so one meter may be shared by concurrent runs
// (the tradeoff sweep aggregates all seeds of an h setting into one meter)
// and scraped by a metrics listener while a run mutates it. Every method —
// writes and reads alike — is safe on a nil receiver: a nil meter is a
// disabled meter.
type TrafficMeter struct {
	onChipReads, onChipWrites   atomic.Int64
	offChipReads, offChipWrites atomic.Int64
}

// TrafficCounts is a plain-value snapshot of a meter (checkpoint payloads,
// result tables). The field names mirror the meter's former exported fields,
// so gob-encoded run checkpoints written before the meter became atomic still
// decode.
type TrafficCounts struct {
	// OnChipReads/Writes count items moved to/from the on-chip store
	// (Chameleon's short-term memory).
	OnChipReads, OnChipWrites int64
	// OffChipReads/Writes count items moved to/from off-chip buffers
	// (long-term stores, unified replay buffers).
	OffChipReads, OffChipWrites int64
}

// AddOnChip records on-chip item movements.
func (m *TrafficMeter) AddOnChip(reads, writes int64) {
	if m == nil {
		return
	}
	m.onChipReads.Add(reads)
	m.onChipWrites.Add(writes)
}

// AddOffChip records off-chip item movements.
func (m *TrafficMeter) AddOffChip(reads, writes int64) {
	if m == nil {
		return
	}
	m.offChipReads.Add(reads)
	m.offChipWrites.Add(writes)
}

// Counts returns a point-in-time snapshot of all four counters.
func (m *TrafficMeter) Counts() TrafficCounts {
	if m == nil {
		return TrafficCounts{}
	}
	return TrafficCounts{
		OnChipReads:   m.onChipReads.Load(),
		OnChipWrites:  m.onChipWrites.Load(),
		OffChipReads:  m.offChipReads.Load(),
		OffChipWrites: m.offChipWrites.Load(),
	}
}

// SetCounts overwrites the counters from a snapshot (checkpoint resume).
func (m *TrafficMeter) SetCounts(c TrafficCounts) {
	if m == nil {
		return
	}
	m.onChipReads.Store(c.OnChipReads)
	m.onChipWrites.Store(c.OnChipWrites)
	m.offChipReads.Store(c.OffChipReads)
	m.offChipWrites.Store(c.OffChipWrites)
}

// OnChipItems returns total on-chip movements.
func (m *TrafficMeter) OnChipItems() int64 {
	if m == nil {
		return 0
	}
	return m.onChipReads.Load() + m.onChipWrites.Load()
}

// OffChipItems returns total off-chip movements.
func (m *TrafficMeter) OffChipItems() int64 {
	if m == nil {
		return 0
	}
	return m.offChipReads.Load() + m.offChipWrites.Load()
}

// Bytes converts the counts to bytes given a per-item payload size.
func (m *TrafficMeter) Bytes(perItem int64) (onChip, offChip int64) {
	return m.OnChipItems() * perItem, m.OffChipItems() * perItem
}

// String summarises the meter.
func (m *TrafficMeter) String() string {
	c := m.Counts()
	return fmt.Sprintf("on-chip %d reads / %d writes, off-chip %d reads / %d writes",
		c.OnChipReads, c.OnChipWrites, c.OffChipReads, c.OffChipWrites)
}

// Bind exports the meter through a metrics registry as computed gauges, so
// traffic shares the export path (Prometheus, expvar JSON, end-of-run report)
// with the per-stage timers and energy accounting. Re-binding replaces any
// previously bound meter under the same names.
func (m *TrafficMeter) Bind(r *obs.Registry) {
	r.GaugeFunc("traffic_onchip_read_items", func() float64 { return float64(m.Counts().OnChipReads) })
	r.GaugeFunc("traffic_onchip_write_items", func() float64 { return float64(m.Counts().OnChipWrites) })
	r.GaugeFunc("traffic_offchip_read_items", func() float64 { return float64(m.Counts().OffChipReads) })
	r.GaugeFunc("traffic_offchip_write_items", func() float64 { return float64(m.Counts().OffChipWrites) })
}
