package cl

import (
	"fmt"
	"testing"

	"chameleon/internal/data"
	"chameleon/internal/parallel"
)

// withWorkers runs fn under a fixed worker budget, restoring the default.
func withWorkers(n int, fn func()) {
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	fn()
}

// TestLatentExtractionParallelEquivalence asserts the sharded extraction data
// plane produces bit-identical latents at workers=1 vs workers=8 over one
// shared frozen backbone.
func TestLatentExtractionParallelEquivalence(t *testing.T) {
	var serial, par *LatentSet
	withWorkers(1, func() { serial = testEnv(t) })
	withWorkers(8, func() { par = testEnv(t) })
	pools := [][2][]LatentSample{{serial.Train, par.Train}, {serial.Test, par.Test}}
	for pi, pool := range pools {
		if len(pool[0]) != len(pool[1]) {
			t.Fatalf("pool %d size mismatch", pi)
		}
		for i := range pool[0] {
			a, b := pool[0][i], pool[1][i]
			if a.Label != b.Label || a.Domain != b.Domain || a.ID != b.ID {
				t.Fatalf("pool %d sample %d metadata mismatch", pi, i)
			}
			for j, v := range a.Z.Data() {
				if v != b.Z.Data()[j] {
					t.Fatalf("pool %d sample %d latent differs at %d: %v vs %v", pi, i, j, v, b.Z.Data()[j])
				}
			}
		}
	}
}

// TestMultiSeedDeterministicAcrossWorkers asserts MultiSeed summaries are
// byte-identical at any worker count: each seeded run owns its learner and
// RNG streams, so only scheduling differs.
func TestMultiSeedDeterministicAcrossWorkers(t *testing.T) {
	set := testEnv(t)
	run := func() Summary {
		return MultiSeed(set, data.StreamOptions{BatchSize: 3}, func(seed int64) Learner {
			return &headLearner{h: NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: seed})}
		}, []int64{1, 2, 3, 4})
	}
	var s1, s4, s8 Summary
	withWorkers(1, func() { s1 = run() })
	withWorkers(4, func() { s4 = run() })
	withWorkers(8, func() { s8 = run() })
	b1, b4, b8 := fmt.Sprintf("%+v", s1), fmt.Sprintf("%+v", s4), fmt.Sprintf("%+v", s8)
	if b1 != b4 {
		t.Fatalf("MultiSeed differs workers=1 vs 4:\n%s\nvs\n%s", b1, b4)
	}
	if b1 != b8 {
		t.Fatalf("MultiSeed differs workers=1 vs 8:\n%s\nvs\n%s", b1, b8)
	}
	if len(s1.Runs) != 4 || s1.MeanAcc != s4.MeanAcc || s1.StdAcc != s4.StdAcc {
		t.Fatalf("summary fields differ: %+v vs %+v", s1, s4)
	}
}
