package cl

import (
	"math"
	"testing"

	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
	"chameleon/internal/tensor"
)

// testEnv builds a tiny dataset + backbone + latent set shared by tests.
func testEnv(t *testing.T) *LatentSet {
	t.Helper()
	cfg := data.Config{
		Name: "tiny", NumClasses: 4, NumDomains: 3, TestDomains: []int{2},
		Resolution: 16, SessionsPerClassDomain: 1, FramesPerSession: 4,
		TestFramesPerClassDomain: 3, Severity: 0.8, Seed: 1,
	}
	ds, err := data.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mobilenet.Config{Width: 0.25, Resolution: 16, NumClasses: 4, LatentLayer: 5, Head: mobilenet.HeadMLP, HiddenDim: 16, Seed: 99}
	m, err := mobilenet.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewLatentSet(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNewLatentSetValidation(t *testing.T) {
	ds, _ := data.Generate(data.Config{
		Name: "tiny", NumClasses: 4, NumDomains: 3, TestDomains: []int{2},
		Resolution: 16, SessionsPerClassDomain: 1, FramesPerSession: 2,
		TestFramesPerClassDomain: 1, Severity: 0.8, Seed: 1,
	})
	m, _ := mobilenet.New(mobilenet.Config{Width: 0.25, Resolution: 32, NumClasses: 4, LatentLayer: 5, Head: mobilenet.HeadMLP, Seed: 1})
	if _, err := NewLatentSet(m, ds); err == nil {
		t.Fatal("expected resolution mismatch error")
	}
	m2, _ := mobilenet.New(mobilenet.Config{Width: 0.25, Resolution: 16, NumClasses: 2, LatentLayer: 5, Head: mobilenet.HeadMLP, Seed: 1})
	if _, err := NewLatentSet(m2, ds); err == nil {
		t.Fatal("expected class-count mismatch error")
	}
}

func TestLatentSetShapesAndAlignment(t *testing.T) {
	set := testEnv(t)
	if len(set.Train) != set.Dataset.NumTrain() || len(set.Test) != set.Dataset.NumTest() {
		t.Fatal("latent counts mismatch")
	}
	for i, ls := range set.Train {
		if ls.ID != i {
			t.Fatal("train latents not ID-aligned")
		}
		if ls.Label != set.Dataset.Train[i].Label {
			t.Fatal("label misaligned")
		}
		for d, want := range set.Backbone.LatentShape {
			if ls.Z.Dim(d) != want {
				t.Fatalf("latent shape %v", ls.Z.Shape())
			}
		}
	}
}

func TestLatentStreamMatchesDataStream(t *testing.T) {
	set := testEnv(t)
	st := set.Stream(5, data.StreamOptions{BatchSize: 3})
	total := 0
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		for _, s := range b.Samples {
			if s.Label != set.Train[s.ID].Label {
				t.Fatal("stream emitted mismatched latent")
			}
			if s.Domain != b.Domain {
				t.Fatal("batch domain mismatch")
			}
		}
		total += len(b.Samples)
	}
	if total != st.Total() {
		t.Fatalf("emitted %d, Total %d", total, st.Total())
	}
}

// constLearner always predicts a fixed class.
type constLearner struct{ class int }

func (c constLearner) Name() string                 { return "const" }
func (c constLearner) Observe(LatentBatch)          {}
func (c constLearner) Predict(z *tensor.Tensor) int { return c.class }

func TestEvaluateConstLearner(t *testing.T) {
	set := testEnv(t)
	res := Evaluate(constLearner{class: 0}, set.Test)
	// 4 balanced classes -> 25% accuracy.
	if math.Abs(res.AccAll-0.25) > 1e-9 {
		t.Fatalf("AccAll = %v", res.AccAll)
	}
	if res.PerClass[0] != 1 || res.PerClass[1] != 0 {
		t.Fatalf("PerClass = %v", res.PerClass)
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	res := Evaluate(constLearner{}, nil)
	if !math.IsNaN(res.AccAll) {
		t.Fatal("empty test should give NaN")
	}
}

func TestPreferredAccuracy(t *testing.T) {
	test := []LatentSample{{Label: 0}, {Label: 0}, {Label: 1}}
	per := []float64{1.0, 0.0}
	if got := PreferredAccuracy(per, test, []int{0}); got != 1 {
		t.Fatalf("pref acc = %v", got)
	}
	if got := PreferredAccuracy(per, test, []int{0, 1}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("pref acc = %v", got)
	}
	if got := PreferredAccuracy(per, test, nil); !math.IsNaN(got) {
		t.Fatalf("empty preferred should be NaN, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	runs := []Result{
		{Method: "m", AccAll: 0.5, PreferredAcc: math.NaN()},
		{Method: "m", AccAll: 0.7, PreferredAcc: 0.9},
	}
	s := Summarize(runs)
	if math.Abs(s.MeanAcc-0.6) > 1e-9 {
		t.Fatalf("mean = %v", s.MeanAcc)
	}
	if math.Abs(s.StdAcc-math.Sqrt(0.02)) > 1e-9 {
		t.Fatalf("std = %v", s.StdAcc)
	}
	if math.Abs(s.MeanPreferred-0.9) > 1e-9 {
		t.Fatalf("pref mean = %v", s.MeanPreferred)
	}
	if Summarize(nil).Method != "" {
		t.Fatal("empty summarize should be zero")
	}
}

// headLearner is a minimal Learner over a Head: plain finetuning.
type headLearner struct{ h *Head }

func (l *headLearner) Name() string                 { return "head" }
func (l *headLearner) Observe(b LatentBatch)        { l.h.TrainCEOn(b.Samples) }
func (l *headLearner) Predict(z *tensor.Tensor) int { return l.h.Predict(z) }

func TestHeadLearnsAboveChance(t *testing.T) {
	// The tiny random-feature env is too weak for held-out-domain
	// generalization (that is asserted on the pretrained testenv pipeline),
	// so this test checks the online head fits the *seen* pool above chance.
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: 3})
	l := &headLearner{h: h}
	st := set.Stream(3, data.StreamOptions{BatchSize: 2})
	res := RunOnline(l, st, set.Test)
	if res.SamplesSeen != st.Total() {
		t.Fatalf("consumed %d of %d", res.SamplesSeen, st.Total())
	}
	// A single online pass over 48 samples is not enough to fit from a cold
	// start; give the head a few more passes before asserting it can learn.
	for ep := int64(0); ep < 6; ep++ {
		st := set.Stream(4+ep, data.StreamOptions{BatchSize: 2})
		for {
			b, ok := st.Next()
			if !ok {
				break
			}
			l.Observe(b)
		}
	}
	trainRes := Evaluate(l, set.Train)
	if trainRes.AccAll <= 0.4 {
		t.Fatalf("head failed to fit seen data on 4 classes: %v", trainRes.AccAll)
	}
}

func TestHeadSeedsDiffer(t *testing.T) {
	set := testEnv(t)
	a := NewHead(set.Backbone, HeadConfig{Seed: 1})
	b := NewHead(set.Backbone, HeadConfig{Seed: 2})
	z := set.Train[0].Z
	la, lb := a.Logits(z), b.Logits(z)
	same := true
	for i := range la.Data() {
		if la.Data()[i] != lb.Data()[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different head seeds must give different initialisation")
	}
}

func TestHeadSnapshotRestore(t *testing.T) {
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{LR: 0.1, Seed: 4})
	z := set.Train[0].Z
	before := h.Logits(z).Clone()
	snap := h.Snapshot()
	h.TrainCEOn([]LatentSample{{Z: z, Label: 1}})
	changed := false
	after := h.Logits(z)
	for i := range after.Data() {
		if after.Data()[i] != before.Data()[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("training did not change logits")
	}
	h.Restore(snap)
	restored := h.Logits(z)
	for i := range restored.Data() {
		if restored.Data()[i] != before.Data()[i] {
			t.Fatal("Restore did not recover snapshot")
		}
	}
}

func TestHeadAccumulateSoftAndMSE(t *testing.T) {
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: 5})
	z := set.Train[0].Z
	teacher := h.Logits(z).Clone()
	teacher.Data()[0] += 2
	// Distilling toward the teacher must reduce soft loss over steps.
	var first, last float64
	for i := 0; i < 20; i++ {
		h.ZeroGrad()
		loss := h.AccumulateSoft(z, teacher, 2, 1)
		h.Step(1)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("soft loss did not decrease: %v -> %v", first, last)
	}
	// Same for the MSE consistency loss.
	h2 := NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: 6})
	target := h2.Logits(z).Clone()
	target.Data()[1] += 1
	first, last = 0, 0
	for i := 0; i < 20; i++ {
		h2.ZeroGrad()
		loss := h2.AccumulateMSE(z, target, 1)
		h2.Step(1)
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("mse loss did not decrease: %v -> %v", first, last)
	}
}

func TestMultiSeedProducesSpread(t *testing.T) {
	set := testEnv(t)
	s := MultiSeed(set, data.StreamOptions{BatchSize: 2}, func(seed int64) Learner {
		return &headLearner{h: NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: seed})}
	}, []int64{1, 2, 3})
	if len(s.Runs) != 3 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	if s.MeanAcc <= 0 || s.MeanAcc > 1 {
		t.Fatalf("mean acc = %v", s.MeanAcc)
	}
}

func TestSortedClasses(t *testing.T) {
	pool := []LatentSample{{Label: 3}, {Label: 1}, {Label: 3}}
	got := SortedClasses(pool)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SortedClasses = %v", got)
	}
}
