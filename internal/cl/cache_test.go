package cl

import (
	"path/filepath"
	"testing"

	"chameleon/internal/data"
)

func TestSaveLoadLatentSetRoundTrip(t *testing.T) {
	set := testEnv(t)
	path := filepath.Join(t.TempDir(), "set.latents")
	if err := SaveLatentSet(path, set); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLatentSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Train) != len(set.Train) || len(loaded.Test) != len(set.Test) {
		t.Fatalf("counts changed: %d/%d vs %d/%d", len(loaded.Train), len(loaded.Test), len(set.Train), len(set.Test))
	}
	for i, s := range set.Train {
		l := loaded.Train[i]
		if l.Label != s.Label || l.Domain != s.Domain || l.ID != s.ID {
			t.Fatal("metadata corrupted")
		}
		for j, v := range s.Z.Data() {
			if l.Z.Data()[j] != v {
				t.Fatal("latent payload corrupted")
			}
		}
	}
	// The loaded set must support streaming and evaluation.
	st := loaded.Stream(3, data.StreamOptions{BatchSize: 4})
	total := 0
	for {
		b, ok := st.Next()
		if !ok {
			break
		}
		total += len(b.Samples)
		for _, s := range b.Samples {
			if s.Z == nil {
				t.Fatal("stream emitted nil latent")
			}
		}
	}
	if total != loaded.Dataset.NumTrain() {
		t.Fatalf("loaded stream emitted %d of %d", total, loaded.Dataset.NumTrain())
	}
	// Backbone config survives (head construction works).
	h := NewHead(loaded.Backbone, HeadConfig{Seed: 1})
	if h.Predict(loaded.Test[0].Z) < 0 {
		t.Fatal("prediction failed on loaded set")
	}
}

func TestLoadLatentSetErrors(t *testing.T) {
	if _, err := LoadLatentSet(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
