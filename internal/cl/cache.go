package cl

import (
	"encoding/gob"
	"fmt"
	"os"

	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
)

// latentSetDisk is the on-disk form of a LatentSet: the extracted latents
// plus the structural configs, with the (large, re-derivable) images dropped.
type latentSetDisk struct {
	Version  string
	ModelCfg mobilenet.Config
	Dataset  data.Dataset
	Train    []LatentSample
	Test     []LatentSample
}

// cacheVersion guards cached latents against generator/backbone changes.
const cacheVersion = "chameleon-latents-v1"

// SaveLatentSet writes the set's latents and structural metadata to path.
// Images are omitted: a loaded set supports streaming, training and
// evaluation, but not re-extraction.
func SaveLatentSet(path string, set *LatentSet) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cl: save latents: %w", err)
	}
	defer f.Close()
	ds := *set.Dataset
	ds.Train = stripImages(ds.Train)
	ds.Test = stripImages(ds.Test)
	disk := latentSetDisk{
		Version:  cacheVersion,
		ModelCfg: set.Backbone.Cfg,
		Dataset:  ds,
		Train:    set.Train,
		Test:     set.Test,
	}
	if err := gob.NewEncoder(f).Encode(&disk); err != nil {
		return fmt.Errorf("cl: save latents: %w", err)
	}
	return f.Sync()
}

func stripImages(in []data.Sample) []data.Sample {
	out := make([]data.Sample, len(in))
	for i, s := range in {
		s.Image = nil
		out[i] = s
	}
	return out
}

// LoadLatentSet reads a set written by SaveLatentSet. The backbone model is
// rebuilt from its config for structural queries (latent shape, head
// construction); its feature weights are NOT restored — the cached latents
// are the features, and a loaded set cannot extract new images.
func LoadLatentSet(path string) (*LatentSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cl: load latents: %w", err)
	}
	defer f.Close()
	var disk latentSetDisk
	if err := gob.NewDecoder(f).Decode(&disk); err != nil {
		return nil, fmt.Errorf("cl: load latents: %w", err)
	}
	if disk.Version != cacheVersion {
		return nil, fmt.Errorf("cl: latent cache version %q, want %q", disk.Version, cacheVersion)
	}
	m, err := mobilenet.New(disk.ModelCfg)
	if err != nil {
		return nil, fmt.Errorf("cl: load latents: rebuild backbone: %w", err)
	}
	ds := disk.Dataset
	return &LatentSet{Backbone: m, Dataset: &ds, Train: disk.Train, Test: disk.Test}, nil
}
