package cl

import (
	"fmt"
	"math"
	"sort"

	"chameleon/internal/data"
	"chameleon/internal/tensor"
)

// Result is the outcome of one online run.
type Result struct {
	// Method is the learner's name.
	Method string
	// AccAll is the paper's Acc_all: final accuracy over the held-out test
	// pool, averaged over samples.
	AccAll float64
	// PerClass is the per-class test accuracy.
	PerClass []float64
	// PreferredAcc is the accuracy restricted to the preferred classes the
	// stream ended with (user-centric runs; NaN otherwise).
	PreferredAcc float64
	// SamplesSeen is the stream length consumed.
	SamplesSeen int
}

// RunOnline drives the learner over the stream (single pass), then evaluates
// it on the test pool. It is the experiment kernel behind Table I and Fig. 2.
// It is RunOnlineCheckpointed without persistence — one loop implementation
// serves both, so checkpointed and plain runs cannot drift apart.
func RunOnline(l Learner, stream *LatentStream, test []LatentSample) Result {
	res, err := RunOnlineCheckpointed(l, stream, test, CheckpointPlan{})
	if err != nil {
		// With no checkpoint path configured there is no fallible step.
		panic("cl: checkpoint-free run failed: " + err.Error())
	}
	return res
}

// Evaluate computes Acc_all and per-class accuracy of a learner on a test
// pool. The whole pool is classified through one PredictInto call (one pass:
// batched learners run a handful of matrix kernels over the full pool), then
// the tallies grow to whatever classes the pool actually contains; classes
// below the max label with no test support report NaN, like before.
func Evaluate(l Learner, test []LatentSample) Result {
	if len(test) == 0 {
		return Result{Method: l.Name(), AccAll: math.NaN(), PreferredAcc: math.NaN()}
	}
	zs := make([]*tensor.Tensor, len(test))
	for i, s := range test {
		zs[i] = s.Z
	}
	preds := make([]int, len(test))
	if err := PredictInto(l, zs, preds); err != nil {
		// preds is sized to zs above; a failure here is a programming error.
		panic(err)
	}
	var correct, total []int
	hits := 0
	for i, s := range test {
		for s.Label >= len(total) {
			total = append(total, 0)
			correct = append(correct, 0)
		}
		total[s.Label]++
		if preds[i] == s.Label {
			correct[s.Label]++
			hits++
		}
	}
	per := make([]float64, len(total))
	for c := range per {
		if total[c] > 0 {
			per[c] = float64(correct[c]) / float64(total[c])
		} else {
			per[c] = math.NaN()
		}
	}
	return Result{
		Method:       l.Name(),
		AccAll:       float64(hits) / float64(len(test)),
		PerClass:     per,
		PreferredAcc: math.NaN(),
	}
}

// PreferredAccuracy averages per-class accuracy over the given class set,
// weighting by test support. Returns NaN when the set is empty or unsupported.
func PreferredAccuracy(perClass []float64, test []LatentSample, preferred []int) float64 {
	if len(preferred) == 0 {
		return math.NaN()
	}
	support := make(map[int]int)
	for _, s := range test {
		support[s.Label]++
	}
	var num, den float64
	for _, c := range preferred {
		if c >= len(perClass) || support[c] == 0 || math.IsNaN(perClass[c]) {
			continue
		}
		num += perClass[c] * float64(support[c])
		den += float64(support[c])
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Summary aggregates repeated runs of one method, reporting mean ± std as
// the paper's tables do.
type Summary struct {
	Method string
	Runs   []Result
	// MeanAcc and StdAcc summarise AccAll across runs (std is the sample
	// standard deviation, matching the paper's ± convention).
	MeanAcc, StdAcc float64
	// MeanPreferred summarises PreferredAcc across runs that defined it.
	MeanPreferred float64
}

// Summarize reduces a set of runs.
func Summarize(runs []Result) Summary {
	if len(runs) == 0 {
		return Summary{}
	}
	s := Summary{Method: runs[0].Method, Runs: runs}
	var sum, sumSq float64
	var prefSum float64
	prefN := 0
	for _, r := range runs {
		sum += r.AccAll
		sumSq += r.AccAll * r.AccAll
		if !math.IsNaN(r.PreferredAcc) {
			prefSum += r.PreferredAcc
			prefN++
		}
	}
	n := float64(len(runs))
	s.MeanAcc = sum / n
	if len(runs) > 1 {
		v := (sumSq - sum*sum/n) / (n - 1)
		if v > 0 {
			s.StdAcc = math.Sqrt(v)
		}
	}
	if prefN > 0 {
		s.MeanPreferred = prefSum / float64(prefN)
	} else {
		s.MeanPreferred = math.NaN()
	}
	return s
}

// String renders "mean ± std" in percent.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %.2f ± %.2f %%", s.Method, 100*s.MeanAcc, 100*s.StdAcc)
}

// MultiSeed runs newLearner(seed) over the latent set once per seed and
// summarises. Stream order and head initialisation both vary with the seed,
// mirroring the paper's "mean and standard deviation across ten runs".
//
// Seeds run concurrently on the shared worker pool: each run owns its
// learner, head and RNG streams and reads the latent set immutably, so runs
// are independent by construction. Results land in seed order and the
// summary is byte-identical at any worker count; newLearner must not touch
// shared mutable state.
func MultiSeed(set *LatentSet, opts data.StreamOptions, newLearner func(seed int64) Learner, seeds []int64) Summary {
	s, err := MultiSeedCheckpointed(set, opts, newLearner, seeds, GridCheckpoint{})
	if err != nil {
		// With no checkpoint directory configured there is no fallible step.
		panic("cl: checkpoint-free multi-seed run failed: " + err.Error())
	}
	return s
}

// SortedClasses returns the class indices present in a latent pool, sorted.
func SortedClasses(pool []LatentSample) []int {
	seen := map[int]bool{}
	for _, s := range pool {
		seen[s.Label] = true
	}
	var out []int
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
