package cl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"chameleon/internal/checkpoint"
	"chameleon/internal/data"
	"chameleon/internal/parallel"
)

// Snapshotter is the optional Learner extension for crash-safe runs: a method
// serializes its complete mutable state (weights, optimizer state, buffers,
// RNG positions, counters) and restores it into a freshly constructed
// instance of the same configuration. A resumed learner must continue
// bit-identically to the uninterrupted one.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(state []byte) error
}

// ErrStopped reports a run that halted at CheckpointPlan.StopAfter after
// saving its state — the caller simulated a crash (tests) or requested a
// bounded slice of work, and resumes later.
var ErrStopped = errors.New("cl: run stopped at checkpoint limit")

// runKind tags run checkpoints in the file framing.
const runKind = "cl.run"

// CheckpointPlan configures crash-safe execution of one online run. The zero
// value disables checkpointing entirely (RunOnline's behaviour).
type CheckpointPlan struct {
	// Path is the checkpoint file ("" disables checkpointing).
	Path string
	// Every is the save period in batches (default 100).
	Every int
	// Resume loads Path before running and fast-forwards the stream to the
	// saved position. A missing file starts a fresh run (so a resumable grid's
	// first invocation and its restarts share one code path).
	Resume bool
	// Meter, when non-nil, is the traffic meter wired into the learner; its
	// counts are saved with each checkpoint and restored on resume so traffic
	// accounting survives the crash too.
	Meter *TrafficMeter
	// StopAfter, when positive, halts the run after that many total batches
	// (counted from stream start, resumed or not): the state is saved and
	// ErrStopped returned. Used to simulate crashes at a chosen batch.
	StopAfter int
}

// runCheckpoint is the persisted state of a partially completed online run.
type runCheckpoint struct {
	// Method guards against resuming a file saved by a different learner.
	Method string
	// Batches and Samples locate the stream position consumed so far.
	Batches int
	Samples int
	// Finished marks that the learner's Finish hook already ran (JOINT's
	// offline epochs must be neither skipped nor doubled after a crash).
	Finished bool
	// Meter carries the traffic counts by value (the snapshot's field names
	// match the meter's former struct layout, so old files still decode).
	Meter TrafficCounts
	// Learner is the method's opaque Snapshot payload.
	Learner []byte
}

// RunOnlineCheckpointed is RunOnline with periodic crash-safe snapshots: the
// learner state (plus stream position and traffic counts) is saved to
// plan.Path every plan.Every batches, and with plan.Resume a killed run picks
// up from its last snapshot and finishes bit-identically to an uninterrupted
// one — streams are deterministic per seed, so the skipped prefix is replayed
// by position and verified by sample count.
func RunOnlineCheckpointed(l Learner, stream *LatentStream, test []LatentSample, plan CheckpointPlan) (Result, error) {
	var snap Snapshotter
	if plan.Path != "" {
		if snap = Caps(l).Snapshotter; snap == nil {
			return Result{}, fmt.Errorf("cl: method %q does not support checkpointing", l.Name())
		}
	}
	every := plan.Every
	if every <= 0 {
		every = 100
	}
	batches, samples := 0, 0
	finished := false

	save := func(done bool) error {
		if snap == nil {
			return nil
		}
		state, err := snap.Snapshot()
		if err != nil {
			return fmt.Errorf("cl: snapshot %s at batch %d: %w", l.Name(), batches, err)
		}
		ck := runCheckpoint{Method: l.Name(), Batches: batches, Samples: samples, Finished: done, Learner: state}
		ck.Meter = plan.Meter.Counts() // nil-safe: zero counts when unmetered
		return checkpoint.Save(plan.Path, runKind, ck)
	}

	if plan.Resume && snap != nil {
		if _, err := os.Stat(plan.Path); err == nil {
			var ck runCheckpoint
			if err := checkpoint.Load(plan.Path, runKind, &ck); err != nil {
				return Result{}, err
			}
			if ck.Method != l.Name() {
				return Result{}, fmt.Errorf("cl: checkpoint %s holds method %q, learner is %q", plan.Path, ck.Method, l.Name())
			}
			if err := snap.Restore(ck.Learner); err != nil {
				return Result{}, fmt.Errorf("cl: restore %s from %s: %w", l.Name(), plan.Path, err)
			}
			plan.Meter.SetCounts(ck.Meter)
			// Fast-forward the deterministic stream past the consumed prefix.
			for batches < ck.Batches {
				b, ok := stream.Next()
				if !ok {
					return Result{}, fmt.Errorf("cl: checkpoint %s at batch %d is beyond the stream end", plan.Path, ck.Batches)
				}
				batches++
				samples += len(b.Samples)
			}
			if samples != ck.Samples {
				return Result{}, fmt.Errorf("cl: stream replay yielded %d samples at batch %d, checkpoint %s recorded %d — different stream?",
					samples, batches, plan.Path, ck.Samples)
			}
			finished = ck.Finished
		}
	}

	if !finished {
		for {
			if plan.StopAfter > 0 && batches >= plan.StopAfter {
				if err := save(false); err != nil {
					return Result{}, err
				}
				return Result{}, ErrStopped
			}
			b, ok := stream.Next()
			if !ok {
				break
			}
			l.Observe(b)
			batches++
			samples += len(b.Samples)
			if snap != nil && batches%every == 0 {
				if err := save(false); err != nil {
					return Result{}, err
				}
			}
		}
		if f := Caps(l).Finisher; f != nil {
			// Save immediately before Finish: a crash during the (possibly
			// long) finishing phase resumes with pre-Finish state and re-runs
			// it in full, rather than skipping or doubling it.
			if err := save(false); err != nil {
				return Result{}, err
			}
			f.Finish()
		}
		if err := save(true); err != nil {
			return Result{}, err
		}
	}

	res := Evaluate(l, test)
	res.SamplesSeen = samples
	res.PreferredAcc = PreferredAccuracy(res.PerClass, test, stream.PreferredClasses())
	return res, nil
}

// GridCheckpoint configures per-seed checkpointing of a multi-seed run. The
// zero value disables it.
type GridCheckpoint struct {
	// Dir is the checkpoint directory ("" disables checkpointing).
	Dir string
	// Every is the save period in batches (default 100).
	Every int
	// Label prefixes the per-seed file names ("<label>-seed<N>.ckpt").
	Label string
	// Resume restarts every seed from its last snapshot where one exists.
	Resume bool
}

// MultiSeedCheckpointed is MultiSeed with per-seed crash-safe snapshots: each
// seed's run checkpoints independently under gc.Dir, so a killed grid resumes
// with only the unfinished tails of its cells re-executed. Seeds still run
// concurrently on the shared worker pool with results in seed order.
func MultiSeedCheckpointed(set *LatentSet, opts data.StreamOptions, newLearner func(seed int64) Learner, seeds []int64, gc GridCheckpoint) (Summary, error) {
	runs := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	parallel.For(len(seeds), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seed := seeds[i]
			l := newLearner(seed)
			st := set.Stream(seed, opts)
			plan := CheckpointPlan{Every: gc.Every, Resume: gc.Resume}
			if gc.Dir != "" {
				plan.Path = filepath.Join(gc.Dir, fmt.Sprintf("%s-seed%d.ckpt", gc.Label, seed))
			}
			runs[i], errs[i] = RunOnlineCheckpointed(l, st, set.Test, plan)
		}
	})
	for _, err := range errs {
		if err != nil {
			return Summary{}, err
		}
	}
	return Summarize(runs), nil
}
