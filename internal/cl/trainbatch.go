package cl

import (
	"sync/atomic"

	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// batchTrainDefault controls whether freshly built Heads take the batched
// training path (one GEMM per Dense over the whole replay batch) when a step
// has more than one sample. On by default — the per-sample loop remains as
// the reference and as the fallback for chains the batched protocol cannot
// express. Atomic because fleet servers construct learners on shard
// goroutines after the CLI layer flips it once at startup.
var batchTrainDefault atomic.Bool

func init() { batchTrainDefault.Store(true) }

// SetBatchTrainDefault flips the default training path for Heads built after
// the call (the -batch-train CLI flag lands here).
func SetBatchTrainDefault(on bool) { batchTrainDefault.Store(on) }

// BatchTrainDefault reports the current default.
func BatchTrainDefault() bool { return batchTrainDefault.Load() }

// trainCEBatchedOn is the tier-generic core of the batched cross-entropy
// step, shared by the fp32 Head and the fp64 Ref64 reference learner: one
// batched forward from layer start over the packed [N, D] matrix x (consumed),
// the row-wise cross-entropy computed in place on the logit matrix, and the
// batched backward with the SGD update folded in where the optimizer allows.
// Returns the mean loss. The caller must have zeroed the parameter gradients
// (matching the per-sample path's ZeroGrad) and validated the chain via
// SupportsBatchTrain.
func trainCEBatchedOn[T tensor.Float](net *nn.SequentialOf[T], opt *nn.SGDOf[T], ws *tensor.WorkspaceOf[T], x *tensor.Of[T], start int, labels []int) float64 {
	n := len(labels)
	logits := net.ForwardBatchTrain(x, start, ws)
	loss := nn.CrossEntropyRowsInto(logits, labels, logits)
	inv := T(1)
	if n > 1 {
		inv = T(1 / float64(n))
	}
	net.BackwardSGDBatchFrom(logits, start, opt, inv, ws)
	return loss / float64(n)
}

// trainCEBatched attempts the batched training step. It reports false — and
// touches nothing — when the head's chain cannot take it: no workspace
// (hand-built heads), conv-tail heads, or ragged sample shapes that cannot
// pack into one matrix. The caller falls back to the per-sample loop, which
// handles every chain.
func (h *Head) trainCEBatched(samples []LatentSample) (float64, bool) {
	n := len(samples)
	layers := h.Net.Layers
	if h.ws == nil || len(layers) == 0 {
		return 0, false
	}
	start := 0
	gap := false
	if _, ok := layers[0].(*nn.GlobalAvgPool2D); ok && samples[0].Z.NDim() == 3 {
		c := samples[0].Z.Dim(0)
		for _, s := range samples {
			if s.Z.NDim() != 3 || s.Z.Dim(0) != c {
				return 0, false
			}
		}
		gap = true
		start = 1
	} else {
		if samples[0].Z.NDim() != 1 {
			return 0, false
		}
		d := samples[0].Z.Len()
		for _, s := range samples {
			if s.Z.NDim() != 1 || s.Z.Len() != d {
				return 0, false
			}
		}
	}
	if !h.Net.SupportsBatchTrain(start) {
		return 0, false
	}
	if cap(h.labelBuf) < n {
		h.labelBuf = make([]int, n)
	}
	labels := h.labelBuf[:n]
	for i, s := range samples {
		labels[i] = s.Label
	}
	var x *tensor.Tensor
	if gap {
		// GAP-first heads pack through the pooling kernel straight into the
		// batch matrix; the parameter-free GAP layer is then skipped entirely
		// (forward and backward) — its per-sample broadcast backward is pure
		// overhead the batched path does not pay.
		c := samples[0].Z.Dim(0)
		if cap(h.zsBuf) < n {
			h.zsBuf = make([]*tensor.Tensor, n)
		}
		zs := h.zsBuf[:n]
		for i, s := range samples {
			zs[i] = s.Z
		}
		x = h.ws.Get(n, c)
		tensor.GlobalAvgPoolRowsInto(x, zs)
	} else {
		d := samples[0].Z.Len()
		x = h.ws.Get(n, d)
		xd := x.Data()
		for i, s := range samples {
			copy(xd[i*d:(i+1)*d], s.Z.Data())
		}
	}
	return trainCEBatchedOn(h.Net, h.Opt, h.ws, x, start, labels), true
}

// observeBatched is the reference tier's batched step: the same driver as the
// fast tier over float64 kernels, with each latent widened into its row of
// the batch matrix. Reports false for chains the batched protocol cannot
// express; the caller falls back to the per-sample reference loop.
func (r *Ref64) observeBatched(samples []LatentSample) bool {
	n := len(samples)
	layers := r.Net.Layers
	if len(layers) == 0 {
		return false
	}
	start := 0
	gap := false
	if _, ok := layers[0].(*nn.GlobalAvgPool2DOf[float64]); ok && samples[0].Z.NDim() == 3 {
		c := samples[0].Z.Dim(0)
		for _, s := range samples {
			if s.Z.NDim() != 3 || s.Z.Dim(0) != c {
				return false
			}
		}
		gap = true
		start = 1
	} else {
		if samples[0].Z.NDim() != 1 {
			return false
		}
		d := samples[0].Z.Len()
		for _, s := range samples {
			if s.Z.NDim() != 1 || s.Z.Len() != d {
				return false
			}
		}
	}
	if !r.Net.SupportsBatchTrain(start) {
		return false
	}
	if cap(r.labelBuf) < n {
		r.labelBuf = make([]int, n)
	}
	labels := r.labelBuf[:n]
	for i, s := range samples {
		labels[i] = s.Label
	}
	var x *tensor.Tensor64
	if gap {
		// Widen each latent and pool it into its row with the exact serial
		// loop of GlobalAvgPoolInto — ascending-element sums, bit-identical to
		// the per-sample GAP forward on the widened tensor.
		c := samples[0].Z.Dim(0)
		x = r.ws.Get(n, c)
		xd := x.Data()
		for i, s := range samples {
			zd := r.widen(s.Z).Data()
			hh, ww := s.Z.Dim(1), s.Z.Dim(2)
			inv := 1 / float64(hh*ww)
			row := xd[i*c : (i+1)*c]
			for ci := 0; ci < c; ci++ {
				var sum float64
				for _, v := range zd[ci*hh*ww : (ci+1)*hh*ww] {
					sum += v
				}
				row[ci] = sum * inv
			}
		}
	} else {
		d := samples[0].Z.Len()
		x = r.ws.Get(n, d)
		xd := x.Data()
		for i, s := range samples {
			zd := s.Z.Data()
			row := xd[i*d : (i+1)*d]
			for j, v := range zd {
				row[j] = float64(v)
			}
		}
	}
	trainCEBatchedOn(r.Net, r.Opt, r.ws, x, start, labels)
	return true
}
