package cl

import (
	"fmt"

	"chameleon/internal/nn"
	"chameleon/internal/tensor"
)

// Ref64 is the float64 reference-tier learner: a finetune-style head trained
// in double precision on the same latent stream the fast tier sees. It exists
// to bound the fast tier's accumulated rounding error — the fp32 kernels are
// the product, the fp64 run is the measuring stick (chameleon-train
// -precision fp64 -method finetune). Like every learner it is single-owner:
// Observe and Predict run on the trainer goroutine only.
type Ref64 struct {
	Net *nn.SequentialOf[float64]
	Opt *nn.SGDOf[float64]
	// Classes is the logit width.
	Classes int
	ws      *tensor.WorkspaceOf[float64]
	zBuf    *tensor.Tensor64 // widened-latent scratch
	grad    *tensor.Tensor64 // logit-gradient scratch
	params  []*nn.ParamOf[float64]
	// Batched opts the reference tier into the batched training path through
	// the same serial float64 kernels. Off by default — the per-sample loop is
	// the auditable reference — and when on, every step is bit-identical to
	// the per-sample run: each parameter-gradient element accumulates over
	// samples in ascending stream order either way.
	Batched bool
	// labelBuf is reusable packing scratch for the batched path.
	labelBuf []int
}

// NewRef64 widens a fast-tier head into an independent float64 learner. The
// widened net starts from bit-exact copies of the head's current weights (an
// fp32 value is exactly representable in fp64), so a fresh head yields a
// fresh reference run with the same initialisation. Heads whose net cannot be
// widened (stateful Dropout) are rejected.
func NewRef64(h *Head) (*Ref64, error) {
	wide, err := nn.WidenLayer(h.Net)
	if err != nil {
		return nil, fmt.Errorf("cl: widening head for the fp64 reference tier: %w", err)
	}
	net, ok := wide.(*nn.SequentialOf[float64])
	if !ok {
		return nil, fmt.Errorf("cl: widened head is %T, want sequential", wide)
	}
	opt := nn.NewSGDOf[float64](h.Opt.LR)
	opt.Momentum = h.Opt.Momentum
	opt.WeightDecay = h.Opt.WeightDecay
	opt.GradClip = h.Opt.GradClip
	// The reference tier deliberately runs the split (scale → step → zero)
	// update path: it is the measuring stick, not the product, so it favours
	// the straightforward kernels. Since split and fused are bit-identical
	// (TestFusedStepBitIdentity*), this also makes the fp32↔fp64 parity test a
	// cross-check of the fused fold rather than fused-vs-fused.
	opt.Fused = false
	r := &Ref64{Net: net, Opt: opt, Classes: h.Classes, ws: tensor.NewWorkspaceOf[float64]()}
	nn.AttachWorkspaceOf(r.Net, r.ws)
	opt.SetWorkspace(r.ws)
	r.params = r.Net.Params()
	return r, nil
}

// Name implements Learner.
func (r *Ref64) Name() string { return "finetune-fp64" }

// widen copies a fast-tier latent into the reusable float64 scratch.
func (r *Ref64) widen(z *tensor.Tensor) *tensor.Tensor64 {
	if r.zBuf == nil || r.zBuf.Len() != z.Len() {
		r.zBuf = tensor.NewOf[float64](z.Shape()...)
	}
	zd, wd := z.Data(), r.zBuf.Data()
	for i, v := range zd {
		wd[i] = float64(v)
	}
	return r.zBuf
}

// Observe implements Learner: one averaged cross-entropy step over the batch
// through the double-precision kernels (the split path unless Opt.Fused is
// re-enabled).
func (r *Ref64) Observe(b LatentBatch) {
	n := len(b.Samples)
	if n == 0 {
		return
	}
	for _, p := range r.params {
		p.ZeroGrad()
	}
	if r.Batched && n > 1 && r.observeBatched(b.Samples) {
		return
	}
	fused := r.Opt.Fused && r.Opt.GradClip == 0
	inv := float64(1)
	if n > 1 {
		inv = 1 / float64(n)
	}
	for i, s := range b.Samples {
		logits := r.Net.Forward(r.widen(s.Z), true)
		if r.grad == nil || r.grad.Len() != logits.Len() {
			r.grad = tensor.NewOf[float64](logits.Len())
		}
		nn.CrossEntropyInto(logits, s.Label, r.grad)
		if fused && i == n-1 {
			r.Net.BackwardSGD(r.grad, r.Opt, inv)
		} else {
			r.Net.Backward(r.grad)
		}
	}
	if !fused {
		for _, p := range r.params {
			if inv != 1 {
				p.Grad.Scale(inv)
			}
			r.Opt.StepParam(p)
			p.ZeroGrad()
		}
	}
}

// Predict implements Learner.
func (r *Ref64) Predict(z *tensor.Tensor) int {
	return r.Net.Forward(r.widen(z), false).ArgMax()
}

// Logits runs a forward pass and returns the double-precision logits (a live
// reusable buffer, valid until the next call).
func (r *Ref64) Logits(z *tensor.Tensor) *tensor.Tensor64 {
	return r.Net.Forward(r.widen(z), false)
}
