package cl

import (
	"time"

	"chameleon/internal/obs"
)

// Package-level metric handles on the default registry, resolved once at init
// so the SGD and batched-eval hot paths only touch atomics. Heads are shared
// across every learner, so these aggregate process-wide; the per-learner
// breakdown lives in core's chameleon_step_* metrics.
var (
	headTrainSteps   = obs.Default().Counter("head_train_steps_total")
	headTrainSamples = obs.Default().Counter("head_train_samples_total")
	headTrainStep    = obs.Default().Histogram("head_train_step_seconds")
	headPredictBatch = obs.Default().Histogram("head_predict_batch_seconds")
	// Kernel-tier selection counters: TrainCEOn's choice between the batched
	// GEMM path, the per-sample fused fold, and the per-sample split step
	// (GradClip forces the latter) is otherwise silent — these make the active
	// tier visible in /metrics.
	trainStepBatched = obs.Default().Counter("train_step_batched_total")
	trainStepFused   = obs.Default().Counter("train_step_fused_total")
	trainStepSplit   = obs.Default().Counter("train_step_split_total")
)

func observeTrainStep(t0 time.Time, samples int) {
	headTrainSteps.Add(1)
	headTrainSamples.Add(int64(samples))
	headTrainStep.ObserveSince(t0)
}
