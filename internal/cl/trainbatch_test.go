package cl

import (
	"math"
	"math/rand"
	"testing"

	"chameleon/internal/nn"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// trainChunks slices samples into batches of size b (last one may be short).
func trainChunks(samples []LatentSample, b int) [][]LatentSample {
	var out [][]LatentSample
	for lo := 0; lo < len(samples); lo += b {
		hi := lo + b
		if hi > len(samples) {
			hi = len(samples)
		}
		out = append(out, samples[lo:hi])
	}
	return out
}

// maxParamDiff returns the largest absolute element-wise parameter difference
// between two heads.
func maxParamDiff(a, b *Head) float64 {
	pa, pb := a.Params(), b.Params()
	var max float64
	for i := range pa {
		da, db := pa[i].Data.Data(), pb[i].Data.Data()
		for j := range da {
			if d := math.Abs(float64(da[j]) - float64(db[j])); d > max {
				max = d
			}
		}
	}
	return max
}

// paramsEqual reports bit-exact parameter equality between two heads.
func paramsEqual(a, b *Head) bool {
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		da, db := pa[i].Data.Data(), pb[i].Data.Data()
		for j := range da {
			if da[j] != db[j] {
				return false
			}
		}
	}
	return true
}

// TestTrainBatchedMatchesPerSampleFP32 is the fast-tier equivalence contract:
// the batched training path must track the per-sample reference path within
// fp32 rounding tolerance (the batched forward GEMM accumulates through a
// strictly serial chain while the per-sample GEMV reassociates four-way, so
// bit-identity is not expected — closeness and matching decisions are), across
// optimizer configurations and worker counts.
func TestTrainBatchedMatchesPerSampleFP32(t *testing.T) {
	defer parallel.SetWorkers(0)
	set := testEnv(t)
	configs := []struct {
		name     string
		cfg      HeadConfig
		gradClip float64
	}{
		{name: "plain", cfg: HeadConfig{Seed: 3}},
		{name: "momentum", cfg: HeadConfig{Seed: 3, Momentum: 0.9}},
		{name: "weight-decay", cfg: HeadConfig{Seed: 3, WeightDecay: 1e-4}},
		{name: "grad-clip-split", cfg: HeadConfig{Seed: 3}, gradClip: 1},
	}
	for _, w := range []int{1, 8} {
		parallel.SetWorkers(w)
		for _, tc := range configs {
			hb := NewHead(set.Backbone, tc.cfg)
			hs := NewHead(set.Backbone, tc.cfg)
			hb.BatchTrain, hs.BatchTrain = true, false
			hb.Opt.GradClip = tc.gradClip
			hs.Opt.GradClip = tc.gradClip
			before := trainStepBatched.Value()
			for step, batch := range trainChunks(set.Train, 8) {
				lb := hb.TrainCEOn(batch)
				ls := hs.TrainCEOn(batch)
				if d := math.Abs(lb - ls); d > 1e-3 {
					t.Fatalf("workers=%d %s step %d: batched loss %.6f vs per-sample %.6f (|Δ| %.2e)",
						w, tc.name, step, lb, ls, d)
				}
			}
			if trainStepBatched.Value() == before {
				t.Fatalf("workers=%d %s: batched path never engaged", w, tc.name)
			}
			if d := maxParamDiff(hb, hs); d > 5e-3 {
				t.Errorf("workers=%d %s: max param diff %.2e after training", w, tc.name, d)
			}
			flips := 0
			for _, s := range set.Test {
				if hb.Predict(s.Z) != hs.Predict(s.Z) {
					flips++
				}
			}
			if flips > 1 {
				t.Errorf("workers=%d %s: %d/%d test predictions differ between paths",
					w, tc.name, flips, len(set.Test))
			}
		}
	}
}

// TestTrainBatchedSingleSampleBitIdentical pins the B=1 contract: a one-sample
// step always takes the per-sample path, so a batched head and a per-sample
// head stay bit-identical through it.
func TestTrainBatchedSingleSampleBitIdentical(t *testing.T) {
	set := testEnv(t)
	hb := NewHead(set.Backbone, HeadConfig{Seed: 4})
	hs := NewHead(set.Backbone, HeadConfig{Seed: 4})
	hb.BatchTrain, hs.BatchTrain = true, false
	before := trainStepBatched.Value()
	for _, s := range set.Train[:8] {
		one := []LatentSample{s}
		if lb, ls := hb.TrainCEOn(one), hs.TrainCEOn(one); lb != ls {
			t.Fatalf("B=1 losses diverge: %v vs %v", lb, ls)
		}
	}
	if trainStepBatched.Value() != before {
		t.Fatal("B=1 steps took the batched path")
	}
	if !paramsEqual(hb, hs) {
		t.Fatal("B=1 training diverged bitwise between batched and per-sample heads")
	}
}

// TestTrainBatchedEmptyAndRagged covers the remaining packing edge cases:
// empty batches are no-ops, and latents whose spatial extents differ (same
// channel count) still pack through the pooling kernel.
func TestTrainBatchedEmptyAndRagged(t *testing.T) {
	set := testEnv(t)
	hb := NewHead(set.Backbone, HeadConfig{Seed: 6})
	hs := NewHead(set.Backbone, HeadConfig{Seed: 6})
	hb.BatchTrain, hs.BatchTrain = true, false
	if loss := hb.TrainCEOn(nil); loss != 0 {
		t.Fatalf("empty batch loss = %v, want 0", loss)
	}
	if loss := hb.TrainCEOn([]LatentSample{}); loss != 0 {
		t.Fatalf("empty batch loss = %v, want 0", loss)
	}
	// Reshape alternate latents from [C,H,W] to [C,H*W,1]: the same data pools
	// to the same mean, but the batch is now spatially ragged.
	ragged := make([]LatentSample, 8)
	for i, s := range set.Train[:8] {
		ragged[i] = s
		if i%2 == 1 {
			c, h, w := s.Z.Dim(0), s.Z.Dim(1), s.Z.Dim(2)
			z := tensor.New(c, h*w, 1)
			copy(z.Data(), s.Z.Data())
			ragged[i].Z = z
		}
	}
	before := trainStepBatched.Value()
	lb := hb.TrainCEOn(ragged)
	ls := hs.TrainCEOn(ragged)
	if trainStepBatched.Value() == before {
		t.Fatal("ragged-spatial batch did not take the batched path")
	}
	if d := math.Abs(lb - ls); d > 1e-3 {
		t.Fatalf("ragged batch losses diverge: %.6f vs %.6f", lb, ls)
	}
	if d := maxParamDiff(hb, hs); d > 5e-3 {
		t.Errorf("ragged batch: max param diff %.2e", d)
	}
}

// TestTrainBatchedHandBuiltHeadFallsBack pins the nil-workspace fallback: a
// struct-literal head has no tensor pool, so the batched path must decline and
// the per-sample loop must produce bit-identical results to an explicit
// per-sample twin.
func TestTrainBatchedHandBuiltHeadFallsBack(t *testing.T) {
	build := func() *Head {
		rng := rand.New(rand.NewSource(42))
		net := nn.NewSequential("head",
			nn.NewDense("fc1", 6, 8, rng), nn.NewReLU(), nn.NewDense("fc2", 8, 3, rng))
		return &Head{Net: net, Opt: nn.NewSGD(0.1), Classes: 3}
	}
	hb, hs := build(), build()
	hb.BatchTrain, hs.BatchTrain = true, false
	rng := rand.New(rand.NewSource(7))
	var samples []LatentSample
	for i := 0; i < 12; i++ {
		z := tensor.New(6)
		for j := range z.Data() {
			z.Data()[j] = rng.Float32()
		}
		samples = append(samples, LatentSample{Z: z, Label: i % 3})
	}
	before := trainStepBatched.Value()
	for _, batch := range trainChunks(samples, 4) {
		if lb, ls := hb.TrainCEOn(batch), hs.TrainCEOn(batch); lb != ls {
			t.Fatalf("hand-built head losses diverge: %v vs %v", lb, ls)
		}
	}
	if trainStepBatched.Value() != before {
		t.Fatal("workspace-less head took the batched path")
	}
	if !paramsEqual(hb, hs) {
		t.Fatal("hand-built fallback diverged from the per-sample head")
	}
}

// TestTrainBatchedCheckpointResume pins determinism across a mid-run
// State/SetState round trip: resuming a batched run and continuing must land
// bit-identical to the uninterrupted run.
func TestTrainBatchedCheckpointResume(t *testing.T) {
	set := testEnv(t)
	a := NewHead(set.Backbone, HeadConfig{Seed: 17, Momentum: 0.5})
	a.BatchTrain = true
	batches := trainChunks(set.Train, 8)
	for _, b := range batches[:2] {
		a.TrainCEOn(b)
	}
	snap := a.State()
	for _, b := range batches[2:] {
		a.TrainCEOn(b)
	}
	resumed := NewHead(set.Backbone, HeadConfig{Seed: 17, Momentum: 0.5})
	resumed.BatchTrain = true
	if err := resumed.SetState(snap); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[2:] {
		resumed.TrainCEOn(b)
	}
	if !paramsEqual(a, resumed) {
		t.Fatal("resumed batched run diverged from the uninterrupted run")
	}
	for _, s := range set.Test {
		if a.Predict(s.Z) != resumed.Predict(s.Z) {
			t.Fatal("resumed batched run predicts differently")
		}
	}
}

// ref64ParamsEqual compares two reference-tier learners bit for bit.
func ref64ParamsEqual(a, b *Ref64) bool {
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		da, db := pa[i].Data.Data(), pb[i].Data.Data()
		for j := range da {
			if da[j] != db[j] {
				return false
			}
		}
	}
	return true
}

// TestRef64BatchedBitIdentity is the reference-tier contract: the fp64 batched
// path accumulates every parameter-gradient element over samples in the same
// ascending stream order as the per-sample loop, so a batched Ref64 must stay
// bit-identical to a per-sample Ref64 — at every worker count, with and
// without momentum.
func TestRef64BatchedBitIdentity(t *testing.T) {
	defer parallel.SetWorkers(0)
	set := testEnv(t)
	for _, w := range []int{1, 8} {
		for _, mom := range []float64{0, 0.9} {
			parallel.SetWorkers(w)
			h := NewHead(set.Backbone, HeadConfig{Seed: 7, Momentum: mom})
			serial, err := NewRef64(h)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := NewRef64(h)
			if err != nil {
				t.Fatal(err)
			}
			batched.Batched = true
			if !batched.Net.SupportsBatchTrain(1) {
				t.Fatal("widened test head does not support the batched protocol")
			}
			for step, b := range trainChunks(set.Train, 8) {
				serial.Observe(LatentBatch{Samples: b})
				batched.Observe(LatentBatch{Samples: b})
				if !ref64ParamsEqual(serial, batched) {
					t.Fatalf("workers=%d momentum=%v: fp64 params diverge after step %d", w, mom, step)
				}
			}
			for i, s := range set.Test {
				if serial.Predict(s.Z) != batched.Predict(s.Z) {
					t.Fatalf("workers=%d momentum=%v: fp64 prediction %d diverges", w, mom, i)
				}
			}
		}
	}
}
