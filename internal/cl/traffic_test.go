package cl

import (
	"strings"
	"sync"
	"testing"

	"chameleon/internal/obs"
)

// TestTrafficMeterNilSafe is the regression test for the nil-receiver
// asymmetry: AddOnChip/AddOffChip were always nil-safe, but OnChipItems,
// OffChipItems, Bytes and String panicked on a nil meter, so any code path
// that metered optionally could write but never report. Every method must be
// a no-op / zero on nil.
func TestTrafficMeterNilSafe(t *testing.T) {
	var m *TrafficMeter
	m.AddOnChip(1, 2)
	m.AddOffChip(3, 4)
	m.SetCounts(TrafficCounts{OnChipReads: 9})
	if got := m.OnChipItems(); got != 0 {
		t.Fatalf("nil OnChipItems = %d, want 0", got)
	}
	if got := m.OffChipItems(); got != 0 {
		t.Fatalf("nil OffChipItems = %d, want 0", got)
	}
	if on, off := m.Bytes(1024); on != 0 || off != 0 {
		t.Fatalf("nil Bytes = %d, %d, want 0, 0", on, off)
	}
	if s := m.String(); !strings.Contains(s, "0 reads") {
		t.Fatalf("nil String = %q", s)
	}
	if c := m.Counts(); c != (TrafficCounts{}) {
		t.Fatalf("nil Counts = %+v, want zero", c)
	}
}

func TestTrafficMeterCountsRoundTrip(t *testing.T) {
	m := &TrafficMeter{}
	m.AddOnChip(5, 1)
	m.AddOffChip(2, 3)
	c := m.Counts()
	want := TrafficCounts{OnChipReads: 5, OnChipWrites: 1, OffChipReads: 2, OffChipWrites: 3}
	if c != want {
		t.Fatalf("Counts = %+v, want %+v", c, want)
	}
	if m.OnChipItems() != 6 || m.OffChipItems() != 5 {
		t.Fatalf("items = %d on / %d off", m.OnChipItems(), m.OffChipItems())
	}
	on, off := m.Bytes(10)
	if on != 60 || off != 50 {
		t.Fatalf("Bytes = %d, %d", on, off)
	}
	other := &TrafficMeter{}
	other.SetCounts(c)
	if other.Counts() != want {
		t.Fatalf("SetCounts round-trip = %+v", other.Counts())
	}
}

// TestTrafficMeterConcurrent exercises the atomic counters from several
// goroutines while a registry-bound scrape reads them (the multi-seed
// tradeoff sweep shares one meter across concurrent runs).
func TestTrafficMeterConcurrent(t *testing.T) {
	m := &TrafficMeter{}
	r := obs.NewRegistry()
	m.Bind(r)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddOnChip(1, 1)
				m.AddOffChip(1, 1)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	want := TrafficCounts{OnChipReads: 4000, OnChipWrites: 4000, OffChipReads: 4000, OffChipWrites: 4000}
	if got := m.Counts(); got != want {
		t.Fatalf("Counts = %+v, want %+v", got, want)
	}
	rep := r.Report()
	if rep.Gauges["traffic_onchip_read_items"] != 4000 {
		t.Fatalf("bound gauge = %v, want 4000", rep.Gauges["traffic_onchip_read_items"])
	}
}
