package cl

import (
	"math"
	"testing"

	"chameleon/internal/data"
	"chameleon/internal/tensor"
)

// flipLearner predicts correctly for a configurable label set; used to
// script accuracy trajectories.
type flipLearner struct{ correct map[int]bool }

func (f *flipLearner) Name() string          { return "flip" }
func (f *flipLearner) Observe(b LatentBatch) {}
func (f *flipLearner) Predict(z *tensor.Tensor) int {
	// Encode the true label in the latent's first element (test rig).
	label := int(z.Data()[0])
	if f.correct[label] {
		return label
	}
	return -1
}

func mkSample(label, domain int) LatentSample {
	z := tensor.New(2)
	z.Data()[0] = float32(label)
	return LatentSample{Z: z, Label: label, Domain: domain}
}

func TestForgettingProbeMeasuresPeakMinusFinal(t *testing.T) {
	train := []LatentSample{mkSample(0, 0), mkSample(0, 0), mkSample(1, 1), mkSample(1, 1)}
	probe := NewForgettingProbe(train)
	l := &flipLearner{correct: map[int]bool{0: true}}
	probe.Measure(l) // domain 0 at 1.0, domain 1 at 0.0
	l.correct = map[int]bool{1: true}
	probe.Measure(l) // domain 0 drops to 0, domain 1 rises to 1
	// Peaks: d0=1, d1=1. Finals: d0=0, d1=1. Mean forgetting = 0.5.
	if got := probe.Forgetting(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("forgetting = %v, want 0.5", got)
	}
	acc := probe.DomainAccuracy()
	if acc[0] != 0 || acc[1] != 1 {
		t.Fatalf("domain accuracy = %v", acc)
	}
}

func TestForgettingProbeEmpty(t *testing.T) {
	probe := NewForgettingProbe(nil)
	if !math.IsNaN(probe.Forgetting()) {
		t.Fatal("empty probe should report NaN")
	}
}

func TestRunOnlineWithForgetting(t *testing.T) {
	set := testEnv(t)
	h := NewHead(set.Backbone, HeadConfig{LR: 0.05, Seed: 5})
	l := &headLearner{h: h}
	st := set.Stream(5, data.StreamOptions{BatchSize: 4})
	res, forg := RunOnlineWithForgetting(l, st, set.Test)
	if res.SamplesSeen != st.Total() {
		t.Fatalf("consumed %d", res.SamplesSeen)
	}
	if math.IsNaN(forg) || forg < 0 || forg > 1 {
		t.Fatalf("forgetting = %v", forg)
	}
}
