package cl

import (
	"testing"

	"chameleon/internal/tensor"
)

// fullLearner implements every optional extension.
type fullLearner struct{ constLearner }

func (fullLearner) Finish()                                   {}
func (fullLearner) PredictBatch(zs []*tensor.Tensor, o []int) {}
func (fullLearner) Snapshot() ([]byte, error)                 { return nil, nil }
func (fullLearner) Restore([]byte) error                      { return nil }

// TestCaps pins the capability-discovery contract: a bare Learner reports no
// extensions, a full learner reports all three, and each field is the same
// value a direct type assert would produce.
func TestCaps(t *testing.T) {
	bare := Caps(constLearner{})
	if bare.Finisher != nil || bare.BatchPredictor != nil || bare.Snapshotter != nil {
		t.Fatalf("bare learner reported capabilities: %+v", bare)
	}

	l := fullLearner{}
	c := Caps(l)
	if c.Finisher == nil || c.BatchPredictor == nil || c.Snapshotter == nil {
		t.Fatalf("full learner missing capabilities: %+v", c)
	}
	if f, _ := Learner(l).(Finisher); f != c.Finisher {
		t.Fatal("Caps Finisher differs from direct assert")
	}
	if bp, _ := Learner(l).(BatchPredictor); bp != c.BatchPredictor {
		t.Fatal("Caps BatchPredictor differs from direct assert")
	}
	if s, _ := Learner(l).(Snapshotter); s != c.Snapshotter {
		t.Fatal("Caps Snapshotter differs from direct assert")
	}
}
