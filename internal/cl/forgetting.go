package cl

import (
	"math"

	"chameleon/internal/tensor"
)

// ForgettingProbe measures catastrophic forgetting during an online run: it
// tracks, for every domain, the learner's peak accuracy on that domain's
// probe pool and the final accuracy, reporting the mean drop (the standard
// "forgetting" measure adapted to Domain-IL).
type ForgettingProbe struct {
	// pools maps domain -> probe samples.
	pools map[int][]LatentSample
	// peak maps domain -> best accuracy seen so far.
	peak map[int]float64
	// last maps domain -> most recent accuracy.
	last map[int]float64
	// zs and preds are reusable batching buffers for Measure, which runs at
	// every domain boundary.
	zs    []*tensor.Tensor
	preds []int
}

// NewForgettingProbe builds a probe over per-domain pools drawn from the
// training latents (evaluation-on-seen-data, as the forgetting measure
// prescribes).
func NewForgettingProbe(train []LatentSample) *ForgettingProbe {
	pools := map[int][]LatentSample{}
	for _, s := range train {
		pools[s.Domain] = append(pools[s.Domain], s)
	}
	return &ForgettingProbe{pools: pools, peak: map[int]float64{}, last: map[int]float64{}}
}

// Measure evaluates the learner on every domain pool (batched) and updates
// peaks. Call it at domain boundaries (or any checkpoint cadence).
func (f *ForgettingProbe) Measure(l Learner) {
	for d, pool := range f.pools {
		if cap(f.zs) < len(pool) {
			f.zs = make([]*tensor.Tensor, len(pool))
			f.preds = make([]int, len(pool))
		}
		zs, preds := f.zs[:len(pool)], f.preds[:len(pool)]
		for i, s := range pool {
			zs[i] = s.Z
		}
		if err := PredictInto(l, zs, preds); err != nil {
			// preds is sized to zs above; a failure here is a programming error.
			panic(err)
		}
		hits := 0
		for i, s := range pool {
			if preds[i] == s.Label {
				hits++
			}
		}
		acc := float64(hits) / float64(len(pool))
		f.last[d] = acc
		if acc > f.peak[d] {
			f.peak[d] = acc
		}
	}
}

// Forgetting returns the mean (peak − final) accuracy drop across domains
// that have been measured at least once, or NaN if none were.
func (f *ForgettingProbe) Forgetting() float64 {
	var sum float64
	n := 0
	for d, pk := range f.peak {
		sum += pk - f.last[d]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// DomainAccuracy returns the latest measured accuracy per domain.
func (f *ForgettingProbe) DomainAccuracy() map[int]float64 {
	out := make(map[int]float64, len(f.last))
	for d, a := range f.last {
		out[d] = a
	}
	return out
}

// RunOnlineWithForgetting drives the learner like RunOnline but measures the
// forgetting probe at every domain boundary and at the end. It returns the
// result plus the mean forgetting.
func RunOnlineWithForgetting(l Learner, stream *LatentStream, test []LatentSample) (Result, float64) {
	probe := NewForgettingProbe(stream.set.Train)
	seen := 0
	lastDomain := -1
	started := false
	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if started && b.Domain != lastDomain {
			probe.Measure(l)
		}
		lastDomain, started = b.Domain, true
		l.Observe(b)
		seen += len(b.Samples)
	}
	if f := Caps(l).Finisher; f != nil {
		f.Finish()
	}
	probe.Measure(l)
	res := Evaluate(l, test)
	res.SamplesSeen = seen
	res.PreferredAcc = PreferredAccuracy(res.PerClass, test, stream.PreferredClasses())
	return res, probe.Forgetting()
}
