package memcost

import (
	"chameleon/internal/mobilenet"
	"math"
	"testing"
)

// Paper Table I reference points (MB) at paper scale.
func TestPaperScaleMatchesTableI(t *testing.T) {
	m := PaperModel()
	check := func(method Method, buf, st int, wantMB, tolFrac float64) {
		t.Helper()
		b, err := m.Overhead(method, buf, st)
		if err != nil {
			t.Fatal(err)
		}
		got := MB(b)
		if math.Abs(got-wantMB) > tolFrac*wantMB {
			t.Errorf("%s buf=%d: %.2f MB, paper %.2f MB (tol %.0f%%)", method, buf, got, wantMB, 100*tolFrac)
		}
	}
	// Latent Replay: 100→3.2, 200→6.4, 500→16, 1500→48 (exact: 32 KiB/sample).
	check(Latent, 100, 0, 3.2, 0.05)
	check(Latent, 200, 0, 6.4, 0.05)
	check(Latent, 500, 0, 16.0, 0.05)
	check(Latent, 1500, 0, 48.0, 0.05)
	// ER: 1500→72 MB (48 KiB raw frames).
	check(ER, 100, 0, 4.8, 0.05)
	check(ER, 1500, 0, 72.0, 0.05)
	// DER adds logits: 1500→73.5 (paper rounds; allow 10%).
	check(DER, 1500, 0, 73.5, 0.10)
	// GSS: 100→48.8 MB (≈10× ER/sample). Allow 40%: the paper does not
	// specify the gradient precision exactly.
	check(GSS, 100, 0, 48.8, 0.40)
	// Chameleon: Ms=10 ≈ 0.3 MB on-chip; Ml=100 ≈ 3.2 MB off-chip.
	on, off, err := m.OnChipOffChip(Chameleon, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(MB(on)-0.3125) > 0.01 {
		t.Errorf("chameleon on-chip = %.3f MB, want ~0.31", MB(on))
	}
	if math.Abs(MB(off)-3.125) > 0.1 {
		t.Errorf("chameleon off-chip = %.3f MB, want ~3.13", MB(off))
	}
	// EWC++ ≈ 13 MB, LwF ≈ 12.5 MB (2× / 1× trainable params). The trainable
	// split at layer 21 gives ~1.7M params ⇒ 13.3/6.7 MB; LwF's paper figure
	// also counts activation workspace, so allow a wide band.
	check(EWCPP, 0, 0, 13.0, 0.25)
	b, _ := m.Overhead(LwF, 0, 0)
	if MB(b) < 4 || MB(b) > 13 {
		t.Errorf("lwf = %.1f MB, outside plausible band", MB(b))
	}
	// SLDA ≈ 1.2 MB (512-dim pooled features: 512² cov + 50×512 means).
	check(SLDA, 0, 0, 1.2, 0.15)
}

func TestBufferlessMethodsAreFree(t *testing.T) {
	m := PaperModel()
	for _, method := range []Method{Finetune, Joint} {
		b, err := m.Overhead(method, 1500, 10)
		if err != nil || b != 0 {
			t.Errorf("%s overhead = %d, %v", method, b, err)
		}
	}
}

func TestOverheadScalesLinearlyInBufferSize(t *testing.T) {
	m := PaperModel()
	for _, method := range []Method{ER, DER, GSS, Latent} {
		b1, _ := m.Overhead(method, 100, 0)
		b3, _ := m.Overhead(method, 300, 0)
		if b3 != 3*b1 {
			t.Errorf("%s not linear: %d vs 3*%d", method, b3, b1)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := PaperModel().Overhead(Method("nope"), 1, 0); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestOnChipOnlyForChameleon(t *testing.T) {
	m := PaperModel()
	for _, method := range []Method{ER, DER, GSS, Latent, SLDA} {
		on, off, err := m.OnChipOffChip(method, 100, 10)
		if err != nil {
			t.Fatal(err)
		}
		if on != 0 || off == 0 {
			t.Errorf("%s: on=%d off=%d", method, on, off)
		}
	}
}

func TestOrderingMatchesPaperNarrative(t *testing.T) {
	// For the same sample count: GSS > ER ≈ DER > Latent ≈ Chameleon.
	m := PaperModel()
	g, _ := m.Overhead(GSS, 200, 0)
	e, _ := m.Overhead(ER, 200, 0)
	d, _ := m.Overhead(DER, 200, 0)
	l, _ := m.Overhead(Latent, 200, 0)
	c, _ := m.Overhead(Chameleon, 200, 10)
	if !(g > e && d > e && e > l) {
		t.Fatalf("ordering broken: gss=%d der=%d er=%d latent=%d", g, d, e, l)
	}
	if c < l {
		t.Fatalf("chameleon (%d) should cost slightly more than latent (%d) at equal Ml", c, l)
	}
}

func TestSmallScaleModelWorks(t *testing.T) {
	// The laptop-scale backbone must also price out without error.
	m := New(smallCfg(), 32)
	b, err := m.Overhead(Latent, 100, 0)
	if err != nil || b <= 0 {
		t.Fatalf("small-scale latent overhead: %d, %v", b, err)
	}
	if m.LatentBytes() >= PaperModel().LatentBytes() {
		t.Fatal("small-scale latents should be smaller than paper-scale")
	}
}

func smallCfg() (cfg mobilenet.Config) {
	cfg.Width = 0.25
	cfg.Resolution = 32
	cfg.NumClasses = 10
	cfg.LatentLayer = 21
	return cfg
}

// TestLatentDtypeAccounting is the regression test for the byte-accounting
// fix: latent stores used to be priced at 4 bytes/element no matter what the
// backbone emits. fp32 stays 4 bytes/element; int8 is 1 byte/element plus one
// fp32 per-tensor scale; unknown dtypes fail fast instead of pricing wrong.
func TestLatentDtypeAccounting(t *testing.T) {
	scalars := PaperModel().sum.LatentScalars
	cases := []struct {
		name      string
		dtype     Dtype
		wantBytes int64
		wantErr   bool
	}{
		{"zero-value defaults to fp32", Dtype(""), scalars * 4, false},
		{"fp32", DtypeFP32, scalars * 4, false},
		{"int8 with per-tensor scale", DtypeInt8, scalars*1 + 4, false},
		{"unknown dtype fails fast", Dtype("fp16"), 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := PaperModel()
			m.LatentDtype = tc.dtype
			b, err := m.Overhead(Latent, 1, 0)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Overhead accepted dtype %q", tc.dtype)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if b != tc.wantBytes {
				t.Fatalf("latent overhead for 1 sample = %d bytes, want %d", b, tc.wantBytes)
			}
			// Chameleon's dual store prices both tiers at the same dtype.
			c, err := m.Overhead(Chameleon, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			if c != 5*tc.wantBytes {
				t.Fatalf("chameleon overhead = %d bytes, want %d", c, 5*tc.wantBytes)
			}
		})
	}

	// Raw-image methods are dtype-independent: frames are uint8 regardless.
	fp32, int8 := PaperModel(), PaperModel()
	int8.LatentDtype = DtypeInt8
	for _, method := range []Method{ER, DER, GSS} {
		a, _ := fp32.Overhead(method, 100, 0)
		b, _ := int8.Overhead(method, 100, 0)
		if a != b {
			t.Errorf("%s overhead changed with latent dtype: %d vs %d", method, a, b)
		}
	}
}
