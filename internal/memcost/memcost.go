// Package memcost reproduces the paper's replay-memory accounting (the
// "Memory Overhead (MB)" column of Table I and the x-axis of Fig. 2).
//
// Methods that buffer the same *number* of samples differ widely in bytes
// because their per-sample payloads differ:
//
//   - ER buffers raw input images (uint8 RGB at the camera resolution);
//   - DER buffers raw images plus the model's logit vector;
//   - GSS buffers raw images plus a gradient-direction vector per sample —
//     the paper reports up to 10× ER's footprint;
//   - Latent Replay and Chameleon buffer the latent activation of the frozen
//     backbone's layer 21 (512×4×4 fp32 = 32 KiB at paper scale);
//   - EWC++ needs a Fisher diagonal and a parameter anchor over the
//     trainable weights; LwF needs a teacher snapshot;
//   - SLDA stores per-class means plus a shared covariance matrix.
//
// All byte counts derive from the mobilenet inventory of a configurable
// model, so the same code prices both the paper-scale backbone
// (mobilenet.PaperConfig) and the laptop-scale one the experiments run.
package memcost

import (
	"fmt"

	"chameleon/internal/mobilenet"
)

// Bytes per scalar for the payload datatypes.
const (
	bytesRawPixel = 1 // uint8 camera frames
	bytesFloat    = 4 // fp32 activations/weights
)

// Dtype identifies the element type a latent store persists. The accounting
// used to charge every latent store 4 bytes/element unconditionally, which
// overstates the int8 backbone path (-backbone-int8) 4×: its latents are
// int8 elements plus one fp32 per-tensor scale.
type Dtype string

// Latent store datatypes.
const (
	// DtypeFP32 is the default fp32 latent store (4 bytes/element). The
	// zero value "" means fp32 so existing cost models are unchanged.
	DtypeFP32 Dtype = "fp32"
	// DtypeInt8 is the quantised latent store: 1 byte/element plus one
	// fp32 per-tensor quantisation scale.
	DtypeInt8 Dtype = "int8"
)

// ScalarBytes returns d's per-element stored size.
func (d Dtype) ScalarBytes() (int64, error) {
	switch d {
	case "", DtypeFP32:
		return bytesFloat, nil
	case DtypeInt8:
		return 1, nil
	}
	return 0, fmt.Errorf("memcost: unknown dtype %q (want %s or %s)", d, DtypeFP32, DtypeInt8)
}

// tensorOverheadBytes is the fixed per-tensor cost on top of the elements
// (int8 tensors carry one fp32 quantisation scale).
func (d Dtype) tensorOverheadBytes() int64 {
	if d == DtypeInt8 {
		return bytesFloat
	}
	return 0
}

// MB converts bytes to the paper's MB (10⁶ bytes would differ by <5%; the
// paper's round numbers match MiB best for latents, so MiB is used).
func MB(bytes int64) float64 { return float64(bytes) / (1024 * 1024) }

// Model wraps the inventory-derived per-sample payload sizes.
type Model struct {
	cfg mobilenet.Config
	sum mobilenet.InventorySummary
	// RawImageSide is the stored raw-frame resolution for image-buffering
	// methods. The paper's CORe50 frames are 128×128 RGB (48 KiB each)
	// regardless of the network input resolution.
	RawImageSide int
	// GradSketchScalars sizes GSS's stored gradient-direction vector. The
	// paper reports GSS at ~10× ER's per-sample footprint (48.8 MB per 100
	// samples) without specifying the gradient format; the default of
	// 115,200 fp32 scalars (≈0.44 MB/sample) reproduces that figure.
	GradSketchScalars int64
	// LatentDtype is the element type of latent stores (Latent Replay and
	// Chameleon buffers). The zero value prices fp32; set DtypeInt8 when
	// the latents come through the quantised backbone path.
	LatentDtype Dtype
}

// New derives a cost model from a backbone config. rawSide of 0 defaults to
// the paper's 128×128 stored frames.
func New(cfg mobilenet.Config, rawSide int) *Model {
	if rawSide <= 0 {
		rawSide = 128
	}
	inv := mobilenet.Inventory(cfg)
	return &Model{cfg: cfg, sum: mobilenet.Summarize(cfg, inv), RawImageSide: rawSide, GradSketchScalars: 115200}
}

// PaperModel returns the accounting model at paper scale (MobileNetV1-1.0,
// latent layer 21 → 32 KiB latents, 128×128 stored frames, 50 classes).
func PaperModel() *Model { return New(mobilenet.PaperConfig(50), 128) }

// RawImageBytes is the stored size of one raw frame.
func (m *Model) RawImageBytes() int64 {
	return int64(m.RawImageSide) * int64(m.RawImageSide) * 3 * bytesRawPixel
}

// LatentBytes is the stored size of one latent activation under LatentDtype:
// 4 bytes/element fp32, or 1 byte/element int8 plus one fp32 per-tensor
// scale. An unknown dtype prices as fp32 here; Overhead rejects it first.
func (m *Model) LatentBytes() int64 {
	per, err := m.LatentDtype.ScalarBytes()
	if err != nil {
		per = bytesFloat
	}
	return m.sum.LatentScalars*per + m.LatentDtype.tensorOverheadBytes()
}

// LogitBytes is the stored size of one logit vector.
func (m *Model) LogitBytes() int64 { return int64(m.sum.NumClasses) * bytesFloat }

// GradVectorBytes is the stored size of GSS's per-sample gradient-direction
// vector (see GradSketchScalars).
func (m *Model) GradVectorBytes() int64 { return m.GradSketchScalars * bytesFloat }

// TrainableParamBytes is the size of the trainable parameter vector.
func (m *Model) TrainableParamBytes() int64 { return m.sum.TrainWeights * bytesFloat }

// Method identifies a continual-learning method for accounting.
type Method string

// Accounting method identifiers.
const (
	Finetune  Method = "finetune"
	Joint     Method = "joint"
	EWCPP     Method = "ewcpp"
	LwF       Method = "lwf"
	SLDA      Method = "slda"
	GSS       Method = "gss"
	ER        Method = "er"
	DER       Method = "der"
	Latent    Method = "latent"
	Chameleon Method = "chameleon"
)

// Overhead returns the method's replay/auxiliary memory in bytes for the
// given buffer size in samples (ignored by bufferless methods). For
// Chameleon, bufSamples is the long-term size and stSamples the short-term
// size; other methods ignore stSamples.
func (m *Model) Overhead(method Method, bufSamples, stSamples int) (int64, error) {
	if _, err := m.LatentDtype.ScalarBytes(); err != nil {
		return 0, err
	}
	n := int64(bufSamples)
	switch method {
	case Finetune, Joint:
		return 0, nil
	case EWCPP:
		// Fisher diagonal + anchor parameters over the trainable weights.
		return 2 * m.TrainableParamBytes(), nil
	case LwF:
		// Teacher parameter snapshot + teacher activation workspace.
		return m.TrainableParamBytes(), nil
	case SLDA:
		// Per-class means + shared covariance over the pooled feature dim.
		d := int64(m.sum.LatentScalars)
		if m.cfg.LatentLayer > 0 {
			// SLDA pools the latent over space: feature dim = channels.
			d = int64(latentChannels(m.cfg))
		}
		return (int64(m.sum.NumClasses)*d + d*d) * bytesFloat, nil
	case GSS:
		return n * (m.RawImageBytes() + m.GradVectorBytes()), nil
	case ER:
		return n * m.RawImageBytes(), nil
	case DER:
		return n * (m.RawImageBytes() + m.LogitBytes()), nil
	case Latent:
		return n * m.LatentBytes(), nil
	case Chameleon:
		return (n + int64(stSamples)) * m.LatentBytes(), nil
	default:
		return 0, fmt.Errorf("memcost: unknown method %q", method)
	}
}

// OnChipOffChip splits a method's overhead into on-chip and off-chip bytes
// under the paper's deployment: only Chameleon deliberately places its
// short-term store on-chip; every other method's buffer lives off-chip
// (single unified buffers exceed on-chip SRAM at useful sizes).
func (m *Model) OnChipOffChip(method Method, bufSamples, stSamples int) (onChip, offChip int64, err error) {
	total, err := m.Overhead(method, bufSamples, stSamples)
	if err != nil {
		return 0, 0, err
	}
	if method == Chameleon {
		on := int64(stSamples) * m.LatentBytes()
		return on, total - on, nil
	}
	return 0, total, nil
}

// latentChannels returns the channel count at the latent layer.
func latentChannels(cfg mobilenet.Config) int {
	inv := mobilenet.Inventory(cfg)
	for _, l := range inv {
		if l.Index == cfg.LatentLayer {
			return l.OutC
		}
	}
	return 0
}
