package memcost_test

import (
	"fmt"

	"chameleon/internal/memcost"
)

// Reproduce the paper's headline memory comparison: Latent Replay at 1500
// samples vs Chameleon at 10 on-chip + 100 off-chip samples.
func ExampleModel_Overhead() {
	m := memcost.PaperModel()
	latent, _ := m.Overhead(memcost.Latent, 1500, 0)
	on, off, _ := m.OnChipOffChip(memcost.Chameleon, 100, 10)
	fmt.Printf("latent replay 1500: %.1f MB\n", memcost.MB(latent))
	fmt.Printf("chameleon: %.2f MB on-chip + %.2f MB off-chip\n", memcost.MB(on), memcost.MB(off))
	fmt.Printf("reduction: %.0fx\n", memcost.MB(latent)/(memcost.MB(on)+memcost.MB(off)))
	// Output:
	// latent replay 1500: 46.9 MB
	// chameleon: 0.31 MB on-chip + 3.12 MB off-chip
	// reduction: 14x
}
