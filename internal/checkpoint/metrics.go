package checkpoint

import (
	"time"

	"chameleon/internal/obs"
)

// Checkpoint I/O observability: save/restore latency distributions (the save
// path sits inside the online loop when CheckpointPlan.Every is small, so its
// cost is worth watching), outcome counters, and bytes moved through frames.
var (
	saves       = obs.Default().Counter("checkpoint_saves_total")
	saveErrors  = obs.Default().Counter("checkpoint_save_errors_total")
	saveSeconds = obs.Default().Histogram("checkpoint_save_seconds")
	saveBytes   = obs.Default().Counter("checkpoint_save_bytes_total")
	loads       = obs.Default().Counter("checkpoint_restores_total")
	loadErrors  = obs.Default().Counter("checkpoint_restore_errors_total")
	loadSeconds = obs.Default().Histogram("checkpoint_restore_seconds")
	loadBytes   = obs.Default().Counter("checkpoint_restore_bytes_total")
)

func observeSave(t0 time.Time, frameBytes int, err error) {
	if err != nil {
		saveErrors.Add(1)
		return
	}
	saves.Add(1)
	saveBytes.Add(int64(frameBytes))
	saveSeconds.ObserveSince(t0)
}

func observeLoad(t0 time.Time, frameBytes int, err error) {
	if err != nil {
		loadErrors.Add(1)
		return
	}
	loads.Add(1)
	loadBytes.Add(int64(frameBytes))
	loadSeconds.ObserveSince(t0)
}
