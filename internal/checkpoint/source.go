package checkpoint

import "math/rand"

// Source is a rand.Source64 that counts how many values it has produced, so
// its position in the stream can be serialized and reproduced. It wraps the
// standard library source (every Int63/Uint64 call advances the generator by
// exactly one step), which keeps the bit stream identical to a plain
// rand.NewSource of the same seed — existing seeded expectations stay valid.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// RandState is the serializable position of a Source: re-seeding with Seed
// and discarding Draws values reproduces the generator exactly.
type RandState struct {
	Seed  int64
	Draws uint64
}

// NewSource creates a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// State captures the current stream position.
func (s *Source) State() RandState { return RandState{Seed: s.seed, Draws: s.draws} }

// Restore re-seeds and fast-forwards to the captured position. The underlying
// generator advances one step per produced value regardless of which accessor
// was used, so discarding Draws values lands on the exact stream position.
func (s *Source) Restore(st RandState) {
	s.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Uint64()
	}
	s.draws = st.Draws
}
