package checkpoint

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type demoState struct {
	Name    string
	Counts  map[int]int
	Weights []float64
	Step    int
}

func demo() demoState {
	return demoState{
		Name:    "demo",
		Counts:  map[int]int{0: 3, 7: 1, 2: 9},
		Weights: []float64{0.25, -1.5, 3.75, 0},
		Step:    42,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	want := demo()
	if err := Save(path, "test.demo", want); err != nil {
		t.Fatal(err)
	}
	var got demoState
	if err := Load(path, "test.demo", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Step != want.Step || len(got.Counts) != len(want.Counts) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for k, v := range want.Counts {
		if got.Counts[k] != v {
			t.Fatalf("count[%d] = %d, want %d", k, got.Counts[k], v)
		}
	}
	for i, v := range want.Weights {
		if got.Weights[i] != v {
			t.Fatalf("weight[%d] = %v, want %v", i, got.Weights[i], v)
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Save(path, "test.demo", demo()); err != nil {
		t.Fatal(err)
	}
	second := demo()
	second.Step = 99
	if err := Save(path, "test.demo", second); err != nil {
		t.Fatal(err)
	}
	var got demoState
	if err := Load(path, "test.demo", &got); err != nil {
		t.Fatal(err)
	}
	if got.Step != 99 {
		t.Fatalf("overwrite lost: step = %d", got.Step)
	}
	// No tmp debris may survive a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover tmp file %s", e.Name())
		}
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Save(path, "test.demo", demo()); err != nil {
		t.Fatal(err)
	}
	var got demoState
	if err := Load(path, "test.other", &got); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	var got demoState
	if err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), "test.demo", &got); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestLoadRejectsEveryTruncation cuts the file at every possible length; all
// prefixes must be rejected without panicking.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := Save(path, "test.demo", demo()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ckpt")
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(cut, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		var got demoState
		if err := Load(cut, "test.demo", &got); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(raw))
		}
	}
}

// TestLoadRejectsEveryByteFlip corrupts each byte in turn; the CRC (or an
// earlier framing check) must catch every single-byte error.
func TestLoadRejectsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := Save(path, "test.demo", demo()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5A
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var got demoState
		if err := Load(bad, "test.demo", &got); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
}

func TestLoadRejectsRandomGarbage(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	path := filepath.Join(dir, "junk.ckpt")
	for trial := 0; trial < 50; trial++ {
		junk := make([]byte, rng.Intn(400))
		rng.Read(junk)
		if err := os.WriteFile(path, junk, 0o644); err != nil {
			t.Fatal(err)
		}
		var got demoState
		if err := Load(path, "test.demo", &got); err == nil {
			t.Fatalf("random garbage (%d bytes, trial %d) accepted", len(junk), trial)
		}
	}
}

// TestSourceRestoreReproducesStream is the RNG fast-forward contract: after
// Restore, a source must emit exactly the values the original would have.
func TestSourceRestoreReproducesStream(t *testing.T) {
	src := NewSource(1234)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.Float64()
		rng.Intn(10)
	}
	st := src.State()
	want := make([]float64, 20)
	for i := range want {
		want[i] = rng.Float64()
	}

	resumed := NewSource(0)
	resumed.Restore(st)
	rng2 := rand.New(resumed)
	for i, w := range want {
		if got := rng2.Float64(); got != w {
			t.Fatalf("draw %d after restore = %v, want %v", i, got, w)
		}
	}
	if resumed.State().Draws != src.State().Draws {
		t.Fatalf("draw counters diverged: %d vs %d", resumed.State().Draws, src.State().Draws)
	}
}

// TestSourceMatchesPlainSource pins that the wrapper does not perturb the
// stdlib bit stream (all pre-existing seeded expectations stay valid).
func TestSourceMatchesPlainSource(t *testing.T) {
	a := rand.New(NewSource(77))
	b := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: wrapper %d != plain %d", i, x, y)
		}
	}
}

func TestSourceStateRoundTripThroughFile(t *testing.T) {
	src := NewSource(5)
	rng := rand.New(src)
	for i := 0; i < 31; i++ {
		rng.Uint64()
	}
	path := filepath.Join(t.TempDir(), "rng.ckpt")
	if err := Save(path, "test.rng", src.State()); err != nil {
		t.Fatal(err)
	}
	var st RandState
	if err := Load(path, "test.rng", &st); err != nil {
		t.Fatal(err)
	}
	resumed := NewSource(0)
	resumed.Restore(st)
	if got, want := rand.New(resumed).Uint64(), rng.Uint64(); got != want {
		t.Fatalf("restored source diverged: %d vs %d", got, want)
	}
}
