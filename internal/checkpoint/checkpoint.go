// Package checkpoint provides crash-safe persistence for learner state:
// versioned, CRC-checked binary snapshot files written atomically (tmp file +
// rename), plus a restorable pseudo-random source so a resumed run replays
// the exact random stream of the uninterrupted one.
//
// File layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "CHAMCKP1"
//	8       4     uint32 format version (currently 1)
//	12      2     uint16 kind length
//	14      k     kind tag (ASCII, e.g. "cl.run")
//	14+k    8     uint64 payload length
//	22+k    n     gob-encoded payload
//	22+k+n  4     uint32 CRC-32 (IEEE) over everything before this field
//
// The kind tag namespaces payload schemas so a file saved by one subsystem is
// never silently decoded by another; the CRC makes any corruption — a flipped
// bit, a truncated write, a stray append — a load error instead of a subtly
// wrong learner.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

const (
	magic   = "CHAMCKP1"
	version = 1
	// headerLen is the fixed-size prefix before the kind tag.
	headerLen = len(magic) + 4 + 2
	// maxKindLen bounds the kind tag so a corrupt length field cannot drive
	// a huge slice bound.
	maxKindLen = 255
)

// Encode gob-encodes v (shared by the learner state codecs).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes data into v.
func Decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Save atomically writes payload as a checkpoint file of the given kind. The
// frame is assembled in memory, written to a sibling tmp file, fsynced, and
// renamed over path, so a crash mid-save leaves either the old file or the
// new one — never a torn hybrid.
func Save(path, kind string, payload any) error {
	t0 := time.Now()
	n, err := save(path, kind, payload)
	observeSave(t0, n, err)
	return err
}

// save implements Save and reports the frame size for the byte counters.
func save(path, kind string, payload any) (int, error) {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return 0, fmt.Errorf("checkpoint: kind %q must be 1..%d bytes", kind, maxKindLen)
	}
	body, err := Encode(payload)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encode %s: %w", kind, err)
	}
	frame := make([]byte, 0, headerLen+len(kind)+8+len(body)+4)
	frame = append(frame, magic...)
	frame = binary.LittleEndian.AppendUint32(frame, version)
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(kind)))
	frame = append(frame, kind...)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return len(frame), nil
}

// Load reads a checkpoint file, verifies framing, kind and CRC, and decodes
// the payload into out. Every validation failure is an error; corrupt or
// truncated files never panic and never half-populate out.
func Load(path, kind string, out any) error {
	t0 := time.Now()
	n, err := load(path, kind, out)
	observeLoad(t0, n, err)
	return err
}

// load implements Load and reports the frame size for the byte counters.
func load(path, kind string, out any) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(raw) < headerLen+4 {
		return 0, fmt.Errorf("checkpoint: %s: file too short (%d bytes)", path, len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return 0, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	off := len(magic)
	if v := binary.LittleEndian.Uint32(raw[off:]); v != version {
		return 0, fmt.Errorf("checkpoint: %s: format version %d, want %d", path, v, version)
	}
	off += 4
	kindLen := int(binary.LittleEndian.Uint16(raw[off:]))
	off += 2
	if kindLen == 0 || kindLen > maxKindLen || len(raw) < off+kindLen+8+4 {
		return 0, fmt.Errorf("checkpoint: %s: truncated in kind tag", path)
	}
	gotKind := string(raw[off : off+kindLen])
	off += kindLen
	if gotKind != kind {
		return 0, fmt.Errorf("checkpoint: %s: kind %q, want %q", path, gotKind, kind)
	}
	bodyLen := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	// The declared payload length must account for exactly the bytes present
	// (minus the trailing CRC); this bounds every later slice access.
	if uint64(len(raw)-off-4) != bodyLen {
		return 0, fmt.Errorf("checkpoint: %s: payload length %d does not match file size", path, bodyLen)
	}
	body := raw[off : off+int(bodyLen)]
	stored := binary.LittleEndian.Uint32(raw[off+int(bodyLen):])
	if sum := crc32.ChecksumIEEE(raw[:off+int(bodyLen)]); sum != stored {
		return 0, fmt.Errorf("checkpoint: %s: CRC mismatch (file %08x, computed %08x)", path, stored, sum)
	}
	if err := Decode(body, out); err != nil {
		return 0, fmt.Errorf("checkpoint: %s: decode %s: %w", path, kind, err)
	}
	return len(raw), nil
}
