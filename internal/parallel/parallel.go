// Package parallel is the repository's shared compute pool: a bounded
// fork-join primitive that the numeric kernels (internal/tensor), the latent
// extraction data plane (internal/cl) and the experiment harness
// (internal/exp) all shard work through.
//
// The design goals, in order:
//
//  1. Determinism. For splits an index range into contiguous chunks and every
//     chunk computes exactly what the serial loop would; only the scheduling
//     of chunks varies. Callers that write disjoint output regions per index
//     therefore produce bit-identical results at any worker count.
//  2. Bounded concurrency. A single process-wide token semaphore caps the
//     number of extra goroutines at Workers()-1 no matter how deeply For
//     calls nest (experiment grid → multi-seed runs → GEMM shards). When no
//     token is available a chunk runs inline on the caller's goroutine, so
//     nesting can never deadlock and the hot path degrades gracefully to the
//     serial loop.
//  3. Zero cost when serial. With Workers() == 1 (the default on a
//     single-core host) For is a direct function call: no goroutines, no
//     channels, no allocations.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// state bundles the worker count with its token semaphore so both swap
// atomically under SetWorkers.
type state struct {
	workers int
	// tokens holds workers-1 tokens: the caller's goroutine is the implicit
	// first worker, extra goroutines each hold one token while running.
	tokens chan struct{}
}

var current atomic.Pointer[state]

func init() {
	SetWorkers(runtime.GOMAXPROCS(0))
}

// SetWorkers sets the process-wide worker budget. n <= 0 resets to
// GOMAXPROCS. Chunks already running keep their tokens from the previous
// budget; new work sees the new budget immediately.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &state{workers: n}
	if n > 1 {
		s.tokens = make(chan struct{}, n-1)
		for i := 0; i < n-1; i++ {
			s.tokens <- struct{}{}
		}
	}
	current.Store(s)
}

// Workers returns the current worker budget.
func Workers() int { return current.Load().workers }

// For runs body over the half-open index range [0, n), split into contiguous
// chunks of at least grain indices each, using up to Workers() goroutines
// (including the caller's). body(lo, hi) must handle the sub-range [lo, hi)
// and, for determinism, must only write state that is disjoint across
// indices. For returns once every index has been processed.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	forCalls.Add(1)
	s := current.Load()
	if s.workers <= 1 || n <= grain {
		chunksInline.Add(1)
		body(0, n)
		return
	}
	// Chunk count: enough to use every worker, but never smaller than grain.
	chunks := (n + grain - 1) / grain
	if chunks > s.workers {
		chunks = s.workers
	}
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if hi == n {
			// Always run the final chunk inline: the caller participates, and
			// a fully-contended pool degrades to the plain serial loop.
			chunksInline.Add(1)
			body(lo, hi)
			break
		}
		select {
		case <-s.tokens:
			chunksSpawned.Add(1)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { s.tokens <- struct{}{} }()
				body(lo, hi)
			}(lo, hi)
		default:
			chunksInline.Add(1)
			body(lo, hi)
		}
	}
	wg.Wait()
}

// Do runs the given tasks with the same bounded fan-out as For: each task is
// one chunk. It is the experiment plane's primitive for "run these
// independent cells concurrently".
func Do(tasks ...func()) {
	For(len(tasks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tasks[i]()
		}
	})
}
