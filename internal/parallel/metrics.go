package parallel

import "chameleon/internal/obs"

// Pool observability. The gauges are functions so a scrape reads the live
// pool state (queue depth = free tokens); the counters separate chunks that
// ran on borrowed goroutines from chunks the caller absorbed inline, which
// together measure shard utilisation: spawned/(spawned+inline) ≈ how often
// the pool actually fans out versus degrading to the serial loop.
var (
	forCalls      = obs.Default().Counter("parallel_for_calls_total")
	chunksSpawned = obs.Default().Counter("parallel_chunks_spawned_total")
	chunksInline  = obs.Default().Counter("parallel_chunks_inline_total")
)

func init() {
	obs.Default().GaugeFunc("parallel_workers", func() float64 {
		return float64(Workers())
	})
	obs.Default().GaugeFunc("parallel_tokens_free", func() float64 {
		s := current.Load()
		if s == nil || s.tokens == nil {
			return 0
		}
		return float64(len(s.tokens))
	})
}
