package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// reset restores the default budget after a test that changes it.
func reset() { SetWorkers(runtime.GOMAXPROCS(0)) }

func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer reset()
	for _, workers := range []int{1, 2, 4, 7} {
		SetWorkers(workers)
		for _, n := range []int{0, 1, 2, 3, 16, 100, 1023} {
			for _, grain := range []int{0, 1, 7, 64, 5000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForSerialWhenOneWorker(t *testing.T) {
	defer reset()
	SetWorkers(1)
	// With one worker every chunk must run on the caller's goroutine, so an
	// unsynchronised counter is safe and ordering is the loop order.
	last := -1
	For(100, 1, func(lo, hi int) {
		if lo != last+1 {
			t.Fatalf("out-of-order chunk [%d,%d) after %d", lo, hi, last)
		}
		last = hi - 1
	})
	if last != 99 {
		t.Fatalf("last index %d, want 99", last)
	}
}

func TestForNestedDoesNotDeadlock(t *testing.T) {
	defer reset()
	SetWorkers(4)
	var total int64
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(16, 1, func(ilo, ihi int) {
				For(4, 1, func(jlo, jhi int) {
					atomic.AddInt64(&total, int64((ihi-ilo)*(jhi-jlo)))
				})
			})
		}
	})
	if total != 8*16*4 {
		t.Fatalf("nested total %d, want %d", total, 8*16*4)
	}
}

func TestSetWorkers(t *testing.T) {
	defer reset()
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

func TestDo(t *testing.T) {
	defer reset()
	SetWorkers(4)
	var ran [5]int32
	Do(
		func() { atomic.AddInt32(&ran[0], 1) },
		func() { atomic.AddInt32(&ran[1], 1) },
		func() { atomic.AddInt32(&ran[2], 1) },
		func() { atomic.AddInt32(&ran[3], 1) },
		func() { atomic.AddInt32(&ran[4], 1) },
	)
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("task %d ran %d times", i, r)
		}
	}
}
