// Package testenv provides the shared test environment: a small synthetic
// CORe50/OpenLORIS benchmark with a pretrained frozen backbone and extracted
// latents, built once per process and cached on disk so every test package
// and the benchmark suite reuse it. The first build takes ~30 s on one core;
// afterwards loading is instant.
//
// The pipeline mirrors internal/exp's TestScale tier but is implemented
// locally so low-level packages (baselines, core) can use it without
// importing exp (which imports them back).
package testenv

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"chameleon/internal/cl"
	"chameleon/internal/data"
	"chameleon/internal/mobilenet"
	"chameleon/internal/tensor"
)

// Params are the environment's learning knobs, matching exp.TestScale.
type Params struct {
	HeadLR      float64
	JointLR     float64
	JointEpochs int
}

// Scale returns the environment's learning parameters.
func Scale() Params { return Params{HeadLR: 0.05, JointLR: 0.1, JointEpochs: 6} }

var (
	mu   sync.Mutex
	sets = map[string]*cl.LatentSet{}
)

// Env returns the cached latent set for the dataset ("core50" or
// "openloris"), building it on first use.
func Env(tb testing.TB, dataset string) *cl.LatentSet {
	tb.Helper()
	set, err := Build(dataset)
	if err != nil {
		tb.Fatalf("testenv: %v", err)
	}
	return set
}

// Build returns the latent set without a testing handle (examples use this).
func Build(dataset string) (*cl.LatentSet, error) {
	mu.Lock()
	defer mu.Unlock()
	if set, ok := sets[dataset]; ok {
		return set, nil
	}
	set, err := build(dataset)
	if err != nil {
		return nil, err
	}
	sets[dataset] = set
	return set, nil
}

func datasetConfig(name string) (data.Config, error) {
	switch name {
	case "core50":
		return data.Config{
			Name: "core50", NumClasses: 10, NumDomains: 6, TestDomains: []int{2, 5},
			Resolution: 32, SessionsPerClassDomain: 2, FramesPerSession: 8,
			TestFramesPerClassDomain: 5, Severity: 0.9, Seed: 11,
		}, nil
	case "openloris":
		return data.Config{
			Name: "openloris", NumClasses: 10, NumDomains: 7, TestDomains: []int{3, 6},
			Resolution: 32, SessionsPerClassDomain: 2, FramesPerSession: 10,
			TestFramesPerClassDomain: 5, Severity: 0.5, Smooth: true, Seed: 12,
		}, nil
	default:
		return data.Config{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func build(dataset string) (*cl.LatentSet, error) {
	dcfg, err := datasetConfig(dataset)
	if err != nil {
		return nil, err
	}
	model := mobilenet.Config{
		Width: 0.25, Resolution: 32, LatentLayer: 21,
		Head: mobilenet.HeadMLP, HiddenDim: 64,
		NumClasses: dcfg.NumClasses, Seed: 8,
	}
	key := sha256.Sum256([]byte(fmt.Sprintf("testenv-v2|%+v|%+v", dcfg, model)))
	cachePath := filepath.Join(os.TempDir(), "chameleon-cache",
		fmt.Sprintf("testenv-%s-%s.latents", dataset, hex.EncodeToString(key[:8])))
	if set, err := cl.LoadLatentSet(cachePath); err == nil {
		return set, nil
	}

	// Pretraining pool (disjoint classes).
	pds, err := data.Generate(data.Config{
		Name: "pretrain", NumClasses: 16, NumDomains: 5, TestDomains: []int{4},
		Resolution: 32, SessionsPerClassDomain: 2, FramesPerSession: 4,
		TestFramesPerClassDomain: 1, Severity: 1.0, Seed: 999,
	})
	if err != nil {
		return nil, err
	}
	pmCfg := model
	pmCfg.NumClasses = 16
	pmCfg.Seed = 7
	pm, err := mobilenet.New(pmCfg)
	if err != nil {
		return nil, err
	}
	imgs := make([]*tensor.Tensor, pds.NumTrain())
	labels := make([]int, pds.NumTrain())
	for _, s := range pds.Train {
		imgs[s.ID] = s.Image
		labels[s.ID] = s.Label
	}
	if _, err := pm.Pretrain(imgs, labels, mobilenet.PretrainConfig{
		Epochs: 18, LR: 0.01, Momentum: 0.8, BatchSize: 8, Seed: 1,
	}); err != nil {
		return nil, err
	}

	ds, err := data.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	m, err := mobilenet.New(model)
	if err != nil {
		return nil, err
	}
	if err := m.CopyFeaturesFrom(pm); err != nil {
		return nil, err
	}
	set, err := cl.NewLatentSet(m, ds)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(cachePath), 0o755); err == nil {
		_ = cl.SaveLatentSet(cachePath, set) // best effort
	}
	return set, nil
}
