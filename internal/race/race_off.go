//go:build !race

// Package race reports whether the race detector instruments this build.
// The strict AllocsPerRun == 0 regression tests skip under -race: the
// instrumentation itself allocates, which would make the pin flaky without
// telling us anything about the production hot path (check.sh runs the
// allocation gate in a separate non-race pass).
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
