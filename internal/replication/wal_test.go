package replication

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chameleon/internal/api"
	"chameleon/internal/obs"
)

func testOptions() Options {
	return Options{Registry: obs.NewRegistry()}
}

func openTestLog(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

// testRecord builds a deterministic record; seq is assigned by Append.
func testRecord(rng *rand.Rand, batch int, user string) *api.LogRecord {
	n := 1 + rng.Intn(3)
	rec := &api.LogRecord{User: user, Batch: batch, Domain: rng.Intn(4)}
	for i := 0; i < n; i++ {
		lat := make([]float32, 4)
		for j := range lat {
			lat[j] = float32(rng.NormFloat64())
		}
		rec.Samples = append(rec.Samples, api.LogSample{Latent: lat, Label: rng.Intn(10)})
	}
	return rec
}

func appendN(t *testing.T, l *Log, n int, seed int64) []api.LogRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := int(l.End())
	out := make([]api.LogRecord, 0, n)
	for i := 0; i < n; i++ {
		user := ""
		if i%3 == 1 {
			user = fmt.Sprintf("u%d", i%5)
		}
		rec := testRecord(rng, base+i, user)
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(base+i) {
			t.Fatalf("Append assigned seq %d, want %d", seq, base+i)
		}
		out = append(out, *rec)
	}
	return out
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := openTestLog(t, t.TempDir(), testOptions())
	want := appendN(t, l, 20, 1)

	got, err := l.ReadFrom(0, 100)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if l.End() != 20 || l.Start() != 0 {
		t.Fatalf("End=%d Start=%d, want 20, 0", l.End(), l.Start())
	}
	// Paged reads resume at the cursor.
	page, err := l.ReadFrom(15, 3)
	if err != nil {
		t.Fatalf("ReadFrom(15): %v", err)
	}
	if len(page) != 3 || page[0].Seq != 15 || page[2].Seq != 17 {
		t.Fatalf("page from 15: %+v", page)
	}
	if rs, err := l.ReadFrom(20, 10); err != nil || rs != nil {
		t.Fatalf("ReadFrom(End) = %v, %v; want nil, nil", rs, err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, testOptions())
	first := appendN(t, l, 7, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTestLog(t, dir, testOptions())
	if l2.End() != 7 {
		t.Fatalf("reopened End=%d, want 7", l2.End())
	}
	second := appendN(t, l2, 5, 3)
	got, err := l2.ReadFrom(0, 100)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	want := append(first, second...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen lost records: got %d, want %d", len(got), len(want))
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions()
	opt.SegmentBytes = 256 // force rotation every couple of records
	l := openTestLog(t, dir, opt)
	want := appendN(t, l, 40, 4)

	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	// Scan crosses segment boundaries in order.
	var got []api.LogRecord
	if err := l.Scan(0, func(r *api.LogRecord) bool {
		got = append(got, *r)
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan across segments diverged (got %d records, want %d)", len(got), len(want))
	}
	// So does a reopen.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := openTestLog(t, dir, testOptions())
	if l2.End() != 40 {
		t.Fatalf("End after reopen = %d, want 40", l2.End())
	}
	mid, err := l2.ReadFrom(17, 100)
	if err != nil {
		t.Fatalf("ReadFrom(17): %v", err)
	}
	if !reflect.DeepEqual(mid, want[17:]) {
		t.Fatalf("ReadFrom(17) mismatch")
	}
}

func TestTornTailTruncatesCleanly(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, testOptions())
	want := appendN(t, l, 10, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail at several depths: a few bytes into the last payload,
	// inside the frame header, and exactly one byte short of complete.
	seg := onlySegment(t, dir)
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, frameHeaderLen - 1, frameHeaderLen + 3} {
		if err := os.WriteFile(seg, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, testOptions())
		if err != nil {
			t.Fatalf("Open after %d-byte tear: %v", cut, err)
		}
		if l2.End() != 9 {
			t.Fatalf("after tear: End=%d, want 9 (last record dropped)", l2.End())
		}
		got, err := l2.ReadFrom(0, 100)
		if err != nil {
			t.Fatalf("ReadFrom after tear: %v", err)
		}
		if !reflect.DeepEqual(got, want[:9]) {
			t.Fatalf("torn-tail recovery is not the clean 9-record prefix")
		}
		// Appending continues at the truncated seq.
		rec := testRecord(rand.New(rand.NewSource(9)), 9, "")
		if seq, err := l2.Append(rec); err != nil || seq != 9 {
			t.Fatalf("append after tear: seq=%d err=%v, want 9, nil", seq, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMidSegmentCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, testOptions())
	appendN(t, l, 10, 6)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := onlySegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record: a CRC mismatch with data
	// after it must refuse to open — truncating here would silently drop
	// nine acknowledged batches and desynchronize every replica.
	bad := append([]byte(nil), raw...)
	bad[segHeaderLen+frameHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(seg, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-segment damage: err=%v, want ErrCorrupt", err)
	}
	// Reads hit the same wall (the damage is before the cursor's segment end).
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTestLog(t, dir, testOptions())
	if err := os.WriteFile(seg, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.ReadFrom(0, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadFrom over damage: err=%v, want ErrCorrupt", err)
	}
}

// TestCorruptionFuzz flips every single byte of a small log, one at a time,
// and requires Open to either recover a clean prefix of the original records
// or fail with an error — never panic, never return records that differ from
// what was appended.
func TestCorruptionFuzz(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, testOptions())
	want := appendN(t, l, 6, 7)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := onlySegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for pos := 0; pos < len(raw); pos++ {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x5A
		if err := os.WriteFile(seg, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Registry: obs.NewRegistry()})
		if err != nil {
			continue // refused loudly: acceptable for any damage
		}
		got, rerr := l2.ReadFrom(0, 100)
		_ = l2.Close()
		if rerr != nil {
			continue
		}
		// Whatever survived must be a clean prefix of the truth. (A flipped
		// byte that still CRC-validates is a ~2^-32 event; the seed is fixed,
		// so this stays deterministic.)
		if len(got) > len(want) {
			t.Fatalf("byte %d: recovered %d records from a %d-record log", pos, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("byte %d: record %d diverged after recovery", pos, i)
			}
		}
	}
	// Restore the pristine file so Cleanup's Close path is happy.
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestartsAtCursor(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, testOptions())
	appendN(t, l, 5, 8)
	if err := l.Reset(42); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.End() != 42 || l.Start() != 42 {
		t.Fatalf("after Reset: End=%d Start=%d, want 42, 42", l.End(), l.Start())
	}
	// The old records are gone; a pre-start cursor is a loud error (the
	// caller needs a fresh snapshot, not silence).
	if _, err := l.ReadFrom(3, 10); err == nil {
		t.Fatal("ReadFrom before Start succeeded; want error")
	}
	rec := testRecord(rand.New(rand.NewSource(1)), 42, "")
	if seq, err := l.Append(rec); err != nil || seq != 42 {
		t.Fatalf("append after Reset: seq=%d err=%v", seq, err)
	}
}

func TestStartSeqOnEmptyDir(t *testing.T) {
	opt := testOptions()
	opt.StartSeq = 31
	l := openTestLog(t, t.TempDir(), opt)
	if l.End() != 31 || l.Start() != 31 {
		t.Fatalf("StartSeq: End=%d Start=%d, want 31", l.End(), l.Start())
	}
}

func TestUserIDTooLongRejected(t *testing.T) {
	l := openTestLog(t, t.TempDir(), testOptions())
	rec := &api.LogRecord{User: string(make([]byte, maxUserLen+1))}
	if _, err := l.Append(rec); err == nil {
		t.Fatal("overlong user id accepted")
	}
}

// onlySegment returns the single segment file in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(names) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", names, err)
	}
	return names[0]
}
