// Package replication makes a served learner highly available: a durable
// observe log (write-ahead log, this file) on the serve path plus a warm
// standby (follower.go) that streams snapshots and log deltas from the
// primary over HTTP and can take traffic with bit-identical learner state.
//
// The observe log is the durability root. The learner itself is an in-memory
// object; its durable truth is (base snapshot, log suffix): every accepted
// /v1/observe batch is appended here — CRC-framed, fsync-batched,
// segment-rotated — before the engine applies it, so any learner state is
// reconstructible by restoring the snapshot and replaying records from the
// snapshot's cursor. That one property powers three features:
//
//   - crash recovery: a restarted primary restores its last checkpoint and
//     replays the log tail the checkpoint missed,
//   - warm standby: the follower applies the same records in the same order
//     through the same engine, staying bit-identical at every sync point,
//   - fleet fault-in repair: a corrupt per-user eviction checkpoint is
//     rebuilt from deterministic reconstruction plus the user's log records.
//
// Durability model: a record is written with a direct write(2) before the
// observe is acknowledged, so acknowledged batches survive process death
// (SIGKILL) — the bytes live in the page cache. fsync is batched (every
// Options.SyncEvery appends, and always on rotation and Close), so machine
// crashes can lose at most the last unsynced batch of records; the CRC
// framing and torn-tail truncation make any such loss a clean prefix, never
// a corrupt state.
//
// File format (all integers little-endian). A log is a directory of segment
// files named wal-<first-seq>.log:
//
//	segment header:
//	  offset  size  field
//	  0       8     magic "CHAMWAL1"
//	  8       4     uint32 format version (currently 1)
//	  12      8     uint64 sequence number of the segment's first record
//	record frame (repeated to EOF):
//	  0       4     uint32 payload length
//	  4       4     uint32 CRC-32 (IEEE) over the payload
//	  8       n     payload (see encodeRecord)
//
// Recovery rule: scanning a segment, a frame that is incomplete or fails its
// CRC *and reaches end of file* is a torn tail — the segment is truncated to
// the last good frame and appending continues. A bad frame with further
// bytes after it is real corruption and Open fails loudly: silently skipping
// a mid-log record would desynchronize every replica.
package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/obs"
)

const (
	segMagic   = "CHAMWAL1"
	segVersion = 1
	// segHeaderLen is the fixed segment prefix: magic + version + first seq.
	segHeaderLen = len(segMagic) + 4 + 8
	// frameHeaderLen prefixes every record: payload length + payload CRC.
	frameHeaderLen = 8
	// maxRecordBytes bounds one record so a corrupt length field can never
	// drive a huge allocation (64 MiB clears any legal observe batch).
	maxRecordBytes = 64 << 20
	// maxUserLen mirrors the fleet's user-id bound.
	maxUserLen = 255
)

// ErrCorrupt reports mid-segment corruption: a record that fails its CRC (or
// frames impossibly) with valid data after it. Unlike a torn tail this is
// not survivable by truncation — the log's integrity is gone.
var ErrCorrupt = errors.New("replication: observe log corrupt")

// Options sizes a Log. The zero value of every field selects a default.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one exceeds
	// this size (default 4 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after this many appends (default
	// 16; 1 syncs every append). Rotation and Close always sync.
	SyncEvery int
	// StartSeq is the sequence number of the first record when the directory
	// is empty (a standby's log starts at its snapshot cursor). Ignored when
	// the directory already holds records.
	StartSeq uint64
	// Registry receives the log metrics (nil: the process default).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	return o
}

// segment is one on-disk segment file.
type segment struct {
	path  string
	first uint64 // seq of the segment's first record
}

// Log is a durable observe log over one directory. Append, ReadFrom, End and
// Sync are safe for concurrent use; one process must own the directory.
type Log struct {
	dir string
	opt Options
	m   *metrics

	mu       sync.Mutex
	segs     []segment // ascending by first; last is active
	f        *os.File  // active segment, opened for append
	size     int64     // active segment's current size
	next     uint64    // next sequence number to assign
	unsynced int       // appends since the last fsync
}

// Open opens (or creates) the log directory, recovers the last segment —
// truncating a torn tail, failing on mid-segment corruption — and positions
// the log to append the next record.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replication: wal dir: %w", err)
	}
	l := &Log{dir: dir, opt: opt, m: newMetrics(opt.Registry)}
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.newSegment(opt.StartSeq); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Recover the newest segment: replay its frames to find the end (and the
	// next sequence number), truncating a torn tail in place.
	last := l.segs[len(l.segs)-1]
	end, next, err := recoverSegment(last.path)
	if err != nil {
		return nil, err
	}
	if next == 0 {
		// Empty segment: the next seq is the header's first.
		next = last.first
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replication: reopen %s: %w", last.path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("replication: seek %s: %w", last.path, err)
	}
	l.f, l.size, l.next = f, end, next
	l.m.segments.Set(float64(len(l.segs)))
	return l, nil
}

// scanSegments lists and orders the directory's segment files.
func (l *Log) scanSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			return fmt.Errorf("replication: unparseable segment name %s", name)
		}
		l.segs = append(l.segs, segment{path: filepath.Join(l.dir, name), first: first})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	return nil
}

// segName formats a segment file name; fixed-width so lexical order matches
// numeric order.
func segName(first uint64) string { return fmt.Sprintf("wal-%020d.log", first) }

// newSegment creates and activates a fresh segment whose first record will
// carry seq first. The previous active segment (if any) is synced and closed.
func (l *Log) newSegment(first uint64) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("replication: close segment: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("replication: create segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("replication: segment header: %w", err)
	}
	l.segs = append(l.segs, segment{path: path, first: first})
	l.f, l.size, l.next = f, int64(segHeaderLen), first
	l.m.segments.Set(float64(len(l.segs)))
	return nil
}

// Append assigns the next sequence number to r, writes it durably (write(2)
// now, fsync batched) and returns the assigned seq. r.Seq is overwritten.
func (l *Log) Append(r *api.LogRecord) (uint64, error) {
	if len(r.User) > maxUserLen {
		return 0, fmt.Errorf("replication: user id longer than %d bytes", maxUserLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("replication: log is closed")
	}
	t0 := time.Now()
	r.Seq = l.next
	payload := encodeRecord(r)
	frame := make([]byte, 0, frameHeaderLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("replication: append seq %d: %w", r.Seq, err)
	}
	l.size += int64(len(frame))
	l.next++
	l.unsynced++
	l.m.appends.Inc()
	l.m.appendBytes.Add(int64(len(frame)))
	if l.unsynced >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if l.size >= l.opt.SegmentBytes {
		if err := l.newSegment(l.next); err != nil {
			return 0, err
		}
	}
	l.m.appendSeconds.ObserveSince(t0)
	return r.Seq, nil
}

// Sync flushes all appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || l.unsynced == 0 {
		return nil
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("replication: fsync: %w", err)
	}
	l.unsynced = 0
	l.m.fsyncs.Inc()
	l.m.fsyncSeconds.ObserveSince(t0)
	return nil
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// End returns the log's exclusive end: the sequence number the next Append
// will assign.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Start returns the sequence number of the oldest record the log holds (the
// first segment's first seq).
func (l *Log) Start() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.next
	}
	return l.segs[0].first
}

// ReadFrom returns up to max records with sequence numbers in [after, End),
// in order. Requesting a cursor older than the log's start is an error (the
// caller needs a fresh snapshot); requesting at or past End returns nil.
func (l *Log) ReadFrom(after uint64, max int) ([]api.LogRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= l.next {
		return nil, nil
	}
	if len(l.segs) == 0 || after < l.segs[0].first {
		return nil, fmt.Errorf("replication: cursor %d precedes log start %d", after, l.Startlocked())
	}
	// Sync before reading through a fresh descriptor so the page-cache view
	// is complete (reads go through the same cache, but a zero-length tail
	// race is cheap to rule out under the lock).
	out := make([]api.LogRecord, 0, max)
	// Locate the segment containing `after`: the last segment whose first
	// seq is <= after.
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].first > after })
	for si := i - 1; si < len(l.segs) && len(out) < max; si++ {
		recs, err := readSegment(l.segs[si].path, after, max-len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
		if len(out) > 0 {
			after = out[len(out)-1].Seq + 1
		}
	}
	return out, nil
}

// Startlocked is Start without re-taking the mutex (callers hold it).
func (l *Log) Startlocked() uint64 {
	if len(l.segs) == 0 {
		return l.next
	}
	return l.segs[0].first
}

// Scan streams every record with seq >= after through fn, in order, without
// materialising the whole suffix (the fleet's per-user rebuild walks the
// full log this way). fn returning false stops the scan early.
func (l *Log) Scan(after uint64, fn func(*api.LogRecord) bool) error {
	const page = 256
	for {
		recs, err := l.ReadFrom(after, page)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		for i := range recs {
			if !fn(&recs[i]) {
				return nil
			}
		}
		after = recs[len(recs)-1].Seq + 1
	}
}

// Reset discards every record and restarts the (empty) log at startSeq — the
// standby's bootstrap path: its local log must mirror the snapshot cursor it
// restored, so any stale records from a previous incarnation are dropped.
func (l *Log) Reset(startSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("replication: close segment: %w", err)
		}
		l.f = nil
	}
	for _, s := range l.segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("replication: reset: %w", err)
		}
	}
	l.segs, l.size, l.unsynced = nil, 0, 0
	return l.newSegment(startSeq)
}

// Close syncs and closes the active segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// encodeRecord serialises one record payload:
//
//	uint64 seq
//	uint16 user length, user bytes
//	uint32 batch
//	int32  domain
//	uint32 sample count
//	per sample: uint32 label, uint32 latent length, latent float32 bits
func encodeRecord(r *api.LogRecord) []byte {
	n := 8 + 2 + len(r.User) + 4 + 4 + 4
	for _, s := range r.Samples {
		n += 4 + 4 + 4*len(s.Latent)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.User)))
	b = append(b, r.User...)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Batch))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Domain)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Samples)))
	for _, s := range r.Samples {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(s.Label)))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Latent)))
		for _, v := range s.Latent {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
		}
	}
	return b
}

// decodeRecord parses one record payload. Every length is validated against
// the remaining bytes, so hostile or corrupt payloads error instead of
// panicking.
func decodeRecord(b []byte) (api.LogRecord, error) {
	var r api.LogRecord
	rd := byteReader{b: b}
	r.Seq = rd.u64()
	userLen := int(rd.u16())
	user := rd.bytes(userLen)
	r.User = string(user)
	r.Batch = int(int32(rd.u32()))
	r.Domain = int(int32(rd.u32()))
	nSamples := int(rd.u32())
	if rd.err == nil && nSamples > len(rd.b)/8+1 {
		return r, fmt.Errorf("replication: record declares %d samples in %d bytes", nSamples, len(b))
	}
	if rd.err == nil {
		r.Samples = make([]api.LogSample, 0, nSamples)
		for i := 0; i < nSamples; i++ {
			label := int(int32(rd.u32()))
			latLen := int(rd.u32())
			if rd.err == nil && latLen > len(rd.b)/4 {
				return r, fmt.Errorf("replication: sample declares %d floats in %d bytes", latLen, len(rd.b))
			}
			lat := make([]float32, latLen)
			for j := range lat {
				lat[j] = math.Float32frombits(rd.u32())
			}
			r.Samples = append(r.Samples, api.LogSample{Latent: lat, Label: label})
		}
	}
	if rd.err != nil {
		return r, rd.err
	}
	if len(rd.b) != 0 {
		return r, fmt.Errorf("replication: %d trailing bytes in record payload", len(rd.b))
	}
	return r, nil
}

// byteReader is a bounds-checked little-endian cursor; the first short read
// latches err and every later read returns zero.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("replication: record payload truncated (want %d bytes, have %d)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *byteReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *byteReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *byteReader) bytes(n int) []byte { return r.take(n) }

// readSegmentHeader validates a segment's fixed prefix and returns its first
// sequence number.
func readSegmentHeader(f *os.File, path string) (uint64, error) {
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(segMagic):]); v != segVersion {
		return 0, fmt.Errorf("replication: %s: format version %d, want %d", path, v, segVersion)
	}
	return binary.LittleEndian.Uint64(hdr[len(segMagic)+4:]), nil
}

// recoverSegment scans a segment, validating every frame. It returns the
// byte offset after the last good frame and the sequence number after the
// last good record (0 if the segment holds none). A bad frame at the very
// tail is truncated away (torn write); a bad frame with data after it is
// ErrCorrupt.
func recoverSegment(path string) (end int64, next uint64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("replication: %w", err)
	}
	if len(raw) < segHeaderLen {
		return 0, 0, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if string(raw[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(raw[len(segMagic):]); v != segVersion {
		return 0, 0, fmt.Errorf("replication: %s: format version %d, want %d", path, v, segVersion)
	}
	first := binary.LittleEndian.Uint64(raw[len(segMagic)+4:])
	off := int64(segHeaderLen)
	next = 0
	for {
		frameEnd, seq, ok, ferr := checkFrame(raw, off)
		if ferr != nil {
			return 0, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, path, off, ferr)
		}
		if !ok {
			// Torn tail: drop the partial frame.
			if frameEnd != int64(len(raw)) {
				// checkFrame only reports !ok for tail frames; anything else
				// is a bug guard.
				return 0, 0, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, path, off)
			}
			if err := os.Truncate(path, off); err != nil {
				return 0, 0, fmt.Errorf("replication: truncate torn tail of %s: %w", path, err)
			}
			break
		}
		if next == 0 && seq != first && off == int64(segHeaderLen) {
			return 0, 0, fmt.Errorf("%w: %s: first record seq %d, header says %d", ErrCorrupt, path, seq, first)
		}
		off = frameEnd
		next = seq + 1
		if off == int64(len(raw)) {
			break
		}
	}
	return off, next, nil
}

// checkFrame validates the frame starting at off. It returns the frame's end
// offset and the record's seq when the frame is whole and its payload
// decodes (ok). A frame that is incomplete, CRC-broken or undecodable AND
// extends to end of data reports ok=false with frameEnd=len(raw) (a torn
// tail, survivable); the same damage with bytes after the frame is an error.
func checkFrame(raw []byte, off int64) (frameEnd int64, seq uint64, ok bool, err error) {
	rest := raw[off:]
	if len(rest) < frameHeaderLen {
		return int64(len(raw)), 0, false, nil
	}
	payloadLen := binary.LittleEndian.Uint32(rest)
	if payloadLen > maxRecordBytes {
		// An absurd length field: if nothing but this frame remains, treat as
		// torn; otherwise corrupt.
		return int64(len(raw)), 0, false, nil
	}
	frameLen := int64(frameHeaderLen) + int64(payloadLen)
	if int64(len(rest)) < frameLen {
		return int64(len(raw)), 0, false, nil
	}
	payload := rest[frameHeaderLen:frameLen]
	wantCRC := binary.LittleEndian.Uint32(rest[4:])
	tail := int64(len(rest)) == frameLen
	if crc32.ChecksumIEEE(payload) != wantCRC {
		if tail {
			return int64(len(raw)), 0, false, nil
		}
		return 0, 0, false, fmt.Errorf("CRC mismatch")
	}
	rec, derr := decodeRecord(payload)
	if derr != nil {
		if tail {
			return int64(len(raw)), 0, false, nil
		}
		return 0, 0, false, derr
	}
	return off + frameLen, rec.Seq, true, nil
}

// readSegment returns up to max records with seq >= after from one segment.
// It tolerates a torn tail (stops there) but fails on mid-segment
// corruption, mirroring recoverSegment — reads may hit a segment the active
// writer is mid-append on, and that in-flight frame looks exactly like a
// torn tail.
func readSegment(path string, after uint64, max int) ([]api.LogRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replication: %w", err)
	}
	if len(raw) < segHeaderLen || string(raw[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	var out []api.LogRecord
	off := int64(segHeaderLen)
	for off < int64(len(raw)) && len(out) < max {
		frameEnd, _, ok, ferr := checkFrame(raw, off)
		if ferr != nil {
			return nil, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, path, off, ferr)
		}
		if !ok {
			break // torn or in-flight tail; the next pull will see it whole
		}
		payload := raw[off+frameHeaderLen : frameEnd]
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return nil, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, path, off, derr)
		}
		if rec.Seq >= after {
			out = append(out, rec)
		}
		off = frameEnd
	}
	return out, nil
}
