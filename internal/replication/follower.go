package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/obs"
)

// Target is the standby-side engine the Follower drives. internal/serve
// implements it; keeping it an interface here keeps the import graph acyclic
// (serve imports replication for the Log, replication sees serve only
// through this surface).
type Target interface {
	// RestoreSnapshot replaces the learner state with the snapshot and resets
	// the local observe log to the snapshot's cursor (bootstrap).
	RestoreSnapshot(snap *api.SnapshotResponse) error
	// ApplyRecord appends the record to the local log and applies it through
	// the engine, preserving the primary's observe order. A sequence gap is
	// an error: the follower re-bootstraps from a fresh snapshot.
	ApplyRecord(rec *api.LogRecord) error
	// LogEnd is the local log's exclusive end (the next seq to apply).
	LogEnd() uint64
	// SetLag publishes the standby's replication position for /v1/stats.
	SetLag(lagBatches int64, lastSync time.Time)
	// Promote flips the server from 503-read-only standby to serving primary.
	Promote() error
}

// FollowerConfig wires a Follower to its primary and its local engine.
type FollowerConfig struct {
	// PrimaryURL is the primary's base URL (e.g. http://127.0.0.1:8080).
	PrimaryURL string
	// Target is the local engine (required).
	Target Target
	// Client issues the HTTP pulls (default: 5s-timeout client).
	Client *http.Client
	// PollInterval spaces log pulls when the standby is caught up (default
	// 50ms). Behind, the follower pulls continuously.
	PollInterval time.Duration
	// FailoverAfter promotes the standby after this many consecutive failed
	// pulls — the health-probe failover path (default 5; <0 disables
	// probe-based failover entirely, e.g. in sync-only tests).
	FailoverAfter int
	// PrimaryWALDir, when set, is the dead primary's observe-log directory on
	// shared disk. Before a probe-failure promotion the follower replays any
	// records the primary durably logged but never streamed, so even SIGKILL
	// loses no acknowledged observe.
	PrimaryWALDir string
	// MaxPull bounds one log page (default 256 records).
	MaxPull int
	// Registry receives follower metrics (nil: process default).
	Registry *obs.Registry
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

// Follower tails a primary's observe log into a local Target and promotes it
// when the primary goes away. One Run per Follower.
type Follower struct {
	cfg FollowerConfig
	m   *followerMetrics
}

// NewFollower validates the config and returns a runnable follower.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.PrimaryURL == "" {
		return nil, errors.New("replication: follower needs a primary URL")
	}
	if _, err := url.Parse(cfg.PrimaryURL); err != nil {
		return nil, fmt.Errorf("replication: primary URL: %w", err)
	}
	if cfg.Target == nil {
		return nil, errors.New("replication: follower needs a target")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.FailoverAfter == 0 {
		cfg.FailoverAfter = 5
	}
	if cfg.MaxPull <= 0 {
		cfg.MaxPull = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Follower{cfg: cfg, m: newFollowerMetrics(cfg.Registry)}, nil
}

// Run bootstraps from a snapshot, then tails the log until the primary
// drains (Final) or dies (FailoverAfter consecutive pull failures), promotes
// the target and returns nil. A ctx cancellation returns ctx.Err(); any
// other return is a hard replication fault.
func (f *Follower) Run(ctx context.Context) error {
	if err := f.bootstrap(ctx); err != nil {
		return err
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := f.pullLog(ctx, f.cfg.Target.LogEnd())
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			failures++
			f.m.pullErrors.Inc()
			f.cfg.Logf("replication: pull failed (%d/%d): %v", failures, f.cfg.FailoverAfter, err)
			if f.cfg.FailoverAfter > 0 && failures >= f.cfg.FailoverAfter {
				return f.failover()
			}
			if !sleepCtx(ctx, f.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		if err := f.apply(page); err != nil {
			var gap *GapError
			if errors.As(err, &gap) {
				// The primary's log no longer covers our cursor (it reset, or
				// we fell off the retained window). Start over from a fresh
				// snapshot.
				f.cfg.Logf("replication: %v; re-bootstrapping", err)
				if err := f.bootstrap(ctx); err != nil {
					return err
				}
				continue
			}
			return err
		}
		caughtUp := f.cfg.Target.LogEnd() >= page.End
		if page.Final && caughtUp {
			// Graceful handoff: the primary drained and we hold every record.
			f.cfg.Logf("replication: primary drained at seq %d; promoting", page.End)
			return f.promote()
		}
		if caughtUp && len(page.Records) == 0 {
			if !sleepCtx(ctx, f.cfg.PollInterval) {
				return ctx.Err()
			}
		}
	}
}

// bootstrap fetches a snapshot (with retry/backoff) and restores the target
// from it.
func (f *Follower) bootstrap(ctx context.Context) error {
	backoff := f.cfg.PollInterval
	for attempt := 0; ; attempt++ {
		snap, err := f.pullSnapshot(ctx)
		if err == nil {
			if err := f.cfg.Target.RestoreSnapshot(snap); err != nil {
				return fmt.Errorf("replication: restore snapshot: %w", err)
			}
			f.m.bootstraps.Inc()
			f.cfg.Logf("replication: bootstrapped from snapshot at cursor %d (%d batches)", snap.Cursor, snap.Batches)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.m.pullErrors.Inc()
		f.cfg.Logf("replication: snapshot pull failed (attempt %d): %v", attempt+1, err)
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// apply feeds one log page into the target and publishes lag.
func (f *Follower) apply(page *api.LogResponse) error {
	t0 := time.Now()
	for i := range page.Records {
		rec := &page.Records[i]
		if want := f.cfg.Target.LogEnd(); rec.Seq != want {
			if rec.Seq > want {
				return &GapError{Want: want, Got: rec.Seq}
			}
			continue // duplicate from an overlapping pull; already applied
		}
		if err := f.cfg.Target.ApplyRecord(rec); err != nil {
			return fmt.Errorf("replication: apply seq %d: %w", rec.Seq, err)
		}
		f.m.records.Inc()
	}
	if len(page.Records) > 0 {
		f.m.applySeconds.ObserveSince(t0)
	}
	lag := int64(page.End) - int64(f.cfg.Target.LogEnd())
	if lag < 0 {
		lag = 0
	}
	f.m.lagBatches.Set(float64(lag))
	f.cfg.Target.SetLag(lag, time.Now())
	return nil
}

// failover is the probe-failure promotion path: recover the dead primary's
// durable log tail from shared disk (if configured), then promote.
func (f *Follower) failover() error {
	f.cfg.Logf("replication: primary unreachable; failing over")
	if f.cfg.PrimaryWALDir != "" {
		if err := f.recoverDiskTail(); err != nil {
			return fmt.Errorf("replication: recover primary log tail: %w", err)
		}
	}
	return f.promote()
}

// recoverDiskTail replays records the primary durably logged but never
// streamed: everything in its on-disk observe log past our cursor. The
// primary is dead, so opening its log (which truncates any torn tail) is
// safe.
func (f *Follower) recoverDiskTail() error {
	if _, err := os.Stat(f.cfg.PrimaryWALDir); os.IsNotExist(err) {
		return nil
	}
	plog, err := Open(f.cfg.PrimaryWALDir, Options{Registry: obs.NewRegistry()})
	if err != nil {
		return err
	}
	defer plog.Close()
	cursor := f.cfg.Target.LogEnd()
	if plog.End() <= cursor {
		return nil
	}
	if cursor < plog.Start() {
		return fmt.Errorf("primary log starts at %d, past our cursor %d", plog.Start(), cursor)
	}
	n := 0
	err = plog.Scan(cursor, func(rec *api.LogRecord) bool {
		if rec.Seq != f.cfg.Target.LogEnd() {
			return true
		}
		if aerr := f.cfg.Target.ApplyRecord(rec); aerr != nil {
			err = aerr
			return false
		}
		n++
		return true
	})
	if err != nil {
		return err
	}
	f.m.records.Add(int64(n))
	f.cfg.Logf("replication: recovered %d record(s) from the primary's on-disk log", n)
	return nil
}

func (f *Follower) promote() error {
	if err := f.cfg.Target.Promote(); err != nil {
		return fmt.Errorf("replication: promote: %w", err)
	}
	f.m.promotions.Inc()
	f.m.lagBatches.Set(0)
	return nil
}

// pullSnapshot fetches GET /v1/replication/snapshot.
func (f *Follower) pullSnapshot(ctx context.Context) (*api.SnapshotResponse, error) {
	var snap api.SnapshotResponse
	if err := f.getJSON(ctx, "/v1/replication/snapshot", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// pullLog fetches one GET /v1/replication/log page after the given cursor.
func (f *Follower) pullLog(ctx context.Context, after uint64) (*api.LogResponse, error) {
	t0 := time.Now()
	var page api.LogResponse
	path := "/v1/replication/log?after=" + strconv.FormatUint(after, 10) +
		"&max=" + strconv.Itoa(f.cfg.MaxPull)
	if err := f.getJSON(ctx, path, &page); err != nil {
		return nil, err
	}
	f.m.pulls.Inc()
	f.m.pullSeconds.ObserveSince(t0)
	return &page, nil
}

// getJSON issues one GET and decodes the response, turning non-2xx replies
// into *api.Error values.
func (f *Follower) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.PrimaryURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var envelope api.Error
		if json.Unmarshal(body, &envelope) == nil && envelope.Code != "" {
			return &envelope
		}
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// GapError reports a log pull whose first new record is past the follower's
// cursor: records were lost between primary and standby, so the follower
// must re-bootstrap from a snapshot.
type GapError struct {
	Want, Got uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("replication: log gap: want seq %d, primary sent %d", e.Want, e.Got)
}

// sleepCtx sleeps d or until ctx is done; it reports false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
