package replication

import "chameleon/internal/obs"

// metrics are the observe-log and follower instrumentation. Handles are
// resolved once at Open/NewFollower; the append path touches only atomics.
type metrics struct {
	appends       *obs.Counter   // wal_appends_total
	appendBytes   *obs.Counter   // wal_append_bytes_total
	fsyncs        *obs.Counter   // wal_fsyncs_total
	appendSeconds *obs.Histogram // wal_append_seconds
	fsyncSeconds  *obs.Histogram // wal_fsync_seconds
	segments      *obs.Gauge     // wal_segments
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		appends:       r.Counter("wal_appends_total"),
		appendBytes:   r.Counter("wal_append_bytes_total"),
		fsyncs:        r.Counter("wal_fsyncs_total"),
		appendSeconds: r.Histogram("wal_append_seconds"),
		fsyncSeconds:  r.Histogram("wal_fsync_seconds"),
		segments:      r.Gauge("wal_segments"),
	}
}

// followerMetrics instrument the standby's pull loop.
type followerMetrics struct {
	pulls        *obs.Counter   // replication_pulls_total
	pullErrors   *obs.Counter   // replication_pull_errors_total
	records      *obs.Counter   // replication_records_applied_total
	bootstraps   *obs.Counter   // replication_bootstraps_total
	promotions   *obs.Counter   // replication_promotions_total
	lagBatches   *obs.Gauge     // replication_lag_batches
	pullSeconds  *obs.Histogram // replication_pull_seconds
	applySeconds *obs.Histogram // replication_apply_seconds
}

func newFollowerMetrics(r *obs.Registry) *followerMetrics {
	return &followerMetrics{
		pulls:        r.Counter("replication_pulls_total"),
		pullErrors:   r.Counter("replication_pull_errors_total"),
		records:      r.Counter("replication_records_applied_total"),
		bootstraps:   r.Counter("replication_bootstraps_total"),
		promotions:   r.Counter("replication_promotions_total"),
		lagBatches:   r.Gauge("replication_lag_batches"),
		pullSeconds:  r.Histogram("replication_pull_seconds"),
		applySeconds: r.Histogram("replication_apply_seconds"),
	}
}
