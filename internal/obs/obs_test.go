package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/race"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("test_counter_total"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	r.GaugeFunc("test_func", func() float64 { return 7 })
	if got := r.Report().Gauges["test_func"]; got != 7 {
		t.Fatalf("gauge func = %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", h.Sum())
	}
	snap := h.snapshot()
	// Cumulative le buckets: ≤0.1 → 2 (0.05 and the boundary value 0.1),
	// ≤1 → 3, ≤10 → 4, +Inf → 5.
	wantCum := []int64{2, 3, 4, 5}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, snap.Buckets[i].UpperBound, snap.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", snap.Buckets[3].UpperBound)
	}
}

func TestNilMetricsAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "has-dash", "ütf"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Cross-kind duplicates are a programming error.
	r.Counter("kind_clash")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind duplicate did not panic")
		}
	}()
	r.Gauge("kind_clash")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(5)
	r.Gauge("depth").Set(1.5)
	r.Histogram("lat_seconds", 0.5, 1).Observe(0.7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 5\n",
		"# TYPE depth gauge\ndepth 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.5"} 0`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.7",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONAndReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("b_seconds", 1).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, sb.String())
	}
	if decoded["a_total"].(float64) != 2 {
		t.Fatalf("a_total = %v", decoded["a_total"])
	}
	// The expvar adapter renders the same object.
	var fromVar map[string]any
	if err := json.Unmarshal([]byte(r.Var().String()), &fromVar); err != nil {
		t.Fatalf("expvar Var output is not valid JSON: %v", err)
	}
	rep := r.Report()
	if rep.Counters["a_total"] != 2 || rep.Histograms["b_seconds"].Count != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestHTTPServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Inc()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if prom := get("/metrics"); !strings.Contains(prom, "served_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", prom)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/vars")), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	var debugVars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &debugVars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
}

func TestPublishExpvar(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	if err := a.PublishExpvar("obs_test_publish"); err != nil {
		t.Fatal(err)
	}
	if err := a.PublishExpvar("obs_test_publish"); err != nil {
		t.Fatalf("same registry re-publish should be a no-op, got %v", err)
	}
	if err := b.PublishExpvar("obs_test_publish"); err == nil {
		t.Fatal("different registry claiming the name should error")
	}
}

func TestConcurrentMutationAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total")
	h := r.Histogram("conc_seconds", 1e-6, 1e-3, 1)
	g := r.Gauge("conc_gauge")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%3) * 1e-4)
			}
		}()
	}
	for c.Value() == 0 {
		runtime.Gosched()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
		_ = r.Report()
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("no mutations recorded")
	}
}

// TestAllocsHotPath pins the tentpole guarantee: the instrumentation
// primitives allocate nothing, so threading them through the zero-alloc
// training step cannot regress the AllocsPerRun == 0 pins.
func TestAllocsHotPath(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	r := NewRegistry()
	c := r.Counter("alloc_total")
	g := r.Gauge("alloc_gauge")
	h := r.Histogram("alloc_seconds")
	if got := testing.AllocsPerRun(100, func() {
		t0 := time.Now()
		c.Add(2)
		g.Set(3)
		h.Observe(1e-4)
		h.ObserveSince(t0)
	}); got != 0 {
		t.Fatalf("hot-path instrumentation allocates %.0f times/op, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", 0.1, 0.2, 0.4, 0.8)
	// 10 observations in (0.1, 0.2], 10 in (0.2, 0.4].
	for i := 0; i < 10; i++ {
		h.Observe(0.15)
		h.Observe(0.3)
	}
	v := r.Report().Histograms["q_test_seconds"]
	if p50 := v.Quantile(0.5); p50 < 0.1 || p50 > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", p50)
	}
	if p99 := v.Quantile(0.99); p99 < 0.2 || p99 > 0.4 {
		t.Fatalf("p99 = %v, want within (0.2, 0.4]", p99)
	}
	if q0 := v.Quantile(0); q0 > 0.1 {
		t.Fatalf("q0 = %v, want <= first bound", q0)
	}
	// Overflow bucket: the estimate degrades to the last finite bound.
	h.Observe(100)
	v = r.Report().Histograms["q_test_seconds"]
	if q1 := v.Quantile(1); q1 != 0.8 {
		t.Fatalf("q1 with overflow = %v, want last finite bound 0.8", q1)
	}
	if (HistogramValue{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}
