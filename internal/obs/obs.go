// Package obs is the repository's observability layer: a stdlib-only metrics
// subsystem with atomic counters, gauges and fixed-bucket histograms behind a
// named registry.
//
// Design goals, in order:
//
//  1. Zero allocations on the hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe are lock-free atomic operations on memory allocated
//     at registration time, so instrumenting the online training step keeps
//     the repository's AllocsPerRun == 0 pins green (DESIGN.md §11–12).
//     Handles are resolved once (at construction or package init) and then
//     incremented directly — the hot path never touches the registry map.
//  2. Safe concurrent access. Every metric may be mutated from any number of
//     goroutines (multi-seed runs share process-wide counters) while an HTTP
//     scraper reads it; all reads and writes are atomic.
//  3. One export path, three formats: Prometheus text exposition
//     (WritePrometheus / the /metrics endpoint), expvar-compatible JSON
//     (WriteJSON, the /vars endpoint, and true expvar publication under
//     /debug/vars), and a structured end-of-run Report consumed by
//     cmd/benchjson.
//
// Metric methods are nil-receiver safe: a nil *Counter/*Gauge/*Histogram is a
// no-op, so optional instrumentation needs no branches at call sites.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe and allocation-free.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe and allocation-free.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop). Nil-safe and allocation-free.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bucket upper bounds are set at
// registration and never change, so Observe is a bounded linear scan plus two
// atomic updates — no locks, no allocations.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, ascending.
	// counts has len(bounds)+1 slots; the last is the +Inf overflow bucket.
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// DefTimeBuckets is the default bucket layout for duration histograms, in
// seconds: 1µs to 10s, roughly 2.5× steps. It spans everything from a single
// atomic counter bump to a full checkpoint fsync.
var DefTimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Nil-safe and allocation-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the per-stage timer
// primitive: t := time.Now(); ...work...; h.ObserveSince(t).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named collection of metrics. Registration (get-or-create by
// name) takes a mutex; the returned handles bypass the registry entirely, so
// only scrapes and registration pay for the lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every subsystem registers into;
// the cmd binaries export it via -metrics-addr.
func Default() *Registry { return defaultRegistry }

// validName enforces the Prometheus metric-name charset so the text
// exposition is always parseable.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// checkName panics on invalid or cross-kind duplicate names — both are
// programming errors that would corrupt the exposition.
func (r *Registry) checkName(name, kind string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	taken := func(k string, ok bool) {
		if ok && k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested as %s", name, k, kind))
		}
	}
	_, ok := r.counters[name]
	taken("counter", ok)
	_, ok = r.gauges[name]
	taken("gauge", ok)
	_, ok = r.funcs[name]
	taken("gaugefunc", ok)
	_, ok = r.hists[name]
	taken("histogram", ok)
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a computed gauge: f is called at scrape
// time. f must be safe to call from any goroutine concurrently with the code
// it observes.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gaugefunc")
	r.funcs[name] = f
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds on first use (nil bounds select DefTimeBuckets).
// Later calls return the existing histogram regardless of bounds — the first
// registration fixes the layout.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefTimeBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
