package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Bucket is one cumulative histogram bucket: the count of observations less
// than or equal to UpperBound (Prometheus `le` semantics).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bound as a string (Prometheus `le` label style)
// because encoding/json rejects the +Inf overflow bucket as a number.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("{%q:%q,%q:%d}", "le", fmtFloat(b.UpperBound), "count", b.Count)), nil
}

// UnmarshalJSON parses the string-bound form written by MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.Le, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %q: %w", raw.Le, err)
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// HistogramValue is a point-in-time histogram snapshot.
type HistogramValue struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative buckets,
// Prometheus histogram_quantile style: the target rank is located in its
// bucket and the value linearly interpolated across the bucket's bound span.
// Ranks that land in the +Inf overflow bucket report the last finite bound (a
// lower bound on the true value). Returns 0 for an empty histogram.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	for i, b := range h.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			if i == 0 {
				return 0
			}
			return h.Buckets[i-1].UpperBound
		}
		lo, loCount := 0.0, int64(0)
		if i > 0 {
			lo, loCount = h.Buckets[i-1].UpperBound, h.Buckets[i-1].Count
		}
		inBucket := float64(b.Count - loCount)
		if inBucket <= 0 {
			return b.UpperBound
		}
		return lo + (b.UpperBound-lo)*(rank-float64(loCount))/inBucket
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Report is the structured end-of-run snapshot of a registry, the export
// consumed by cmd/benchjson (and anything else that wants metrics as data
// rather than as an exposition format). GaugeFuncs are evaluated at snapshot
// time and land in Gauges.
type Report struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// snapshot copies the histogram under no lock: counts are atomics, and the
// cumulative view tolerates a concurrent Observe (the scrape is a point in
// time, not a barrier).
func (h *Histogram) snapshot() HistogramValue {
	v := HistogramValue{Count: h.Count(), Sum: h.Sum(), Buckets: make([]Bucket, 0, len(h.bounds)+1)}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		v.Buckets = append(v.Buckets, Bucket{UpperBound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	v.Buckets = append(v.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
	return v
}

// Report snapshots every metric in the registry.
func (r *Registry) Report() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramValue, len(r.hists)),
	}
	for name, c := range r.counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		rep.Gauges[name] = g.Value()
	}
	for name, f := range r.funcs {
		rep.Gauges[name] = f()
	}
	for name, h := range r.hists {
		rep.Histograms[name] = h.snapshot()
	}
	return rep
}

// sortedKeys returns the map keys in ascending order (stable exposition).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtFloat renders a float the way Prometheus expects (no exponent for +Inf).
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): every counter, gauge, computed gauge, and histogram
// with cumulative `le` buckets, `_sum` and `_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	rep := r.Report()
	for _, name := range sortedKeys(rep.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, rep.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(rep.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, fmtFloat(rep.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(rep.Histograms) {
		h := rep.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b.UpperBound), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonMap flattens the report into one expvar-style JSON object: counters and
// gauges map name → number, histograms map name → {count, sum, buckets}.
func (r *Registry) jsonMap() map[string]any {
	rep := r.Report()
	out := make(map[string]any, len(rep.Counters)+len(rep.Gauges)+len(rep.Histograms))
	for name, v := range rep.Counters {
		out[name] = v
	}
	for name, v := range rep.Gauges {
		out[name] = v
	}
	for name, h := range rep.Histograms {
		buckets := make(map[string]int64, len(h.Buckets))
		for _, b := range h.Buckets {
			buckets[fmtFloat(b.UpperBound)] = b.Count
		}
		out[name] = map[string]any{"count": h.Count, "sum": h.Sum, "buckets": buckets}
	}
	return out
}

// WriteJSON writes the registry as one expvar-compatible JSON object
// (the /vars endpoint payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonMap())
}

// Var adapts the registry to the expvar.Var interface: String() renders the
// same JSON object WriteJSON emits.
func (r *Registry) Var() expvar.Var {
	return expvar.Func(func() any { return r.jsonMap() })
}

// published tracks expvar names already claimed, because expvar.Publish
// panics on duplicates and metrics servers start more than once in tests.
var published = struct {
	sync.Mutex
	byName map[string]*Registry
}{byName: map[string]*Registry{}}

// PublishExpvar publishes the registry into the process-global expvar
// namespace under the given name (it then appears in the standard
// /debug/vars JSON next to memstats and cmdline). Re-publishing the same
// registry under the same name is a no-op; claiming a name held by a
// different registry is an error.
func (r *Registry) PublishExpvar(name string) error {
	published.Lock()
	defer published.Unlock()
	if prev, ok := published.byName[name]; ok {
		if prev == r {
			return nil
		}
		return fmt.Errorf("obs: expvar name %q already published by a different registry", name)
	}
	expvar.Publish(name, r.Var())
	published.byName[name] = r
	return nil
}
