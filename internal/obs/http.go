package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
)

// Handler returns an http.Handler exporting the registry three ways:
//
//	/metrics     Prometheus text exposition
//	/vars        this registry as one expvar-compatible JSON object
//	/debug/vars  the standard expvar handler (the registry appears there
//	             once PublishExpvar has run; Serve does this automatically)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is a running metrics listener (see Registry.Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP listener on addr exporting the registry via Handler.
// The registry is also published into expvar under "chameleon" (best effort:
// a second registry claiming the name just skips expvar publication). The
// caller owns the returned Server and should Close it on exit.
func (r *Registry) Serve(addr string) (*Server, error) {
	_ = r.PublishExpvar("chameleon")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
