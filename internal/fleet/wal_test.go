package fleet

import (
	"context"
	"os"
	"strings"
	"testing"

	"chameleon/internal/api"
	"chameleon/internal/cl"
	"chameleon/internal/obs"
	"chameleon/internal/replication"
	"chameleon/internal/tensor"
)

// walFleet builds a single-shard fleet whose observes are logged to a WAL in
// its own temp dir. Single shard + tiny hot set makes eviction deterministic.
func walFleet(t *testing.T, hotSet int) (*Fleet, *replication.Log) {
	t.Helper()
	wlog, err := replication.Open(t.TempDir(), replication.Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	t.Cleanup(func() { _ = wlog.Close() })
	f := newTestFleet(t, Config{
		Shards:      1,
		HotSet:      hotSet,
		WAL:         wlog,
		LatentShape: []int{1},
	})
	return f, wlog
}

// observeLat feeds one single-sample batch with a real latent (the log
// serialises Z, so nil tensors are not an option here).
func observeLat(t *testing.T, f *Fleet, user string, label int) (batch int) {
	t.Helper()
	samples := []cl.LatentSample{{Z: tensor.FromSlice([]float32{float32(label)}, 1), Label: label}}
	batch, _, err := f.Observe(context.Background(), user, samples, 0)
	if err != nil {
		t.Fatalf("Observe(%s): %v", user, err)
	}
	return batch
}

// TestLogRepairsCorruptCheckpoint is the fleet's recovery story: when a
// user's eviction checkpoint is corrupt, fault-in rebuilds the learner from
// deterministic construction plus a replay of the user's logged batches,
// instead of failing the request.
func TestLogRepairsCorruptCheckpoint(t *testing.T) {
	f, _ := walFleet(t, 1)
	for i := 0; i < 3; i++ {
		if got := observeLat(t, f, "u1", i); got != i {
			t.Fatalf("u1 batch %d assigned %d", i, got)
		}
	}
	// A second user evicts u1 (hot set of one) to its checkpoint file.
	observeLat(t, f, "u2", 9)
	path := f.userPath("u1")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("u1 was not evicted: %v", err)
	}
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fault u1 back in: the corrupt checkpoint must be repaired from the log.
	if got := predict(t, f, "u1"); got != 3 {
		t.Fatalf("after log rebuild, u1 predicts %d labels, want 3", got)
	}
	// The stream position survived too: the next observe continues at batch 3.
	if got := observeLat(t, f, "u1", 3); got != 3 {
		t.Fatalf("post-rebuild observe assigned batch %d, want 3", got)
	}
}

// TestLogReplaysCrashedBeforeEviction covers the other fault-in hole: a user
// whose learner died with the process before ever being evicted has no
// checkpoint at all — only log records. A fresh fleet over the same log must
// rebuild the user from scratch.
func TestLogReplaysCrashedBeforeEviction(t *testing.T) {
	f1, wlog := walFleet(t, 4)
	for i := 0; i < 3; i++ {
		observeLat(t, f1, "u1", i)
	}
	// "Crash": nothing is evicted or drained; a new fleet starts over the
	// same observe log with an empty checkpoint dir.
	f2 := newTestFleet(t, Config{
		Shards:      1,
		HotSet:      4,
		WAL:         wlog,
		LatentShape: []int{1},
	})
	if got := predict(t, f2, "u1"); got != 3 {
		t.Fatalf("after crash replay, u1 predicts %d labels, want 3", got)
	}
	if got := observeLat(t, f2, "u1", 3); got != 3 {
		t.Fatalf("post-crash observe assigned batch %d, want 3", got)
	}
}

// TestFaultInSkipsAlreadyCheckpointedBatches pins the replay cursor: a clean
// eviction checkpoint already covers the user's logged batches, so fault-in
// must not double-apply them.
func TestFaultInSkipsAlreadyCheckpointedBatches(t *testing.T) {
	f, _ := walFleet(t, 1)
	for i := 0; i < 3; i++ {
		observeLat(t, f, "u1", i)
	}
	observeLat(t, f, "u2", 9) // evicts u1 cleanly
	if got := predict(t, f, "u1"); got != 3 {
		t.Fatalf("faulted-in u1 predicts %d labels, want 3 (double-applied replay?)", got)
	}
}

// TestReplayGapFailsLoudly: a log that does not cover the user's stream (the
// checkpoint says batch 2, the log's next record for the user is batch 5)
// must fail the fault-in rather than silently skip observes.
func TestReplayGapFailsLoudly(t *testing.T) {
	f, wlog := walFleet(t, 1)
	observeLat(t, f, "u1", 0)
	observeLat(t, f, "u2", 9) // evict u1 at batch position 1

	// Forge a log record claiming u1's batch 5: the fault-in replay, resuming
	// at batch 1, must refuse the gap.
	rec := forgeRecord(t, "u1", 5)
	if _, err := wlog.Append(rec); err != nil {
		t.Fatalf("append forged record: %v", err)
	}
	_, err := f.Predict(context.Background(), "u1", tensor.New(1))
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped replay err = %v, want observe-log gap", err)
	}
}

func forgeRecord(t *testing.T, user string, batch int) *api.LogRecord {
	t.Helper()
	return &api.LogRecord{
		User:    user,
		Batch:   batch,
		Samples: []api.LogSample{{Latent: []float32{1}, Label: 0}},
	}
}
