package fleet

import (
	"chameleon/internal/obs"
)

// metrics bundles the fleet's handles on one registry. Handles are resolved
// at construction; the request path touches only atomics (DESIGN.md §12).
type metrics struct {
	predicts       *obs.Counter // requests accepted into Predict
	observes       *obs.Counter
	shed           *obs.Counter // refused on a full shard queue
	panics         *obs.Counter // learner panics converted to errors
	evictions      *obs.Counter
	evictionErrors *obs.Counter
	faultIns       *obs.Counter
	logRebuilds    *obs.Counter // corrupt/missing checkpoints repaired from the observe log
	logReplayed    *obs.Counter // observe-log records replayed during fault-in

	evictionSeconds *obs.Histogram // snapshot + checkpoint write
	faultInSeconds  *obs.Histogram // checkpoint read + restore
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		predicts:        r.Counter("fleet_predict_requests_total"),
		observes:        r.Counter("fleet_observe_requests_total"),
		shed:            r.Counter("fleet_shed_total"),
		panics:          r.Counter("fleet_panics_total"),
		evictions:       r.Counter("fleet_evictions_total"),
		evictionErrors:  r.Counter("fleet_eviction_errors_total"),
		faultIns:        r.Counter("fleet_fault_ins_total"),
		logRebuilds:     r.Counter("fleet_log_rebuilds_total"),
		logReplayed:     r.Counter("fleet_log_replayed_total"),
		evictionSeconds: r.Histogram("fleet_eviction_seconds"),
		faultInSeconds:  r.Histogram("fleet_fault_in_seconds"),
	}
}

// bind publishes the scrape-time gauges: resident learners (the hot-set
// occupancy — the number the LRU policy exists to bound) and known users.
// Shard counts are mirrored into atomics, so scraping needs no coordination
// with the engine goroutines.
func (m *metrics) bind(f *Fleet) {
	f.cfg.Registry.GaugeFunc("fleet_resident_learners", func() float64 {
		var n int64
		for _, sh := range f.shards {
			n += sh.nResident.Load()
		}
		return float64(n)
	})
	f.cfg.Registry.GaugeFunc("fleet_users_known", func() float64 {
		return float64(f.usersKnown.Load())
	})
	f.cfg.Registry.GaugeFunc("fleet_batches_observed", func() float64 {
		return float64(f.batches.Load())
	})
}
