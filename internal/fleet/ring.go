package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashRing maps user ids to shards by consistent hashing: every shard owns
// vnodesPerShard points on a 64-bit ring, and a user lands on the shard
// owning the first point at or after the user's hash. The assignment is a
// pure function of (user, shard count, vnode count), so a restarted server
// routes every user to the same shard — which is what lets a shard find the
// user's eviction checkpoint again — and adding shards in a future resize
// moves only ~1/n of the users instead of rehashing everyone.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// vnodesPerShard is the virtual-node count per shard. 64 points per shard
// keeps the worst shard within a few percent of the mean occupancy for the
// shard counts this package runs at (1..64).
const vnodesPerShard = 64

// hashKey is the ring's hash function (FNV-64a: stdlib, stable across
// processes and architectures — routing must never depend on process state).
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// mix64 is the MurmurHash3 64-bit finalizer. FNV-64a of short similar
// strings (the vnode labels, "u<N>" user ids) leaves the high bits badly
// dispersed, and the ring orders points by the full 64-bit value — without
// this avalanche pass the shard arcs come out up to ~6× uneven.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ringPos places a key on the ring.
func ringPos(key string) uint64 { return mix64(hashKey(key)) }

// newRing builds the ring for a shard count.
func newRing(shards int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, shards*vnodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringPos(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare at 64-bit) break deterministically by shard.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// lookup returns the shard owning key.
func (r *hashRing) lookup(key string) int {
	h := ringPos(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the ring starts over
	}
	return r.points[i].shard
}

// UserSeed derives a per-user learner seed from a base seed: deterministic
// across restarts (fresh construction before a checkpoint restore must build
// the same structure every time) while giving distinct users distinct RNG
// streams.
func UserSeed(base int64, user string) int64 {
	return base ^ int64(hashKey(user))
}
