package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/core"
	"chameleon/internal/mobilenet"
	"chameleon/internal/obs"
	"chameleon/internal/parallel"
	"chameleon/internal/tensor"
)

// TestEvictionBitIdentity is the fleet's core correctness contract: a learner
// that is repeatedly evicted to disk and faulted back in must end up in
// exactly the state of a never-evicted control fed the identical stream. The
// fleet runs a real Chameleon learner on a 1-slot hot-set, so every
// interleaved request for another user demotes the target between batches;
// concurrent predicts for the evicting user race the evictions (run this
// under -race). The check runs at worker-pool sizes 1 and 8 because the
// training kernels fan out across the pool and bit-identity must not depend
// on the parallel schedule.
func TestEvictionBitIdentity(t *testing.T) {
	const seed = 9
	model, err := mobilenet.New(mobilenet.DefaultConfig(4, seed))
	if err != nil {
		t.Fatalf("backbone: %v", err)
	}
	newLearner := func(user string) (cl.Learner, error) {
		head := cl.NewHead(model, cl.HeadConfig{LR: 0.1, Momentum: 0.5, Seed: UserSeed(seed, user)})
		return core.New(head, core.Config{STCap: 4, LTCap: 16, AccessRate: 2, Seed: UserSeed(seed, user)}), nil
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			parallel.SetWorkers(workers)
			t.Cleanup(func() { parallel.SetWorkers(0) })

			// One deterministic stream, shared verbatim by fleet and control.
			const nBatches, batchSize = 6, 3
			rng := rand.New(rand.NewSource(seed))
			batches := make([][]cl.LatentSample, nBatches)
			for b := range batches {
				batches[b] = make([]cl.LatentSample, batchSize)
				for i := range batches[b] {
					batches[b][i] = cl.LatentSample{
						Z:     tensor.RandNormal(rng, 1, model.LatentShape...),
						Label: (b*batchSize + i) % 4,
					}
				}
			}

			f, err := New(Config{
				New: newLearner, Dir: t.TempDir(),
				Shards: 1, HotSet: 1, QueueDepth: 1024,
				Registry: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			// Concurrent predicts for the evicting user, racing every
			// demotion and fault-in for the whole run.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				z := tensor.RandNormal(rand.New(rand.NewSource(seed+1)), 1, model.LatentShape...)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := f.Predict(context.Background(), "alice", z); err != nil {
						t.Errorf("concurrent predict: %v", err)
						return
					}
				}
			}()

			control, err := newLearner("alice")
			if err != nil {
				t.Fatalf("control: %v", err)
			}
			for b, samples := range batches {
				if idx, _, err := f.Observe(context.Background(), "alice", samples, 0); err != nil {
					t.Fatalf("fleet observe %d: %v", b, err)
				} else if idx != b {
					t.Fatalf("fleet numbered batch %d as %d", b, idx)
				}
				control.Observe(cl.LatentBatch{Samples: samples, Index: b})
				// Touch two other users so alice is the LRU victim before
				// her next batch — she must fault in from disk every time.
				for _, other := range []string{"bob", "carol"} {
					if _, _, err := f.Observe(context.Background(), other, batches[0], 0); err != nil {
						t.Fatalf("observe %s: %v", other, err)
					}
				}
			}
			close(stop)
			wg.Wait()

			if st := f.Stats(); st.FaultIns < nBatches-1 {
				t.Fatalf("fault-ins = %d; the hot-set never actually evicted alice", st.FaultIns)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := f.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}

			var drained userState
			if err := checkpoint.Load(f.userPath("alice"), userKind, &drained); err != nil {
				t.Fatalf("load drained alice: %v", err)
			}
			if drained.Batches != nBatches || drained.Samples != nBatches*batchSize {
				t.Fatalf("drained stream position %d/%d, want %d/%d",
					drained.Batches, drained.Samples, nBatches, nBatches*batchSize)
			}
			want, err := cl.Caps(control).Snapshotter.Snapshot()
			if err != nil {
				t.Fatalf("control snapshot: %v", err)
			}
			equal, err := core.SnapshotsEqual(drained.Learner, want)
			if err != nil {
				t.Fatalf("compare snapshots: %v", err)
			}
			if !equal {
				t.Fatal("evicted+faulted learner diverged from the never-evicted control")
			}
		})
	}
}
