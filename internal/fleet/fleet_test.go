package fleet

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/obs"
	"chameleon/internal/tensor"
)

// tallyLearner is a deterministic snapshotable fake: its whole state is the
// label sequence it has observed, and Predict reports how many labels it
// holds — so restored state is directly visible through the request API.
type tallyLearner struct {
	labels []int
}

func (l *tallyLearner) Name() string { return "tally" }

func (l *tallyLearner) Observe(b cl.LatentBatch) {
	for _, s := range b.Samples {
		l.labels = append(l.labels, s.Label)
	}
}

func (l *tallyLearner) Predict(z *tensor.Tensor) int { return len(l.labels) }

func (l *tallyLearner) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(l.labels)
	return buf.Bytes(), err
}

func (l *tallyLearner) Restore(state []byte) error {
	return gob.NewDecoder(bytes.NewReader(state)).Decode(&l.labels)
}

// bareLearner implements only the base interface — no Snapshotter — so it
// must be refused by an evicting fleet.
type bareLearner struct{}

func (bareLearner) Name() string               { return "bare" }
func (bareLearner) Observe(cl.LatentBatch)     {}
func (bareLearner) Predict(*tensor.Tensor) int { return 0 }

func tallyFactory(user string) (cl.Learner, error) { return &tallyLearner{}, nil }

// newTestFleet builds a fleet on a temp dir and a fresh registry, shut down
// at cleanup (Shutdown is idempotent, so tests may also stop it themselves).
func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	if cfg.New == nil {
		cfg.New = tallyFactory
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Shutdown(ctx)
	})
	return f
}

func observeLabels(t *testing.T, f *Fleet, user string, labels ...int) (batch, total int) {
	t.Helper()
	samples := make([]cl.LatentSample, len(labels))
	for i, lab := range labels {
		samples[i] = cl.LatentSample{Label: lab}
	}
	batch, total, err := f.Observe(context.Background(), user, samples, 0)
	if err != nil {
		t.Fatalf("Observe(%s): %v", user, err)
	}
	return batch, total
}

func predict(t *testing.T, f *Fleet, user string) int {
	t.Helper()
	class, err := f.Predict(context.Background(), user, tensor.New(1))
	if err != nil {
		t.Fatalf("Predict(%s): %v", user, err)
	}
	return class
}

func TestObservePredictRoundTrip(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 2})
	if b, n := observeLabels(t, f, "u1", 3, 1); b != 0 || n != 2 {
		t.Fatalf("first batch: index %d total %d, want 0/2", b, n)
	}
	if b, n := observeLabels(t, f, "u1", 2); b != 1 || n != 3 {
		t.Fatalf("second batch: index %d total %d, want 1/3", b, n)
	}
	// Streams are numbered per user, not fleet-wide.
	if b, n := observeLabels(t, f, "u2", 9); b != 0 || n != 1 {
		t.Fatalf("u2 first batch: index %d total %d, want 0/1", b, n)
	}
	if got := predict(t, f, "u1"); got != 3 {
		t.Fatalf("u1 predict = %d, want 3 observed labels", got)
	}
	st := f.Stats()
	if st.UsersKnown != 2 || st.Batches != 3 || st.Samples != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUEvictionAndFaultIn(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, HotSet: 1})
	observeLabels(t, f, "u1", 1, 2)
	observeLabels(t, f, "u2", 5) // evicts u1 (LRU) past the 1-slot budget
	// Eviction runs after the triggering response is sent; a follow-up
	// request on the same (single-writer) shard synchronises with it.
	predict(t, f, "u2")

	st := f.Stats()
	if st.Evictions != 1 || st.Resident != 1 {
		t.Fatalf("after u2: evictions %d resident %d, want 1/1", st.Evictions, st.Resident)
	}
	if _, err := os.Stat(f.userPath("u1")); err != nil {
		t.Fatalf("u1 eviction checkpoint missing: %v", err)
	}

	// Touching u1 faults it back in with its state and stream position.
	if got := predict(t, f, "u1"); got != 2 {
		t.Fatalf("faulted-in u1 predict = %d, want 2", got)
	}
	if b, n := observeLabels(t, f, "u1", 7); b != 1 || n != 3 {
		t.Fatalf("faulted-in u1 batch: index %d total %d, want 1/3", b, n)
	}
	st = f.Stats()
	if st.FaultIns != 1 || st.Evictions != 2 {
		t.Fatalf("after fault-in: %+v", st)
	}
}

func TestMaxUsersAdmission(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 2, MaxUsers: 2})
	observeLabels(t, f, "u1", 1)
	observeLabels(t, f, "u2", 1)
	if _, err := f.Predict(context.Background(), "u3", tensor.New(1)); !errors.Is(err, ErrTooManyUsers) {
		t.Fatalf("u3 admitted past MaxUsers: %v", err)
	}
	// The rejection must not leak capacity: known users keep working, the
	// rejected one stays rejected.
	if got := predict(t, f, "u1"); got != 1 {
		t.Fatalf("u1 after rejection: %d", got)
	}
	if _, _, err := f.Observe(context.Background(), "u3", []cl.LatentSample{{}}, 0); !errors.Is(err, ErrTooManyUsers) {
		t.Fatalf("u3 retry admitted: %v", err)
	}
	if st := f.Stats(); st.UsersKnown != 2 {
		t.Fatalf("users known = %d, want 2", st.UsersKnown)
	}
}

func TestUserValidation(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1})
	if _, err := f.Predict(context.Background(), "", tensor.New(1)); err == nil {
		t.Fatal("empty user accepted")
	}
	long := strings.Repeat("x", maxUserLen+1)
	if _, _, err := f.Observe(context.Background(), long, []cl.LatentSample{{}}, 0); err == nil {
		t.Fatal("over-long user accepted")
	}
}

func TestSnapshotterRequired(t *testing.T) {
	f := newTestFleet(t, Config{
		Shards: 1,
		New:    func(string) (cl.Learner, error) { return bareLearner{}, nil },
	})
	if _, err := f.Predict(context.Background(), "u1", tensor.New(1)); err == nil {
		t.Fatal("snapshotless learner accepted into an evicting fleet")
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	dir := t.TempDir()
	f := newTestFleet(t, Config{Shards: 2, Dir: dir})
	users := []string{"a", "b", "c", "d", "e"}
	for i, u := range users {
		observeLabels(t, f, u, i, i+1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := f.Stats(); st.Resident != 0 {
		t.Fatalf("residents after drain: %d", st.Resident)
	}
	for _, u := range users {
		var st userState
		if err := checkpoint.Load(f.userPath(u), userKind, &st); err != nil {
			t.Fatalf("drained checkpoint for %s: %v", u, err)
		}
		if st.User != u || st.Batches != 1 || st.Samples != 2 {
			t.Fatalf("drained state for %s: %+v", u, st)
		}
	}
	if _, err := f.Predict(context.Background(), "a", tensor.New(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown predict: %v", err)
	}

	// A second fleet over the same directory resumes every user.
	f2 := newTestFleet(t, Config{Shards: 2, Dir: dir})
	for i, u := range users {
		if got := predict(t, f2, u); got != 2 {
			t.Fatalf("restarted fleet, user %s predict = %d, want 2", u, got)
		}
		if b, n := observeLabels(t, f2, u, 9); b != 1 || n != 3 {
			t.Fatalf("restarted fleet, user %s batch %d total %d, want 1/3 (i=%d)", u, b, n, i)
		}
	}
	if st := f2.Stats(); st.FaultIns != int64(len(users)) {
		t.Fatalf("restarted fleet fault-ins = %d, want %d", st.FaultIns, len(users))
	}
}

func TestFactoryErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	f := newTestFleet(t, Config{
		Shards: 1,
		New:    func(string) (cl.Learner, error) { return nil, boom },
	})
	if _, err := f.Predict(context.Background(), "u1", tensor.New(1)); !errors.Is(err, boom) {
		t.Fatalf("factory error lost: %v", err)
	}
}

func TestLearnerPanicBecomesError(t *testing.T) {
	f := newTestFleet(t, Config{
		Shards: 1,
		New:    func(string) (cl.Learner, error) { return &panicLearner{}, nil },
	})
	if _, err := f.Predict(context.Background(), "u1", tensor.New(1)); err == nil {
		t.Fatal("panic not converted to error")
	}
	// The shard survives: a healthy request for the same user still works.
	if _, _, err := f.Observe(context.Background(), "u1", []cl.LatentSample{{Label: 1}}, 0); err != nil {
		t.Fatalf("shard died after panic: %v", err)
	}
}

// panicLearner panics on Predict only; Observe and snapshots work.
type panicLearner struct{ tallyLearner }

func (p *panicLearner) Predict(*tensor.Tensor) int { panic("predict boom") }

// TestConcurrentEvictingUser hammers a 1-slot fleet from many goroutines so
// the target user is constantly mid-eviction or mid-fault-in while requests
// for it are in flight (run under -race). Per-user observe totals must come
// out exact: nothing is lost or double-counted across evictions.
func TestConcurrentEvictingUser(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, HotSet: 1, QueueDepth: 1024})
	const perUser = 40
	users := []string{"hot", "cold1", "cold2"}
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(2)
		// One observer per user: Observe blocks per call, so each user's
		// stream stays ordered even with everything else in flight.
		go func(u string) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				if _, _, err := f.Observe(context.Background(), u, []cl.LatentSample{{Label: i}}, 0); err != nil {
					t.Errorf("observe %s #%d: %v", u, i, err)
					return
				}
			}
		}(u)
		// Concurrent predicts for the same users, racing the evictions.
		go func(u string) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				if _, err := f.Predict(context.Background(), u, tensor.New(1)); err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("predict %s #%d: %v", u, i, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	st := f.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 1-slot hot-set")
	}
	if st.Samples != int64(len(users)*perUser) {
		t.Fatalf("samples observed = %d, want %d", st.Samples, len(users)*perUser)
	}
	for _, u := range users {
		if got := predict(t, f, u); got != perUser {
			t.Fatalf("user %s holds %d labels, want %d", u, got, perUser)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("missing factory accepted")
	}
	if _, err := New(Config{New: tallyFactory}); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestRingIsDeterministicAndCovers(t *testing.T) {
	a, b := newRing(8), newRing(8)
	hit := map[int]bool{}
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("user-%d", i)
		sa, sb := a.lookup(key), b.lookup(key)
		if sa != sb {
			t.Fatalf("lookup(%s) differs across identical rings: %d vs %d", key, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Fatalf("lookup(%s) = %d out of range", key, sa)
		}
		hit[sa] = true
	}
	if len(hit) != 8 {
		t.Fatalf("only %d/8 shards receive traffic", len(hit))
	}
}

func TestUserSeedDiffersPerUser(t *testing.T) {
	seen := map[int64]string{}
	for _, u := range []string{"alice", "bob", "carol", "u1", "u2"} {
		s := UserSeed(42, u)
		if prev, dup := seen[s]; dup {
			t.Fatalf("UserSeed collision: %q and %q both map to %d", prev, u, s)
		}
		seen[s] = u
	}
	if UserSeed(1, "alice") == UserSeed(2, "alice") {
		t.Fatal("base seed ignored")
	}
	if UserSeed(1, "alice") != UserSeed(1, "alice") {
		t.Fatal("UserSeed not deterministic")
	}
}
