// Package fleet hosts many independent per-user continual learners behind
// one shared frozen backbone — the "millions of users" half of the paper's
// user-aware personalization premise. One cl.Learner per user is the model;
// this package is the memory hierarchy around it:
//
//   - A registry keyed by user id. Learners are created lazily on first
//     request from a deterministic factory (same user ⇒ same construction),
//     so the fleet never pays for users it has not seen.
//   - Consistent-hash routing (ring.go) of every request to one of N shards.
//     Each shard is a single-writer engine goroutine — the serve-package
//     engine loop (DESIGN.md §13) replicated per shard — so one user's
//     observes and predicts form a total order without any lock around the
//     learner, and different users on different shards run concurrently.
//   - A bounded hot-set with LRU eviction. RAM holds at most ~HotSet resident
//     learners; when a shard exceeds its share, the least-recently-used
//     learner is drained to an internal/checkpoint snapshot on disk and
//     dropped. The next request for that user faults it back in: fresh
//     construction + snapshot restore, bit-identical to never having been
//     evicted (the cl.Snapshotter contract). This is exactly the RAM/storage
//     cost-management hierarchy Miro (Ma et al., 2023) argues for on-device,
//     made cheap by small per-learner snapshots (~64 KB at serve scale).
//
// Shutdown drains every shard queue and demotes all resident learners to
// their checkpoint files, so a restarted fleet faults each user back in
// exactly where it left off.
package fleet

import (
	"container/list"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chameleon/internal/api"
	"chameleon/internal/checkpoint"
	"chameleon/internal/cl"
	"chameleon/internal/obs"
	"chameleon/internal/replication"
	"chameleon/internal/tensor"
)

// userKind tags per-user eviction checkpoints in the file framing.
const userKind = "fleet.user"

// maxUserLen bounds user ids: hex-encoded ids become file names, and 64
// bytes keeps them comfortably under every filesystem's name limit.
const maxUserLen = 64

// Sentinel errors the serving layer maps to HTTP statuses.
var (
	// ErrQueueFull reports a full shard queue (shed; the client may retry).
	ErrQueueFull = errors.New("fleet: shard queue full")
	// ErrDraining reports a fleet that is shutting down.
	ErrDraining = errors.New("fleet: draining")
	// ErrTooManyUsers reports the MaxUsers registry cap.
	ErrTooManyUsers = errors.New("fleet: user capacity reached")
)

// Config sizes a learner fleet. New and Dir are required; the zero value of
// every other field selects a default.
type Config struct {
	// New constructs a fresh learner for a user. It must be deterministic
	// (same user ⇒ identical construction: fault-in restores a snapshot into
	// a freshly built learner, and the restore contract needs the same
	// shapes, capacities and seeds every time) and safe to call from any
	// shard goroutine. Derive per-user seeds with UserSeed.
	New func(user string) (cl.Learner, error)
	// Dir is where evicted learners are checkpointed, one file per user.
	Dir string
	// MaxUsers caps the number of distinct user ids the registry will ever
	// accept (0 = unbounded). Requests for users beyond the cap fail with
	// ErrTooManyUsers.
	MaxUsers int
	// HotSet bounds the resident learners across the fleet (default 256).
	// The bound is apportioned per shard (at least one each), so the true
	// ceiling is Shards*ceil(HotSet/Shards).
	HotSet int
	// Shards is the number of single-writer engine goroutines (default 4).
	Shards int
	// QueueDepth bounds each shard's request queue (default 256). A full
	// queue sheds with ErrQueueFull.
	QueueDepth int
	// WAL, when non-nil, is the fleet's durable observe log: every user's
	// observe batch is appended (tagged with the user id) before the learner
	// applies it. The log is the fleet's recovery story — a corrupt or
	// missing eviction checkpoint is rebuilt by deterministic reconstruction
	// (Config.New) plus a replay of the user's log records (DESIGN.md §18).
	// Appends from all shards interleave through the log's own lock; each
	// user's subsequence stays ordered because a user lives on one shard.
	WAL *replication.Log
	// LatentShape is the tensor shape replayed log latents are decoded into.
	// Required when WAL is set.
	LatentShape []int
	// Registry receives the fleet metrics (nil: the process default).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.HotSet <= 0 {
		c.HotSet = 256
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// Stats is a point-in-time snapshot of the fleet, embedded in /v1/stats.
// The wire declaration lives in internal/api with the rest of the /v1
// surface; the alias keeps engine code reading fleet.Stats.
type Stats = api.FleetStats

// request is one unit of work routed to a shard. Exactly one of z (predict)
// or samples (observe) is set.
type request struct {
	user    string
	z       *tensor.Tensor
	samples []cl.LatentSample
	domain  int
	resp    chan response // buffered (cap 1): the shard never blocks on it
}

type response struct {
	class   int // predict result
	batch   int // observe: per-user stream index assigned
	samples int // observe: user's cumulative sample count
	err     error
}

// entry is one resident learner plus its per-user stream position. Owned by
// exactly one shard goroutine; never shared.
type entry struct {
	user    string
	l       cl.Learner
	caps    cl.Capabilities
	batches int
	samples int
	elem    *list.Element // position in the shard's LRU list
}

// userState is the eviction-checkpoint payload: the learner's opaque
// snapshot plus the user's stream position, so a faulted-in learner keeps
// numbering its observe stream without a gap.
type userState struct {
	// Method guards against restoring a snapshot into a different learner
	// family; User guards against file-name collisions.
	Method  string
	User    string
	Batches int
	Samples int
	Learner []byte
}

// shard is one single-writer engine goroutine plus the state it owns.
type shard struct {
	f      *Fleet
	id     int
	q      chan *request
	done   chan struct{}
	budget int
	// drainErr is the first eviction failure seen while draining; written by
	// the shard goroutine before done closes, read after.
	drainErr error

	// Everything below is owned by the shard goroutine.
	resident map[string]*entry
	lru      *list.List // front = least recently used
	known    map[string]struct{}

	nResident atomic.Int64 // mirrored for scrape-time gauges
}

// Fleet is a registry of per-user learners behind consistent-hash shard
// routing and a bounded, evicting hot-set. Construct with New, stop with
// Shutdown.
type Fleet struct {
	cfg    Config
	ring   *hashRing
	shards []*shard
	m      *metrics

	// mu guards draining against request enqueues, exactly like the serve
	// package's drain guard: Enqueuers hold the read side across the
	// check-then-send window, Shutdown takes the write side first.
	mu       sync.RWMutex
	draining bool

	stopOnce sync.Once
	stopCh   chan struct{}

	usersKnown atomic.Int64
	batches    atomic.Int64
	samples    atomic.Int64
}

// New validates the config, creates the checkpoint directory, and starts the
// shard engines. The caller must eventually call Shutdown.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.New == nil {
		return nil, errors.New("fleet: Config.New (learner factory) is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("fleet: Config.Dir (eviction checkpoint directory) is required")
	}
	if cfg.WAL != nil && len(cfg.LatentShape) == 0 {
		return nil, errors.New("fleet: Config.LatentShape is required with an observe log (log replay must shape latents)")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
	}
	f := &Fleet{
		cfg:    cfg,
		ring:   newRing(cfg.Shards),
		shards: make([]*shard, cfg.Shards),
		m:      newMetrics(cfg.Registry),
		stopCh: make(chan struct{}),
	}
	// Apportion the hot-set: every shard gets at least one resident slot,
	// and the shares sum to >= HotSet so the configured bound is reachable.
	budget := (cfg.HotSet + cfg.Shards - 1) / cfg.Shards
	if budget < 1 {
		budget = 1
	}
	for i := range f.shards {
		f.shards[i] = &shard{
			f:        f,
			id:       i,
			q:        make(chan *request, cfg.QueueDepth),
			done:     make(chan struct{}),
			budget:   budget,
			resident: map[string]*entry{},
			lru:      list.New(),
			known:    map[string]struct{}{},
		}
		go f.shards[i].run()
	}
	f.m.bind(f)
	return f, nil
}

// validUser bounds user ids before they reach routing or the filesystem.
func validUser(user string) error {
	if user == "" {
		return errors.New("fleet: user id must be non-empty")
	}
	if len(user) > maxUserLen {
		return fmt.Errorf("fleet: user id longer than %d bytes", maxUserLen)
	}
	return nil
}

// userPath is the eviction-checkpoint file for a user. Hex encoding makes
// any id filesystem-safe; the User field inside the payload guards the
// (already impossible) collision case.
func (f *Fleet) userPath(user string) string {
	return filepath.Join(f.cfg.Dir, hex.EncodeToString([]byte(user))+".ckpt")
}

// enqueue routes r to its user's shard under the drain guard.
func (f *Fleet) enqueue(r *request) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.draining {
		return ErrDraining
	}
	sh := f.shards[f.ring.lookup(r.user)]
	select {
	case sh.q <- r:
		return nil
	default:
		f.m.shed.Inc()
		return ErrQueueFull
	}
}

// Predict classifies one latent with the user's learner, faulting the
// learner in if it was evicted (or creating it on first contact). Blocks
// until the shard answers or ctx ends.
func (f *Fleet) Predict(ctx context.Context, user string, z *tensor.Tensor) (int, error) {
	if err := validUser(user); err != nil {
		return 0, err
	}
	f.m.predicts.Inc()
	r := &request{user: user, z: z, resp: make(chan response, 1)}
	if err := f.enqueue(r); err != nil {
		return 0, err
	}
	select {
	case resp := <-r.resp:
		return resp.class, resp.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Observe feeds one labelled mini-batch to the user's learner. It returns
// the per-user stream index assigned to the batch and the user's cumulative
// sample count — each user's stream is numbered independently, and the
// numbering survives eviction and restarts via the checkpoint files.
func (f *Fleet) Observe(ctx context.Context, user string, samples []cl.LatentSample, domain int) (batch, total int, err error) {
	if err := validUser(user); err != nil {
		return 0, 0, err
	}
	f.m.observes.Inc()
	r := &request{user: user, samples: samples, domain: domain, resp: make(chan response, 1)}
	if err := f.enqueue(r); err != nil {
		return 0, 0, err
	}
	select {
	case resp := <-r.resp:
		return resp.batch, resp.samples, resp.err
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	var resident int64
	for _, sh := range f.shards {
		resident += sh.nResident.Load()
	}
	return Stats{
		Shards:     f.cfg.Shards,
		HotSet:     f.cfg.HotSet,
		UsersKnown: f.usersKnown.Load(),
		Resident:   resident,
		Evictions:  f.m.evictions.Value(),
		FaultIns:   f.m.faultIns.Value(),
		Batches:    f.batches.Load(),
		Samples:    f.samples.Load(),
	}
}

// Shutdown drains the fleet: new requests are refused with ErrDraining,
// every shard finishes its queue, and all resident learners are demoted to
// their checkpoint files. Idempotent. Returns the first drain error (a
// learner whose eviction save failed) after all shards stop, or ctx's error
// if the drain outruns it.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.draining = true
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stopCh) })
	for _, sh := range f.shards {
		select {
		case <-sh.done:
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain interrupted: %w", ctx.Err())
		}
	}
	var errs []string
	for _, sh := range f.shards {
		if sh.drainErr != nil {
			errs = append(errs, sh.drainErr.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("fleet: drain: %s", strings.Join(errs, "; "))
	}
	return nil
}

// run is the shard's engine loop — the serve-package single-writer loop,
// one instance per shard: every learner this shard owns is only ever
// touched from here.
func (s *shard) run() {
	defer close(s.done)
	for {
		select {
		case <-s.f.stopCh:
			s.drain()
			return
		case r := <-s.q:
			s.handle(r)
		}
	}
}

// handle resolves the user's learner (fault-in or first-contact creation),
// applies the request, refreshes the LRU position, and evicts past-budget
// learners.
func (s *shard) handle(r *request) {
	e, err := s.entryFor(r.user)
	if err != nil {
		r.resp <- response{err: err}
		return
	}
	s.lru.MoveToBack(e.elem) // back = most recently used
	if r.z != nil {
		class, err := s.safePredict(e, r.z)
		r.resp <- response{class: class, err: err}
	} else {
		resp := s.safeObserve(e, r)
		r.resp <- resp
	}
	s.evictOver()
}

// safePredict converts a learner panic into an error so one hostile request
// cannot take the shard down.
func (s *shard) safePredict(e *entry, z *tensor.Tensor) (class int, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.f.m.panics.Inc()
			err = fmt.Errorf("fleet: predict for user %q panicked: %v", e.user, p)
		}
	}()
	return e.l.Predict(z), nil
}

// safeObserve applies one observe batch, assigning the user's next stream
// index, with learner panics converted to errors.
func (s *shard) safeObserve(e *entry, r *request) (resp response) {
	defer func() {
		if p := recover(); p != nil {
			s.f.m.panics.Inc()
			resp = response{err: fmt.Errorf("fleet: observe for user %q panicked: %v", e.user, p)}
		}
	}()
	idx := e.batches
	if s.f.cfg.WAL != nil {
		// Durability first: the user-tagged record hits the log before the
		// learner sees the batch, so the (checkpoint, log suffix) pair always
		// covers acknowledged observes.
		rec := &api.LogRecord{User: e.user, Batch: idx, Domain: r.domain, Samples: make([]api.LogSample, len(r.samples))}
		for i, sm := range r.samples {
			rec.Samples[i] = api.LogSample{Latent: sm.Z.Data(), Label: sm.Label}
		}
		if _, err := s.f.cfg.WAL.Append(rec); err != nil {
			return response{err: fmt.Errorf("fleet: observe log append for user %q: %w", e.user, err)}
		}
	}
	e.l.Observe(cl.LatentBatch{Samples: r.samples, Index: idx, Domain: r.domain})
	e.batches++
	e.samples += len(r.samples)
	s.f.batches.Add(1)
	s.f.samples.Add(int64(len(r.samples)))
	return response{batch: idx, samples: e.samples}
}

// entryFor returns the user's resident entry, faulting it in from its
// eviction checkpoint or creating it on first contact.
func (s *shard) entryFor(user string) (*entry, error) {
	if e, ok := s.resident[user]; ok {
		return e, nil
	}
	_, seen := s.known[user]
	if !seen {
		// First contact on this shard: admit against the fleet-wide cap.
		if max := s.f.cfg.MaxUsers; max > 0 {
			if n := s.f.usersKnown.Add(1); n > int64(max) {
				s.f.usersKnown.Add(-1)
				return nil, fmt.Errorf("%w (max %d)", ErrTooManyUsers, max)
			}
		} else {
			s.f.usersKnown.Add(1)
		}
		s.known[user] = struct{}{}
	}
	l, err := s.f.cfg.New(user)
	if err != nil {
		return nil, fmt.Errorf("fleet: construct learner for user %q: %w", user, err)
	}
	e := &entry{user: user, l: l, caps: cl.Caps(l)}
	if e.caps.Snapshotter == nil {
		return nil, fmt.Errorf("fleet: method %q does not support snapshotting; it cannot live in an evicting fleet", l.Name())
	}
	path := s.f.userPath(user)
	if _, statErr := os.Stat(path); statErr == nil {
		// The user was evicted (or drained by a previous process): restore.
		t0 := time.Now()
		var st userState
		loadErr := checkpoint.Load(path, userKind, &st)
		if loadErr == nil {
			if st.User != user {
				return nil, fmt.Errorf("fleet: checkpoint %s holds user %q, want %q", path, st.User, user)
			}
			if st.Method != l.Name() {
				return nil, fmt.Errorf("fleet: checkpoint %s holds method %q, learner is %q", path, st.Method, l.Name())
			}
			loadErr = e.caps.Snapshotter.Restore(st.Learner)
		}
		switch {
		case loadErr == nil:
			e.batches, e.samples = st.Batches, st.Samples
		case s.f.cfg.WAL != nil:
			// Corrupt checkpoint. The observe log is the durable truth: fall
			// back to deterministic reconstruction plus a replay of every one
			// of the user's logged batches (the log-replay pass below starts
			// from batch 0). A failed Restore may have half-written the
			// learner, so build a clean one.
			l, err = s.f.cfg.New(user)
			if err != nil {
				return nil, fmt.Errorf("fleet: reconstruct learner for user %q: %w", user, err)
			}
			e.l, e.caps = l, cl.Caps(l)
			e.batches, e.samples = 0, 0
			s.f.m.logRebuilds.Inc()
		default:
			return nil, fmt.Errorf("fleet: fault-in user %q: %w", user, loadErr)
		}
		s.f.m.faultIns.Inc()
		s.f.m.faultInSeconds.ObserveSince(t0)
	}
	if s.f.cfg.WAL != nil {
		// Replay any of the user's logged batches past the checkpoint: a
		// crash before eviction leaves them only in the log, and a corrupt
		// checkpoint (handled above) replays the whole stream from zero.
		if err := s.replayUser(e); err != nil {
			return nil, err
		}
	}
	e.elem = s.lru.PushBack(e)
	s.resident[user] = e
	s.nResident.Store(int64(len(s.resident)))
	return e, nil
}

// replayUser applies every logged batch of e's user with index >= e.batches,
// in log order. Per-user batch indices are contiguous from zero, so a replay
// resuming at a checkpoint's position must find the next index or nothing —
// a gap means the log does not cover this user's stream and the fault-in
// fails rather than silently skipping observes.
func (s *shard) replayUser(e *entry) error {
	want := 1
	for _, d := range s.f.cfg.LatentShape {
		want *= d
	}
	replayed := 0
	var applyErr error
	err := s.f.cfg.WAL.Scan(s.f.cfg.WAL.Start(), func(rec *api.LogRecord) bool {
		if rec.User != e.user || rec.Batch < e.batches {
			return true
		}
		if rec.Batch != e.batches {
			applyErr = fmt.Errorf("fleet: observe log gap for user %q: at batch %d, next logged batch is %d (seq %d)",
				e.user, e.batches, rec.Batch, rec.Seq)
			return false
		}
		samples := make([]cl.LatentSample, len(rec.Samples))
		for i, sm := range rec.Samples {
			if len(sm.Latent) != want {
				applyErr = fmt.Errorf("fleet: log seq %d sample %d has %d elements, want %d", rec.Seq, i, len(sm.Latent), want)
				return false
			}
			samples[i] = cl.LatentSample{Z: tensor.FromSlice(sm.Latent, s.f.cfg.LatentShape...), Label: sm.Label, Domain: rec.Domain}
		}
		e.l.Observe(cl.LatentBatch{Samples: samples, Index: rec.Batch, Domain: rec.Domain})
		e.batches++
		e.samples += len(samples)
		replayed++
		return true
	})
	if err == nil {
		err = applyErr
	}
	if err != nil {
		return err
	}
	s.f.m.logReplayed.Add(int64(replayed))
	return nil
}

// evictOver demotes least-recently-used learners until the shard is within
// budget. A failed save keeps the learner resident (state is never dropped
// on the floor) and surfaces on the error counter; the next request retries.
func (s *shard) evictOver() {
	for len(s.resident) > s.budget {
		front := s.lru.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		if err := s.evict(e); err != nil {
			s.f.m.evictionErrors.Inc()
			// Re-arm: move the failing entry to MRU so the loop does not
			// spin on it, and stop trying this round.
			s.lru.MoveToBack(front)
			return
		}
	}
}

// evict snapshots one learner to its checkpoint file and drops it from the
// hot-set.
func (s *shard) evict(e *entry) error {
	t0 := time.Now()
	state, err := e.caps.Snapshotter.Snapshot()
	if err != nil {
		return fmt.Errorf("fleet: snapshot user %q: %w", e.user, err)
	}
	st := userState{Method: e.l.Name(), User: e.user, Batches: e.batches, Samples: e.samples, Learner: state}
	if err := checkpoint.Save(s.f.userPath(e.user), userKind, st); err != nil {
		return fmt.Errorf("fleet: evict user %q: %w", e.user, err)
	}
	s.lru.Remove(e.elem)
	delete(s.resident, e.user)
	s.nResident.Store(int64(len(s.resident)))
	s.f.m.evictions.Inc()
	s.f.m.evictionSeconds.ObserveSince(t0)
	return nil
}

// drain finishes the queue (no enqueuer can add more: Shutdown flips the
// drain flag under the write lock before stopCh closes), then demotes every
// resident learner to disk so a restarted fleet resumes each user
// bit-identically.
func (s *shard) drain() {
	for {
		select {
		case r := <-s.q:
			s.handle(r)
		default:
			for s.lru.Front() != nil {
				e := s.lru.Front().Value.(*entry)
				if err := s.evict(e); err != nil {
					s.f.m.evictionErrors.Inc()
					if s.drainErr == nil {
						s.drainErr = err
					}
					// Unpersistable state: drop it rather than loop forever;
					// the error reaches the caller through Shutdown.
					s.lru.Remove(e.elem)
					delete(s.resident, e.user)
					s.nResident.Store(int64(len(s.resident)))
				}
			}
			return
		}
	}
}
