// Package nn is a compact neural-network training framework: explicit-layer
// forward/backward propagation, SGD with momentum and weight decay, and the
// loss functions used by the continual-learning methods in this repository
// (cross-entropy, soft-target distillation, logit MSE).
//
// The design is a deliberate substitute for the PyTorch stack the paper uses:
// layers cache what their backward pass needs, and a Sequential chains them.
// Batch processing is done one sample at a time internally (NCHW without the
// N), matching the paper's online single-sample training regime.
//
// Every layer is generic over tensor.Float. The float32 instantiations carry
// their historical names (Dense = DenseOf[float32], ...) and are the fast
// tier all hot paths use; float64 instantiations form the reference tier,
// built by widening a float32 net with WidenLayer (see convert.go).
package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// ParamOf is a trainable parameter with its accumulated gradient.
type ParamOf[T tensor.Float] struct {
	Name string
	Data *tensor.Of[T]
	Grad *tensor.Of[T]
}

// Param is the fast-tier parameter type.
type Param = ParamOf[float32]

// ZeroGrad clears the accumulated gradient.
func (p *ParamOf[T]) ZeroGrad() { p.Grad.Zero() }

// Numel returns the number of scalar weights in the parameter.
func (p *ParamOf[T]) Numel() int { return p.Data.Len() }

// LayerOf is one differentiable stage. Forward consumes a single-sample input
// and returns the output; Backward consumes the gradient of the loss with
// respect to the output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way. Backward must be called
// only after a Forward in train mode, whose intermediate values the layer
// caches.
type LayerOf[T tensor.Float] interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward runs the layer. train selects training behaviour (caching of
	// intermediates; dropout etc. if applicable).
	Forward(x *tensor.Of[T], train bool) *tensor.Of[T]
	// Backward back-propagates grad through the most recent training Forward.
	Backward(grad *tensor.Of[T]) *tensor.Of[T]
	// Params returns the trainable parameters (possibly none).
	Params() []*ParamOf[T]
	// OutShape returns the output shape for a given input shape.
	OutShape(in []int) []int
}

// Layer is the fast-tier layer interface.
type Layer = LayerOf[float32]

// FrozenOf wraps a layer so its parameters are hidden from optimizers and its
// backward pass still propagates input gradients (needed when frozen layers
// sit between trainable ones).
type FrozenOf[T tensor.Float] struct{ Inner LayerOf[T] }

// Frozen is the fast-tier frozen wrapper.
type Frozen = FrozenOf[float32]

// Name implements Layer.
func (f *FrozenOf[T]) Name() string { return "frozen(" + f.Inner.Name() + ")" }

// Forward implements Layer.
func (f *FrozenOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	return f.Inner.Forward(x, train)
}

// Backward implements Layer.
func (f *FrozenOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] { return f.Inner.Backward(grad) }

// Params implements Layer: a frozen layer exposes no trainable parameters.
func (f *FrozenOf[T]) Params() []*ParamOf[T] { return nil }

// OutShape implements Layer.
func (f *FrozenOf[T]) OutShape(in []int) []int { return f.Inner.OutShape(in) }

// SequentialOf chains layers. It is itself a layer.
type SequentialOf[T tensor.Float] struct {
	Label  string
	Layers []LayerOf[T]

	// bwStop caches the bottom-most parameterized layer index for
	// BackwardSGDBatchFrom (Params() allocates, so the scan must not run every
	// step). bwStopKey holds start+1; the zero value means "not yet computed".
	bwStopKey, bwStop int
}

// Sequential is the fast-tier layer chain.
type Sequential = SequentialOf[float32]

// NewSequential builds a fast-tier Sequential with the given label and layers.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Label: label, Layers: layers}
}

// Name implements Layer.
func (s *SequentialOf[T]) Name() string { return s.Label }

// Forward implements Layer.
func (s *SequentialOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *SequentialOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *SequentialOf[T]) Params() []*ParamOf[T] {
	var ps []*ParamOf[T]
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (s *SequentialOf[T]) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// Append adds layers to the end of the chain.
func (s *SequentialOf[T]) Append(layers ...LayerOf[T]) { s.Layers = append(s.Layers, layers...) }

// NumParams returns the total scalar parameter count.
func NumParams(l Layer) int { return NumParamsOf(l) }

// NumParamsOf is NumParams for any precision tier.
func NumParamsOf[T tensor.Float](l LayerOf[T]) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Numel()
	}
	return n
}

// ZeroGrads clears all parameter gradients of a layer tree.
func ZeroGrads(l Layer) { ZeroGradsOf(l) }

// ZeroGradsOf is ZeroGrads for any precision tier.
func ZeroGradsOf[T tensor.Float](l LayerOf[T]) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// CopyParams copies parameter data from src to dst. The two layer trees must
// have identical parameter structure.
func CopyParams(dst, src Layer) error { return CopyParamsOf(dst, src) }

// CopyParamsOf is CopyParams for any precision tier.
func CopyParamsOf[T tensor.Float](dst, src LayerOf[T]) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Data.Len() != sp[i].Data.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch", dp[i].Name)
		}
		dp[i].Data.CopyFrom(sp[i].Data)
	}
	return nil
}
