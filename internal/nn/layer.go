// Package nn is a compact neural-network training framework: explicit-layer
// forward/backward propagation, SGD with momentum and weight decay, and the
// loss functions used by the continual-learning methods in this repository
// (cross-entropy, soft-target distillation, logit MSE).
//
// The design is a deliberate substitute for the PyTorch stack the paper uses:
// layers cache what their backward pass needs, and a Sequential chains them.
// Batch processing is done one sample at a time internally (NCHW without the
// N), matching the paper's online single-sample training regime.
package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Numel returns the number of scalar weights in the parameter.
func (p *Param) Numel() int { return p.Data.Len() }

// Layer is one differentiable stage. Forward consumes a single-sample input
// and returns the output; Backward consumes the gradient of the loss with
// respect to the output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way. Backward must be called
// only after a Forward in train mode, whose intermediate values the layer
// caches.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward runs the layer. train selects training behaviour (caching of
	// intermediates; dropout etc. if applicable).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward back-propagates grad through the most recent training Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
	// OutShape returns the output shape for a given input shape.
	OutShape(in []int) []int
}

// Frozen wraps a layer so its parameters are hidden from optimizers and its
// backward pass still propagates input gradients (needed when frozen layers
// sit between trainable ones).
type Frozen struct{ Inner Layer }

// Name implements Layer.
func (f *Frozen) Name() string { return "frozen(" + f.Inner.Name() + ")" }

// Forward implements Layer.
func (f *Frozen) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return f.Inner.Forward(x, train)
}

// Backward implements Layer.
func (f *Frozen) Backward(grad *tensor.Tensor) *tensor.Tensor { return f.Inner.Backward(grad) }

// Params implements Layer: a frozen layer exposes no trainable parameters.
func (f *Frozen) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Frozen) OutShape(in []int) []int { return f.Inner.OutShape(in) }

// Sequential chains layers. It is itself a Layer.
type Sequential struct {
	Label  string
	Layers []Layer
}

// NewSequential builds a Sequential with the given label and layers.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Label: label, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.Label }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// NumParams returns the total scalar parameter count.
func NumParams(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Numel()
	}
	return n
}

// ZeroGrads clears all parameter gradients of a layer tree.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// CopyParams copies parameter data from src to dst. The two layer trees must
// have identical parameter structure.
func CopyParams(dst, src Layer) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Data.Len() != sp[i].Data.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch", dp[i].Name)
		}
		dp[i].Data.CopyFrom(sp[i].Data)
	}
	return nil
}
