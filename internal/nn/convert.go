package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// WidenLayer deep-copies a fast-tier (float32) layer tree into the float64
// reference tier: parameters, frozen statistics and hyperparameters are
// widened, gradients start zeroed, and no scratch state is shared with the
// source. The widened tree is an independent model — training it never
// touches the original.
//
// Dropout with P > 0 is rejected: its RNG stream is part of the layer's
// training behaviour and cannot be duplicated into an equivalent independent
// copy (the two trees would need to consume the same random sequence to stay
// comparable).
func WidenLayer(l Layer) (LayerOf[float64], error) {
	switch v := l.(type) {
	case *Sequential:
		out := &SequentialOf[float64]{Label: v.Label, Layers: make([]LayerOf[float64], 0, len(v.Layers))}
		for _, inner := range v.Layers {
			w, err := WidenLayer(inner)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.Label, err)
			}
			out.Layers = append(out.Layers, w)
		}
		return out, nil
	case *Frozen:
		inner, err := WidenLayer(v.Inner)
		if err != nil {
			return nil, err
		}
		return &FrozenOf[float64]{Inner: inner}, nil
	case *Dense:
		return &DenseOf[float64]{
			label: v.label,
			w:     widenParam(v.w),
			b:     widenParam(v.b),
			inCap: v.inCap,
		}, nil
	case *Conv2D:
		return &Conv2DOf[float64]{
			label: v.label, inC: v.inC, outC: v.outC,
			kh: v.kh, kw: v.kw, stride: v.stride, pad: v.pad,
			w: widenParam(v.w), b: widenParam(v.b),
		}, nil
	case *DepthwiseConv2D:
		return &DepthwiseConv2DOf[float64]{
			label: v.label, c: v.c, k: v.k, stride: v.stride, pad: v.pad,
			w: widenParam(v.w), b: widenParam(v.b),
		}, nil
	case *BatchNorm2D:
		return &BatchNorm2DOf[float64]{
			label: v.label, c: v.c,
			gamma: widenParam(v.gamma), beta: widenParam(v.beta),
			mean: tensor.Widen(v.mean), vari: tensor.Widen(v.vari),
			eps: float64(v.eps),
		}, nil
	case *GroupNorm2D:
		return &GroupNorm2DOf[float64]{
			label: v.label, c: v.c, g: v.g,
			gamma: widenParam(v.gamma), beta: widenParam(v.beta),
			eps: float64(v.eps),
		}, nil
	case *ReLU:
		return &ReLUOf[float64]{Cap: float64(v.Cap)}, nil
	case *Dropout:
		if v.P > 0 {
			return nil, fmt.Errorf("nn: cannot widen Dropout(p=%g): its RNG stream is not duplicable", v.P)
		}
		return &DropoutOf[float64]{}, nil
	case *GlobalAvgPool2D:
		return &GlobalAvgPool2DOf[float64]{}, nil
	case *Flatten:
		return &FlattenOf[float64]{}, nil
	default:
		return nil, fmt.Errorf("nn: cannot widen layer type %T (%s)", l, l.Name())
	}
}

func widenParam(p *Param) *ParamOf[float64] {
	return &ParamOf[float64]{
		Name: p.Name,
		Data: tensor.Widen(p.Data),
		Grad: tensor.NewOf[float64](p.Grad.Shape()...),
	}
}
