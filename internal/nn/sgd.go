package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// SGDOf is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, the optimizer the paper trains with (lr=0.001).
type SGDOf[T tensor.Float] struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// GradClip, when positive, rescales each parameter's gradient so its L2
	// norm does not exceed this value. The paper attributes EWC++/LwF's
	// collapse to gradient explosion; clipping is exposed so that behaviour
	// can be studied.
	GradClip float64
	// Fused opts the optimizer into the single-pass fused update kernels
	// (FusedStepParam / layer BackwardSGD): scale, weight decay, momentum,
	// weight update and gradient zeroing happen in one sweep per parameter,
	// bit-identical to the split Scale+StepParam+ZeroGrad sequence. NewSGD
	// enables it; zero-value SGD literals keep the split path. GradClip > 0
	// always falls back to the split path (clipping needs a global norm).
	Fused bool

	velocity map[*ParamOf[T]]*tensor.Of[T]
	ws       *tensor.WorkspaceOf[T]
}

// SGD is the fast-tier optimizer.
type SGD = SGDOf[float32]

// SetWorkspace implements WorkspaceUser: clip/decay scratch is borrowed from
// ws instead of cloning the gradient on every step.
func (s *SGDOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { s.ws = ws }

// NewSGD creates a fast-tier optimizer with the given learning rate, no
// momentum, and the fused update kernels enabled.
func NewSGD(lr float64) *SGD { return NewSGDOf[float32](lr) }

// NewSGDOf creates an optimizer for either precision tier with the given
// learning rate, no momentum, and the fused update kernels enabled.
func NewSGDOf[T tensor.Float](lr float64) *SGDOf[T] {
	return &SGDOf[T]{LR: lr, Fused: true, velocity: map[*ParamOf[T]]*tensor.Of[T]{}}
}

// Step applies one update to every parameter of the layer tree using the
// gradients accumulated since the last ZeroGrads, then leaves the gradients
// untouched (call ZeroGrads before the next accumulation).
func (s *SGDOf[T]) Step(model LayerOf[T]) {
	for _, p := range model.Params() {
		s.StepParam(p)
	}
}

// velocityFor returns the momentum buffer for p, creating it on first use.
func (s *SGDOf[T]) velocityFor(p *ParamOf[T]) *tensor.Of[T] {
	if s.velocity == nil {
		s.velocity = map[*ParamOf[T]]*tensor.Of[T]{}
	}
	v, ok := s.velocity[p]
	if !ok {
		v = tensor.NewOf[T](p.Data.Shape()...)
		s.velocity[p] = v
	}
	return v
}

// StepParam updates a single parameter. Clip and weight decay share one
// scratch tensor borrowed from the workspace (a fresh clone when none is
// attached), returned after the final in-place update.
func (s *SGDOf[T]) StepParam(p *ParamOf[T]) {
	g := p.Grad
	var scratch *tensor.Of[T]
	if s.GradClip > 0 {
		if n := g.Norm2(); n > s.GradClip {
			scratch = s.ws.Get(g.Shape()...)
			scratch.CopyFrom(g)
			scratch.Scale(T(s.GradClip / n))
			g = scratch
		}
	}
	if s.WeightDecay != 0 {
		// L2 penalty folded into the gradient.
		if scratch == nil {
			scratch = s.ws.Get(g.Shape()...)
			scratch.CopyFrom(g)
			g = scratch
		}
		g.AddScaled(T(s.WeightDecay), p.Data)
	}
	if s.Momentum != 0 {
		v := s.velocityFor(p)
		v.Scale(T(s.Momentum))
		v.AddScaled(1, g)
		g = v
	}
	p.Data.AddScaled(T(-s.LR), g)
	s.ws.Put(scratch)
}

// VelocitySnapshot deep-copies the momentum state aligned with model.Params()
// (zero tensors where a parameter has not been stepped yet). Returns nil when
// the optimizer holds no momentum state at all — the velocity map is keyed by
// parameter pointer, so checkpoints must serialize it positionally.
func (s *SGDOf[T]) VelocitySnapshot(model LayerOf[T]) []*tensor.Of[T] {
	if len(s.velocity) == 0 {
		return nil
	}
	ps := model.Params()
	out := make([]*tensor.Of[T], len(ps))
	for i, p := range ps {
		if v, ok := s.velocity[p]; ok {
			out[i] = v.Clone()
		} else {
			out[i] = tensor.NewOf[T](p.Data.Shape()...)
		}
	}
	return out
}

// SetVelocitySnapshot restores momentum state captured by VelocitySnapshot
// against the same architecture. A nil snapshot clears all momentum; shapes
// are validated before any state is touched.
func (s *SGDOf[T]) SetVelocitySnapshot(model LayerOf[T], vs []*tensor.Of[T]) error {
	if vs == nil {
		s.velocity = map[*ParamOf[T]]*tensor.Of[T]{}
		return nil
	}
	ps := model.Params()
	if len(vs) != len(ps) {
		return fmt.Errorf("nn: velocity snapshot has %d tensors, model has %d params", len(vs), len(ps))
	}
	for i, p := range ps {
		if vs[i] == nil || !vs[i].SameShape(p.Data) {
			return fmt.Errorf("nn: velocity snapshot %d does not match param shape %v", i, p.Data.Shape())
		}
	}
	s.velocity = make(map[*ParamOf[T]]*tensor.Of[T], len(ps))
	for i, p := range ps {
		s.velocity[p] = vs[i].Clone()
	}
	return nil
}
