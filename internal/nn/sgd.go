package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, the optimizer the paper trains with (lr=0.001).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// GradClip, when positive, rescales each parameter's gradient so its L2
	// norm does not exceed this value. The paper attributes EWC++/LwF's
	// collapse to gradient explosion; clipping is exposed so that behaviour
	// can be studied.
	GradClip float64

	velocity map[*Param]*tensor.Tensor
	ws       *tensor.Workspace
}

// SetWorkspace implements WorkspaceUser: clip/decay scratch is borrowed from
// ws instead of cloning the gradient on every step.
func (s *SGD) SetWorkspace(ws *tensor.Workspace) { s.ws = ws }

// NewSGD creates an optimizer with the given learning rate and no momentum.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr, velocity: map[*Param]*tensor.Tensor{}} }

// Step applies one update to every parameter of the layer tree using the
// gradients accumulated since the last ZeroGrads, then leaves the gradients
// untouched (call ZeroGrads before the next accumulation).
func (s *SGD) Step(model Layer) {
	for _, p := range model.Params() {
		s.StepParam(p)
	}
}

// StepParam updates a single parameter. Clip and weight decay share one
// scratch tensor borrowed from the workspace (a fresh clone when none is
// attached), returned after the final in-place update.
func (s *SGD) StepParam(p *Param) {
	g := p.Grad
	var scratch *tensor.Tensor
	if s.GradClip > 0 {
		if n := g.Norm2(); n > s.GradClip {
			scratch = s.ws.Get(g.Shape()...)
			scratch.CopyFrom(g)
			scratch.Scale(float32(s.GradClip / n))
			g = scratch
		}
	}
	if s.WeightDecay != 0 {
		// L2 penalty folded into the gradient.
		if scratch == nil {
			scratch = s.ws.Get(g.Shape()...)
			scratch.CopyFrom(g)
			g = scratch
		}
		g.AddScaled(float32(s.WeightDecay), p.Data)
	}
	if s.Momentum != 0 {
		if s.velocity == nil {
			s.velocity = map[*Param]*tensor.Tensor{}
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Data.Shape()...)
			s.velocity[p] = v
		}
		v.Scale(float32(s.Momentum))
		v.AddScaled(1, g)
		g = v
	}
	p.Data.AddScaled(float32(-s.LR), g)
	s.ws.Put(scratch)
}

// VelocitySnapshot deep-copies the momentum state aligned with model.Params()
// (zero tensors where a parameter has not been stepped yet). Returns nil when
// the optimizer holds no momentum state at all — the velocity map is keyed by
// parameter pointer, so checkpoints must serialize it positionally.
func (s *SGD) VelocitySnapshot(model Layer) []*tensor.Tensor {
	if len(s.velocity) == 0 {
		return nil
	}
	ps := model.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		if v, ok := s.velocity[p]; ok {
			out[i] = v.Clone()
		} else {
			out[i] = tensor.New(p.Data.Shape()...)
		}
	}
	return out
}

// SetVelocitySnapshot restores momentum state captured by VelocitySnapshot
// against the same architecture. A nil snapshot clears all momentum; shapes
// are validated before any state is touched.
func (s *SGD) SetVelocitySnapshot(model Layer, vs []*tensor.Tensor) error {
	if vs == nil {
		s.velocity = map[*Param]*tensor.Tensor{}
		return nil
	}
	ps := model.Params()
	if len(vs) != len(ps) {
		return fmt.Errorf("nn: velocity snapshot has %d tensors, model has %d params", len(vs), len(ps))
	}
	for i, p := range ps {
		if vs[i] == nil || !vs[i].SameShape(p.Data) {
			return fmt.Errorf("nn: velocity snapshot %d does not match param shape %v", i, p.Data.Shape())
		}
	}
	s.velocity = make(map[*Param]*tensor.Tensor, len(ps))
	for i, p := range ps {
		s.velocity[p] = vs[i].Clone()
	}
	return nil
}
