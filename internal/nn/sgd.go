package nn

import "chameleon/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, the optimizer the paper trains with (lr=0.001).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// GradClip, when positive, rescales each parameter's gradient so its L2
	// norm does not exceed this value. The paper attributes EWC++/LwF's
	// collapse to gradient explosion; clipping is exposed so that behaviour
	// can be studied.
	GradClip float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD creates an optimizer with the given learning rate and no momentum.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr, velocity: map[*Param]*tensor.Tensor{}} }

// Step applies one update to every parameter of the layer tree using the
// gradients accumulated since the last ZeroGrads, then leaves the gradients
// untouched (call ZeroGrads before the next accumulation).
func (s *SGD) Step(model Layer) {
	for _, p := range model.Params() {
		s.StepParam(p)
	}
}

// StepParam updates a single parameter.
func (s *SGD) StepParam(p *Param) {
	g := p.Grad
	if s.GradClip > 0 {
		if n := g.Norm2(); n > s.GradClip {
			g = g.Clone()
			g.Scale(float32(s.GradClip / n))
		}
	}
	if s.WeightDecay != 0 {
		// L2 penalty folded into the gradient.
		g = g.Clone()
		g.AddScaled(float32(s.WeightDecay), p.Data)
	}
	if s.Momentum != 0 {
		if s.velocity == nil {
			s.velocity = map[*Param]*tensor.Tensor{}
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Data.Shape()...)
			s.velocity[p] = v
		}
		v.Scale(float32(s.Momentum))
		v.AddScaled(1, g)
		g = v
	}
	p.Data.AddScaled(float32(-s.LR), g)
}
