package nn

import (
	"fmt"
	"math"

	"chameleon/internal/tensor"
)

// CrossEntropy returns the negative log-likelihood of label under
// softmax(logits) and the gradient of the loss with respect to the logits
// (softmax − onehot).
func CrossEntropy(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Len())
	loss = CrossEntropyInto(logits, label, grad)
	return loss, grad
}

// CrossEntropyInto is CrossEntropy writing the gradient into a caller-owned
// tensor (overwritten), so batched training loops can reuse one scratch
// gradient instead of allocating per sample. grad must have logits.Len()
// elements.
func CrossEntropyInto(logits *tensor.Tensor, label int, grad *tensor.Tensor) (loss float64) {
	if logits.NDim() != 1 {
		panic(fmt.Sprintf("nn: CrossEntropy expects 1-D logits, got %v", logits.Shape()))
	}
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, logits.Len()))
	}
	if grad.Len() != logits.Len() {
		panic(fmt.Sprintf("nn: CrossEntropyInto grad size %d, want %d", grad.Len(), logits.Len()))
	}
	ls := tensor.LogSoftmax(logits)
	loss = -float64(ls.Data()[label])
	for i, v := range ls.Data() {
		grad.Data()[i] = float32(math.Exp(float64(v)))
	}
	grad.Data()[label] -= 1
	return loss
}

// SoftCrossEntropy is the knowledge-distillation loss: the cross-entropy of
// the temperature-softened teacher distribution p = softmax(teacher/T) under
// the student distribution q = softmax(student/T). It returns the loss and
// its exact gradient with respect to the student logits, (q−p)/T. Callers
// that want Hinton's conventional T² loss scaling (so soft and hard gradients
// stay commensurate as T grows) should multiply the gradient by T².
func SoftCrossEntropy(student, teacher *tensor.Tensor, temperature float64) (loss float64, grad *tensor.Tensor) {
	if student.Len() != teacher.Len() {
		panic(fmt.Sprintf("nn: SoftCrossEntropy size mismatch %v vs %v", student.Shape(), teacher.Shape()))
	}
	if temperature <= 0 {
		temperature = 1
	}
	n := student.Len()
	sT := tensor.New(n)
	tT := tensor.New(n)
	invT := float32(1 / temperature)
	for i := 0; i < n; i++ {
		sT.Data()[i] = student.Data()[i] * invT
		tT.Data()[i] = teacher.Data()[i] * invT
	}
	logQ := tensor.LogSoftmax(sT)
	p := tensor.Softmax(tT)
	grad = tensor.New(n)
	for i := 0; i < n; i++ {
		loss -= float64(p.Data()[i]) * float64(logQ.Data()[i])
		grad.Data()[i] = (float32(math.Exp(float64(logQ.Data()[i]))) - p.Data()[i]) * invT
	}
	return loss, grad
}

// MSELogits is the Dark Experience Replay consistency loss: mean squared
// error between current logits and stored logits, with gradient.
func MSELogits(logits, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if logits.Len() != target.Len() {
		panic(fmt.Sprintf("nn: MSELogits size mismatch %v vs %v", logits.Shape(), target.Shape()))
	}
	n := logits.Len()
	grad = tensor.New(n)
	for i := 0; i < n; i++ {
		d := logits.Data()[i] - target.Data()[i]
		loss += float64(d) * float64(d)
		grad.Data()[i] = 2 * d / float32(n)
	}
	return loss / float64(n), grad
}
