package nn

import (
	"fmt"
	"math"

	"chameleon/internal/tensor"
)

// CrossEntropy returns the negative log-likelihood of label under
// softmax(logits) and the gradient of the loss with respect to the logits
// (softmax − onehot).
func CrossEntropy[T tensor.Float](logits *tensor.Of[T], label int) (loss float64, grad *tensor.Of[T]) {
	grad = tensor.NewOf[T](logits.Len())
	loss = CrossEntropyInto(logits, label, grad)
	return loss, grad
}

// CrossEntropyInto is CrossEntropy writing the gradient into a caller-owned
// tensor (overwritten), so batched training loops can reuse one scratch
// gradient instead of allocating per sample. grad must have logits.Len()
// elements.
func CrossEntropyInto[T tensor.Float](logits *tensor.Of[T], label int, grad *tensor.Of[T]) (loss float64) {
	if logits.NDim() != 1 {
		panic(fmt.Sprintf("nn: CrossEntropy expects 1-D logits, got %v", logits.Shape()))
	}
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, logits.Len()))
	}
	if grad.Len() != logits.Len() {
		panic(fmt.Sprintf("nn: CrossEntropyInto grad size %d, want %d", grad.Len(), logits.Len()))
	}
	// The log-softmax lands directly in grad, which then exponentiates in
	// place — the whole loss is alloc-free for the caller's reused scratch.
	tensor.LogSoftmaxInto(grad, logits)
	gd := grad.Data()
	loss = -float64(gd[label])
	for i, v := range gd {
		gd[i] = T(math.Exp(float64(v)))
	}
	gd[label] -= 1
	return loss
}

// CrossEntropyRowsInto is CrossEntropyInto over a [N, C] logit matrix: row r
// is scored against labels[r], the per-row gradients (softmax − onehot) land
// in the matching rows of grad, and the returned loss is the sum over rows.
// grad must have logits' element count; grad == logits is allowed (the
// batched training path reuses the logit matrix as its gradient buffer). The
// per-row math is the 1-D kernel's exactly — same log-softmax, same exp —
// and the loss sum accumulates in ascending row order, so the result is
// bit-identical to N per-sample CrossEntropyInto calls summed in stream
// order.
func CrossEntropyRowsInto[T tensor.Float](logits *tensor.Of[T], labels []int, grad *tensor.Of[T]) (loss float64) {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropyRows expects 2-D logits, got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropyRows got %d labels for %d rows", len(labels), n))
	}
	if grad.Len() != logits.Len() {
		panic(fmt.Sprintf("nn: CrossEntropyRowsInto grad size %d, want %d", grad.Len(), logits.Len()))
	}
	for r, label := range labels {
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range for %d classes (row %d)", label, c, r))
		}
	}
	tensor.LogSoftmaxInto(grad, logits)
	gd := grad.Data()
	for r, label := range labels {
		row := gd[r*c : (r+1)*c]
		loss -= float64(row[label])
		for i, v := range row {
			row[i] = T(math.Exp(float64(v)))
		}
		row[label] -= 1
	}
	return loss
}

// SoftCrossEntropy is the knowledge-distillation loss: the cross-entropy of
// the temperature-softened teacher distribution p = softmax(teacher/T) under
// the student distribution q = softmax(student/T). It returns the loss and
// its exact gradient with respect to the student logits, (q−p)/T. Callers
// that want Hinton's conventional T² loss scaling (so soft and hard gradients
// stay commensurate as T grows) should multiply the gradient by T².
func SoftCrossEntropy[T tensor.Float](student, teacher *tensor.Of[T], temperature float64) (loss float64, grad *tensor.Of[T]) {
	grad = tensor.NewOf[T](student.Len())
	loss = SoftCrossEntropyInto(student, teacher, temperature, grad, tensor.NewOf[T](teacher.Len()))
	return loss, grad
}

// SoftCrossEntropyInto is SoftCrossEntropy writing the gradient into a
// caller-owned tensor (overwritten). scratch must match teacher in size and
// is clobbered with the softened teacher distribution; reusing both buffers
// makes the distillation step alloc-free.
func SoftCrossEntropyInto[T tensor.Float](student, teacher *tensor.Of[T], temperature float64, grad, scratch *tensor.Of[T]) (loss float64) {
	if student.Len() != teacher.Len() {
		panic(fmt.Sprintf("nn: SoftCrossEntropy size mismatch %v vs %v", student.Shape(), teacher.Shape()))
	}
	n := student.Len()
	if grad.Len() != n || scratch.Len() != n {
		panic(fmt.Sprintf("nn: SoftCrossEntropyInto grad size %d, scratch size %d, want %d", grad.Len(), scratch.Len(), n))
	}
	if temperature <= 0 {
		temperature = 1
	}
	invT := T(1 / temperature)
	gd, pd := grad.Data(), scratch.Data()
	for i := 0; i < n; i++ {
		gd[i] = student.Data()[i] * invT
		pd[i] = teacher.Data()[i] * invT
	}
	tensor.LogSoftmaxInto(grad, grad) // gd = logQ
	tensor.SoftmaxInto(scratch, scratch)
	for i := 0; i < n; i++ {
		logQ := gd[i]
		loss -= float64(pd[i]) * float64(logQ)
		gd[i] = (T(math.Exp(float64(logQ))) - pd[i]) * invT
	}
	return loss
}

// MSELogits is the Dark Experience Replay consistency loss: mean squared
// error between current logits and stored logits, with gradient.
func MSELogits[T tensor.Float](logits, target *tensor.Of[T]) (loss float64, grad *tensor.Of[T]) {
	grad = tensor.NewOf[T](logits.Len())
	loss = MSELogitsInto(logits, target, grad)
	return loss, grad
}

// MSELogitsInto is MSELogits writing the gradient into a caller-owned tensor
// (overwritten), for alloc-free replay steps.
func MSELogitsInto[T tensor.Float](logits, target, grad *tensor.Of[T]) (loss float64) {
	if logits.Len() != target.Len() {
		panic(fmt.Sprintf("nn: MSELogits size mismatch %v vs %v", logits.Shape(), target.Shape()))
	}
	n := logits.Len()
	if grad.Len() != n {
		panic(fmt.Sprintf("nn: MSELogitsInto grad size %d, want %d", grad.Len(), n))
	}
	gd := grad.Data()
	for i := 0; i < n; i++ {
		d := logits.Data()[i] - target.Data()[i]
		loss += float64(d) * float64(d)
		gd[i] = 2 * d / T(n)
	}
	return loss / float64(n)
}
