package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// FusedLayer is the optional Layer extension behind the raw-speed training
// tier: BackwardSGD computes the layer's backward pass and applies the SGD
// update to its parameters in the same sweep, returning the input gradient
// exactly like Backward. The fused pass must be bit-identical to
//
//	gx := l.Backward(grad)
//	for _, p := range l.Params() { scale by invScale; opt.StepParam(p); zero }
//
// for the same optimizer state: per element the operation sequence is
// add-delta, scale, weight decay, momentum, update, zero — the same FP
// expressions in the same order as the split path, just without the extra
// memory round-trips through the gradient tensors. invScale is the 1/denom
// batch normalisation the split path applies via Grad.Scale (pass 1 to skip,
// matching Head.Step's denom==1 fast path).
//
// Callers must check opt.Fused && opt.GradClip == 0 before taking this path;
// the FusedStep* helpers fall back to the split kernels otherwise, so the
// result is correct either way, merely not fused.
type FusedLayer[T tensor.Float] interface {
	BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T]
}

// FusedStepParam is the single-pass update kernel for one parameter: in one
// sweep over the weights it scales the accumulated gradient by invScale,
// folds in weight decay, advances momentum, applies the learning-rate update
// and zeroes the gradient for the next accumulation. Bit-identical to
// Grad.Scale(invScale) + StepParam(p) + Grad.Zero().
func (s *SGDOf[T]) FusedStepParam(p *ParamOf[T], invScale T) {
	s.FusedStepDelta(p, nil, invScale)
}

// FusedStepDelta is FusedStepParam with a final gradient contribution that
// never touched p.Grad: the effective gradient element is p.Grad[i] +
// delta[i], exactly the value the split path would hold after its last
// accumulation. Conv layers pass their backward GEMM scratch here so the
// final sample's gradient flows straight into the update without a store/load
// round-trip through p.Grad. delta may be nil (plain fused step) and is left
// untouched; p.Grad is zeroed.
//
// GradClip > 0 (or Fused unset) falls back to the split kernels — clipping
// needs the full gradient's global norm before any element updates.
func (s *SGDOf[T]) FusedStepDelta(p *ParamOf[T], delta []T, invScale T) {
	gd := p.Grad.Data()
	if delta != nil && len(delta) != len(gd) {
		panic(fmt.Sprintf("nn: FusedStepDelta delta size %d, want %d", len(delta), len(gd)))
	}
	if s.GradClip > 0 || !s.Fused {
		if delta != nil {
			for i, dv := range delta {
				gd[i] += dv
			}
		}
		if invScale != 1 {
			p.Grad.Scale(invScale)
		}
		s.StepParam(p)
		p.Grad.Zero()
		return
	}
	w := p.Data.Data()
	wdec := T(s.WeightDecay)
	m := T(s.Momentum)
	lrNeg := T(-s.LR)
	var vd []T
	if s.Momentum != 0 {
		vd = s.velocityFor(p).Data()
	}
	for i := range w {
		g := gd[i]
		if delta != nil {
			g += delta[i]
		}
		if invScale != 1 {
			g *= invScale
		}
		if wdec != 0 {
			g += wdec * w[i]
		}
		if vd != nil {
			v := vd[i]
			v *= m
			v += g
			vd[i] = v
			g = v
		}
		w[i] += lrNeg * g
		gd[i] = 0
	}
}

// BackwardSGD implements FusedLayer by folding the update into the backward
// walk: each layer's parameters are stepped the moment its backward completes.
// Layers without a fused kernel fall back to Backward + FusedStepParam, which
// preserves bit-identity (every layer's backward reads only its own, not yet
// updated, weights).
func (s *SequentialOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	g := grad
	for i := len(s.Layers) - 1; i >= 0; i-- {
		l := s.Layers[i]
		if fl, ok := l.(FusedLayer[T]); ok {
			g = fl.BackwardSGD(g, opt, invScale)
			continue
		}
		g = l.Backward(g)
		for _, p := range l.Params() {
			opt.FusedStepDelta(p, nil, invScale)
		}
	}
	return g
}

// BackwardSGD implements FusedLayer with the backward pass and the weight
// update truly folded: one sweep per weight row computes the input gradient
// from the pre-update weights, forms the effective gradient (accumulated +
// this sample's outer-product term), and applies scale/decay/momentum/update
// in place — W is read and written exactly once instead of the split path's
// three passes (backward accumulate, scale, step).
func (d *DenseOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	if d.gx == nil {
		d.gx = d.ws.Get(d.inCap)
	}
	if opt.GradClip > 0 || !opt.Fused {
		d.BackwardInto(d.gx, grad)
		opt.FusedStepDelta(d.w, nil, invScale)
		opt.FusedStepDelta(d.b, nil, invScale)
		return d.gx
	}
	if d.x == nil {
		panic("nn: Dense.BackwardSGD before training Forward")
	}
	out, in := d.Out(), d.inCap
	if grad.Len() != out {
		panic(fmt.Sprintf("nn: %s BackwardSGD grad %d, want %d", d.label, grad.Len(), out))
	}
	gw, gb := d.w.Grad.Data(), d.b.Grad.Data()
	gd, wd, xd := grad.Data(), d.w.Data.Data(), d.x.Data()
	bd := d.b.Data.Data()
	wdec := T(opt.WeightDecay)
	m := T(opt.Momentum)
	lrNeg := T(-opt.LR)
	var vw, vb []T
	if opt.Momentum != 0 {
		vw = opt.velocityFor(d.w).Data()
		vb = opt.velocityFor(d.b).Data()
	}
	d.gx.Zero()
	gxd := d.gx.Data()
	for o := 0; o < out; o++ {
		g := gd[o]
		gB := gb[o] + g
		if invScale != 1 {
			gB *= invScale
		}
		if wdec != 0 {
			gB += wdec * bd[o]
		}
		if vb != nil {
			v := vb[o]
			v *= m
			v += gB
			vb[o] = v
			gB = v
		}
		bd[o] += lrNeg * gB
		gb[o] = 0
		wRow := wd[o*in : (o+1)*in]
		gwRow := gw[o*in : (o+1)*in]
		var vRow []T
		if vw != nil {
			vRow = vw[o*in : (o+1)*in]
		}
		// Fast-tier dispatch (resolved at instantiation time): float32 rows
		// run the specialised fold kernels, which execute the same
		// per-element expression sequence as the generic loops below and are
		// therefore bit-identical to them — and to the split path.
		if g32, ok := any(g).(float32); ok {
			var v32 []float32
			if vRow != nil {
				v32 = any(vRow).([]float32)
			}
			w32, gw32 := any(wRow).([]float32), any(gwRow).([]float32)
			inv32, wdec32 := any(invScale).(float32), any(wdec).(float32)
			m32, lr32 := any(m).(float32), any(lrNeg).(float32)
			if g != 0 {
				tensor.FusedDenseRow32(any(gxd).([]float32), w32, gw32, v32, any(xd).([]float32), g32, inv32, wdec32, m32, lr32)
			} else {
				tensor.FusedUpdateRow32(w32, gw32, v32, inv32, wdec32, m32, lr32)
			}
			continue
		}
		if g != 0 {
			for i, xv := range xd {
				wv := wRow[i]
				gxd[i] += g * wv
				ge := gwRow[i] + g*xv
				if invScale != 1 {
					ge *= invScale
				}
				if wdec != 0 {
					ge += wdec * wv
				}
				if vRow != nil {
					v := vRow[i]
					v *= m
					v += ge
					vRow[i] = v
					ge = v
				}
				wRow[i] = wv + lrNeg*ge
				gwRow[i] = 0
			}
		} else {
			// The split path skips the outer-product and input-gradient terms
			// for a zero output gradient, but the update must still run: gwRow
			// may hold earlier samples' accumulation and momentum decays every
			// step regardless.
			for i := range wRow {
				wv := wRow[i]
				ge := gwRow[i]
				if invScale != 1 {
					ge *= invScale
				}
				if wdec != 0 {
					ge += wdec * wv
				}
				if vRow != nil {
					v := vRow[i]
					v *= m
					v += ge
					vRow[i] = v
					ge = v
				}
				wRow[i] = wv + lrNeg*ge
				gwRow[i] = 0
			}
		}
	}
	return d.gx
}

// BackwardSGD implements FusedLayer: the reshape has no parameters, so this
// is just Backward.
func (f *FlattenOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	return f.Backward(grad)
}

// BackwardSGD implements FusedLayer: no parameters, just the masked gradient.
func (r *ReLUOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	return r.Backward(grad)
}

// BackwardSGD implements FusedLayer: no parameters, just the kept-mask scale.
func (d *DropoutOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	return d.Backward(grad)
}
