package nn

import (
	"fmt"
	"math"

	"chameleon/internal/tensor"
)

// BatchNorm2DOf is per-channel normalisation y = γ·(x−μ)/√(σ²+ε) + β on
// [C,H,W] inputs. In this framework it always runs in *inference* form
// against fixed running statistics — mirroring the paper's setup, where the
// ImageNet-pretrained MobileNetV1 backbone keeps its BN statistics frozen
// during on-device single-pass training. γ/β are still Params so trailing
// trainable blocks may fine-tune them; the backward pass treats μ/σ² as
// constants (the standard "frozen BN" gradient).
type BatchNorm2DOf[T tensor.Float] struct {
	label      string
	c          int
	gamma      *ParamOf[T]
	beta       *ParamOf[T]
	mean, vari *tensor.Of[T]
	eps        T
	xhat       *tensor.Of[T] // cached normalised input (train mode), reused across steps
	// y and gx are reusable buffers: gx always (backward is train-only), y on
	// the train path always and on the eval path once a workspace is attached.
	y, gx *tensor.Of[T]
	ws    *tensor.WorkspaceOf[T]
}

// BatchNorm2D is the fast-tier frozen-statistics batch norm.
type BatchNorm2D = BatchNorm2DOf[float32]

// NewBatchNorm2D creates a fast-tier frozen-statistics batch norm with μ=0,
// σ²=1, γ=1, β=0. Use SetStats to install pretrained running statistics.
func NewBatchNorm2D(label string, channels int) *BatchNorm2D {
	return &BatchNorm2D{
		label: label,
		c:     channels,
		gamma: &Param{Name: label + ".gamma", Data: tensor.Full(1, channels), Grad: tensor.New(channels)},
		beta:  &Param{Name: label + ".beta", Data: tensor.New(channels), Grad: tensor.New(channels)},
		mean:  tensor.New(channels),
		vari:  tensor.Full(1, channels),
		eps:   1e-5,
	}
}

// SetStats installs running mean and variance (copied).
func (b *BatchNorm2DOf[T]) SetStats(mean, variance *tensor.Of[T]) {
	if mean.Len() != b.c || variance.Len() != b.c {
		panic(fmt.Sprintf("nn: %s SetStats wants %d channels", b.label, b.c))
	}
	b.mean.CopyFrom(mean)
	b.vari.CopyFrom(variance)
}

// Stats returns the current running mean and variance (live tensors; callers
// must treat them as read-only).
func (b *BatchNorm2DOf[T]) Stats() (mean, variance *tensor.Of[T]) { return b.mean, b.vari }

// Name implements Layer.
func (b *BatchNorm2DOf[T]) Name() string { return b.label }

// SetWorkspace implements WorkspaceUser.
func (b *BatchNorm2DOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { b.ws = ws }

// Forward implements Layer.
func (b *BatchNorm2DOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if x.NDim() != 3 || x.Dim(0) != b.c {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", b.label, b.c, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	var y *tensor.Of[T]
	if train || b.ws != nil {
		if b.y == nil || !b.y.SameShape(x) {
			b.ws.Put(b.y)
			b.y = b.ws.Get(x.Shape()...)
		}
		y = b.y
	} else {
		y = tensor.NewOf[T](b.c, h, w)
	}
	var xhat *tensor.Of[T]
	if train {
		if b.xhat == nil || !b.xhat.SameShape(x) {
			b.xhat = tensor.NewOf[T](b.c, h, w)
		}
		xhat = b.xhat
	}
	for c := 0; c < b.c; c++ {
		inv := T(1 / math.Sqrt(float64(b.vari.Data()[c]+b.eps)))
		mu := b.mean.Data()[c]
		g := b.gamma.Data.Data()[c]
		bt := b.beta.Data.Data()[c]
		in := x.Data()[c*h*w : (c+1)*h*w]
		out := y.Data()[c*h*w : (c+1)*h*w]
		for i, v := range in {
			n := (v - mu) * inv
			if xhat != nil {
				xhat.Data()[c*h*w+i] = n
			}
			out[i] = g*n + bt
		}
	}
	return y
}

// Backward implements Layer (frozen-statistics gradient).
func (b *BatchNorm2DOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	if b.xhat == nil {
		panic("nn: BatchNorm2D.Backward before training Forward")
	}
	h, w := grad.Dim(1), grad.Dim(2)
	if b.gx == nil || !b.gx.SameShape(grad) {
		b.ws.Put(b.gx)
		b.gx = b.ws.Get(b.c, h, w)
	}
	gx := b.gx
	for c := 0; c < b.c; c++ {
		inv := T(1 / math.Sqrt(float64(b.vari.Data()[c]+b.eps)))
		g := b.gamma.Data.Data()[c]
		var dg, db T
		gIn := grad.Data()[c*h*w : (c+1)*h*w]
		xh := b.xhat.Data()[c*h*w : (c+1)*h*w]
		out := gx.Data()[c*h*w : (c+1)*h*w]
		for i, gv := range gIn {
			dg += gv * xh[i]
			db += gv
			out[i] = gv * g * inv
		}
		b.gamma.Grad.Data()[c] += dg
		b.beta.Grad.Data()[c] += db
	}
	return gx
}

// Params implements Layer.
func (b *BatchNorm2DOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{b.gamma, b.beta} }

// OutShape implements Layer.
func (b *BatchNorm2DOf[T]) OutShape(in []int) []int { return in }

// GlobalAvgPool2DOf averages [C,H,W] to [C].
type GlobalAvgPool2DOf[T tensor.Float] struct {
	inH, inW int
	// y and gx are reusable buffers: gx always (backward is train-only), y on
	// the train path always and on the eval path once a workspace is attached.
	y, gx *tensor.Of[T]
	ws    *tensor.WorkspaceOf[T]
}

// GlobalAvgPool2D is the fast-tier pooling layer.
type GlobalAvgPool2D = GlobalAvgPool2DOf[float32]

// NewGlobalAvgPool2D creates the fast-tier pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Name implements Layer.
func (g *GlobalAvgPool2DOf[T]) Name() string { return "gap" }

// SetWorkspace implements WorkspaceUser.
func (g *GlobalAvgPool2DOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { g.ws = ws }

// Forward implements Layer.
func (g *GlobalAvgPool2DOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if train {
		g.inH, g.inW = x.Dim(1), x.Dim(2)
	}
	if train || g.ws != nil {
		if g.y == nil || g.y.Len() != x.Dim(0) {
			g.ws.Put(g.y)
			g.y = g.ws.Get(x.Dim(0))
		}
		tensor.GlobalAvgPoolInto(g.y, x)
		return g.y
	}
	return tensor.GlobalAvgPool(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool2DOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	c := grad.Len()
	if g.gx == nil || g.gx.Len() != c*g.inH*g.inW {
		g.ws.Put(g.gx)
		g.gx = g.ws.Get(c, g.inH, g.inW)
	}
	out := g.gx
	inv := 1 / T(g.inH*g.inW)
	for ci := 0; ci < c; ci++ {
		v := grad.Data()[ci] * inv
		plane := out.Data()[ci*g.inH*g.inW : (ci+1)*g.inH*g.inW]
		for i := range plane {
			plane[i] = v
		}
	}
	return out
}

// Params implements Layer.
func (g *GlobalAvgPool2DOf[T]) Params() []*ParamOf[T] { return nil }

// OutShape implements Layer.
func (g *GlobalAvgPool2DOf[T]) OutShape(in []int) []int { return []int{in[0]} }
