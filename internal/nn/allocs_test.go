package nn

import (
	"math/rand"
	"testing"

	"chameleon/internal/parallel"
	"chameleon/internal/race"
	"chameleon/internal/tensor"
)

func TestDenseForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense("fc", 12, 7, rng)
	x := tensor.RandNormal(rng, 1, 12)
	want := d.Forward(x, false)
	dst := tensor.New(7)
	dst.Data()[0] = 42 // dirty, must be overwritten
	d.ForwardInto(dst, x, false)
	for i, v := range dst.Data() {
		if v != want.Data()[i] {
			t.Fatalf("ForwardInto[%d] = %v, want %v", i, v, want.Data()[i])
		}
	}
}

func TestDenseBackwardIntoMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 1, 9)
	g := tensor.RandNormal(rng, 1, 6)
	g.Data()[2] = 0 // exercise the zero-skip branch

	// Two identically seeded layers, one per code path.
	d1 := NewDense("fc", 9, 6, rand.New(rand.NewSource(5)))
	d2 := NewDense("fc", 9, 6, rand.New(rand.NewSource(5)))

	d1.Forward(x, true)
	gx1 := d1.Backward(g)

	d2.Forward(x, true)
	gx2 := tensor.New(9)
	d2.BackwardInto(gx2, g)

	for i, v := range gx2.Data() {
		if v != gx1.Data()[i] {
			t.Fatalf("BackwardInto gx[%d] = %v, want %v", i, v, gx1.Data()[i])
		}
	}
	for i, v := range d2.w.Grad.Data() {
		if v != d1.w.Grad.Data()[i] {
			t.Fatalf("BackwardInto gw[%d] = %v, want %v", i, v, d1.w.Grad.Data()[i])
		}
	}
}

func TestAllocsDenseTrainLoop(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(6))
	d := NewDense("fc", 32, 16, rng)
	ws := tensor.NewWorkspace()
	d.SetWorkspace(ws)
	x := tensor.RandNormal(rng, 1, 32)
	g := tensor.RandNormal(rng, 1, 16)
	step := func() {
		d.Forward(x, true)
		d.Backward(g)
	}
	step() // warm the layer's scratch
	if got := testing.AllocsPerRun(100, step); got != 0 {
		t.Fatalf("Dense forward+backward allocates %.0f times/op, want 0", got)
	}
}
