package nn

import (
	"math/rand"
	"testing"

	"chameleon/internal/tensor"
)

// fusedTestNet builds a small model covering every fused kernel: Conv2D and
// DepthwiseConv2D (FusedStepDelta with a scratch delta), GroupNorm (fallback
// Backward + FusedStepParam), and Dense (the fully folded row kernel).
func fusedTestNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential("fused-test",
		NewConv2D("c1", 2, 4, 3, 1, 1, rng),
		NewReLU6(),
		NewDepthwiseConv2D("dw", 4, 3, 1, 1, rng),
		NewGroupNorm2D("gn", 4, 2),
		NewGlobalAvgPool2D(),
		NewDense("fc", 4, 3, rng),
	)
}

// fusedTestInputs returns a deterministic two-sample batch.
func fusedTestInputs[T tensor.Float]() (xs []*tensor.Of[T], labels []int) {
	rng := rand.New(rand.NewSource(99))
	for s := 0; s < 2; s++ {
		x := tensor.NewOf[T](2, 6, 6)
		for i := range x.Data() {
			x.Data()[i] = T(rng.NormFloat64())
		}
		xs = append(xs, x)
		labels = append(labels, s%3)
	}
	return xs, labels
}

// runTrainSteps drives `steps` two-sample cross-entropy steps, either through
// the split Backward + Scale + StepParam + ZeroGrad sequence or the fused
// BackwardSGD path, mirroring exactly what cl.Head.TrainCEOn does.
func runTrainSteps[T tensor.Float](t *testing.T, net *SequentialOf[T], opt *SGDOf[T], fused bool, steps int) {
	t.Helper()
	ws := tensor.NewWorkspaceOf[T]()
	AttachWorkspaceOf(net, ws)
	opt.SetWorkspace(ws)
	xs, labels := fusedTestInputs[T]()
	grad := tensor.NewOf[T](3)
	inv := T(1) / T(len(xs))
	for s := 0; s < steps; s++ {
		ZeroGradsOf[T](net)
		for j, x := range xs {
			y := net.Forward(x, true)
			CrossEntropyInto(y, labels[j], grad)
			if fused && j == len(xs)-1 {
				net.BackwardSGD(grad, opt, inv)
			} else {
				net.Backward(grad)
			}
		}
		if !fused {
			for _, p := range net.Params() {
				p.Grad.Scale(inv)
				opt.StepParam(p)
				p.ZeroGrad()
			}
		}
	}
}

// requireParamsEqual asserts bitwise equality of every weight.
func requireParamsEqual[T tensor.Float](t *testing.T, split, fused *SequentialOf[T]) {
	t.Helper()
	sp, fp := split.Params(), fused.Params()
	if len(sp) != len(fp) {
		t.Fatalf("param count mismatch: %d vs %d", len(sp), len(fp))
	}
	for i := range sp {
		sd, fd := sp[i].Data.Data(), fp[i].Data.Data()
		for j := range sd {
			if sd[j] != fd[j] {
				t.Fatalf("param %s[%d]: split %v, fused %v (not bit-identical)",
					sp[i].Name, j, sd[j], fd[j])
			}
		}
	}
}

// TestFusedStepBitIdentityF32 checks that the fused backward+update path
// produces bit-identical weights to the split path on the fast tier, across
// optimizer configurations that exercise every branch of the fused kernel.
func TestFusedStepBitIdentityF32(t *testing.T) {
	for _, cfg := range []struct {
		name            string
		momentum, decay float64
	}{
		{"plain", 0, 0},
		{"momentum", 0.9, 0},
		{"momentum+decay", 0.9, 1e-4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			split, fusedNet := fusedTestNet(7), fusedTestNet(7)
			mkOpt := func() *SGD {
				o := NewSGD(0.05)
				o.Momentum = cfg.momentum
				o.WeightDecay = cfg.decay
				return o
			}
			runTrainSteps(t, split, mkOpt(), false, 5)
			runTrainSteps(t, fusedNet, mkOpt(), true, 5)
			requireParamsEqual(t, split, fusedNet)
		})
	}
}

// TestFusedStepBitIdentityF64 is the same check on the reference tier, with
// the nets built by widening identically seeded fast-tier models (which also
// exercises WidenLayer).
func TestFusedStepBitIdentityF64(t *testing.T) {
	widen := func() *SequentialOf[float64] {
		w, err := WidenLayer(fusedTestNet(7))
		if err != nil {
			t.Fatalf("WidenLayer: %v", err)
		}
		return w.(*SequentialOf[float64])
	}
	split, fusedNet := widen(), widen()
	mkOpt := func() *SGDOf[float64] {
		o := NewSGDOf[float64](0.05)
		o.Momentum = 0.9
		o.WeightDecay = 1e-4
		return o
	}
	runTrainSteps(t, split, mkOpt(), false, 5)
	runTrainSteps(t, fusedNet, mkOpt(), true, 5)
	requireParamsEqual(t, split, fusedNet)
}

// TestFusedGradClipFallback checks that a clipping optimizer routed through
// the fused entry points still matches the split path (the kernels must fall
// back — clipping needs a global norm).
func TestFusedGradClipFallback(t *testing.T) {
	split, fusedNet := fusedTestNet(3), fusedTestNet(3)
	mkOpt := func() *SGD {
		o := NewSGD(0.5) // large LR so clipping actually triggers
		o.Momentum = 0.9
		o.GradClip = 1e-3
		return o
	}
	runTrainSteps(t, split, mkOpt(), false, 4)
	runTrainSteps(t, fusedNet, mkOpt(), true, 4)
	requireParamsEqual(t, split, fusedNet)
}

// benchStepNet is a head-sized model for the step benchmark (latent width 256
// into 100 classes, matching the CIFAR-100 head shape).
func benchStepNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential("bench", NewDense("fc", 256, 100, rng))
}

// BenchmarkFusedVsSplitStep measures one single-sample cross-entropy train
// step (forward + backward + SGD update) through the split and fused paths.
func BenchmarkFusedVsSplitStep(b *testing.B) {
	for _, fused := range []bool{false, true} {
		name := "split"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			net := benchStepNet(1)
			ws := tensor.NewWorkspace()
			AttachWorkspace(net, ws)
			opt := NewSGD(0.01)
			opt.Momentum = 0.9
			opt.SetWorkspace(ws)
			x := tensor.New(256)
			rng := rand.New(rand.NewSource(2))
			for i := range x.Data() {
				x.Data()[i] = float32(rng.NormFloat64())
			}
			grad := tensor.New(100)
			params := net.Params()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y := net.Forward(x, true)
				CrossEntropyInto(y, i%100, grad)
				if fused {
					net.BackwardSGD(grad, opt, 1)
				} else {
					net.Backward(grad)
					for _, p := range params {
						opt.StepParam(p)
						p.ZeroGrad()
					}
				}
			}
		})
	}
}
