package nn

import (
	"math"
	"math/rand"
	"testing"

	"chameleon/internal/tensor"
)

// numGrad computes d loss / d v[idx] by central finite differences.
func numGrad(v []float32, idx int, loss func() float64) float64 {
	const h = 1e-3
	orig := v[idx]
	v[idx] = orig + h
	up := loss()
	v[idx] = orig - h
	dn := loss()
	v[idx] = orig
	return (up - dn) / (2 * h)
}

// checkLayerGrads verifies input and parameter gradients of a layer against
// finite differences using the surrogate loss <forward(x), gy>.
func checkLayerGrads(t *testing.T, l Layer, x, gy *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 { return tensor.Dot(l.Forward(x, false), gy) }
	ZeroGrads(l)
	l.Forward(x, true)
	gx := l.Backward(gy)

	for _, idx := range sampleIdx(x.Len()) {
		num := numGrad(x.Data(), idx, loss)
		if math.Abs(num-float64(gx.Data()[idx])) > tol {
			t.Fatalf("%s: input grad[%d]: numeric %v vs analytic %v", l.Name(), idx, num, gx.Data()[idx])
		}
	}
	for _, p := range l.Params() {
		for _, idx := range sampleIdx(p.Data.Len()) {
			num := numGrad(p.Data.Data(), idx, loss)
			if math.Abs(num-float64(p.Grad.Data()[idx])) > tol {
				t.Fatalf("%s: %s grad[%d]: numeric %v vs analytic %v", l.Name(), p.Name, idx, num, p.Grad.Data()[idx])
			}
		}
	}
}

func sampleIdx(n int) []int {
	if n <= 6 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, n / 5, n / 2, n - 1}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("fc", 6, 4, rng)
	x := tensor.RandNormal(rng, 1, 6)
	gy := tensor.RandNormal(rng, 1, 4)
	checkLayerGrads(t, d, x, gy, 1e-2)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("conv", 2, 3, 3, 2, 1, rng)
	x := tensor.RandNormal(rng, 1, 2, 6, 6)
	gy := tensor.RandNormal(rng, 1, 3, 3, 3)
	checkLayerGrads(t, c, x, gy, 2e-2)
}

func TestDepthwiseConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDepthwiseConv2D("dw", 2, 3, 1, 1, rng)
	x := tensor.RandNormal(rng, 1, 2, 4, 4)
	gy := tensor.RandNormal(rng, 1, 2, 4, 4)
	checkLayerGrads(t, d, x, gy, 2e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBatchNorm2D("bn", 3)
	b.SetStats(tensor.RandNormal(rng, 0.5, 3), tensor.RandUniform(rng, 0.5, 2, 3))
	b.gamma.Data.CopyFrom(tensor.RandUniform(rng, 0.5, 1.5, 3))
	x := tensor.RandNormal(rng, 1, 3, 3, 3)
	gy := tensor.RandNormal(rng, 1, 3, 3, 3)
	checkLayerGrads(t, b, x, gy, 1e-2)
}

func TestGroupNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	gn := NewGroupNorm2D("gn", 4, 2)
	gn.Params()[0].Data.CopyFrom(tensor.RandUniform(rng, 0.5, 1.5, 4))
	gn.Params()[1].Data.CopyFrom(tensor.RandNormal(rng, 0.3, 4))
	x := tensor.RandNormal(rng, 1, 4, 3, 3)
	gy := tensor.RandNormal(rng, 1, 4, 3, 3)
	checkLayerGrads(t, gn, x, gy, 1e-2)
}

func TestGroupNormNormalises(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gn := NewGroupNorm2D("gn", 8, 4)
	x := tensor.RandNormal(rng, 5, 8, 4, 4)
	y := gn.Forward(x, false)
	// Each group of 2 channels must come out ~standardised.
	for g := 0; g < 4; g++ {
		seg := y.Data()[g*2*16 : (g+1)*2*16]
		var sum, sumSq float64
		for _, v := range seg {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		n := float64(len(seg))
		mu := sum / n
		v := sumSq/n - mu*mu
		if math.Abs(mu) > 1e-3 || math.Abs(v-1) > 1e-2 {
			t.Fatalf("group %d: mean=%v var=%v", g, mu, v)
		}
	}
}

func TestGroupNormValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when groups do not divide channels")
		}
	}()
	NewGroupNorm2D("gn", 6, 4)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGlobalAvgPool2D()
	x := tensor.RandNormal(rng, 1, 2, 3, 3)
	gy := tensor.RandNormal(rng, 1, 2)
	checkLayerGrads(t, g, x, gy, 1e-3)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU6()
	x := tensor.FromSlice([]float32{-1, 0.5, 7}, 3)
	y := r.Forward(x, true)
	if y.At(0) != 0 || y.At(1) != 0.5 || y.At(2) != 6 {
		t.Fatalf("relu6 forward = %v", y.Data())
	}
	g := r.Backward(tensor.FromSlice([]float32{1, 1, 1}, 3))
	if g.At(0) != 0 || g.At(1) != 1 || g.At(2) != 0 {
		t.Fatalf("relu6 backward = %v", g.Data())
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.RandNormal(rand.New(rand.NewSource(6)), 1, 2, 3, 4)
	y := f.Forward(x, true)
	if y.NDim() != 1 || y.Len() != 24 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(y)
	if g.NDim() != 3 || g.Dim(2) != 4 {
		t.Fatalf("flatten backward shape %v", g.Shape())
	}
}

func TestDropoutEvalIdentityAndTrainScaling(t *testing.T) {
	d := NewDropout(0.5, 42)
	x := tensor.Full(1, 1000)
	if y := d.Forward(x, false); y != x {
		t.Fatal("eval-mode dropout should be identity (same tensor)")
	}
	y := d.Forward(x, true)
	var sum float64
	zeros := 0
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000 at p=0.5", zeros)
	}
	if sum < 800 || sum > 1200 {
		t.Fatalf("inverted dropout should preserve expectation, sum=%v", sum)
	}
	// Backward zeroes the same coordinates.
	g := d.Backward(tensor.Full(1, 1000))
	for i, v := range g.Data() {
		if (v == 0) != (y.Data()[i] == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestFrozenHidesParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense("fc", 3, 2, rng)
	f := &Frozen{Inner: d}
	if len(f.Params()) != 0 {
		t.Fatal("frozen layer must expose no params")
	}
	x := tensor.RandNormal(rng, 1, 3)
	y := f.Forward(x, true)
	if y.Len() != 2 {
		t.Fatalf("frozen forward shape %v", y.Shape())
	}
	// Backward still propagates.
	g := f.Backward(tensor.Full(1, 2))
	if g.Len() != 3 {
		t.Fatalf("frozen backward shape %v", g.Shape())
	}
}

func TestSequentialGradientsAndOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewSequential("mlp",
		NewDense("fc1", 5, 8, rng),
		NewReLU(),
		NewDense("fc2", 8, 3, rng),
	)
	if got := m.OutShape([]int{5}); len(got) != 1 || got[0] != 3 {
		t.Fatalf("OutShape = %v", got)
	}
	x := tensor.RandNormal(rng, 1, 5)
	gy := tensor.RandNormal(rng, 1, 3)
	checkLayerGrads(t, m, x, gy, 2e-2)
	if NumParams(m) != 5*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", NumParams(m))
	}
}

func TestCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, 0}, 3)
	loss, grad := CrossEntropy(logits, 0)
	if loss <= 0 || loss > 1 {
		t.Fatalf("loss = %v", loss)
	}
	// Gradient sums to zero and is negative only at the true class.
	var sum float64
	for i, v := range grad.Data() {
		sum += float64(v)
		if i == 0 && v >= 0 {
			t.Fatal("true-class grad should be negative")
		}
		if i != 0 && v <= 0 {
			t.Fatal("other-class grads should be positive")
		}
	}
	if math.Abs(sum) > 1e-5 {
		t.Fatalf("CE grad sums to %v", sum)
	}
}

func TestCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.RandNormal(rng, 1, 5)
	_, grad := CrossEntropy(logits, 2)
	for i := 0; i < 5; i++ {
		num := numGrad(logits.Data(), i, func() float64 {
			l, _ := CrossEntropy(logits, 2)
			return l
		})
		if math.Abs(num-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("CE grad[%d]: numeric %v vs analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestSoftCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	st := tensor.RandNormal(rng, 1, 4)
	te := tensor.RandNormal(rng, 1, 4)
	for _, temp := range []float64{1, 2} {
		_, grad := SoftCrossEntropy(st, te, temp)
		for i := 0; i < 4; i++ {
			num := numGrad(st.Data(), i, func() float64 {
				l, _ := SoftCrossEntropy(st, te, temp)
				return l
			})
			if math.Abs(num-float64(grad.Data()[i])) > 1e-3 {
				t.Fatalf("T=%v soft-CE grad[%d]: numeric %v vs analytic %v", temp, i, num, grad.Data()[i])
			}
		}
	}
}

func TestMSELogitsGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lg := tensor.RandNormal(rng, 1, 4)
	target := tensor.RandNormal(rng, 1, 4)
	_, grad := MSELogits(lg, target)
	for i := 0; i < 4; i++ {
		num := numGrad(lg.Data(), i, func() float64 {
			l, _ := MSELogits(lg, target)
			return l
		})
		if math.Abs(num-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("MSE grad[%d]: numeric %v vs analytic %v", i, num, grad.Data()[i])
		}
	}
	if l, _ := MSELogits(lg, lg); l != 0 {
		t.Fatalf("MSE of identical logits = %v", l)
	}
}

func TestSGDLearnsLinearlySeparableTask(t *testing.T) {
	// A 2-layer MLP must fit a small 3-class problem with single-sample SGD.
	rng := rand.New(rand.NewSource(12))
	m := NewSequential("mlp",
		NewDense("fc1", 2, 16, rng),
		NewReLU(),
		NewDense("fc2", 16, 3, rng),
	)
	opt := NewSGD(0.05)
	opt.Momentum = 0.9
	centers := [][2]float32{{2, 0}, {-2, 2}, {0, -2}}
	sample := func() (*tensor.Tensor, int) {
		c := rng.Intn(3)
		x := tensor.FromSlice([]float32{
			centers[c][0] + float32(rng.NormFloat64())*0.3,
			centers[c][1] + float32(rng.NormFloat64())*0.3,
		}, 2)
		return x, c
	}
	for i := 0; i < 600; i++ {
		x, y := sample()
		ZeroGrads(m)
		logits := m.Forward(x, true)
		_, g := CrossEntropy(logits, y)
		m.Backward(g)
		opt.Step(m)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, y := sample()
		if m.Forward(x, false).ArgMax() == y {
			correct++
		}
	}
	if correct < 190 {
		t.Fatalf("SGD failed to learn: %d/200 correct", correct)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := &Param{Name: "w", Data: tensor.Full(1, 4), Grad: tensor.New(4)}
	opt := NewSGD(0.1)
	opt.WeightDecay = 0.5
	opt.StepParam(p)
	for _, v := range p.Data.Data() {
		if math.Abs(float64(v)-0.95) > 1e-6 {
			t.Fatalf("weight decay update wrong: %v", v)
		}
	}
}

func TestSGDGradClip(t *testing.T) {
	p := &Param{Name: "w", Data: tensor.New(2), Grad: tensor.FromSlice([]float32{30, 40}, 2)}
	opt := NewSGD(1)
	opt.GradClip = 5 // grad norm 50 -> scaled to 5
	opt.StepParam(p)
	if math.Abs(float64(p.Data.At(0))+3) > 1e-4 || math.Abs(float64(p.Data.At(1))+4) > 1e-4 {
		t.Fatalf("clip update wrong: %v", p.Data.Data())
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewDense("a", 3, 2, rng)
	b := NewDense("b", 3, 2, rng)
	if err := CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.w.Data.Data() {
		if b.w.Data.Data()[i] != v {
			t.Fatal("CopyParams did not copy weights")
		}
	}
	c := NewDense("c", 4, 2, rng)
	if err := CopyParams(c, a); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
