package nn

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Dense is a fully connected layer y = Wx + b on 1-D inputs.
type Dense struct {
	label string
	w     *Param // [out, in]
	b     *Param // [out]
	inCap int
	x     *tensor.Tensor // cached input (train mode), reused across steps
	// y and gx are reusable output/input-gradient buffers. gx (and x) serve
	// only the training path, which is single-owner by the Layer contract, so
	// they are recycled unconditionally; y is additionally reused on the eval
	// path once a workspace is attached (eval without one must stay
	// mutation-free for concurrent extraction).
	y, gx *tensor.Tensor
	ws    *tensor.Workspace
}

// NewDense creates a Dense layer with He-normal weights and zero bias.
func NewDense(label string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		label: label,
		w:     &Param{Name: label + ".w", Data: tensor.HeNormal(rng, in, out, in), Grad: tensor.New(out, in)},
		b:     &Param{Name: label + ".b", Data: tensor.New(out), Grad: tensor.New(out)},
		inCap: in,
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.label }

// In returns the input width.
func (d *Dense) In() int { return d.inCap }

// Out returns the output width.
func (d *Dense) Out() int { return d.w.Data.Dim(0) }

// SetWorkspace implements WorkspaceUser.
func (d *Dense) SetWorkspace(ws *tensor.Workspace) { d.ws = ws }

// Forward implements Layer for a [in] input, producing [out].
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Len() != d.inCap {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", d.label, d.inCap, x.Shape()))
	}
	if train || d.ws != nil {
		if d.y == nil {
			d.y = d.ws.Get(d.Out())
		}
		d.ForwardInto(d.y, x, train)
		return d.y
	}
	// Eval without a workspace: allocation-fresh and mutation-free, so a
	// shared model can serve concurrent callers.
	flat := x
	if x.NDim() != 1 {
		flat = x.Reshape(d.inCap)
	}
	y := tensor.MatVec(d.w.Data, flat)
	y.AddInPlace(d.b.Data)
	return y
}

// ForwardInto is Forward writing y = Wx + b into a caller-owned [out] tensor,
// mirroring the tensor MatMul*Into API: the inner training loop reuses one
// output buffer instead of allocating per call. train selects input caching
// for the subsequent Backward.
func (d *Dense) ForwardInto(dst, x *tensor.Tensor, train bool) {
	if x.Len() != d.inCap {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", d.label, d.inCap, x.Shape()))
	}
	if dst.Len() != d.Out() {
		panic(fmt.Sprintf("nn: %s ForwardInto dst has %d elements, want %d", d.label, dst.Len(), d.Out()))
	}
	flat := x
	if x.NDim() != 1 {
		flat = x.Reshape(d.inCap)
	}
	if train {
		if d.x == nil {
			d.x = d.ws.Get(d.inCap)
		}
		d.x.CopyFrom(flat)
	}
	tensor.MatVecInto(dst, d.w.Data, flat)
	dst.AddInPlace(d.b.Data)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.gx == nil {
		d.gx = d.ws.Get(d.inCap)
	}
	d.BackwardInto(d.gx, grad)
	return d.gx
}

// BackwardInto is Backward writing the input gradient into a caller-owned
// [in] tensor (overwritten), accumulating parameter gradients as usual.
func (d *Dense) BackwardInto(dst, grad *tensor.Tensor) {
	if d.x == nil {
		panic("nn: Dense.Backward before training Forward")
	}
	out, in := d.Out(), d.inCap
	if grad.Len() != out || dst.Len() != in {
		panic(fmt.Sprintf("nn: %s BackwardInto grad %d/dst %d, want %d/%d", d.label, grad.Len(), dst.Len(), out, in))
	}
	gw, gb := d.w.Grad.Data(), d.b.Grad.Data()
	gd, wd, xd := grad.Data(), d.w.Data.Data(), d.x.Data()
	dst.Zero()
	gxd := dst.Data()
	for o := 0; o < out; o++ {
		g := gd[o]
		gb[o] += g
		if g == 0 {
			continue
		}
		wRow := wd[o*in : (o+1)*in]
		gwRow := gw[o*in : (o+1)*in]
		for i, xv := range xd {
			gwRow[i] += g * xv
			gxd[i] += g * wRow[i]
		}
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int { return []int{d.Out()} }

// Flatten reshapes any input to 1-D. It has no parameters.
type Flatten struct {
	inShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}
