package nn

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Dense is a fully connected layer y = Wx + b on 1-D inputs.
type Dense struct {
	label string
	w     *Param // [out, in]
	b     *Param // [out]
	inCap int
	x     *tensor.Tensor // cached input (train mode)
}

// NewDense creates a Dense layer with He-normal weights and zero bias.
func NewDense(label string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		label: label,
		w:     &Param{Name: label + ".w", Data: tensor.HeNormal(rng, in, out, in), Grad: tensor.New(out, in)},
		b:     &Param{Name: label + ".b", Data: tensor.New(out), Grad: tensor.New(out)},
		inCap: in,
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.label }

// In returns the input width.
func (d *Dense) In() int { return d.inCap }

// Out returns the output width.
func (d *Dense) Out() int { return d.w.Data.Dim(0) }

// Forward implements Layer for a [in] input, producing [out].
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Len() != d.inCap {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", d.label, d.inCap, x.Shape()))
	}
	flat := x.Reshape(d.inCap)
	if train {
		d.x = flat.Clone()
	}
	y := tensor.MatVec(d.w.Data, flat)
	y.AddInPlace(d.b.Data)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward before training Forward")
	}
	out, in := d.Out(), d.inCap
	gw, gb := d.w.Grad.Data(), d.b.Grad.Data()
	gd, wd, xd := grad.Data(), d.w.Data.Data(), d.x.Data()
	gx := tensor.New(in)
	gxd := gx.Data()
	for o := 0; o < out; o++ {
		g := gd[o]
		gb[o] += g
		if g == 0 {
			continue
		}
		wRow := wd[o*in : (o+1)*in]
		gwRow := gw[o*in : (o+1)*in]
		for i, xv := range xd {
			gwRow[i] += g * xv
			gxd[i] += g * wRow[i]
		}
	}
	return gx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int { return []int{d.Out()} }

// Flatten reshapes any input to 1-D. It has no parameters.
type Flatten struct {
	inShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}
