package nn

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// DenseOf is a fully connected layer y = Wx + b on 1-D inputs.
type DenseOf[T tensor.Float] struct {
	label string
	w     *ParamOf[T] // [out, in]
	b     *ParamOf[T] // [out]
	inCap int
	x     *tensor.Of[T] // cached input (train mode), reused across steps
	xB    *tensor.Of[T] // cached [N,in] input matrix (batched train mode)
	// y and gx are reusable output/input-gradient buffers. gx (and x) serve
	// only the training path, which is single-owner by the Layer contract, so
	// they are recycled unconditionally; y is additionally reused on the eval
	// path once a workspace is attached (eval without one must stay
	// mutation-free for concurrent extraction).
	y, gx *tensor.Of[T]
	ws    *tensor.WorkspaceOf[T]
}

// Dense is the fast-tier fully connected layer.
type Dense = DenseOf[float32]

// NewDense creates a fast-tier Dense layer with He-normal weights and zero
// bias.
func NewDense(label string, in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		label: label,
		w:     &Param{Name: label + ".w", Data: tensor.HeNormal(rng, in, out, in), Grad: tensor.New(out, in)},
		b:     &Param{Name: label + ".b", Data: tensor.New(out), Grad: tensor.New(out)},
		inCap: in,
	}
}

// Name implements Layer.
func (d *DenseOf[T]) Name() string { return d.label }

// In returns the input width.
func (d *DenseOf[T]) In() int { return d.inCap }

// Out returns the output width.
func (d *DenseOf[T]) Out() int { return d.w.Data.Dim(0) }

// SetWorkspace implements WorkspaceUser.
func (d *DenseOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { d.ws = ws }

// Forward implements Layer for a [in] input, producing [out].
func (d *DenseOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if x.Len() != d.inCap {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", d.label, d.inCap, x.Shape()))
	}
	if train || d.ws != nil {
		if d.y == nil {
			d.y = d.ws.Get(d.Out())
		}
		d.ForwardInto(d.y, x, train)
		return d.y
	}
	// Eval without a workspace: allocation-fresh and mutation-free, so a
	// shared model can serve concurrent callers.
	flat := x
	if x.NDim() != 1 {
		flat = x.Reshape(d.inCap)
	}
	y := tensor.MatVec(d.w.Data, flat)
	y.AddInPlace(d.b.Data)
	return y
}

// ForwardInto is Forward writing y = Wx + b into a caller-owned [out] tensor,
// mirroring the tensor MatMul*Into API: the inner training loop reuses one
// output buffer instead of allocating per call. train selects input caching
// for the subsequent Backward.
func (d *DenseOf[T]) ForwardInto(dst, x *tensor.Of[T], train bool) {
	if x.Len() != d.inCap {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got shape %v", d.label, d.inCap, x.Shape()))
	}
	if dst.Len() != d.Out() {
		panic(fmt.Sprintf("nn: %s ForwardInto dst has %d elements, want %d", d.label, dst.Len(), d.Out()))
	}
	flat := x
	if x.NDim() != 1 {
		flat = x.Reshape(d.inCap)
	}
	if train {
		if d.x == nil {
			d.x = d.ws.Get(d.inCap)
		}
		d.x.CopyFrom(flat)
	}
	tensor.MatVecInto(dst, d.w.Data, flat)
	dst.AddInPlace(d.b.Data)
}

// Backward implements Layer.
func (d *DenseOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	if d.gx == nil {
		d.gx = d.ws.Get(d.inCap)
	}
	d.BackwardInto(d.gx, grad)
	return d.gx
}

// BackwardInto is Backward writing the input gradient into a caller-owned
// [in] tensor (overwritten), accumulating parameter gradients as usual.
func (d *DenseOf[T]) BackwardInto(dst, grad *tensor.Of[T]) {
	if d.x == nil {
		panic("nn: Dense.Backward before training Forward")
	}
	out, in := d.Out(), d.inCap
	if grad.Len() != out || dst.Len() != in {
		panic(fmt.Sprintf("nn: %s BackwardInto grad %d/dst %d, want %d/%d", d.label, grad.Len(), dst.Len(), out, in))
	}
	gw, gb := d.w.Grad.Data(), d.b.Grad.Data()
	gd, wd, xd := grad.Data(), d.w.Data.Data(), d.x.Data()
	dst.Zero()
	gxd := dst.Data()
	for o := 0; o < out; o++ {
		g := gd[o]
		gb[o] += g
		if g == 0 {
			continue
		}
		wRow := wd[o*in : (o+1)*in]
		gwRow := gw[o*in : (o+1)*in]
		// Fast-tier dispatch (resolved at instantiation time): float32 rows
		// go through the unrolled kernel, which computes the same per-element
		// expressions and is therefore bit-identical to the generic loop.
		if gw32, ok := any(gwRow).([]float32); ok {
			tensor.DenseBackwardRow32(gw32, any(gxd).([]float32), any(wRow).([]float32), any(xd).([]float32), any(g).(float32))
			continue
		}
		for i, xv := range xd {
			gwRow[i] += g * xv
			gxd[i] += g * wRow[i]
		}
	}
}

// Params implements Layer.
func (d *DenseOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{d.w, d.b} }

// OutShape implements Layer.
func (d *DenseOf[T]) OutShape(in []int) []int { return []int{d.Out()} }

// FlattenOf reshapes any input to 1-D. It has no parameters.
type FlattenOf[T tensor.Float] struct {
	inShape []int
}

// Flatten is the fast-tier reshape layer.
type Flatten = FlattenOf[float32]

// NewFlatten creates a fast-tier Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *FlattenOf[T]) Name() string { return "flatten" }

// Forward implements Layer.
func (f *FlattenOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *FlattenOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *FlattenOf[T]) Params() []*ParamOf[T] { return nil }

// OutShape implements Layer.
func (f *FlattenOf[T]) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}
