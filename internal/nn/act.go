package nn

import (
	"math/rand"

	"chameleon/internal/tensor"
)

// ReLUOf applies max(0, x). With a positive Cap it becomes ReLU-N (e.g.
// ReLU6, MobileNet's activation).
type ReLUOf[T tensor.Float] struct {
	Cap  T      // 0 means unbounded
	mask []bool // true where the gradient passes
	// y and gx are reusable output buffers: gx always (backward is train-only
	// and single-owner), y on the train path always and on the eval path once
	// a workspace is attached (workspace-free eval must stay mutation-free).
	y, gx *tensor.Of[T]
	ws    *tensor.WorkspaceOf[T]
}

// ReLU is the fast-tier activation.
type ReLU = ReLUOf[float32]

// NewReLU returns an unbounded fast-tier ReLU.
func NewReLU() *ReLU { return &ReLU{} }

// NewReLU6 returns the ReLU6 activation used by MobileNet.
func NewReLU6() *ReLU { return &ReLU{Cap: 6} }

// Name implements Layer.
func (r *ReLUOf[T]) Name() string {
	if r.Cap > 0 {
		return "relu6"
	}
	return "relu"
}

// SetWorkspace implements WorkspaceUser.
func (r *ReLUOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { r.ws = ws }

// Forward implements Layer.
func (r *ReLUOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	var y *tensor.Of[T]
	if train || r.ws != nil {
		if r.y == nil || !r.y.SameShape(x) {
			r.ws.Put(r.y)
			r.y = r.ws.Get(x.Shape()...)
		}
		y = r.y
		y.CopyFrom(x)
	} else {
		y = x.Clone()
	}
	if train {
		if cap(r.mask) < y.Len() {
			r.mask = make([]bool, y.Len())
		}
		r.mask = r.mask[:y.Len()]
	}
	for i, v := range y.Data() {
		pass := v > 0
		if v < 0 {
			y.Data()[i] = 0
		}
		if r.Cap > 0 && v > r.Cap {
			y.Data()[i] = r.Cap
			pass = false
		}
		if train {
			r.mask[i] = pass
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLUOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	if r.gx == nil || !r.gx.SameShape(grad) {
		r.ws.Put(r.gx)
		r.gx = r.ws.Get(grad.Shape()...)
	}
	g := r.gx
	g.CopyFrom(grad)
	for i := range g.Data() {
		if !r.mask[i] {
			g.Data()[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (r *ReLUOf[T]) Params() []*ParamOf[T] { return nil }

// OutShape implements Layer.
func (r *ReLUOf[T]) OutShape(in []int) []int { return in }

// DropoutOf zeroes activations with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout). In eval mode it is the identity.
type DropoutOf[T tensor.Float] struct {
	P    float64
	rng  *rand.Rand
	keep []T
	// y and gx are train-path output buffers, reused across steps (training is
	// single-owner by the Layer contract; eval Forward returns x untouched).
	y, gx *tensor.Of[T]
}

// Dropout is the fast-tier dropout layer.
type Dropout = DropoutOf[float32]

// NewDropout creates a fast-tier Dropout layer with its own deterministic RNG
// stream.
func NewDropout(p float64, seed int64) *Dropout {
	return &Dropout{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *DropoutOf[T]) Name() string { return "dropout" }

// Forward implements Layer.
func (d *DropoutOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if !train || d.P <= 0 {
		return x
	}
	if d.y == nil || !d.y.SameShape(x) {
		d.y = tensor.NewOf[T](x.Shape()...)
	}
	y := d.y
	y.CopyFrom(x)
	if cap(d.keep) < y.Len() {
		d.keep = make([]T, y.Len())
	}
	d.keep = d.keep[:y.Len()]
	scale := T(1 / (1 - d.P))
	for i := range y.Data() {
		if d.rng.Float64() < d.P {
			d.keep[i] = 0
			y.Data()[i] = 0
		} else {
			d.keep[i] = scale
			y.Data()[i] *= scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *DropoutOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	if d.P <= 0 || len(d.keep) == 0 {
		return grad
	}
	if d.gx == nil || !d.gx.SameShape(grad) {
		d.gx = tensor.NewOf[T](grad.Shape()...)
	}
	g := d.gx
	g.CopyFrom(grad)
	for i := range g.Data() {
		g.Data()[i] *= d.keep[i]
	}
	return g
}

// Params implements Layer.
func (d *DropoutOf[T]) Params() []*ParamOf[T] { return nil }

// OutShape implements Layer.
func (d *DropoutOf[T]) OutShape(in []int) []int { return in }
