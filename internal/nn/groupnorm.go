package nn

import (
	"fmt"
	"math"

	"chameleon/internal/tensor"
)

// GroupNorm2DOf normalises each sample over channel groups (Wu & He, 2018):
// for each of G groups of C/G channels, activations are standardised over
// (C/G)·H·W positions, then scaled/shifted by per-channel γ/β.
//
// Unlike BatchNorm it has no running statistics and no batch dependence,
// which makes it exactly right for this repository's regime: single-sample
// online training on-device, and from-scratch pretraining of the deep
// backbone (frozen-statistics BN cannot train a 27-layer plain CNN; GN can).
// The backward pass is exact, including the gradient through the
// normalisation statistics.
type GroupNorm2DOf[T tensor.Float] struct {
	label  string
	c, g   int
	gamma  *ParamOf[T]
	beta   *ParamOf[T]
	eps    T
	xhat   *tensor.Of[T] // cached normalised input (train mode), reused across steps
	invStd []T           // per group, cached in train mode
	// y and gx are reusable buffers: gx and the ghat scratch always (backward
	// is train-only and single-owner), y on the train path always and on the
	// eval path once a workspace is attached.
	y, gx *tensor.Of[T]
	ghat  []T
	ws    *tensor.WorkspaceOf[T]
}

// GroupNorm2D is the fast-tier group norm.
type GroupNorm2D = GroupNorm2DOf[float32]

// NewGroupNorm2D creates a fast-tier GroupNorm layer. groups must divide
// channels.
func NewGroupNorm2D(label string, channels, groups int) *GroupNorm2D {
	if groups <= 0 || channels%groups != 0 {
		panic(fmt.Sprintf("nn: %s groups %d must divide channels %d", label, groups, channels))
	}
	return &GroupNorm2D{
		label: label, c: channels, g: groups,
		gamma: &Param{Name: label + ".gamma", Data: tensor.Full(1, channels), Grad: tensor.New(channels)},
		beta:  &Param{Name: label + ".beta", Data: tensor.New(channels), Grad: tensor.New(channels)},
		eps:   1e-5,
	}
}

// Name implements Layer.
func (gn *GroupNorm2DOf[T]) Name() string { return gn.label }

// SetWorkspace implements WorkspaceUser.
func (gn *GroupNorm2DOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { gn.ws = ws }

// Forward implements Layer.
func (gn *GroupNorm2DOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if x.NDim() != 3 || x.Dim(0) != gn.c {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", gn.label, gn.c, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	plane := h * w
	perG := gn.c / gn.g
	gSize := perG * plane
	var y *tensor.Of[T]
	if train || gn.ws != nil {
		if gn.y == nil || !gn.y.SameShape(x) {
			gn.ws.Put(gn.y)
			gn.y = gn.ws.Get(x.Shape()...)
		}
		y = gn.y
	} else {
		y = tensor.NewOf[T](gn.c, h, w)
	}
	var xhat *tensor.Of[T]
	if train {
		if gn.xhat == nil || !gn.xhat.SameShape(x) {
			gn.xhat = tensor.NewOf[T](gn.c, h, w)
		}
		xhat = gn.xhat
		if cap(gn.invStd) < gn.g {
			gn.invStd = make([]T, gn.g)
		}
		gn.invStd = gn.invStd[:gn.g]
	}
	for gi := 0; gi < gn.g; gi++ {
		seg := x.Data()[gi*gSize : (gi+1)*gSize]
		var sum, sumSq float64
		for _, v := range seg {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		n := float64(gSize)
		mu := sum / n
		variance := sumSq/n - mu*mu
		if variance < 0 {
			variance = 0
		}
		inv := T(1 / math.Sqrt(variance+float64(gn.eps)))
		if train {
			gn.invStd[gi] = inv
		}
		for ci := 0; ci < perG; ci++ {
			c := gi*perG + ci
			gamma := gn.gamma.Data.Data()[c]
			beta := gn.beta.Data.Data()[c]
			in := x.Data()[c*plane : (c+1)*plane]
			out := y.Data()[c*plane : (c+1)*plane]
			for i, v := range in {
				xh := (v - T(mu)) * inv
				if train {
					xhat.Data()[c*plane+i] = xh
				}
				out[i] = gamma*xh + beta
			}
		}
	}
	return y
}

// Backward implements Layer with the exact GroupNorm gradient:
// dx = invStd · (ĝ − mean(ĝ) − x̂·mean(ĝ·x̂)) per group, where ĝ = dy·γ.
func (gn *GroupNorm2DOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	if gn.xhat == nil {
		panic("nn: GroupNorm2D.Backward before training Forward")
	}
	h, w := grad.Dim(1), grad.Dim(2)
	plane := h * w
	perG := gn.c / gn.g
	gSize := perG * plane
	if gn.gx == nil || !gn.gx.SameShape(grad) {
		gn.ws.Put(gn.gx)
		gn.gx = gn.ws.Get(gn.c, h, w)
	}
	gx := gn.gx
	if cap(gn.ghat) < gSize {
		gn.ghat = make([]T, gSize)
	}
	ghat := gn.ghat[:gSize]
	for gi := 0; gi < gn.g; gi++ {
		var sumG, sumGX float64
		for ci := 0; ci < perG; ci++ {
			c := gi*perG + ci
			gamma := gn.gamma.Data.Data()[c]
			gIn := grad.Data()[c*plane : (c+1)*plane]
			xh := gn.xhat.Data()[c*plane : (c+1)*plane]
			var dg, db T
			for i, gv := range gIn {
				gh := gv * gamma
				ghat[ci*plane+i] = gh
				sumG += float64(gh)
				sumGX += float64(gh) * float64(xh[i])
				dg += gv * xh[i]
				db += gv
			}
			gn.gamma.Grad.Data()[c] += dg
			gn.beta.Grad.Data()[c] += db
		}
		n := float64(gSize)
		meanG := T(sumG / n)
		meanGX := T(sumGX / n)
		inv := gn.invStd[gi]
		for ci := 0; ci < perG; ci++ {
			c := gi*perG + ci
			xh := gn.xhat.Data()[c*plane : (c+1)*plane]
			out := gx.Data()[c*plane : (c+1)*plane]
			for i := range out {
				out[i] = inv * (ghat[ci*plane+i] - meanG - xh[i]*meanGX)
			}
		}
	}
	return gx
}

// Params implements Layer.
func (gn *GroupNorm2DOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{gn.gamma, gn.beta} }

// OutShape implements Layer.
func (gn *GroupNorm2DOf[T]) OutShape(in []int) []int { return in }
