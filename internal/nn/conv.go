package nn

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Conv2D is a standard 2-D convolution on [C,H,W] single-sample inputs,
// implemented as im2col + GEMM. Weights are stored as [outC, inC*KH*KW].
type Conv2D struct {
	label            string
	inC, outC        int
	kh, kw, stride   int
	pad              int
	w                *Param
	b                *Param
	col              *tensor.Tensor // cached im2col matrix (train mode)
	inH, inW, oh, ow int
	// gwScratch and dcolScratch are backward-pass work buffers, reused across
	// steps. They are touched only in Backward, which runs on the learner's
	// own goroutine; eval-mode Forward stays mutation-free so a frozen model
	// can serve concurrent extraction workers.
	gwScratch, dcolScratch *tensor.Tensor
}

// NewConv2D creates a Conv2D with He-normal weights.
func NewConv2D(label string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	fanIn := inC * k * k
	return &Conv2D{
		label: label, inC: inC, outC: outC, kh: k, kw: k, stride: stride, pad: pad,
		w: &Param{Name: label + ".w", Data: tensor.HeNormal(rng, fanIn, outC, fanIn), Grad: tensor.New(outC, fanIn)},
		b: &Param{Name: label + ".b", Data: tensor.New(outC), Grad: tensor.New(outC)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.label }

// Forward implements Layer for a [inC,H,W] input, producing [outC,OH,OW].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 3 || x.Dim(0) != c.inC {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", c.label, c.inC, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	oh := tensor.ConvOut(h, c.kh, c.stride, c.pad)
	ow := tensor.ConvOut(w, c.kw, c.stride, c.pad)
	col := tensor.Im2Col(x, c.kh, c.kw, c.stride, c.pad)
	if train {
		c.col, c.inH, c.inW, c.oh, c.ow = col, h, w, oh, ow
	}
	y := tensor.MatMul(c.w.Data, col) // [outC, oh*ow]
	// Add bias per output channel.
	for o := 0; o < c.outC; o++ {
		b := c.b.Data.Data()[o]
		if b == 0 {
			continue
		}
		row := y.Data()[o*oh*ow : (o+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	return y.Reshape(c.outC, oh, ow)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.col == nil {
		panic("nn: Conv2D.Backward before training Forward")
	}
	g := grad.Reshape(c.outC, c.oh*c.ow)
	// dW = g @ colᵀ
	if c.gwScratch == nil || !c.gwScratch.SameShape(c.w.Grad) {
		c.gwScratch = tensor.New(c.w.Grad.Shape()...)
	}
	tensor.MatMulT2Into(c.gwScratch, g, c.col)
	c.w.Grad.AddInPlace(c.gwScratch)
	// db = row sums of g
	for o := 0; o < c.outC; o++ {
		var s float32
		for _, v := range g.Row(o).Data() {
			s += v
		}
		c.b.Grad.Data()[o] += s
	}
	// dcol = Wᵀ @ g ; dX = col2im(dcol)
	if c.dcolScratch == nil || !c.dcolScratch.SameShape(c.col) {
		c.dcolScratch = tensor.New(c.col.Shape()...)
	}
	tensor.MatMulT1Into(c.dcolScratch, c.w.Data, g)
	return tensor.Col2Im(c.dcolScratch, c.inC, c.inH, c.inW, c.kh, c.kw, c.stride, c.pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	return []int{c.outC, tensor.ConvOut(in[1], c.kh, c.stride, c.pad), tensor.ConvOut(in[2], c.kw, c.stride, c.pad)}
}

// DepthwiseConv2D applies one k×k filter per input channel.
type DepthwiseConv2D struct {
	label       string
	c, k        int
	stride, pad int
	w           *Param // [C,K,K]
	b           *Param // [C]
	x           *tensor.Tensor
}

// NewDepthwiseConv2D creates a depthwise convolution with He-normal weights.
func NewDepthwiseConv2D(label string, channels, k, stride, pad int, rng *rand.Rand) *DepthwiseConv2D {
	fanIn := k * k
	return &DepthwiseConv2D{
		label: label, c: channels, k: k, stride: stride, pad: pad,
		w: &Param{Name: label + ".w", Data: tensor.HeNormal(rng, fanIn, channels, k, k), Grad: tensor.New(channels, k, k)},
		b: &Param{Name: label + ".b", Data: tensor.New(channels), Grad: tensor.New(channels)},
	}
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.label }

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 3 || x.Dim(0) != d.c {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", d.label, d.c, x.Shape()))
	}
	if train {
		d.x = x.Clone()
	}
	return tensor.DepthwiseConv(x, d.w.Data, d.b.Data, d.stride, d.pad)
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: DepthwiseConv2D.Backward before training Forward")
	}
	gx, gw, gb := tensor.DepthwiseConvGrads(d.x, d.w.Data, grad, d.stride, d.pad)
	d.w.Grad.AddInPlace(gw)
	d.b.Grad.AddInPlace(gb)
	return gx
}

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.w, d.b} }

// OutShape implements Layer.
func (d *DepthwiseConv2D) OutShape(in []int) []int {
	return []int{d.c, tensor.ConvOut(in[1], d.k, d.stride, d.pad), tensor.ConvOut(in[2], d.k, d.stride, d.pad)}
}
