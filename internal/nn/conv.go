package nn

import (
	"fmt"
	"math/rand"

	"chameleon/internal/tensor"
)

// Conv2DOf is a standard 2-D convolution on [C,H,W] single-sample inputs,
// implemented as im2col + GEMM. Weights are stored as [outC, inC*KH*KW].
type Conv2DOf[T tensor.Float] struct {
	label            string
	inC, outC        int
	kh, kw, stride   int
	pad              int
	w                *ParamOf[T]
	b                *ParamOf[T]
	col              *tensor.Of[T] // cached im2col matrix (train mode)
	inH, inW, oh, ow int
	// gwScratch and dcolScratch are backward-pass work buffers, reused across
	// steps. gbScratch holds the per-channel bias-gradient row sums on the
	// fused backward path. They are touched only in Backward, which runs on
	// the learner's own goroutine; eval-mode Forward stays mutation-free so a
	// frozen model can serve concurrent extraction workers.
	gwScratch, dcolScratch, gbScratch *tensor.Of[T]
	// colBuf is the forward im2col scratch and y3/y2 one output buffer viewed
	// as [outC,OH,OW] and [outC,OH*OW]; gxBuf holds the input gradient. All
	// are reused on the train path always, and colBuf/y on the eval path once
	// a workspace is attached.
	colBuf, y2, y3, gxBuf *tensor.Of[T]
	ws                    *tensor.WorkspaceOf[T]
}

// Conv2D is the fast-tier convolution layer.
type Conv2D = Conv2DOf[float32]

// NewConv2D creates a fast-tier Conv2D with He-normal weights.
func NewConv2D(label string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	fanIn := inC * k * k
	return &Conv2D{
		label: label, inC: inC, outC: outC, kh: k, kw: k, stride: stride, pad: pad,
		w: &Param{Name: label + ".w", Data: tensor.HeNormal(rng, fanIn, outC, fanIn), Grad: tensor.New(outC, fanIn)},
		b: &Param{Name: label + ".b", Data: tensor.New(outC), Grad: tensor.New(outC)},
	}
}

// Name implements Layer.
func (c *Conv2DOf[T]) Name() string { return c.label }

// SetWorkspace implements WorkspaceUser.
func (c *Conv2DOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { c.ws = ws }

// Weights exposes the [outC, inC*KH*KW] weight matrix and [outC] bias (live
// tensors; read-only for callers). The int8 extraction path quantizes these.
func (c *Conv2DOf[T]) Weights() (w, b *tensor.Of[T]) { return c.w.Data, c.b.Data }

// Geometry returns the convolution hyperparameters (inC, outC, k, stride,
// pad); kernels are square by construction.
func (c *Conv2DOf[T]) Geometry() (inC, outC, k, stride, pad int) {
	return c.inC, c.outC, c.kh, c.stride, c.pad
}

// Forward implements Layer for a [inC,H,W] input, producing [outC,OH,OW].
func (c *Conv2DOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if x.NDim() != 3 || x.Dim(0) != c.inC {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", c.label, c.inC, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	oh := tensor.ConvOut(h, c.kh, c.stride, c.pad)
	ow := tensor.ConvOut(w, c.kw, c.stride, c.pad)
	var col *tensor.Of[T]
	if train || c.ws != nil {
		kc := c.inC * c.kh * c.kw
		if c.colBuf == nil || c.colBuf.Dim(0) != kc || c.colBuf.Dim(1) != oh*ow {
			c.ws.Put(c.colBuf)
			c.colBuf = c.ws.Get(kc, oh*ow)
		}
		tensor.Im2ColInto(c.colBuf, x, c.kh, c.kw, c.stride, c.pad)
		col = c.colBuf
	} else {
		col = tensor.Im2Col(x, c.kh, c.kw, c.stride, c.pad)
	}
	if train {
		c.col, c.inH, c.inW, c.oh, c.ow = col, h, w, oh, ow
	}
	var y2, y3 *tensor.Of[T]
	if train || c.ws != nil {
		if c.y3 == nil || c.y3.Dim(1) != oh || c.y3.Dim(2) != ow {
			c.ws.Put(c.y3)
			c.y3 = c.ws.Get(c.outC, oh, ow)
			c.y2 = c.y3.Reshape(c.outC, oh*ow)
		}
		y2, y3 = c.y2, c.y3
	} else {
		y3 = tensor.NewOf[T](c.outC, oh, ow)
		y2 = y3.Reshape(c.outC, oh*ow)
	}
	tensor.MatMulInto(y2, c.w.Data, col) // [outC, oh*ow]
	// Add bias per output channel.
	for o := 0; o < c.outC; o++ {
		b := c.b.Data.Data()[o]
		if b == 0 {
			continue
		}
		row := y2.Data()[o*oh*ow : (o+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	return y3
}

// Backward implements Layer.
func (c *Conv2DOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	g := c.backwardShared(grad)
	c.w.Grad.AddInPlace(c.gwScratch)
	// db = row sums of g
	ohw := c.oh * c.ow
	gd := g.Data()
	for o := 0; o < c.outC; o++ {
		var s T
		for _, v := range gd[o*ohw : (o+1)*ohw] {
			s += v
		}
		c.b.Grad.Data()[o] += s
	}
	return c.gxBuf
}

// backwardShared runs the parts of the backward pass common to the split and
// fused paths: the weight-gradient GEMM into gwScratch and the input gradient
// into gxBuf (which reads the pre-update weights). It returns the reshaped
// upstream gradient.
func (c *Conv2DOf[T]) backwardShared(grad *tensor.Of[T]) *tensor.Of[T] {
	if c.col == nil {
		panic("nn: Conv2D.Backward before training Forward")
	}
	g := grad.Reshape(c.outC, c.oh*c.ow)
	// dW = g @ colᵀ
	if c.gwScratch == nil || !c.gwScratch.SameShape(c.w.Grad) {
		c.gwScratch = tensor.NewOf[T](c.w.Grad.Shape()...)
	}
	tensor.MatMulT2Into(c.gwScratch, g, c.col)
	// dcol = Wᵀ @ g ; dX = col2im(dcol)
	if c.dcolScratch == nil || !c.dcolScratch.SameShape(c.col) {
		c.dcolScratch = tensor.NewOf[T](c.col.Shape()...)
	}
	tensor.MatMulT1Into(c.dcolScratch, c.w.Data, g)
	if c.gxBuf == nil || c.gxBuf.Len() != c.inC*c.inH*c.inW {
		c.ws.Put(c.gxBuf)
		c.gxBuf = c.ws.Get(c.inC, c.inH, c.inW)
	}
	tensor.Col2ImInto(c.gxBuf, c.dcolScratch, c.kh, c.kw, c.stride, c.pad)
	return g
}

// BackwardSGD implements FusedLayer: the backward pass followed by an
// immediate in-place optimizer update, consuming the weight gradient in the
// same sweep that reads it instead of materialising it into w.Grad and
// re-traversing. Bit-identical to Backward + Step (see SGDOf.FusedStepDelta).
func (c *Conv2DOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	g := c.backwardShared(grad)
	// Bias row sums land in scratch so the fused update sees the complete
	// gradient exactly as the split path's b.Grad accumulation would.
	if c.gbScratch == nil || c.gbScratch.Len() != c.outC {
		c.gbScratch = tensor.NewOf[T](c.outC)
	}
	ohw := c.oh * c.ow
	gd := g.Data()
	gbd := c.gbScratch.Data()
	for o := 0; o < c.outC; o++ {
		var s T
		for _, v := range gd[o*ohw : (o+1)*ohw] {
			s += v
		}
		gbd[o] = s
	}
	opt.FusedStepDelta(c.w, c.gwScratch.Data(), invScale)
	opt.FusedStepDelta(c.b, gbd, invScale)
	return c.gxBuf
}

// Params implements Layer.
func (c *Conv2DOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv2DOf[T]) OutShape(in []int) []int {
	return []int{c.outC, tensor.ConvOut(in[1], c.kh, c.stride, c.pad), tensor.ConvOut(in[2], c.kw, c.stride, c.pad)}
}

// DepthwiseConv2DOf applies one k×k filter per input channel.
type DepthwiseConv2DOf[T tensor.Float] struct {
	label       string
	c, k        int
	stride, pad int
	w           *ParamOf[T]   // [C,K,K]
	b           *ParamOf[T]   // [C]
	x           *tensor.Of[T] // cached input (train mode), reused across steps
	// y is the forward output buffer (train path always, eval path once a
	// workspace is attached); gx/gw/gb are backward scratch, train-only.
	y, gx, gw, gb *tensor.Of[T]
	ws            *tensor.WorkspaceOf[T]
}

// DepthwiseConv2D is the fast-tier depthwise convolution layer.
type DepthwiseConv2D = DepthwiseConv2DOf[float32]

// NewDepthwiseConv2D creates a fast-tier depthwise convolution with He-normal
// weights.
func NewDepthwiseConv2D(label string, channels, k, stride, pad int, rng *rand.Rand) *DepthwiseConv2D {
	fanIn := k * k
	return &DepthwiseConv2D{
		label: label, c: channels, k: k, stride: stride, pad: pad,
		w: &Param{Name: label + ".w", Data: tensor.HeNormal(rng, fanIn, channels, k, k), Grad: tensor.New(channels, k, k)},
		b: &Param{Name: label + ".b", Data: tensor.New(channels), Grad: tensor.New(channels)},
	}
}

// Name implements Layer.
func (d *DepthwiseConv2DOf[T]) Name() string { return d.label }

// SetWorkspace implements WorkspaceUser.
func (d *DepthwiseConv2DOf[T]) SetWorkspace(ws *tensor.WorkspaceOf[T]) { d.ws = ws }

// Forward implements Layer.
func (d *DepthwiseConv2DOf[T]) Forward(x *tensor.Of[T], train bool) *tensor.Of[T] {
	if x.NDim() != 3 || x.Dim(0) != d.c {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", d.label, d.c, x.Shape()))
	}
	if train {
		if d.x == nil || !d.x.SameShape(x) {
			d.x = tensor.NewOf[T](x.Shape()...)
		}
		d.x.CopyFrom(x)
	}
	if train || d.ws != nil {
		oh := tensor.ConvOut(x.Dim(1), d.k, d.stride, d.pad)
		ow := tensor.ConvOut(x.Dim(2), d.k, d.stride, d.pad)
		if d.y == nil || d.y.Dim(1) != oh || d.y.Dim(2) != ow {
			d.ws.Put(d.y)
			d.y = d.ws.Get(d.c, oh, ow)
		}
		tensor.DepthwiseConvInto(d.y, x, d.w.Data, d.b.Data, d.stride, d.pad)
		return d.y
	}
	return tensor.DepthwiseConv(x, d.w.Data, d.b.Data, d.stride, d.pad)
}

// backwardShared computes the depthwise gradients into the gx/gw/gb scratch
// buffers (gx reads the pre-update weights).
func (d *DepthwiseConv2DOf[T]) backwardShared(grad *tensor.Of[T]) {
	if d.x == nil {
		panic("nn: DepthwiseConv2D.Backward before training Forward")
	}
	if d.gx == nil || !d.gx.SameShape(d.x) {
		d.gx = tensor.NewOf[T](d.x.Shape()...)
	}
	if d.gw == nil {
		d.gw = tensor.NewOf[T](d.w.Data.Shape()...)
		d.gb = tensor.NewOf[T](d.c)
	}
	tensor.DepthwiseConvGradsInto(d.gx, d.gw, d.gb, d.x, d.w.Data, grad, d.stride, d.pad)
}

// Backward implements Layer.
func (d *DepthwiseConv2DOf[T]) Backward(grad *tensor.Of[T]) *tensor.Of[T] {
	d.backwardShared(grad)
	d.w.Grad.AddInPlace(d.gw)
	d.b.Grad.AddInPlace(d.gb)
	return d.gx
}

// BackwardSGD implements FusedLayer, mirroring Conv2D: gradients are consumed
// by the optimizer update in one pass instead of accumulating into w.Grad and
// re-traversing.
func (d *DepthwiseConv2DOf[T]) BackwardSGD(grad *tensor.Of[T], opt *SGDOf[T], invScale T) *tensor.Of[T] {
	d.backwardShared(grad)
	opt.FusedStepDelta(d.w, d.gw.Data(), invScale)
	opt.FusedStepDelta(d.b, d.gb.Data(), invScale)
	return d.gx
}

// Params implements Layer.
func (d *DepthwiseConv2DOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{d.w, d.b} }

// OutShape implements Layer.
func (d *DepthwiseConv2DOf[T]) OutShape(in []int) []int {
	return []int{d.c, tensor.ConvOut(in[1], d.k, d.stride, d.pad), tensor.ConvOut(in[2], d.k, d.stride, d.pad)}
}
