package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// WorkspaceUserOf is implemented by layers (and the optimizer) that can
// recycle their scratch tensors through a tensor workspace. Attaching a
// workspace opts the layer into buffer reuse on the *eval* path too; without
// one, eval Forward stays allocation-fresh and mutation-free so a frozen
// model can serve concurrent extraction workers (the Layer contract).
// Train-path scratch is reused either way — training is single-owner by
// contract.
type WorkspaceUserOf[T tensor.Float] interface {
	SetWorkspace(ws *tensor.WorkspaceOf[T])
}

// WorkspaceUser is the fast-tier workspace hook.
type WorkspaceUser = WorkspaceUserOf[float32]

// AttachWorkspace walks a fast-tier layer tree and installs ws on every layer
// that can use one. The workspace must be owned by the same single goroutine
// that drives the model (see tensor.Workspace); cl.NewHead attaches one to
// each learner's private head, while shared backbones are never given one.
func AttachWorkspace(l Layer, ws *tensor.Workspace) { AttachWorkspaceOf[float32](l, ws) }

// AttachWorkspaceOf is AttachWorkspace for either precision tier.
func AttachWorkspaceOf[T tensor.Float](l LayerOf[T], ws *tensor.WorkspaceOf[T]) {
	switch v := l.(type) {
	case *SequentialOf[T]:
		for _, inner := range v.Layers {
			AttachWorkspaceOf(inner, ws)
		}
	case *FrozenOf[T]:
		AttachWorkspaceOf(v.Inner, ws)
	default:
		if u, ok := l.(WorkspaceUserOf[T]); ok {
			u.SetWorkspace(ws)
		}
	}
}

// BatchLayerOf is an optional Layer extension for batched evaluation: the
// layer transforms a whole [N, ...] matrix of samples at once, in eval mode.
// The input tensor is owned by the caller's workspace chain; implementations
// may transform it in place and return it, or Get a fresh output from ws (the
// caller Puts the input back when the returned tensor differs). Results must
// be bit-identical to N single-sample eval Forwards.
type BatchLayerOf[T tensor.Float] interface {
	ForwardBatch(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T]
}

// BatchLayer is the fast-tier batched-evaluation extension.
type BatchLayer = BatchLayerOf[float32]

// ForwardBatch implements BatchLayer: one GEMM over the whole sample matrix.
// The weight matrix is transposed into workspace scratch first so the product
// runs on the saxpy-style MatMul kernel, which pays its zero-check once per
// input element instead of once per MAC (the dot-product MatMulT2 kernel
// measures ~2× slower per MAC here). Per output element the accumulation
// order over the input dimension is ascending, exactly like the per-sample
// MatVec path, so every logit equals that path's result (the two kernels skip
// zero factors on opposite sides of the product, which can only flip the sign
// of a floating-point zero — invisible to argmax, ReLU and ==).
func (d *DenseOf[T]) ForwardBatch(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if x.NDim() != 2 || x.Dim(1) != d.inCap {
		panic(fmt.Sprintf("nn: %s ForwardBatch expects [N,%d], got %v", d.label, d.inCap, x.Shape()))
	}
	return d.forwardBatchGEMM(x, ws)
}

// forwardBatchGEMM is the shared GEMM+bias body of the eval and train batched
// forwards (the two must stay bit-identical; factoring the kernel out makes
// that structural).
func (d *DenseOf[T]) forwardBatchGEMM(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	n, in, out := x.Dim(0), d.inCap, d.Out()
	wt := ws.Get(in, out)
	wtd, wd := wt.Data(), d.w.Data.Data()
	for o := 0; o < out; o++ {
		row := wd[o*in : (o+1)*in]
		for i, v := range row {
			wtd[i*out+o] = v
		}
	}
	y := ws.Get(n, out)
	tensor.MatMulInto(y, x, wt)
	ws.Put(wt)
	bd, yd := d.b.Data.Data(), y.Data()
	for r := 0; r < n; r++ {
		row := yd[r*out : (r+1)*out]
		for i, bv := range bd {
			row[i] += bv
		}
	}
	return y
}

// ForwardBatch implements BatchLayer: the clamp runs in place on the batch
// matrix, with the same branch structure as the per-sample eval Forward so
// results (including signed zeros) are bit-identical.
func (r *ReLUOf[T]) ForwardBatch(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	data := x.Data()
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		}
		if r.Cap > 0 && v > r.Cap {
			data[i] = r.Cap
		}
	}
	return x
}

// ForwardBatch implements BatchLayer: dropout is the identity in eval mode.
func (d *DropoutOf[T]) ForwardBatch(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return x
}
