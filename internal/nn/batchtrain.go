package nn

import (
	"fmt"

	"chameleon/internal/tensor"
)

// TrainBatchLayerOf is the training twin of BatchLayerOf: the layer runs its
// train-mode forward (caching whatever its backward needs) and backward over a
// whole [N, ...] matrix of samples at once. The buffer protocol matches the
// eval batch path — the input tensor is owned by the caller's workspace chain,
// implementations may transform it in place and return it, or Get a fresh
// output from ws (the caller Puts the input back when the returned tensor
// differs).
//
// Equivalence contract (the batched training path's reason to exist): one
// batched step must compute the same optimizer step as N per-sample
// forward/backwards accumulated into one Step. On the float64 reference tier
// that means bit-identical — every parameter-gradient element accumulates
// over samples in ascending stream order, exactly the per-sample loop's
// chain — while the float32 fast tier inherits the tier's documented
// accumulation-order caveat (tensor/fast32.go) and is held to tolerance
// instead.
type TrainBatchLayerOf[T tensor.Float] interface {
	// ForwardBatchTrain is the train-mode batched forward: like ForwardBatch
	// but caching the layer's backward inputs (activations, masks, dropout
	// draws). Dropout consumes its RNG stream in row-major sample order, the
	// same draw sequence as N per-sample train Forwards.
	ForwardBatchTrain(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T]
	// BackwardBatch accumulates parameter gradients for the whole batch and
	// returns the input gradient matrix (same in-place-or-fresh protocol).
	// When needInput is false no layer below consumes the input gradient, so
	// the layer may skip computing it and return nil — for Dense that deletes
	// an entire GEMM. Parameter updates are unaffected either way.
	BackwardBatch(grad *tensor.Of[T], needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T]
	// BackwardSGDBatch is BackwardBatch with the SGD update folded in, the
	// batched extension of FusedLayer: parameters step the moment the batch's
	// full gradient is known. Callers must check opt.Fused && opt.GradClip ==
	// 0 first; implementations fall back to BackwardBatch + split stepping
	// otherwise. The needInput contract matches BackwardBatch.
	BackwardSGDBatch(grad *tensor.Of[T], opt *SGDOf[T], invScale T, needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T]
}

// TrainBatchLayer is the fast-tier batched-training extension.
type TrainBatchLayer = TrainBatchLayerOf[float32]

// SupportsBatchTrain reports whether every layer from start onward implements
// the batched training protocol, i.e. whether ForwardBatchTrain /
// BackwardSGDBatchFrom may be used on this model. Conv-tail heads return
// false and stay on the per-sample path.
func (s *SequentialOf[T]) SupportsBatchTrain(start int) bool {
	if start < 0 || start >= len(s.Layers) {
		return false
	}
	for _, l := range s.Layers[start:] {
		if _, ok := l.(TrainBatchLayerOf[T]); !ok {
			return false
		}
	}
	return true
}

// ForwardBatchTrain runs the train-mode batched forward from layer start over
// a packed [N, D] sample matrix, consuming x (it is either transformed in
// place and returned, or Put back into ws once a layer replaces it). The
// returned logits matrix is owned by the caller.
func (s *SequentialOf[T]) ForwardBatchTrain(x *tensor.Of[T], start int, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	for _, l := range s.Layers[start:] {
		bl, ok := l.(TrainBatchLayerOf[T])
		if !ok {
			panic(fmt.Sprintf("nn: layer %s does not support batched training (check SupportsBatchTrain first)", l.Name()))
		}
		y := bl.ForwardBatchTrain(x, ws)
		if y != x {
			ws.Put(x)
		}
		x = y
	}
	return x
}

// BackwardSGDBatchFrom walks the batched backward from the last layer down to
// layer start inclusive, folding the SGD update per layer when the optimizer
// allows it (the FusedLayer contract) and falling back to BackwardBatch +
// split FusedStepDelta otherwise. It consumes grad: every intermediate
// gradient matrix, including the final input gradient, is returned to ws.
// Layers below start are never visited — the batched entry points stop at the
// first trainable layer, so a parameter-free pooling prefix (the GAP-first
// heads) skips its broadcast backward entirely. The walk also stops at the
// bottom-most parameterized layer at or above start: its input gradient would
// feed only parameter-free layers (masks, scales, reshapes) whose own outputs
// nothing consumes, so that layer is told not to produce it (for Dense that
// deletes one of the three backward GEMMs) and the layers below are skipped.
// No parameter update depends on any of the skipped work, so the equivalence
// contract — fp64 bit-identity, fp32 tolerance — is untouched.
func (s *SequentialOf[T]) BackwardSGDBatchFrom(grad *tensor.Of[T], start int, opt *SGDOf[T], invScale T, ws *tensor.WorkspaceOf[T]) {
	fused := opt.Fused && opt.GradClip == 0
	if s.bwStopKey != start+1 {
		s.bwStop = start
		for i := start; i < len(s.Layers); i++ {
			if len(s.Layers[i].Params()) > 0 {
				s.bwStop = i
				break
			}
		}
		s.bwStopKey = start + 1
	}
	stop := s.bwStop
	for i := len(s.Layers) - 1; i >= stop; i-- {
		bl, ok := s.Layers[i].(TrainBatchLayerOf[T])
		if !ok {
			panic(fmt.Sprintf("nn: layer %s does not support batched training (check SupportsBatchTrain first)", s.Layers[i].Name()))
		}
		needInput := i > stop
		var g *tensor.Of[T]
		if fused {
			g = bl.BackwardSGDBatch(grad, opt, invScale, needInput, ws)
		} else {
			g = bl.BackwardBatch(grad, needInput, ws)
			for _, p := range s.Layers[i].Params() {
				opt.FusedStepDelta(p, nil, invScale)
			}
		}
		if g != grad {
			ws.Put(grad)
		}
		grad = g
	}
	ws.Put(grad)
}

// ForwardBatchTrain implements TrainBatchLayer: the eval GEMM plus input
// caching. The whole [N, in] input matrix is copied into a persistent batch
// cache (the train-mode analogue of the per-sample d.x) so the backward GEMMs
// can form dW = Gᵀ·X.
func (d *DenseOf[T]) ForwardBatchTrain(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if x.NDim() != 2 || x.Dim(1) != d.inCap {
		panic(fmt.Sprintf("nn: %s ForwardBatchTrain expects [N,%d], got %v", d.label, d.inCap, x.Shape()))
	}
	if d.xB == nil || !d.xB.SameShape(x) {
		ws.Put(d.xB)
		d.xB = ws.Get(x.Shape()...)
	}
	d.xB.CopyFrom(x)
	return d.forwardBatchGEMM(x, ws)
}

// BackwardBatch implements TrainBatchLayer: three batched kernels replace N
// per-sample row sweeps. The bias gradient accumulates row-major over the
// gradient matrix — per output element that is the ascending-sample chain of
// the per-sample loop — dW accumulates via the transposed GEMM (ascending
// sample order per element, matching the per-sample accumulation bit for bit
// on the reference tier), and the input gradient is one GEMM against the
// weights — elided entirely when needInput is false.
func (d *DenseOf[T]) BackwardBatch(grad *tensor.Of[T], needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if d.xB == nil {
		panic("nn: Dense.BackwardBatch before ForwardBatchTrain")
	}
	out, in := d.Out(), d.inCap
	n := d.xB.Dim(0)
	if grad.NDim() != 2 || grad.Dim(0) != n || grad.Dim(1) != out {
		panic(fmt.Sprintf("nn: %s BackwardBatch grad %v, want [%d %d]", d.label, grad.Shape(), n, out))
	}
	gb, gd := d.b.Grad.Data(), grad.Data()
	for r := 0; r < n; r++ {
		row := gd[r*out : (r+1)*out]
		for o, g := range row {
			gb[o] += g
		}
	}
	tensor.MatMulT1AccInto(d.w.Grad, grad, d.xB)
	if !needInput {
		return nil
	}
	gx := ws.Get(n, in)
	tensor.MatMulInto(gx, grad, d.w.Data)
	return gx
}

// BackwardSGDBatch implements TrainBatchLayer, the batched fused fold: the
// input gradient runs first (one GEMM against the pre-update weights — the
// same pre-update reads the per-sample fused fold guarantees), the full-batch
// parameter gradients accumulate next, and one update sweep then steps the
// weights. Because the batch's entire gradient is already accumulated, the
// sweep is the fused fold's zero-delta form — scale, decay, momentum, update,
// zero — the same per-element expression sequence as the split path, so the
// reference tier stays bit-identical to per-sample training.
func (d *DenseOf[T]) BackwardSGDBatch(grad *tensor.Of[T], opt *SGDOf[T], invScale T, needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if opt.GradClip > 0 || !opt.Fused {
		gx := d.BackwardBatch(grad, needInput, ws)
		opt.FusedStepDelta(d.w, nil, invScale)
		opt.FusedStepDelta(d.b, nil, invScale)
		return gx
	}
	if d.xB == nil {
		panic("nn: Dense.BackwardSGDBatch before ForwardBatchTrain")
	}
	out, in := d.Out(), d.inCap
	n := d.xB.Dim(0)
	if grad.NDim() != 2 || grad.Dim(0) != n || grad.Dim(1) != out {
		panic(fmt.Sprintf("nn: %s BackwardSGDBatch grad %v, want [%d %d]", d.label, grad.Shape(), n, out))
	}
	var gx *tensor.Of[T]
	if needInput {
		gx = ws.Get(n, in)
		tensor.MatMulInto(gx, grad, d.w.Data)
	}
	gb, gd := d.b.Grad.Data(), grad.Data()
	for r := 0; r < n; r++ {
		row := gd[r*out : (r+1)*out]
		for o, g := range row {
			gb[o] += g
		}
	}
	tensor.MatMulT1AccInto(d.w.Grad, grad, d.xB)
	gw, wd, bd := d.w.Grad.Data(), d.w.Data.Data(), d.b.Data.Data()
	wdec := T(opt.WeightDecay)
	m := T(opt.Momentum)
	lrNeg := T(-opt.LR)
	var vw, vb []T
	if opt.Momentum != 0 {
		vw = opt.velocityFor(d.w).Data()
		vb = opt.velocityFor(d.b).Data()
	}
	for o := 0; o < out; o++ {
		gB := gb[o]
		if invScale != 1 {
			gB *= invScale
		}
		if wdec != 0 {
			gB += wdec * bd[o]
		}
		if vb != nil {
			v := vb[o]
			v *= m
			v += gB
			vb[o] = v
			gB = v
		}
		bd[o] += lrNeg * gB
		gb[o] = 0
		wRow := wd[o*in : (o+1)*in]
		gwRow := gw[o*in : (o+1)*in]
		var vRow []T
		if vw != nil {
			vRow = vw[o*in : (o+1)*in]
		}
		// Fast-tier dispatch: the zero-gradient row kernel is exactly the
		// update-only sweep this path needs (the outer-product term is already
		// in gwRow), bit-identical to the generic loop below.
		if w32, ok := any(wRow).([]float32); ok {
			var v32 []float32
			if vRow != nil {
				v32 = any(vRow).([]float32)
			}
			tensor.FusedUpdateRow32(w32, any(gwRow).([]float32), v32,
				any(invScale).(float32), any(wdec).(float32), any(m).(float32), any(lrNeg).(float32))
			continue
		}
		for i := range wRow {
			wv := wRow[i]
			ge := gwRow[i]
			if invScale != 1 {
				ge *= invScale
			}
			if wdec != 0 {
				ge += wdec * wv
			}
			if vRow != nil {
				v := vRow[i]
				v *= m
				v += ge
				vRow[i] = v
				ge = v
			}
			wRow[i] = wv + lrNeg*ge
			gwRow[i] = 0
		}
	}
	return gx
}

// ForwardBatchTrain implements TrainBatchLayer: the clamp runs in place with
// the per-sample branch structure, and the pass mask covers the whole batch
// (the mask buffer is shared with the per-sample path; whichever ran last
// owns its length).
func (r *ReLUOf[T]) ForwardBatchTrain(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	data := x.Data()
	if cap(r.mask) < len(data) {
		r.mask = make([]bool, len(data))
	}
	r.mask = r.mask[:len(data)]
	for i, v := range data {
		pass := v > 0
		if v < 0 {
			data[i] = 0
		}
		if r.Cap > 0 && v > r.Cap {
			data[i] = r.Cap
			pass = false
		}
		r.mask[i] = pass
	}
	return x
}

// BackwardBatch implements TrainBatchLayer: the mask gate runs in place on
// the gradient matrix.
func (r *ReLUOf[T]) BackwardBatch(grad *tensor.Of[T], needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	data := grad.Data()
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return grad
}

// BackwardSGDBatch implements TrainBatchLayer: no parameters, just the mask.
func (r *ReLUOf[T]) BackwardSGDBatch(grad *tensor.Of[T], opt *SGDOf[T], invScale T, needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return r.BackwardBatch(grad, needInput, ws)
}

// ForwardBatchTrain implements TrainBatchLayer: inverted dropout in place over
// the batch matrix. The RNG draws row-major — sample 0's elements first —
// which is the exact draw sequence of per-sample train Forwards, so a batched
// step consumes the dropout stream identically to the loop it replaces.
func (d *DropoutOf[T]) ForwardBatchTrain(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if d.P <= 0 {
		return x
	}
	data := x.Data()
	if cap(d.keep) < len(data) {
		d.keep = make([]T, len(data))
	}
	d.keep = d.keep[:len(data)]
	scale := T(1 / (1 - d.P))
	for i := range data {
		if d.rng.Float64() < d.P {
			d.keep[i] = 0
			data[i] = 0
		} else {
			d.keep[i] = scale
			data[i] *= scale
		}
	}
	return x
}

// BackwardBatch implements TrainBatchLayer: the kept-mask scale in place.
func (d *DropoutOf[T]) BackwardBatch(grad *tensor.Of[T], needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	if d.P <= 0 || len(d.keep) == 0 {
		return grad
	}
	data := grad.Data()
	for i := range data {
		data[i] *= d.keep[i]
	}
	return grad
}

// BackwardSGDBatch implements TrainBatchLayer: no parameters, just the scale.
func (d *DropoutOf[T]) BackwardSGDBatch(grad *tensor.Of[T], opt *SGDOf[T], invScale T, needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return d.BackwardBatch(grad, needInput, ws)
}

// ForwardBatch implements BatchLayer: a packed batch matrix already holds one
// flat sample per row, so the reshape is the identity.
func (f *FlattenOf[T]) ForwardBatch(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return x
}

// ForwardBatchTrain implements TrainBatchLayer: identity on packed rows.
func (f *FlattenOf[T]) ForwardBatchTrain(x *tensor.Of[T], ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return x
}

// BackwardBatch implements TrainBatchLayer: identity (the gradient matrix
// already has one row per sample).
func (f *FlattenOf[T]) BackwardBatch(grad *tensor.Of[T], needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return grad
}

// BackwardSGDBatch implements TrainBatchLayer: no parameters, identity.
func (f *FlattenOf[T]) BackwardSGDBatch(grad *tensor.Of[T], opt *SGDOf[T], invScale T, needInput bool, ws *tensor.WorkspaceOf[T]) *tensor.Of[T] {
	return f.BackwardBatch(grad, needInput, ws)
}
