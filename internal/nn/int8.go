package nn

import (
	"fmt"

	"chameleon/internal/quant"
	"chameleon/internal/tensor"
)

// Int8Conv2D is the integer inference form of a Conv2D: weights quantised
// once per output channel at construction (symmetric int8), activations
// quantised per tensor at each call (affine uint8 — conv inputs are post-ReLU
// and non-negative, so the affine scheme keeps the full 8-bit resolution),
// and the im2col GEMM accumulated in int32 with the zero-point term folded
// into precomputed weight row sums (see quant.Int8GEMMZPInto). It serves the
// optional -backbone-int8 extraction path
// and is eval-only — it has no gradients and never mutates itself, so like
// the fp32 eval path a single instance may serve concurrent extraction
// workers (every call is allocation-fresh).
type Int8Conv2D struct {
	label                     string
	inC, outC, k, stride, pad int
	wq                        []int8    // [outC, inC*k*k] quantised weights
	wScale                    []float32 // per-output-channel weight scales
	wRowSum                   []int32   // per-row code sums (zero-point term)
	bias                      []float32
}

// NewInt8Conv2D quantises a fast-tier Conv2D's weights. The source layer is
// read once and not retained.
func NewInt8Conv2D(c *Conv2D) *Int8Conv2D {
	w, b := c.Weights()
	inC, outC, k, stride, pad := c.Geometry()
	kc := inC * k * k
	q := &Int8Conv2D{
		label: c.Name() + ".int8",
		inC:   inC, outC: outC, k: k, stride: stride, pad: pad,
		wq:   make([]int8, outC*kc),
		bias: append([]float32(nil), b.Data()...),
	}
	q.wScale = quant.QuantizeInt8Rows(q.wq, w.Data(), outC, kc)
	q.wRowSum = quant.Int8RowSums(q.wq, outC, kc)
	return q
}

// Name returns the source layer's name with an ".int8" suffix.
func (c *Int8Conv2D) Name() string { return c.label }

// Forward runs the integer convolution on a [inC,H,W] input, producing
// [outC,OH,OW] float32 activations: y = (wq @ (colq−z)) · wScale·colScale + b.
func (c *Int8Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.NDim() != 3 || x.Dim(0) != c.inC {
		panic(fmt.Sprintf("nn: %s expects [%d,H,W], got %v", c.label, c.inC, x.Shape()))
	}
	h, w := x.Dim(1), x.Dim(2)
	oh := tensor.ConvOut(h, c.k, c.stride, c.pad)
	ow := tensor.ConvOut(w, c.k, c.stride, c.pad)
	kc := c.inC * c.k * c.k
	ohw := oh * ow

	col := tensor.Im2Col(x, c.k, c.k, c.stride, c.pad) // [kc, ohw]
	colq := make([]uint8, kc*ohw)
	colScale, colZero := quant.QuantizeUint8Affine(colq, col.Data())

	acc := make([]int32, c.outC*ohw)
	quant.Int8GEMMZPInto(acc, c.wq, colq, c.wRowSum, c.outC, kc, ohw, colZero)

	y := tensor.New(c.outC, oh, ow)
	yd := y.Data()
	for o := 0; o < c.outC; o++ {
		s := c.wScale[o] * colScale
		bo := c.bias[o]
		accRow := acc[o*ohw : (o+1)*ohw]
		row := yd[o*ohw : (o+1)*ohw]
		for j, a := range accRow {
			row[j] = float32(a)*s + bo
		}
	}
	return y
}
