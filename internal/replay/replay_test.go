package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func item(label int) Item { return Item{Label: label} }

func TestReservoirFillsThenStaysAtCap(t *testing.T) {
	r := NewReservoir(5, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		r.Offer(item(i))
		if r.Len() > 5 {
			t.Fatal("reservoir exceeded capacity")
		}
	}
	if r.Len() != 5 || r.Seen() != 100 || r.Cap() != 5 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
}

func TestReservoirIsApproximatelyUniform(t *testing.T) {
	// Offer 0..199 into a 20-slot reservoir many times; each element's
	// inclusion frequency should be ≈ 10%.
	counts := make([]int, 200)
	for trial := 0; trial < 300; trial++ {
		r := NewReservoir(20, rand.New(rand.NewSource(int64(trial))))
		for i := 0; i < 200; i++ {
			r.Offer(item(i))
		}
		for _, it := range r.Items() {
			counts[it.Label]++
		}
	}
	// Expected 30 per element; allow generous tolerance.
	for i, c := range counts {
		if c < 8 || c > 70 {
			t.Fatalf("element %d kept %d/300 times; reservoir not uniform", i, c)
		}
	}
}

func TestReservoirSample(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(2)))
	for i := 0; i < 10; i++ {
		r.Offer(item(i))
	}
	s := r.Sample(4)
	if len(s) != 4 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, it := range s {
		if seen[it.Label] {
			t.Fatal("sample with replacement detected")
		}
		seen[it.Label] = true
	}
	if got := r.Sample(99); len(got) != 10 {
		t.Fatalf("oversized sample returned %d", len(got))
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(item(i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	labels := map[int]bool{}
	for _, it := range r.Items() {
		labels[it.Label] = true
	}
	for _, want := range []int{2, 3, 4} {
		if !labels[want] {
			t.Fatalf("ring lost item %d; has %v", want, labels)
		}
	}
}

func TestClassBalancedStaysWithinCap(t *testing.T) {
	b := NewClassBalanced(10, rand.New(rand.NewSource(3)))
	for i := 0; i < 200; i++ {
		b.Insert(item(i % 7))
		if b.Len() > 10 {
			t.Fatal("exceeded capacity")
		}
	}
	if b.Len() != 10 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestClassBalancedBalancesSkewedStream(t *testing.T) {
	// 90% of insertions are class 0, but the buffer must keep all classes
	// with roughly equal shares.
	rng := rand.New(rand.NewSource(4))
	b := NewClassBalanced(20, rng)
	for i := 0; i < 2000; i++ {
		c := 0
		if rng.Float64() > 0.9 {
			c = 1 + rng.Intn(4)
		}
		b.Insert(item(c))
	}
	for c := 0; c < 5; c++ {
		n := len(b.OfClass(c))
		if n < 2 || n > 8 {
			t.Fatalf("class %d holds %d of 20 slots; balance broken", c, n)
		}
	}
}

func TestClassBalancedQuotaProperty(t *testing.T) {
	// Property: after any insertion sequence over k classes, max and min
	// class shares differ by at most ... the fair share rounding plus
	// transient skew; assert a loose invariant: no class exceeds
	// 2*ceil(cap/k)+1 once every class has been inserted at least cap times.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap, k = 12, 4
		b := NewClassBalanced(cap, rng)
		for i := 0; i < cap*k*4; i++ {
			b.Insert(item(rng.Intn(k)))
		}
		fair := int(math.Ceil(float64(cap) / k))
		for c := 0; c < k; c++ {
			if len(b.OfClass(c)) > 2*fair+1 {
				return false
			}
		}
		return b.Len() == cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceRandomOfClass(t *testing.T) {
	b := NewClassBalanced(4, rand.New(rand.NewSource(5)))
	b.Insert(Item{Label: 1})
	b.Insert(Item{Label: 2})
	replacement := Item{Label: 1, Logits: nil}
	if !b.ReplaceRandomOfClass(replacement) {
		t.Fatal("replace of present class failed")
	}
	if b.ReplaceRandomOfClass(Item{Label: 9}) {
		t.Fatal("replace of absent class should report false")
	}
	if b.Len() != 2 {
		t.Fatalf("replace changed fill: %d", b.Len())
	}
}

func TestClassBalancedSample(t *testing.T) {
	b := NewClassBalanced(9, rand.New(rand.NewSource(6)))
	for i := 0; i < 9; i++ {
		b.Insert(item(i % 3))
	}
	s := b.Sample(5)
	if len(s) != 5 {
		t.Fatalf("sample size %d", len(s))
	}
	if len(b.Sample(100)) != 9 {
		t.Fatal("oversized sample should return everything")
	}
}

func TestConstructorsPanicOnBadCapacity(t *testing.T) {
	for _, f := range []func(){
		func() { NewReservoir(0, rand.New(rand.NewSource(1))) },
		func() { NewRing(-1) },
		func() { NewClassBalanced(0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for non-positive capacity")
				}
			}()
			f()
		}()
	}
}
