package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func item(label int) Item { return Item{Label: label} }

func TestReservoirFillsThenStaysAtCap(t *testing.T) {
	r := NewReservoir(5, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		r.Offer(item(i))
		if r.Len() > 5 {
			t.Fatal("reservoir exceeded capacity")
		}
	}
	if r.Len() != 5 || r.Seen() != 100 || r.Cap() != 5 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
}

func TestReservoirIsApproximatelyUniform(t *testing.T) {
	// Offer 0..199 into a 20-slot reservoir many times; each element's
	// inclusion frequency should be ≈ 10%.
	counts := make([]int, 200)
	for trial := 0; trial < 300; trial++ {
		r := NewReservoir(20, rand.New(rand.NewSource(int64(trial))))
		for i := 0; i < 200; i++ {
			r.Offer(item(i))
		}
		for _, it := range r.Items() {
			counts[it.Label]++
		}
	}
	// Expected 30 per element; allow generous tolerance.
	for i, c := range counts {
		if c < 8 || c > 70 {
			t.Fatalf("element %d kept %d/300 times; reservoir not uniform", i, c)
		}
	}
}

func TestReservoirInsertionUniformityStatistical(t *testing.T) {
	// Sharper statistical check than the smoke test above: over many
	// independent trials, each stream element's inclusion count is
	// Binomial(trials, cap/N). Assert every element stays within ±5σ of the
	// mean — a uniform reservoir fails this with probability < 1e-4, while the
	// classic off-by-one bugs (Intn(seen-1), skipping the first element,
	// biasing the boundary slot) push early or late elements far outside.
	const (
		trials   = 400
		n        = 120
		capacity = 30
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capacity, rand.New(rand.NewSource(int64(1000+trial))))
		for i := 0; i < n; i++ {
			r.Offer(item(i))
		}
		if r.Len() != capacity {
			t.Fatalf("trial %d: fill %d", trial, r.Len())
		}
		for _, it := range r.Items() {
			counts[it.Label]++
		}
	}
	p := float64(capacity) / float64(n)
	mean := trials * p
	sigma := math.Sqrt(trials * p * (1 - p))
	lo, hi := mean-5*sigma, mean+5*sigma
	total := 0
	for i, c := range counts {
		if float64(c) < lo || float64(c) > hi {
			t.Errorf("element %d kept %d/%d times, outside [%.1f, %.1f] (mean %.1f, σ %.1f)",
				i, c, trials, lo, hi, mean, sigma)
		}
		total += c
	}
	if total != trials*capacity {
		t.Fatalf("total inclusions %d != %d", total, trials*capacity)
	}
}

func TestReservoirStateRoundTrip(t *testing.T) {
	r := NewReservoir(8, rand.New(rand.NewSource(21)))
	for i := 0; i < 50; i++ {
		r.Offer(item(i))
	}
	items, seen := r.State()
	if seen != 50 || len(items) != 8 {
		t.Fatalf("state: %d items, seen %d", len(items), seen)
	}
	// State must be a copy: mutating it must not reach the live buffer.
	items[0].Label = -99
	if r.Items()[0].Label == -99 {
		t.Fatal("State aliases the live buffer")
	}
	items[0] = r.Items()[0]

	r2 := NewReservoir(8, rand.New(rand.NewSource(22)))
	if err := r2.SetState(items, seen); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 8 || r2.Seen() != 50 {
		t.Fatalf("restored: len %d seen %d", r2.Len(), r2.Seen())
	}
	for i, it := range r2.Items() {
		if it.Label != items[i].Label {
			t.Fatalf("restored item %d = %d, want %d", i, it.Label, items[i].Label)
		}
	}

	small := NewReservoir(4, rand.New(rand.NewSource(23)))
	if err := small.SetState(items, seen); err == nil {
		t.Fatal("overfull restore accepted")
	}
	if err := r2.SetState(items, 3); err == nil {
		t.Fatal("seen < len(items) accepted")
	}
}

func TestClassBalancedExportSetContentsRoundTrip(t *testing.T) {
	b := NewClassBalanced(12, rand.New(rand.NewSource(31)))
	for i := 0; i < 100; i++ {
		b.Insert(item(i % 5))
	}
	exported := b.Export()
	if len(exported) != 12 {
		t.Fatalf("export size %d", len(exported))
	}
	for i := 1; i < len(exported); i++ {
		if exported[i].Label < exported[i-1].Label {
			t.Fatal("export not class-ascending")
		}
	}

	b2 := NewClassBalanced(12, rand.New(rand.NewSource(32)))
	if err := b2.SetContents(exported); err != nil {
		t.Fatal(err)
	}
	if b2.Len() != 12 {
		t.Fatalf("restored fill %d", b2.Len())
	}
	again := b2.Export()
	for i := range exported {
		if again[i].Label != exported[i].Label {
			t.Fatalf("round trip changed item %d: %d vs %d", i, again[i].Label, exported[i].Label)
		}
	}

	tiny := NewClassBalanced(3, rand.New(rand.NewSource(33)))
	if err := tiny.SetContents(exported); err == nil {
		t.Fatal("overfull SetContents accepted")
	}
	if tiny.Len() != 0 {
		t.Fatal("failed SetContents mutated the buffer")
	}
}

func TestReservoirSample(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(2)))
	for i := 0; i < 10; i++ {
		r.Offer(item(i))
	}
	s := r.Sample(4)
	if len(s) != 4 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, it := range s {
		if seen[it.Label] {
			t.Fatal("sample with replacement detected")
		}
		seen[it.Label] = true
	}
	if got := r.Sample(99); len(got) != 10 {
		t.Fatalf("oversized sample returned %d", len(got))
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(item(i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	labels := map[int]bool{}
	for _, it := range r.Items() {
		labels[it.Label] = true
	}
	for _, want := range []int{2, 3, 4} {
		if !labels[want] {
			t.Fatalf("ring lost item %d; has %v", want, labels)
		}
	}
}

func TestClassBalancedStaysWithinCap(t *testing.T) {
	b := NewClassBalanced(10, rand.New(rand.NewSource(3)))
	for i := 0; i < 200; i++ {
		b.Insert(item(i % 7))
		if b.Len() > 10 {
			t.Fatal("exceeded capacity")
		}
	}
	if b.Len() != 10 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestClassBalancedBalancesSkewedStream(t *testing.T) {
	// 90% of insertions are class 0, but the buffer must keep all classes
	// with roughly equal shares.
	rng := rand.New(rand.NewSource(4))
	b := NewClassBalanced(20, rng)
	for i := 0; i < 2000; i++ {
		c := 0
		if rng.Float64() > 0.9 {
			c = 1 + rng.Intn(4)
		}
		b.Insert(item(c))
	}
	for c := 0; c < 5; c++ {
		n := len(b.OfClass(c))
		if n < 2 || n > 8 {
			t.Fatalf("class %d holds %d of 20 slots; balance broken", c, n)
		}
	}
}

func TestClassBalancedQuotaProperty(t *testing.T) {
	// Property: after any insertion sequence over k classes, max and min
	// class shares differ by at most ... the fair share rounding plus
	// transient skew; assert a loose invariant: no class exceeds
	// 2*ceil(cap/k)+1 once every class has been inserted at least cap times.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap, k = 12, 4
		b := NewClassBalanced(cap, rng)
		for i := 0; i < cap*k*4; i++ {
			b.Insert(item(rng.Intn(k)))
		}
		fair := int(math.Ceil(float64(cap) / k))
		for c := 0; c < k; c++ {
			if len(b.OfClass(c)) > 2*fair+1 {
				return false
			}
		}
		return b.Len() == cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceRandomOfClass(t *testing.T) {
	b := NewClassBalanced(4, rand.New(rand.NewSource(5)))
	b.Insert(Item{Label: 1})
	b.Insert(Item{Label: 2})
	replacement := Item{Label: 1, Logits: nil}
	if !b.ReplaceRandomOfClass(replacement) {
		t.Fatal("replace of present class failed")
	}
	if b.ReplaceRandomOfClass(Item{Label: 9}) {
		t.Fatal("replace of absent class should report false")
	}
	if b.Len() != 2 {
		t.Fatalf("replace changed fill: %d", b.Len())
	}
}

func TestClassBalancedSample(t *testing.T) {
	b := NewClassBalanced(9, rand.New(rand.NewSource(6)))
	for i := 0; i < 9; i++ {
		b.Insert(item(i % 3))
	}
	s := b.Sample(5)
	if len(s) != 5 {
		t.Fatalf("sample size %d", len(s))
	}
	if len(b.Sample(100)) != 9 {
		t.Fatal("oversized sample should return everything")
	}
}

func TestConstructorsPanicOnBadCapacity(t *testing.T) {
	for _, f := range []func(){
		func() { NewReservoir(0, rand.New(rand.NewSource(1))) },
		func() { NewRing(-1) },
		func() { NewClassBalanced(0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for non-positive capacity")
				}
			}()
			f()
		}()
	}
}

// TestItemsReturnCopies is the regression test for the slice-aliasing fix:
// Reservoir.Items and Ring.Items used to return the live backing slice, so a
// caller writing through the result rewrote store contents behind the RNG's
// back. Mutating what Items hands out must leave the buffers untouched.
func TestItemsReturnCopies(t *testing.T) {
	res := NewReservoir(4, rand.New(rand.NewSource(41)))
	for i := 0; i < 10; i++ {
		res.Offer(item(i))
	}
	want := res.Items()
	got := res.Items()
	for i := range got {
		got[i].Label = -1
	}
	for i, it := range res.Items() {
		if it.Label != want[i].Label {
			t.Fatalf("reservoir item %d mutated through Items(): label %d, want %d", i, it.Label, want[i].Label)
		}
	}

	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Push(item(i))
	}
	wantRing := ring.Items()
	gotRing := ring.Items()
	for i := range gotRing {
		gotRing[i].Label = -1
	}
	for i, it := range ring.Items() {
		if it.Label != wantRing[i].Label {
			t.Fatalf("ring item %d mutated through Items(): label %d, want %d", i, it.Label, wantRing[i].Label)
		}
	}

	// State's copy contract (also exercised by the round-trip test): writes to
	// the returned slice must not reach the live reservoir either.
	st, _ := res.State()
	st[0].Label = -7
	if res.Items()[0].Label == -7 {
		t.Fatal("State aliases the live buffer")
	}
}
